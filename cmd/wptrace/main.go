// Command wptrace records workload execution traces and replays them
// through the performance simulator — the trace-interpreter frontend
// mode of functional-first simulation. Replay supports every wrong-path
// technique except wpemul (a trace holds only correct-path
// instructions; paper §III-B).
//
// Usage:
//
//	wptrace -record -suite gap -bench bfs -o bfs.trace
//	wptrace -replay bfs.trace -wp conv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a workload trace")
		replay   = flag.String("replay", "", "replay a trace file through the performance simulator")
		out      = flag.String("o", "out.trace", "output trace path (record mode)")
		suite    = flag.String("suite", "gap", "workload suite (record mode)")
		bench    = flag.String("bench", "bfs", "benchmark (record mode)")
		wp       = flag.String("wp", "conv", "wrong-path technique (replay mode; wpemul unsupported)")
		maxInsts = flag.Uint64("max-insts", 0, "instruction cap (0 = workload default)")
	)
	flag.Parse()

	switch {
	case *record:
		w, err := findWorkload(*suite, *bench)
		if err != nil {
			fatal(err)
		}
		inst, err := w.Build()
		if err != nil {
			fatal(err)
		}
		budget := *maxInsts
		if budget == 0 {
			budget = inst.SuggestedMaxInsts
		}
		cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
		var opts []frontend.Option
		if budget > 0 {
			opts = append(opts, frontend.WithMaxInstructions(budget))
		}
		fe := frontend.New(cpu, opts...)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		tw, err := tracefile.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		n, err := tracefile.Record(fe, tw)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("recorded %d instructions to %s (%d bytes, %.2f B/inst)\n",
			n, *out, st.Size(), float64(st.Size())/float64(n))

	case *replay != "":
		kind, ok := wrongpath.ParseKind(*wp)
		if !ok {
			fatal(fmt.Errorf("unknown technique %q", *wp))
		}
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := tracefile.NewReader(f)
		if err != nil {
			fatal(err)
		}
		cfg := sim.Default(kind)
		cfg.MaxInsts = *maxInsts
		res, err := sim.RunTrace(cfg, r)
		if err != nil {
			fatal(err)
		}
		if r.Err() != nil {
			fatal(r.Err())
		}
		fmt.Printf("technique      %s\n", kind)
		fmt.Printf("instructions   %d\n", res.Core.Instructions)
		fmt.Printf("cycles         %d\n", res.Core.Cycles)
		fmt.Printf("IPC            %.4f\n", res.IPC())
		fmt.Printf("mispredicts    %d\n", res.Core.Mispredicts)
		fmt.Printf("WP executed    %d\n", res.Core.WPExecuted)
		fmt.Printf("wall time      %v\n", res.Wall)

	default:
		fmt.Fprintln(os.Stderr, "wptrace: need -record or -replay; see -h")
		os.Exit(2)
	}
}

func findWorkload(suite, bench string) (workloads.Workload, error) {
	switch suite {
	case "gap":
		w, ok := gap.ByName(bench, gap.DefaultParams())
		if !ok {
			return workloads.Workload{}, fmt.Errorf("unknown gap benchmark %q", bench)
		}
		return w, nil
	case "specint", "specfp":
		pool := specproxy.IntSuite(specproxy.DefaultParams())
		if suite == "specfp" {
			pool = specproxy.FPSuite(specproxy.DefaultParams())
		}
		for _, w := range pool {
			if w.Name == bench {
				return w, nil
			}
		}
		return workloads.Workload{}, fmt.Errorf("unknown %s benchmark %q", suite, bench)
	default:
		return workloads.Workload{}, fmt.Errorf("unknown suite %q", suite)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wptrace:", err)
	os.Exit(1)
}
