// Command wptrace records workload execution traces and replays them
// through the performance simulator — the trace-interpreter frontend
// mode of functional-first simulation. Replay supports every wrong-path
// technique except wpemul (a trace holds only correct-path
// instructions; paper §III-B).
//
// Usage:
//
//	wptrace -record -suite gap -bench bfs -o bfs.trace
//	wptrace -replay bfs.trace -wp conv
//	wptrace -replay bfs.trace -wp all -jobs 4   # every supported technique
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/checkpoint"
	"repro/internal/cliobs"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// exitAnnotated is the exit code for a replay that completed and
// printed its report but carries a fault annotation (a degraded cell, a
// canceled run, or a run-ending functional fault). Scripts that gate on
// clean replays must see nonzero; exit 1 stays reserved for hard
// failures that produce no report.
const exitAnnotated = 3

func main() {
	var (
		record   = flag.Bool("record", false, "record a workload trace")
		replay   = flag.String("replay", "", "replay a trace file through the performance simulator")
		out      = flag.String("o", "out.trace", "output trace path (record mode)")
		suite    = flag.String("suite", "gap", "workload suite (record mode)")
		bench    = flag.String("bench", "bfs", "benchmark (record mode)")
		wp       = flag.String("wp", "conv", "wrong-path technique (replay mode): "+strings.Join(wrongpath.Names(), ", ")+", or all; wpemul unsupported")
		jobs     = flag.Int("jobs", 1, "-wp all worker count (0 = one per host core)")
		maxInsts = flag.Uint64("max-insts", 0, "instruction cap (0 = workload default)")
		batch    = flag.Int("batch", 0, "decoupling-queue lane size for replay (0 = default, 1 = per-instruction; results identical at any size)")
		watchdog = flag.Duration("watchdog", 0, "stall-watchdog budget for replay (0 = disabled)")
		degrade  = flag.Bool("degrade", false, "replay mode: degrade one technique rung down on a recoverable fault; keep the valid prefix of a corrupt trace")
		retries  = flag.Int("max-retries", 2, "ladder descents allowed (with -degrade)")
		ckptDir  = flag.String("checkpoint-dir", "", "replay mode: write crash-safe state snapshots into this directory (empty = disabled)")
		ckptN    = flag.Uint64("checkpoint-every", 1_000_000, "snapshot interval in retired instructions (with -checkpoint-dir)")
		resume   = flag.Bool("resume", false, "replay mode: resume from the latest snapshot in -checkpoint-dir (the trace is re-opened and skipped to the snapshot's cursor)")
	)
	var obsFlags cliobs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	switch {
	case *record:
		w, err := findWorkload(*suite, *bench)
		if err != nil {
			fatal(err)
		}
		inst, err := w.Build()
		if err != nil {
			fatal(err)
		}
		budget := *maxInsts
		if budget == 0 {
			budget = inst.SuggestedMaxInsts
		}
		cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
		var opts []frontend.Option
		if budget > 0 {
			opts = append(opts, frontend.WithMaxInstructions(budget))
		}
		fe := frontend.New(cpu, opts...)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		tw, err := tracefile.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		n, err := tracefile.Record(fe, tw)
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		perInst := 0.0
		if n > 0 {
			perInst = float64(st.Size()) / float64(n)
		}
		fmt.Printf("recorded %d instructions to %s (%d bytes, %.2f B/inst)\n",
			n, *out, st.Size(), perInst)

	case *replay != "":
		metrics, tsink, err := obsFlags.Start()
		if err != nil {
			fatal(fmt.Errorf("observability: %w", err))
		}
		// SIGINT/SIGTERM cancel the replay cleanly: it stops at the next
		// lane boundary, the partial result prints annotated, and the
		// process exits nonzero.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		if *wp == "all" {
			faulted := replayAll(ctx, *replay, *maxInsts, *jobs, *watchdog, metrics, tsink)
			if err := obsFlags.Finish(); err != nil {
				fatal(fmt.Errorf("observability: %w", err))
			}
			if faulted {
				os.Exit(exitAnnotated)
			}
			return
		}
		kind, ok := wrongpath.ParseKind(*wp)
		if !ok {
			fatal(fmt.Errorf("unknown technique %q (have %s, all)", *wp, strings.Join(wrongpath.Names(), ", ")))
		}
		data, err := os.ReadFile(*replay)
		if err != nil {
			fatal(err)
		}
		cfg := sim.Default(kind)
		cfg.MaxInsts = *maxInsts
		cfg.Core.Batch = *batch
		cfg.Watchdog = *watchdog
		cfg.Metrics, cfg.Trace, cfg.ObsLabel = metrics, tsink, "trace:"+*replay
		cfg.Ctx, cfg.CheckpointDir, cfg.CheckpointEvery = ctx, *ckptDir, *ckptN
		var res *sim.Result
		if *degrade {
			// Ladder replay: every attempt replays a fresh reader over the
			// same bytes; a corrupt tail keeps the valid prefix, and an
			// unsupported technique (wpemul on a trace) runs a rung down.
			// With -checkpoint-dir, retries resume from the last snapshot.
			cfg.Degrade = sim.DegradePolicy{MaxRetries: *retries}
			res, err = sim.RunLadder(cfg, func(c sim.Config) (sim.Source, error) {
				r, err := tracefile.NewReader(bytes.NewReader(data))
				if err != nil {
					return nil, err
				}
				return sim.NewTraceSource(r), nil
			})
			if err != nil {
				fatal(err)
			}
		} else {
			r, err := tracefile.NewReader(bytes.NewReader(data))
			if err != nil {
				fatal(err)
			}
			if snap := latestSnapshot(*resume, *ckptDir); snap != "" {
				res, err = sim.ResumeTrace(cfg, r, snap)
			} else {
				res, err = sim.RunTrace(cfg, r)
			}
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("technique      %s\n", kind)
		faulted := false
		if res.Degraded {
			fmt.Printf("DEGRADED       ran as %v (requested %v): %v\n", res.WP, res.RequestedWP, res.DegradeFault)
			faulted = true
		} else if res.Err != nil {
			// A replay that ended on a fault (corrupt tail, stall abort,
			// cancellation) still prints its partial statistics, annotated —
			// and must not exit 0 as if the replay were clean.
			fmt.Printf("FAULT          %v\n", firstLineOf(res.Err.Error()))
			faulted = true
		}
		fmt.Printf("instructions   %d\n", res.Core.Instructions)
		fmt.Printf("cycles         %d\n", res.Core.Cycles)
		fmt.Printf("IPC            %.4f\n", res.IPC())
		fmt.Printf("mispredicts    %d\n", res.Core.Mispredicts)
		fmt.Printf("WP executed    %d\n", res.Core.WPExecuted)
		fmt.Printf("wall time      %v\n", res.Wall)
		if err := obsFlags.Finish(); err != nil {
			fatal(fmt.Errorf("observability: %w", err))
		}
		if faulted {
			os.Exit(exitAnnotated)
		}

	default:
		fmt.Fprintln(os.Stderr, "wptrace: need -record or -replay; see -h")
		os.Exit(2)
	}
}

// replayAll replays the trace under every technique the trace frontend
// supports, each replay over its own in-memory reader of the same trace
// bytes, fanned out on the batch engine. Supported kinds are selected
// by the Source capability check, not a hard-coded list: a trace source
// cannot emulate wrong paths (paper §III-B), so wpemul is skipped.
// Faulted cells (corrupt tail, stall abort, cancellation) render
// annotated instead of killing the table mid-report; the returned flag
// makes the caller exit nonzero after the table has printed.
func replayAll(ctx context.Context, path string, maxInsts uint64, jobs int, watchdog time.Duration, metrics *obs.Registry, tsink *obs.TraceSink) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var kinds []wrongpath.Kind
	for _, k := range wrongpath.Kinds() {
		if k == wrongpath.WPEmul && !sim.NewTraceSource(nil).SupportsWPEmul() {
			fmt.Printf("(skipping %v: unsupported on a trace frontend, paper §III-B)\n\n", k)
			continue
		}
		kinds = append(kinds, k)
	}
	runJobs := make([]func() (*sim.Result, error), len(kinds))
	for i, k := range kinds {
		runJobs[i] = func() (*sim.Result, error) {
			r, err := tracefile.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			cfg := sim.Default(k)
			cfg.MaxInsts = maxInsts
			cfg.Watchdog = watchdog
			cfg.Metrics, cfg.Trace, cfg.ObsLabel = metrics, tsink, "trace:"+path
			cfg.Ctx = ctx
			return sim.RunTrace(cfg, r)
		}
	}
	results := batch.RunContext(ctx, runJobs, jobs)
	fmt.Printf("%-10s %12s %12s %8s %12s %12s\n",
		"technique", "insts", "cycles", "IPC", "WP executed", "wall")
	faulted := false
	for i, k := range kinds {
		if err := results[i].Err; err != nil {
			fmt.Printf("%-10s FAULT: %v\n", k, firstLineOf(err.Error()))
			faulted = true
			continue
		}
		res := results[i].Value
		note := ""
		if res.Err != nil {
			note = fmt.Sprintf("  FAULT(%v)", firstLineOf(res.Err.Error()))
			faulted = true
		}
		fmt.Printf("%-10s %12d %12d %8.4f %12d %12v%s\n",
			k, res.Core.Instructions, res.Core.Cycles, res.IPC(),
			res.Core.WPExecuted, res.Wall.Round(1_000_000), note)
	}
	if jobs != 1 {
		fmt.Printf("\n(wall clocks from concurrent runs; use -jobs 1 for calibrated timing)\n")
	}
	return faulted
}

// latestSnapshot resolves the -resume snapshot path, or "" for a fresh
// replay (an empty or missing directory has nothing to resume).
func latestSnapshot(resume bool, dir string) string {
	if !resume || dir == "" {
		return ""
	}
	snap, err := checkpoint.Latest(dir)
	if err != nil {
		fatal(fmt.Errorf("finding latest snapshot in %s: %w", dir, err))
	}
	return snap
}

// firstLineOf truncates multi-line fault renderings for table notes.
func firstLineOf(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func findWorkload(suite, bench string) (workloads.Workload, error) {
	switch suite {
	case "gap":
		w, ok := gap.ByName(bench, gap.DefaultParams())
		if !ok {
			return workloads.Workload{}, fmt.Errorf("unknown gap benchmark %q", bench)
		}
		return w, nil
	case "specint", "specfp":
		pool := specproxy.IntSuite(specproxy.DefaultParams())
		if suite == "specfp" {
			pool = specproxy.FPSuite(specproxy.DefaultParams())
		}
		for _, w := range pool {
			if w.Name == bench {
				return w, nil
			}
		}
		return workloads.Workload{}, fmt.Errorf("unknown %s benchmark %q", suite, bench)
	default:
		return workloads.Workload{}, fmt.Errorf("unknown suite %q", suite)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wptrace:", err)
	os.Exit(1)
}
