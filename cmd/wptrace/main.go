// Command wptrace records workload execution traces and replays them
// through the performance simulator — the trace-interpreter frontend
// mode of functional-first simulation. Replay supports every wrong-path
// technique except wpemul (a trace holds only correct-path
// instructions; paper §III-B).
//
// Usage:
//
//	wptrace -record -suite gap -bench bfs -o bfs.trace
//	wptrace -replay bfs.trace -wp conv
//	wptrace -replay bfs.trace -wp all -jobs 4   # every supported technique
//
// Exit codes: 0 clean, 1 hard failure, 2 usage, 3 completed but
// annotated (degraded, faulted, or canceled). In replay mode the
// observability outputs (-metrics-out, -trace-out, -pprof) flush on
// every exit path, annotated and hard-failure exits included.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/checkpoint"
	"repro/internal/cliobs"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/tracefile"
	"repro/internal/workloads/catalog"
	"repro/internal/wrongpath"
)

// Exit codes. exitAnnotated marks a replay that completed and printed
// its report but carries a fault annotation (a degraded cell, a
// canceled run, or a run-ending functional fault). Scripts that gate on
// clean replays must see nonzero; exit 1 stays reserved for hard
// failures that produce no report.
const (
	exitClean     = 0
	exitFailure   = 1
	exitUsage     = 2
	exitAnnotated = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind an exit code; replay mode defers the
// observability Finish so the outputs flush before every exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wptrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		record   = fs.Bool("record", false, "record a workload trace")
		replay   = fs.String("replay", "", "replay a trace file through the performance simulator")
		out      = fs.String("o", "out.trace", "output trace path (record mode)")
		suite    = fs.String("suite", "gap", "workload suite (record mode)")
		bench    = fs.String("bench", "bfs", "benchmark (record mode)")
		wp       = fs.String("wp", "conv", "wrong-path technique (replay mode): "+strings.Join(wrongpath.Names(), ", ")+", or all; wpemul unsupported")
		jobs     = fs.Int("jobs", 1, "-wp all worker count (0 = one per host core)")
		maxInsts = fs.Uint64("max-insts", 0, "instruction cap (0 = workload default)")
		lane     = fs.Int("batch", 0, "decoupling-queue lane size for replay (0 = default, 1 = per-instruction; results identical at any size)")
		watchdog = fs.Duration("watchdog", 0, "stall-watchdog budget for replay (0 = disabled)")
		degrade  = fs.Bool("degrade", false, "replay mode: degrade one technique rung down on a recoverable fault; keep the valid prefix of a corrupt trace")
		retries  = fs.Int("max-retries", 2, "ladder descents allowed (with -degrade)")
		ckptDir  = fs.String("checkpoint-dir", "", "replay mode: write crash-safe state snapshots into this directory (empty = disabled)")
		ckptN    = fs.Uint64("checkpoint-every", 1_000_000, "snapshot interval in retired instructions (with -checkpoint-dir)")
		resume   = fs.Bool("resume", false, "replay mode: resume from the latest snapshot in -checkpoint-dir (the trace is re-opened and skipped to the snapshot's cursor)")
	)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return exitClean
		}
		return exitUsage
	}

	switch {
	case *record:
		return runRecord(stdout, stderr, *suite, *bench, *out, *maxInsts)
	case *replay != "":
		return runReplay(stdout, stderr, &obsFlags, replayOptions{
			path: *replay, wp: *wp, jobs: *jobs, maxInsts: *maxInsts, lane: *lane,
			watchdog: *watchdog, degrade: *degrade, retries: *retries,
			ckptDir: *ckptDir, ckptN: *ckptN, resume: *resume,
		})
	default:
		fmt.Fprintln(stderr, "wptrace: need -record or -replay; see -h")
		return exitUsage
	}
}

// runRecord executes a workload on the functional simulator and writes
// its instruction stream as a trace file.
func runRecord(stdout, stderr io.Writer, suite, bench, out string, maxInsts uint64) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "wptrace:", err)
		return exitFailure
	}
	w, err := catalog.Find(suite, bench, catalog.Params{})
	if err != nil {
		return fail(err)
	}
	inst, err := w.Build()
	if err != nil {
		return fail(err)
	}
	budget := maxInsts
	if budget == 0 {
		budget = inst.SuggestedMaxInsts
	}
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	var opts []frontend.Option
	if budget > 0 {
		opts = append(opts, frontend.WithMaxInstructions(budget))
	}
	fe := frontend.New(cpu, opts...)
	f, err := os.Create(out)
	if err != nil {
		return fail(err)
	}
	tw, err := tracefile.NewWriter(f)
	if err != nil {
		return fail(err)
	}
	n, err := tracefile.Record(fe, tw)
	if err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	st, _ := os.Stat(out)
	perInst := 0.0
	if n > 0 {
		perInst = float64(st.Size()) / float64(n)
	}
	fmt.Fprintf(stdout, "recorded %d instructions to %s (%d bytes, %.2f B/inst)\n",
		n, out, st.Size(), perInst)
	return exitClean
}

// replayOptions bundles the replay-mode flags.
type replayOptions struct {
	path     string
	wp       string
	jobs     int
	maxInsts uint64
	lane     int
	watchdog time.Duration
	degrade  bool
	retries  int
	ckptDir  string
	ckptN    uint64
	resume   bool
}

// runReplay replays the trace. The observability lifecycle is a
// named-return defer, so -metrics-out/-trace-out flush before every
// exit — a degraded or faulted replay's metrics are kept, and a flush
// failure hardens the exit to 1.
func runReplay(stdout, stderr io.Writer, obsFlags *cliobs.Flags, o replayOptions) (code int) {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "wptrace:", err)
		return exitFailure
	}
	metrics, tsink, err := obsFlags.Start()
	if err != nil {
		return fail(fmt.Errorf("observability: %w", err))
	}
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintln(stderr, "wptrace: observability:", err)
			code = exitFailure
		}
	}()
	// SIGINT/SIGTERM cancel the replay cleanly: it stops at the next
	// lane boundary, the partial result prints annotated, and the
	// process exits nonzero.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if o.wp == "all" {
		faulted, err := replayAll(ctx, stdout, o.path, o.maxInsts, o.jobs, o.watchdog, metrics, tsink)
		if err != nil {
			return fail(err)
		}
		if faulted {
			return exitAnnotated
		}
		return exitClean
	}
	kind, ok := wrongpath.ParseKind(o.wp)
	if !ok {
		return fail(fmt.Errorf("unknown technique %q (have %s, all)", o.wp, strings.Join(wrongpath.Names(), ", ")))
	}
	data, err := os.ReadFile(o.path)
	if err != nil {
		return fail(err)
	}
	cfg := sim.Default(kind)
	cfg.MaxInsts = o.maxInsts
	cfg.Core.Batch = o.lane
	cfg.Watchdog = o.watchdog
	cfg.Metrics, cfg.Trace, cfg.ObsLabel = metrics, tsink, "trace:"+o.path
	cfg.Ctx, cfg.CheckpointDir, cfg.CheckpointEvery = ctx, o.ckptDir, o.ckptN
	var res *sim.Result
	if o.degrade {
		// Ladder replay: every attempt replays a fresh reader over the
		// same bytes; a corrupt tail keeps the valid prefix, and an
		// unsupported technique (wpemul on a trace) runs a rung down.
		// With -checkpoint-dir, retries resume from the last snapshot.
		cfg.Degrade = sim.DegradePolicy{MaxRetries: o.retries}
		res, err = sim.RunLadder(cfg, func(c sim.Config) (sim.Source, error) {
			r, err := tracefile.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return sim.NewTraceSource(r), nil
		})
		if err != nil {
			return fail(err)
		}
	} else {
		r, err := tracefile.NewReader(bytes.NewReader(data))
		if err != nil {
			return fail(err)
		}
		snap := ""
		if o.resume && o.ckptDir != "" {
			// An empty or missing directory has nothing to resume.
			if snap, err = checkpoint.Latest(o.ckptDir); err != nil {
				return fail(fmt.Errorf("finding latest snapshot in %s: %w", o.ckptDir, err))
			}
		}
		if snap != "" {
			res, err = sim.ResumeTrace(cfg, r, snap)
		} else {
			res, err = sim.RunTrace(cfg, r)
		}
		if err != nil {
			return fail(err)
		}
	}
	fmt.Fprintf(stdout, "technique      %s\n", kind)
	faulted := false
	if res.Degraded {
		fmt.Fprintf(stdout, "DEGRADED       ran as %v (requested %v): %v\n", res.WP, res.RequestedWP, res.DegradeFault)
		faulted = true
	} else if res.Err != nil {
		// A replay that ended on a fault (corrupt tail, stall abort,
		// cancellation) still prints its partial statistics, annotated —
		// and must not exit 0 as if the replay were clean.
		fmt.Fprintf(stdout, "FAULT          %v\n", simerr.FirstLine(res.Err))
		faulted = true
	}
	fmt.Fprintf(stdout, "instructions   %d\n", res.Core.Instructions)
	fmt.Fprintf(stdout, "cycles         %d\n", res.Core.Cycles)
	fmt.Fprintf(stdout, "IPC            %.4f\n", res.IPC())
	fmt.Fprintf(stdout, "mispredicts    %d\n", res.Core.Mispredicts)
	fmt.Fprintf(stdout, "WP executed    %d\n", res.Core.WPExecuted)
	fmt.Fprintf(stdout, "wall time      %v\n", res.Wall)
	if faulted {
		return exitAnnotated
	}
	return exitClean
}

// replayAll replays the trace under every technique the trace frontend
// supports, each replay over its own in-memory reader of the same trace
// bytes, fanned out on the batch engine. Supported kinds are selected
// by the Source capability check, not a hard-coded list: a trace source
// cannot emulate wrong paths (paper §III-B), so wpemul is skipped.
// Faulted cells (corrupt tail, stall abort, cancellation) render
// annotated instead of killing the table mid-report; the returned flag
// makes the caller exit nonzero after the table has printed.
func replayAll(ctx context.Context, stdout io.Writer, path string, maxInsts uint64, jobs int, watchdog time.Duration, metrics *obs.Registry, tsink *obs.TraceSink) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var kinds []wrongpath.Kind
	for _, k := range wrongpath.Kinds() {
		if k == wrongpath.WPEmul && !sim.NewTraceSource(nil).SupportsWPEmul() {
			fmt.Fprintf(stdout, "(skipping %v: unsupported on a trace frontend, paper §III-B)\n\n", k)
			continue
		}
		kinds = append(kinds, k)
	}
	runJobs := make([]func() (*sim.Result, error), len(kinds))
	for i, k := range kinds {
		runJobs[i] = func() (*sim.Result, error) {
			r, err := tracefile.NewReader(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			cfg := sim.Default(k)
			cfg.MaxInsts = maxInsts
			cfg.Watchdog = watchdog
			cfg.Metrics, cfg.Trace, cfg.ObsLabel = metrics, tsink, "trace:"+path
			cfg.Ctx = ctx
			return sim.RunTrace(cfg, r)
		}
	}
	results := batch.RunContext(ctx, runJobs, jobs)
	fmt.Fprintf(stdout, "%-10s %12s %12s %8s %12s %12s\n",
		"technique", "insts", "cycles", "IPC", "WP executed", "wall")
	faulted := false
	for i, k := range kinds {
		if err := results[i].Err; err != nil {
			fmt.Fprintf(stdout, "%-10s FAULT: %v\n", k, simerr.FirstLine(err))
			faulted = true
			continue
		}
		res := results[i].Value
		note := ""
		if res.Err != nil {
			note = fmt.Sprintf("  FAULT(%v)", simerr.FirstLine(res.Err))
			faulted = true
		}
		fmt.Fprintf(stdout, "%-10s %12d %12d %8.4f %12d %12v%s\n",
			k, res.Core.Instructions, res.Core.Cycles, res.IPC(),
			res.Core.WPExecuted, res.Wall.Round(1_000_000), note)
	}
	if jobs != 1 {
		fmt.Fprintf(stdout, "\n(wall clocks from concurrent runs; use -jobs 1 for calibrated timing)\n")
	}
	return faulted, nil
}
