package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runWptrace(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// recordSmallTrace records a short gap/bfs trace and returns its path.
func recordSmallTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bfs.trace")
	code, out, stderr := runWptrace(t, "-record", "-suite", "gap", "-bench", "bfs", "-max-insts", "20000", "-o", path)
	if code != exitClean {
		t.Fatalf("record exit %d\nstdout: %s\nstderr: %s", code, out, stderr)
	}
	return path
}

func TestRecordAndCleanReplay(t *testing.T) {
	trace := recordSmallTrace(t)
	code, out, stderr := runWptrace(t, "-replay", trace, "-wp", "conv")
	if code != exitClean {
		t.Fatalf("replay exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "technique      conv") || !strings.Contains(out, "IPC") {
		t.Errorf("replay report incomplete:\n%s", out)
	}
}

// TestDegradedReplayFlushesObservability is the wptrace side of the
// output-loss regression: wpemul on a trace frontend is deterministic
// grounds for a ladder descent (paper §III-B), the replay exits
// annotated, and -metrics-out must still be written.
func TestDegradedReplayFlushesObservability(t *testing.T) {
	trace := recordSmallTrace(t)
	metricsOut := filepath.Join(t.TempDir(), "metrics.json")
	code, out, stderr := runWptrace(t,
		"-replay", trace, "-wp", "wpemul", "-degrade", "-metrics-out", metricsOut)
	if code != exitAnnotated {
		t.Fatalf("exit %d, want %d (annotated)\nstdout: %s\nstderr: %s", code, exitAnnotated, out, stderr)
	}
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "requested wpemul") {
		t.Errorf("descent not annotated in the report:\n%s", out)
	}
	if fi, err := os.Stat(metricsOut); err != nil || fi.Size() == 0 {
		t.Fatalf("degraded replay lost -metrics-out (err %v)", err)
	}
}

func TestReplayHardFailureFlushesObservability(t *testing.T) {
	metricsOut := filepath.Join(t.TempDir(), "metrics.json")
	code, _, stderr := runWptrace(t, "-replay", filepath.Join(t.TempDir(), "missing.trace"),
		"-wp", "conv", "-metrics-out", metricsOut)
	if code != exitFailure {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	if _, err := os.Stat(metricsOut); err != nil {
		t.Fatalf("hard-failure replay lost -metrics-out: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runWptrace(t); code != exitUsage {
		t.Errorf("no mode: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runWptrace(t, "-bogus"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
}
