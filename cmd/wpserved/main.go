// Command wpserved is the long-running simulation service: it accepts
// simulation jobs over HTTP/JSON, runs them on a bounded worker pool,
// and persists job state — specs, results, checkpoint chains — under a
// state directory so a SIGTERM drains gracefully and the next daemon
// run resumes every in-flight job bit-identically.
//
//	wpserved -addr 127.0.0.1:8080 -state-dir /var/lib/wpserved
//
// API (see internal/server): POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/result, POST /jobs/{id}/cancel, GET /metrics,
// GET /healthz. A full admission queue answers 429 with Retry-After; a
// draining daemon answers 503.
//
// Exit codes: 0 after a clean drain (including SIGTERM/SIGINT), 1 on a
// hard failure or a drain that exceeded -drain-timeout, 2 on a usage
// error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliobs"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon behind an exit code; the deferred
// observability Finish guarantees -metrics-out and -pprof flush on
// every exit path, including failed startups and timed-out drains.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wpserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this `file` (for -addr with port 0)")
	workers := fs.Int("workers", 0, "worker-pool width (0: one per host core)")
	queueDepth := fs.Int("queue-depth", 0, "admission-queue bound; beyond it submits get 429 (0: 64)")
	stateDir := fs.String("state-dir", "", "durable job store `dir`; empty runs ephemeral (no resume)")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "default snapshot interval in retired instructions (0: 1M)")
	cache := fs.Bool("cache", true, "serve repeated identical specs from the content-addressed result cache (persists under state-dir/cache)")
	cacheMax := fs.Int("cache-max", 0, "result-cache in-memory entry bound (0: default)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for running jobs to park")
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	reg, _, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(stderr, "wpserved: observability: %v\n", err)
		return 1
	}
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintf(stderr, "wpserved: observability: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	srvCacheMax := *cacheMax
	if !*cache {
		srvCacheMax = -1
	}
	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		StateDir:        *stateDir,
		CheckpointEvery: *ckptEvery,
		CacheMax:        srvCacheMax,
		Metrics:         reg,
	})
	if err != nil {
		fmt.Fprintf(stderr, "wpserved: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "wpserved: %v\n", err)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		_ = srv.Drain(drainCtx)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "wpserved: writing -addr-file: %v\n", err)
			ln.Close()
			drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			defer cancel()
			_ = srv.Drain(drainCtx)
			return 1
		}
	}
	fmt.Fprintf(stdout, "wpserved: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "wpserved: %v: draining (second signal aborts)\n", sig)
	case err := <-serveErr:
		fmt.Fprintf(stderr, "wpserved: serve: %v\n", err)
		code = 1
	}

	// Drain: stop admission, cancel running jobs at their next lane
	// boundary, leave their checkpoint chains for the next daemon run.
	// A second signal cuts the wait short.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case <-sigs:
			fmt.Fprintln(stderr, "wpserved: second signal: aborting drain")
			cancel()
		case <-drainCtx.Done():
		}
	}()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(stderr, "wpserved: %v\n", err)
		code = 1
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = hs.Shutdown(shutCtx)
	fmt.Fprintln(stdout, "wpserved: drained")
	return code
}
