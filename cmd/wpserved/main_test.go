package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// TestServeSmoke is the end-to-end acceptance behind `make serve-smoke`:
// it builds the real binary, boots it on a loopback port, submits jobs
// over HTTP, and checks the three serving-layer guarantees — served
// results are byte-identical to direct sim runs, SIGTERM drains with
// exit code 0 and flushes -metrics-out, and a restart over the same
// state directory resumes the interrupted job to a bit-identical
// result.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and boots the daemon; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "wpserved")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/wpserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wpserved: %v\n%s", err, out)
	}

	stateDir := filepath.Join(tmp, "state")
	metricsOut := filepath.Join(tmp, "metrics.json")

	d := startDaemon(t, bin, stateDir, metricsOut)

	// Guarantee 1: a served job's result is byte-identical to a direct
	// sim run of the same spec.
	quick := server.JobSpec{Suite: "gap", Bench: "bfs", WP: "wpemul", N: 1024, Degree: 4, Seed: 9}
	quickID := d.submit(t, quick)
	st := d.waitState(t, quickID, 30*time.Second, func(st server.Status) bool { return st.State == server.StateDone })
	if st.ExitCode != 0 {
		t.Fatalf("quick job exit %d, want 0 (error %q)", st.ExitCode, st.Error)
	}
	served := d.resultBytes(t, quickID)
	direct, err := server.RunDirect(quick)
	if err != nil {
		t.Fatalf("RunDirect: %v", err)
	}
	want, err := server.CanonicalResult(direct)
	if err != nil {
		t.Fatalf("CanonicalResult: %v", err)
	}
	if !bytes.Equal(served, want) {
		t.Errorf("served result diverges from direct run\nserved:\n%s\ndirect:\n%s", served, want)
	}

	// Guarantee 2: SIGTERM mid-run drains gracefully — exit 0, no
	// result persisted for the interrupted job, checkpoints on disk,
	// -metrics-out flushed.
	long := server.JobSpec{Suite: "gap", Bench: "bfs", WP: "conv", N: 16384, Degree: 8, CheckpointEvery: 100_000}
	longID := d.submit(t, long)
	d.waitState(t, longID, 30*time.Second, func(st server.Status) bool { return st.CheckpointInsts >= 200_000 })
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.wait(t, 60*time.Second); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\nstderr:\n%s", err, d.output())
	}
	if _, err := os.Stat(filepath.Join(stateDir, longID, "result.json")); err == nil {
		t.Fatal("drain persisted a result for the interrupted job")
	}
	if snaps, _ := filepath.Glob(filepath.Join(stateDir, longID, "ckpt", "*.wpsnap")); len(snaps) == 0 {
		t.Fatal("no checkpoint snapshots on disk after SIGTERM")
	}
	metricsData, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("-metrics-out not flushed on SIGTERM: %v", err)
	}
	if !strings.Contains(string(metricsData), "wpserved_jobs_submitted_total") {
		t.Error("-metrics-out is missing the server lifecycle metrics")
	}

	// Guarantee 3: a restart over the same state directory re-admits
	// the interrupted job and resumes it to a bit-identical result.
	d2 := startDaemon(t, bin, stateDir, filepath.Join(tmp, "metrics2.json"))
	st = d2.waitState(t, longID, 120*time.Second, func(st server.Status) bool { return st.State == server.StateDone })
	if st.ExitCode != 0 || !st.Resumed {
		t.Fatalf("resumed job: exit %d resumed %v (error %q), want 0/true", st.ExitCode, st.Resumed, st.Error)
	}
	servedLong := d2.resultBytes(t, longID)
	directLong, err := server.RunDirect(long)
	if err != nil {
		t.Fatalf("RunDirect(long): %v", err)
	}
	wantLong, err := server.CanonicalResult(directLong)
	if err != nil {
		t.Fatalf("CanonicalResult(long): %v", err)
	}
	if !bytes.Equal(servedLong, wantLong) {
		t.Error("drain/restart/resume produced a result different from an uninterrupted run")
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d2.wait(t, 60*time.Second); err != nil {
		t.Fatalf("second daemon exit: %v\nstderr:\n%s", err, d2.output())
	}
}

// daemon wraps one running wpserved process and its HTTP base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
	logs *bytes.Buffer
	done chan error
}

func startDaemon(t *testing.T, bin, stateDir, metricsOut string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logs := &bytes.Buffer{}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-state-dir", stateDir,
		"-workers", "2",
		"-drain-timeout", "60s",
		"-metrics-out", metricsOut,
	)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting wpserved: %v", err)
	}
	d := &daemon{cmd: cmd, logs: logs, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-d.done:
		default:
			_ = cmd.Process.Kill()
			<-d.done
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			d.base = "http://" + strings.TrimSpace(string(data))
			break
		}
		select {
		case err := <-d.done:
			d.done <- err
			t.Fatalf("wpserved exited before binding: %v\n%s", err, d.output())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("wpserved never wrote -addr-file\n%s", d.output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return d
}

func (d *daemon) output() string { return d.logs.String() }

// wait blocks until the process exits and returns its error (nil on
// exit code 0).
func (d *daemon) wait(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case err := <-d.done:
		d.done <- err
		return err
	case <-time.After(timeout):
		t.Fatalf("wpserved did not exit within %v\n%s", timeout, d.output())
		return nil
	}
}

func (d *daemon) submit(t *testing.T, spec server.JobSpec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(d.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, st)
	}
	return st.ID
}

func (d *daemon) status(t *testing.T, id string) server.Status {
	t.Helper()
	resp, err := http.Get(d.base + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func (d *daemon) waitState(t *testing.T, id string, timeout time.Duration, pred func(server.Status) bool) server.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := d.status(t, id)
		if pred(st) {
			return st
		}
		if st.State == server.StateFailed || st.State == server.StateCanceled {
			t.Fatalf("job %s reached %s (error %q) while waiting", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timeout; last status %+v\n%s", id, st, d.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemon) resultBytes(t *testing.T, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading result: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d\n%s", resp.StatusCode, body.String())
	}
	if got := resp.Header.Get("X-Wpserved-Job"); got != id {
		t.Fatalf("result job header %q, want %q", got, id)
	}
	return body.Bytes()
}
