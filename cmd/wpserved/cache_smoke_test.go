package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// submitDisp posts a spec and returns the accepted status plus the
// X-Wpserved-Cache header — the client-visible cache disposition.
func (d *daemon) submitDisp(t *testing.T, spec server.JobSpec) (server.Status, string) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(d.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, st)
	}
	return st, resp.Header.Get("X-Wpserved-Cache")
}

// TestServeCacheSmoke is the end-to-end acceptance behind
// `make serve-cache-smoke`: over real HTTP against the built binary it
// exercises all three cache dispositions — miss (first submission
// runs), coalesced (an identical submission joins the running leader),
// and hit (a repeat is served from the cache, including across a
// daemon restart) — and checks every served body is byte-identical to
// a direct sim run.
func TestServeCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and boots the daemon; skipped in -short")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "wpserved")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/wpserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wpserved: %v\n%s", err, out)
	}
	stateDir := filepath.Join(tmp, "state")
	d := startDaemon(t, bin, stateDir, filepath.Join(tmp, "metrics.json"))

	quick := server.JobSpec{Suite: "gap", Bench: "bfs", WP: "wpemul", N: 1024, Degree: 4, Seed: 5}
	direct, err := server.RunDirect(quick)
	if err != nil {
		t.Fatalf("RunDirect: %v", err)
	}
	want, err := server.CanonicalResult(direct)
	if err != nil {
		t.Fatalf("CanonicalResult: %v", err)
	}

	// Miss: the first submission runs the simulation.
	st, disp := d.submitDisp(t, quick)
	if disp != "miss" {
		t.Fatalf("first submission disposition %q, want miss", disp)
	}
	d.waitState(t, st.ID, 30*time.Second, func(st server.Status) bool { return st.State == server.StateDone })
	if got := d.resultBytes(t, st.ID); !bytes.Equal(got, want) {
		t.Error("served result diverges from the direct run")
	}

	// Hit: the repeat is born terminal with the same bytes.
	st2, disp := d.submitDisp(t, quick)
	if disp != "hit" || st2.State != server.StateDone {
		t.Fatalf("repeat submission disposition %q state %s, want hit/done", disp, st2.State)
	}
	if got := d.resultBytes(t, st2.ID); !bytes.Equal(got, want) {
		t.Error("cache-served result diverges from the direct run")
	}

	// Coalesced: an identical submission joins the running leader and
	// shares its bytes verbatim.
	long := server.JobSpec{Suite: "gap", Bench: "bfs", WP: "conv", N: 16384, Degree: 8, Seed: 77}
	lead, disp := d.submitDisp(t, long)
	if disp != "miss" {
		t.Fatalf("leader disposition %q, want miss", disp)
	}
	d.waitState(t, lead.ID, 30*time.Second, func(st server.Status) bool { return st.State == server.StateRunning })
	follower, disp := d.submitDisp(t, long)
	if disp != "coalesced" || follower.DedupedOf != lead.ID {
		t.Fatalf("follower disposition %q deduped_of %q, want coalesced onto %s", disp, follower.DedupedOf, lead.ID)
	}
	d.waitState(t, lead.ID, 60*time.Second, func(st server.Status) bool { return st.State == server.StateDone })
	d.waitState(t, follower.ID, 30*time.Second, func(st server.Status) bool { return st.State == server.StateDone })
	leadBytes := d.resultBytes(t, lead.ID)
	if got := d.resultBytes(t, follower.ID); !bytes.Equal(got, leadBytes) {
		t.Error("coalesced follower's body differs from its leader's")
	}

	// Restart: the persistent tier under state-dir/cache survives the
	// daemon, so the hit repeats without a run.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d.wait(t, 60*time.Second); err != nil {
		t.Fatalf("daemon exit: %v\nstderr:\n%s", err, d.output())
	}
	d2 := startDaemon(t, bin, stateDir, filepath.Join(tmp, "metrics2.json"))
	st3, disp := d2.submitDisp(t, quick)
	if disp != "hit" || st3.State != server.StateDone {
		t.Fatalf("post-restart submission disposition %q state %s, want hit/done", disp, st3.State)
	}
	if got := d2.resultBytes(t, st3.ID); !bytes.Equal(got, want) {
		t.Error("post-restart cache-served result diverges from the direct run")
	}
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := d2.wait(t, 60*time.Second); err != nil {
		t.Fatalf("second daemon exit: %v\nstderr:\n%s", err, d2.output())
	}
}
