package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWpsim invokes the command in-process and returns (exit code,
// stdout, stderr).
func runWpsim(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func quickArgs(extra ...string) []string {
	return append([]string{"-suite", "gap", "-bench", "bfs", "-n", "1024", "-degree", "4"}, extra...)
}

func TestCleanRunExitsZero(t *testing.T) {
	code, out, stderr := runWpsim(t, quickArgs("-wp", "conv")...)
	if code != exitClean {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(out, "workload            gap/bfs") || !strings.Contains(out, "IPC") {
		t.Errorf("report missing expected lines:\n%s", out)
	}
}

// TestDegradedRunFlushesObservability is the regression test for the
// output-loss bug: a run that exits annotated (code 3) after a ladder
// descent must still write -metrics-out and -trace-out. The -inject
// drill makes the descent deterministic.
func TestDegradedRunFlushesObservability(t *testing.T) {
	dir := t.TempDir()
	metricsOut := filepath.Join(dir, "metrics.json")
	traceOut := filepath.Join(dir, "trace.json")
	code, out, stderr := runWpsim(t, quickArgs(
		"-wp", "wpemul", "-degrade", "-inject", "panic@5000",
		"-metrics-out", metricsOut, "-trace-out", traceOut)...)
	if code != exitAnnotated {
		t.Fatalf("exit %d, want %d (annotated)\nstderr: %s", code, exitAnnotated, stderr)
	}
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "ran as conv (requested wpemul)") {
		t.Errorf("degraded run not annotated in the report:\n%s", out)
	}
	data, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("degraded exit lost -metrics-out: %v", err)
	}
	var metrics []map[string]any
	if err := json.Unmarshal(data, &metrics); err != nil || len(metrics) == 0 {
		t.Errorf("metrics file malformed (err %v, %d entries)", err, len(metrics))
	}
	var spans any
	traceData, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("degraded exit lost -trace-out: %v", err)
	}
	if err := json.Unmarshal(traceData, &spans); err != nil {
		t.Errorf("trace file malformed: %v", err)
	}
}

// TestHardFailureFlushesObservability: even an exit-1 path reached
// after Start (here: an unknown technique) flushes the metrics file.
func TestHardFailureFlushesObservability(t *testing.T) {
	metricsOut := filepath.Join(t.TempDir(), "metrics.json")
	code, _, stderr := runWpsim(t, quickArgs("-wp", "quantum", "-metrics-out", metricsOut)...)
	if code != exitFailure {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unknown wrong-path technique") {
		t.Errorf("stderr missing diagnosis: %s", stderr)
	}
	if _, err := os.Stat(metricsOut); err != nil {
		t.Fatalf("hard-failure exit lost -metrics-out: %v", err)
	}
}

// TestFlushFailureHardensExit: a clean simulation whose metrics cannot
// be written must not exit 0 — silent observability loss is the bug
// this PR removes.
func TestFlushFailureHardensExit(t *testing.T) {
	metricsOut := filepath.Join(t.TempDir(), "missing-dir", "metrics.json")
	code, _, stderr := runWpsim(t, quickArgs("-wp", "conv", "-metrics-out", metricsOut)...)
	if code != exitFailure {
		t.Fatalf("exit %d, want 1 when the metrics flush fails\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "observability") {
		t.Errorf("stderr missing flush diagnosis: %s", stderr)
	}
}

func TestInjectValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"without degrade", quickArgs("-wp", "conv", "-inject", "panic@100")},
		{"bad spec", quickArgs("-wp", "conv", "-degrade", "-inject", "explode@100")},
		{"bad position", quickArgs("-wp", "conv", "-degrade", "-inject", "panic@soon")},
		{"with checkpoint dir", quickArgs("-wp", "conv", "-degrade", "-inject", "panic@100", "-checkpoint-dir", "/tmp/x")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if code, _, _ := runWpsim(t, tc.args...); code != exitUsage {
				t.Errorf("exit %d, want %d (usage)", code, exitUsage)
			}
		})
	}
}

// TestCompareAllAnnotatedExit: -wp all with an induced per-cell fault
// (a 1ns watchdog budget trips instantly) prints the full table and
// exits annotated, and the metrics still flush.
func TestCompareAllAnnotatedExit(t *testing.T) {
	metricsOut := filepath.Join(t.TempDir(), "metrics.json")
	code, out, stderr := runWpsim(t, quickArgs(
		"-wp", "all", "-jobs", "2", "-watchdog", "1ns", "-metrics-out", metricsOut)...)
	if code != exitAnnotated {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitAnnotated, out, stderr)
	}
	if !strings.Contains(out, "FAULT(") {
		t.Errorf("table missing FAULT annotations:\n%s", out)
	}
	if _, err := os.Stat(metricsOut); err != nil {
		t.Fatalf("annotated -wp all exit lost -metrics-out: %v", err)
	}
}
