// Command wpsim runs one workload on the functional-first simulator
// under one wrong-path modeling technique and prints the statistics.
//
// Usage:
//
//	wpsim -suite gap -bench bfs -wp conv
//	wpsim -suite specint -bench chase -wp nowp -max-insts 1000000
//	wpsim -suite gap -bench pr -wp wpemul -n 8192 -degree 8
//	wpsim -suite gap -bench bfs -wp all -jobs 4   # compare all techniques
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// exitAnnotated is the exit code for a run that completed and printed
// its report but carries fault annotations (degraded, canceled, or
// functional-error cells): nonzero so scripts notice, distinct from the
// hard-failure exit 1.
const exitAnnotated = 3

func main() {
	var (
		suite    = flag.String("suite", "gap", "workload suite: gap, specint, specfp")
		bench    = flag.String("bench", "bfs", "benchmark name within the suite")
		wp       = flag.String("wp", "conv", "wrong-path technique: "+strings.Join(wrongpath.Names(), ", ")+", or all")
		jobs     = flag.Int("jobs", 1, "-wp all worker count (0 = one per host core; wall clocks contend when > 1)")
		maxInsts = flag.Uint64("max-insts", 0, "instruction cap (0 = workload default)")
		warmup   = flag.Uint64("warmup", 0, "functional-warming instructions before detailed simulation")
		parallel = flag.Bool("parallel", false, "run the functional frontend in its own goroutine")
		n        = flag.Int("n", 0, "GAP graph vertices (0 = default)")
		degree   = flag.Int("degree", 0, "GAP graph degree (0 = default)")
		kron     = flag.Bool("kron", false, "use the Kronecker generator for GAP inputs")
		grid     = flag.Bool("grid", false, "use a 2D grid (road-network-like) GAP input")
		seed     = flag.Uint64("seed", 0, "input seed (0 = default)")
		scale    = flag.Float64("scale", 0, "SPEC-proxy scale factor (0 = default)")
		rob      = flag.Int("rob", 0, "ROB size override")
		batch    = flag.Int("batch", 0, "decoupling-queue lane size (0 = default, 1 = per-instruction; results identical at any size)")
		memLat   = flag.Int("mem-latency", 0, "memory latency override (cycles)")
		showCfg  = flag.Bool("config", false, "print the core configuration and exit")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		watchdog = flag.Duration("watchdog", 0, "stall-watchdog budget (0 = disabled); aborts with a typed error if the run stops advancing")
		degrade  = flag.Bool("degrade", false, "on a recoverable fault, retry one technique rung down instead of failing")
		retries  = flag.Int("max-retries", 2, "ladder descents allowed (with -degrade)")
		ckptDir  = flag.String("checkpoint-dir", "", "write crash-safe state snapshots into this directory (empty = disabled)")
		ckptN    = flag.Uint64("checkpoint-every", 1_000_000, "snapshot interval in retired instructions (with -checkpoint-dir)")
		resume   = flag.Bool("resume", false, "resume from the latest snapshot in -checkpoint-dir instead of starting from zero")
	)
	var obsFlags cliobs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *rob > 0 {
		cfg.ROBSize = *rob
	}
	cfg.Batch = *batch
	if *memLat > 0 {
		cfg.Hierarchy.MemLatency = *memLat
	}
	if *showCfg {
		fmt.Print(sim.DescribeConfig(cfg))
		return
	}
	if *list {
		fmt.Println("gap:    ", gap.Names())
		for _, w := range specproxy.IntSuite(specproxy.DefaultParams()) {
			fmt.Println("specint:", w.Name)
		}
		for _, w := range specproxy.FPSuite(specproxy.DefaultParams()) {
			fmt.Println("specfp: ", w.Name)
		}
		return
	}

	w, err := findWorkload(*suite, *bench, *n, *degree, *kron, *grid, *seed, *scale)
	if err != nil {
		fatalf("%v", err)
	}
	fault := faultOptions(*watchdog, *degrade, *retries)
	metrics, tsink, err := obsFlags.Start()
	if err != nil {
		fatalf("observability: %v", err)
	}
	// SIGINT/SIGTERM cancel the run cleanly: the simulation stops at its
	// next lane boundary, the partial result prints annotated, and the
	// process exits nonzero. A second signal kills the process outright
	// (the default behavior NotifyContext restores after the first).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	obsLabel := *suite + "/" + *bench
	if *wp == "all" {
		faulted := compareAll(ctx, cfg, w, *suite, *bench, *maxInsts, *warmup, *parallel, *jobs, fault, obsCfg{metrics, tsink, obsLabel}, *ckptDir, *ckptN)
		finishObs(&obsFlags)
		if faulted {
			os.Exit(exitAnnotated)
		}
		return
	}

	kind, ok := wrongpath.ParseKind(*wp)
	if !ok {
		fatalf("unknown wrong-path technique %q (have %s, all)", *wp, strings.Join(wrongpath.Names(), ", "))
	}

	inst, err := w.Build()
	if err != nil {
		fatalf("building %s/%s: %v", *suite, *bench, err)
	}
	budget := *maxInsts
	if budget == 0 {
		budget = inst.SuggestedMaxInsts
	}
	simCfg := sim.Config{Core: cfg, WP: kind, MaxInsts: budget, WarmupInsts: *warmup,
		ParallelFrontend: *parallel, Watchdog: fault.Watchdog, Degrade: fault.Degrade,
		Metrics: metrics, Trace: tsink, ObsLabel: obsLabel,
		Ctx: ctx, CheckpointDir: *ckptDir, CheckpointEvery: *ckptN}
	var res *sim.Result
	if simCfg.Degrade.Enabled() {
		// Ladder path: the first attempt consumes the prebuilt instance,
		// retries rebuild a fresh one. With -checkpoint-dir, retries (and
		// re-runs over a non-empty directory) resume from the latest
		// snapshot instead of from zero.
		first := inst
		res, err = sim.RunLadder(simCfg, func(c sim.Config) (sim.Source, error) {
			if first != nil {
				i := first
				first = nil
				return sim.NewFunctionalSource(c, i), nil
			}
			retry, err := w.Build()
			if err != nil {
				return nil, err
			}
			return sim.NewFunctionalSource(c, retry), nil
		})
	} else if snap := latestSnapshot(*resume, *ckptDir); snap != "" {
		res, err = sim.Resume(simCfg, inst, snap)
	} else {
		res, err = sim.Run(simCfg, inst)
	}
	if err != nil {
		fatalf("simulating: %v", err)
	}
	finishObs(&obsFlags)
	printResult(*suite, *bench, kind, res)
	if res.Err != nil || res.Degraded {
		os.Exit(exitAnnotated)
	}
}

// latestSnapshot resolves the -resume snapshot path, or "" for a fresh
// run. -resume over an empty or missing directory starts from zero (the
// first run of a crash-safe loop has nothing to resume).
func latestSnapshot(resume bool, dir string) string {
	if !resume || dir == "" {
		return ""
	}
	snap, err := checkpoint.Latest(dir)
	if err != nil {
		fatalf("finding latest snapshot in %s: %v", dir, err)
	}
	return snap
}

// obsCfg threads the observability outputs into the comparison run.
type obsCfg struct {
	metrics *obs.Registry
	trace   *obs.TraceSink
	label   string
}

func finishObs(f *cliobs.Flags) {
	if err := f.Finish(); err != nil {
		fatalf("observability: %v", err)
	}
}

// faultConfig bundles the fault-tolerance flags for threading into
// sim.Config.
type faultConfig struct {
	Watchdog time.Duration
	Degrade  sim.DegradePolicy
}

func faultOptions(watchdog time.Duration, degrade bool, retries int) faultConfig {
	fc := faultConfig{Watchdog: watchdog}
	if degrade {
		fc.Degrade = sim.DegradePolicy{MaxRetries: retries}
	}
	return fc
}

// compareAll runs the workload under every technique (in
// wrongpath.Kinds() order) on the batch engine and prints a one-line
// comparison per kind, with wpemul as the error reference. It returns
// whether any cell carries a fault annotation — the caller turns that
// into a nonzero exit after the full table has printed.
func compareAll(ctx context.Context, cfg core.Config, w workloads.Workload, suite, bench string, maxInsts, warmup uint64, parallel bool, jobs int, fault faultConfig, oc obsCfg, ckptDir string, ckptN uint64) bool {
	kinds := wrongpath.Kinds()
	simCfg := sim.Config{Core: cfg, MaxInsts: maxInsts, WarmupInsts: warmup, ParallelFrontend: parallel,
		Watchdog: fault.Watchdog, Degrade: fault.Degrade,
		Metrics: oc.metrics, Trace: oc.trace, ObsLabel: oc.label,
		Ctx: ctx, CheckpointDir: ckptDir, CheckpointEvery: ckptN}
	results, err := sim.RunKinds(simCfg, w, kinds, jobs)
	if err != nil {
		fatalf("%v", err)
	}
	var ref *sim.Result
	for i, k := range kinds {
		if k == wrongpath.WPEmul {
			ref = results[i]
		}
	}
	fmt.Printf("workload   %s/%s\n\n", suite, bench)
	fmt.Printf("%-10s %12s %12s %8s %10s %12s %12s\n",
		"technique", "insts", "cycles", "IPC", "vs wpemul", "WP executed", "wall")
	faulted := false
	for i, k := range kinds {
		res := results[i]
		errCol := "(ref)"
		if k != wrongpath.WPEmul && ref != nil {
			errCol = fmt.Sprintf("%+.1f%%", 100*sim.Error(res, ref))
		}
		note := ""
		switch {
		case res.Degraded:
			note = fmt.Sprintf("  DEGRADED(ran as %v)", res.WP)
			faulted = true
		case res.Err != nil:
			note = fmt.Sprintf("  FAULT(%v)", firstLineOf(res.Err.Error()))
			faulted = true
		}
		fmt.Printf("%-10s %12d %12d %8.4f %10s %12d %12v%s\n",
			k, res.Core.Instructions, res.Core.Cycles, res.IPC(),
			errCol, res.Core.WPExecuted, res.Wall.Round(1_000_000), note)
	}
	if jobs != 1 {
		fmt.Printf("\n(wall clocks from concurrent runs; use -jobs 1 for calibrated timing)\n")
	}
	return faulted
}

// firstLineOf truncates multi-line fault renderings for the table note.
func firstLineOf(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func findWorkload(suite, bench string, n, degree int, kron, grid bool, seed uint64, scale float64) (workloads.Workload, error) {
	switch suite {
	case "gap":
		p := gap.DefaultParams()
		if n > 0 {
			p.N = n
		}
		if degree > 0 {
			p.Degree = degree
		}
		if seed != 0 {
			p.Seed = seed
		}
		p.Kron = kron
		p.Grid = grid
		w, ok := gap.ByName(bench, p)
		if !ok {
			return workloads.Workload{}, fmt.Errorf("unknown gap benchmark %q (have %v)", bench, gap.Names())
		}
		return w, nil
	case "specint", "specfp":
		p := specproxy.DefaultParams()
		if seed != 0 {
			p.Seed = seed
		}
		if scale > 0 {
			p.Scale = scale
		}
		var pool []workloads.Workload
		if suite == "specint" {
			pool = specproxy.IntSuite(p)
		} else {
			pool = specproxy.FPSuite(p)
		}
		for _, w := range pool {
			if w.Name == bench {
				return w, nil
			}
		}
		return workloads.Workload{}, fmt.Errorf("unknown %s benchmark %q", suite, bench)
	default:
		return workloads.Workload{}, fmt.Errorf("unknown suite %q (gap, specint, specfp)", suite)
	}
}

func printResult(suite, bench string, kind wrongpath.Kind, res *sim.Result) {
	fmt.Printf("workload            %s/%s\n", suite, bench)
	fmt.Printf("technique           %s\n", kind)
	if res.Degraded {
		fmt.Printf("DEGRADED            ran as %v (requested %v): %v\n", res.WP, res.RequestedWP, res.DegradeFault)
	}
	fmt.Printf("instructions        %d\n", res.Core.Instructions)
	fmt.Printf("cycles              %d\n", res.Core.Cycles)
	fmt.Printf("IPC                 %.4f\n", res.IPC())
	fmt.Printf("branch MPKI         %.2f\n", res.Core.MPKI())
	fmt.Printf("cond mispredict     %d / %d\n", res.Core.CondMispredicted, res.Core.CondBranches)
	fmt.Printf("L1D miss rate       %.2f%% (%d accesses)\n", 100*res.L1D.Correct.MissRate(), res.L1D.Correct.Accesses)
	fmt.Printf("L2 miss rate        %.2f%% (%d accesses)\n", 100*res.L2.Total().MissRate(), res.L2.Total().Accesses)
	fmt.Printf("LLC miss rate       %.2f%% (%d accesses)\n", 100*res.LLC.Total().MissRate(), res.LLC.Total().Accesses)
	fmt.Printf("DRAM accesses       %d (%d wrong-path)\n", res.MemAccesses, res.WrongMemAccesses)
	fmt.Printf("DTLB miss rate      %.2f%%\n", 100*res.DTLB.Total().MissRate())
	fmt.Printf("WP fetched          %d\n", res.Core.WPFetched)
	fmt.Printf("WP executed         %d (%.0f%% of correct path)\n", res.Core.WPExecuted, 100*res.Core.WPFraction())
	fmt.Printf("WP loads executed   %d (%d with address)\n", res.Core.WPLoads, res.Core.WPLoadsWithAddr)
	fmt.Printf("WP L2 misses        %d\n", res.L2.Wrong.Misses)
	if kind == wrongpath.Conv {
		fmt.Printf("conv frac           %.0f%%\n", 100*res.Policy.ConvFrac())
		fmt.Printf("conv dist           %.1f\n", res.Policy.ConvDist())
		fmt.Printf("addr recover        %.0f%%\n", 100*res.Policy.AddrRecoverFrac())
		fmt.Printf("match len           %.1f\n", res.Policy.MatchLen())
	}
	if kind == wrongpath.WPEmul {
		fmt.Printf("WP emulations       %d paths, %d instructions\n", res.WPEmulatedPaths, res.WPEmulatedInsts)
	}
	fmt.Printf("wall time           %v\n", res.Wall)
	if len(res.Output) > 0 {
		fmt.Printf("program output      %q\n", res.Output)
	}
	if res.Err != nil {
		// The caller exits with exitAnnotated: the stats above are still
		// the truth up to the fault, and a canceled run's snapshot chain
		// stays resumable.
		fmt.Printf("functional error    %v\n", res.Err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wpsim: "+format+"\n", args...)
	os.Exit(1)
}
