// Command wpsim runs one workload on the functional-first simulator
// under one wrong-path modeling technique and prints the statistics.
//
// Usage:
//
//	wpsim -suite gap -bench bfs -wp conv
//	wpsim -suite specint -bench chase -wp nowp -max-insts 1000000
//	wpsim -suite gap -bench pr -wp wpemul -n 8192 -degree 8
//	wpsim -suite gap -bench bfs -wp all -jobs 4   # compare all techniques
//
// Exit codes: 0 clean, 1 hard failure, 3 completed but annotated
// (degraded, faulted, or canceled cells). The observability outputs
// (-metrics-out, -trace-out, -pprof) flush on every exit path,
// including 1 and 3 — a faulted run's metrics are exactly the ones
// worth keeping.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/workloads"
	"repro/internal/workloads/catalog"
	"repro/internal/wrongpath"
)

// Exit codes. exitAnnotated marks a run that completed and printed its
// report but carries fault annotations (degraded, canceled, or
// functional-error cells): nonzero so scripts notice, distinct from the
// hard-failure exit 1.
const (
	exitClean     = 0
	exitFailure   = 1
	exitUsage     = 2
	exitAnnotated = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind an exit code. The observability
// lifecycle is a named-return defer so -metrics-out/-trace-out/-pprof
// flush before EVERY exit — hard failures and annotated exits
// included; os.Exit appears only in main.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite    = fs.String("suite", "gap", "workload suite: "+strings.Join(catalog.Suites(), ", "))
		bench    = fs.String("bench", "bfs", "benchmark name within the suite")
		wp       = fs.String("wp", "conv", "wrong-path technique: "+strings.Join(wrongpath.Names(), ", ")+", or all")
		jobs     = fs.Int("jobs", 1, "-wp all worker count (0 = one per host core; wall clocks contend when > 1)")
		maxInsts = fs.Uint64("max-insts", 0, "instruction cap (0 = workload default)")
		warmup   = fs.Uint64("warmup", 0, "functional-warming instructions before detailed simulation")
		parallel = fs.Bool("parallel", false, "run the functional frontend in its own goroutine")
		n        = fs.Int("n", 0, "GAP graph vertices (0 = default)")
		degree   = fs.Int("degree", 0, "GAP graph degree (0 = default)")
		kron     = fs.Bool("kron", false, "use the Kronecker generator for GAP inputs")
		grid     = fs.Bool("grid", false, "use a 2D grid (road-network-like) GAP input")
		seed     = fs.Uint64("seed", 0, "input seed (0 = default)")
		scale    = fs.Float64("scale", 0, "SPEC-proxy scale factor (0 = default)")
		rob      = fs.Int("rob", 0, "ROB size override")
		batch    = fs.Int("batch", 0, "decoupling-queue lane size (0 = default, 1 = per-instruction; results identical at any size)")
		memLat   = fs.Int("mem-latency", 0, "memory latency override (cycles)")
		showCfg  = fs.Bool("config", false, "print the core configuration and exit")
		list     = fs.Bool("list", false, "list available benchmarks and exit")
		watchdog = fs.Duration("watchdog", 0, "stall-watchdog budget (0 = disabled); aborts with a typed error if the run stops advancing")
		degrade  = fs.Bool("degrade", false, "on a recoverable fault, retry one technique rung down instead of failing")
		retries  = fs.Int("max-retries", 2, "ladder descents allowed (with -degrade)")
		ckptDir  = fs.String("checkpoint-dir", "", "write crash-safe state snapshots into this directory (empty = disabled)")
		ckptN    = fs.Uint64("checkpoint-every", 1_000_000, "snapshot interval in retired instructions (with -checkpoint-dir)")
		resume   = fs.Bool("resume", false, "resume from the latest snapshot in -checkpoint-dir instead of starting from zero")
		inject   = fs.String("inject", "", "fault drill: panic@N panics the frontend at instruction N on the first attempt (requires -degrade; exercises the ladder deterministically)")
	)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return exitClean
		}
		return exitUsage
	}

	cfg := core.DefaultConfig()
	if *rob > 0 {
		cfg.ROBSize = *rob
	}
	cfg.Batch = *batch
	if *memLat > 0 {
		cfg.Hierarchy.MemLatency = *memLat
	}
	if *showCfg {
		fmt.Fprint(stdout, sim.DescribeConfig(cfg))
		return exitClean
	}
	if *list {
		for _, s := range catalog.Suites() {
			fmt.Fprintf(stdout, "%-8s %v\n", s+":", catalog.Names(s))
		}
		return exitClean
	}

	drill, err := parseInject(*inject, *degrade, *ckptDir)
	if err != nil {
		fmt.Fprintf(stderr, "wpsim: %v\n", err)
		return exitUsage
	}
	w, err := catalog.Find(*suite, *bench, catalog.Params{
		N: *n, Degree: *degree, Kron: *kron, Grid: *grid, Seed: *seed, Scale: *scale})
	if err != nil {
		fmt.Fprintf(stderr, "wpsim: %v\n", err)
		return exitFailure
	}
	fault := faultOptions(*watchdog, *degrade, *retries)

	metrics, tsink, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(stderr, "wpsim: observability: %v\n", err)
		return exitFailure
	}
	// The flush guarantee: whatever exit path the rest of run takes —
	// hard failure, annotated result, clean — the observability outputs
	// are written before the process exits. A flush failure turns a
	// clean or annotated exit into a hard failure (silent data loss is
	// worse than a loud one), but never masks an earlier hard failure.
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintf(stderr, "wpsim: observability: %v\n", err)
			if code != exitFailure {
				code = exitFailure
			}
		}
	}()

	// SIGINT/SIGTERM cancel the run cleanly: the simulation stops at its
	// next lane boundary, the partial result prints annotated, and the
	// process exits nonzero. A second signal kills the process outright
	// (the default behavior NotifyContext restores after the first).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	obsLabel := *suite + "/" + *bench

	if *wp == "all" {
		faulted, err := compareAll(ctx, stdout, cfg, w, *suite, *bench, *maxInsts, *warmup, *parallel, *jobs, fault, obsCfg{metrics, tsink, obsLabel}, *ckptDir, *ckptN)
		if err != nil {
			fmt.Fprintf(stderr, "wpsim: %v\n", err)
			return exitFailure
		}
		if faulted {
			return exitAnnotated
		}
		return exitClean
	}

	kind, ok := wrongpath.ParseKind(*wp)
	if !ok {
		fmt.Fprintf(stderr, "wpsim: unknown wrong-path technique %q (have %s, all)\n", *wp, strings.Join(wrongpath.Names(), ", "))
		return exitFailure
	}

	inst, err := w.Build()
	if err != nil {
		fmt.Fprintf(stderr, "wpsim: building %s/%s: %v\n", *suite, *bench, err)
		return exitFailure
	}
	budget := *maxInsts
	if budget == 0 {
		budget = inst.SuggestedMaxInsts
	}
	simCfg := sim.Config{Core: cfg, WP: kind, MaxInsts: budget, WarmupInsts: *warmup,
		ParallelFrontend: *parallel, Watchdog: fault.Watchdog, Degrade: fault.Degrade,
		Metrics: metrics, Trace: tsink, ObsLabel: obsLabel,
		Ctx: ctx, CheckpointDir: *ckptDir, CheckpointEvery: *ckptN}
	var res *sim.Result
	if simCfg.Degrade.Enabled() {
		// Ladder path: the first attempt consumes the prebuilt instance,
		// retries rebuild a fresh one. With -checkpoint-dir, retries (and
		// re-runs over a non-empty directory) resume from the latest
		// snapshot instead of from zero. An -inject drill arms only the
		// first attempt, so the descent it forces happens exactly once.
		first := inst
		res, err = sim.RunLadder(simCfg, func(c sim.Config) (sim.Source, error) {
			armed := first != nil
			var src sim.Source
			if armed {
				i := first
				first = nil
				src = sim.NewFunctionalSource(c, i)
			} else {
				retry, err := w.Build()
				if err != nil {
					return nil, err
				}
				src = sim.NewFunctionalSource(c, retry)
			}
			if armed && drill != nil {
				src = sim.WrapSource(src, drill)
			}
			return src, nil
		})
	} else {
		snap := ""
		if *resume && *ckptDir != "" {
			// -resume over an empty or missing directory starts from zero
			// (the first run of a crash-safe loop has nothing to resume).
			snap, err = checkpoint.Latest(*ckptDir)
			if err != nil {
				fmt.Fprintf(stderr, "wpsim: finding latest snapshot in %s: %v\n", *ckptDir, err)
				return exitFailure
			}
		}
		if snap != "" {
			res, err = sim.Resume(simCfg, inst, snap)
		} else {
			res, err = sim.Run(simCfg, inst)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "wpsim: simulating: %v\n", err)
		return exitFailure
	}
	printResult(stdout, *suite, *bench, kind, res)
	if res.Err != nil || res.Degraded {
		return exitAnnotated
	}
	return exitClean
}

// parseInject parses the -inject fault drill ("panic@N"). Drills
// require -degrade (the whole point is watching the ladder recover) and
// are incompatible with -checkpoint-dir (wrapped sources cannot
// checkpoint — the injector's own state is not snapshottable).
func parseInject(spec string, degrade bool, ckptDir string) (func(queue.Producer) queue.Producer, error) {
	if spec == "" {
		return nil, nil
	}
	kind, at, ok := strings.Cut(spec, "@")
	if !ok || kind != "panic" {
		return nil, fmt.Errorf("bad -inject %q (want panic@N)", spec)
	}
	n, err := strconv.ParseUint(at, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad -inject position %q: %v", at, err)
	}
	if !degrade {
		return nil, fmt.Errorf("-inject requires -degrade (the drill exercises the degradation ladder)")
	}
	if ckptDir != "" {
		return nil, fmt.Errorf("-inject is incompatible with -checkpoint-dir (wrapped sources cannot checkpoint)")
	}
	return func(p queue.Producer) queue.Producer {
		return faultinject.PanicAt(p, n, "injected fault drill (-inject)")
	}, nil
}

// obsCfg threads the observability outputs into the comparison run.
type obsCfg struct {
	metrics *obs.Registry
	trace   *obs.TraceSink
	label   string
}

// faultConfig bundles the fault-tolerance flags for threading into
// sim.Config.
type faultConfig struct {
	Watchdog time.Duration
	Degrade  sim.DegradePolicy
}

func faultOptions(watchdog time.Duration, degrade bool, retries int) faultConfig {
	fc := faultConfig{Watchdog: watchdog}
	if degrade {
		fc.Degrade = sim.DegradePolicy{MaxRetries: retries}
	}
	return fc
}

// compareAll runs the workload under every technique (in
// wrongpath.Kinds() order) on the batch engine and prints a one-line
// comparison per kind, with wpemul as the error reference. It returns
// whether any cell carries a fault annotation — the caller turns that
// into a nonzero exit after the full table has printed.
func compareAll(ctx context.Context, stdout io.Writer, cfg core.Config, w workloads.Workload, suite, bench string, maxInsts, warmup uint64, parallel bool, jobs int, fault faultConfig, oc obsCfg, ckptDir string, ckptN uint64) (bool, error) {
	kinds := wrongpath.Kinds()
	simCfg := sim.Config{Core: cfg, MaxInsts: maxInsts, WarmupInsts: warmup, ParallelFrontend: parallel,
		Watchdog: fault.Watchdog, Degrade: fault.Degrade,
		Metrics: oc.metrics, Trace: oc.trace, ObsLabel: oc.label,
		Ctx: ctx, CheckpointDir: ckptDir, CheckpointEvery: ckptN}
	results, err := sim.RunKinds(simCfg, w, kinds, jobs)
	if err != nil {
		return false, err
	}
	var ref *sim.Result
	for i, k := range kinds {
		if k == wrongpath.WPEmul {
			ref = results[i]
		}
	}
	fmt.Fprintf(stdout, "workload   %s/%s\n\n", suite, bench)
	fmt.Fprintf(stdout, "%-10s %12s %12s %8s %10s %12s %12s\n",
		"technique", "insts", "cycles", "IPC", "vs wpemul", "WP executed", "wall")
	faulted := false
	for i, k := range kinds {
		res := results[i]
		errCol := "(ref)"
		if k != wrongpath.WPEmul && ref != nil {
			errCol = fmt.Sprintf("%+.1f%%", 100*sim.Error(res, ref))
		}
		note := ""
		switch {
		case res.Degraded:
			note = fmt.Sprintf("  DEGRADED(ran as %v)", res.WP)
			faulted = true
		case res.Err != nil:
			note = fmt.Sprintf("  FAULT(%v)", simerr.FirstLine(res.Err))
			faulted = true
		}
		fmt.Fprintf(stdout, "%-10s %12d %12d %8.4f %10s %12d %12v%s\n",
			k, res.Core.Instructions, res.Core.Cycles, res.IPC(),
			errCol, res.Core.WPExecuted, res.Wall.Round(1_000_000), note)
	}
	if jobs != 1 {
		fmt.Fprintf(stdout, "\n(wall clocks from concurrent runs; use -jobs 1 for calibrated timing)\n")
	}
	return faulted, nil
}

func printResult(stdout io.Writer, suite, bench string, kind wrongpath.Kind, res *sim.Result) {
	fmt.Fprintf(stdout, "workload            %s/%s\n", suite, bench)
	fmt.Fprintf(stdout, "technique           %s\n", kind)
	if res.Degraded {
		fmt.Fprintf(stdout, "DEGRADED            ran as %v (requested %v): %v\n", res.WP, res.RequestedWP, res.DegradeFault)
	}
	fmt.Fprintf(stdout, "instructions        %d\n", res.Core.Instructions)
	fmt.Fprintf(stdout, "cycles              %d\n", res.Core.Cycles)
	fmt.Fprintf(stdout, "IPC                 %.4f\n", res.IPC())
	fmt.Fprintf(stdout, "branch MPKI         %.2f\n", res.Core.MPKI())
	fmt.Fprintf(stdout, "cond mispredict     %d / %d\n", res.Core.CondMispredicted, res.Core.CondBranches)
	fmt.Fprintf(stdout, "L1D miss rate       %.2f%% (%d accesses)\n", 100*res.L1D.Correct.MissRate(), res.L1D.Correct.Accesses)
	fmt.Fprintf(stdout, "L2 miss rate        %.2f%% (%d accesses)\n", 100*res.L2.Total().MissRate(), res.L2.Total().Accesses)
	fmt.Fprintf(stdout, "LLC miss rate       %.2f%% (%d accesses)\n", 100*res.LLC.Total().MissRate(), res.LLC.Total().Accesses)
	fmt.Fprintf(stdout, "DRAM accesses       %d (%d wrong-path)\n", res.MemAccesses, res.WrongMemAccesses)
	fmt.Fprintf(stdout, "DTLB miss rate      %.2f%%\n", 100*res.DTLB.Total().MissRate())
	fmt.Fprintf(stdout, "WP fetched          %d\n", res.Core.WPFetched)
	fmt.Fprintf(stdout, "WP executed         %d (%.0f%% of correct path)\n", res.Core.WPExecuted, 100*res.Core.WPFraction())
	fmt.Fprintf(stdout, "WP loads executed   %d (%d with address)\n", res.Core.WPLoads, res.Core.WPLoadsWithAddr)
	fmt.Fprintf(stdout, "WP L2 misses        %d\n", res.L2.Wrong.Misses)
	if kind == wrongpath.Conv {
		fmt.Fprintf(stdout, "conv frac           %.0f%%\n", 100*res.Policy.ConvFrac())
		fmt.Fprintf(stdout, "conv dist           %.1f\n", res.Policy.ConvDist())
		fmt.Fprintf(stdout, "addr recover        %.0f%%\n", 100*res.Policy.AddrRecoverFrac())
		fmt.Fprintf(stdout, "match len           %.1f\n", res.Policy.MatchLen())
	}
	if kind == wrongpath.WPEmul {
		fmt.Fprintf(stdout, "WP emulations       %d paths, %d instructions\n", res.WPEmulatedPaths, res.WPEmulatedInsts)
	}
	fmt.Fprintf(stdout, "wall time           %v\n", res.Wall)
	if len(res.Output) > 0 {
		fmt.Fprintf(stdout, "program output      %q\n", res.Output)
	}
	if res.Err != nil {
		// The caller exits with exitAnnotated: the stats above are still
		// the truth up to the fault, and a canceled run's snapshot chain
		// stays resumable.
		fmt.Fprintf(stdout, "functional error    %v\n", res.Err)
	}
}
