// Command wpexp regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	wpexp                      # everything, paper order
//	wpexp -exp fig1            # one experiment
//	wpexp -exp table3 -n 16384 # smaller GAP input
//	wpexp -quick               # test-scale inputs (seconds, not minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), ", ")+", or all")
		n       = flag.Int("n", 0, "GAP graph vertices (0 = default)")
		degree  = flag.Int("degree", 0, "GAP graph degree (0 = default)")
		scale   = flag.Float64("scale", 0, "SPEC-proxy scale (0 = default)")
		quick   = flag.Bool("quick", false, "use test-scale inputs")
		verbose = flag.Bool("v", false, "print one line per simulation run")
	)
	flag.Parse()

	opt := experiments.Options{Out: os.Stdout}
	if *quick {
		opt.GAP = gap.TestParams()
		opt.Spec = specproxy.TestParams()
	}
	if *n > 0 {
		if opt.GAP.N == 0 {
			opt.GAP = gap.DefaultParams()
		}
		opt.GAP.N = *n
	}
	if *degree > 0 {
		if opt.GAP.N == 0 {
			opt.GAP = gap.DefaultParams()
		}
		opt.GAP.Degree = *degree
	}
	if *scale > 0 {
		opt.Spec = specproxy.DefaultParams()
		opt.Spec.Scale = *scale
	}
	if *verbose {
		opt.Progress = os.Stderr
	}

	r := experiments.NewRunner(opt)
	var err error
	if *exp == "all" {
		err = r.All()
	} else {
		err = r.Run(*exp)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wpexp: %v\n", err)
		os.Exit(1)
	}
}
