// Command wpexp regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	wpexp                      # everything, paper order
//	wpexp -exp fig1            # one experiment
//	wpexp -exp table3 -n 16384 # smaller GAP input
//	wpexp -quick               # test-scale inputs (seconds, not minutes)
//	wpexp -exp fig1 -jobs 0    # fan simulations out, one worker per core
//
// Report text is byte-identical for any -jobs value; only host
// wall-clock changes (the speed and parallel experiments always run
// their timed simulations serially).
//
// Exit codes: 0 clean, 1 hard failure, 3 report flushed with annotated
// cells (DEGRADED or INCOMPLETE). The observability outputs
// (-metrics-out, -trace-out, -pprof) flush on every exit path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliobs"
	"repro/internal/experiments"
	"repro/internal/resultcache"
	"repro/internal/simerr"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

// Exit codes. exitAnnotated marks a sweep whose report flushed but
// carries fault annotations (DEGRADED or INCOMPLETE cells): nonzero so
// CI notices, distinct from the hard-failure exit 1.
const (
	exitClean     = 0
	exitFailure   = 1
	exitUsage     = 2
	exitAnnotated = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind an exit code; the deferred
// observability Finish guarantees -metrics-out/-trace-out/-pprof flush
// before every exit, hard failures included.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("wpexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), ", ")+", or all")
		n        = fs.Int("n", 0, "GAP graph vertices (0 = default)")
		degree   = fs.Int("degree", 0, "GAP graph degree (0 = default)")
		scale    = fs.Float64("scale", 0, "SPEC-proxy scale (0 = default)")
		quick    = fs.Bool("quick", false, "use test-scale inputs")
		batch    = fs.Int("batch", 0, "decoupling-queue lane size (0 = default, 1 = per-instruction; report text identical at any size)")
		verbose  = fs.Bool("v", false, "print one line per simulation run")
		jobs     = fs.Int("jobs", 1, "batch worker count for independent simulations (0 = one per host core)")
		benchOut = fs.String("bench-out", "", "write a JSON timing record for the run to this file")
		watchdog = fs.Duration("watchdog", 0, "stall-watchdog budget per simulation (0 = disabled); stalled cells abort with a typed error")
		degrade  = fs.Bool("degrade", false, "on a recoverable fault, retry a cell one technique rung down instead of failing the sweep (degraded cells are annotated)")
		retries  = fs.Int("max-retries", 2, "ladder descents allowed per cell (with -degrade)")
		ckptDir  = fs.String("checkpoint-dir", "", "write per-cell crash-safe snapshots under this directory (empty = disabled)")
		ckptN    = fs.Uint64("checkpoint-every", 1_000_000, "snapshot interval in retired instructions (with -checkpoint-dir)")
		resume   = fs.Bool("resume", false, "resume each cell from its latest snapshot under -checkpoint-dir; the resumed report is byte-identical to an uninterrupted sweep")
		cacheDir = fs.String("cache-dir", "", "persist fault-free cell results under this directory and skip re-simulating them on repeated sweeps (empty = disabled)")
		cacheMax = fs.Int("cache-max", 0, "cell-cache in-memory entry bound (with -cache-dir; 0 = default)")
	)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return exitClean
		}
		return exitUsage
	}

	opt := experiments.Options{Out: stdout, Batch: *batch}
	if *quick {
		opt.GAP = gap.TestParams()
		opt.Spec = specproxy.TestParams()
	}
	if *n > 0 {
		if opt.GAP.N == 0 {
			opt.GAP = gap.DefaultParams()
		}
		opt.GAP.N = *n
	}
	if *degree > 0 {
		if opt.GAP.N == 0 {
			opt.GAP = gap.DefaultParams()
		}
		opt.GAP.Degree = *degree
	}
	if *scale > 0 {
		opt.Spec = specproxy.DefaultParams()
		opt.Spec.Scale = *scale
	}
	if *verbose {
		opt.Progress = stderr
	}
	opt.Jobs = *jobs
	opt.Watchdog = *watchdog
	if *degrade {
		opt.MaxRetries = *retries
	}
	opt.CheckpointDir = *ckptDir
	opt.CheckpointEvery = *ckptN
	opt.Resume = *resume
	if *cacheDir != "" {
		cache, err := resultcache.New(*cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintf(stderr, "wpexp: opening -cache-dir: %v\n", err)
			return exitFailure
		}
		opt.Cache = cache
	}

	// First SIGINT/SIGTERM cancels the sweep cleanly: in-flight cells
	// finish their lane, the report flushes with INCOMPLETE footnotes,
	// and snapshots stay resumable. A second signal kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt.Ctx = ctx

	var err error
	if opt.Metrics, opt.Trace, err = obsFlags.Start(); err != nil {
		fmt.Fprintf(stderr, "wpexp: observability: %v\n", err)
		return exitFailure
	}
	// The flush guarantee: a hard runner failure or an annotated exit
	// still writes the observability outputs — the metrics of a faulted
	// sweep are exactly the ones worth keeping. A flush failure hardens
	// the exit to 1 so the loss is never silent.
	defer func() {
		if err := obsFlags.Finish(); err != nil {
			fmt.Fprintf(stderr, "wpexp: observability: %v\n", err)
			code = exitFailure
		}
	}()

	r := experiments.NewRunner(opt)
	start := time.Now()
	if *exp == "all" {
		err = r.All()
	} else {
		err = r.Run(*exp)
	}
	wall := time.Since(start)
	if err != nil && !errors.Is(err, simerr.ErrCanceled) {
		fmt.Fprintf(stderr, "wpexp: %v\n", err)
		return exitFailure
	}
	if err != nil {
		// Canceled: the partial report and its INCOMPLETE footnote are
		// already flushed; the deferred Finish writes the observability
		// outputs, and the Faulted check below exits annotated.
		fmt.Fprintf(stderr, "wpexp: %v\n", err)
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, *exp, *jobs, *quick, wall); err != nil {
			fmt.Fprintf(stderr, "wpexp: writing %s: %v\n", *benchOut, err)
			return exitFailure
		}
	}
	// The report flushed, but some cells are annotated (DEGRADED or
	// INCOMPLETE): tell CI without discarding the partial output.
	if r.Faulted() {
		return exitAnnotated
	}
	return exitClean
}

// benchRecord is the -bench-out JSON schema, consumed by the CI
// bench-smoke step (make bench-smoke).
type benchRecord struct {
	Experiment  string  `json:"experiment"`
	Jobs        int     `json:"jobs"`
	Quick       bool    `json:"quick"`
	WallSeconds float64 `json:"wall_seconds"`
}

func writeBench(path, exp string, jobs int, quick bool, wall time.Duration) error {
	data, err := json.MarshalIndent(benchRecord{
		Experiment:  exp,
		Jobs:        jobs,
		Quick:       quick,
		WallSeconds: wall.Seconds(),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
