// Command wplint runs the repository's simulator-invariant static
// analysis suite (internal/analysis) over the given packages and exits
// non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/wplint ./...
//	go run ./cmd/wplint ./internal/sim ./internal/core
//	go run ./cmd/wplint -list
//
// Diagnostics are printed one per line as file:line:col: analyzer:
// message. Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wplint [-list] [packages]\n\nRuns the simulator-invariant analyzers over the module's packages\n(default ./...). Patterns: a directory, or dir/... for a subtree.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analysis.All())
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts and
		// clickable from the repo root.
		if rel, err := filepath.Rel(loader.ModuleRoot, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wplint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wplint:", err)
	os.Exit(2)
}
