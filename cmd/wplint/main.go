// Command wplint runs the repository's simulator-invariant static
// analysis suite (internal/analysis) over the given packages and exits
// non-zero when any invariant is violated.
//
// Usage:
//
//	go run ./cmd/wplint ./...
//	go run ./cmd/wplint ./internal/sim ./internal/core
//	go run ./cmd/wplint -list
//	go run ./cmd/wplint -fix ./...
//	go run ./cmd/wplint -sarif wplint.sarif ./...
//	go run ./cmd/wplint -baseline .wplint-baseline.json ./...
//
// Diagnostics are printed one per line as file:line:col: analyzer:
// message. -fix applies every machine-applicable suggested fix in
// place (idempotent: a second run changes nothing). -sarif writes a
// SARIF 2.1.0 log for code scanning alongside the normal output.
// -baseline filters findings through an accept-then-ratchet file;
// -update-baseline rewrites that file from the current findings.
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	fix := flag.Bool("fix", false, "apply suggested fixes in place, then re-analyze")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this `file` (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "filter findings through this accept-then-ratchet `file`")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from the current findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wplint [-list] [-fix] [-sarif file] [-baseline file [-update-baseline]] [packages]\n\nRuns the simulator-invariant analyzers over the module's packages\n(default ./...). Patterns: a directory, or dir/... for a subtree.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *updateBaseline && *baselinePath == "" {
		fatal(fmt.Errorf("-update-baseline requires -baseline"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	diags, err := run(loader, patterns)
	if err != nil {
		fatal(err)
	}

	if *fix {
		applied, files, err := analysis.ApplyFixes(diags)
		if err != nil {
			fatal(err)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "wplint: applied %d fix(es) to %d file(s)\n", applied, len(files))
			// Re-analyze from the rewritten sources with a fresh loader
			// (the old one memoizes parsed packages): remaining output
			// reflects what -fix could not repair.
			if loader, err = analysis.NewLoader(wd); err != nil {
				fatal(err)
			}
			if diags, err = run(loader, patterns); err != nil {
				fatal(err)
			}
		}
	}

	// Module-relative paths: stable across checkouts, clickable from
	// the repo root, and the key space the baseline ratchets over.
	for i := range diags {
		if rel, err := filepath.Rel(loader.ModuleRoot, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *sarifOut != "" {
		// The SARIF log always carries every finding — code scanning
		// tracks which ones it has seen; the baseline only gates the
		// exit status.
		data, err := analysis.SARIF(diags, analysis.All(), "")
		if err != nil {
			fatal(err)
		}
		if *sarifOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	failing := diags
	if *baselinePath != "" {
		if *updateBaseline {
			if err := analysis.WriteBaseline(*baselinePath, diags); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wplint: baseline %s updated with %d finding(s)\n", *baselinePath, len(diags))
			return
		}
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var accepted []analysis.Diagnostic
		accepted, failing = base.Filter(diags)
		if len(accepted) > 0 {
			fmt.Fprintf(os.Stderr, "wplint: %d baselined finding(s) suppressed\n", len(accepted))
		}
	}

	// With -sarif -, the SARIF log owns stdout; keep it parseable by
	// routing the plain-text findings to stderr.
	findingsOut := os.Stdout
	if *sarifOut == "-" {
		findingsOut = os.Stderr
	}
	for _, d := range failing {
		fmt.Fprintln(findingsOut, d)
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "wplint: %d finding(s)\n", len(failing))
		os.Exit(1)
	}
}

// run loads the patterns and applies the full analyzer suite.
func run(loader *analysis.Loader, patterns []string) ([]analysis.Diagnostic, error) {
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, analysis.All()), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wplint:", err)
	os.Exit(2)
}
