// Command benchdiff compares two throughput records produced by the
// benchmark suites (BENCH_hotpath.json, BENCH_obs.json): it prints a
// per-technique old/new/delta table and, with -fail-below, exits
// non-zero when any technique regressed by more than the given percent
// — the CI hook for holding a hot-path speedup once it has been won.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -fail-below 10 BENCH_hotpath_baseline.json BENCH_hotpath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record is the shared shape of the bench JSON artifacts; fields the
// two schemas do not share are ignored.
type record struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]float64 `json:"instructions_per_sec"`
}

func main() {
	failBelow := flag.Float64("fail-below", 0,
		"exit 1 if any shared technique is slower than OLD by more than this percent (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-fail-below PCT] OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}

	keys := make([]string, 0, len(oldRec.Benchmarks))
	for k := range oldRec.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Printf("%-12s %14s %14s %9s\n", "technique", "old ins/s", "new ins/s", "delta")
	failed := false
	for _, k := range keys {
		o := oldRec.Benchmarks[k]
		n, ok := newRec.Benchmarks[k]
		if !ok {
			fmt.Printf("%-12s %14.0f %14s %9s\n", k, o, "-", "gone")
			continue
		}
		delta := 0.0
		if o > 0 {
			delta = 100 * (n - o) / o
		}
		mark := ""
		if *failBelow > 0 && delta < -*failBelow {
			mark = "  REGRESSED"
			failed = true
		}
		fmt.Printf("%-12s %14.0f %14.0f %+8.1f%%%s\n", k, o, n, delta, mark)
	}
	for k, n := range newRec.Benchmarks {
		if _, ok := oldRec.Benchmarks[k]; !ok {
			fmt.Printf("%-12s %14s %14.0f %9s\n", k, "-", n, "new")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.1f%% detected\n", *failBelow)
		os.Exit(1)
	}
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no instructions_per_sec entries", path)
	}
	return &r, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
