// Command wpasm is the workbench for the simulator's assembly language:
// it assembles a source file and can disassemble it, run it on the
// functional simulator, or print the first instructions of its dynamic
// trace — handy when developing new workloads.
//
// Usage:
//
//	wpasm prog.s                      # assemble, report size
//	wpasm -disasm prog.s              # print the disassembly
//	wpasm -run prog.s                 # run functionally, print output/exit
//	wpasm -trace 40 prog.s            # print the first 40 dynamic records
//	wpasm -run -max-insts 1000 prog.s # bound the run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/workloads"
)

func main() {
	var (
		disasm   = flag.Bool("disasm", false, "print the disassembly")
		run      = flag.Bool("run", false, "execute on the functional simulator")
		traceN   = flag.Int("trace", 0, "print the first N dynamic instruction records")
		maxInsts = flag.Uint64("max-insts", 100_000_000, "functional instruction budget")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wpasm [flags] file.s")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src), asm.WithBase(workloads.StandardCodeBase))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assembled %d instructions, base %#x, entry %#x, %d symbols\n",
		len(prog.Insts), prog.Base, prog.Entry, len(prog.Symbols))

	if *disasm {
		fmt.Print(prog.Disassemble())
	}

	if *traceN > 0 {
		cpu := functional.New(prog, mem.New(), workloads.StandardStackTop)
		for i := 0; i < *traceN && !cpu.Halted(); i++ {
			di, err := cpu.Step()
			if err != nil {
				fmt.Printf("  [stopped: %v]\n", err)
				break
			}
			line := fmt.Sprintf("%08x  %-28s", di.PC, di.In.String())
			if di.HasAddr {
				line += fmt.Sprintf("  mem=%#x", di.MemAddr)
			}
			if di.In.Op.IsControl() {
				line += fmt.Sprintf("  -> %#x", di.NextPC)
			}
			fmt.Println(line)
		}
	}

	if *run {
		cpu := functional.New(prog, mem.New(), workloads.StandardStackTop)
		n, err := cpu.Run(*maxInsts)
		fmt.Printf("executed %d instructions\n", n)
		if len(cpu.Output) > 0 {
			fmt.Printf("output:\n%s", cpu.Output)
		}
		switch {
		case err != nil:
			fmt.Printf("stopped: %v\n", err)
			os.Exit(1)
		case cpu.Halted():
			fmt.Printf("exit code %d\n", cpu.ExitCode())
		default:
			fmt.Println("instruction budget exhausted")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wpasm:", err)
	os.Exit(1)
}
