package repro_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// -hotpath-bench-out makes BenchmarkHotPath write its per-technique
// throughput record to a JSON file when it finishes — the regression
// artifact `make bench` uploads from CI and `make bench-diff` compares.
var hotpathBenchOut = flag.String("hotpath-bench-out", "",
	"write BenchmarkHotPath per-technique instructions/sec to this JSON file")

// hotpathRecord is the BENCH_hotpath.json schema: end-to-end simulated
// instructions/sec per wrong-path technique with observability DISABLED
// — the pure hot path (functional frontend → decoupling queue → core)
// that the batched-lane refactor optimizes. Compare two records with
// `make bench-diff` (cmd/benchdiff).
type hotpathRecord struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Workload   string             `json:"workload"`
	MaxInsts   uint64             `json:"max_insts"`
	Benchmarks map[string]float64 `json:"instructions_per_sec"`
}

var hotpathBench = struct {
	sync.Mutex
	perTech map[string]float64
}{perTech: map[string]float64{}}

// hotpathParams is the hot-path bench input: one branchy GAP kernel at
// a scale where one run is O(100 ms), so per-iteration noise stays low
// while `-benchtime 3x` finishes quickly.
func hotpathParams() gap.Params {
	return gap.Params{N: 4096, Degree: 8, Seed: 42, MaxInsts: 400_000}
}

// BenchmarkHotPath measures uninstrumented end-to-end simulation
// throughput per technique. Workload construction runs outside the
// timer: the metric is simulator speed, the paper's headline currency,
// not graph-generation speed. Run via `make bench`, which writes
// BENCH_hotpath.json.
func BenchmarkHotPath(b *testing.B) {
	w := gap.BFS(hotpathParams())
	for _, kind := range wrongpath.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			var insts uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				inst := w.MustBuild()
				b.StartTimer()
				cfg := sim.Default(kind)
				cfg.MaxInsts = inst.SuggestedMaxInsts
				res, err := sim.Run(cfg, inst)
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				insts += res.Core.Instructions
			}
			ips := float64(insts) / b.Elapsed().Seconds()
			b.ReportMetric(ips/1e6, "Msimins/s")
			hotpathBench.Lock()
			hotpathBench.perTech[kind.String()] = ips
			hotpathBench.Unlock()
		})
	}
	if *hotpathBenchOut != "" {
		if err := writeHotpathBench(*hotpathBenchOut); err != nil {
			b.Fatalf("writing %s: %v", *hotpathBenchOut, err)
		}
	}
}

func writeHotpathBench(path string) error {
	hotpathBench.Lock()
	defer hotpathBench.Unlock()
	p := hotpathParams()
	data, err := json.MarshalIndent(hotpathRecord{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Workload:   "gap/bfs",
		MaxInsts:   p.MaxInsts,
		Benchmarks: hotpathBench.perTech,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
