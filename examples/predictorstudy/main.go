// Predictor study: demonstrates the flexibility argument for
// functional-first simulation — the same functional frontend drives
// performance models with different branch predictors, here a sweep of
// predictor sizes, and shows how wrong-path activity scales with the
// misprediction rate.
//
//	go run ./examples/predictorstudy
package main

import (
	"fmt"
	"log"

	"repro/internal/branch"
	"repro/internal/sim"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

func main() {
	w := gap.CC(gap.Params{N: 1 << 15, Degree: 8, Seed: 42})

	fmt.Println("branch predictor size sweep on gap/cc (conv wrong-path model)")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %12s %8s\n", "predictor", "MPKI", "IPC", "WP insts/CP", "cycles")

	sizes := []struct {
		name                  string
		kind                  branch.PredictorKind
		bimodal, gshare, hist int
	}{
		{"tiny (1K/1K, h=6)", branch.PredictorTournament, 10, 10, 6},
		{"small (4K/4K, h=10)", branch.PredictorTournament, 12, 12, 10},
		{"default (16K/64K, h=16)", branch.PredictorTournament, 14, 16, 16},
		{"large (64K/256K, h=18)", branch.PredictorTournament, 16, 18, 18},
		{"tage", branch.PredictorTAGE, 14, 16, 64},
		{"perfect (oracle)", branch.PredictorPerfect, 14, 16, 16},
	}
	for _, s := range sizes {
		cfg := sim.Default(wrongpath.Conv)
		cfg.Core.BranchPred = branch.Config{
			Predictor:   s.kind,
			BimodalBits: s.bimodal, GShareBits: s.gshare,
			ChoiceBits: s.bimodal, HistoryLen: s.hist,
			RASSize: 32, IndirectBits: 12,
		}
		inst, err := w.Build()
		if err != nil {
			log.Fatal(err)
		}
		cfg.MaxInsts = inst.SuggestedMaxInsts
		res, err := sim.Run(cfg, inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %10.3f %11.0f%% %8d\n",
			s.name, res.Core.MPKI(), res.IPC(),
			100*res.Core.WPFraction(), res.Core.Cycles)
	}

	fmt.Println()
	fmt.Println("smaller predictors mispredict more, spend more time on the wrong")
	fmt.Println("path, and make wrong-path modeling matter more — the trend the")
	fmt.Println("paper extrapolates for future deeper/wider cores.")
}
