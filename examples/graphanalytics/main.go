// Graph analytics: run a GAP kernel (BFS by default) on a generated
// graph under all five wrong-path techniques and report accuracy,
// speed, and the convergence-technique internals.
//
//	go run ./examples/graphanalytics
//	go run ./examples/graphanalytics -bench sssp -n 65536 -kron
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

func main() {
	bench := flag.String("bench", "bfs", "GAP kernel: bc bfs cc pr sssp tc")
	n := flag.Int("n", 1<<16, "graph vertices")
	degree := flag.Int("degree", 8, "average degree")
	kron := flag.Bool("kron", false, "Kronecker (RMAT) generator instead of uniform")
	flag.Parse()

	params := gap.Params{N: *n, Degree: *degree, Seed: 42, Kron: *kron}
	w, ok := gap.ByName(*bench, params)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (have %v)\n", *bench, gap.Names())
		os.Exit(1)
	}

	fmt.Printf("gap/%s on a %d-vertex graph (degree %d, kron=%v)\n\n", *bench, *n, *degree, *kron)
	fmt.Printf("%-9s %8s %12s %10s %8s %10s\n", "model", "IPC", "cycles", "WP insts", "error", "wall")

	kinds := wrongpath.Kinds()
	ordered, err := sim.RunKinds(sim.Default(wrongpath.NoWP), w, kinds, 1)
	if err != nil {
		log.Fatal(err)
	}
	results := map[wrongpath.Kind]*sim.Result{}
	for i, kind := range kinds {
		results[kind] = ordered[i]
	}
	ref := results[wrongpath.WPEmul]
	for _, kind := range kinds {
		res := results[kind]
		fmt.Printf("%-9s %8.3f %12d %10d %+7.1f%% %10v\n",
			kind, res.IPC(), res.Core.Cycles, res.Core.WPExecuted,
			100*sim.Error(res, ref), res.Wall.Round(1_000_000))
	}

	conv := results[wrongpath.Conv]
	fmt.Printf("\nconvergence exploitation internals (paper Table III):\n")
	fmt.Printf("  branch misses with convergence found:  %.0f%%\n", 100*conv.Policy.ConvFrac())
	fmt.Printf("  average distance to convergence point: %.1f instructions\n", conv.Policy.ConvDist())
	if conv.Core.WPLoads > 0 {
		fmt.Printf("  executed wrong-path loads with recovered address: %.0f%%\n",
			100*float64(conv.Core.WPLoadsWithAddr)/float64(conv.Core.WPLoads))
	}
	if ref.L2.Wrong.Misses > 0 {
		fmt.Printf("  wrong-path L2 misses covered vs wpemul: %.0f%%\n",
			100*float64(conv.L2.Wrong.Misses)/float64(ref.L2.Wrong.Misses))
	}
}
