// Custom workload: shows how to bring your own benchmark to the
// simulator — write assembly, lay out its data in memory, hand both to
// sim.Run, and measure how sensitive the workload is to wrong-path
// modeling.
//
// The workload is a tiny hash join: build a hash table from one
// relation, probe it with another. Probe misses and hits take different
// paths (data-dependent branch), and both the table and the relations
// are sparse in memory.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wrongpath"
)

const source = `
# hash join: count probe keys present in the build relation
# TABLE: open-addressing table (zero = empty), MASK = size-1
# BUILD/NB: build keys, PROBE/NP: probe keys
.entry main
main:
    la   s0, TABLE
    la   s1, BUILD
    li   s2, NB
    li   s3, MASK
    li   s4, 2654435761
    li   t0, 0
build:
    bge  t0, s2, probephase
    slli t1, t0, 3
    add  t1, t1, s1
    ld   t2, 0(t1)          # key
    addi t0, t0, 1
    mul  t3, t2, s4
    srli t3, t3, 16
    and  t3, t3, s3
bprobe:
    slli t4, t3, 3
    add  t4, t4, s0
    ld   t5, 0(t4)
    beqz t5, bplace         # empty slot
    addi t3, t3, 1
    and  t3, t3, s3
    j    bprobe
bplace:
    sd   t2, 0(t4)
    j    build
probephase:
    la   s1, PROBE
    li   s2, NP
    li   t0, 0
    li   s9, 0              # match count
probe:
    bge  t0, s2, done
    slli t1, t0, 3
    add  t1, t1, s1
    ld   t2, 0(t1)
    addi t0, t0, 1
    mul  t3, t2, s4
    srli t3, t3, 16
    and  t3, t3, s3
pprobe:
    slli t4, t3, 3
    add  t4, t4, s0
    ld   t5, 0(t4)          # table slot (sparse load)
    beqz t5, probe          # miss: next key (data-dependent)
    beq  t5, t2, hit        # hit (data-dependent)
    addi t3, t3, 1
    and  t3, t3, s3
    j    pprobe
hit:
    addi s9, s9, 1
    j    probe
done:
    mv   a0, s9
    li   a7, 0
    ecall
`

func main() {
	const (
		tableBits = 19 // 4 MB table: larger than the LLC slice
		nBuild    = 1 << 17
		nProbe    = 1 << 17
	)
	rng := graph.NewRNG(99)
	build := make([]uint64, nBuild)
	for i := range build {
		build[i] = rng.Next()>>1 | 1
	}
	probe := make([]uint64, nProbe)
	hits := 0
	for i := range probe {
		if rng.Next()&1 == 0 {
			probe[i] = build[rng.Intn(nBuild)]
			hits++
		} else {
			probe[i] = rng.Next()>>1 | 1
		}
	}

	buildInstance := func() *workloads.Instance {
		m := mem.New()
		m.WriteUint64Slice(0x2000_0000, build)
		m.WriteUint64Slice(0x3000_0000, probe)
		prog, err := asm.Assemble(source,
			asm.WithBase(workloads.StandardCodeBase),
			asm.WithSymbols(map[string]uint64{
				"TABLE": 0x1000_0000,
				"BUILD": 0x2000_0000, "NB": nBuild,
				"PROBE": 0x3000_0000, "NP": nProbe,
				"MASK": 1<<tableBits - 1,
			}))
		if err != nil {
			log.Fatal(err)
		}
		return &workloads.Instance{Prog: prog, Mem: m, StackTop: workloads.StandardStackTop}
	}

	fmt.Printf("hash join: %d build keys, %d probe keys (~%d expected matches)\n\n", nBuild, nProbe, hits)
	var ref *sim.Result
	for _, kind := range []wrongpath.Kind{wrongpath.WPEmul, wrongpath.ConvResolve, wrongpath.Conv, wrongpath.InstRec, wrongpath.NoWP} {
		res, err := sim.Run(sim.Default(kind), buildInstance())
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatalf("functional error: %v", res.Err)
		}
		if ref == nil {
			ref = res
		}
		fmt.Printf("%-9s IPC %.3f  L1D miss %.1f%%  error vs wpemul %+.1f%%\n",
			kind, res.IPC(), 100*res.L1D.Correct.MissRate(), 100*sim.Error(res, ref))
	}
	fmt.Println("\nthe join's probe loop converges after each key, so convergence")
	fmt.Println("exploitation recovers most of the wrong-path prefetch effect.")
}
