// Quickstart: assemble a small program, run it through the
// functional-first simulator under two wrong-path techniques, and
// compare the projections.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wrongpath"
)

// The demo program walks an array and conditionally accumulates — a
// data-dependent branch feeding on loads, the pattern that makes
// wrong-path modeling matter.
const source = `
.entry main
main:
    la   s0, DATA           # array base (symbol provided by the host)
    li   s1, N
    li   t0, 0              # index
    li   s2, 0              # sum
loop:
    bge  t0, s1, done
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)          # load element
    addi t0, t0, 1
    andi t3, t2, 1
    beqz t3, loop           # data-dependent branch
    add  s2, s2, t2
    j    loop
done:
    mv   a0, s2             # exit code = sum of odd elements
    li   a7, 0
    ecall
`

func buildInstance() (*workloads.Instance, error) {
	const n = 200_000
	m := mem.New()
	rng := graph.NewRNG(2024)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Next() >> 32
	}
	m.WriteUint64Slice(0x1000_0000, vals)

	prog, err := asm.Assemble(source,
		asm.WithBase(workloads.StandardCodeBase),
		asm.WithSymbols(map[string]uint64{"DATA": 0x1000_0000, "N": n}))
	if err != nil {
		return nil, err
	}
	return &workloads.Instance{Prog: prog, Mem: m, StackTop: workloads.StandardStackTop}, nil
}

func main() {
	fmt.Println("quickstart: simulating the same program under three wrong-path models")
	fmt.Println()

	var ref *sim.Result
	for _, kind := range []wrongpath.Kind{wrongpath.WPEmul, wrongpath.Conv, wrongpath.NoWP} {
		inst, err := buildInstance()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Default(kind), inst)
		if err != nil {
			log.Fatal(err)
		}
		if res.Err != nil {
			log.Fatalf("functional error: %v", res.Err)
		}
		if kind == wrongpath.WPEmul {
			ref = res
		}
		fmt.Printf("%-8s  %9d instructions  %10d cycles  IPC %.3f  error vs wpemul %+.1f%%\n",
			kind, res.Core.Instructions, res.Core.Cycles, res.IPC(), 100*sim.Error(res, ref))
	}

	fmt.Println()
	fmt.Println("wpemul is the reference (functional wrong-path emulation); nowp")
	fmt.Println("underestimates performance because the mispredicted wrong path")
	fmt.Println("prefetches the very array elements the correct path needs next.")
}
