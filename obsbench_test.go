package repro_test

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// -obs-bench-out makes BenchmarkObsSweep write its per-technique
// throughput record to a JSON file when it finishes — the regression
// artifact `make bench` uploads from CI.
var obsBenchOut = flag.String("obs-bench-out", "", "write BenchmarkObsSweep per-technique instructions/sec to this JSON file")

// obsBenchRecord is the BENCH_obs.json schema: simulated
// instructions/sec per wrong-path technique with the full observability
// stack (metrics registry + trace sink) attached, so regressions in
// either the simulator or its instrumentation show up here.
type obsBenchRecord struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	Benchmarks map[string]float64 `json:"instructions_per_sec"`
}

var obsBench = struct {
	sync.Mutex
	perTech map[string]float64
}{perTech: map[string]float64{}}

// obsSweepWorkloads is the fig1/fig4 cross-section at bench scale: the
// six GAP kernels plus two SPEC proxies.
func obsSweepWorkloads() []workloads.Workload {
	params := gap.Params{N: 1024, Degree: 8, Seed: 42, MaxInsts: 100_000}
	works := gap.Suite(params)
	spec := specproxy.IntSuite(specproxy.Params{Scale: 0.02, Seed: 99})
	return append(works, spec[0], spec[1])
}

// BenchmarkObsSweep measures end-to-end simulation throughput per
// technique over the fig1/fig4 workload cross-section with metrics and
// tracing ENABLED — the observability layer's own overhead is part of
// what this guards. Run via `make bench`, which writes BENCH_obs.json.
func BenchmarkObsSweep(b *testing.B) {
	works := obsSweepWorkloads()
	for _, kind := range wrongpath.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			reg := obs.NewRegistry()
			sink := obs.NewTraceSink(io.Discard)
			defer sink.Close()
			var insts uint64
			for i := 0; i < b.N; i++ {
				for _, w := range works {
					inst := w.MustBuild()
					cfg := sim.Default(kind)
					cfg.MaxInsts = inst.SuggestedMaxInsts
					cfg.Metrics, cfg.Trace, cfg.ObsLabel = reg, sink, w.Suite+"/"+w.Name
					res, err := sim.Run(cfg, inst)
					if err != nil {
						b.Fatal(err)
					}
					insts += res.Core.Instructions
				}
			}
			ips := float64(insts) / b.Elapsed().Seconds()
			b.ReportMetric(ips/1e6, "Msimins/s")
			obsBench.Lock()
			obsBench.perTech[kind.String()] = ips
			obsBench.Unlock()
		})
	}
	if *obsBenchOut != "" {
		if err := writeObsBench(*obsBenchOut); err != nil {
			b.Fatalf("writing %s: %v", *obsBenchOut, err)
		}
	}
}

func writeObsBench(path string) error {
	obsBench.Lock()
	defer obsBench.Unlock()
	data, err := json.MarshalIndent(obsBenchRecord{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: obsBench.perTech,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
