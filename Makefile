GO ?= go

.PHONY: build test vet lint lint-fix lint-sarif race faults chaos fuzz-smoke serve-smoke serve-cache-smoke check bench bench-diff bench-all bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

vet:
	$(GO) vet ./...

# lint runs the simulator-invariant analyzers (see internal/analysis).
lint:
	$(GO) run ./cmd/wplint ./...

# lint-fix applies machine-applicable suggested fixes (idempotent).
lint-fix:
	$(GO) run ./cmd/wplint -fix ./...

# lint-sarif renders the findings as SARIF 2.1.0 (CI uploads this to
# code scanning).
lint-sarif:
	$(GO) run ./cmd/wplint -sarif wplint.sarif ./...

race:
	$(GO) test -race -timeout 15m ./...

# faults runs the fault-injection suites (deterministic injected
# panics, frozen producers, corrupt traces) under the race detector —
# the acceptance gate for the fault-tolerance layer (see DESIGN.md,
# "Failure model and degradation ladder").
faults:
	$(GO) test -race -timeout 10m -run 'Fault|Panic|Ladder|Watchdog|Corrupt|Truncat|Sweep' \
		./internal/faultinject/ ./internal/simerr/ ./internal/tracefile/ \
		./internal/frontend/ ./internal/batch/ ./internal/sim/ ./internal/experiments/

# chaos runs the crash-safety acceptance gate under the race detector:
# kill runs at randomized (seeded) checkpoint boundaries, resume from
# the latest snapshot, and require results and reports byte-identical
# to uninterrupted runs (see DESIGN.md, "Checkpoint, resume, and
# cancellation").
chaos:
	$(GO) test -race -timeout 10m -run 'Checkpoint|Resume|Chaos|CancelNoLeak' \
		./internal/checkpoint/ ./internal/sim/ ./internal/frontend/ ./internal/experiments/

# fuzz-smoke runs each native fuzz target briefly — a coverage-guided
# smoke pass over the two binary decoders (trace files and snapshot
# containers), not a soak. CI runs it on every push.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReader -fuzztime 10s ./internal/tracefile/
	$(GO) test -run '^$$' -fuzz FuzzRoundTrip -fuzztime 10s ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzOpen -fuzztime 10s ./internal/checkpoint/

# serve-smoke builds the wpserved daemon and drives it end-to-end over
# HTTP: submit, checkpointed SIGTERM drain, restart, bit-identical
# resume (see DESIGN.md, "Serving layer"). The acceptance gate for the
# serving layer.
serve-smoke:
	$(GO) test -timeout 10m -count=1 -run 'TestServeSmoke' -v ./cmd/wpserved/

# serve-cache-smoke drives the result cache end-to-end over real HTTP:
# miss, hit, coalesced (via X-Wpserved-Cache), a restart over the same
# state directory served from the persistent tier, and byte-identity of
# every served body against a direct sim run (see DESIGN.md, "Result
# cache and submission coalescing").
serve-cache-smoke:
	$(GO) test -timeout 10m -count=1 -run 'TestServeCacheSmoke' -v ./cmd/wpserved/

# check is the full CI gate.
check: build vet lint race faults chaos serve-smoke serve-cache-smoke

# bench runs the observability regression sweep: the fig1/fig4
# workload cross-section under every wrong-path technique with metrics
# and tracing enabled, recording instructions/sec per technique in
# BENCH_obs.json (schema: obsbench_test.go). CI uploads the record on
# every push so simulator or instrumentation slowdowns leave a trail.
bench:
	$(GO) test -run '^$$' -bench ObsSweep -benchtime 2x -obs-bench-out=BENCH_obs.json .
	cat BENCH_obs.json
	$(GO) test -run '^$$' -bench HotPath -benchtime 2x -hotpath-bench-out=BENCH_hotpath.json .
	cat BENCH_hotpath.json

# bench-diff compares the hot-path record against the committed
# pre-refactor baseline, failing if any technique regressed by more
# than 10% (see cmd/benchdiff).
bench-diff:
	$(GO) run ./cmd/benchdiff -fail-below 10 BENCH_hotpath_baseline.json BENCH_hotpath.json

# bench-all runs every benchmark in the module (slow; not a CI gate).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs a short fig1 sweep on the batch engine (one worker
# per core) and records the wall clock in BENCH_fig1.json — a coarse
# canary for batch-layer throughput regressions, not a calibrated
# benchmark. CI runs it on every push.
bench-smoke:
	$(GO) run ./cmd/wpexp -exp fig1 -quick -jobs 0 -bench-out BENCH_fig1.json
	cat BENCH_fig1.json
