GO ?= go

.PHONY: build test vet lint race faults check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

vet:
	$(GO) vet ./...

# lint runs the simulator-invariant analyzers (see internal/analysis).
lint:
	$(GO) run ./cmd/wplint ./...

race:
	$(GO) test -race -timeout 15m ./...

# faults runs the fault-injection suites (deterministic injected
# panics, frozen producers, corrupt traces) under the race detector —
# the acceptance gate for the fault-tolerance layer (see DESIGN.md,
# "Failure model and degradation ladder").
faults:
	$(GO) test -race -timeout 10m -run 'Fault|Panic|Ladder|Watchdog|Corrupt|Truncat|Sweep' \
		./internal/faultinject/ ./internal/simerr/ ./internal/tracefile/ \
		./internal/frontend/ ./internal/batch/ ./internal/sim/ ./internal/experiments/

# check is the full CI gate.
check: build vet lint race faults

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs a short fig1 sweep on the batch engine (one worker
# per core) and records the wall clock in BENCH_fig1.json — a coarse
# canary for batch-layer throughput regressions, not a calibrated
# benchmark. CI runs it on every push.
bench-smoke:
	$(GO) run ./cmd/wpexp -exp fig1 -quick -jobs 0 -bench-out BENCH_fig1.json
	cat BENCH_fig1.json
