GO ?= go

.PHONY: build test vet lint race check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the simulator-invariant analyzers (see internal/analysis).
lint:
	$(GO) run ./cmd/wplint ./...

race:
	$(GO) test -race ./...

# check is the full CI gate.
check: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs a short fig1 sweep on the batch engine (one worker
# per core) and records the wall clock in BENCH_fig1.json — a coarse
# canary for batch-layer throughput regressions, not a calibrated
# benchmark. CI runs it on every push.
bench-smoke:
	$(GO) run ./cmd/wpexp -exp fig1 -quick -jobs 0 -bench-out BENCH_fig1.json
	cat BENCH_fig1.json
