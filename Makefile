GO ?= go

.PHONY: build test vet lint race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the simulator-invariant analyzers (see internal/analysis).
lint:
	$(GO) run ./cmd/wplint ./...

race:
	$(GO) test -race ./...

# check is the full CI gate.
check: build vet lint race

bench:
	$(GO) test -bench=. -benchmem ./...
