package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/simerr"
)

// Config sizes the serving layer. The zero value of every field selects
// a sensible default; simulated results never depend on any of them.
type Config struct {
	// Workers is the worker-pool width (<= 0: one per host core).
	Workers int
	// QueueDepth bounds the admission queue; a submit beyond it is
	// rejected with ErrQueueFull (HTTP 429 + Retry-After). <= 0: 64.
	QueueDepth int
	// StateDir is the durable job store (specs, results, checkpoint
	// chains). "" runs the server ephemeral: no persistence, no
	// checkpoints, no resume.
	StateDir string
	// CheckpointEvery is the default snapshot interval in retired
	// instructions for jobs that do not set their own (0: 1M). Only
	// meaningful with a StateDir.
	CheckpointEvery uint64
	// Metrics receives both the server's own lifecycle metrics and the
	// sim-layer samples of every job (nil: a fresh registry).
	Metrics *obs.Registry
	// CacheMax bounds the result cache's in-memory tier (0: the
	// resultcache default, < 0 disables the cache entirely). With a
	// StateDir the cache also persists under StateDir/cache, surviving
	// daemon restarts; ephemeral servers cache in memory only. The
	// cache can only skip runs, never change bytes: entries are
	// content-addressed by JobSpec.Fingerprint and self-verifying on
	// read.
	CacheMax int
}

// Typed admission refusals, for the HTTP layer to map onto status
// codes.
var (
	// ErrQueueFull reports a full admission queue (HTTP 429).
	ErrQueueFull = errors.New("admission queue full")
	// ErrDraining reports a server that has stopped admitting because a
	// drain is in progress (HTTP 503).
	ErrDraining = errors.New("server draining")
	// ErrUnknownJob reports a job id with no record (HTTP 404).
	ErrUnknownJob = errors.New("unknown job")
)

// Server runs simulation jobs on a bounded worker pool with durable,
// crash-safe state. See the package comment for the conformance
// invariant.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *resultcache.Cache // nil when Config.CacheMax < 0

	baseCtx   context.Context
	cancelAll context.CancelFunc

	admit chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	queuedN  int
	runningN int
	seq      int
	jobs     map[string]*job
	order    []*job // submission order (map ranges are banned from output paths)
	// inflight maps a spec fingerprint to the leader job currently
	// queued or running for it; identical submissions coalesce onto it
	// as followers instead of executing again.
	inflight map[string]*job

	mSubmitted, mRejected, mResumed        *obs.Counter
	mDone, mFailed, mCanceled              *obs.Counter
	mCacheHit, mCacheMiss, mCacheCoalesced *obs.Counter
	mCacheCorrupt, mCacheStore, mSimRuns   *obs.Counter
	gQueued, gRunning                      *obs.Gauge
}

// New builds the server: it loads the state directory, restores
// terminal jobs read-only, re-admits every unfinished job (ahead of any
// new submission, in original order), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = batch.DefaultWorkers()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1_000_000
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),

		mSubmitted:      reg.Counter("wpserved_jobs_submitted_total"),
		mRejected:       reg.Counter("wpserved_jobs_rejected_total"),
		mResumed:        reg.Counter("wpserved_jobs_resumed_total"),
		mDone:           reg.Counter("wpserved_jobs_done_total"),
		mFailed:         reg.Counter("wpserved_jobs_failed_total"),
		mCanceled:       reg.Counter("wpserved_jobs_canceled_total"),
		mCacheHit:       reg.Counter("wpserved_cache_hits_total"),
		mCacheMiss:      reg.Counter("wpserved_cache_misses_total"),
		mCacheCoalesced: reg.Counter("wpserved_cache_coalesced_total"),
		mCacheCorrupt:   reg.Counter("wpserved_cache_corrupt_total"),
		mCacheStore:     reg.Counter("wpserved_cache_stores_total"),
		mSimRuns:        reg.Counter("wpserved_sim_runs_total"),
		gQueued:         reg.Gauge("wpserved_jobs_queued"),
		gRunning:        reg.Gauge("wpserved_jobs_running"),
	}
	if cfg.CacheMax >= 0 {
		dir := ""
		if cfg.StateDir != "" {
			dir = filepath.Join(cfg.StateDir, "cache")
		}
		c, err := resultcache.New(dir, cfg.CacheMax)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	pending, maxSeq, err := s.loadState()
	if err != nil {
		s.cancelAll()
		return nil, err
	}
	s.seq = maxSeq
	// Recovered jobs get queue slack beyond QueueDepth so re-admission
	// can never be refused; they still occupy admission slots until a
	// worker picks them up.
	s.admit = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queuedN++
		s.admit <- j
	}
	s.gQueued.Set(uint64(s.queuedN))
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Metrics returns the registry the server publishes into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Cache returns the server's result cache (nil when disabled).
func (s *Server) Cache() *resultcache.Cache { return s.cache }

// Submit validates and admits a job. It returns ErrDraining once a
// drain has begun and ErrQueueFull when QueueDepth jobs are already
// waiting; any other error is a spec validation failure.
//
// Admission is cache-aware, in disposition order:
//
//   - hit: the spec's fingerprint resolves in the result cache; the job
//     is born terminal with the cached canonical bytes, never queued.
//   - coalesced: an identical submission is already queued or running;
//     the new job becomes its follower — own id, own status document,
//     but the leader's execution and its canonical bytes, verbatim.
//   - miss: the job runs. A clean result is stored under its
//     fingerprint for the next identical submission.
//
// Neither a hit nor a coalesced submission occupies an admission-queue
// slot, so they are served even at QueueDepth.
func (s *Server) Submit(spec JobSpec) (Status, error) {
	spec = spec.normalized()
	if err := spec.Validate(); err != nil {
		s.mRejected.Inc()
		return Status{}, err
	}
	fp := spec.Fingerprint()
	// Probe outside the server lock: the persistent tier is a disk read
	// and must not stall unrelated submissions. The window this opens —
	// a leader completing between probe and registration — costs at
	// most one redundant run (the execute-time probe closes most of
	// it), never a wrong answer.
	cached, hit, corrupt := s.cache.Get(fp)
	if corrupt {
		s.mCacheCorrupt.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.mRejected.Inc()
		return Status{}, ErrDraining
	}
	if hit {
		s.seq++
		j := newJob(jobID(s.seq), s.seq, spec)
		if j.serveFromCache(cached, cacheHit) {
			if err := s.persistSpec(j); err != nil {
				s.removeJobDir(j.id)
				s.mRejected.Inc()
				return Status{}, fmt.Errorf("persisting job spec: %w", err)
			}
			// A persist failure leaves the job unfinished on disk; the
			// next daemon run re-runs it, which is bit-identical.
			_ = s.persistResult(j)
			s.jobs[j.id] = j
			s.order = append(s.order, j)
			s.mSubmitted.Inc()
			s.mCacheHit.Inc()
			s.mDone.Inc()
			return j.status(), nil
		}
		// Cached bytes that do not parse as a result document (cannot
		// happen with self-verified entries): fall through to a real
		// run rather than serve them.
		s.seq--
	}
	if leader := s.inflight[fp]; leader != nil {
		s.seq++
		f := newJob(jobID(s.seq), s.seq, spec)
		f.dedupedOf = leader.id
		f.cacheDisp = cacheCoalesced
		if err := s.persistSpec(f); err != nil {
			s.removeJobDir(f.id)
			s.mRejected.Inc()
			return Status{}, fmt.Errorf("persisting job spec: %w", err)
		}
		s.jobs[f.id] = f
		s.order = append(s.order, f)
		leader.followers = append(leader.followers, f)
		s.mSubmitted.Inc()
		s.mCacheCoalesced.Inc()
		return f.status(), nil
	}
	if s.queuedN >= s.cfg.QueueDepth {
		s.mRejected.Inc()
		return Status{}, ErrQueueFull
	}
	s.seq++
	j := newJob(jobID(s.seq), s.seq, spec)
	if s.cache != nil {
		j.cacheDisp = cacheMiss
		s.mCacheMiss.Inc()
	}
	if err := s.persistSpec(j); err != nil {
		s.removeJobDir(j.id)
		s.mRejected.Inc()
		return Status{}, fmt.Errorf("persisting job spec: %w", err)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.inflight[fp] = j
	s.queuedN++
	s.gQueued.Set(uint64(s.queuedN))
	s.mSubmitted.Inc()
	s.admit <- j // buffered beyond QueueDepth; never blocks under mu
	return j.status(), nil
}

// Job returns the status document for id.
func (s *Server) Job(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	return j.status(), nil
}

// Jobs returns every job's status in submission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	order := make([]*job, len(s.order))
	copy(order, s.order)
	s.mu.Unlock()
	out := make([]Status, len(order))
	for i, j := range order {
		out[i] = j.status()
	}
	return out
}

// Result returns the canonical result bytes and host wall time for id,
// or nil bytes when the job holds no result (still pending, failed,
// or canceled).
func (s *Server) Result(id string) ([]byte, int64, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrUnknownJob
	}
	canonical, wall := j.result()
	return canonical, wall, nil
}

// ResultStatus returns the canonical result bytes, host wall time, and
// status document for id from one locked read of the job. The result
// endpoint needs all three coherently: reading the bytes and then the
// status separately would let the job turn terminal in between and
// pair a no-result response with a stale state.
func (s *Server) ResultStatus(id string) ([]byte, int64, Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, 0, Status{}, ErrUnknownJob
	}
	canonical, wall, st := j.snapshot()
	return canonical, wall, st, nil
}

// Cancel requests cancellation of a queued or running job. A queued job
// becomes terminal immediately; a running one stops at its next lane
// boundary and the worker records the terminal state. The returned
// status reflects the job after the request.
func (s *Server) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownJob
	}
	if j.requestCancel() {
		st := j.status()
		if st.State == StateCanceled {
			// Canceled while queued: terminal right here, so this is the
			// persistence point (a running job persists in complete) and
			// the singleflight settle point — a canceled leader hands its
			// coalesced followers to a promoted successor.
			s.mCanceled.Inc()
			err := s.persistResult(j)
			s.settle(j)
			if err != nil {
				return st, fmt.Errorf("persisting cancellation: %w", err)
			}
		}
		return st, nil
	}
	return j.status(), nil
}

// Drain stops admission, cancels every running job at its next lane
// boundary (their checkpoint chains stay on disk), waits for the
// workers to park, and returns. Interrupted jobs remain queued-on-disk;
// the next daemon run over the same state directory re-admits and
// resumes them bit-identically. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.admit)
	s.mu.Unlock()
	s.cancelAll()
	parked := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(parked)
	}()
	select {
	case <-parked:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %w", ctx.Err())
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// addRunning tracks the running-job gauge under the server lock (the
// obs Gauge is last-value-wins, not a counter).
func (s *Server) addRunning(d int) {
	s.mu.Lock()
	s.runningN += d
	s.gRunning.Set(uint64(s.runningN))
	s.mu.Unlock()
}

// worker is the pool loop: it pulls admitted jobs until the admission
// channel closes. Jobs dequeued after a drain began are skipped — they
// stay queued on disk for the next daemon run.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.admit {
		s.mu.Lock()
		s.queuedN--
		s.gQueued.Set(uint64(s.queuedN))
		draining := s.draining
		s.mu.Unlock()
		if draining {
			continue
		}
		s.execute(j)
	}
}

// execute runs one job end to end: context setup, the sim run inside a
// panic-containing batch cell, and terminal-state recording.
func (s *Server) execute(j *job) {
	// Second cache probe, at dequeue time: it catches a job that waited
	// behind the identical run that populated the cache, and a
	// re-admitted duplicate from a previous daemon run.
	if data, hit, corrupt := s.cache.Get(j.fp); corrupt {
		s.mCacheCorrupt.Inc()
	} else if hit && j.serveFromCache(data, cacheHit) {
		s.mCacheHit.Inc()
		s.mDone.Inc()
		s.persistTerminal(j)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
	}
	defer cancel()
	if !j.start(cancel) {
		return // canceled while queued
	}
	s.addRunning(1)
	defer s.addRunning(-1)
	// One-cell batch: containment for a panic escaping the sim layer,
	// and a typed pre-start cancellation when the drain won the race.
	cell := batch.RunContext(ctx, []func() (*sim.Result, error){
		func() (*sim.Result, error) { return s.runJob(ctx, j) },
	}, 1)[0]
	s.complete(j, cell.Value, cell.Err)
}

// runJob layers the serving concerns onto the spec's config and runs
// it. None of them perturb simulated state: the context only decides
// where the run may stop early, the registry only observes, and the
// checkpoint chain is exactly the crash-safety mechanism the sim layer
// already guarantees bit-identical resumes for.
func (s *Server) runJob(ctx context.Context, j *job) (*sim.Result, error) {
	s.mSimRuns.Inc()
	res, resumed, err := runSpec(j.spec, func(cfg *sim.Config) {
		cfg.Ctx = ctx
		cfg.Metrics = s.reg
		cfg.ObsLabel = j.spec.Suite + "/" + j.spec.Bench
		if dir := s.jobDir(j.id); dir != "" {
			cfg.CheckpointDir = filepath.Join(dir, "ckpt")
			cfg.CheckpointEvery = j.spec.CheckpointEvery
			if cfg.CheckpointEvery == 0 {
				cfg.CheckpointEvery = s.cfg.CheckpointEvery
			}
			cfg.OnCheckpoint = func(insts uint64, _ string) { j.ckptInsts.Store(insts) }
		}
	})
	if resumed {
		j.setResumed()
		s.mResumed.Inc()
	}
	return res, err
}

// complete records a job's terminal state — or, when a drain
// interrupted it, re-queues it for the next daemon run. The state and
// exit code mirror the CLI convention; the canonical result bytes are
// recorded only for completed runs (clean or annotated), never for
// cancellations or hard failures.
func (s *Server) complete(j *job, res *sim.Result, err error) {
	drainInterrupted := func() bool {
		return s.Draining() && !j.isUserCanceled()
	}
	switch {
	case err != nil && errors.Is(err, simerr.ErrCanceled):
		// Canceled before the run could start (batch pre-start check).
		if drainInterrupted() {
			j.requeue()
			return
		}
		j.finish(StateCanceled, exitAnnotated, func(j *job) { j.errMsg = simerr.FirstLine(err) })
		s.mCanceled.Inc()
	case err != nil:
		// Hard failure: the spec could not run at all (workload build
		// error, checkpoint I/O, an escaped panic). No result exists.
		j.finish(StateFailed, exitFailure, func(j *job) { j.errMsg = simerr.FirstLine(err) })
		s.mFailed.Inc()
	case res.Err != nil && errors.Is(res.Err, simerr.ErrCanceled):
		// The run stopped at a lane boundary on cancellation. The partial
		// result depends on where the boundary fell, so it is never
		// exposed as a result document.
		if drainInterrupted() {
			j.requeue()
			return
		}
		j.finish(StateCanceled, exitAnnotated, func(j *job) {
			j.errMsg = simerr.FirstLine(res.Err)
			j.wallNS = int64(res.Wall)
		})
		s.mCanceled.Inc()
	default:
		// A completed run: clean, degraded, or annotated by a kept-prefix
		// fault. The result document exists in all three.
		canonical, cerr := CanonicalResult(res)
		if cerr != nil {
			j.finish(StateFailed, exitFailure, func(j *job) { j.errMsg = cerr.Error() })
			s.mFailed.Inc()
			break
		}
		code := exitClean
		if res.Degraded || res.Err != nil {
			code = exitAnnotated
		}
		j.finish(StateDone, code, func(j *job) {
			j.canonical = canonical
			j.wallNS = int64(res.Wall)
			j.degraded = res.Degraded
			j.requestedWP = res.RequestedWP.String()
			j.ranWP = res.WP.String()
			j.fault = simerr.FirstLine(res.DegradeFault)
			j.errMsg = simerr.FirstLine(res.Err)
		})
		s.mDone.Inc()
		// Only clean results enter the cache: a degraded or annotated
		// document records a host-timing event (a watchdog stall, a
		// ladder descent), so it is not a pure function of the spec and
		// a later identical submission could legitimately complete
		// clean. Coalesced followers still share it — they joined this
		// execution — but the cache never replays it.
		if s.cache != nil && code == exitClean {
			if s.cache.Put(j.fp, canonical) == nil {
				s.mCacheStore.Inc()
			}
		}
	}
	s.persistTerminal(j)
}

// persistTerminal persists a terminal job's result documents and
// resolves its singleflight entry.
func (s *Server) persistTerminal(j *job) {
	if err := s.persistResult(j); err != nil {
		// The in-memory record stands; the job will re-run on the next
		// daemon restart (spec without result), which is safe — reruns
		// are bit-identical by construction.
		st := j.status()
		j.finish(st.State, st.ExitCode, func(j *job) {
			j.errMsg = "persist: " + err.Error()
		})
	}
	s.settle(j)
}

// settle resolves a job's singleflight entry once it is terminal. Its
// coalesced followers either share its canonical bytes verbatim or —
// when the leader ended with no result (canceled, hard-failed) — the
// first still-waiting follower is promoted to leader and enqueued, so
// coalescing can never starve a submission behind a canceled twin.
func (s *Server) settle(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.fp] == j {
		delete(s.inflight, j.fp)
	}
	followers := j.followers
	j.followers = nil
	if len(followers) == 0 {
		return
	}
	canonical, _ := j.result()
	if canonical != nil {
		lead := j.status()
		for _, f := range followers {
			if !f.serveShared(canonical, lead) {
				continue // canceled while waiting
			}
			s.mDone.Inc()
			if err := s.persistResult(f); err != nil {
				st := f.status()
				f.finish(st.State, st.ExitCode, func(f *job) {
					f.errMsg = "persist: " + err.Error()
				})
			}
		}
		return
	}
	// The leader died without a result: promote the first follower that
	// is still waiting, re-link the rest to it.
	var next *job
	var rest []*job
	for _, f := range followers {
		if !f.stillQueued() {
			continue
		}
		if next == nil {
			next = f
		} else {
			rest = append(rest, f)
		}
	}
	if next == nil {
		return
	}
	next.promote()
	next.followers = rest
	s.inflight[next.fp] = next
	if s.draining {
		// Admission is closed; the promoted follower stays queued on
		// disk and the next daemon run re-admits it.
		return
	}
	// Run the promotion on its own pool-tracked goroutine rather than
	// re-entering the admission channel: settle can run on a worker
	// that is itself part of the pool, and a blocking channel send
	// under the server lock could wedge every worker behind it. The
	// wg.Add is safe here: draining is false under s.mu, so the
	// workers are still registered and Drain's Wait has not started.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.execute(next)
	}()
}
