package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// maxSpecBytes bounds the POST /jobs body; specs are small documents.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit a JobSpec → 202 + Status
//	GET    /jobs              list all jobs (submission order)
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/result  canonical result document (verbatim body;
//	                          id and wall time in X-Wpserved-* headers)
//	POST   /jobs/{id}/cancel  request cancellation (DELETE /jobs/{id} is an alias)
//	GET    /metrics           deterministic registry snapshot (sorted JSON)
//	GET    /healthz           liveness + drain state
//
// Backpressure contract: a full admission queue answers 429 with
// Retry-After; a draining server answers 503. Neither ever blocks the
// client.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// errorDoc is the JSON body of every non-2xx response.
type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorDoc{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// An oversized body is the client's 413, not a malformed-spec
		// 400: MaxBytesReader surfaces it as a typed decode error.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("job spec exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	// Exactly one JSON document: Decode stops at the first complete
	// value, so `{"spec":...}{"junk":1}` would otherwise be accepted
	// with its trailer silently dropped.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, "trailing data after job spec")
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// The constant Retry-After keeps the serving layer clock-free;
		// queue drain time is workload-dependent anyway, so clients are
		// expected to poll.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		if st.Cache != "" {
			w.Header().Set("X-Wpserved-Cache", st.Cache)
		}
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult serves the canonical result document as the response
// body, byte-for-byte — embedding it in a JSON envelope would re-indent
// it and break the byte-identity contract. The job id and the host wall
// time (the two values deliberately excluded from the canonical bytes)
// travel in headers instead.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// One locked read for bytes and status together: a second lookup
	// for the 409 body could observe a state the job reached after the
	// bytes were (not) read and blame the wrong state.
	canonical, wall, st, err := s.ResultStatus(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if canonical == nil {
		writeError(w, http.StatusConflict,
			"job "+id+" holds no result (state "+st.State+")")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Wpserved-Job", id)
	w.Header().Set("X-Wpserved-Wall-Ns", strconv.FormatInt(wall, 10))
	if st.Cache != "" {
		w.Header().Set("X-Wpserved-Cache", st.Cache)
	}
	_, _ = w.Write(canonical)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownJob) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	state := "ok"
	if s.Draining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: state})
}
