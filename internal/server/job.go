package server

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Job states. A job moves queued → running → one of the terminal
// states; a daemon drain moves a running job back to queued (with
// Interrupted set) so the next daemon run resumes it from its
// checkpoint chain.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"     // result available; ExitCode 0 (clean) or 3 (annotated)
	StateFailed   = "failed"   // hard failure, no result; ExitCode 1
	StateCanceled = "canceled" // operator cancel or timeout; ExitCode 3
)

// Exit codes mirror the CLI convention (README "Exit codes"): 0 clean,
// 1 hard failure, 3 completed-but-annotated (degraded, faulted or
// canceled). exitPending marks a job that has not reached a terminal
// state.
const (
	exitClean     = 0
	exitFailure   = 1
	exitAnnotated = 3
	exitPending   = -1
)

// Cache dispositions (Status.Cache, the X-Wpserved-Cache header).
const (
	cacheHit       = "hit"
	cacheMiss      = "miss"
	cacheCoalesced = "coalesced"
)

// Status is the GET /jobs/{id} document.
type Status struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	// ExitCode mirrors the CLI exit-code convention once the job is
	// terminal (0 clean, 1 hard failure, 3 annotated); -1 before that.
	ExitCode int `json:"exit_code"`
	// Degraded jobs report their descent: the requested technique, the
	// rung that actually ran, and the one-line fault that forced it.
	Degraded    bool   `json:"degraded,omitempty"`
	RequestedWP string `json:"requested_wp,omitempty"`
	RanWP       string `json:"ran_wp,omitempty"`
	Fault       string `json:"fault,omitempty"`
	// Error is the hard-failure or cancellation reason.
	Error string `json:"error,omitempty"`
	// Resumed marks a job this daemon run restored from a snapshot.
	Resumed bool `json:"resumed,omitempty"`
	// Interrupted marks a job a drain stopped mid-run; it is queued for
	// resume on the next daemon run.
	Interrupted bool `json:"interrupted,omitempty"`
	// CheckpointInsts is the retired-instruction count of the newest
	// snapshot — the job's crash-safe progress watermark.
	CheckpointInsts uint64 `json:"checkpoint_insts,omitempty"`
	// WallNS is the host wall-clock of the run, for capacity planning;
	// it is never part of the canonical result bytes. Cache-served and
	// coalesced jobs report 0: they did not run.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Cache is the job's cache disposition: "hit" (served from the
	// result cache without running), "coalesced" (deduplicated onto an
	// identical in-flight submission), or "miss" (ran the simulation).
	// Empty when the cache is disabled.
	Cache string `json:"cache,omitempty"`
	// DedupedOf names the leader job a coalesced submission shares its
	// execution — and its canonical bytes, verbatim — with.
	DedupedOf string `json:"deduped_of,omitempty"`
}

// job is the in-memory lifecycle record of one submission.
type job struct {
	id   string
	seq  int
	spec JobSpec
	fp   string // spec.Fingerprint(), immutable

	ckptInsts atomic.Uint64 // updated from sim.Config.OnCheckpoint

	// followers are the coalesced submissions waiting on this job's
	// execution. Guarded by Server.mu (not j.mu): the list is only
	// touched at submit and settle time, both under the server lock.
	followers []*job

	mu          sync.Mutex
	state       string
	cancel      context.CancelFunc // non-nil while running
	userCancel  bool
	interrupted bool
	resumed     bool
	exitCode    int
	errMsg      string
	fault       string
	degraded    bool
	requestedWP string
	ranWP       string
	wallNS      int64
	cacheDisp   string // "hit" | "miss" | "coalesced"; "" = cache disabled
	dedupedOf   string
	canonical   json.RawMessage // CanonicalResult bytes once a result exists
}

func newJob(id string, seq int, spec JobSpec) *job {
	return &job{id: id, seq: seq, spec: spec, fp: spec.Fingerprint(),
		state: StateQueued, exitCode: exitPending}
}

// start transitions queued → running and installs the cancel hook; it
// reports false (and leaves the job alone) when the job was canceled
// while still queued.
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.interrupted = false
	j.cancel = cancel
	return true
}

// requeue moves a drain-interrupted running job back to queued: its
// spec and checkpoint chain are on disk, so the next daemon run
// resumes it.
func (j *job) requeue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateQueued
	j.interrupted = true
	j.cancel = nil
	j.exitCode = exitPending
}

// finish records a terminal state.
func (j *job) finish(state string, exitCode int, mut func(*job)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.exitCode = exitCode
	j.cancel = nil
	if mut != nil {
		mut(j)
	}
}

// requestCancel implements the cancel endpoint: a queued job becomes
// terminal immediately, a running one has its context canceled (the
// completion path records the terminal state). The return reports
// whether anything changed.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.userCancel = true
		j.state = StateCanceled
		j.exitCode = exitAnnotated
		j.errMsg = "canceled before start"
		return true
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

func (j *job) isUserCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

func (j *job) setResumed() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.resumed = true
}

// status snapshots the job document.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked renders the document; the caller holds j.mu.
func (j *job) statusLocked() Status {
	return Status{
		ID:              j.id,
		State:           j.state,
		Spec:            j.spec,
		ExitCode:        j.exitCode,
		Degraded:        j.degraded,
		RequestedWP:     j.requestedWP,
		RanWP:           j.ranWP,
		Fault:           j.fault,
		Error:           j.errMsg,
		Resumed:         j.resumed,
		Interrupted:     j.interrupted,
		CheckpointInsts: j.ckptInsts.Load(),
		WallNS:          j.wallNS,
		Cache:           j.cacheDisp,
		DedupedOf:       j.dedupedOf,
	}
}

// result returns the canonical result bytes and the host wall time, or
// nil when no result exists (yet).
func (j *job) result() (json.RawMessage, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canonical, j.wallNS
}

// snapshot returns the canonical bytes, wall time, and status document
// from one locked read — the result endpoint's view. Reading the bytes
// and the status separately would let the job change state in between
// and pair a body with a contradicting status.
func (j *job) snapshot() (json.RawMessage, int64, Status) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canonical, j.wallNS, j.statusLocked()
}

// cachedDoc is the slice of the canonical result document a job served
// from the cache needs to rebuild its status fields; the full sim
// payload stays opaque (the bytes are served verbatim).
type cachedDoc struct {
	WP           string `json:"wp"`
	RequestedWP  string `json:"requested_wp"`
	Degraded     bool   `json:"degraded"`
	DegradeFault string `json:"degrade_fault"`
	Err          string `json:"err"`
}

// serveFromCache completes a still-queued job with cached canonical
// bytes: the status fields are rebuilt from the document's own header
// fields, so a cache-served job is indistinguishable from a run —
// except for its Cache disposition and zero wall time. Returns false
// (job untouched) when the job already left the queued state or the
// bytes do not parse as a canonical result document.
func (j *job) serveFromCache(canonical []byte, disp string) bool {
	var doc cachedDoc
	if err := json.Unmarshal(canonical, &doc); err != nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateDone
	j.exitCode = exitClean
	if doc.Degraded || doc.Err != "" {
		j.exitCode = exitAnnotated
	}
	j.canonical = canonical
	j.degraded = doc.Degraded
	j.requestedWP = doc.RequestedWP
	j.ranWP = doc.WP
	j.fault = doc.DegradeFault
	j.errMsg = doc.Err
	j.wallNS = 0
	j.cacheDisp = disp
	j.interrupted = false
	return true
}

// serveShared completes a coalesced follower with its leader's
// terminal document: the canonical bytes verbatim, the derived fields
// copied. Returns false when the follower was canceled while waiting.
func (j *job) serveShared(canonical json.RawMessage, lead Status) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateDone
	j.exitCode = lead.ExitCode
	j.canonical = canonical
	j.degraded = lead.Degraded
	j.requestedWP = lead.RequestedWP
	j.ranWP = lead.RanWP
	j.fault = lead.Fault
	j.errMsg = lead.Error
	j.wallNS = 0
	j.interrupted = false
	return true
}

// stillQueued reports whether the job is still waiting (a follower can
// be canceled while its leader runs).
func (j *job) stillQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateQueued
}

// promote clears a follower's coalesced identity when it becomes a
// leader itself (its original leader ended with no result to share).
func (j *job) promote() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dedupedOf = ""
	if j.cacheDisp == cacheCoalesced {
		j.cacheDisp = cacheMiss
	}
}
