package server

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Job states. A job moves queued → running → one of the terminal
// states; a daemon drain moves a running job back to queued (with
// Interrupted set) so the next daemon run resumes it from its
// checkpoint chain.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"     // result available; ExitCode 0 (clean) or 3 (annotated)
	StateFailed   = "failed"   // hard failure, no result; ExitCode 1
	StateCanceled = "canceled" // operator cancel or timeout; ExitCode 3
)

// Exit codes mirror the CLI convention (README "Exit codes"): 0 clean,
// 1 hard failure, 3 completed-but-annotated (degraded, faulted or
// canceled). exitPending marks a job that has not reached a terminal
// state.
const (
	exitClean     = 0
	exitFailure   = 1
	exitAnnotated = 3
	exitPending   = -1
)

// Status is the GET /jobs/{id} document.
type Status struct {
	ID    string  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
	// ExitCode mirrors the CLI exit-code convention once the job is
	// terminal (0 clean, 1 hard failure, 3 annotated); -1 before that.
	ExitCode int `json:"exit_code"`
	// Degraded jobs report their descent: the requested technique, the
	// rung that actually ran, and the one-line fault that forced it.
	Degraded    bool   `json:"degraded,omitempty"`
	RequestedWP string `json:"requested_wp,omitempty"`
	RanWP       string `json:"ran_wp,omitempty"`
	Fault       string `json:"fault,omitempty"`
	// Error is the hard-failure or cancellation reason.
	Error string `json:"error,omitempty"`
	// Resumed marks a job this daemon run restored from a snapshot.
	Resumed bool `json:"resumed,omitempty"`
	// Interrupted marks a job a drain stopped mid-run; it is queued for
	// resume on the next daemon run.
	Interrupted bool `json:"interrupted,omitempty"`
	// CheckpointInsts is the retired-instruction count of the newest
	// snapshot — the job's crash-safe progress watermark.
	CheckpointInsts uint64 `json:"checkpoint_insts,omitempty"`
	// WallNS is the host wall-clock of the run, for capacity planning;
	// it is never part of the canonical result bytes.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// job is the in-memory lifecycle record of one submission.
type job struct {
	id   string
	seq  int
	spec JobSpec

	ckptInsts atomic.Uint64 // updated from sim.Config.OnCheckpoint

	mu          sync.Mutex
	state       string
	cancel      context.CancelFunc // non-nil while running
	userCancel  bool
	interrupted bool
	resumed     bool
	exitCode    int
	errMsg      string
	fault       string
	degraded    bool
	requestedWP string
	ranWP       string
	wallNS      int64
	canonical   json.RawMessage // CanonicalResult bytes once a result exists
}

func newJob(id string, seq int, spec JobSpec) *job {
	return &job{id: id, seq: seq, spec: spec, state: StateQueued, exitCode: exitPending}
}

// start transitions queued → running and installs the cancel hook; it
// reports false (and leaves the job alone) when the job was canceled
// while still queued.
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.interrupted = false
	j.cancel = cancel
	return true
}

// requeue moves a drain-interrupted running job back to queued: its
// spec and checkpoint chain are on disk, so the next daemon run
// resumes it.
func (j *job) requeue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateQueued
	j.interrupted = true
	j.cancel = nil
	j.exitCode = exitPending
}

// finish records a terminal state.
func (j *job) finish(state string, exitCode int, mut func(*job)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.exitCode = exitCode
	j.cancel = nil
	if mut != nil {
		mut(j)
	}
}

// requestCancel implements the cancel endpoint: a queued job becomes
// terminal immediately, a running one has its context canceled (the
// completion path records the terminal state). The return reports
// whether anything changed.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.userCancel = true
		j.state = StateCanceled
		j.exitCode = exitAnnotated
		j.errMsg = "canceled before start"
		return true
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
		return true
	default:
		return false
	}
}

func (j *job) isUserCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancel
}

func (j *job) setResumed() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.resumed = true
}

// status snapshots the job document.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:              j.id,
		State:           j.state,
		Spec:            j.spec,
		ExitCode:        j.exitCode,
		Degraded:        j.degraded,
		RequestedWP:     j.requestedWP,
		RanWP:           j.ranWP,
		Fault:           j.fault,
		Error:           j.errMsg,
		Resumed:         j.resumed,
		Interrupted:     j.interrupted,
		CheckpointInsts: j.ckptInsts.Load(),
		WallNS:          j.wallNS,
	}
}

// result returns the canonical result bytes and the host wall time, or
// nil when no result exists (yet).
func (j *job) result() (json.RawMessage, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canonical, j.wallNS
}
