// Package server is the long-lived serving layer over the simulator:
// wpserved accepts simulation jobs over HTTP/JSON, runs them on a
// bounded worker pool, and exposes their lifecycle — submit, status,
// result, cancel — plus a deterministic metrics snapshot and a health
// probe.
//
// The package's one non-negotiable invariant is conformance: a job's
// result is byte-identical to a direct sim run of the same
// specification. Everything the serving layer adds — concurrency,
// admission control, per-job timeouts, crash-safe checkpoints, drain
// and resume across daemon restarts — rides on the sim layer's existing
// determinism guarantees and must never perturb simulated state.
// RunDirect is the conformance oracle the acceptance tests diff
// against.
package server

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/specfp"
	"repro/internal/workloads/catalog"
	"repro/internal/wrongpath"
)

// JobSpec is the submit-time description of one simulation job (the
// POST /jobs body). The zero value of every optional field selects the
// same default the CLIs use, so a spec translates to exactly the
// sim.Config a direct wpsim invocation with the same flags builds.
type JobSpec struct {
	// Suite/Bench name the workload (see internal/workloads/catalog).
	Suite string `json:"suite"`
	Bench string `json:"bench"`
	// WP is the wrong-path technique name ("" = conv).
	WP string `json:"wp,omitempty"`
	// MaxInsts caps the simulated correct-path instructions (0 = the
	// workload's suggested budget).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// WarmupInsts functionally warms state before detailed simulation.
	WarmupInsts uint64 `json:"warmup_insts,omitempty"`
	// Batch is the decoupling-queue lane size (0 = default; results are
	// identical at any size).
	Batch int `json:"batch,omitempty"`

	// Workload input-shape overrides (catalog.Params).
	N      int     `json:"n,omitempty"`
	Degree int     `json:"degree,omitempty"`
	Kron   bool    `json:"kron,omitempty"`
	Grid   bool    `json:"grid,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Scale  float64 `json:"scale,omitempty"`

	// WatchdogMS arms the stall watchdog with this budget (0 =
	// disabled).
	WatchdogMS int64 `json:"watchdog_ms,omitempty"`
	// Degrade arms the graceful-degradation ladder: on a recoverable
	// fault the job re-runs one technique rung down and its status
	// reports the descent (the job-level mirror of exit code 3).
	Degrade bool `json:"degrade,omitempty"`
	// MaxRetries bounds ladder descents (0 with Degrade = the CLI
	// default, 2).
	MaxRetries int `json:"max_retries,omitempty"`
	// TimeoutMS cancels the job this long after it starts running (0 =
	// no deadline). Wired through sim.Config.Ctx: the run stops at the
	// next lane boundary with a typed cancellation fault.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CheckpointEvery overrides the server's snapshot interval for this
	// job, in retired instructions (0 = the server default).
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

// normalized fills the CLI-parity defaults into the optional fields.
func (sp JobSpec) normalized() JobSpec {
	if sp.WP == "" {
		sp.WP = wrongpath.Conv.String()
	}
	if sp.Degrade && sp.MaxRetries == 0 {
		sp.MaxRetries = 2
	}
	return sp
}

// params extracts the workload input-shape overrides.
func (sp JobSpec) params() catalog.Params {
	return catalog.Params{N: sp.N, Degree: sp.Degree, Kron: sp.Kron, Grid: sp.Grid, Seed: sp.Seed, Scale: sp.Scale}
}

// Validate rejects a spec the workers could not run: an unknown
// workload, an unknown technique, or negative knobs.
func (sp JobSpec) Validate() error {
	sp = sp.normalized()
	if _, err := catalog.Find(sp.Suite, sp.Bench, sp.params()); err != nil {
		return err
	}
	if _, ok := wrongpath.ParseKind(sp.WP); !ok {
		return fmt.Errorf("unknown wrong-path technique %q (have %v)", sp.WP, wrongpath.Names())
	}
	if sp.WatchdogMS < 0 || sp.TimeoutMS < 0 {
		return fmt.Errorf("negative watchdog_ms/timeout_ms")
	}
	if sp.MaxRetries < 0 || sp.Batch < 0 {
		return fmt.Errorf("negative max_retries/batch")
	}
	return nil
}

// simConfig translates the (normalized) spec into the sim.Config a
// direct CLI run of the same flags would build. Serving-layer concerns
// (context, metrics, checkpoint directory) are layered on by the
// caller and never change simulated results.
func (sp JobSpec) simConfig() (sim.Config, error) {
	kind, ok := wrongpath.ParseKind(sp.WP)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown wrong-path technique %q (have %v)", sp.WP, wrongpath.Names())
	}
	cfg := sim.Default(kind)
	cfg.MaxInsts = sp.MaxInsts
	cfg.WarmupInsts = sp.WarmupInsts
	cfg.Core.Batch = sp.Batch
	cfg.Watchdog = time.Duration(sp.WatchdogMS) * time.Millisecond
	if sp.Degrade {
		cfg.Degrade = sim.DegradePolicy{MaxRetries: sp.MaxRetries}
	}
	return cfg, nil
}

// Fingerprint is the spec's content address: the specfp hash of every
// field that can influence the canonical result bytes. The exclusions
// mirror the checkpoint fingerprint's argument (sim.Config.Fingerprint):
// TimeoutMS only decides whether a run is cut short (a canceled run
// never produces a result document), Batch is the decoupling-queue lane
// size (bit-identical at any size), and CheckpointEvery only changes
// where snapshots fall (resume chains are bit-identical). Everything
// else — including the watchdog and degradation knobs, which can steer
// a run down the technique ladder — is part of the identity. Two specs
// with equal fingerprints therefore hold equal canonical bytes, which
// is what lets the result cache and submit coalescing share them.
func (sp JobSpec) Fingerprint() string {
	sp = sp.normalized()
	b := specfp.New("wpserved/JobSpec/v1")
	b.String("suite", sp.Suite)
	b.String("bench", sp.Bench)
	b.String("wp", sp.WP)
	b.Uint64("max_insts", sp.MaxInsts)
	b.Uint64("warmup_insts", sp.WarmupInsts)
	b.Int("n", sp.N)
	b.Int("degree", sp.Degree)
	b.Bool("kron", sp.Kron)
	b.Bool("grid", sp.Grid)
	b.Uint64("seed", sp.Seed)
	b.Float("scale", sp.Scale)
	b.Int64("watchdog_ms", sp.WatchdogMS)
	b.Bool("degrade", sp.Degrade)
	b.Int("max_retries", sp.MaxRetries)
	// Fold in the sim-layer configuration fingerprint so a change to the
	// simulated core defaults invalidates old content addresses instead
	// of serving their bytes.
	if cfg, err := sp.simConfig(); err == nil {
		b.String("sim_config", cfg.Fingerprint())
	} else {
		b.String("sim_config_error", err.Error())
	}
	return b.Sum()
}

// runSpec is the one execution path for a spec: both the workers and
// the RunDirect oracle go through it, so a served job cannot diverge
// from a direct run by construction. mod layers the serving-only
// concerns (context, metrics registry, checkpoint directory) onto the
// config; nil runs bare. The returned bool reports whether the run
// resumed from a snapshot.
func runSpec(spec JobSpec, mod func(*sim.Config)) (*sim.Result, bool, error) {
	spec = spec.normalized()
	cfg, err := spec.simConfig()
	if err != nil {
		return nil, false, err
	}
	w, err := catalog.Find(spec.Suite, spec.Bench, spec.params())
	if err != nil {
		return nil, false, err
	}
	if mod != nil {
		mod(&cfg)
	}
	inst, err := w.Build()
	if err != nil {
		return nil, false, fmt.Errorf("building %s/%s: %w", spec.Suite, spec.Bench, err)
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = inst.SuggestedMaxInsts
	}
	if cfg.Degrade.Enabled() {
		// Ladder path: the first attempt consumes the prebuilt instance,
		// retries rebuild a fresh one. RunLadder resumes each rung from
		// the newest snapshot in cfg.CheckpointDir itself; detect that
		// here only to report it.
		resumed := false
		if cfg.CheckpointDir != "" {
			if snap, _ := checkpoint.Latest(cfg.CheckpointDir); snap != "" {
				resumed = true
			}
		}
		first := inst
		res, err := sim.RunLadder(cfg, func(c sim.Config) (sim.Source, error) {
			if first != nil {
				i := first
				first = nil
				return sim.NewFunctionalSource(c, i), nil
			}
			retry, err := w.Build()
			if err != nil {
				return nil, fmt.Errorf("rebuilding %s/%s: %w", spec.Suite, spec.Bench, err)
			}
			return sim.NewFunctionalSource(c, retry), nil
		})
		return res, resumed, err
	}
	return sim.RunOrResume(cfg, inst)
}

// RunDirect runs the spec exactly as a worker would, minus every
// serving concern — no context, no shared registry, no checkpoints. It
// is the conformance oracle: CanonicalResult of a job's result must be
// byte-identical to CanonicalResult of RunDirect on the same spec.
func RunDirect(spec JobSpec) (*sim.Result, error) {
	res, _, err := runSpec(spec, nil)
	return res, err
}
