package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout under Config.StateDir — the daemon's durable state:
//
//	job-000042/
//	    spec.json      the JobSpec, written at admission
//	    result.json    the terminal Status + canonical result bytes
//	    ckpt/          the sim checkpoint chain (ckpt-*.wpsnap)
//
// A job directory holding a spec but no result is unfinished work: the
// next daemon run re-admits it and RunOrResume picks the newest
// snapshot in ckpt/, so a SIGTERM'd or crashed daemon resumes every
// in-flight and queued job bit-identically.

const jobDirPrefix = "job-"

// jobID renders the canonical id for a sequence number.
func jobID(seq int) string { return fmt.Sprintf("%s%06d", jobDirPrefix, seq) }

// parseJobSeq inverts jobID strictly: the suffix must be all digits
// and the parsed sequence must render back to exactly the same name.
// A lenient Sscanf("%d") here once admitted "job-12abc" as sequence
// 12 — colliding with job-000012 in the job table — and "job-0000012"
// as a second job-000012; the round-trip rejects both.
func parseJobSeq(name string) (int, bool) {
	digits := strings.TrimPrefix(name, jobDirPrefix)
	if digits == "" {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		if digits[i] < '0' || digits[i] > '9' {
			return 0, false
		}
	}
	seq, err := strconv.Atoi(digits)
	if err != nil || jobID(seq) != name {
		return 0, false
	}
	return seq, true
}

// jobDir returns the job's state directory ("" when the server is
// ephemeral).
func (s *Server) jobDir(id string) string {
	if s.cfg.StateDir == "" {
		return ""
	}
	return filepath.Join(s.cfg.StateDir, id)
}

// persistSpec writes the job's spec at admission time (a no-op for an
// ephemeral server).
func (s *Server) persistSpec(j *job) error {
	dir := s.jobDir(j.id)
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(j.spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "spec.json"), append(data, '\n'), 0o644)
}

// persistResult writes the terminal documents: the status in
// result.json and — when the job produced one — the canonical result
// bytes, verbatim, in canonical.json (embedding them as a RawMessage
// inside the indented result.json would re-indent them and break byte
// identity across a restart). The canonical file goes first so a crash
// between the writes leaves the job unfinished, never
// finished-without-result. Drain-interrupted jobs are deliberately
// never persisted — the absence of result.json is what re-admits them
// on restart.
func (s *Server) persistResult(j *job) error {
	dir := s.jobDir(j.id)
	if dir == "" {
		return nil
	}
	if canonical, _ := j.result(); canonical != nil {
		if err := os.WriteFile(filepath.Join(dir, "canonical.json"), canonical, 0o644); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(j.status(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "result.json"), append(data, '\n'), 0o644)
}

// removeJobDir rolls back a job directory created for an admission
// that ultimately failed.
func (s *Server) removeJobDir(id string) {
	if dir := s.jobDir(id); dir != "" {
		_ = os.RemoveAll(dir)
	}
}

// loadState scans the state directory and rebuilds the job table:
// terminal jobs are restored read-only from their result documents,
// unfinished jobs (spec without result) are returned as pending, in
// submission order, for re-admission. The returned maxSeq keeps new
// ids unique across daemon runs.
func (s *Server) loadState() (pending []*job, maxSeq int, err error) {
	if s.cfg.StateDir == "" {
		return nil, 0, nil
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return nil, 0, err
	}
	ents, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return nil, 0, err
	}
	var loaded []*job
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, jobDirPrefix) {
			continue
		}
		seq, ok := parseJobSeq(name)
		if !ok {
			continue
		}
		specData, err := os.ReadFile(filepath.Join(s.cfg.StateDir, name, "spec.json"))
		if err != nil {
			continue // a crash between MkdirAll and the spec write; nothing to recover
		}
		var spec JobSpec
		if err := json.Unmarshal(specData, &spec); err != nil {
			return nil, 0, fmt.Errorf("server: corrupt spec in %s: %w", name, err)
		}
		j := newJob(name, seq, spec)
		if seq > maxSeq {
			maxSeq = seq
		}
		if resData, err := os.ReadFile(filepath.Join(s.cfg.StateDir, name, "result.json")); err == nil {
			var st Status
			if err := json.Unmarshal(resData, &st); err != nil {
				return nil, 0, fmt.Errorf("server: corrupt result in %s: %w", name, err)
			}
			j.state = st.State
			j.exitCode = st.ExitCode
			j.degraded = st.Degraded
			j.requestedWP = st.RequestedWP
			j.ranWP = st.RanWP
			j.fault = st.Fault
			j.errMsg = st.Error
			j.resumed = st.Resumed
			j.wallNS = st.WallNS
			j.cacheDisp = st.Cache
			j.dedupedOf = st.DedupedOf
			j.ckptInsts.Store(st.CheckpointInsts)
			// Only a done job may carry canonical bytes; a canceled or
			// failed record next to a canonical.json (a crash relic)
			// must not start serving a result it never reported.
			if st.State == StateDone {
				if canonical, err := os.ReadFile(filepath.Join(s.cfg.StateDir, name, "canonical.json")); err == nil {
					j.canonical = canonical
				}
			}
		} else {
			// Re-admission. A canonical.json without result.json is the
			// relic of a crash between persistResult's two writes; drop
			// it now, or a re-run that ends without a result (canceled,
			// failed) would leave it behind for a later daemon run to
			// serve as if the job had completed.
			_ = os.Remove(filepath.Join(s.cfg.StateDir, name, "canonical.json"))
			j.interrupted = true // mid-flight (or still queued) when the last daemon run ended
			pending = append(pending, j)
		}
		loaded = append(loaded, j)
	}
	sort.Slice(loaded, func(a, b int) bool { return loaded[a].seq < loaded[b].seq })
	sort.Slice(pending, func(a, b int) bool { return pending[a].seq < pending[b].seq })
	for _, j := range loaded {
		s.jobs[j.id] = j
		s.order = append(s.order, j)
	}
	return pending, maxSeq, nil
}
