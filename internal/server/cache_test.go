package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// drainNow drains a server mid-test so a second one can be opened over
// the same state directory (the cleanup drain is idempotent).
func drainNow(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// writeJobDir fabricates an on-disk job record: a spec, and optionally
// a terminal status document.
func writeJobDir(t *testing.T, stateDir, name string, spec JobSpec, res *Status) {
	t.Helper()
	dir := filepath.Join(stateDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dir, err)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write spec.json: %v", err)
	}
	if res != nil {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatalf("marshal status: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "result.json"), append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write result.json: %v", err)
		}
	}
}

// oracle runs the spec directly and returns the canonical bytes every
// served copy must match, byte for byte.
func oracle(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	res, err := RunDirect(spec)
	if err != nil {
		t.Fatalf("RunDirect: %v", err)
	}
	want, err := CanonicalResult(res)
	if err != nil {
		t.Fatalf("CanonicalResult: %v", err)
	}
	return want
}

// TestSubmitRejectsOversizedSpec: a body past maxSpecBytes is the
// client's 413, not a generic 400 — MaxBytesReader's typed error must
// be mapped, not string-matched into "decoding job spec".
func TestSubmitRejectsOversizedSpec(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"suite":"` + strings.Repeat("g", maxSpecBytes) + `"}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: status %d (%s), want 413", resp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), "exceeds") {
		t.Errorf("413 body %q does not name the limit", buf.String())
	}
}

// TestSubmitRejectsTrailingGarbage: exactly one JSON document per
// submission. json.Decoder stops at the first complete value, so
// without the second-Decode check a trailer would be silently dropped.
func TestSubmitRejectsTrailingGarbage(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec, err := json.Marshal(quickSpec("conv", 21))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(string(spec)+`{"junk":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "trailing data") {
		t.Fatalf("trailing garbage: status %d body %q, want 400 naming trailing data", resp.StatusCode, buf.String())
	}

	// Trailing whitespace is not garbage: Decode skips it to io.EOF.
	resp, err = http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(string(spec)+"\n\t "))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spec with trailing whitespace: status %d, want 202", resp.StatusCode)
	}
	waitFor(t, s, st.ID, "terminal", terminal)
}

// TestLoadStateRejectsMalformedJobDirs: only directories that
// round-trip through jobID are admitted. The lenient Sscanf parse this
// replaces admitted "job-12abc" as sequence 12 and "job-0000012" as a
// second job-000012.
func TestLoadStateRejectsMalformedJobDirs(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec("wpemul", 12)
	writeJobDir(t, dir, "job-000012", spec, &Status{
		ID: "job-000012", State: StateCanceled, ExitCode: exitAnnotated,
		Spec: spec, Error: "canceled before start",
	})
	garbage := []string{"job-12abc", "job-0000012", "job-12", "job-"}
	for _, name := range garbage {
		// Each gets a valid spec so a lenient parser would re-admit and
		// re-run it.
		writeJobDir(t, dir, name, quickSpec("wpemul", 99), nil)
	}

	s := newTestServer(t, Config{Workers: 1, StateDir: dir})
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "job-000012" {
		t.Fatalf("restored %d jobs (%+v), want exactly job-000012", len(jobs), jobs)
	}
	for _, name := range garbage {
		if _, err := s.Job(name); err == nil {
			t.Errorf("malformed dir %q was admitted as a job", name)
		}
	}
	st, err := s.Submit(quickSpec("conv", 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID != "job-000013" {
		t.Errorf("new job id %s, want job-000013 (sequence from the one valid dir)", st.ID)
	}
	waitFor(t, s, st.ID, "terminal", terminal)
}

// TestStaleCanonicalRemovedOnReadmission simulates a crash between
// persistResult's two writes: canonical.json exists, result.json does
// not. Re-admission must drop the relic — if the re-run ends without a
// result (canceled here), a later daemon run must not serve the stale
// bytes as if the job had completed.
func TestStaleCanonicalRemovedOnReadmission(t *testing.T) {
	dir := t.TempDir()
	writeJobDir(t, dir, "job-000001", longSpec(), nil)
	stale := filepath.Join(dir, "job-000001", "canonical.json")
	if err := os.WriteFile(stale, []byte(`{"wp":"stale-crash-relic"}`), 0o644); err != nil {
		t.Fatalf("write relic: %v", err)
	}

	s := newTestServer(t, Config{Workers: 1, StateDir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale canonical.json survived re-admission (stat err %v)", err)
	}
	if data, _, err := s.Result("job-000001"); err != nil || data != nil {
		t.Fatalf("re-admitted job serves bytes %q (err %v), want none", data, err)
	}
	if _, err := s.Cancel("job-000001"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st := waitFor(t, s, "job-000001", "terminal", terminal)
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	drainNow(t, s)

	s2 := newTestServer(t, Config{Workers: 1, StateDir: dir})
	got, err := s2.Job("job-000001")
	if err != nil || got.State != StateCanceled {
		t.Fatalf("restored state %+v (err %v), want canceled", got, err)
	}
	if data, _, err := s2.Result("job-000001"); err != nil || data != nil {
		t.Errorf("restarted daemon serves crash-relic bytes %q (err %v)", data, err)
	}
}

// TestCanonicalIgnoredForNonDoneJob: a canceled record next to a
// canonical.json (another crash-relic shape) must not start serving a
// result the job never reported.
func TestCanonicalIgnoredForNonDoneJob(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec("conv", 5)
	writeJobDir(t, dir, "job-000001", spec, &Status{
		ID: "job-000001", State: StateCanceled, ExitCode: exitAnnotated,
		Spec: spec, Error: "canceled before start",
	})
	relic := filepath.Join(dir, "job-000001", "canonical.json")
	if err := os.WriteFile(relic, []byte(`{"wp":"relic"}`), 0o644); err != nil {
		t.Fatalf("write relic: %v", err)
	}
	s := newTestServer(t, Config{Workers: 1, StateDir: dir})
	if data, _, err := s.Result("job-000001"); err != nil || data != nil {
		t.Errorf("canceled job serves canonical bytes %q (err %v), want none", data, err)
	}
}

// TestResultConflictReportsCoherentState: the 409 body and the (absent)
// bytes come from one locked read, so the named state can never
// contradict the no-result response.
func TestResultConflictReportsCoherentState(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, err := s.Submit(longSpecSeed(61))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitFor(t, s, st.ID, "terminal", terminal)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusConflict || !strings.Contains(buf.String(), "state canceled") {
		t.Fatalf("canceled result: status %d body %q, want 409 naming state canceled", resp.StatusCode, buf.String())
	}
}

// TestCacheHitConformance is the cache acceptance oracle: cache-served
// bodies are byte-identical to a direct sim run — within one daemon
// run, across a restart (the persistent tier), and after a corrupted
// entry forces the fall-through to a real run.
func TestCacheHitConformance(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec("conv", 7)
	want := oracle(t, spec)

	reg1 := obs.NewRegistry()
	s1 := newTestServer(t, Config{Workers: 2, StateDir: dir, Metrics: reg1})
	first, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if first.Cache != cacheMiss {
		t.Errorf("first submission disposition %q, want miss", first.Cache)
	}
	st := waitFor(t, s1, first.ID, "terminal", terminal)
	if st.State != StateDone || st.ExitCode != exitClean {
		t.Fatalf("first run: state %s exit %d error %q", st.State, st.ExitCode, st.Error)
	}
	got, _, _ := s1.Result(first.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("served bytes diverge from the direct run")
	}

	second, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("repeat Submit: %v", err)
	}
	if second.State != StateDone || second.Cache != cacheHit || second.WallNS != 0 {
		t.Fatalf("repeat submission %+v, want done/hit/wall 0", second)
	}
	got, _, _ = s1.Result(second.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("cache-served bytes diverge from the direct run")
	}
	if n := reg1.Counter("wpserved_sim_runs_total").Value(); n != 1 {
		t.Errorf("sim runs = %d, want 1 (the hit must not re-run)", n)
	}
	if n := reg1.Counter("wpserved_cache_hits_total").Value(); n != 1 {
		t.Errorf("cache hits = %d, want 1", n)
	}
	if n := reg1.Counter("wpserved_cache_stores_total").Value(); n != 1 {
		t.Errorf("cache stores = %d, want 1", n)
	}
	drainNow(t, s1)

	// Restart: the persistent tier under StateDir/cache survives.
	reg2 := obs.NewRegistry()
	s2 := newTestServer(t, Config{Workers: 2, StateDir: dir, Metrics: reg2})
	third, err := s2.Submit(spec)
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if third.State != StateDone || third.Cache != cacheHit {
		t.Fatalf("post-restart submission %+v, want done/hit", third)
	}
	got, _, _ = s2.Result(third.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart cache-served bytes diverge from the direct run")
	}
	if n := reg2.Counter("wpserved_sim_runs_total").Value(); n != 0 {
		t.Errorf("sim runs after restart = %d, want 0", n)
	}
	drainNow(t, s2)

	// Corruption: a flipped byte fails self-verification; the server
	// discards the entry and falls through to a real, identical run.
	entries, err := filepath.Glob(filepath.Join(dir, "cache", "*.wpres"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries %v (err %v), want exactly one", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatalf("corrupt entry: %v", err)
	}
	reg3 := obs.NewRegistry()
	s3 := newTestServer(t, Config{Workers: 2, StateDir: dir, Metrics: reg3})
	fourth, err := s3.Submit(spec)
	if err != nil {
		t.Fatalf("Submit over corrupt entry: %v", err)
	}
	if fourth.Cache != cacheMiss {
		t.Fatalf("corrupt-entry submission disposition %q, want miss (never a wrong answer)", fourth.Cache)
	}
	st = waitFor(t, s3, fourth.ID, "terminal", terminal)
	if st.State != StateDone || st.ExitCode != exitClean {
		t.Fatalf("re-run after corruption: state %s exit %d", st.State, st.ExitCode)
	}
	got, _, _ = s3.Result(fourth.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("re-run after corruption diverges from the direct run")
	}
	if n := reg3.Counter("wpserved_cache_corrupt_total").Value(); n != 1 {
		t.Errorf("corrupt counter = %d, want 1", n)
	}
	if n := reg3.Counter("wpserved_sim_runs_total").Value(); n != 1 {
		t.Errorf("sim runs over corrupt entry = %d, want 1", n)
	}
}

// TestCoalescedSubmissionsRunOnce: followers of a running leader share
// its execution — one sim run, N done jobs, every body byte-identical
// to the direct run.
func TestCoalescedSubmissionsRunOnce(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Metrics: reg})
	spec := longSpecSeed(41)
	lead, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, s, lead.ID, "running", func(st Status) bool { return st.State == StateRunning })

	var followers []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("follower Submit: %v", err)
		}
		if st.State != StateQueued || st.Cache != cacheCoalesced || st.DedupedOf != lead.ID {
			t.Fatalf("follower %+v, want queued/coalesced/deduped_of=%s", st, lead.ID)
		}
		followers = append(followers, st.ID)
	}

	st := waitFor(t, s, lead.ID, "terminal", terminal)
	if st.State != StateDone || st.ExitCode != exitClean {
		t.Fatalf("leader: state %s exit %d error %q", st.State, st.ExitCode, st.Error)
	}
	want := oracle(t, spec)
	leadBytes, _, _ := s.Result(lead.ID)
	if !bytes.Equal(leadBytes, want) {
		t.Fatalf("leader bytes diverge from the direct run")
	}
	for _, id := range followers {
		st := waitFor(t, s, id, "terminal", terminal)
		if st.State != StateDone || st.Cache != cacheCoalesced || st.DedupedOf != lead.ID || st.WallNS != 0 {
			t.Errorf("settled follower %+v, want done/coalesced/deduped_of=%s/wall 0", st, lead.ID)
		}
		got, _, _ := s.Result(id)
		if !bytes.Equal(got, want) {
			t.Errorf("follower %s bytes diverge from the direct run", id)
		}
	}
	if n := reg.Counter("wpserved_sim_runs_total").Value(); n != 1 {
		t.Errorf("sim runs = %d, want 1 for 4 identical submissions", n)
	}
	if n := reg.Counter("wpserved_cache_coalesced_total").Value(); n != 3 {
		t.Errorf("coalesced counter = %d, want 3", n)
	}
	if n := reg.Counter("wpserved_jobs_done_total").Value(); n != 4 {
		t.Errorf("done counter = %d, want 4", n)
	}
}

// TestConcurrentIdenticalSubmissionsRunOnce is the metrics-asserted
// acceptance: N racing identical submissions execute the simulation
// exactly once, whichever interleaving of probe, coalesce, and
// completion they hit.
func TestConcurrentIdenticalSubmissionsRunOnce(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 4, Metrics: reg})
	spec := quickSpec("conv", 99)
	const n = 8
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(spec)
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	want := oracle(t, spec)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Submit %d: %v", i, errs[i])
		}
		st := waitFor(t, s, ids[i], "terminal", terminal)
		if st.State != StateDone || st.ExitCode != exitClean {
			t.Fatalf("job %s: state %s exit %d error %q", ids[i], st.State, st.ExitCode, st.Error)
		}
		got, _, _ := s.Result(ids[i])
		if !bytes.Equal(got, want) {
			t.Errorf("job %s bytes diverge from the direct run", ids[i])
		}
	}
	if n := reg.Counter("wpserved_sim_runs_total").Value(); n != 1 {
		t.Errorf("sim runs = %d, want exactly 1 for %d concurrent identical submissions", n, 8)
	}
}

// TestCanceledLeaderPromotesFollower: a leader canceled while queued
// hands its followers to a promoted successor instead of starving them.
func TestCanceledLeaderPromotesFollower(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Metrics: reg})

	// Occupy the single worker so the leader stays queued.
	blocker, err := s.Submit(longSpecSeed(81))
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, s, blocker.ID, "running", func(st Status) bool { return st.State == StateRunning })

	spec := quickSpec("wpemul", 82)
	lead, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit leader: %v", err)
	}
	f1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit follower: %v", err)
	}
	f2, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit follower: %v", err)
	}
	if f1.DedupedOf != lead.ID || f2.DedupedOf != lead.ID {
		t.Fatalf("followers %+v / %+v not coalesced onto %s", f1, f2, lead.ID)
	}
	// A follower canceled while waiting stays canceled through the
	// promotion.
	if _, err := s.Cancel(f2.ID); err != nil {
		t.Fatalf("Cancel follower: %v", err)
	}
	if _, err := s.Cancel(lead.ID); err != nil {
		t.Fatalf("Cancel leader: %v", err)
	}
	st := waitFor(t, s, f1.ID, "terminal", terminal)
	if st.State != StateDone || st.ExitCode != exitClean {
		t.Fatalf("promoted follower: state %s exit %d error %q", st.State, st.ExitCode, st.Error)
	}
	if st.DedupedOf != "" || st.Cache != cacheMiss {
		t.Errorf("promoted follower keeps coalesced identity: %+v", st)
	}
	got, _, _ := s.Result(f1.ID)
	if !bytes.Equal(got, oracle(t, spec)) {
		t.Errorf("promoted follower bytes diverge from the direct run")
	}
	if st, _ := s.Job(lead.ID); st.State != StateCanceled {
		t.Errorf("leader state %s, want canceled", st.State)
	}
	if st, _ := s.Job(f2.ID); st.State != StateCanceled {
		t.Errorf("canceled follower state %s, want canceled", st.State)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	waitFor(t, s, blocker.ID, "terminal", terminal)
}
