package server

import (
	"encoding/json"

	"repro/internal/sim"
	"repro/internal/simerr"
)

// resultDoc is the deterministic rendering of a sim.Result: every
// simulated quantity, with the two host-dependent channels factored
// out. Wall time is reported beside the document (never inside it),
// and error values are flattened to their one-line messages so a panic
// fault's goroutine stack — host addresses and all — never enters the
// canonical bytes.
type resultDoc struct {
	WP           string `json:"wp"`
	RequestedWP  string `json:"requested_wp"`
	Degraded     bool   `json:"degraded,omitempty"`
	DegradeFault string `json:"degrade_fault,omitempty"`
	Err          string `json:"err,omitempty"`
	// Sim is the full result with Wall zeroed and the error fields
	// nil'd (they are rendered as the strings above).
	Sim *sim.Result `json:"sim"`
}

// CanonicalResult renders a result as deterministic JSON: two runs of
// the same configuration produce byte-identical documents regardless
// of host timing, worker interleaving, or whether the run was served,
// resumed from a snapshot, or executed directly. This is the identity
// the acceptance tests (and make serve-smoke) diff.
func CanonicalResult(res *sim.Result) ([]byte, error) {
	c := *res
	c.Wall = 0
	c.Err = nil
	c.DegradeFault = nil
	doc := resultDoc{
		WP:           res.WP.String(),
		RequestedWP:  res.RequestedWP.String(),
		Degraded:     res.Degraded,
		DegradeFault: simerr.FirstLine(res.DegradeFault),
		Err:          simerr.FirstLine(res.Err),
		Sim:          &c,
	}
	return json.MarshalIndent(doc, "", "  ")
}
