package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/wrongpath"
)

// quickSpec is a sub-100ms job; longSpec retires ~2.6M instructions
// (about a second of host time), long enough to observe running state,
// checkpoints, and mid-run drains.
func quickSpec(wp string, seed uint64) JobSpec {
	return JobSpec{Suite: "gap", Bench: "bfs", WP: wp, N: 1024, Degree: 4, Seed: seed}
}

func longSpec() JobSpec {
	return JobSpec{Suite: "gap", Bench: "bfs", WP: "conv", N: 16384, Degree: 8}
}

// longSpecSeed is longSpec with a distinct input seed — a distinct
// fingerprint, so submissions neither coalesce nor share cache entries
// (tests of queueing and backpressure need genuinely distinct jobs).
func longSpecSeed(seed uint64) JobSpec {
	sp := longSpec()
	sp.Seed = seed
	return sp
}

// waitFor polls the job until pred holds (test-scale backoff, bounded
// by iteration count so the package stays free of deadline clocks).
func waitFor(t *testing.T, s *Server, id string, what string, pred func(Status) bool) Status {
	t.Helper()
	for i := 0; i < 30_000; i++ {
		st, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s never reached %s; last status %+v", id, what, st)
	return Status{}
}

func terminal(st Status) bool {
	return st.State == StateDone || st.State == StateFailed || st.State == StateCanceled
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain at cleanup: %v", err)
		}
	})
	return s
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for _, spec := range []JobSpec{
		{Suite: "nope", Bench: "bfs"},
		{Suite: "gap", Bench: "nope"},
		{Suite: "gap", Bench: "bfs", WP: "quantum"},
		{Suite: "gap", Bench: "bfs", TimeoutMS: -1},
		{Suite: "gap", Bench: "bfs", MaxRetries: -1},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
	if got := s.Metrics().Counter("wpserved_jobs_rejected_total").Value(); got != 5 {
		t.Errorf("rejected counter = %d, want 5", got)
	}
}

// TestConcurrentJobsMatchDirect is the conformance acceptance: eight
// concurrent served jobs across every technique produce results
// byte-identical to direct sim runs of the same specs.
func TestConcurrentJobsMatchDirect(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	var specs []JobSpec
	for _, k := range wrongpath.Kinds() {
		for _, seed := range []uint64{1, 2} {
			specs = append(specs, quickSpec(k.String(), seed))
		}
	}
	if len(specs) < 8 {
		t.Fatalf("want >= 8 specs, have %d", len(specs))
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st := waitFor(t, s, id, "terminal", terminal)
		if st.State != StateDone || st.ExitCode != exitClean {
			t.Fatalf("job %s: state %s exit %d error %q", id, st.State, st.ExitCode, st.Error)
		}
		if st.RanWP != specs[i].WP {
			t.Errorf("job %s ran %s, want %s", id, st.RanWP, specs[i].WP)
		}
		served, _, err := s.Result(id)
		if err != nil || served == nil {
			t.Fatalf("Result(%s): %v (nil=%v)", id, err, served == nil)
		}
		direct, err := RunDirect(specs[i])
		if err != nil {
			t.Fatalf("RunDirect(%d): %v", i, err)
		}
		want, err := CanonicalResult(direct)
		if err != nil {
			t.Fatalf("CanonicalResult: %v", err)
		}
		if !bytes.Equal(served, want) {
			t.Errorf("job %s (%s seed %d): served result diverges from direct run\nserved:\n%s\ndirect:\n%s",
				id, specs[i].WP, specs[i].Seed, served, want)
		}
	}
}

// TestQueueFullRejects exercises admission backpressure end to end
// through the HTTP handler: 429 plus Retry-After once QueueDepth jobs
// wait behind a busy worker.
func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(spec JobSpec) *http.Response {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		return resp
	}
	decodeStatus := func(resp *http.Response) Status {
		t.Helper()
		defer resp.Body.Close()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		return st
	}

	resp := post(longSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	busy := decodeStatus(resp)
	waitFor(t, s, busy.ID, "running", func(st Status) bool { return st.State == StateRunning })

	// Distinct seeds: identical specs would coalesce onto the running
	// leader instead of occupying admission slots.
	var queued []string
	for i := 0; i < 2; i++ {
		resp := post(longSpecSeed(uint64(i + 1)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d, want 202", i, resp.StatusCode)
		}
		queued = append(queued, decodeStatus(resp).ID)
	}
	resp = post(longSpecSeed(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After header")
	}
	resp.Body.Close()

	for _, id := range append([]string{busy.ID}, queued...) {
		if _, err := s.Cancel(id); err != nil {
			t.Fatalf("Cancel(%s): %v", id, err)
		}
	}
	for _, id := range append([]string{busy.ID}, queued...) {
		st := waitFor(t, s, id, "terminal", terminal)
		if st.State != StateCanceled || st.ExitCode != exitAnnotated {
			t.Errorf("job %s: state %s exit %d, want canceled/3", id, st.State, st.ExitCode)
		}
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	busy, err := s.Submit(longSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, s, busy.ID, "running", func(st Status) bool { return st.State == StateRunning })
	queued, err := s.Submit(quickSpec("conv", 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel(queued): %v", err)
	}
	if st.State != StateCanceled || st.ExitCode != exitAnnotated {
		t.Errorf("queued cancel: state %s exit %d, want canceled/3 immediately", st.State, st.ExitCode)
	}
	if _, err := s.Cancel(busy.ID); err != nil {
		t.Fatalf("Cancel(running): %v", err)
	}
	st = waitFor(t, s, busy.ID, "terminal", terminal)
	if st.State != StateCanceled || st.ExitCode != exitAnnotated {
		t.Errorf("running cancel: state %s exit %d, want canceled/3", st.State, st.ExitCode)
	}
	if res, _, _ := s.Result(busy.ID); res != nil {
		t.Error("canceled job exposes a result document; partial results must not be served")
	}
	if _, err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel(unknown) = %v, want ErrUnknownJob", err)
	}
}

func TestTimeoutCancelsJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	spec := longSpec()
	spec.TimeoutMS = 50
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitFor(t, s, st.ID, "terminal", terminal)
	if st.State != StateCanceled || st.ExitCode != exitAnnotated {
		t.Fatalf("timed-out job: state %s exit %d error %q, want canceled/3", st.State, st.ExitCode, st.Error)
	}
}

// TestDrainInterruptsAndResumes is the crash-safety acceptance: a drain
// stops a running job at a lane boundary, the job survives as
// queued-on-disk state, and a second server over the same state
// directory resumes it to a result byte-identical to an uninterrupted
// direct run.
func TestDrainInterruptsAndResumes(t *testing.T) {
	stateDir := t.TempDir()
	reg := obs.NewRegistry()
	s1, err := New(Config{Workers: 1, StateDir: stateDir, CheckpointEvery: 100_000, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := longSpec()
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := st.ID
	waitFor(t, s1, id, "first checkpoint", func(st Status) bool { return st.CheckpointInsts >= 200_000 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st, _ = s1.Job(id)
	if st.State != StateQueued || !st.Interrupted {
		t.Fatalf("after drain: state %s interrupted %v, want queued/interrupted", st.State, st.Interrupted)
	}
	if _, err := os.Stat(filepath.Join(stateDir, id, "result.json")); err == nil {
		t.Fatal("drain persisted a result document for an interrupted job")
	}
	if snaps, err := filepath.Glob(filepath.Join(stateDir, id, "ckpt", "*.wpsnap")); err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoint snapshots on disk after drain (err %v)", err)
	}

	s2 := newTestServer(t, Config{Workers: 1, StateDir: stateDir, CheckpointEvery: 100_000})
	st = waitFor(t, s2, id, "terminal", terminal)
	if st.State != StateDone || st.ExitCode != exitClean {
		t.Fatalf("resumed job: state %s exit %d error %q", st.State, st.ExitCode, st.Error)
	}
	if !st.Resumed {
		t.Error("resumed job does not report Resumed")
	}
	if got := s2.Metrics().Counter("wpserved_jobs_resumed_total").Value(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
	served, _, err := s2.Result(id)
	if err != nil || served == nil {
		t.Fatalf("Result: %v (nil=%v)", err, served == nil)
	}
	direct, err := RunDirect(spec)
	if err != nil {
		t.Fatalf("RunDirect: %v", err)
	}
	want, err := CanonicalResult(direct)
	if err != nil {
		t.Fatalf("CanonicalResult: %v", err)
	}
	if !bytes.Equal(served, want) {
		t.Errorf("drain/resume diverged from an uninterrupted run\nresumed:\n%s\ndirect:\n%s", served, want)
	}
}

// TestTerminalStatePersistsAcrossRestart: a finished job is reloaded
// read-only — same status, same bytes, no re-execution.
func TestTerminalStatePersistsAcrossRestart(t *testing.T) {
	stateDir := t.TempDir()
	s1 := newTestServer(t, Config{Workers: 1, StateDir: stateDir})
	st, err := s1.Submit(quickSpec("conv", 7))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st = waitFor(t, s1, st.ID, "terminal", terminal)
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	first, _, _ := s1.Result(st.ID)

	s2 := newTestServer(t, Config{Workers: 1, StateDir: stateDir})
	got, err := s2.Job(st.ID)
	if err != nil {
		t.Fatalf("Job after restart: %v", err)
	}
	if got.State != StateDone || got.ExitCode != exitClean || got.RanWP != "conv" {
		t.Errorf("restored status %+v, want done/0/conv", got)
	}
	reloaded, _, err := s2.Result(st.ID)
	if err != nil || !bytes.Equal(first, reloaded) {
		t.Errorf("restored result differs from the original (err %v)", err)
	}
	if n := s2.Metrics().Counter("wpserved_jobs_done_total").Value(); n != 0 {
		t.Errorf("restart re-executed a finished job (done counter %d)", n)
	}
}

// TestDegradedStatusSurfaced: the completion path mirrors the ladder's
// descent — requested vs ran technique, the forcing fault, exit code 3.
func TestDegradedStatusSurfaced(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j := newJob("job-000001", 1, quickSpec("wpemul", 1))
	j.start(func() {})
	fault := simerr.Degraded(wrongpath.WPEmul.String(), wrongpath.Conv.String(),
		simerr.Unsupported("test", errors.New("boom")))
	res := &sim.Result{
		WP:           wrongpath.Conv,
		RequestedWP:  wrongpath.WPEmul,
		Degraded:     true,
		DegradeFault: fault,
	}
	s.complete(j, res, nil)
	st := j.status()
	if st.State != StateDone || st.ExitCode != exitAnnotated {
		t.Fatalf("state %s exit %d, want done/3", st.State, st.ExitCode)
	}
	if !st.Degraded || st.RequestedWP != "wpemul" || st.RanWP != "conv" {
		t.Errorf("descent not surfaced: %+v", st)
	}
	if st.Fault == "" || strings.Contains(st.Fault, "\n") {
		t.Errorf("fault %q, want a non-empty single line", st.Fault)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	if resp, _ := get("/jobs/job-000404"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/jobs/job-000404/result"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"suite":"gap"`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated body: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"suite":"gap","bench":"bfs","flux":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	body, _ := json.Marshal(quickSpec("conv", 3))
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	waitFor(t, s, st.ID, "terminal", terminal)

	if resp, body := get("/jobs/" + st.ID + "/result"); resp.StatusCode != http.StatusOK {
		t.Errorf("result: %d %s", resp.StatusCode, body)
	} else {
		// The body is the canonical document verbatim — the byte-identity
		// contract forbids any envelope around it.
		direct, _, _ := s.Result(st.ID)
		if !bytes.Equal(body, direct) {
			t.Error("HTTP result body differs from the stored canonical bytes")
		}
		if got := resp.Header.Get("X-Wpserved-Job"); got != st.ID {
			t.Errorf("X-Wpserved-Job = %q, want %q", got, st.ID)
		}
	}
	if resp, body := get("/jobs"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), st.ID) {
		t.Errorf("list: %d %s", resp.StatusCode, body)
	}
	if resp, body := get("/metrics"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), "wpserved_jobs_submitted_total") {
		t.Errorf("metrics: %d %s", resp.StatusCode, body)
	}

	// A canceled-while-queued job holds no result: 409, not 404.
	busy, err := s.Submit(longSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, s, busy.ID, "running", func(st Status) bool { return st.State == StateRunning })
	queued, err := s.Submit(quickSpec("conv", 4))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if resp, _ := get("/jobs/" + queued.ID + "/result"); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: %d, want 409", resp.StatusCode)
	}
	if _, err := s.Cancel(busy.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitFor(t, s, busy.ID, "terminal", terminal)

	// Draining flips admission to 503 and healthz to "draining".
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "draining") {
		t.Errorf("healthz while draining: %d %s", resp.StatusCode, body)
	}
}
