// Package specfp computes canonical, content-addressed fingerprints
// over simulation specifications. A fingerprint is the SHA-256 of a
// deterministic field rendering: the caller appends named fields in a
// fixed order and Sum hashes the accumulated document. Two specs that
// render the same fields to the same values — regardless of how the
// spec objects were built — share one fingerprint, which is what makes
// canonical result bytes content-addressable (the serving layer's
// result cache and the experiment runner's cell cache both key on it).
//
// Fingerprints deliberately exclude knobs that provably cannot change
// canonical result bytes (per-job timeouts, decoupling-queue lane
// sizes, checkpoint cadence, observability labels) — the same exclusion
// argument the checkpoint fingerprint makes (see sim.Config.Fingerprint):
// lane batching is bit-exact, resume chains are bit-identical, and
// cancellation never produces a result document at all. The *caller*
// owns that exclusion list; this package only guarantees that what was
// appended is hashed canonically.
//
// Every builder opens with a domain string ("wpserved/JobSpec/v1") so
// unrelated fingerprint spaces can never collide and a format revision
// invalidates old content addresses instead of silently aliasing them.
package specfp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Builder accumulates a canonical field document. Field order is part
// of the identity: callers must append fields in one fixed order.
type Builder struct {
	buf []byte
}

// New opens a builder for the given fingerprint domain. Distinct
// domains never collide even over identical fields.
func New(domain string) *Builder {
	b := &Builder{buf: make([]byte, 0, 256)}
	b.raw(domain)
	return b
}

// raw appends one length-prefixed record, making the encoding
// injective: no concatenation of field names and values can alias
// another.
func (b *Builder) raw(s string) {
	b.buf = strconv.AppendInt(b.buf, int64(len(s)), 10)
	b.buf = append(b.buf, ':')
	b.buf = append(b.buf, s...)
	b.buf = append(b.buf, '\n')
}

func (b *Builder) field(name, value string) {
	b.raw(name)
	b.raw(value)
}

// String appends a string field.
func (b *Builder) String(name, v string) { b.field(name, v) }

// Uint64 appends an unsigned integer field.
func (b *Builder) Uint64(name string, v uint64) {
	b.field(name, strconv.FormatUint(v, 10))
}

// Int appends a signed integer field.
func (b *Builder) Int(name string, v int) {
	b.field(name, strconv.FormatInt(int64(v), 10))
}

// Int64 appends a signed 64-bit field.
func (b *Builder) Int64(name string, v int64) {
	b.field(name, strconv.FormatInt(v, 10))
}

// Bool appends a boolean field.
func (b *Builder) Bool(name string, v bool) {
	b.field(name, strconv.FormatBool(v))
}

// Float appends a float field in the shortest round-trippable form.
func (b *Builder) Float(name string, v float64) {
	b.field(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Sum returns the fingerprint: the lowercase hex SHA-256 of the
// accumulated document. The builder may keep accumulating; Sum only
// covers the fields appended so far.
func (b *Builder) Sum() string {
	h := sha256.Sum256(b.buf)
	return hex.EncodeToString(h[:])
}

// Document returns the pre-hash canonical rendering — for debugging
// cache misses, never for storage (store the Sum).
func (b *Builder) Document() string { return string(b.buf) }

// Valid reports whether s has the shape of a fingerprint this package
// produced: 64 lowercase hex digits. Stores use it to reject path
// components that could escape their directory.
func Valid(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Of is the one-shot convenience for ad-hoc keys: a domain plus
// alternating name/value string pairs. It panics on an odd pair count —
// a programming error, not input.
func Of(domain string, pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("specfp.Of: odd name/value pair count %d", len(pairs)))
	}
	b := New(domain)
	for i := 0; i < len(pairs); i += 2 {
		b.String(pairs[i], pairs[i+1])
	}
	return b.Sum()
}
