package specfp

import (
	"strings"
	"testing"
)

func TestDeterministicAndDistinct(t *testing.T) {
	build := func() *Builder {
		b := New("test/v1")
		b.String("suite", "gap")
		b.String("bench", "bfs")
		b.Uint64("seed", 42)
		b.Int("n", 1024)
		b.Bool("kron", false)
		b.Float("scale", 0.5)
		b.Int64("watchdog_ms", 250)
		return b
	}
	a, b := build().Sum(), build().Sum()
	if a != b {
		t.Fatalf("identical builders disagree: %s vs %s", a, b)
	}
	if !Valid(a) {
		t.Fatalf("Sum %q is not a valid fingerprint", a)
	}

	// Flipping any single field must change the sum.
	variants := []func(*Builder){
		func(b *Builder) { b.String("suite", "specint") },
		func(b *Builder) { b.Uint64("seed", 43) },
		func(b *Builder) { b.Bool("kron", true) },
		func(b *Builder) { b.Float("scale", 0.25) },
	}
	for i, mut := range variants {
		v := build()
		mut(v)
		if v.Sum() == a {
			t.Errorf("variant %d collided with the base fingerprint", i)
		}
	}
}

func TestDomainSeparation(t *testing.T) {
	mk := func(domain string) string {
		b := New(domain)
		b.String("k", "v")
		return b.Sum()
	}
	if mk("a/v1") == mk("b/v1") {
		t.Error("distinct domains produced the same fingerprint")
	}
}

// TestInjectiveEncoding: shifting bytes between a field name and its
// value (or between adjacent fields) must never alias, or two distinct
// specs could share a content address.
func TestInjectiveEncoding(t *testing.T) {
	one := New("t")
	one.String("ab", "c")
	two := New("t")
	two.String("a", "bc")
	if one.Sum() == two.Sum() {
		t.Error("name/value boundary is not part of the identity")
	}
	three := New("t")
	three.String("a", "b")
	three.String("c", "d")
	four := New("t")
	four.String("a", "bc")
	four.String("", "d")
	if three.Sum() == four.Sum() {
		t.Error("field boundary is not part of the identity")
	}
}

func TestDocumentRendersLengthPrefixed(t *testing.T) {
	b := New("dom")
	b.String("name", "value")
	doc := b.Document()
	for _, want := range []string{"3:dom\n", "4:name\n", "5:value\n"} {
		if !strings.Contains(doc, want) {
			t.Errorf("document %q missing record %q", doc, want)
		}
	}
}

func TestValid(t *testing.T) {
	good := New("x").Sum()
	for s, want := range map[string]bool{
		good:                          true,
		strings.ToUpper(good):         false,
		"":                            false,
		"../../etc/passwd":            false,
		strings.Repeat("0", 63):       false,
		strings.Repeat("0", 64):       true,
		strings.Repeat("0", 63) + "g": false,
		good[:32] + "/" + good[33:]:   false,
	} {
		if Valid(s) != want {
			t.Errorf("Valid(%q) = %v, want %v", s, !want, want)
		}
	}
}

func TestOf(t *testing.T) {
	if Of("d", "a", "1") != Of("d", "a", "1") {
		t.Error("Of is not deterministic")
	}
	if Of("d", "a", "1") == Of("d", "a", "2") {
		t.Error("Of ignores values")
	}
	defer func() {
		if recover() == nil {
			t.Error("Of with an odd pair count did not panic")
		}
	}()
	Of("d", "only-name")
}
