package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBasicProgram(t *testing.T) {
	p, err := Assemble(`
.org 0x2000
.entry main
main:
    li   a0, 10
loop:
    addi a0, a0, -1
    bnez a0, loop
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x2000 || p.Entry != 0x2000 {
		t.Errorf("base/entry = %#x/%#x", p.Base, p.Entry)
	}
	if len(p.Insts) != 4 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if p.Insts[0].Op != isa.OpAddi || p.Insts[0].Rd != isa.A0 || p.Insts[0].Rs1 != isa.X0 || p.Insts[0].Imm != 10 {
		t.Errorf("li wrong: %+v", p.Insts[0])
	}
	br := p.Insts[2]
	if br.Op != isa.OpBne || br.Rs1 != isa.A0 || br.Rs2 != isa.X0 {
		t.Errorf("bnez wrong: %+v", br)
	}
	if br.Target != p.MustSymbol("loop") {
		t.Errorf("bnez target = %#x, want loop %#x", br.Target, p.MustSymbol("loop"))
	}
}

func TestMemoryOperands(t *testing.T) {
	p, err := Assemble(`
    ld  t0, 8(a0)
    ld  t1, (a1)
    sd  t0, -16(sp)
    fld f0, 24(a2)
    fsd f0, 0(a2)
`)
	if err != nil {
		t.Fatal(err)
	}
	ld := p.Insts[0]
	if ld.Op != isa.OpLd || ld.Rd != isa.T0 || ld.Rs1 != isa.A0 || ld.Imm != 8 {
		t.Errorf("ld wrong: %+v", ld)
	}
	if p.Insts[1].Imm != 0 {
		t.Errorf("empty displacement = %d", p.Insts[1].Imm)
	}
	sd := p.Insts[2]
	if sd.Op != isa.OpSd || sd.Rs2 != isa.T0 || sd.Rs1 != isa.SP || sd.Imm != -16 {
		t.Errorf("sd wrong: %+v", sd)
	}
	if p.Insts[3].Rd != isa.F(0) || p.Insts[4].Rs2 != isa.F(0) {
		t.Error("FP memory registers wrong")
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble(`
main:
    mv   a0, a1
    not  t0, t1
    neg  t2, t3
    seqz t4, t5
    snez t6, s0
    j    main
    call main
    ret
    jr   t0
    beqz a0, main
    bgtz a1, main
    bgt  a2, a3, main
    bleu a4, a5, main
`)
	if err != nil {
		t.Fatal(err)
	}
	check := func(i int, op isa.Op, rd, rs1, rs2 isa.Reg) {
		t.Helper()
		in := p.Insts[i]
		if in.Op != op || in.Rd != rd || in.Rs1 != rs1 || in.Rs2 != rs2 {
			t.Errorf("inst %d = %+v, want op=%v rd=%v rs1=%v rs2=%v", i, in, op, rd, rs1, rs2)
		}
	}
	check(0, isa.OpAddi, isa.A0, isa.A1, isa.RegNone)
	check(1, isa.OpXori, isa.T0, isa.T1, isa.RegNone)
	if p.Insts[1].Imm != -1 {
		t.Error("not imm wrong")
	}
	check(2, isa.OpSub, isa.T2, isa.X0, isa.T3)
	check(3, isa.OpSltiu, isa.T4, isa.T5, isa.RegNone)
	check(4, isa.OpSltu, isa.T6, isa.X0, isa.S0)
	check(5, isa.OpJal, isa.X0, isa.RegNone, isa.RegNone)
	check(6, isa.OpJal, isa.RA, isa.RegNone, isa.RegNone)
	check(7, isa.OpJalr, isa.X0, isa.RA, isa.RegNone)
	check(8, isa.OpJalr, isa.X0, isa.T0, isa.RegNone)
	check(9, isa.OpBeq, isa.RegNone, isa.A0, isa.X0)
	// bgtz a1 -> blt zero, a1
	check(10, isa.OpBlt, isa.RegNone, isa.X0, isa.A1)
	// bgt a2, a3 -> blt a3, a2
	check(11, isa.OpBlt, isa.RegNone, isa.A3, isa.A2)
	// bleu a4, a5 -> bgeu a5, a4
	check(12, isa.OpBgeu, isa.RegNone, isa.A5, isa.A4)
}

func TestEquAndSymbols(t *testing.T) {
	p, err := Assemble(`
.equ COUNT, 42
.equ BIG, 0x1000
    li t0, COUNT
    li t1, BIG
    li t2, DATA
    li t3, DATA+16
    li t4, DATA-8
    li t5, -5
`, WithSymbols(map[string]uint64{"DATA": 0x8000}))
	if err != nil {
		t.Fatal(err)
	}
	wants := []int64{42, 0x1000, 0x8000, 0x8010, 0x7ff8, -5}
	for i, want := range wants {
		if got := p.Insts[i].Imm; got != want {
			t.Errorf("inst %d imm = %d, want %d", i, got, want)
		}
	}
}

func TestLabelTargets(t *testing.T) {
	p, err := Assemble(`
a:  nop
b:  nop
    beq t0, t1, a
    jal ra, b
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Target != p.MustSymbol("a") {
		t.Error("branch target wrong")
	}
	if p.Insts[3].Target != p.MustSymbol("b") {
		t.Error("jal target wrong")
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p, err := Assemble("x: y: nop")
	if err != nil {
		t.Fatal(err)
	}
	if p.MustSymbol("x") != p.MustSymbol("y") {
		t.Error("labels differ")
	}
}

func TestLui(t *testing.T) {
	p, err := Assemble("lui t0, 5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.OpLui || p.Insts[0].Imm != 5<<12 {
		t.Errorf("lui = %+v", p.Insts[0])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frobnicate a0, a1", "unknown mnemonic"},
		{"unknown register", "add a0, a1, q9", "unknown register"},
		{"bad operand count", "add a0, a1", "takes 3 operands"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"undefined symbol", "li a0, NOPE", "undefined symbol"},
		{"bad mem operand", "ld a0, a1", "memory operand"},
		{"bad directive", ".frob 1", "unknown directive"},
		{"bad entry", ".entry\nnop", ".entry"},
		{"undefined entry", ".entry nowhere\nnop", "undefined label"},
		{"org after insts", "nop\n.org 0x100", ".org after instructions"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbadop\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q missing line number", err)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic")
		}
	}()
	MustAssemble("junk")
}

func TestCommentsAndWhitespace(t *testing.T) {
	p, err := Assemble("\t nop # trailing\n; full comment line\n  nop\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 2 {
		t.Errorf("got %d instructions", len(p.Insts))
	}
}

func TestMnemonicsComplete(t *testing.T) {
	ms := Mnemonics()
	if len(ms) < 60 {
		t.Errorf("only %d mnemonics", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if seen[m] {
			t.Errorf("duplicate mnemonic %q", m)
		}
		seen[m] = true
	}
	for _, want := range []string{"add", "ld", "sd", "beq", "jal", "ecall", "ret", "fmadd", "fcvt.d.l"} {
		if !seen[want] {
			t.Errorf("mnemonic %q missing", want)
		}
	}
}

// TestEveryMnemonicAssembles feeds each mnemonic a plausible operand
// list and requires successful assembly — a completeness check over the
// whole surface.
func TestEveryMnemonicAssembles(t *testing.T) {
	operands := func(m string) string {
		switch m {
		case "nop", "ecall", "ret":
			return ""
		case "j", "call":
			return "lbl"
		case "jr":
			return "t0"
		case "jal":
			return "ra, lbl"
		case "jalr":
			return "ra, t0, 0"
		case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
			return "t0, lbl"
		case "beq", "bne", "blt", "bge", "bltu", "bgeu", "bgt", "ble", "bgtu", "bleu":
			return "t0, t1, lbl"
		case "ld", "lw", "lwu", "lh", "lhu", "lb", "lbu":
			return "t0, 0(a0)"
		case "fld":
			return "f0, 0(a0)"
		case "sd", "sw", "sh", "sb":
			return "t0, 0(a0)"
		case "fsd":
			return "f0, 0(a0)"
		case "li", "la", "lui":
			return "t0, 1"
		case "mv", "not", "neg", "seqz", "snez":
			return "t0, t1"
		case "fneg", "fabs", "fsqrt", "fmv.d", "fcvt.d.l", "fcvt.l.d", "fmv.x.d", "fmv.d.x":
			return "f0, f1"
		case "fmadd":
			return "f0, f1, f2, f3"
		case "fadd", "fsub", "fmul", "fdiv", "fmin", "fmax", "feq", "flt", "fle":
			return "f0, f1, f2"
		case "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu":
			return "t0, t1, 4"
		default: // integer register-register
			return "t0, t1, t2"
		}
	}
	for _, m := range Mnemonics() {
		src := "lbl: nop\n" + m + " " + operands(m) + "\n"
		// Register-kind fixups for FP<->int cross ops.
		switch m {
		case "fcvt.d.l", "fmv.d.x":
			src = "lbl: nop\n" + m + " f0, t0\n"
		case "fcvt.l.d", "fmv.x.d":
			src = "lbl: nop\n" + m + " t0, f0\n"
		case "feq", "flt", "fle":
			src = "lbl: nop\n" + m + " t0, f0, f1\n"
		}
		if _, err := Assemble(src); err != nil {
			t.Errorf("mnemonic %q failed: %v", m, err)
		}
	}
}
