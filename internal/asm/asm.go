// Package asm implements a small two-pass assembler for the simulator's
// ISA (see internal/isa). Workloads — the GAP graph kernels and the
// SPEC-proxy kernels — are written in this assembly language, playing
// the role of the benchmark binaries that the paper's Pin front end
// instruments.
//
// Syntax (line oriented; '#' or ';' start a comment):
//
//	.org 0x1000          set the base address (before any instruction)
//	.entry main          set the entry label (default: first instruction)
//	.equ N, 100          define a constant
//	loop:                define a label
//	    addi a0, a0, -1  register-immediate form
//	    ld   t0, 8(a1)   loads:  rd, disp(base)
//	    sd   t0, 0(a2)   stores: rs, disp(base)
//	    bne  a0, zero, loop
//	    jal  ra, func    direct call; 'call func' and 'j lbl' are pseudos
//	    jalr zero, ra, 0 indirect jump; 'ret' is a pseudo
//	    ecall            syscall: a7 = number, a0.. = arguments
//
// Immediates are decimal or 0x-hex, optionally 'sym' or 'sym+off' or
// 'sym-off' where sym is a label, an .equ constant, or a predefined
// symbol supplied via WithSymbols (the workload loader passes data-array
// addresses this way).
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Option configures Assemble.
type Option func(*assembler)

// WithSymbols predefines symbols (typically data addresses laid out by
// the workload loader) visible to the source.
func WithSymbols(syms map[string]uint64) Option {
	return func(a *assembler) {
		for k, v := range syms {
			a.consts[k] = int64(v)
		}
	}
}

// WithBase sets the default base address (the .org directive overrides).
func WithBase(base uint64) Option {
	return func(a *assembler) { a.base = base }
}

// Error describes an assembly error with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// ErrorList is the aggregate of all errors found in a source.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "asm: no errors"
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return strings.Join(msgs, "\n")
}

type sourceInst struct {
	line     int
	mnemonic string
	operands []string
}

type assembler struct {
	base     uint64
	entryLbl string
	consts   map[string]int64  // .equ constants and predefined symbols
	labels   map[string]uint64 // code labels
	insts    []sourceInst
	errs     ErrorList
}

// Assemble translates source into a program.
func Assemble(source string, opts ...Option) (*isa.Program, error) {
	a := &assembler{
		base:   0x1000,
		consts: make(map[string]int64),
		labels: make(map[string]uint64),
	}
	for _, opt := range opts {
		opt(a)
	}
	a.pass1(source)
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	prog := a.pass2()
	if len(a.errs) > 0 {
		return nil, a.errs
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error; for workload tables
// built at init time where the source is a compile-time constant.
func MustAssemble(source string, opts ...Option) *isa.Program {
	p, err := Assemble(source, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// pass1 tokenizes, collects labels/constants and records instructions.
func (a *assembler) pass1(source string) {
	sawInst := false
	for lineNo, raw := range strings.Split(source, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(strings.ReplaceAll(line, "\t", " "))
		if line == "" {
			continue
		}
		ln := lineNo + 1

		// Labels (possibly several, possibly followed by an instruction).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				a.errorf(ln, "invalid label %q", name)
				name = ""
			}
			if name != "" {
				if _, dup := a.labels[name]; dup {
					a.errorf(ln, "duplicate label %q", name)
				}
				a.labels[name] = a.base + uint64(len(a.insts))*isa.InstBytes
			}
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
		var operands []string
		if len(fields) == 2 {
			for _, op := range strings.Split(fields[1], ",") {
				operands = append(operands, strings.TrimSpace(op))
			}
		}

		if strings.HasPrefix(mnemonic, ".") {
			switch mnemonic {
			case ".org":
				if sawInst {
					a.errorf(ln, ".org after instructions is not supported")
					continue
				}
				if len(operands) != 1 {
					a.errorf(ln, ".org takes one operand")
					continue
				}
				v, err := strconv.ParseUint(strings.TrimPrefix(operands[0], "0x"), parseBase(operands[0]), 64)
				if err != nil {
					a.errorf(ln, ".org: bad address %q", operands[0])
					continue
				}
				a.base = v
			case ".entry":
				if len(operands) != 1 || !isIdent(operands[0]) {
					a.errorf(ln, ".entry takes one label operand")
					continue
				}
				a.entryLbl = operands[0]
			case ".equ":
				if len(operands) != 2 || !isIdent(operands[0]) {
					a.errorf(ln, ".equ takes a name and a value")
					continue
				}
				v, err := parseInt(operands[1])
				if err != nil {
					a.errorf(ln, ".equ: bad value %q", operands[1])
					continue
				}
				a.consts[operands[0]] = v
			default:
				a.errorf(ln, "unknown directive %s", mnemonic)
			}
			continue
		}

		sawInst = true
		a.insts = append(a.insts, sourceInst{line: ln, mnemonic: mnemonic, operands: operands})
	}
}

// pass2 encodes every instruction now that all labels are known.
func (a *assembler) pass2() *isa.Program {
	prog := &isa.Program{
		Base:    a.base,
		Entry:   a.base,
		Insts:   make([]isa.Inst, 0, len(a.insts)),
		Symbols: make(map[string]uint64, len(a.labels)),
	}
	for name, addr := range a.labels {
		prog.Symbols[name] = addr
	}
	if a.entryLbl != "" {
		addr, ok := a.labels[a.entryLbl]
		if !ok {
			a.errorf(0, ".entry: undefined label %q", a.entryLbl)
		} else {
			prog.Entry = addr
		}
	}
	for _, si := range a.insts {
		prog.Insts = append(prog.Insts, a.encode(si))
	}
	return prog
}

func parseBase(s string) int {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		return 16
	}
	return 10
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var regNames = func() map[string]isa.Reg {
	m := make(map[string]isa.Reg)
	for i := 0; i < isa.NumIntRegs; i++ {
		r := isa.X(i)
		m[fmt.Sprintf("x%d", i)] = r
		m[r.String()] = r
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		m[fmt.Sprintf("f%d", i)] = isa.F(i)
	}
	return m
}()

func (a *assembler) reg(si sourceInst, s string) isa.Reg {
	r, ok := regNames[strings.ToLower(s)]
	if !ok {
		a.errorf(si.line, "unknown register %q", s)
		return isa.X0
	}
	return r
}

// value resolves an integer expression: literal, constant, label, or
// sym+off / sym-off.
func (a *assembler) value(si sourceInst, s string) int64 {
	if v, err := parseInt(s); err == nil {
		return v
	}
	sym, off := s, int64(0)
	if i := strings.LastIndexAny(s[1:], "+-"); i >= 0 {
		i++ // index into s
		o, err := parseInt(s[i+1:])
		if err == nil {
			sym = s[:i]
			if s[i] == '-' {
				o = -o
			}
			off = o
		}
	}
	if v, ok := a.consts[sym]; ok {
		return v + off
	}
	if v, ok := a.labels[sym]; ok {
		return int64(v) + off
	}
	a.errorf(si.line, "undefined symbol %q", sym)
	return 0
}

// target resolves a branch/jump target to an absolute address.
func (a *assembler) target(si sourceInst, s string) uint64 {
	return uint64(a.value(si, s))
}

// memOperand parses "disp(base)" with an optional displacement.
func (a *assembler) memOperand(si sourceInst, s string) (disp int64, base isa.Reg) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errorf(si.line, "bad memory operand %q (want disp(reg))", s)
		return 0, isa.X0
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr != "" {
		disp = a.value(si, dispStr)
	}
	base = a.reg(si, strings.TrimSpace(s[open+1:len(s)-1]))
	return disp, base
}

func (a *assembler) want(si sourceInst, n int) bool {
	if len(si.operands) != n {
		a.errorf(si.line, "%s takes %d operands, got %d", si.mnemonic, n, len(si.operands))
		return false
	}
	return true
}

var rrrOps = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
	"slt": isa.OpSlt, "sltu": isa.OpSltu,
	"mul": isa.OpMul, "mulh": isa.OpMulh, "div": isa.OpDiv, "divu": isa.OpDivu,
	"rem": isa.OpRem, "remu": isa.OpRemu,
	"fadd": isa.OpFadd, "fsub": isa.OpFsub, "fmul": isa.OpFmul,
	"fdiv": isa.OpFdiv, "fmin": isa.OpFmin, "fmax": isa.OpFmax,
	"feq": isa.OpFeq, "flt": isa.OpFlt, "fle": isa.OpFle,
}

var rriOps = map[string]isa.Op{
	"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri,
	"xori": isa.OpXori, "slli": isa.OpSlli, "srli": isa.OpSrli,
	"srai": isa.OpSrai, "slti": isa.OpSlti, "sltiu": isa.OpSltiu,
}

var loadOps = map[string]isa.Op{
	"ld": isa.OpLd, "lw": isa.OpLw, "lwu": isa.OpLwu, "lh": isa.OpLh,
	"lhu": isa.OpLhu, "lb": isa.OpLb, "lbu": isa.OpLbu, "fld": isa.OpFld,
}

var storeOps = map[string]isa.Op{
	"sd": isa.OpSd, "sw": isa.OpSw, "sh": isa.OpSh, "sb": isa.OpSb,
	"fsd": isa.OpFsd,
}

var branchOps = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
	"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
}

var rrOps = map[string]isa.Op{
	"fneg": isa.OpFneg, "fabs": isa.OpFabs, "fsqrt": isa.OpFsqrt,
	"fcvt.d.l": isa.OpFcvtDL, "fcvt.l.d": isa.OpFcvtLD,
	"fmv.x.d": isa.OpFmvXD, "fmv.d.x": isa.OpFmvDX,
}

func (a *assembler) encode(si sourceInst) isa.Inst {
	none := isa.RegNone
	in := isa.Inst{Rd: none, Rs1: none, Rs2: none, Rs3: none}
	m := si.mnemonic

	if op, ok := rrrOps[m]; ok {
		if a.want(si, 3) {
			in.Op, in.Rd = op, a.reg(si, si.operands[0])
			in.Rs1, in.Rs2 = a.reg(si, si.operands[1]), a.reg(si, si.operands[2])
		}
		return in
	}
	if op, ok := rriOps[m]; ok {
		if a.want(si, 3) {
			in.Op, in.Rd, in.Rs1 = op, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
			in.Imm = a.value(si, si.operands[2])
		}
		return in
	}
	if op, ok := loadOps[m]; ok {
		if a.want(si, 2) {
			in.Op, in.Rd = op, a.reg(si, si.operands[0])
			in.Imm, in.Rs1 = a.memOperand(si, si.operands[1])
		}
		return in
	}
	if op, ok := storeOps[m]; ok {
		if a.want(si, 2) {
			in.Op, in.Rs2 = op, a.reg(si, si.operands[0])
			in.Imm, in.Rs1 = a.memOperand(si, si.operands[1])
		}
		return in
	}
	if op, ok := branchOps[m]; ok {
		if a.want(si, 3) {
			in.Op, in.Rs1, in.Rs2 = op, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
			in.Target = a.target(si, si.operands[2])
		}
		return in
	}
	if op, ok := rrOps[m]; ok {
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1 = op, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
		}
		return in
	}

	switch m {
	case "nop":
		return isa.Nop
	case "ecall":
		in.Op = isa.OpEcall
		return in
	case "lui":
		if a.want(si, 2) {
			in.Op, in.Rd = isa.OpLui, a.reg(si, si.operands[0])
			in.Imm = a.value(si, si.operands[1]) << 12
		}
		return in
	case "fmadd":
		if a.want(si, 4) {
			in.Op, in.Rd = isa.OpFmadd, a.reg(si, si.operands[0])
			in.Rs1, in.Rs2 = a.reg(si, si.operands[1]), a.reg(si, si.operands[2])
			in.Rs3 = a.reg(si, si.operands[3])
		}
		return in
	case "jal":
		if a.want(si, 2) {
			in.Op, in.Rd = isa.OpJal, a.reg(si, si.operands[0])
			in.Target = a.target(si, si.operands[1])
		}
		return in
	case "jalr":
		if a.want(si, 3) {
			in.Op, in.Rd, in.Rs1 = isa.OpJalr, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
			in.Imm = a.value(si, si.operands[2])
		}
		return in

	// --- pseudo instructions ---
	case "li", "la":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1 = isa.OpAddi, a.reg(si, si.operands[0]), isa.X0
			in.Imm = a.value(si, si.operands[1])
		}
		return in
	case "mv":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1 = isa.OpAddi, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
		}
		return in
	case "not":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1 = isa.OpXori, a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
			in.Imm = -1
		}
		return in
	case "neg":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1, in.Rs2 = isa.OpSub, a.reg(si, si.operands[0]), isa.X0, a.reg(si, si.operands[1])
		}
		return in
	case "seqz":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1, in.Imm = isa.OpSltiu, a.reg(si, si.operands[0]), a.reg(si, si.operands[1]), 1
		}
		return in
	case "snez":
		if a.want(si, 2) {
			in.Op, in.Rd, in.Rs1, in.Rs2 = isa.OpSltu, a.reg(si, si.operands[0]), isa.X0, a.reg(si, si.operands[1])
		}
		return in
	case "fmv.d":
		if a.want(si, 2) {
			r := a.reg(si, si.operands[1])
			in.Op, in.Rd, in.Rs1, in.Rs2 = isa.OpFmin, a.reg(si, si.operands[0]), r, r
		}
		return in
	case "j":
		if a.want(si, 1) {
			in.Op, in.Rd, in.Target = isa.OpJal, isa.X0, a.target(si, si.operands[0])
		}
		return in
	case "call":
		if a.want(si, 1) {
			in.Op, in.Rd, in.Target = isa.OpJal, isa.RA, a.target(si, si.operands[0])
		}
		return in
	case "jr":
		if a.want(si, 1) {
			in.Op, in.Rd, in.Rs1 = isa.OpJalr, isa.X0, a.reg(si, si.operands[0])
		}
		return in
	case "ret":
		if a.want(si, 0) {
			in.Op, in.Rd, in.Rs1 = isa.OpJalr, isa.X0, isa.RA
		}
		return in
	case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
		if a.want(si, 2) {
			r := a.reg(si, si.operands[0])
			in.Target = a.target(si, si.operands[1])
			switch m {
			case "beqz":
				in.Op, in.Rs1, in.Rs2 = isa.OpBeq, r, isa.X0
			case "bnez":
				in.Op, in.Rs1, in.Rs2 = isa.OpBne, r, isa.X0
			case "bltz":
				in.Op, in.Rs1, in.Rs2 = isa.OpBlt, r, isa.X0
			case "bgez":
				in.Op, in.Rs1, in.Rs2 = isa.OpBge, r, isa.X0
			case "bgtz":
				in.Op, in.Rs1, in.Rs2 = isa.OpBlt, isa.X0, r
			case "blez":
				in.Op, in.Rs1, in.Rs2 = isa.OpBge, isa.X0, r
			}
		}
		return in
	case "bgt", "ble", "bgtu", "bleu":
		if a.want(si, 3) {
			r1, r2 := a.reg(si, si.operands[0]), a.reg(si, si.operands[1])
			in.Target = a.target(si, si.operands[2])
			switch m {
			case "bgt":
				in.Op, in.Rs1, in.Rs2 = isa.OpBlt, r2, r1
			case "ble":
				in.Op, in.Rs1, in.Rs2 = isa.OpBge, r2, r1
			case "bgtu":
				in.Op, in.Rs1, in.Rs2 = isa.OpBltu, r2, r1
			case "bleu":
				in.Op, in.Rs1, in.Rs2 = isa.OpBgeu, r2, r1
			}
		}
		return in
	}

	a.errorf(si.line, "unknown mnemonic %q", m)
	return isa.Nop
}

// Mnemonics returns all accepted mnemonics (real and pseudo), sorted;
// used by tests and tooling.
func Mnemonics() []string {
	set := map[string]bool{
		"nop": true, "ecall": true, "lui": true, "fmadd": true,
		"jal": true, "jalr": true, "li": true, "la": true, "mv": true,
		"not": true, "neg": true, "seqz": true, "snez": true, "fmv.d": true,
		"j": true, "call": true, "jr": true, "ret": true,
		"beqz": true, "bnez": true, "bltz": true, "bgez": true,
		"bgtz": true, "blez": true, "bgt": true, "ble": true,
		"bgtu": true, "bleu": true,
	}
	for _, m := range []map[string]isa.Op{rrrOps, rriOps, loadOps, storeOps, branchOps, rrOps} {
		for k := range m {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
