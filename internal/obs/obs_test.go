package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilHandlesAreInert: the zero-cost-when-disabled contract — every
// method of every handle type must be a safe no-op on nil, so
// uninstrumented hot paths cost one nil check.
func TestNilHandlesAreInert(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned live handles")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}

	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram recorded")
	}

	var s *TraceSink
	tr := s.Track("run")
	if tr != nil {
		t.Fatal("nil sink returned a live track")
	}
	tr.Span("a", 0, 1)
	tr.Instant("b", 0)
	tr.Counter("c", 0, 1)
	if err := s.Close(); err != nil {
		t.Errorf("nil sink Close: %v", err)
	}

	var v *View
	v.FetchStall(1, 2, 3, false)
	v.Mispredict(1, 2, 3, 4, 5)
	v.Convergence(1, 2, 3)
	v.Serialize(1, 2)
	v.QueueDepth(1, 2)
	v.WPGenDone(v.WPGenStart())
	v.WatchdogSample(1, 2)
	v.WatchdogStall(1, 2, 3)
}

func TestKey(t *testing.T) {
	cases := []struct {
		name, wl, tech, want string
	}{
		{"m", "", "", "m"},
		{"m", "gap/bfs", "", "m{workload=gap/bfs}"},
		{"m", "", "conv", "m{technique=conv}"},
		{"m", "gap/bfs", "conv", "m{technique=conv,workload=gap/bfs}"},
	}
	for _, c := range cases {
		if got := Key(c.name, c.wl, c.tech); got != c.want {
			t.Errorf("Key(%q,%q,%q) = %q, want %q", c.name, c.wl, c.tech, got, c.want)
		}
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name resolved to different counters")
	}
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("g").Set(11)
	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	// Sorted by name: a, g, h.
	if snap[0].Name != "a" || snap[0].Kind != "counter" || snap[0].Value != 4 {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	if snap[1].Name != "g" || snap[1].Kind != "gauge" || snap[1].Value != 11 {
		t.Errorf("gauge snapshot = %+v", snap[1])
	}
	hs := snap[2]
	if hs.Kind != "histogram" || hs.Count != 4 || hs.Sum != 11 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	if want := 11.0 / 4; hs.Mean != want {
		t.Errorf("histogram mean = %v, want %v", hs.Mean, want)
	}
	// Buckets: v=0 → le 1; v=1 → le 2; v=5,5 → le 8.
	want := []Bucket{{Le: 1, Count: 1}, {Le: 2, Count: 1}, {Le: 8, Count: 2}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i := range want {
		if hs.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, hs.Buckets[i], want[i])
		}
	}
}

func TestWriteJSONValid(t *testing.T) {
	r := NewRegistry()
	r.Counter(Key("runs_total", "gap/bfs", "conv")).Inc()
	r.Histogram("lat").Observe(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []Metric
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(snap) != 2 {
		t.Errorf("round-tripped %d metrics, want 2", len(snap))
	}
}

// TestTraceSinkValidJSON: the sink must emit a well-formed Chrome-trace
// document with process metadata, spans, instants and counters.
func TestTraceSinkValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	tr := s.Track(`gap/bfs "conv"`) // name requiring JSON escaping
	tr.Span("mispredict", 100, 25, Arg{"pc", 0x1234}, Arg{"wp_len", 17})
	tr.Instant("convergence", 110, Arg{"dist", 4})
	tr.Counter("queue occupancy", 120, 512)
	tr2 := s.Track("gap/pr conv")
	tr2.Span("fetch-stall", 7, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata + 4 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("trace has %d events, want 6", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != 1 || phases["C"] != 1 {
		t.Errorf("phase histogram = %v", phases)
	}
	// Tracks get distinct pids; the span carries its args.
	if doc.TraceEvents[1]["pid"] == doc.TraceEvents[4]["pid"] {
		t.Error("distinct tracks share a pid")
	}
	args := doc.TraceEvents[1]["args"].(map[string]any)
	if args["pc"].(float64) != float64(0x1234) || args["wp_len"].(float64) != 17 {
		t.Errorf("span args = %v", args)
	}
	if !strings.Contains(buf.String(), `gap/bfs \"conv\"`) {
		t.Error("track name not escaped into metadata")
	}
}

// TestTraceSinkConcurrent: emits from many goroutines must interleave
// into valid JSON (the batch engine and the watchdog share one sink).
func TestTraceSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewTraceSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := s.Track("worker")
			for i := 0; i < 50; i++ {
				tr.Span("op", uint64(i), 1, Arg{"g", uint64(g)})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("concurrent trace is invalid JSON (%d bytes)", buf.Len())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}
