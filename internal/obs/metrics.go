// Package obs is the simulator's observability layer: a metrics
// registry (counters, gauges, histograms keyed by workload/technique),
// a cycle-level event-trace sink in Chrome-trace/Perfetto JSON, and the
// profiling helpers the CLIs expose behind -pprof.
//
// The layer is strictly read-only with respect to simulation state and
// zero-cost when disabled: every handle type has nil-safe methods, so
// an uninstrumented run pays one nil check per hook and produces
// bit-identical simulation output to a build without the layer. The
// wplint statpath analyzer enforces that metric handles are only
// obtained from a Registry (or a View built over one) — instrumented
// packages never declare their own counter storage, keeping the metric
// catalog in one auditable place.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds the named metrics of one process (typically shared by
// every run of a sweep; series are distinguished by label suffixes, see
// Key). A nil *Registry is a valid, fully disabled registry: its getters
// return nil handles whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Key renders a labeled series name, "name{technique=conv,workload=gap/bfs}".
// Empty labels are omitted; a name with no labels is returned verbatim.
// Label order is fixed (technique before workload) so the same series
// never splits over key spellings.
func Key(name, workload, technique string) string {
	var labels []string
	if technique != "" {
		labels = append(labels, "technique="+technique)
	}
	if workload != "" {
		labels = append(labels, "workload="+workload)
	}
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Counter returns the named monotonic counter, creating it on first
// use. Nil registry → nil handle (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named last-value gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named power-of-two-bucket histogram, creating
// it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64. The zero value is
// ready; a nil *Counter is a valid disabled handle.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement.
type Gauge struct {
	v atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last recorded value (0 for a nil handle).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0
// and bucket i ≥ 1 holds 2^(i-1) ≤ v < 2^i.
const histBuckets = 65

// Histogram is a fixed power-of-two-bucket histogram over uint64
// observations (queue depths, latencies in nanoseconds, peek indices).
// It is lock-free and safe for concurrent observation.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for a nil handle).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations with value < Le (and ≥ the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Metric is one serialized registry entry.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter", "gauge" or "histogram"
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Mean    float64  `json:"mean,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every metric sorted by name — a deterministic
// rendering for reports and tests. Concurrent observers may race
// individual atomic reads; within one metric each field is coherent.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		out = append(out, Metric{Name: name, Kind: "counter", Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		m := Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				le := uint64(1) << uint(i) // exclusive upper bound: bits.Len64(v) == i → v < 2^i
				if i == 0 {
					le = 1
				}
				m.Buckets = append(m.Buckets, Bucket{Le: le, Count: n})
			}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sortedKeys returns a map's keys in sorted order, the deterministic
// iteration idiom the wplint determinism analyzer requires.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for name := range m {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as indented JSON (the -metrics-out
// format of the CLIs).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Metric{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling metrics: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
