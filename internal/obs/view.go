package obs

import "time"

// View bundles one run's live instrumentation: the registry series the
// run publishes into (pre-resolved so the hot path never takes the
// registry lock) and the run's trace track. A nil *View disables every
// hook at the cost of one nil check — the wiring contract that keeps a
// disabled run bit-identical to an uninstrumented build.
//
// Views carry *sampling* instrumentation only (distributions, spans,
// watchdog ticks). Run-level aggregate counters — wrong-path generation
// counts, instructions, degradations — are published by the sim layer
// once per *accepted* result, so a sweep's totals count every cell
// exactly once no matter how many degraded-ladder attempts ran.
type View struct {
	Workload  string
	Technique string

	// Queue is the decoupling-queue hook bundle (handles may be nil
	// when only tracing is enabled).
	Queue QueueObs

	track        *Track
	wpGenNS      *Histogram
	wdSamples    *Counter
	wdStalls     *Counter
	ckptWrites   *Counter
	ckptRestores *Counter
}

// QueueObs is the decoupling queue's hook bundle; internal/queue holds
// a pointer to one (nil when uninstrumented).
type QueueObs struct {
	// Occupancy samples the buffered-entry count on every Pop.
	Occupancy *Histogram
	// PeekDepth samples the requested lookahead index of every Peek.
	PeekDepth *Histogram
	// PeekMiss counts Peeks answered false (program end or clip).
	PeekMiss *Counter
	// PeekClipped counts Peeks refused at the capacity ceiling while
	// the producer still had instructions — the silent-truncation case
	// the queue otherwise grows past.
	PeekClipped *Counter
	// Grows counts ring-buffer growths triggered by deep Peeks.
	Grows *Counter
}

// Enabled reports whether any hook in the bundle is live. Trace-only
// runs resolve their View against a nil registry, which leaves every
// queue handle nil — attaching such a bundle would cost a nil-receiver
// dispatch per queue operation for no data, so the core checks Enabled
// before wiring the bundle and passes nil through otherwise.
func (o *QueueObs) Enabled() bool {
	return o != nil && (o.Occupancy != nil || o.PeekDepth != nil ||
		o.PeekMiss != nil || o.PeekClipped != nil || o.Grows != nil)
}

// NewView resolves one run's handles. reg and sink may each be nil
// independently; if both are nil the caller should keep a nil *View
// instead so hot-path hooks reduce to one nil check.
func NewView(reg *Registry, sink *TraceSink, workload, technique string) *View {
	v := &View{
		Workload:     workload,
		Technique:    technique,
		track:        sink.Track(Key("run", workload, technique)),
		wpGenNS:      reg.Histogram(Key("wrongpath_gen_latency_ns", workload, technique)),
		wdSamples:    reg.Counter(Key("watchdog_samples_total", workload, technique)),
		wdStalls:     reg.Counter(Key("watchdog_stalls_total", workload, technique)),
		ckptWrites:   reg.Counter(Key("checkpoint_writes_total", workload, technique)),
		ckptRestores: reg.Counter(Key("checkpoint_restores_total", workload, technique)),
	}
	v.Queue = QueueObs{
		Occupancy:   reg.Histogram(Key("queue_occupancy", workload, technique)),
		PeekDepth:   reg.Histogram(Key("queue_peek_depth", workload, technique)),
		PeekMiss:    reg.Counter(Key("queue_peek_miss_total", workload, technique)),
		PeekClipped: reg.Counter(Key("queue_peek_clipped_total", workload, technique)),
		Grows:       reg.Counter(Key("queue_grow_total", workload, technique)),
	}
	return v
}

// --- core-side hooks (cycle timestamps) ---

// FetchStall records a front-end stall on an instruction-cache miss:
// dur cycles beyond the hidden hit latency, starting at cycle ts.
// wrongPath tags stalls charged while fetching down a wrong path, so
// speculative fetch activity never masquerades as correct-path timing
// in the trace (the wpflow analyzer counts this tagged publish among
// the approved wrong-path crossing points).
func (v *View) FetchStall(pc, ts, dur uint64, wrongPath bool) {
	if v == nil {
		return
	}
	wp := uint64(0)
	if wrongPath {
		wp = 1
	}
	v.track.Span("fetch-stall", ts, dur, Arg{"pc", pc}, Arg{"wrong_path", wp})
}

// Mispredict records one misprediction's speculation window: the span
// from wrong-path fetch start to branch resolution, with the length of
// the generated wrong path and how much of it was fetched.
func (v *View) Mispredict(pc, ts, dur uint64, wpLen, wpFetched int) {
	if v == nil {
		return
	}
	v.track.Span("mispredict", ts, dur,
		Arg{"pc", pc}, Arg{"wp_len", uint64(wpLen)}, Arg{"wp_fetched", uint64(wpFetched)})
}

// Convergence records a detected wrong-path/correct-path convergence at
// cycle ts, dist instructions down the wrong path.
func (v *View) Convergence(pc, ts, dist uint64) {
	if v == nil {
		return
	}
	v.track.Instant("convergence", ts, Arg{"pc", pc}, Arg{"dist", dist})
}

// Serialize records a pipeline drain for an environment call.
func (v *View) Serialize(pc, ts uint64) {
	if v == nil {
		return
	}
	v.track.Instant("serialize", ts, Arg{"pc", pc})
}

// QueueDepth samples the decoupling queue's occupancy counter series at
// cycle ts.
func (v *View) QueueDepth(ts uint64, occupancy int) {
	if v == nil {
		return
	}
	v.track.Counter("queue occupancy", ts, uint64(occupancy))
}

// --- wrong-path generation latency (host time, never fed back into
// simulation) ---

// WPGenStart begins a wrong-path generation latency measurement.
func (v *View) WPGenStart() time.Time {
	if v == nil {
		return time.Time{}
	}
	return now()
}

// WPGenDone completes a measurement started by WPGenStart.
func (v *View) WPGenDone(start time.Time) {
	if v == nil {
		return
	}
	v.wpGenNS.Observe(uint64(now().Sub(start).Nanoseconds()))
}

// now is the observability layer's single wall-clock read: it feeds
// latency histograms only, never simulated state, so disabled-path
// output stays bit-identical.
func now() time.Time {
	return time.Now() //wplint:allow determinism -- observability-only latency probe; never influences simulated state
}

// --- watchdog hooks (called from the watchdog goroutine) ---

// WatchdogSample records one liveness sample: the producer/consumer
// progress counters at the sample. The trace timestamp is the consumer
// position (cycles are not visible to the watchdog goroutine), keeping
// samples ordered along the run.
func (v *View) WatchdogSample(produced, popped uint64) {
	if v == nil {
		return
	}
	v.wdSamples.Inc()
	v.track.Instant("watchdog-sample", popped, Arg{"produced", produced}, Arg{"popped", popped})
}

// --- checkpoint hooks (called from the simulation goroutine at lane
// boundaries) ---

// CheckpointWrite records one snapshot written at the given retired
// instruction count, with its serialized size. The trace timestamp is
// the instruction count: snapshots sit on a fixed instruction grid, so
// instants line up across techniques and across kill/resume chains.
func (v *View) CheckpointWrite(insts, bytes uint64) {
	if v == nil {
		return
	}
	v.ckptWrites.Inc()
	v.track.Instant("checkpoint-write", insts, Arg{"insts", insts}, Arg{"bytes", bytes})
}

// CheckpointRestore records a session state overwrite from a snapshot
// taken at the given retired instruction count.
func (v *View) CheckpointRestore(insts uint64) {
	if v == nil {
		return
	}
	v.ckptRestores.Inc()
	v.track.Instant("checkpoint-restore", insts, Arg{"insts", insts})
}

// WatchdogStall records a fired stall verdict.
func (v *View) WatchdogStall(pc, produced, popped uint64) {
	if v == nil {
		return
	}
	v.wdStalls.Inc()
	v.track.Instant("watchdog-stall", popped,
		Arg{"pc", pc}, Arg{"produced", produced}, Arg{"popped", popped})
}
