package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// TraceSink serializes cycle-level simulation events into the Chrome
// trace event format (the JSON Perfetto and chrome://tracing load).
// Each simulation run registers a Track — rendered as one "process"
// named after the run's workload/technique — and emits spans, instants
// and counter series onto it with simulated cycles as timestamps (the
// viewer's "µs" unit reads as cycles).
//
// A nil *TraceSink is a valid disabled sink: Track returns a nil
// *Track, whose emit methods are no-ops. The sink is safe for
// concurrent use from batch workers and the watchdog goroutine.
type TraceSink struct {
	mu     sync.Mutex
	w      io.Writer
	events int
	tracks int64
	err    error
}

// NewTraceSink starts a trace stream on w. Close must be called to
// terminate the JSON document.
func NewTraceSink(w io.Writer) *TraceSink {
	t := &TraceSink{w: w}
	t.write(`{"displayTimeUnit":"ns","traceEvents":[`)
	return t
}

// write appends raw JSON text; callers hold mu (or are the constructor).
func (t *TraceSink) write(s string) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, s)
}

// event emits one pre-rendered event object, managing commas.
func (t *TraceSink) event(body string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.events > 0 {
		t.write(",\n")
	}
	t.events++
	t.write(body)
}

// Close terminates the JSON document and returns the first write error.
func (t *TraceSink) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.write("]}\n")
	return t.err
}

// Err returns the first write error (nil for a nil sink).
func (t *TraceSink) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Track registers one run's event track, shown as a process with the
// given name. Nil sink → nil track (all emits no-ops).
func (t *TraceSink) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.tracks++
	pid := t.tracks
	t.mu.Unlock()
	t.event(fmt.Sprintf(
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
		pid, strconv.Quote(name)))
	return &Track{sink: t, pid: pid}
}

// Track is one run's lane in the trace. The zero tid is used for every
// event: a run is single-threaded from the viewer's perspective (the
// watchdog samples land on the same lane as instants).
type Track struct {
	sink *TraceSink
	pid  int64
}

// Arg is one numeric event argument (PCs render in decimal; the viewer
// shows them raw).
type Arg struct {
	Key string
	Val uint64
}

func renderArgs(args []Arg) string {
	if len(args) == 0 {
		return "{}"
	}
	s := "{"
	for i, a := range args {
		if i > 0 {
			s += ","
		}
		s += strconv.Quote(a.Key) + ":" + strconv.FormatUint(a.Val, 10)
	}
	return s + "}"
}

// Span emits a complete-duration event: [ts, ts+dur) in cycles.
func (tr *Track) Span(name string, ts, dur uint64, args ...Arg) {
	if tr == nil {
		return
	}
	tr.sink.event(fmt.Sprintf(
		`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":0,"args":%s}`,
		strconv.Quote(name), ts, dur, tr.pid, renderArgs(args)))
}

// Instant emits a point event at cycle ts.
func (tr *Track) Instant(name string, ts uint64, args ...Arg) {
	if tr == nil {
		return
	}
	tr.sink.event(fmt.Sprintf(
		`{"name":%s,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":0,"args":%s}`,
		strconv.Quote(name), ts, tr.pid, renderArgs(args)))
}

// Counter emits one sample of a counter series (rendered as a filled
// area chart in the viewer).
func (tr *Track) Counter(name string, ts, value uint64) {
	if tr == nil {
		return
	}
	tr.sink.event(fmt.Sprintf(
		`{"name":%s,"ph":"C","ts":%d,"pid":%d,"tid":0,"args":{"value":%d}}`,
		strconv.Quote(name), ts, tr.pid, value))
}
