package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// stop function (flushes and closes the file). It backs the CLIs'
// -pprof flag; the profile is host-side observability and never touches
// simulated state.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: creating profile %s: %w", path, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: starting CPU profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
