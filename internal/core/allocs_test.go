package core_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/wrongpath"
)

// lcgLoop is a long mispredict-heavy loop: the LCG-driven branch keeps
// the convergence policy (reconstruction, windowed scans, RAS
// snapshots) on its hot path rather than letting the predictor learn
// the program away.
const lcgLoop = `
    li   t0, 2000000
    li   t1, 12345
    li   t2, 1103515245
loop:
    mul  t1, t1, t2
    addi t1, t1, 12345
    srli t3, t1, 16
    andi t3, t3, 1
    beqz t3, skip
    addi t4, t4, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 0
    li a0, 0
    ecall
`

// TestRunSteadyStateAllocs pins the whole-pipeline steady state —
// functional step, frontend, queue lanes, code-cache hits, convergence
// reconstruction — at zero allocations per instruction. Run uses an
// absolute instruction threshold, so repeated calls with a growing cap
// continue the same simulation; everything that allocates (ring
// sizing, code-cache pages, policy scratch) must settle during the
// warmup call.
func TestRunSteadyStateAllocs(t *testing.T) {
	for _, kind := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv} {
		t.Run(kind.String(), func(t *testing.T) {
			prog, err := asm.Assemble(lcgLoop)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cpu := functional.New(prog, mem.New(), 0x7000_0000)
			fe := frontend.New(cpu)
			q, err := queue.New(fe, 2*cfg.ROBSize+cfg.FrontendBuffer+64)
			if err != nil {
				t.Fatal(err)
			}
			c, err := core.New(cfg, q, wrongpath.New(kind))
			if err != nil {
				t.Fatal(err)
			}
			total := uint64(200_000)
			c.Run(total) // settle caches, ring size, and policy scratch
			avg := testing.AllocsPerRun(40, func() {
				total += 2_000
				c.Run(total)
			})
			if avg != 0 {
				t.Errorf("%v steady state allocates %.2f per 2000-instruction slice, want 0", kind, avg)
			}
			if st := c.Stats(); st.Instructions < total-2_000 {
				t.Fatalf("simulation ended early at %d instructions (loop too short for the gate)", st.Instructions)
			}
		})
	}
}
