package core

import "testing"

// TestStatsZeroDenominators audits the core-level ratio helpers against
// their zero-denominator cases: an empty (or truncated-to-nothing) run
// must report clean zeros, never NaN/Inf.
func TestStatsZeroDenominators(t *testing.T) {
	cases := []struct {
		name  string
		stats Stats
		fn    func(Stats) float64
		want  float64
	}{
		{"IPC/empty", Stats{}, Stats.IPC, 0},
		{"IPC/insts-without-cycles", Stats{Instructions: 100}, Stats.IPC, 0},
		{"MPKI/empty", Stats{}, Stats.MPKI, 0},
		{"MPKI/mispredicts-without-insts", Stats{Mispredicts: 5}, Stats.MPKI, 0},
		{"WPFraction/empty", Stats{}, Stats.WPFraction, 0},
		{"WPFraction/wp-without-insts", Stats{WPExecuted: 9}, Stats.WPFraction, 0},
		{"IPC/normal", Stats{Instructions: 200, Cycles: 100}, Stats.IPC, 2},
		{"MPKI/normal", Stats{Instructions: 1000, Mispredicts: 7}, Stats.MPKI, 7},
		{"WPFraction/normal", Stats{Instructions: 100, WPExecuted: 25}, Stats.WPFraction, 0.25},
	}
	for _, c := range cases {
		if got := c.fn(c.stats); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}
