package core_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/wrongpath"
)

// testConfig returns a configuration with enormous caches so that
// microarchitectural assertions are not perturbed by capacity misses.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Hierarchy = cache.HierarchyConfig{
		L1I:              cache.Config{Name: "L1I", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, HitLatency: 1},
		L1D:              cache.Config{Name: "L1D", SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, HitLatency: 5},
		L2:               cache.Config{Name: "L2", SizeBytes: 4 << 20, Ways: 8, LineBytes: 64, HitLatency: 15},
		LLC:              cache.Config{Name: "LLC", SizeBytes: 16 << 20, Ways: 16, LineBytes: 64, HitLatency: 45},
		MemLatency:       230,
		NextLinePrefetch: true,
	}
	return cfg
}

// simulate assembles and runs src through the full core model.
func simulate(t *testing.T, cfg core.Config, kind wrongpath.Kind, src string, setup func(*mem.Memory)) (*core.Core, core.Stats) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if setup != nil {
		setup(m)
	}
	cpu := functional.New(prog, m, 0x7000_0000)
	var opts []frontend.Option
	if kind == wrongpath.WPEmul {
		opts = append(opts, frontend.WithWrongPathEmulation(cfg.BranchPred, cfg.WPMaxLen()))
	}
	fe := frontend.New(cpu, opts...)
	q, err := queue.New(fe, 2*cfg.ROBSize+cfg.FrontendBuffer+64)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.New(cfg, q, wrongpath.New(kind))
	if err != nil {
		t.Fatal(err)
	}
	stats := c.Run(0)
	if fe.Err() != nil {
		t.Fatalf("functional error: %v", fe.Err())
	}
	return c, stats
}

// repeat generates n copies of a line.
func repeat(line string, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestIndependentALUThroughput(t *testing.T) {
	// A hot loop of independent single-cycle instructions on distinct
	// registers: IPC should be limited by the 4 ALU ports (not fetch
	// width 6). A loop is used so the I-cache warms up.
	src := "li s1, 1000\nloop:\n" +
		repeat("addi t0, zero, 1\naddi t1, zero, 2\naddi t2, zero, 3\naddi t3, zero, 4", 16) +
		"addi s1, s1, -1\nbnez s1, loop\nli a7, 0\nli a0, 0\necall\n"
	_, stats := simulate(t, testConfig(), wrongpath.NoWP, src, nil)
	ipc := stats.IPC()
	if ipc < 3.0 || ipc > 4.5 {
		t.Errorf("independent ALU IPC = %.2f, want ~4 (ALU-port bound)", ipc)
	}
}

func TestDependenceChainLatency(t *testing.T) {
	// A hot loop whose body is a serial addi chain: roughly one
	// instruction per cycle once the I-cache is warm.
	src := "li s1, 1000\nloop:\n" + repeat("addi t0, t0, 1", 64) +
		"addi s1, s1, -1\nbnez s1, loop\nli a7, 0\nli a0, 0\necall\n"
	_, stats := simulate(t, testConfig(), wrongpath.NoWP, src, nil)
	ipc := stats.IPC()
	if ipc < 0.85 || ipc > 1.15 {
		t.Errorf("serial chain IPC = %.2f, want ~1", ipc)
	}
}

func TestUnpipelinedDivider(t *testing.T) {
	// Independent divides: a single unpipelined 20-cycle divider caps
	// throughput at ~1/20 IPC for pure divide streams.
	src := "li t1, 7\nli t2, 3\nli s1, 50\nloop:\n" + repeat("div t3, t1, t2", 20) +
		"addi s1, s1, -1\nbnez s1, loop\nli a7, 0\nli a0, 0\necall\n"
	_, stats := simulate(t, testConfig(), wrongpath.NoWP, src, nil)
	ipc := stats.IPC()
	if ipc < 0.04 || ipc > 0.07 {
		t.Errorf("divide-stream IPC = %.3f, want ~0.05", ipc)
	}
}

func TestLoadMissLatencyDominates(t *testing.T) {
	// A pointer chase through cold memory: every load is a serial full
	// miss, so cycles per load approach L1+LLC+memory.
	const n = 200
	src := "li t0, 0\n" + repeat("ld t0, 0(t0)", n) + "li a7, 0\nli a0, 0\necall\n"
	setup := func(m *mem.Memory) {
		// next[i] at 8-byte cells, stride 1 MB to avoid any prefetch/
		// locality: chase 0 -> 1MB -> 2MB -> ...
		addr := uint64(0)
		for i := 0; i < n+1; i++ {
			next := addr + 1<<20
			m.WriteUint64(addr, next)
			addr = next
		}
	}
	cfg := testConfig()
	_, stats := simulate(t, cfg, wrongpath.NoWP, src, setup)
	perLoad := float64(stats.Cycles) / n
	full := float64(cfg.Hierarchy.L1D.HitLatency + cfg.Hierarchy.LLC.HitLatency + cfg.Hierarchy.MemLatency)
	if perLoad < full*0.9 || perLoad > full*1.3 {
		t.Errorf("cycles per chased load = %.1f, want ~%.0f", perLoad, full)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	// A loop whose backward branch is perfectly predictable after
	// warmup vs a data-dependent 50/50 branch pattern: the latter burns
	// pipeline refill time.
	predictable := `
    li   t0, 2000
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 0
    li a0, 0
    ecall
`
	_, pStats := simulate(t, testConfig(), wrongpath.NoWP, predictable, nil)
	if rate := float64(pStats.CondMispredicted) / float64(pStats.CondBranches); rate > 0.05 {
		t.Errorf("loop branch mispredict rate = %.2f", rate)
	}

	// LCG-driven branch: effectively random directions.
	random := `
    li   t0, 2000
    li   t1, 12345
    li   t2, 1103515245
loop:
    mul  t1, t1, t2
    addi t1, t1, 12345
    srli t3, t1, 16
    andi t3, t3, 1
    beqz t3, skip
    nop
skip:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 0
    li a0, 0
    ecall
`
	_, rStats := simulate(t, testConfig(), wrongpath.NoWP, random, nil)
	rate := float64(rStats.CondMispredicted) / float64(rStats.CondBranches)
	if rate < 0.15 {
		t.Errorf("random branch mispredict rate = %.2f, want >= 0.15", rate)
	}
	if rStats.IPC() >= pStats.IPC() {
		t.Errorf("random-branch IPC %.2f not below predictable-branch IPC %.2f",
			rStats.IPC(), pStats.IPC())
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent cold loads separated by ROB-filling filler: with a
	// tiny ROB the misses serialize; with a large ROB they overlap.
	src := "li s0, 0x100000\n"
	for i := 0; i < 64; i++ {
		src += "ld t1, " + itoa(int64(i)*1<<20) + "(s0)\n"
		src += repeat("addi t2, t2, 1", 20)
	}
	src += "li a7, 0\nli a0, 0\necall\n"

	small := testConfig()
	small.ROBSize = 16
	_, sStats := simulate(t, small, wrongpath.NoWP, src, nil)

	big := testConfig()
	big.ROBSize = 512
	_, bStats := simulate(t, big, wrongpath.NoWP, src, nil)

	if bStats.Cycles >= sStats.Cycles {
		t.Errorf("large ROB (%d cycles) not faster than small ROB (%d cycles)",
			bStats.Cycles, sStats.Cycles)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	s := ""
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	if neg {
		s = "-" + s
	}
	return s
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately followed by a load of the same address: the
	// load must not pay a cold-miss latency.
	src := "li s0, 0x500000\nli t0, 42\n" +
		repeat("sd t0, 0(s0)\nld t1, 0(s0)\naddi s0, s0, 1048576", 100) +
		"li a7, 0\nli a0, 0\necall\n"
	_, stats := simulate(t, testConfig(), wrongpath.NoWP, src, nil)
	if stats.LoadForwards < 90 {
		t.Errorf("forwards = %d, want ~100", stats.LoadForwards)
	}
}

func TestWrongPathOnlyAfterMispredict(t *testing.T) {
	// Straight-line code has no mispredicts, so no technique fetches a
	// wrong path.
	src := repeat("addi t0, t0, 1", 500) + "li a7, 0\nli a0, 0\necall\n"
	for _, k := range []wrongpath.Kind{wrongpath.InstRec, wrongpath.Conv, wrongpath.WPEmul} {
		_, stats := simulate(t, testConfig(), k, src, nil)
		if stats.WPFetched != 0 {
			t.Errorf("%v fetched %d wrong-path instructions on straight-line code", k, stats.WPFetched)
		}
	}
}

func TestSyscallSerializes(t *testing.T) {
	src := repeat("li a0, 65\nli a7, 2\necall", 50) + "li a7, 0\nli a0, 0\necall\n"
	_, stats := simulate(t, testConfig(), wrongpath.NoWP, src, nil)
	if stats.Serializations != 51 {
		t.Errorf("serializations = %d, want 51", stats.Serializations)
	}
	// Serialization makes the code slow: well under 1 IPC.
	if stats.IPC() > 0.5 {
		t.Errorf("syscall-heavy IPC = %.2f, expected < 0.5", stats.IPC())
	}
}

func TestConfigValidate(t *testing.T) {
	good := core.DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := core.DefaultConfig()
	bad.FetchWidth = 0
	if bad.Validate() == nil {
		t.Error("zero fetch width validated")
	}
	bad = core.DefaultConfig()
	bad.ROBSize = -1
	if bad.Validate() == nil {
		t.Error("negative ROB validated")
	}
	bad = core.DefaultConfig()
	delete(bad.FUs, isa.ClassDiv)
	if bad.Validate() == nil {
		t.Error("missing FU validated")
	}
	bad = core.DefaultConfig()
	bad.StoreQueueSize = 0
	if bad.Validate() == nil {
		t.Error("zero store queue validated")
	}
}

func TestWPMaxLen(t *testing.T) {
	cfg := core.DefaultConfig()
	if got := cfg.WPMaxLen(); got != cfg.ROBSize+cfg.FrontendBuffer {
		t.Errorf("WPMaxLen = %d", got)
	}
}

func TestStatsDerived(t *testing.T) {
	s := core.Stats{Instructions: 1000, Cycles: 2000, Mispredicts: 10, WPExecuted: 500}
	if s.IPC() != 0.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if s.MPKI() != 10 {
		t.Errorf("MPKI = %f", s.MPKI())
	}
	if s.WPFraction() != 0.5 {
		t.Errorf("WPFraction = %f", s.WPFraction())
	}
	var zero core.Stats
	if zero.IPC() != 0 || zero.MPKI() != 0 || zero.WPFraction() != 0 {
		t.Error("zero stats not zero")
	}
}
