package core

import (
	"fmt"

	"repro/internal/checkpoint"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the core's persistent timing state at a lane
// boundary: fetch/dispatch/commit clocks and rings, issue-port and
// functional-unit availability, register-ready times, the store queue,
// the statistics, and the delegated predictor, hierarchy and code-cache
// state. The lane buffer, the wrong-path scratch (wpRing/dispSnapshot)
// and the observability view are deliberately absent — at a lane
// boundary the lane is empty, and the wrong-path scratch is written
// before it is read within every single simulateWrongPath call.
func (c *Core) SaveState(w *checkpoint.Writer) {
	w.Section("core/Core", snapshotVersion)
	w.Uint64(c.fetchCycle)
	w.Int(c.fetchedInCycle)
	w.Uint64(c.curFetchLine)
	w.Uint64(c.lastDispatch)
	w.Uint64s(c.dispRing)
	w.Int(c.dispIdx)
	w.Uint64s(c.robRing)
	w.Int(c.robIdx)
	w.Uint64(c.lastCommit)
	w.Uint64s(c.commitRing)
	w.Int(c.commitIdx)
	w.Uint64s(c.issuePorts)
	for cl := range c.fuFree {
		w.Uint64s(c.fuFree[cl])
	}
	for i := range c.regReady {
		w.Uint64(c.regReady[i])
	}
	w.Uint64(uint64(len(c.storeQ)))
	for i := range c.storeQ {
		e := &c.storeQ[i]
		w.Uint64(e.addr)
		w.Int(e.size)
		w.Uint64(e.done)
	}
	w.Int(c.sqIdx)
	w.Int(c.sqLive)
	c.stats.SaveState(w)
	c.bp.SaveState(w)
	c.hier.SaveState(w)
	c.code.SaveState(w)
}

// RestoreState overwrites the core's state with the snapshot. The
// receiver must be built (New) under the same configuration; every
// configuration-sized structure is length-validated during decode.
func (c *Core) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("core/Core", snapshotVersion); err != nil {
		return err
	}
	c.fetchCycle = r.Uint64()
	c.fetchedInCycle = r.Int()
	c.curFetchLine = r.Uint64()
	c.lastDispatch = r.Uint64()
	r.Uint64sInto(c.dispRing)
	c.dispIdx = r.Int()
	r.Uint64sInto(c.robRing)
	c.robIdx = r.Int()
	c.lastCommit = r.Uint64()
	r.Uint64sInto(c.commitRing)
	c.commitIdx = r.Int()
	r.Uint64sInto(c.issuePorts)
	for cl := range c.fuFree {
		r.Uint64sInto(c.fuFree[cl])
	}
	for i := range c.regReady {
		c.regReady[i] = r.Uint64()
	}
	nsq := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if nsq != uint64(len(c.storeQ)) {
		return fmt.Errorf("core: snapshot store queue holds %d entries, want %d", nsq, len(c.storeQ))
	}
	for i := range c.storeQ {
		e := &c.storeQ[i]
		e.addr = r.Uint64()
		e.size = r.Int()
		e.done = r.Uint64()
	}
	c.sqIdx = r.Int()
	c.sqLive = r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if err := c.stats.RestoreState(r); err != nil {
		return err
	}
	if err := c.bp.RestoreState(r); err != nil {
		return err
	}
	if err := c.hier.RestoreState(r); err != nil {
		return err
	}
	return c.code.RestoreState(r)
}

// SaveState serializes the core counters.
func (s *Stats) SaveState(w *checkpoint.Writer) {
	w.Section("core/Stats", snapshotVersion)
	w.Uint64(s.Instructions)
	w.Uint64(s.Cycles)
	w.Uint64(s.CondBranches)
	w.Uint64(s.CondMispredicted)
	w.Uint64(s.IndirectJumps)
	w.Uint64(s.IndirectMispredicted)
	w.Uint64(s.Returns)
	w.Uint64(s.ReturnMispredicted)
	w.Uint64(s.Mispredicts)
	w.Uint64(s.WPFetched)
	w.Uint64(s.WPExecuted)
	w.Uint64(s.WPLoads)
	w.Uint64(s.WPLoadsWithAddr)
	w.Uint64(s.LoadForwards)
	w.Uint64(s.Serializations)
}

// RestoreState overwrites the counters with the snapshot.
func (s *Stats) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("core/Stats", snapshotVersion); err != nil {
		return err
	}
	s.Instructions = r.Uint64()
	s.Cycles = r.Uint64()
	s.CondBranches = r.Uint64()
	s.CondMispredicted = r.Uint64()
	s.IndirectJumps = r.Uint64()
	s.IndirectMispredicted = r.Uint64()
	s.Returns = r.Uint64()
	s.ReturnMispredicted = r.Uint64()
	s.Mispredicts = r.Uint64()
	s.WPFetched = r.Uint64()
	s.WPExecuted = r.Uint64()
	s.WPLoads = r.Uint64()
	s.WPLoadsWithAddr = r.Uint64()
	s.LoadForwards = r.Uint64()
	s.Serializations = r.Uint64()
	return r.Err()
}
