// Package core implements the performance simulator's out-of-order core
// timing model in the mechanistic, instruction-window-centric tradition
// of Sniper (the simulator the paper builds on): every dynamic
// instruction is pushed through fetch, dispatch, dependence-based issue,
// execution on a functional unit (loads through the cache hierarchy)
// and in-order commit, with explicit cycle accounting for the front-end
// width, I-cache, branch prediction, ROB occupancy, issue width, FU
// ports and commit width.
//
// On a branch misprediction the core either halts fetch until the
// branch resolves (no wrong-path modeling) or obtains a wrong-path
// instruction stream from the configured wrongpath.Policy and simulates
// it through the same pipeline — wrong-path instructions access the
// I-cache, occupy the speculative window and, when their addresses are
// known, access the data-cache hierarchy, perturbing its state exactly
// as the paper studies.
package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
)

// FUConfig describes the functional units available for one instruction
// class.
type FUConfig struct {
	// Count is the number of units (ports).
	Count int
	// Latency is the execution latency in cycles (loads use the cache
	// hierarchy instead).
	Latency int
	// Pipelined units accept a new operation every cycle; unpipelined
	// units (dividers) are busy for the full latency.
	Pipelined bool
}

// Config parameterizes the core model.
type Config struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// DispatchWidth is the maximum instructions renamed/dispatched into
	// the ROB per cycle.
	DispatchWidth int
	// IssueWidth is the maximum instructions issued to execution per
	// cycle.
	IssueWidth int
	// CommitWidth is the maximum instructions retired per cycle.
	CommitWidth int

	// ROBSize is the reorder-buffer capacity.
	ROBSize int
	// FrontendBuffer is the extra speculative-window allowance beyond
	// the ROB ("one reorder buffer size worth of instructions plus the
	// frontend pipeline buffers", §III-B).
	FrontendBuffer int
	// FetchToDispatch is the front-end pipeline depth in cycles.
	FetchToDispatch int
	// RedirectPenalty is the extra delay, after a mispredicted branch
	// resolves, before fetch restarts on the correct path (squash and
	// rename-state restore).
	RedirectPenalty int

	// StoreQueueSize bounds the store-to-load forwarding window.
	StoreQueueSize int

	// Batch is the decoupling-queue lane size: how many queued records
	// the core pops per PopBatch call. 0 selects DefaultBatch; 1
	// reproduces per-instruction consumption. The simulated results are
	// bit-identical at every size (the queue's refill discipline pulls
	// exactly as a per-record consumer would); only host throughput
	// changes. Negative is invalid.
	Batch int

	// FUs maps instruction classes to functional units. Jump classes
	// fall back to the branch unit; loads/stores use their ports with
	// latency from the memory hierarchy.
	FUs map[isa.Class]FUConfig

	// BranchPred configures the branch prediction unit.
	BranchPred branch.Config
	// Hierarchy configures the cache hierarchy.
	Hierarchy cache.HierarchyConfig
}

// DefaultConfig returns the Golden Cove (Alder Lake P-core)-like
// configuration used throughout the experiments, mirroring the paper's
// Table I scale: a 512-entry ROB, 6-wide front end, deep speculation,
// and a downscaled per-core LLC slice.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      6,
		DispatchWidth:   6,
		IssueWidth:      8,
		CommitWidth:     8,
		ROBSize:         512,
		FrontendBuffer:  64,
		FetchToDispatch: 10,
		RedirectPenalty: 5,
		StoreQueueSize:  56,
		FUs: map[isa.Class]FUConfig{
			isa.ClassALU:    {Count: 4, Latency: 1, Pipelined: true},
			isa.ClassMul:    {Count: 1, Latency: 3, Pipelined: true},
			isa.ClassDiv:    {Count: 1, Latency: 20, Pipelined: false},
			isa.ClassFPAdd:  {Count: 2, Latency: 3, Pipelined: true},
			isa.ClassFPMul:  {Count: 2, Latency: 4, Pipelined: true},
			isa.ClassFPDiv:  {Count: 1, Latency: 15, Pipelined: false},
			isa.ClassLoad:   {Count: 3, Latency: 0, Pipelined: true},
			isa.ClassStore:  {Count: 2, Latency: 1, Pipelined: true},
			isa.ClassBranch: {Count: 2, Latency: 1, Pipelined: true},
		},
		BranchPred: branch.DefaultConfig(),
		Hierarchy:  cache.DefaultHierarchyConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("core: non-positive pipeline width")
	case c.ROBSize <= 0:
		return fmt.Errorf("core: non-positive ROB size")
	case c.FrontendBuffer < 0 || c.FetchToDispatch < 0 || c.RedirectPenalty < 0:
		return fmt.Errorf("core: negative pipeline depth/penalty")
	case c.StoreQueueSize <= 0:
		return fmt.Errorf("core: non-positive store queue size")
	case c.Batch < 0:
		return fmt.Errorf("core: negative batch lane size")
	}
	for _, cl := range []isa.Class{
		isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassFPAdd,
		isa.ClassFPMul, isa.ClassFPDiv, isa.ClassLoad, isa.ClassStore,
		isa.ClassBranch,
	} {
		fu, ok := c.FUs[cl]
		if !ok {
			return fmt.Errorf("core: missing functional unit for class %v", cl)
		}
		if fu.Count <= 0 || fu.Latency < 0 {
			return fmt.Errorf("core: bad functional unit for class %v", cl)
		}
	}
	if err := c.Hierarchy.L1I.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L1D.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.L2.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.LLC.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.ITLB.Validate(); err != nil {
		return err
	}
	if err := c.Hierarchy.DTLB.Validate(); err != nil {
		return err
	}
	return nil
}

// WPMaxLen returns the wrong-path length cap: ROB size plus front-end
// buffers.
func (c Config) WPMaxLen() int { return c.ROBSize + c.FrontendBuffer }

// DefaultBatch is the lane size used when Config.Batch is 0: large
// enough to amortize the per-batch queue bookkeeping, small enough
// that the lane stays a fraction of the queue's lookahead.
const DefaultBatch = 64

// batch returns the effective lane size.
func (c Config) batch() int {
	if c.Batch <= 0 {
		return DefaultBatch
	}
	return c.Batch
}

// fuClass maps an instruction class to the class whose functional units
// execute it.
func fuClass(cl isa.Class) isa.Class {
	switch cl {
	case isa.ClassJump, isa.ClassJumpInd:
		return isa.ClassBranch
	case isa.ClassNop, isa.ClassSyscall, isa.ClassInvalid:
		return isa.ClassALU
	default:
		return cl
	}
}
