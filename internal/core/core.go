package core

import (
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/trace"
	"repro/internal/wrongpath"
)

const invalidLine = ^uint64(0)

// Stats holds the core-level counters of one simulation.
type Stats struct {
	// Instructions is the number of retired correct-path instructions.
	Instructions uint64
	// Cycles is the cycle of the last commit.
	Cycles uint64

	// Branch statistics (correct path).
	CondBranches         uint64
	CondMispredicted     uint64
	IndirectJumps        uint64
	IndirectMispredicted uint64
	Returns              uint64
	ReturnMispredicted   uint64
	// Mispredicts is the total of all control mispredictions.
	Mispredicts uint64

	// Wrong-path statistics. WPFetched counts wrong-path instructions
	// fetched before the triggering branch resolved; WPExecuted counts
	// those that also began execution before resolution (the paper's
	// Table II metric).
	WPFetched  uint64
	WPExecuted uint64
	// WPLoads counts wrong-path loads executed; WPLoadsWithAddr those
	// that carried a data address (and therefore accessed the cache).
	WPLoads         uint64
	WPLoadsWithAddr uint64

	// LoadForwards counts loads satisfied by store-to-load forwarding.
	LoadForwards uint64
	// Serializations counts pipeline drains for environment calls.
	Serializations uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MPKI returns control mispredictions per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Instructions)
}

// WPFraction returns wrong-path instructions executed relative to the
// correct-path instruction count (Table II).
func (s Stats) WPFraction() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.WPExecuted) / float64(s.Instructions)
}

// noteWPFetched and noteWPExecuted are the approved accessors for the
// wrong-path-split counters (enforced by cmd/wplint's statpath
// analyzer): every increment goes through here so the correct/wrong
// attribution stays audited in one place.

func (s *Stats) noteWPFetched() { s.WPFetched++ }

func (s *Stats) noteWPExecuted(op isa.Op, hasAddr bool) {
	s.WPExecuted++
	if op.IsLoad() {
		s.WPLoads++
		if hasAddr {
			s.WPLoadsWithAddr++
		}
	}
}

type sqEntry struct {
	addr uint64
	size int
	done uint64
}

// Core is the out-of-order core timing model.
type Core struct {
	cfg    Config
	hier   *cache.Hierarchy
	bp     *branch.Unit
	code   *codecache.Cache
	q      *queue.Queue
	policy wrongpath.Policy
	ctx    wrongpath.Context

	// Fetch state.
	fetchCycle     uint64
	fetchedInCycle int
	curFetchLine   uint64
	lineMask       uint64
	l1iHitLat      uint64

	// Dispatch state (in-order, width-limited, ROB-occupancy-limited).
	lastDispatch uint64
	dispRing     []uint64
	dispIdx      int
	robRing      []uint64
	robIdx       int

	// Commit state (in-order, width-limited).
	lastCommit uint64
	commitRing []uint64
	commitIdx  int

	// Issue ports and functional units.
	issuePorts []uint64
	fuFree     [16][]uint64
	fuLat      [16]uint64
	fuPipe     [16]bool

	// Register availability (by unified architectural register; the
	// model dispenses with explicit renaming — the ROB ring provides the
	// occupancy limit and write-after-write stalls do not exist because
	// every writer simply advances the availability time).
	regReady [isa.NumRegs]uint64

	// Store queue for store-to-load forwarding.
	storeQ []sqEntry
	sqIdx  int
	sqLive int

	// Wrong-path speculative-window pseudo-commit ring and the dispatch
	// snapshot buffer reused across mispredictions.
	wpRing       []uint64
	dispSnapshot []uint64

	// lane is the batched consumption buffer: PopBatch fills it, the run
	// loop walks it record by record. lane[lanePos] is the record being
	// processed; lane[lanePos+1:laneN] are already-popped future records
	// that peekFuture/windowFuture serve before falling through to the
	// queue — which keeps the future every policy sees identical to
	// per-instruction consumption.
	lane    []trace.DynInst
	laneN   int
	lanePos int

	// obs is the run's instrumentation view (nil when disabled; every
	// hook below it is a no-op behind one nil check).
	obs *obs.View

	// laneHook, when non-nil, runs at every measured-phase lane boundary
	// — the only instant at which the core's transient state (lane
	// buffer, wrong-path scratch) is provably empty, and therefore the
	// only instant a checkpoint may be taken. Returning false stops the
	// run (cancellation); the loop exits as if the stream had ended.
	laneHook func() bool

	stats Stats
}

// New builds a core. q supplies the correct-path instruction stream;
// policy supplies wrong-path streams on mispredictions.
func New(cfg Config, q *queue.Queue, policy wrongpath.Policy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:          cfg,
		hier:         cache.NewHierarchy(cfg.Hierarchy),
		bp:           branch.New(cfg.BranchPred),
		code:         codecache.New(),
		q:            q,
		policy:       policy,
		curFetchLine: invalidLine,
		lineMask:     uint64(cfg.Hierarchy.L1I.LineBytes - 1),
		l1iHitLat:    uint64(cfg.Hierarchy.L1I.HitLatency),
		dispRing:     make([]uint64, cfg.DispatchWidth),
		robRing:      make([]uint64, cfg.ROBSize),
		commitRing:   make([]uint64, cfg.CommitWidth),
		issuePorts:   make([]uint64, cfg.IssueWidth),
		storeQ:       make([]sqEntry, cfg.StoreQueueSize),
		wpRing:       make([]uint64, cfg.ROBSize),
		lane:         make([]trace.DynInst, cfg.batch()),
	}
	for cl, fu := range cfg.FUs {
		c.fuFree[cl] = make([]uint64, fu.Count)
		c.fuLat[cl] = uint64(fu.Latency)
		c.fuPipe[cl] = fu.Pipelined
	}
	c.ctx = wrongpath.Context{
		Code:    c.code,
		Pred:    c.bp,
		Peek:    c.peekFuture,
		Window:  c.windowFuture,
		ROBSize: cfg.ROBSize,
		MaxLen:  cfg.WPMaxLen(),
	}
	return c, nil
}

// peekFuture returns the i-th future correct-path record: the lane
// remainder first, then the queue. Because PopBatch's refill keeps the
// queue in the per-instruction steady state, the combined view — both
// the records and the hit/miss boundary — is exactly what a
// per-instruction consumer's q.Peek(i) would see.
func (c *Core) peekFuture(i int) (trace.DynInst, bool) {
	r := c.laneN - c.lanePos - 1
	if i < r {
		return c.lane[c.lanePos+1+i], true
	}
	return c.q.Peek(i - r)
}

// windowFuture is the windowed form: a contiguous read-only view of
// the future starting at i, at most max records, possibly shorter
// (callers re-request at i+len). Same combined view as peekFuture.
func (c *Core) windowFuture(i, max int) []trace.DynInst {
	r := c.laneN - c.lanePos - 1
	if i < r {
		w := c.lane[c.lanePos+1+i : c.laneN]
		if len(w) > max {
			w = w[:max]
		}
		return w
	}
	return c.q.PeekWindow(i-r, max)
}

// SetObs attaches a run's instrumentation view to the core and its
// decoupling queue; nil detaches both. A view whose queue bundle has no
// live handles (trace-only runs) leaves the queue unobserved, so those
// runs pay no per-pop hook dispatch at all.
func (c *Core) SetObs(v *obs.View) {
	c.obs = v
	if v == nil || !v.Queue.Enabled() {
		c.q.SetObs(nil)
		return
	}
	c.q.SetObs(&v.Queue)
}

// SetLaneHook installs f to run at every measured-phase lane boundary
// (nil uninstalls it). The sim layer uses it for checkpoint writes and
// cancellation polls; a false return stops the run. Disabled runs pay
// one nil check per lane.
func (c *Core) SetLaneHook(f func() bool) { c.laneHook = f }

// Stats returns the accumulated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Hierarchy returns the memory hierarchy (for cache statistics).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor returns the branch prediction unit.
func (c *Core) Predictor() *branch.Unit { return c.bp }

// CodeCache returns the code cache.
func (c *Core) CodeCache() *codecache.Cache { return c.code }

// Policy returns the wrong-path policy.
func (c *Core) Policy() wrongpath.Policy { return c.policy }

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Run simulates until the program exits or maxInsts correct-path
// instructions have retired (0 = no cap). It returns the statistics.
func (c *Core) Run(maxInsts uint64) Stats {
	return c.RunWarmup(0, maxInsts)
}

// RunWarmup first functionally warms caches, TLBs, branch predictor and
// code cache with warmup instructions (no timing, no statistics — the
// standard warming phase of sampled simulation, as used around the
// paper's SimPoint samples), then runs the detailed simulation for
// maxInsts instructions.
func (c *Core) RunWarmup(warmup, maxInsts uint64) Stats {
	lane := c.lane
	// Warmup phase: batched functional state-warming, stopping at the
	// instruction budget, program exit, or stream end — the same points
	// a per-record loop stops at (PopBatch never crosses an Exit).
warmLoop:
	for consumed := uint64(0); consumed < warmup; {
		dst := lane
		if room := warmup - consumed; room < uint64(len(dst)) {
			dst = dst[:room]
		}
		n := c.q.PopBatch(dst)
		if n == 0 {
			break
		}
		consumed += uint64(n)
		for j := 0; j < n; j++ {
			di := &dst[j]
			m := c.code.InsertGet(di.PC, &di.In)
			c.warm(di, m)
			if di.Exit {
				break warmLoop
			}
		}
		// Cancellation is honored at warmup lane boundaries too; the hook
		// never checkpoints here (the measured instruction count is still
		// zero, below any snapshot threshold).
		if c.laneHook != nil && !c.laneHook() {
			c.stats.Cycles = c.lastCommit
			return c.stats
		}
	}
	if warmup > 0 {
		c.hier.ResetStats()
	}

	// Main loop: pop a lane, push each record through the pipeline. The
	// obs enablement check is hoisted to the batch boundary; disabled
	// runs pay no per-instruction observability dispatch.
mainLoop:
	for {
		dst := lane
		if maxInsts > 0 {
			if c.stats.Instructions >= maxInsts {
				break
			}
			if rem := maxInsts - c.stats.Instructions; rem < uint64(len(dst)) {
				dst = dst[:rem]
			}
		}
		n := c.q.PopBatch(dst)
		if n == 0 {
			break
		}
		c.laneN = n
		obsOn := c.obs != nil
		for j := 0; j < n; j++ {
			c.lanePos = j
			di := &c.lane[j]
			m := c.code.InsertGet(di.PC, &di.In)
			done, commit, pred := c.stepCorrect(di, m)
			c.stats.Instructions++
			if obsOn && c.stats.Instructions&1023 == 1 {
				// Queue-occupancy counter series, sampled every 1024 insts.
				c.obs.QueueDepth(c.lastCommit, c.q.Len())
			}

			isControl := m.IsControl()
			if isControl {
				c.recordBranch(di, pred)
			}
			switch {
			case isControl && pred.Mispredicted:
				c.stats.Mispredicts++
				resolve := done
				wpStart := c.fetchCycle
				wpLen, wpFetched := c.simulateWrongPath(di, pred.Target, resolve)
				if obsOn {
					var dur uint64
					if resolve > wpStart {
						dur = resolve - wpStart
					}
					c.obs.Mispredict(di.PC, wpStart, dur, wpLen, wpFetched)
				}
				c.redirectFetch(resolve + uint64(c.cfg.RedirectPenalty))
			case isControl && di.Taken:
				// Correctly predicted taken: the fetch group ends; the next
				// group starts at the target one cycle later.
				c.breakFetchGroup()
			case m.IsEcall():
				c.stats.Serializations++
				if obsOn {
					c.obs.Serialize(di.PC, commit)
				}
				c.redirectFetch(commit + uint64(c.cfg.RedirectPenalty))
			}
			if di.Exit {
				break mainLoop
			}
		}
		c.laneN, c.lanePos = 0, 0
		if c.laneHook != nil && !c.laneHook() {
			break
		}
	}
	c.laneN, c.lanePos = 0, 0
	c.stats.Cycles = c.lastCommit
	return c.stats
}

// warm pushes one instruction's state effects (caches, TLBs, predictor,
// code cache) without any timing accounting. The caller has already
// inserted the record into the code cache; m is its decode record.
func (c *Core) warm(di *trace.DynInst, m *codecache.Meta) {
	line := di.PC &^ c.lineMask
	if line != c.curFetchLine {
		c.hier.AccessI(di.PC, 0, false)
		c.curFetchLine = line
	}
	if m.IsControl() {
		c.bp.PredictAndUpdate(di.PC, di.In, di.Taken, di.NextPC)
	}
	if di.HasAddr {
		if m.IsLoad() {
			c.hier.Load(di.MemAddr, 0, false)
		} else if m.IsStore() {
			c.hier.Store(di.MemAddr, 0, false)
		}
	}
}

func (c *Core) recordBranch(di *trace.DynInst, pred branch.Prediction) {
	switch {
	case di.In.Op.IsCondBranch():
		c.stats.CondBranches++
		if pred.Mispredicted {
			c.stats.CondMispredicted++
		}
	case branch.IsReturn(di.In):
		c.stats.Returns++
		if pred.Mispredicted {
			c.stats.ReturnMispredicted++
		}
	case di.In.Op == isa.OpJalr:
		c.stats.IndirectJumps++
		if pred.Mispredicted {
			c.stats.IndirectMispredicted++
		}
	}
}

// fetch charges one instruction's fetch and returns its fetch cycle.
func (c *Core) fetch(pc uint64, wrongPath bool) uint64 {
	if c.fetchedInCycle >= c.cfg.FetchWidth {
		c.fetchCycle++
		c.fetchedInCycle = 0
		c.curFetchLine = invalidLine
	}
	line := pc &^ c.lineMask
	if line != c.curFetchLine {
		lat := uint64(c.hier.AccessI(pc, c.fetchCycle, wrongPath))
		if lat > c.l1iHitLat {
			// The front end stalls for the miss; the hit pipeline is
			// otherwise hidden.
			if c.obs != nil {
				c.obs.FetchStall(pc, c.fetchCycle, lat-c.l1iHitLat, wrongPath)
			}
			c.fetchCycle += lat - c.l1iHitLat
			c.fetchedInCycle = 0
		}
		c.curFetchLine = line
	}
	c.fetchedInCycle++
	return c.fetchCycle
}

func (c *Core) breakFetchGroup() {
	c.fetchCycle++
	c.fetchedInCycle = 0
	c.curFetchLine = invalidLine
}

func (c *Core) redirectFetch(cycle uint64) {
	if cycle > c.fetchCycle {
		c.fetchCycle = cycle
	}
	c.fetchedInCycle = 0
	c.curFetchLine = invalidLine
}

// stepCorrect pushes one correct-path instruction through the pipeline
// and returns its execution-complete and commit cycles plus the branch
// prediction verdict. m is the instruction's precomputed decode record.
func (c *Core) stepCorrect(di *trace.DynInst, m *codecache.Meta) (done, commit uint64, pred branch.Prediction) {
	fetchAt := c.fetch(di.PC, false)
	if m.IsControl() {
		pred = c.bp.PredictAndUpdate(di.PC, di.In, di.Taken, di.NextPC)
	}

	// Dispatch: in order, width-limited, ROB-occupancy-limited.
	disp := fetchAt + uint64(c.cfg.FetchToDispatch)
	disp = maxU(disp, c.lastDispatch)
	disp = maxU(disp, c.dispRing[c.dispIdx]+1)
	disp = maxU(disp, c.robRing[c.robIdx]+1)
	if m.IsEcall() {
		// Serializing: wait for every older instruction to commit.
		disp = maxU(disp, c.lastCommit+1)
	}
	c.lastDispatch = disp
	c.dispRing[c.dispIdx] = disp
	c.dispIdx = (c.dispIdx + 1) % c.cfg.DispatchWidth

	done = c.issueAndExecute(di, m, disp, false, 0)

	// Commit: in order, width-limited, one cycle after completion.
	commit = maxU(done+1, c.lastCommit)
	commit = maxU(commit, c.commitRing[c.commitIdx]+1)
	c.lastCommit = commit
	c.commitRing[c.commitIdx] = commit
	c.commitIdx = (c.commitIdx + 1) % c.cfg.CommitWidth
	c.robRing[c.robIdx] = commit
	c.robIdx = (c.robIdx + 1) % c.cfg.ROBSize

	if m.IsStore() && di.HasAddr {
		// Committed stores drain to the cache off the critical path.
		c.hier.Store(di.MemAddr, commit, false)
		c.pushStore(di.MemAddr, int(m.MemBytes), done)
	}
	return done, commit, pred
}

// issueAndExecute models dependence wakeup, issue-width and FU
// contention, and execution latency (loads through the hierarchy).
// When resolve is non-zero (wrong-path mode) and the instruction cannot
// start executing before resolve, it is squashed instead: no resources
// are consumed and the returned cycle is resolve itself.
func (c *Core) issueAndExecute(di *trace.DynInst, m *codecache.Meta, disp uint64, wrongPath bool, resolve uint64) uint64 {
	// Nops consume front-end and ROB slots only.
	if m.IsNop() {
		return disp
	}

	ready := disp
	for s := uint8(0); s < m.NSrcs; s++ {
		ready = maxU(ready, c.regReady[m.Srcs[s]])
	}

	// Issue port.
	pi := minIndex(c.issuePorts)
	issue := maxU(ready, c.issuePorts[pi])

	// Functional unit.
	cl := fuClass(m.Class)
	units := c.fuFree[cl]
	ui := minIndex(units)
	start := maxU(issue, units[ui])

	if wrongPath && start >= resolve {
		// Squashed before issuing: consumes no execution resources and
		// makes no cache access.
		return resolve
	}

	c.issuePorts[pi] = issue + 1
	var lat uint64
	switch {
	case m.IsLoad():
		lat = c.loadLatency(di, m, start, wrongPath)
	case m.IsEcall():
		lat = 5
	default:
		lat = c.fuLat[cl]
	}
	if c.fuPipe[cl] {
		units[ui] = start + 1
	} else {
		units[ui] = start + lat
	}

	done := start + lat
	if m.HasDst {
		c.regReady[m.Dst] = done
	}
	if wrongPath {
		c.stats.noteWPExecuted(di.In.Op, di.HasAddr)
	}
	return done
}

// loadLatency returns a load's latency: forwarded from the store queue,
// an assumed L1 hit when the address is unknown (instruction
// reconstruction), or a real hierarchy access.
func (c *Core) loadLatency(di *trace.DynInst, m *codecache.Meta, start uint64, wrongPath bool) uint64 {
	if !di.HasAddr {
		// §III-A: without addresses, "each memory operation is modeled
		// as a cache hit".
		return uint64(c.hier.L1DHitLatency())
	}
	if fwdDone, ok := c.forward(di.MemAddr, int(m.MemBytes)); ok {
		c.stats.LoadForwards++
		lat := uint64(c.hier.L1DHitLatency())
		if fwdDone+1 > start+lat {
			lat = fwdDone + 1 - start
		}
		return lat
	}
	return uint64(c.hier.Load(di.MemAddr, start, wrongPath))
}

func (c *Core) pushStore(addr uint64, size int, done uint64) {
	c.storeQ[c.sqIdx] = sqEntry{addr: addr, size: size, done: done}
	c.sqIdx = (c.sqIdx + 1) % len(c.storeQ)
	if c.sqLive < len(c.storeQ) {
		c.sqLive++
	}
}

// forward searches the store queue, newest first, for a store fully
// covering [addr, addr+size).
func (c *Core) forward(addr uint64, size int) (done uint64, ok bool) {
	idx := c.sqIdx
	for i := 0; i < c.sqLive; i++ {
		idx--
		if idx < 0 {
			idx = len(c.storeQ) - 1
		}
		e := &c.storeQ[idx]
		if addr >= e.addr && addr+uint64(size) <= e.addr+uint64(e.size) {
			return e.done, true
		}
	}
	return 0, false
}

// simulateWrongPath obtains the wrong-path stream from the policy and
// pushes it through the pipeline until the mispredicted branch resolves.
// Wrong-path instructions access the I-cache, occupy a speculative
// window of ROB size (stalling wrong-path fetch when it fills — this is
// what makes accurately-modeled wrong-path cache misses reduce the
// number of wrong-path instructions executed, the paper's Table II
// observation), and access the data hierarchy when their address is
// known. All register and dispatch bookkeeping is rolled back at the
// squash; cache and predictor-free structures keep the perturbation.
// It returns the generated wrong-path length and how many of those
// instructions were actually fetched before resolution (observability
// only; disabled runs discard them).
func (c *Core) simulateWrongPath(br *trace.DynInst, target uint64, resolve uint64) (wpLen, wpFetched int) {
	var prevConvDet, prevConvDist uint64
	if c.obs != nil {
		st := c.policy.Stats()
		prevConvDet, prevConvDist = st.ConvDetected, st.ConvDistSum
	}
	genStart := c.obs.WPGenStart()
	wp := c.policy.Begin(&c.ctx, br, target)
	c.obs.WPGenDone(genStart)
	if c.obs != nil {
		if st := c.policy.Stats(); st.ConvDetected > prevConvDet {
			c.obs.Convergence(br.PC, c.fetchCycle, st.ConvDistSum-prevConvDist)
		}
	}
	if len(wp) == 0 {
		return 0, 0
	}

	// Snapshot state that the squash logically restores.
	savedRegs := c.regReady
	savedLastDispatch := c.lastDispatch
	if c.dispSnapshot == nil {
		c.dispSnapshot = make([]uint64, len(c.dispRing))
	}
	copy(c.dispSnapshot, c.dispRing)
	savedDispIdx := c.dispIdx

	// The front end redirects to the predicted target one cycle after
	// the mispredicted branch's fetch group.
	c.breakFetchGroup()

	var lastPseudo uint64
	for i := range wp {
		// Speculative-window occupancy: entry i must wait for entry
		// i-ROBSize to pseudo-retire.
		if i >= c.cfg.ROBSize {
			free := c.wpRing[i%c.cfg.ROBSize] + 1
			if free > c.fetchCycle {
				c.redirectFetch(free)
			}
		}
		if c.fetchCycle >= resolve {
			break
		}
		fetchAt := c.fetch(wp[i].PC, true)
		c.stats.noteWPFetched()
		wpFetched++

		disp := fetchAt + uint64(c.cfg.FetchToDispatch)
		disp = maxU(disp, c.lastDispatch)
		disp = maxU(disp, c.dispRing[c.dispIdx]+1)
		c.lastDispatch = disp
		c.dispRing[c.dispIdx] = disp
		c.dispIdx = (c.dispIdx + 1) % c.cfg.DispatchWidth

		m := c.code.MetaFor(wp[i].PC, &wp[i].In)
		done := c.issueAndExecute(&wp[i], m, disp, true, resolve)

		pseudo := maxU(lastPseudo, done+1)
		c.wpRing[i%c.cfg.ROBSize] = pseudo
		lastPseudo = pseudo

		if wp[i].Taken && m.IsControl() && c.fetchCycle < resolve {
			c.breakFetchGroup()
		}
	}

	c.regReady = savedRegs
	c.lastDispatch = savedLastDispatch
	copy(c.dispRing, c.dispSnapshot)
	c.dispIdx = savedDispIdx
	return len(wp), wpFetched
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minIndex(v []uint64) int {
	mi := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[mi] {
			mi = i
		}
	}
	return mi
}
