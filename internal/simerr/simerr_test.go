package simerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestFaultClassMatching(t *testing.T) {
	cause := errors.New("unexpected EOF")
	f := Corrupt("decoding trace record", 42, cause)
	if !errors.Is(f, ErrTraceCorrupt) {
		t.Error("Corrupt fault does not match ErrTraceCorrupt")
	}
	if !errors.Is(f, cause) {
		t.Error("Corrupt fault does not match its cause")
	}
	if errors.Is(f, ErrStall) || errors.Is(f, ErrWorkerPanic) {
		t.Error("Corrupt fault matches an unrelated class")
	}
}

func TestFaultMatchesThroughWrapping(t *testing.T) {
	f := &Fault{Kind: ErrStall, Workload: "gap/bfs", Technique: "wpemul", Fetched: 1000}
	wrapped := fmt.Errorf("job 3: %w", f)
	if !errors.Is(wrapped, ErrStall) {
		t.Error("fmt.Errorf wrapping loses the class")
	}
	var got *Fault
	if !errors.As(wrapped, &got) || got.Fetched != 1000 {
		t.Error("errors.As cannot recover the Fault")
	}
}

func TestDegradedKeepsOriginalClass(t *testing.T) {
	stall := &Fault{Kind: ErrStall, Workload: "gap/cc"}
	d := Degraded("wpemul", "conv", stall)
	if !errors.Is(d, ErrDegraded) {
		t.Error("Degraded fault does not match ErrDegraded")
	}
	if !errors.Is(d, ErrStall) {
		t.Error("Degraded fault loses the original class")
	}
}

func TestErrorRendering(t *testing.T) {
	f := &Fault{
		Kind: ErrStall, Op: "watchdog", Workload: "gap/bfs", Technique: "conv",
		PC: 0x4000, Fetched: 17, Consumed: 12,
	}
	msg := f.Error()
	for _, want := range []string{"stalled", "watchdog", "gap/bfs", "conv", "0x4000", "fetched=17", "consumed=12"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestWorkerPanicCarriesStack(t *testing.T) {
	f := WorkerPanic("batch job 2", "boom", []byte("goroutine 1 [running]:\nmain.main()"))
	if !errors.Is(f, ErrWorkerPanic) {
		t.Error("WorkerPanic fault does not match ErrWorkerPanic")
	}
	if !strings.Contains(f.Error(), "goroutine 1") {
		t.Error("stack missing from rendering")
	}
	if !strings.Contains(f.Error(), "boom") {
		t.Error("panic value missing from rendering")
	}
}

func TestZeroFieldsOmitted(t *testing.T) {
	f := &Fault{Kind: ErrUnsupported}
	msg := f.Error()
	for _, banned := range []string{"workload=", "technique=", "pc=", "fetched=", "consumed="} {
		if strings.Contains(msg, banned) {
			t.Errorf("Error() = %q renders unset field %q", msg, banned)
		}
	}
}
