// Package simerr defines the typed fault taxonomy of the fault-tolerant
// simulation runtime. Every runtime fault the simulator can survive —
// a corrupted or truncated trace, a stalled producer/consumer pair on
// the decoupling queue, a panic inside a batch worker or the parallel
// frontend's producer goroutine, a capability the requested technique
// needs but the frontend cannot provide — is reported as a *Fault
// carrying the simulation context at the moment of the fault (workload,
// technique, PC, instruction counts) and classified by one of the
// errors.Is-able sentinels below.
//
// The classification drives the graceful-degradation ladder in
// internal/sim: recoverable classes (ErrUnsupported, ErrStall,
// ErrWorkerPanic) re-run the job one technique rung down
// (wpemul→conv→instrec→nowp); ErrTraceCorrupt keeps the valid prefix of
// the run and annotates it; anything else aborts the cell with the
// typed error so a sweep never silently drops or crashes on a faulted
// cell.
package simerr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel fault classes. Match with errors.Is; every *Fault unwraps to
// exactly one of them (plus its underlying cause).
var (
	// ErrTraceCorrupt classifies a trace stream that ended mid-record,
	// overflowed a varint, or decoded to an impossible instruction —
	// anything other than a clean end-of-trace.
	ErrTraceCorrupt = errors.New("trace corrupt or truncated")

	// ErrStall classifies a run the progress watchdog aborted: neither
	// the decoupling queue's producer nor its consumer advanced within
	// the configured budget.
	ErrStall = errors.New("simulation stalled")

	// ErrWorkerPanic classifies a panic recovered inside a batch worker
	// or the parallel frontend's producer goroutine.
	ErrWorkerPanic = errors.New("worker panicked")

	// ErrUnsupported classifies a capability mismatch between the
	// requested technique and the frontend (e.g. wpemul on a trace
	// interpreter, paper §III-B).
	ErrUnsupported = errors.New("unsupported capability")

	// ErrDegraded marks a result produced below the requested rung of
	// the degradation ladder; the Fault's cause is the fault that forced
	// the descent.
	ErrDegraded = errors.New("degraded run")

	// ErrConfig classifies an invalid simulation configuration (e.g. a
	// decoupling-queue lookahead beyond the supported maximum). Config
	// faults are deterministic — retrying on a lower technique rung
	// cannot fix them — so the degradation ladder never recovers them.
	ErrConfig = errors.New("invalid configuration")

	// ErrCanceled classifies a run ended by operator cancellation: a
	// context deadline, a SIGINT, or an explicit cancel. Cancellation is
	// an instruction, not a malfunction — the degradation ladder never
	// retries it, and sweeps flush whatever partial results exist with
	// the canceled cells annotated.
	ErrCanceled = errors.New("run canceled")
)

// Fault is a classified simulation fault with diagnostic context. The
// zero value of every field means "unknown / not applicable"; Error
// renders only the fields that are set.
type Fault struct {
	// Kind is the sentinel class (ErrTraceCorrupt, ErrStall, ...).
	Kind error
	// Op names the operation in progress ("decoding trace record",
	// "batch job 3", "parallel frontend producer").
	Op string
	// Workload identifies the simulated workload ("gap/bfs").
	Workload string
	// Technique is the wrong-path technique of the faulted run.
	Technique string
	// PC is the last program counter the frontend produced.
	PC uint64
	// Fetched counts instructions the functional side produced before
	// the fault (for trace faults: the record index).
	Fetched uint64
	// Consumed counts instructions the performance side popped from the
	// decoupling queue before the fault.
	Consumed uint64
	// Stack is the recovered goroutine stack for panic faults.
	Stack []byte
	// Err is the underlying cause, if any.
	Err error
}

// Error renders the fault class, context and cause.
func (f *Fault) Error() string {
	var b strings.Builder
	b.WriteString("simerr: ")
	if f.Kind != nil {
		b.WriteString(f.Kind.Error())
	} else {
		b.WriteString("fault")
	}
	if f.Op != "" {
		fmt.Fprintf(&b, ": %s", f.Op)
	}
	var ctx []string
	if f.Workload != "" {
		ctx = append(ctx, "workload="+f.Workload)
	}
	if f.Technique != "" {
		ctx = append(ctx, "technique="+f.Technique)
	}
	if f.PC != 0 {
		ctx = append(ctx, fmt.Sprintf("pc=%#x", f.PC))
	}
	if f.Fetched != 0 {
		ctx = append(ctx, fmt.Sprintf("fetched=%d", f.Fetched))
	}
	if f.Consumed != 0 {
		ctx = append(ctx, fmt.Sprintf("consumed=%d", f.Consumed))
	}
	if len(ctx) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(ctx, " "))
	}
	if f.Err != nil {
		fmt.Fprintf(&b, ": %v", f.Err)
	}
	if len(f.Stack) > 0 {
		fmt.Fprintf(&b, "\n%s", f.Stack)
	}
	return b.String()
}

// Unwrap exposes the class sentinel and the cause to errors.Is/As.
func (f *Fault) Unwrap() []error {
	var out []error
	if f.Kind != nil {
		out = append(out, f.Kind)
	}
	if f.Err != nil {
		out = append(out, f.Err)
	}
	return out
}

// Corrupt builds an ErrTraceCorrupt fault for a stream that broke while
// decoding record (0-based index of the record being read).
func Corrupt(op string, record uint64, cause error) *Fault {
	return &Fault{Kind: ErrTraceCorrupt, Op: op, Fetched: record, Err: cause}
}

// WorkerPanic builds an ErrWorkerPanic fault from a recovered panic
// value and the captured stack.
func WorkerPanic(op string, recovered any, stack []byte) *Fault {
	return &Fault{Kind: ErrWorkerPanic, Op: op, Stack: stack, Err: fmt.Errorf("panic: %v", recovered)}
}

// Unsupported builds an ErrUnsupported fault.
func Unsupported(op string, cause error) *Fault {
	return &Fault{Kind: ErrUnsupported, Op: op, Err: cause}
}

// Config builds an ErrConfig fault for a configuration the simulator
// rejects up front.
func Config(op string, cause error) *Fault {
	return &Fault{Kind: ErrConfig, Op: op, Err: cause}
}

// Canceled builds an ErrCanceled fault. cause is the context's error
// (context.Canceled, context.DeadlineExceeded) when one is available.
func Canceled(op string, cause error) *Fault {
	return &Fault{Kind: ErrCanceled, Op: op, Err: cause}
}

// Degraded wraps the fault that forced a ladder descent so the result's
// annotation satisfies both errors.Is(err, ErrDegraded) and
// errors.Is(err, <original class>).
func Degraded(from, to string, cause error) *Fault {
	return &Fault{Kind: ErrDegraded, Op: fmt.Sprintf("%s -> %s", from, to), Err: cause}
}

// FirstLine renders err's message truncated at the first newline — the
// one-line form table cells, job statuses and log lines use for faults
// whose full rendering (a panic fault's captured stack) spans pages.
func FirstLine(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
