// Package queue implements the decoupling instruction queue between the
// functional and the performance simulator. The functional side runs
// ahead, filling the queue; the performance side consumes from it.
//
// The queue exposes the run-ahead to its consumer through Peek: the
// convergence-exploitation technique "exploits the fact that the
// functional model runs ahead of the performance model, so we can take
// a peek in the future correct-path instructions" (§III-C). The queue
// guarantees a configurable minimum lookahead by refilling from the
// producer on demand; near program end, Peek simply reports that fewer
// instructions remain (the paper's "skip the convergence check" case).
package queue

import (
	"sync/atomic"

	"repro/internal/trace"
)

// Producer supplies dynamic instructions; ok is false at program end.
type Producer interface {
	Next() (trace.DynInst, bool)
}

// Queue is a lookahead buffer over a Producer. It is not safe for
// concurrent use; the parallel frontend mode wraps the producer, not
// the queue.
type Queue struct {
	src  Producer
	buf  []trace.DynInst // ring buffer
	head int             // index of next instruction to pop
	n    int             // live entries
	done bool            // producer exhausted

	// lookahead is the fill target maintained before every Pop.
	lookahead int

	// popped is atomic so the stall watchdog can sample consumer
	// progress from its own goroutine; the queue itself remains
	// single-consumer.
	popped atomic.Uint64
}

// New creates a queue that keeps at least lookahead instructions
// buffered (capacity permitting) ahead of the consumer.
func New(src Producer, lookahead int) *Queue {
	if lookahead < 1 {
		lookahead = 1
	}
	cap_ := 1
	for cap_ < lookahead+1 {
		cap_ *= 2
	}
	return &Queue{src: src, buf: make([]trace.DynInst, cap_), lookahead: lookahead}
}

func (q *Queue) fill(target int) {
	if target > len(q.buf) {
		target = len(q.buf)
	}
	for !q.done && q.n < target {
		di, ok := q.src.Next()
		if !ok {
			q.done = true
			return
		}
		q.buf[(q.head+q.n)&(len(q.buf)-1)] = di
		q.n++
	}
}

// Pop removes and returns the next instruction; ok is false when the
// program has ended.
func (q *Queue) Pop() (trace.DynInst, bool) {
	q.fill(q.lookahead)
	if q.n == 0 {
		return trace.DynInst{}, false
	}
	di := q.buf[q.head]
	q.buf[q.head] = trace.DynInst{} // release any attached WP stream
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.popped.Add(1)
	return di, true
}

// Peek returns the i-th instruction ahead (0 = the one the next Pop
// returns) without consuming it, refilling from the producer as needed.
// ok is false when fewer than i+1 instructions remain in the program.
func (q *Queue) Peek(i int) (trace.DynInst, bool) {
	if i >= len(q.buf) {
		return trace.DynInst{}, false
	}
	if i >= q.n {
		q.fill(i + 1)
		if i >= q.n {
			return trace.DynInst{}, false
		}
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)], true
}

// Len returns the number of currently buffered instructions.
func (q *Queue) Len() int { return q.n }

// Popped returns the number of instructions consumed so far. It is
// safe to call concurrently with Pop (the watchdog samples it).
func (q *Queue) Popped() uint64 { return q.popped.Load() }

// Lookahead returns the guaranteed fill target.
func (q *Queue) Lookahead() int { return q.lookahead }
