// Package queue implements the decoupling instruction queue between the
// functional and the performance simulator. The functional side runs
// ahead, filling the queue; the performance side consumes from it.
//
// The queue exposes the run-ahead to its consumer through Peek: the
// convergence-exploitation technique "exploits the fact that the
// functional model runs ahead of the performance model, so we can take
// a peek in the future correct-path instructions" (§III-C). The queue
// guarantees a configurable minimum lookahead by refilling from the
// producer on demand; near program end, Peek simply reports that fewer
// instructions remain (the paper's "skip the convergence check" case).
// A Peek deeper than the current ring grows it (power-of-two steps, up
// to MaxCapacity), so a deep convergence search is answered from the
// program rather than silently refused at an allocation boundary.
package queue

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// MaxLookahead is the largest accepted fill target, and MaxCapacity
// (its next power of two) the ceiling the ring can grow to. One DynInst
// is a few dozen bytes, so the ceiling bounds a single queue at low
// hundreds of MB — far beyond any configured lookahead (the sim layer
// derives ~2×ROB) but small enough that a runaway configuration fails
// up front with a typed fault instead of an allocation crash.
const (
	MaxLookahead = 1 << 22
	MaxCapacity  = 1 << 23
)

// Producer supplies dynamic instructions; ok is false at program end.
type Producer interface {
	Next() (trace.DynInst, bool)
}

// BatchProducer is the optional batched counterpart of Producer: one
// call fills a lane of records and returns how many were written
// (0 = program end, terminal). A producer implementing it lets the
// queue refill entire ring segments with one interface call; the
// record sequence must be identical to repeated Next calls.
type BatchProducer interface {
	NextBatch(dst []trace.DynInst) int
}

// NextBatchOf fills dst from p, using the batched path when p supports
// it and falling back to per-record Next calls otherwise. It returns
// the number of records written; 0 means end of stream only if dst is
// non-empty. Producer wrappers (fault injectors, progress taps) use it
// to forward batches without caring which interface their inner
// producer implements.
func NextBatchOf(p Producer, dst []trace.DynInst) int {
	if bp, ok := p.(BatchProducer); ok {
		return bp.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		di, ok := p.Next()
		if !ok {
			break
		}
		dst[n] = di
		n++
	}
	return n
}

// Queue is a lookahead buffer over a Producer. It is not safe for
// concurrent use; the parallel frontend mode wraps the producer, not
// the queue.
type Queue struct {
	src  Producer
	bsrc BatchProducer   // non-nil when src supports batched refills
	buf  []trace.DynInst // ring buffer; len is a power of two
	head int             // index of next instruction to pop
	n    int             // live entries
	done bool            // producer exhausted

	// lookahead is the fill target maintained before every Pop.
	lookahead int

	// obs is the optional instrumentation bundle (nil when disabled; the
	// handles inside are themselves nil-safe).
	obs *obs.QueueObs

	// popped is atomic so the stall watchdog can sample consumer
	// progress from its own goroutine; the queue itself remains
	// single-consumer.
	popped atomic.Uint64
}

// New creates a queue that keeps at least lookahead instructions
// buffered ahead of the consumer. A lookahead beyond MaxLookahead is
// rejected with a typed simerr.ErrConfig fault (deterministic, so the
// degradation ladder does not retry it).
func New(src Producer, lookahead int) (*Queue, error) {
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead > MaxLookahead {
		return nil, simerr.Config("sizing decoupling queue",
			fmt.Errorf("queue: lookahead %d exceeds maximum %d", lookahead, MaxLookahead))
	}
	cap_ := 1
	for cap_ < lookahead+1 {
		cap_ *= 2
	}
	q := &Queue{src: src, buf: make([]trace.DynInst, cap_), lookahead: lookahead}
	q.bsrc, _ = src.(BatchProducer)
	return q, nil
}

// SetObs attaches the instrumentation bundle; nil detaches it. The
// uninstrumented hot path pays one nil check per operation.
func (q *Queue) SetObs(o *obs.QueueObs) { q.obs = o }

func (q *Queue) fill(target int) {
	if target > len(q.buf) {
		target = len(q.buf)
	}
	if q.bsrc != nil {
		// Batched refill: hand the producer contiguous ring segments (at
		// most two per wrap) instead of one slot per interface call. The
		// record sequence — and therefore every simulated statistic — is
		// identical to the per-record path.
		for !q.done && q.n < target {
			w := (q.head + q.n) & (len(q.buf) - 1)
			k := target - q.n
			if room := len(q.buf) - w; k > room {
				k = room
			}
			got := q.bsrc.NextBatch(q.buf[w : w+k])
			if got == 0 {
				q.done = true
				return
			}
			q.n += got
		}
		return
	}
	for !q.done && q.n < target {
		di, ok := q.src.Next()
		if !ok {
			q.done = true
			return
		}
		q.buf[(q.head+q.n)&(len(q.buf)-1)] = di
		q.n++
	}
}

// grow re-rings the buffer to the next power of two holding min
// entries. It reports false — leaving the queue untouched — when min
// exceeds MaxCapacity.
func (q *Queue) grow(min int) bool {
	if min > MaxCapacity {
		return false
	}
	newCap := len(q.buf)
	for newCap < min {
		newCap *= 2
	}
	nbuf := make([]trace.DynInst, newCap)
	for j := 0; j < q.n; j++ {
		nbuf[j] = q.buf[(q.head+j)&(len(q.buf)-1)]
	}
	q.buf = nbuf
	q.head = 0
	if q.obs != nil {
		q.obs.Grows.Inc()
	}
	return true
}

// Pop removes and returns the next instruction; ok is false when the
// program has ended.
func (q *Queue) Pop() (trace.DynInst, bool) {
	q.fill(q.lookahead)
	if q.obs != nil {
		q.obs.Occupancy.Observe(uint64(q.n))
	}
	if q.n == 0 {
		return trace.DynInst{}, false
	}
	di := q.buf[q.head]
	q.buf[q.head] = trace.DynInst{} // release any attached WP stream
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.popped.Add(1)
	return di, true
}

// PopBatch removes up to len(dst) instructions into dst and returns
// how many were written; 0 means the program has ended. The batch
// stops after (and includes) an Exit record, so records beyond a
// program exit stay queued — exactly what a per-instruction consumer
// would leave behind.
//
// Refill discipline: the pull pattern from the producer is identical
// to len(dst) successive Pops — the queue tops up to the lookahead
// target before copying and restores the lookahead-1 steady state
// afterwards — so the functional side executes exactly as many
// instructions as it would under per-instruction consumption, keeping
// batched results bit-identical (including FunctionalInsts).
func (q *Queue) PopBatch(dst []trace.DynInst) int {
	if len(dst) == 0 {
		return 0
	}
	q.fill(q.lookahead)
	if q.obs != nil {
		q.obs.Occupancy.Observe(uint64(q.n))
	}
	n := len(dst)
	if n > q.n {
		n = q.n
	}
	if n == 0 {
		return 0
	}
	mask := len(q.buf) - 1
	c1 := n
	if room := len(q.buf) - q.head; c1 > room {
		c1 = room
	}
	copy(dst[:c1], q.buf[q.head:q.head+c1])
	if c1 < n {
		copy(dst[c1:n], q.buf[:n-c1])
	}
	// Stop after the first Exit record.
	for i := 0; i < n; i++ {
		if dst[i].Exit {
			n = i + 1
			break
		}
	}
	// Release consumed slots (drop attached WP streams).
	e1 := q.head + n
	if e1 <= len(q.buf) {
		clear(q.buf[q.head:e1])
	} else {
		clear(q.buf[q.head:])
		clear(q.buf[:e1-len(q.buf)])
	}
	q.head = (q.head + n) & mask
	q.n -= n
	q.popped.Add(uint64(n))
	// Restore the per-instruction steady state (lookahead-1 buffered):
	// a per-record consumer would have refilled before each of the n
	// pops, ending one short of the target.
	q.fill(q.lookahead - 1)
	return n
}

// Peek returns the i-th instruction ahead (0 = the one the next Pop
// returns) without consuming it, refilling from the producer — and
// growing the ring, up to MaxCapacity — as needed. ok is false when
// fewer than i+1 instructions remain in the program, or when i is
// beyond the capacity ceiling (counted as a clipped peek).
func (q *Queue) Peek(i int) (trace.DynInst, bool) {
	if q.obs != nil {
		q.obs.PeekDepth.Observe(uint64(i))
	}
	if i >= len(q.buf) && !q.grow(i+1) {
		if q.obs != nil {
			if !q.done {
				// The producer may still have instructions; the refusal
				// is the ceiling's doing, not the program end's.
				q.obs.PeekClipped.Inc()
			}
			q.obs.PeekMiss.Inc()
		}
		return trace.DynInst{}, false
	}
	if i >= q.n {
		q.fill(i + 1)
		if i >= q.n {
			if q.obs != nil {
				q.obs.PeekMiss.Inc()
			}
			return trace.DynInst{}, false
		}
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)], true
}

// PeekWindow returns a contiguous read-only view of the buffered
// future instructions starting at index i (same indexing as Peek), at
// most max records and at most up to the ring's wrap point — callers
// walk forward by re-requesting at i+len(window). An empty window
// means what a false Peek(i) means: program end past i, or i beyond
// the capacity ceiling.
//
// Refill parity: the window only refills the producer up to i+1 (like
// Peek) and otherwise serves what is already buffered, so a windowed
// walk pulls exactly the records a peek-by-one walk would have pulled
// — the guarantee that keeps batched convergence searches bit-exact.
//
// The returned slice aliases the ring: it stays valid until the next
// Pop/PopBatch (deeper peeks may re-ring the buffer, but the old
// backing array keeps its records, so earlier windows stay readable).
func (q *Queue) PeekWindow(i, max int) []trace.DynInst {
	if i < 0 || max < 1 {
		return nil
	}
	if q.obs != nil {
		q.obs.PeekDepth.Observe(uint64(i))
	}
	if i >= len(q.buf) && !q.grow(i+1) {
		if q.obs != nil {
			if !q.done {
				q.obs.PeekClipped.Inc()
			}
			q.obs.PeekMiss.Inc()
		}
		return nil
	}
	if i >= q.n {
		q.fill(i + 1)
		if i >= q.n {
			if q.obs != nil {
				q.obs.PeekMiss.Inc()
			}
			return nil
		}
	}
	avail := q.n - i
	if avail > max {
		avail = max
	}
	start := (q.head + i) & (len(q.buf) - 1)
	end := start + avail
	if end > len(q.buf) {
		end = len(q.buf)
	}
	return q.buf[start:end]
}

// Len returns the number of currently buffered instructions.
func (q *Queue) Len() int { return q.n }

// Popped returns the number of instructions consumed so far. It is
// safe to call concurrently with Pop (the watchdog samples it).
func (q *Queue) Popped() uint64 { return q.popped.Load() }

// Lookahead returns the guaranteed fill target.
func (q *Queue) Lookahead() int { return q.lookahead }

// Cap returns the current ring capacity (exported for boundary tests).
func (q *Queue) Cap() int { return len(q.buf) }
