// Package queue implements the decoupling instruction queue between the
// functional and the performance simulator. The functional side runs
// ahead, filling the queue; the performance side consumes from it.
//
// The queue exposes the run-ahead to its consumer through Peek: the
// convergence-exploitation technique "exploits the fact that the
// functional model runs ahead of the performance model, so we can take
// a peek in the future correct-path instructions" (§III-C). The queue
// guarantees a configurable minimum lookahead by refilling from the
// producer on demand; near program end, Peek simply reports that fewer
// instructions remain (the paper's "skip the convergence check" case).
// A Peek deeper than the current ring grows it (power-of-two steps, up
// to MaxCapacity), so a deep convergence search is answered from the
// program rather than silently refused at an allocation boundary.
package queue

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// MaxLookahead is the largest accepted fill target, and MaxCapacity
// (its next power of two) the ceiling the ring can grow to. One DynInst
// is a few dozen bytes, so the ceiling bounds a single queue at low
// hundreds of MB — far beyond any configured lookahead (the sim layer
// derives ~2×ROB) but small enough that a runaway configuration fails
// up front with a typed fault instead of an allocation crash.
const (
	MaxLookahead = 1 << 22
	MaxCapacity  = 1 << 23
)

// Producer supplies dynamic instructions; ok is false at program end.
type Producer interface {
	Next() (trace.DynInst, bool)
}

// Queue is a lookahead buffer over a Producer. It is not safe for
// concurrent use; the parallel frontend mode wraps the producer, not
// the queue.
type Queue struct {
	src  Producer
	buf  []trace.DynInst // ring buffer; len is a power of two
	head int             // index of next instruction to pop
	n    int             // live entries
	done bool            // producer exhausted

	// lookahead is the fill target maintained before every Pop.
	lookahead int

	// obs is the optional instrumentation bundle (nil when disabled; the
	// handles inside are themselves nil-safe).
	obs *obs.QueueObs

	// popped is atomic so the stall watchdog can sample consumer
	// progress from its own goroutine; the queue itself remains
	// single-consumer.
	popped atomic.Uint64
}

// New creates a queue that keeps at least lookahead instructions
// buffered ahead of the consumer. A lookahead beyond MaxLookahead is
// rejected with a typed simerr.ErrConfig fault (deterministic, so the
// degradation ladder does not retry it).
func New(src Producer, lookahead int) (*Queue, error) {
	if lookahead < 1 {
		lookahead = 1
	}
	if lookahead > MaxLookahead {
		return nil, simerr.Config("sizing decoupling queue",
			fmt.Errorf("queue: lookahead %d exceeds maximum %d", lookahead, MaxLookahead))
	}
	cap_ := 1
	for cap_ < lookahead+1 {
		cap_ *= 2
	}
	return &Queue{src: src, buf: make([]trace.DynInst, cap_), lookahead: lookahead}, nil
}

// SetObs attaches the instrumentation bundle; nil detaches it. The
// uninstrumented hot path pays one nil check per operation.
func (q *Queue) SetObs(o *obs.QueueObs) { q.obs = o }

func (q *Queue) fill(target int) {
	if target > len(q.buf) {
		target = len(q.buf)
	}
	for !q.done && q.n < target {
		di, ok := q.src.Next()
		if !ok {
			q.done = true
			return
		}
		q.buf[(q.head+q.n)&(len(q.buf)-1)] = di
		q.n++
	}
}

// grow re-rings the buffer to the next power of two holding min
// entries. It reports false — leaving the queue untouched — when min
// exceeds MaxCapacity.
func (q *Queue) grow(min int) bool {
	if min > MaxCapacity {
		return false
	}
	newCap := len(q.buf)
	for newCap < min {
		newCap *= 2
	}
	nbuf := make([]trace.DynInst, newCap)
	for j := 0; j < q.n; j++ {
		nbuf[j] = q.buf[(q.head+j)&(len(q.buf)-1)]
	}
	q.buf = nbuf
	q.head = 0
	if q.obs != nil {
		q.obs.Grows.Inc()
	}
	return true
}

// Pop removes and returns the next instruction; ok is false when the
// program has ended.
func (q *Queue) Pop() (trace.DynInst, bool) {
	q.fill(q.lookahead)
	if q.obs != nil {
		q.obs.Occupancy.Observe(uint64(q.n))
	}
	if q.n == 0 {
		return trace.DynInst{}, false
	}
	di := q.buf[q.head]
	q.buf[q.head] = trace.DynInst{} // release any attached WP stream
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	q.popped.Add(1)
	return di, true
}

// Peek returns the i-th instruction ahead (0 = the one the next Pop
// returns) without consuming it, refilling from the producer — and
// growing the ring, up to MaxCapacity — as needed. ok is false when
// fewer than i+1 instructions remain in the program, or when i is
// beyond the capacity ceiling (counted as a clipped peek).
func (q *Queue) Peek(i int) (trace.DynInst, bool) {
	if q.obs != nil {
		q.obs.PeekDepth.Observe(uint64(i))
	}
	if i >= len(q.buf) && !q.grow(i+1) {
		if q.obs != nil {
			if !q.done {
				// The producer may still have instructions; the refusal
				// is the ceiling's doing, not the program end's.
				q.obs.PeekClipped.Inc()
			}
			q.obs.PeekMiss.Inc()
		}
		return trace.DynInst{}, false
	}
	if i >= q.n {
		q.fill(i + 1)
		if i >= q.n {
			if q.obs != nil {
				q.obs.PeekMiss.Inc()
			}
			return trace.DynInst{}, false
		}
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)], true
}

// Len returns the number of currently buffered instructions.
func (q *Queue) Len() int { return q.n }

// Popped returns the number of instructions consumed so far. It is
// safe to call concurrently with Pop (the watchdog samples it).
func (q *Queue) Popped() uint64 { return q.popped.Load() }

// Lookahead returns the guaranteed fill target.
func (q *Queue) Lookahead() int { return q.lookahead }

// Cap returns the current ring capacity (exported for boundary tests).
func (q *Queue) Cap() int { return len(q.buf) }
