package queue

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/trace"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the queue's consumer-visible state: the live
// ring contents (in pop order), the pop counter, the producer-exhausted
// flag, and the lookahead target (as a configuration cross-check). The
// ring's physical layout (capacity, head index) is not state — the
// records are rewritten densely from index 0 on restore, which is
// observationally identical to the old ring for every Pop/Peek.
func (q *Queue) SaveState(w *checkpoint.Writer) {
	w.Section("queue/Queue", snapshotVersion)
	w.Uint32(trace.SnapshotVersion())
	w.Int(q.lookahead)
	w.Bool(q.done)
	w.Uint64(q.popped.Load())
	w.Int(q.n)
	for j := 0; j < q.n; j++ {
		q.buf[(q.head+j)&(len(q.buf)-1)].SaveState(w)
	}
}

// RestoreState overwrites the queue's state with the snapshot. The
// receiver must be built (New) with the same lookahead the snapshot was
// taken under — the buffered prefix plus the producer cursor the
// sim layer restores alongside only reproduce the run under the same
// fill discipline.
func (q *Queue) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("queue/Queue", snapshotVersion); err != nil {
		return err
	}
	if v := r.Uint32(); r.Err() == nil && v != trace.SnapshotVersion() {
		return fmt.Errorf("queue: snapshot record layout version %d, want %d", v, trace.SnapshotVersion())
	}
	la := r.Int()
	if r.Err() == nil && la != q.lookahead {
		return fmt.Errorf("queue: snapshot lookahead %d, configuration lookahead %d", la, q.lookahead)
	}
	q.done = r.Bool()
	q.popped.Store(r.Uint64())
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n < 0 || n > MaxCapacity {
		return fmt.Errorf("queue: snapshot holds %d buffered records", n)
	}
	if n >= len(q.buf) && !q.grow(n+1) {
		return fmt.Errorf("queue: snapshot's %d buffered records exceed capacity ceiling", n)
	}
	clear(q.buf)
	q.head = 0
	q.n = n
	for j := 0; j < n; j++ {
		if err := q.buf[j].RestoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
