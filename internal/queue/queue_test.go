package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// sliceProducer yields a fixed sequence.
type sliceProducer struct {
	seq []trace.DynInst
	i   int
	// calls counts Next invocations (to observe laziness).
	calls int
}

func (p *sliceProducer) Next() (trace.DynInst, bool) {
	p.calls++
	if p.i >= len(p.seq) {
		return trace.DynInst{}, false
	}
	d := p.seq[p.i]
	p.i++
	return d, true
}

func mkSeq(n int) []trace.DynInst {
	out := make([]trace.DynInst, n)
	for i := range out {
		out[i] = trace.DynInst{Seq: uint64(i), PC: uint64(0x1000 + 4*i)}
	}
	return out
}

func TestPopOrder(t *testing.T) {
	q := New(&sliceProducer{seq: mkSeq(100)}, 8)
	for i := 0; i < 100; i++ {
		d, ok := q.Pop()
		if !ok || d.Seq != uint64(i) {
			t.Fatalf("pop %d = %+v, %v", i, d, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop past end succeeded")
	}
	if q.Popped() != 100 {
		t.Errorf("Popped = %d", q.Popped())
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := New(&sliceProducer{seq: mkSeq(50)}, 16)
	for i := 0; i < 10; i++ {
		d, ok := q.Peek(i)
		if !ok || d.Seq != uint64(i) {
			t.Fatalf("peek %d = %+v, %v", i, d, ok)
		}
	}
	// Still pops from the beginning.
	if d, _ := q.Pop(); d.Seq != 0 {
		t.Error("peek consumed instructions")
	}
	// Peek indices shift after a pop.
	if d, _ := q.Peek(0); d.Seq != 1 {
		t.Error("peek after pop wrong")
	}
}

func TestPeekBeyondEnd(t *testing.T) {
	q := New(&sliceProducer{seq: mkSeq(5)}, 16)
	if _, ok := q.Peek(4); !ok {
		t.Error("peek at last failed")
	}
	if _, ok := q.Peek(5); ok {
		t.Error("peek past end succeeded")
	}
	// All five still poppable.
	for i := 0; i < 5; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
}

func TestPeekBeyondCapacity(t *testing.T) {
	q := New(&sliceProducer{seq: mkSeq(1000)}, 8) // capacity rounded to ≥ 9
	if _, ok := q.Peek(len(q.buf)); ok {
		t.Error("peek beyond ring capacity succeeded")
	}
}

func TestLookaheadMaintained(t *testing.T) {
	p := &sliceProducer{seq: mkSeq(100)}
	q := New(p, 10)
	q.Pop()
	// The queue refills to the lookahead target before each pop, so at
	// least lookahead-1 instructions remain buffered afterwards.
	if q.Len() < 9 {
		t.Errorf("lookahead after pop = %d, want >= 9", q.Len())
	}
	// The producer has been drawn on beyond the consumed instruction
	// (run-ahead), but not exhaustively.
	if p.i < 10 || p.i == len(p.seq) {
		t.Errorf("producer position = %d", p.i)
	}
}

func TestLookaheadFloor(t *testing.T) {
	q := New(&sliceProducer{seq: mkSeq(10)}, 0)
	if q.Lookahead() != 1 {
		t.Errorf("lookahead = %d, want 1", q.Lookahead())
	}
	if _, ok := q.Pop(); !ok {
		t.Error("pop failed")
	}
}

// TestQuickPeekPopAgreement: whatever Peek(i) returned is exactly what
// the (i+1)-th subsequent Pop returns.
func TestQuickPeekPopAgreement(t *testing.T) {
	f := func(n0, la0, i0 uint8) bool {
		n := int(n0)%200 + 20
		la := int(la0)%32 + 1
		i := int(i0) % 16
		q := New(&sliceProducer{seq: mkSeq(n)}, la)
		want, ok := q.Peek(i)
		if !ok {
			return true
		}
		var got trace.DynInst
		for k := 0; k <= i; k++ {
			got, _ = q.Pop()
		}
		return got.Seq == want.Seq && got.PC == want.PC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
