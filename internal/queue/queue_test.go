package queue

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// sliceProducer yields a fixed sequence.
type sliceProducer struct {
	seq []trace.DynInst
	i   int
	// calls counts Next invocations (to observe laziness).
	calls int
}

func (p *sliceProducer) Next() (trace.DynInst, bool) {
	p.calls++
	if p.i >= len(p.seq) {
		return trace.DynInst{}, false
	}
	d := p.seq[p.i]
	p.i++
	return d, true
}

func mkSeq(n int) []trace.DynInst {
	out := make([]trace.DynInst, n)
	for i := range out {
		out[i] = trace.DynInst{Seq: uint64(i), PC: uint64(0x1000 + 4*i)}
	}
	return out
}

func mustNew(t *testing.T, src Producer, lookahead int) *Queue {
	t.Helper()
	q, err := New(src, lookahead)
	if err != nil {
		t.Fatalf("New(lookahead=%d): %v", lookahead, err)
	}
	return q
}

func TestPopOrder(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(100)}, 8)
	for i := 0; i < 100; i++ {
		d, ok := q.Pop()
		if !ok || d.Seq != uint64(i) {
			t.Fatalf("pop %d = %+v, %v", i, d, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop past end succeeded")
	}
	if q.Popped() != 100 {
		t.Errorf("Popped = %d", q.Popped())
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(50)}, 16)
	for i := 0; i < 10; i++ {
		d, ok := q.Peek(i)
		if !ok || d.Seq != uint64(i) {
			t.Fatalf("peek %d = %+v, %v", i, d, ok)
		}
	}
	// Still pops from the beginning.
	if d, _ := q.Pop(); d.Seq != 0 {
		t.Error("peek consumed instructions")
	}
	// Peek indices shift after a pop.
	if d, _ := q.Peek(0); d.Seq != 1 {
		t.Error("peek after pop wrong")
	}
}

func TestPeekBeyondEnd(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(5)}, 16)
	if _, ok := q.Peek(4); !ok {
		t.Error("peek at last failed")
	}
	if _, ok := q.Peek(5); ok {
		t.Error("peek past end succeeded")
	}
	// All five still poppable.
	for i := 0; i < 5; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
}

// TestPeekBeyondCapacityGrows is the regression test at the old ring
// boundary: Peek at (and far past) the initial capacity used to be
// silently refused even though the producer had the instructions — a
// convergence search cliff invisible to the caller. The ring now grows.
func TestPeekBeyondCapacityGrows(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(1000)}, 8) // capacity rounded to ≥ 9
	oldCap := q.Cap()
	if oldCap >= 1000 {
		t.Fatalf("initial capacity %d defeats the test", oldCap)
	}
	// The exact old boundary: Peek(cap) previously returned false.
	d, ok := q.Peek(oldCap)
	if !ok || d.Seq != uint64(oldCap) {
		t.Fatalf("Peek(%d) at old capacity boundary = %+v, %v", oldCap, d, ok)
	}
	if q.Cap() <= oldCap {
		t.Errorf("ring did not grow: cap %d", q.Cap())
	}
	// Far past the original ring, still within the program.
	if d, ok := q.Peek(777); !ok || d.Seq != 777 {
		t.Fatalf("deep Peek(777) = %+v, %v", d, ok)
	}
	// Growth preserved FIFO order end to end.
	for i := 0; i < 1000; i++ {
		if d, ok := q.Pop(); !ok || d.Seq != uint64(i) {
			t.Fatalf("pop %d after growth = %+v, %v", i, d, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop past end succeeded")
	}
}

// TestPeekGrowthAfterWrap grows a ring whose head has wrapped, checking
// the re-ring copy preserves the logical order.
func TestPeekGrowthAfterWrap(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(400)}, 8)
	for i := 0; i < 100; i++ { // drive head well around the 16-slot ring
		q.Pop()
	}
	for i := 0; i < 200; i++ {
		if d, ok := q.Peek(i); !ok || d.Seq != uint64(100+i) {
			t.Fatalf("Peek(%d) after wrap+growth = %+v, %v; want Seq %d", i, d, ok, 100+i)
		}
	}
	for i := 100; i < 400; i++ {
		if d, ok := q.Pop(); !ok || d.Seq != uint64(i) {
			t.Fatalf("pop %d after wrap+growth = %+v, %v", i, d, ok)
		}
	}
}

// TestPeekClipAtCeiling: a Peek beyond MaxCapacity is refused without
// growing and counted as clipped when the producer still had more.
func TestPeekClipAtCeiling(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(32)}, 8)
	var qo obs.QueueObs
	reg := obs.NewRegistry()
	qo.PeekMiss = reg.Counter("miss")
	qo.PeekClipped = reg.Counter("clip")
	qo.Grows = reg.Counter("grow")
	q.SetObs(&qo)
	capBefore := q.Cap()
	if _, ok := q.Peek(MaxCapacity); ok {
		t.Fatal("Peek at the capacity ceiling succeeded")
	}
	if q.Cap() != capBefore {
		t.Errorf("refused peek still grew the ring to %d", q.Cap())
	}
	if qo.PeekClipped.Value() != 1 || qo.PeekMiss.Value() != 1 || qo.Grows.Value() != 0 {
		t.Errorf("clip=%d miss=%d grow=%d, want 1/1/0",
			qo.PeekClipped.Value(), qo.PeekMiss.Value(), qo.Grows.Value())
	}
	// Past program end (producer exhausted) is a miss, not a clip.
	if _, ok := q.Peek(100); ok {
		t.Fatal("peek past program end succeeded")
	}
	if qo.PeekClipped.Value() != 1 {
		t.Errorf("end-of-program miss counted as clipped")
	}
}

// TestNewLookaheadClamp: an absurd lookahead is a typed, deterministic
// configuration fault — not an allocation crash or an infinite sizing
// loop — and the degradation ladder must not classify it recoverable.
func TestNewLookaheadClamp(t *testing.T) {
	if _, err := New(&sliceProducer{}, MaxLookahead); err != nil {
		t.Errorf("New at MaxLookahead rejected: %v", err)
	}
	_, err := New(&sliceProducer{}, MaxLookahead+1)
	if err == nil {
		t.Fatal("New beyond MaxLookahead succeeded")
	}
	if !errors.Is(err, simerr.ErrConfig) {
		t.Errorf("err = %v, want simerr.ErrConfig", err)
	}
	var f *simerr.Fault
	if !errors.As(err, &f) {
		t.Errorf("err is not a *simerr.Fault: %T", err)
	}
}

// TestObsHooks: occupancy and peek-depth sampling fire per operation.
func TestObsHooks(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(100)}, 8)
	reg := obs.NewRegistry()
	qo := obs.QueueObs{
		Occupancy: reg.Histogram("occ"),
		PeekDepth: reg.Histogram("depth"),
		PeekMiss:  reg.Counter("miss"),
		Grows:     reg.Counter("grow"),
	}
	q.SetObs(&qo)
	q.Pop()
	q.Pop()
	q.Peek(3)
	q.Peek(50) // grows the 16-slot ring
	if qo.Occupancy.Count() != 2 {
		t.Errorf("occupancy samples = %d, want 2", qo.Occupancy.Count())
	}
	if qo.PeekDepth.Count() != 2 {
		t.Errorf("peek depth samples = %d, want 2", qo.PeekDepth.Count())
	}
	if qo.Grows.Value() != 1 {
		t.Errorf("grows = %d, want 1", qo.Grows.Value())
	}
	if qo.PeekMiss.Value() != 0 {
		t.Errorf("miss = %d, want 0", qo.PeekMiss.Value())
	}
}

func TestLookaheadMaintained(t *testing.T) {
	p := &sliceProducer{seq: mkSeq(100)}
	q := mustNew(t, p, 10)
	q.Pop()
	// The queue refills to the lookahead target before each pop, so at
	// least lookahead-1 instructions remain buffered afterwards.
	if q.Len() < 9 {
		t.Errorf("lookahead after pop = %d, want >= 9", q.Len())
	}
	// The producer has been drawn on beyond the consumed instruction
	// (run-ahead), but not exhaustively.
	if p.i < 10 || p.i == len(p.seq) {
		t.Errorf("producer position = %d", p.i)
	}
}

func TestLookaheadFloor(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(10)}, 0)
	if q.Lookahead() != 1 {
		t.Errorf("lookahead = %d, want 1", q.Lookahead())
	}
	if _, ok := q.Pop(); !ok {
		t.Error("pop failed")
	}
}

// TestPeekAcrossWrapAround drives head around the ring several times and
// verifies the full peek window stays coherent at every position.
func TestPeekAcrossWrapAround(t *testing.T) {
	const la = 8
	q := mustNew(t, &sliceProducer{seq: mkSeq(300)}, la) // capacity 16 < 300: head must wrap
	for popped := 0; popped < 280; popped++ {
		// The peek window ahead of the consumer always reports the
		// upcoming sequence numbers, regardless of where head sits.
		for i := 0; i < la; i++ {
			d, ok := q.Peek(i)
			if !ok || d.Seq != uint64(popped+i) {
				t.Fatalf("after %d pops, Peek(%d) = %+v, %v; want Seq %d",
					popped, i, d, ok, popped+i)
			}
		}
		if d, ok := q.Pop(); !ok || d.Seq != uint64(popped) {
			t.Fatalf("pop %d = %+v, %v", popped, d, ok)
		}
	}
}

// TestPeekPastTailNearEnd exercises the program-end boundary: as the
// producer drains, Peek(i) reports exactly how many instructions remain
// (the paper's "skip the convergence check" case) and never invents
// entries past the tail.
func TestPeekPastTailNearEnd(t *testing.T) {
	const n = 12
	q := mustNew(t, &sliceProducer{seq: mkSeq(n)}, 16) // capacity 32 ≥ n: false means end, not ring limit
	for popped := 0; popped < n; popped++ {
		remaining := n - popped
		for i := 0; i < remaining; i++ {
			if d, ok := q.Peek(i); !ok || d.Seq != uint64(popped+i) {
				t.Fatalf("after %d pops, Peek(%d) = %+v, %v", popped, i, d, ok)
			}
		}
		// One past the tail (and far past it) must report false without
		// disturbing the queue.
		if _, ok := q.Peek(remaining); ok {
			t.Fatalf("after %d pops, Peek(%d) past tail succeeded", popped, remaining)
		}
		if _, ok := q.Peek(remaining + 7); ok {
			t.Fatalf("after %d pops, Peek(%d) far past tail succeeded", popped, remaining+7)
		}
		if d, ok := q.Pop(); !ok || d.Seq != uint64(popped) {
			t.Fatalf("pop %d after boundary peeks = %+v, %v", popped, d, ok)
		}
	}
	if _, ok := q.Peek(0); ok {
		t.Error("Peek(0) on a drained queue succeeded")
	}
}

// TestPeekAfterSquashBurst models the consumer-side pattern after a
// pipeline squash: the core discards its in-flight wrong-path work and
// drains a burst of correct-path instructions from the queue, then peeks
// ahead again for the next convergence check. The run-ahead window must
// pick up exactly where the burst left off.
func TestPeekAfterSquashBurst(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(500)}, 16)
	next := uint64(0)
	bursts := []int{1, 31, 2, 17, 64, 5, 33} // crosses the ring boundary repeatedly
	for _, burst := range bursts {
		// Pre-burst peek, as the convergence check does.
		if d, ok := q.Peek(0); !ok || d.Seq != next {
			t.Fatalf("Peek(0) before burst = %+v, %v; want Seq %d", d, ok, next)
		}
		for k := 0; k < burst; k++ {
			d, ok := q.Pop()
			if !ok || d.Seq != next {
				t.Fatalf("burst pop = %+v, %v; want Seq %d", d, ok, next)
			}
			next++
		}
		// Post-burst window: contiguous continuation, no duplicates and
		// no skips.
		for i := 0; i < 16; i++ {
			if d, ok := q.Peek(i); !ok || d.Seq != next+uint64(i) {
				t.Fatalf("Peek(%d) after burst of %d = %+v, %v; want Seq %d",
					i, burst, d, ok, next+uint64(i))
			}
		}
	}
}

// TestQuickPeekPopAgreement: whatever Peek(i) returned is exactly what
// the (i+1)-th subsequent Pop returns.
func TestQuickPeekPopAgreement(t *testing.T) {
	f := func(n0, la0, i0 uint8) bool {
		n := int(n0)%200 + 20
		la := int(la0)%32 + 1
		i := int(i0) % 16
		q := mustNew(t, &sliceProducer{seq: mkSeq(n)}, la)
		want, ok := q.Peek(i)
		if !ok {
			return true
		}
		var got trace.DynInst
		for k := 0; k <= i; k++ {
			got, _ = q.Pop()
		}
		return got.Seq == want.Seq && got.PC == want.PC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// sliceBatchProducer is sliceProducer plus the batched refill
// capability, with both call counts observable.
type sliceBatchProducer struct {
	sliceProducer
	batchCalls int
}

func (p *sliceBatchProducer) NextBatch(dst []trace.DynInst) int {
	p.batchCalls++
	n := copy(dst, p.seq[p.i:])
	p.i += n
	return n
}

func TestPopBatchOrder(t *testing.T) {
	for _, batched := range []bool{false, true} {
		var src Producer = &sliceProducer{seq: mkSeq(100)}
		if batched {
			src = &sliceBatchProducer{sliceProducer: sliceProducer{seq: mkSeq(100)}}
		}
		q := mustNew(t, src, 8)
		dst := make([]trace.DynInst, 7)
		next := uint64(0)
		for {
			n := q.PopBatch(dst)
			if n == 0 {
				break
			}
			for _, d := range dst[:n] {
				if d.Seq != next {
					t.Fatalf("batched=%v: got Seq %d, want %d", batched, d.Seq, next)
				}
				next++
			}
		}
		if next != 100 {
			t.Fatalf("batched=%v: consumed %d records, want 100", batched, next)
		}
		if q.Popped() != 100 {
			t.Errorf("batched=%v: Popped = %d", batched, q.Popped())
		}
	}
}

// TestPopBatchExitStop: a batch stops after (and includes) an Exit
// record; records queued beyond the exit stay buffered, exactly what a
// per-instruction consumer would leave behind.
func TestPopBatchExitStop(t *testing.T) {
	seq := mkSeq(20)
	seq[5].Exit = true
	q := mustNew(t, &sliceProducer{seq: seq}, 16)
	dst := make([]trace.DynInst, 12)
	n := q.PopBatch(dst)
	if n != 6 {
		t.Fatalf("PopBatch across an Exit = %d records, want 6", n)
	}
	if !dst[5].Exit {
		t.Error("batch does not end with the Exit record")
	}
	for i, d := range dst[:n] {
		if d.Seq != uint64(i) {
			t.Errorf("record %d: Seq = %d", i, d.Seq)
		}
	}
	// The tail of the program is still there.
	if d, ok := q.Pop(); !ok || d.Seq != 6 {
		t.Errorf("pop after Exit-stopped batch = %+v, %v; want Seq 6", d, ok)
	}
}

// TestPopBatchPullParity: PopBatch(m) leaves the producer at exactly
// the position m successive Pops would — the invariant that keeps
// FunctionalInsts (and thus every downstream statistic) bit-identical
// between batch sizes.
func TestPopBatchPullParity(t *testing.T) {
	const total, la = 300, 16
	for _, m := range []int{1, 2, 7, 16, 17, 64} {
		pa := &sliceProducer{seq: mkSeq(total)}
		pb := &sliceProducer{seq: mkSeq(total)}
		qa := mustNew(t, pa, la)
		qb := mustNew(t, pb, la)
		dst := make([]trace.DynInst, m)
		for step := 0; ; step++ {
			// A batch may come up short of m (at most a lookahead's worth is
			// buffered per call); parity holds per record consumed, so drive
			// the reference queue by exactly the n records the batch popped.
			n := qa.PopBatch(dst)
			for k := 0; k < n; k++ {
				if _, ok := qb.Pop(); !ok {
					t.Fatalf("m=%d step %d: reference Pop %d/%d failed", m, step, k, n)
				}
			}
			if n == 0 {
				if _, ok := qb.Pop(); ok {
					t.Fatalf("m=%d step %d: batch ended but reference still pops", m, step)
				}
			}
			if pa.i != pb.i {
				t.Fatalf("m=%d step %d: producer positions diverge: batch %d, per-inst %d", m, step, pa.i, pb.i)
			}
			if qa.Len() != qb.Len() {
				t.Fatalf("m=%d step %d: queue depths diverge: batch %d, per-inst %d", m, step, qa.Len(), qb.Len())
			}
			if n == 0 {
				break
			}
		}
		if qa.Popped() != qb.Popped() || qa.Popped() != total {
			t.Errorf("m=%d: popped %d vs %d, want %d", m, qa.Popped(), qb.Popped(), total)
		}
	}
}

// TestPeekWindowMatchesPeek: walking windows at every start index
// yields exactly the records Peek reports, one wrap-bounded segment at
// a time.
func TestPeekWindowMatchesPeek(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(120)}, 32)
	for popped := 0; popped+32 < 120; popped++ {
		// Windowed walk over the next 32 records.
		i := 0
		for i < 32 {
			w := q.PeekWindow(i, 32-i)
			if len(w) == 0 {
				t.Fatalf("after %d pops, empty window at %d", popped, i)
			}
			for j, d := range w {
				want, ok := q.Peek(i + j)
				if !ok || d.Seq != want.Seq {
					t.Fatalf("after %d pops, window[%d+%d] Seq %d != Peek %d (ok=%v)",
						popped, i, j, d.Seq, want.Seq, ok)
				}
			}
			i += len(w)
		}
		q.Pop()
	}
}

// TestPeekWindowEndAndCeiling mirrors Peek's boundary contract: an
// empty window means program end past i or the capacity ceiling, with
// the same miss/clip accounting.
func TestPeekWindowEndAndCeiling(t *testing.T) {
	q := mustNew(t, &sliceProducer{seq: mkSeq(10)}, 8)
	reg := obs.NewRegistry()
	qo := obs.QueueObs{
		PeekDepth:   reg.Histogram("depth"),
		PeekMiss:    reg.Counter("miss"),
		PeekClipped: reg.Counter("clip"),
		Grows:       reg.Counter("grow"),
	}
	q.SetObs(&qo)
	// A window only refills to i+1 (Peek parity), so on a cold queue it
	// returns the single record that pull made available...
	if w := q.PeekWindow(6, 32); len(w) != 1 || w[0].Seq != 6 {
		t.Fatalf("cold window = %d records, want exactly 1 (refill parity)", len(w))
	}
	// ...and serves everything already buffered once a deeper peek has
	// pulled the rest of the program in.
	q.Peek(9)
	w := q.PeekWindow(6, 32)
	if len(w) != 4 || w[0].Seq != 6 {
		t.Fatalf("buffered window near end = %d records starting %d, want 4 starting 6", len(w), w[0].Seq)
	}
	// Past program end: empty, counted as a miss but not clipped.
	if w := q.PeekWindow(10, 4); w != nil {
		t.Errorf("window past end = %d records", len(w))
	}
	if qo.PeekMiss.Value() != 1 || qo.PeekClipped.Value() != 0 {
		t.Errorf("miss=%d clip=%d after end-of-program window, want 1/0",
			qo.PeekMiss.Value(), qo.PeekClipped.Value())
	}
	// Beyond the capacity ceiling on a fresh, still-producing queue:
	// refused without growing, counted clipped.
	q2 := mustNew(t, &sliceProducer{seq: mkSeq(64)}, 8)
	q2.SetObs(&qo)
	if w := q2.PeekWindow(MaxCapacity, 1); w != nil {
		t.Error("window at the capacity ceiling succeeded")
	}
	if qo.PeekClipped.Value() != 1 {
		t.Errorf("clip=%d after ceiling window, want 1", qo.PeekClipped.Value())
	}
}

// syntheticProducer emits an endless arithmetic instruction stream
// without allocating — the backdrop for allocation gates.
type syntheticProducer struct {
	seq uint64
}

func (p *syntheticProducer) Next() (trace.DynInst, bool) {
	var d trace.DynInst
	d.Seq = p.seq
	d.PC = 0x1000 + 4*p.seq
	p.seq++
	return d, true
}

func (p *syntheticProducer) NextBatch(dst []trace.DynInst) int {
	for i := range dst {
		dst[i] = trace.DynInst{Seq: p.seq, PC: 0x1000 + 4*p.seq}
		p.seq++
	}
	return len(dst)
}

// TestPopBatchAllocs pins the steady-state allocation count of the
// batched hot path at zero: once the ring is sized, draining lanes
// through PopBatch (with batched refills behind it) must not allocate.
func TestPopBatchAllocs(t *testing.T) {
	q := mustNew(t, &syntheticProducer{}, 256)
	dst := make([]trace.DynInst, 64)
	q.PopBatch(dst) // prime the ring
	if avg := testing.AllocsPerRun(200, func() {
		if q.PopBatch(dst) != len(dst) {
			t.Fatal("short batch from an endless producer")
		}
	}); avg != 0 {
		t.Errorf("PopBatch steady state allocates %.1f/op, want 0", avg)
	}
}

// TestPeekWindowAllocs: steady-state windowed scans are allocation-free
// too (they only slice the ring).
func TestPeekWindowAllocs(t *testing.T) {
	q := mustNew(t, &syntheticProducer{}, 256)
	q.Pop() // prime
	if avg := testing.AllocsPerRun(200, func() {
		i := 0
		for i < 128 {
			w := q.PeekWindow(i, 128-i)
			if len(w) == 0 {
				t.Fatal("empty window from an endless producer")
			}
			i += len(w)
		}
	}); avg != 0 {
		t.Errorf("PeekWindow steady state allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkPop quantifies the disabled-observability fix: a nil bundle
// skips hook dispatch entirely, while a bundle of nil handles (what
// trace-only runs used to install) still pays per-pop dynamic calls.
// The sim layer now detaches such bundles (obs.QueueObs.Enabled), so
// only instrumented runs take the slower row.
func BenchmarkPop(b *testing.B) {
	bench := func(b *testing.B, o *obs.QueueObs) {
		q, err := New(&syntheticProducer{}, 256)
		if err != nil {
			b.Fatal(err)
		}
		q.SetObs(o)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Pop()
		}
	}
	b.Run("obs=nil", func(b *testing.B) { bench(b, nil) })
	b.Run("obs=nil-handles", func(b *testing.B) { bench(b, &obs.QueueObs{}) })
	reg := obs.NewRegistry()
	b.Run("obs=live", func(b *testing.B) {
		bench(b, &obs.QueueObs{
			Occupancy: reg.Histogram("occ"),
			PeekDepth: reg.Histogram("depth"),
		})
	})
}

// BenchmarkPopBatch measures the lane-based drain against per-record
// Pop at the same pull discipline.
func BenchmarkPopBatch(b *testing.B) {
	q, err := New(&syntheticProducer{}, 256)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]trace.DynInst, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(dst) {
		q.PopBatch(dst)
	}
}
