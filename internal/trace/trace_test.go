package trace

import (
	"testing"

	"repro/internal/isa"
)

func TestPredicates(t *testing.T) {
	none := isa.RegNone
	ld := DynInst{In: isa.Inst{Op: isa.OpLd, Rd: isa.A0, Rs1: isa.A1, Rs2: none, Rs3: none}}
	if !ld.IsMem() || ld.IsControl() {
		t.Error("load predicates wrong")
	}
	br := DynInst{In: isa.Inst{Op: isa.OpBne, Rd: none, Rs1: isa.A0, Rs2: isa.A1, Rs3: none}}
	if br.IsMem() || !br.IsControl() {
		t.Error("branch predicates wrong")
	}
	jr := DynInst{In: isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.RA, Rs2: none, Rs3: none}}
	if !jr.IsControl() {
		t.Error("jalr not control")
	}
	add := DynInst{In: isa.Inst{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: none}}
	if add.IsMem() || add.IsControl() {
		t.Error("alu predicates wrong")
	}
}
