package trace

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/isa"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes one dynamic record, including the decoded
// instruction and any attached wpemul wrong-path excursion (recursion
// is one level deep by construction: WP records never carry WP).
// Records are only checkpointed while in flight in the decoupling
// queue, so no per-record section header is written; the queue frames
// the batch.
func (d *DynInst) SaveState(w *checkpoint.Writer) {
	w.Uint64(d.Seq)
	w.Uint64(d.PC)
	w.Byte(byte(d.In.Op))
	w.Byte(byte(d.In.Rd))
	w.Byte(byte(d.In.Rs1))
	w.Byte(byte(d.In.Rs2))
	w.Byte(byte(d.In.Rs3))
	w.Int64(d.In.Imm)
	w.Uint64(d.In.Target)
	w.Uint64(d.MemAddr)
	w.Bool(d.HasAddr)
	w.Bool(d.Recovered)
	w.Bool(d.Taken)
	w.Uint64(d.NextPC)
	w.Bool(d.WrongPath)
	w.Bool(d.Exit)
	w.Uint64(uint64(len(d.WP)))
	for i := range d.WP {
		d.WP[i].SaveState(w)
	}
}

// RestoreState overwrites the record with the snapshot.
func (d *DynInst) RestoreState(r *checkpoint.Reader) error {
	d.Seq = r.Uint64()
	d.PC = r.Uint64()
	d.In.Op = isa.Op(r.Byte())
	d.In.Rd = isa.Reg(r.Byte())
	d.In.Rs1 = isa.Reg(r.Byte())
	d.In.Rs2 = isa.Reg(r.Byte())
	d.In.Rs3 = isa.Reg(r.Byte())
	d.In.Imm = r.Int64()
	d.In.Target = r.Uint64()
	d.MemAddr = r.Uint64()
	d.HasAddr = r.Bool()
	d.Recovered = r.Bool()
	d.Taken = r.Bool()
	d.NextPC = r.Uint64()
	d.WrongPath = r.Bool()
	d.Exit = r.Bool()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	const maxWP = 1 << 20 // sanity bound: a WP excursion is core-window sized
	if n > maxWP {
		return fmt.Errorf("trace: snapshot wrong-path excursion of %d records", n)
	}
	d.WP = nil
	if n > 0 {
		d.WP = make([]DynInst, n)
		for i := range d.WP {
			if err := d.WP[i].RestoreState(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}

// SnapshotVersion exposes the record layout version even though
// DynInst itself is frameless (the queue writes many records under its
// own section): the queue stamps this version alongside its own so a
// DynInst layout change still forces a visible bump in the snapshot.
func SnapshotVersion() uint32 { return snapshotVersion }
