// Package trace defines DynInst, the dynamic-instruction record that
// flows from the functional simulator to the performance simulator —
// the payload of the decoupling queue in functional-first simulation.
// It carries exactly the data the paper lists: instruction address,
// decoded instruction (type, input and output registers), data memory
// address, and branch outcome/target.
package trace

import "repro/internal/isa"

// DynInst is one dynamically executed (or reconstructed) instruction.
type DynInst struct {
	// Seq is the dynamic sequence number on the correct path. Wrong-path
	// records reuse the triggering branch's Seq.
	Seq uint64
	// PC is the instruction address.
	PC uint64
	// In is the decoded instruction.
	In isa.Inst

	// MemAddr is the effective data address for loads/stores; valid only
	// when HasAddr is true. Correct-path and functionally-emulated
	// wrong-path records always have HasAddr set for memory operations;
	// reconstructed wrong-path records only have it when the convergence
	// technique recovered the address.
	MemAddr uint64
	HasAddr bool
	// Recovered marks a wrong-path memory operation whose address was
	// recovered by convergence exploitation (for Table III statistics).
	Recovered bool

	// Taken is the actual direction of a conditional branch.
	Taken bool
	// NextPC is the PC of the next instruction actually executed
	// (target if taken, fall-through otherwise). For wrong-path records
	// it is the next PC along the wrong path.
	NextPC uint64

	// WrongPath marks instructions on a speculative wrong path.
	WrongPath bool

	// WP is the functionally emulated wrong path attached to a
	// mispredicted branch by the wpemul frontend; nil in all other modes.
	WP []DynInst

	// Exit marks the instruction that terminated the program (the exit
	// environment call).
	Exit bool
}

// IsMem reports whether the record is a data-memory operation.
func (d *DynInst) IsMem() bool { return d.In.Op.IsMem() }

// IsControl reports whether the record can redirect the PC.
func (d *DynInst) IsControl() bool { return d.In.Op.IsControl() }
