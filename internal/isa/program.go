package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is an assembled code image: a contiguous sequence of
// instructions starting at Base, an entry point, and the symbol table
// produced by the assembler. Data segments are laid out separately in
// the functional simulator's memory by the workload loader.
type Program struct {
	// Base is the address of Insts[0]. Instruction i lives at
	// Base + i*InstBytes.
	Base uint64
	// Entry is the PC at which execution starts.
	Entry uint64
	// Insts holds the decoded instructions.
	Insts []Inst
	// Symbols maps label names to addresses.
	Symbols map[string]uint64
}

// At returns the instruction at pc. ok is false if pc is outside the
// program or not instruction-aligned.
func (p *Program) At(pc uint64) (Inst, bool) {
	if pc < p.Base || (pc-p.Base)%InstBytes != 0 {
		return Inst{}, false
	}
	idx := (pc - p.Base) / InstBytes
	if idx >= uint64(len(p.Insts)) {
		return Inst{}, false
	}
	return p.Insts[idx], true
}

// Contains reports whether pc addresses an instruction of the program.
func (p *Program) Contains(pc uint64) bool {
	_, ok := p.At(pc)
	return ok
}

// End returns the first address past the last instruction.
func (p *Program) End() uint64 {
	return p.Base + uint64(len(p.Insts))*InstBytes
}

// Symbol returns the address of a label.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// MustSymbol returns the address of a label, panicking if absent. It is
// intended for workload construction code where a missing label is a
// programming error.
func (p *Program) MustSymbol(name string) uint64 {
	a, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: program has no symbol %q", name))
	}
	return a
}

// Disassemble renders the whole program with addresses and labels, for
// debugging and for the examples.
func (p *Program) Disassemble() string {
	// Iterate the symbol table in sorted-name order so the label lists
	// are built deterministically (map iteration order must never reach
	// output — enforced by cmd/wplint's determinism analyzer).
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	labels := make(map[uint64][]string)
	for _, name := range names {
		addr := p.Symbols[name]
		labels[addr] = append(labels[addr], name)
	}
	var b strings.Builder
	for i, in := range p.Insts {
		pc := p.Base + uint64(i)*InstBytes
		for _, name := range labels[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %08x:  %s\n", pc, in)
	}
	return b.String()
}
