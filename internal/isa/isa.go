// Package isa defines the instruction set architecture used by the
// simulator: the register file layout, the opcode space, instruction
// classes (which drive functional-unit selection and latency in the
// timing model), and the in-memory representation of decoded
// instructions.
//
// The ISA is a custom 64-bit load/store RISC, deliberately close to
// RISC-V in spirit: 32 integer registers (x0 hard-wired to zero), 32
// floating-point registers, fixed 4-byte instruction size, PC-relative
// conditional branches, and direct (jal) and indirect (jalr) jumps.
// Instructions are kept decoded (struct form); there is no binary
// encoding because nothing in the paper's techniques depends on one —
// the functional simulator, code cache and timing model all operate on
// decode information (address, type, registers), exactly the data the
// paper lists as what the performance simulator consumes.
package isa

import "fmt"

// Reg identifies an architectural register in a unified 64-entry space:
// 0..31 are the integer registers x0..x31, 32..63 are the floating-point
// registers f0..f31. A unified space keeps dependence tracking in the
// timing model and the convergence-technique independence check uniform.
type Reg uint8

// Register-file dimensions.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumRegs is the size of the unified register space.
	NumRegs = NumIntRegs + NumFPRegs
)

// RegNone marks an absent register operand.
const RegNone Reg = 0xFF

// Well-known integer registers (RISC-V-flavoured ABI names).
const (
	X0  Reg = iota // hard-wired zero
	RA             // x1: return address
	SP             // x2: stack pointer
	GP             // x3: global pointer
	TP             // x4: thread pointer
	T0             // x5
	T1             // x6
	T2             // x7
	S0             // x8
	S1             // x9
	A0             // x10: argument/return 0
	A1             // x11
	A2             // x12
	A3             // x13
	A4             // x14
	A5             // x15
	A6             // x16
	A7             // x17: syscall number
	S2             // x18
	S3             // x19
	S4             // x20
	S5             // x21
	S6             // x22
	S7             // x23
	S8             // x24
	S9             // x25
	S10            // x26
	S11            // x27
	T3             // x28
	T4             // x29
	T5             // x30
	T6             // x31
)

// F returns the unified-space register for floating-point register fN.
func F(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: invalid FP register f%d", n))
	}
	return Reg(NumIntRegs + n)
}

// X returns the unified-space register for integer register xN.
func X(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: invalid integer register x%d", n))
	}
	return Reg(n)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r != RegNone && r >= NumIntRegs }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

var intRegNames = [NumIntRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register ("a0", "f3", …).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r < NumIntRegs:
		return intRegNames[r]
	case r < NumRegs:
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Op is an operation code.
type Op uint8

// Opcode space. Grouped by class; Class() below relies on the grouping
// being kept in sync.
const (
	OpInvalid Op = iota

	// Integer ALU, register-register.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer ALU, register-immediate.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltiu
	OpLui

	// Integer multiply/divide.
	OpMul
	OpMulh
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Loads (integer destination).
	OpLd
	OpLw
	OpLwu
	OpLh
	OpLhu
	OpLb
	OpLbu
	// Load (FP destination).
	OpFld

	// Stores.
	OpSd
	OpSw
	OpSh
	OpSb
	OpFsd

	// Floating point arithmetic (double precision).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFmin
	OpFmax
	OpFneg
	OpFabs
	OpFmadd // rd = rs1*rs2 + rs3 (fused, single rounding)

	// FP <-> integer moves and conversions.
	OpFcvtDL // int64 -> double
	OpFcvtLD // double -> int64 (truncating)
	OpFmvXD  // move raw bits fp -> int
	OpFmvDX  // move raw bits int -> fp

	// FP comparisons (integer destination).
	OpFeq
	OpFlt
	OpFle

	// Conditional branches (PC-relative; assembler stores absolute target).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Jumps.
	OpJal  // rd = pc+4; pc = Target (direct call / unconditional jump)
	OpJalr // rd = pc+4; pc = (rs1 + imm) & ^1 (indirect call / return)

	// System.
	OpEcall // environment call: a7 = code, a0.. = args
	OpNop

	opMax // sentinel
)

// Class buckets opcodes by the pipeline resource they use. The timing
// model maps classes to functional units and latencies; the wrong-path
// reconstruction techniques use classes to know which instructions touch
// memory or redirect control flow.
type Class uint8

const (
	ClassInvalid Class = iota
	ClassALU           // simple integer ops
	ClassMul           // integer multiply
	ClassDiv           // integer divide/remainder (unpipelined)
	ClassFPAdd         // FP add/sub/compare/convert/move
	ClassFPMul         // FP multiply / fused multiply-add
	ClassFPDiv         // FP divide / sqrt (unpipelined)
	ClassLoad
	ClassStore
	ClassBranch  // conditional branch
	ClassJump    // direct jump / call
	ClassJumpInd // indirect jump / return
	ClassSyscall // serializing environment call
	ClassNop
)

var classNames = [...]string{
	ClassInvalid: "invalid",
	ClassALU:     "alu",
	ClassMul:     "mul",
	ClassDiv:     "div",
	ClassFPAdd:   "fpadd",
	ClassFPMul:   "fpmul",
	ClassFPDiv:   "fpdiv",
	ClassLoad:    "load",
	ClassStore:   "store",
	ClassBranch:  "branch",
	ClassJump:    "jump",
	ClassJumpInd: "jumpind",
	ClassSyscall: "syscall",
	ClassNop:     "nop",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

var opClass = [opMax]Class{
	OpAdd: ClassALU, OpSub: ClassALU, OpAnd: ClassALU, OpOr: ClassALU,
	OpXor: ClassALU, OpSll: ClassALU, OpSrl: ClassALU, OpSra: ClassALU,
	OpSlt: ClassALU, OpSltu: ClassALU,
	OpAddi: ClassALU, OpAndi: ClassALU, OpOri: ClassALU, OpXori: ClassALU,
	OpSlli: ClassALU, OpSrli: ClassALU, OpSrai: ClassALU, OpSlti: ClassALU,
	OpSltiu: ClassALU, OpLui: ClassALU,
	OpMul: ClassMul, OpMulh: ClassMul,
	OpDiv: ClassDiv, OpDivu: ClassDiv, OpRem: ClassDiv, OpRemu: ClassDiv,
	OpLd: ClassLoad, OpLw: ClassLoad, OpLwu: ClassLoad, OpLh: ClassLoad,
	OpLhu: ClassLoad, OpLb: ClassLoad, OpLbu: ClassLoad, OpFld: ClassLoad,
	OpSd: ClassStore, OpSw: ClassStore, OpSh: ClassStore, OpSb: ClassStore,
	OpFsd:  ClassStore,
	OpFadd: ClassFPAdd, OpFsub: ClassFPAdd, OpFmin: ClassFPAdd,
	OpFmax: ClassFPAdd, OpFneg: ClassFPAdd, OpFabs: ClassFPAdd,
	OpFcvtDL: ClassFPAdd, OpFcvtLD: ClassFPAdd, OpFmvXD: ClassFPAdd,
	OpFmvDX: ClassFPAdd, OpFeq: ClassFPAdd, OpFlt: ClassFPAdd,
	OpFle:  ClassFPAdd,
	OpFmul: ClassFPMul, OpFmadd: ClassFPMul,
	OpFdiv: ClassFPDiv, OpFsqrt: ClassFPDiv,
	OpBeq: ClassBranch, OpBne: ClassBranch, OpBlt: ClassBranch,
	OpBge: ClassBranch, OpBltu: ClassBranch, OpBgeu: ClassBranch,
	OpJal:   ClassJump,
	OpJalr:  ClassJumpInd,
	OpEcall: ClassSyscall,
	OpNop:   ClassNop,
}

// Valid reports whether op is a real opcode (neither the OpInvalid
// sentinel nor out of range) — the decode-sanity check trace readers
// use to distinguish corruption from a legal stream.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// Class returns the pipeline class of the opcode.
func (op Op) Class() Class {
	if op < opMax {
		return opClass[op]
	}
	return ClassInvalid
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return op.Class() == ClassBranch }

// IsControl reports whether op can redirect the PC (branches and jumps).
func (op Op) IsControl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump || c == ClassJumpInd
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

var opNames = [opMax]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpSll: "sll", OpSrl: "srl", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpSrai: "srai", OpSlti: "slti",
	OpSltiu: "sltiu", OpLui: "lui",
	OpMul: "mul", OpMulh: "mulh", OpDiv: "div", OpDivu: "divu",
	OpRem: "rem", OpRemu: "remu",
	OpLd: "ld", OpLw: "lw", OpLwu: "lwu", OpLh: "lh", OpLhu: "lhu",
	OpLb: "lb", OpLbu: "lbu", OpFld: "fld",
	OpSd: "sd", OpSw: "sw", OpSh: "sh", OpSb: "sb", OpFsd: "fsd",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFsqrt: "fsqrt", OpFmin: "fmin", OpFmax: "fmax", OpFneg: "fneg",
	OpFabs: "fabs", OpFmadd: "fmadd",
	OpFcvtDL: "fcvt.d.l", OpFcvtLD: "fcvt.l.d", OpFmvXD: "fmv.x.d",
	OpFmvDX: "fmv.d.x",
	OpFeq:   "feq", OpFlt: "flt", OpFle: "fle",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr",
	OpEcall: "ecall", OpNop: "nop",
}

// String returns the assembler mnemonic of the opcode.
func (op Op) String() string {
	if op < opMax {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// MemBytes returns the data-memory access width in bytes of a load or
// store opcode, and 0 for anything else.
func (op Op) MemBytes() int {
	switch op {
	case OpLd, OpSd, OpFld, OpFsd:
		return 8
	case OpLw, OpLwu, OpSw:
		return 4
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLb, OpLbu, OpSb:
		return 1
	default:
		return 0
	}
}

// InstBytes is the fixed instruction size; PCs advance by InstBytes.
const InstBytes = 4
