package isa

import "fmt"

// Inst is one decoded instruction. The functional simulator executes
// Insts; the code cache stores exactly this decode information (address
// comes from the containing program), which is what the paper's
// instruction-reconstruction technique replays: "instruction address,
// instruction type, input and output registers".
type Inst struct {
	Op  Op
	Rd  Reg // destination; RegNone if none
	Rs1 Reg // first source; RegNone if none
	Rs2 Reg // second source; RegNone if none (store data register for stores)
	Rs3 Reg // third source (fmadd only); RegNone otherwise
	// Imm is the immediate operand: ALU immediate, load/store
	// displacement, or jalr offset.
	Imm int64
	// Target is the absolute target PC for conditional branches and
	// direct jumps, filled in by the assembler.
	Target uint64
}

// Nop is the canonical no-operation instruction.
var Nop = Inst{Op: OpNop, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone}

// Dest returns the destination register and whether the instruction
// writes one. Writes to x0 are architecturally discarded and reported
// as "no destination" so dependence tracking never chains through zero.
func (in Inst) Dest() (Reg, bool) {
	if in.Rd == RegNone || in.Rd == X0 {
		return RegNone, false
	}
	return in.Rd, true
}

// Sources appends the source registers of the instruction to dst and
// returns the extended slice. x0 is included (it is architecturally a
// source, always ready); RegNone slots are skipped.
func (in Inst) Sources(dst []Reg) []Reg {
	if in.Rs1 != RegNone {
		dst = append(dst, in.Rs1)
	}
	if in.Rs2 != RegNone {
		dst = append(dst, in.Rs2)
	}
	if in.Rs3 != RegNone {
		dst = append(dst, in.Rs3)
	}
	return dst
}

// BaseReg returns the address base register for memory operations.
func (in Inst) BaseReg() (Reg, bool) {
	if in.Op.IsMem() {
		return in.Rs1, true
	}
	return RegNone, false
}

// StoreDataReg returns the register holding the value to be stored.
func (in Inst) StoreDataReg() (Reg, bool) {
	if in.Op.IsStore() {
		return in.Rs2, true
	}
	return RegNone, false
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op.Class() {
	case ClassNop:
		return "nop"
	case ClassSyscall:
		return "ecall"
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, in.Rs1, in.Rs2, in.Target)
	case ClassJump:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Rd, in.Target)
	case ClassJumpInd:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	default:
		// ALU and FP classes render by operand shape below.
	}
	switch in.Op {
	case OpLui:
		return fmt.Sprintf("lui %s, %d", in.Rd, in.Imm)
	case OpFmadd:
		return fmt.Sprintf("fmadd %s, %s, %s, %s", in.Rd, in.Rs1, in.Rs2, in.Rs3)
	default:
		// Generic two/three-operand rendering below.
	}
	if in.Rs2 == RegNone && in.Rs1 != RegNone {
		// Immediate-form ALU and single-source FP ops.
		if hasImm(in.Op) {
			return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
}

func hasImm(op Op) bool {
	switch op {
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltiu:
		return true
	default:
		return false
	}
}
