package isa

import (
	"strings"
	"testing"
)

func TestRegisterNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{X0, "zero"}, {RA, "ra"}, {SP, "sp"}, {A0, "a0"}, {A7, "a7"},
		{T6, "t6"}, {S11, "s11"}, {F(0), "f0"}, {F(31), "f31"},
		{RegNone, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestRegisterSpaces(t *testing.T) {
	for i := 0; i < NumIntRegs; i++ {
		r := X(i)
		if r.IsFP() {
			t.Errorf("x%d classified as FP", i)
		}
		if !r.Valid() {
			t.Errorf("x%d not valid", i)
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := F(i)
		if !r.IsFP() {
			t.Errorf("f%d not classified as FP", i)
		}
		if !r.Valid() {
			t.Errorf("f%d not valid", i)
		}
	}
	if RegNone.Valid() {
		t.Error("RegNone reported valid")
	}
	if RegNone.IsFP() {
		t.Error("RegNone reported FP")
	}
}

func TestRegisterConstructorPanics(t *testing.T) {
	for _, fn := range []func(){func() { X(32) }, func() { X(-1) }, func() { F(32) }, func() { F(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			fn()
		}()
	}
}

func TestEveryOpcodeHasClassAndName(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		if op.Class() == ClassInvalid {
			t.Errorf("opcode %d (%s) has no class", op, op)
		}
		name := op.String()
		if name == "" || strings.HasPrefix(name, "op?") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !OpBeq.IsCondBranch() || OpJal.IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	for _, op := range []Op{OpBeq, OpBne, OpJal, OpJalr} {
		if !op.IsControl() {
			t.Errorf("%v not control", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLd, OpSd, OpEcall} {
		if op == OpLd || op == OpSd {
			continue
		}
		if op.IsControl() {
			t.Errorf("%v classified control", op)
		}
	}
	if !OpLd.IsLoad() || OpLd.IsStore() {
		t.Error("OpLd load/store predicates wrong")
	}
	if !OpSd.IsStore() || OpSd.IsLoad() {
		t.Error("OpSd load/store predicates wrong")
	}
	if !OpFld.IsMem() || !OpFsd.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]int{
		OpLd: 8, OpSd: 8, OpFld: 8, OpFsd: 8,
		OpLw: 4, OpLwu: 4, OpSw: 4,
		OpLh: 2, OpLhu: 2, OpSh: 2,
		OpLb: 1, OpLbu: 1, OpSb: 1,
		OpAdd: 0, OpBeq: 0,
	}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestInstDest(t *testing.T) {
	in := Inst{Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2, Rs3: RegNone}
	if rd, ok := in.Dest(); !ok || rd != A0 {
		t.Errorf("Dest() = %v,%v", rd, ok)
	}
	// Writes to x0 are architecturally void.
	in.Rd = X0
	if _, ok := in.Dest(); ok {
		t.Error("write to x0 reported as destination")
	}
	in.Rd = RegNone
	if _, ok := in.Dest(); ok {
		t.Error("RegNone reported as destination")
	}
}

func TestInstSources(t *testing.T) {
	in := Inst{Op: OpFmadd, Rd: F(0), Rs1: F(1), Rs2: F(2), Rs3: F(3)}
	srcs := in.Sources(nil)
	if len(srcs) != 3 || srcs[0] != F(1) || srcs[1] != F(2) || srcs[2] != F(3) {
		t.Errorf("Sources() = %v", srcs)
	}
	in = Inst{Op: OpAddi, Rd: A0, Rs1: A1, Rs2: RegNone, Rs3: RegNone}
	srcs = in.Sources(srcs[:0])
	if len(srcs) != 1 || srcs[0] != A1 {
		t.Errorf("Sources() = %v", srcs)
	}
}

func TestInstHelpers(t *testing.T) {
	ld := Inst{Op: OpLd, Rd: A0, Rs1: A1, Rs2: RegNone, Rs3: RegNone}
	if base, ok := ld.BaseReg(); !ok || base != A1 {
		t.Errorf("BaseReg() = %v,%v", base, ok)
	}
	if _, ok := ld.StoreDataReg(); ok {
		t.Error("load has a store data register")
	}
	sd := Inst{Op: OpSd, Rd: RegNone, Rs1: A1, Rs2: A2, Rs3: RegNone}
	if data, ok := sd.StoreDataReg(); !ok || data != A2 {
		t.Errorf("StoreDataReg() = %v,%v", data, ok)
	}
	add := Inst{Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2, Rs3: RegNone}
	if _, ok := add.BaseReg(); ok {
		t.Error("ALU op has a base register")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Nop, "nop"},
		{Inst{Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2, Rs3: RegNone}, "add a0, a1, a2"},
		{Inst{Op: OpAddi, Rd: A0, Rs1: A1, Rs2: RegNone, Rs3: RegNone, Imm: -4}, "addi a0, a1, -4"},
		{Inst{Op: OpLd, Rd: A0, Rs1: SP, Rs2: RegNone, Rs3: RegNone, Imm: 16}, "ld a0, 16(sp)"},
		{Inst{Op: OpSd, Rd: RegNone, Rs1: SP, Rs2: A0, Rs3: RegNone, Imm: 8}, "sd a0, 8(sp)"},
		{Inst{Op: OpBeq, Rd: RegNone, Rs1: A0, Rs2: X0, Rs3: RegNone, Target: 0x1000}, "beq a0, zero, 0x1000"},
		{Inst{Op: OpJal, Rd: RA, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone, Target: 0x2000}, "jal ra, 0x2000"},
		{Inst{Op: OpEcall, Rd: RegNone, Rs1: RegNone, Rs2: RegNone, Rs3: RegNone}, "ecall"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramAt(t *testing.T) {
	p := &Program{
		Base:  0x1000,
		Entry: 0x1000,
		Insts: []Inst{Nop, {Op: OpAdd, Rd: A0, Rs1: A1, Rs2: A2, Rs3: RegNone}},
	}
	if in, ok := p.At(0x1000); !ok || in.Op != OpNop {
		t.Error("At(base) failed")
	}
	if in, ok := p.At(0x1004); !ok || in.Op != OpAdd {
		t.Error("At(base+4) failed")
	}
	if _, ok := p.At(0x1008); ok {
		t.Error("At past end succeeded")
	}
	if _, ok := p.At(0x1002); ok {
		t.Error("At unaligned succeeded")
	}
	if _, ok := p.At(0xfff); ok {
		t.Error("At below base succeeded")
	}
	if p.End() != 0x1008 {
		t.Errorf("End() = %#x", p.End())
	}
	if !p.Contains(0x1004) || p.Contains(0x1008) {
		t.Error("Contains wrong")
	}
}

func TestProgramSymbols(t *testing.T) {
	p := &Program{Base: 0x1000, Symbols: map[string]uint64{"main": 0x1000}}
	if a, ok := p.Symbol("main"); !ok || a != 0x1000 {
		t.Error("Symbol lookup failed")
	}
	if _, ok := p.Symbol("nope"); ok {
		t.Error("missing symbol found")
	}
	if got := p.MustSymbol("main"); got != 0x1000 {
		t.Error("MustSymbol failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol should panic on missing symbol")
		}
	}()
	p.MustSymbol("nope")
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := &Program{
		Base:    0x1000,
		Insts:   []Inst{Nop, Nop},
		Symbols: map[string]uint64{"main": 0x1000, "next": 0x1004},
	}
	d := p.Disassemble()
	for _, want := range []string{"main:", "next:", "00001000", "nop"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}
