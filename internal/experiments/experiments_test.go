package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

func testRunner(t *testing.T) (*Runner, *strings.Builder) {
	t.Helper()
	return testRunnerJobs(t, 0)
}

func testRunnerJobs(t *testing.T, jobs int) (*Runner, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	r := NewRunner(Options{
		GAP:  gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec: specproxy.Params{Scale: 0.01, Seed: 99},
		Out:  &out,
		Jobs: jobs,
	})
	return r, &out
}

// TestAllExperiments runs every experiment at miniature scale and
// checks each produces its report skeleton. This exercises the full
// fan-out: every workload under every technique plus the ablations.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	r, out := testRunner(t)
	if err := r.All(); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"TABLE I", "FIG 1", "FIG 4 (left)", "FIG 4 (right)",
		"SIMULATION SPEED", "TABLE II", "TABLE III", "ABLATION",
		"bc", "bfs", "cc", "pr", "sssp", "tc",
		"hashloop", "streamtriad",
		"nowp", "instrec", "conv", "wpemul",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r, _ := testRunner(t)
	if err := r.Run("nonsense"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesRegistered(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Errorf("Names() returned %d entries, registry has %d", len(names), len(registry))
	}
	for _, want := range []string{"table1", "fig1", "fig4gap", "fig4spec", "table2", "table3", "speed", "ablation", "parallel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

// TestReportBytesIdenticalAcrossJobs: Options.Jobs may only change
// host wall-clock behaviour — the report text must be byte-identical
// between a serial and a parallel runner. The experiments chosen cover
// the prefetch path (fig1, table3) and the custom-configuration batch
// path (ablation); speed/parallel are excluded because they print wall
// clocks by design.
func TestReportBytesIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	exps := []string{"fig1", "table3", "ablation"}
	serial, serialOut := testRunnerJobs(t, 1)
	parallel, parallelOut := testRunnerJobs(t, 4)
	for _, exp := range exps {
		if err := serial.Run(exp); err != nil {
			t.Fatalf("jobs=1 %s: %v", exp, err)
		}
		if err := parallel.Run(exp); err != nil {
			t.Fatalf("jobs=4 %s: %v", exp, err)
		}
	}
	if serialOut.String() != parallelOut.String() {
		t.Errorf("report text differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestReportBytesIdenticalWithObs: attaching the observability stack
// to a runner must not change a byte of the report text — the registry
// and trace sink are side channels, never report inputs. The sweep must
// still leave a valid Perfetto trace and a populated metrics registry
// behind (the acceptance criterion's enabled half at the report level).
func TestReportBytesIdenticalWithObs(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	plain, plainOut := testRunner(t)
	if err := plain.Run("fig1"); err != nil {
		t.Fatal(err)
	}

	var observedOut strings.Builder
	var traceBuf bytes.Buffer
	reg := obs.NewRegistry()
	sink := obs.NewTraceSink(&traceBuf)
	observed := NewRunner(Options{
		GAP:     gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec:    specproxy.Params{Scale: 0.01, Seed: 99},
		Out:     &observedOut,
		Metrics: reg,
		Trace:   sink,
	})
	if err := observed.Run("fig1"); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	if plainOut.String() != observedOut.String() {
		t.Errorf("report text differs with observability attached:\n--- plain ---\n%s\n--- observed ---\n%s",
			plainOut.String(), observedOut.String())
	}
	if !json.Valid(traceBuf.Bytes()) {
		t.Error("sweep trace is not valid JSON")
	}
	snap := reg.Snapshot()
	if len(snap) == 0 {
		t.Error("metrics registry empty after an instrumented sweep")
	}
	// Every fig1 cell runs nowp and wpemul over the six GAP kernels;
	// each must have published exactly one run.
	for _, wl := range []string{"gap/bfs", "gap/cc"} {
		for _, tech := range []string{"nowp", "wpemul"} {
			key := obs.Key("sim_runs_total", wl, tech)
			if got := reg.Counter(key).Value(); got != 1 {
				t.Errorf("%s = %d, want 1", key, got)
			}
		}
	}
}

// TestResultMemoization: the second request for the same run must not
// simulate again (observable through pointer identity).
func TestResultMemoization(t *testing.T) {
	r, _ := testRunner(t)
	w, _ := gap.ByName("bfs", gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 20_000})
	a, err := r.result(w, Kinds[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.result(w, Kinds[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("result not memoized")
	}
}
