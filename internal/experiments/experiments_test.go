package experiments

import (
	"strings"
	"testing"

	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

func testRunner(t *testing.T) (*Runner, *strings.Builder) {
	t.Helper()
	return testRunnerJobs(t, 0)
}

func testRunnerJobs(t *testing.T, jobs int) (*Runner, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	r := NewRunner(Options{
		GAP:  gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec: specproxy.Params{Scale: 0.01, Seed: 99},
		Out:  &out,
		Jobs: jobs,
	})
	return r, &out
}

// TestAllExperiments runs every experiment at miniature scale and
// checks each produces its report skeleton. This exercises the full
// fan-out: every workload under every technique plus the ablations.
func TestAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	r, out := testRunner(t)
	if err := r.All(); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"TABLE I", "FIG 1", "FIG 4 (left)", "FIG 4 (right)",
		"SIMULATION SPEED", "TABLE II", "TABLE III", "ABLATION",
		"bc", "bfs", "cc", "pr", "sssp", "tc",
		"hashloop", "streamtriad",
		"nowp", "instrec", "conv", "wpemul",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r, _ := testRunner(t)
	if err := r.Run("nonsense"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesRegistered(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Errorf("Names() returned %d entries, registry has %d", len(names), len(registry))
	}
	for _, want := range []string{"table1", "fig1", "fig4gap", "fig4spec", "table2", "table3", "speed", "ablation", "parallel"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

// TestReportBytesIdenticalAcrossJobs: Options.Jobs may only change
// host wall-clock behaviour — the report text must be byte-identical
// between a serial and a parallel runner. The experiments chosen cover
// the prefetch path (fig1, table3) and the custom-configuration batch
// path (ablation); speed/parallel are excluded because they print wall
// clocks by design.
func TestReportBytesIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	exps := []string{"fig1", "table3", "ablation"}
	serial, serialOut := testRunnerJobs(t, 1)
	parallel, parallelOut := testRunnerJobs(t, 4)
	for _, exp := range exps {
		if err := serial.Run(exp); err != nil {
			t.Fatalf("jobs=1 %s: %v", exp, err)
		}
		if err := parallel.Run(exp); err != nil {
			t.Fatalf("jobs=4 %s: %v", exp, err)
		}
	}
	if serialOut.String() != parallelOut.String() {
		t.Errorf("report text differs between jobs=1 and jobs=4:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
			serialOut.String(), parallelOut.String())
	}
}

// TestResultMemoization: the second request for the same run must not
// simulate again (observable through pointer identity).
func TestResultMemoization(t *testing.T) {
	r, _ := testRunner(t)
	w, _ := gap.ByName("bfs", gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 20_000})
	a, err := r.result(w, Kinds[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.result(w, Kinds[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("result not memoized")
	}
}
