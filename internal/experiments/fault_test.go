package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// faultyRunner arms the full fault-tolerance layer and injects the
// acceptance scenario's three faults into the GAP sweep:
//
//   - bfs under wpemul: a forced producer panic (ErrWorkerPanic)
//   - cc under conv: a frozen producer (watchdog ErrStall)
//   - pr under instrec: a corrupt (mid-record truncated) trace tail
//
// Each injector keys on the *attempt's* technique, so the degraded
// retries run clean.
func faultyRunner(t *testing.T) (*Runner, *strings.Builder) {
	t.Helper()
	var out strings.Builder
	r := NewRunner(Options{
		GAP:        gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec:       specproxy.Params{Scale: 0.01, Seed: 99},
		Out:        &out,
		Jobs:       2,
		Watchdog:   500 * time.Millisecond,
		MaxRetries: 2,
		WrapSource: func(src sim.Source, w workloads.Workload, k wrongpath.Kind) sim.Source {
			switch {
			case w.Name == "bfs" && k == wrongpath.WPEmul:
				return sim.WrapSource(src, func(p queue.Producer) queue.Producer {
					return faultinject.PanicAt(p, 500, "injected sweep fault")
				})
			case w.Name == "cc" && k == wrongpath.Conv:
				return sim.WrapSource(src, func(p queue.Producer) queue.Producer {
					return faultinject.FreezeAt(p, 1000)
				})
			case w.Name == "pr" && k == wrongpath.InstRec:
				// Swap in a trace source over a mid-record-truncated
				// recording of the same workload: the corrupt-tail fault.
				src.Close()
				data := recordWorkloadTrace(t, w, 20_000)
				cut := faultinject.Truncate(data, int64(len(data)-3))
				rd, err := tracefile.NewReader(bytes.NewReader(cut))
				if err != nil {
					t.Fatal(err)
				}
				return sim.NewTraceSource(rd)
			}
			return src
		},
	})
	return r, &out
}

// recordWorkloadTrace records up to maxInsts of the workload into an
// in-memory trace.
func recordWorkloadTrace(t *testing.T, w workloads.Workload, maxInsts uint64) []byte {
	t.Helper()
	inst, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	fe := frontend.New(functional.New(inst.Prog, inst.Mem, inst.StackTop),
		frontend.WithMaxInstructions(maxInsts))
	var buf bytes.Buffer
	wr, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.Record(fe, wr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepSurvivesInjectedFaults is the acceptance scenario: with a
// corrupt trace tail, a forced worker panic, and a frozen producer all
// injected, the full GAP×techniques sweep (fig4gap fans out every cell)
// must complete with no crash; the faulted cells are retried-degraded
// and annotated, and every fault-free cell is bit-identical to a run
// without the fault-tolerance layer.
func TestSweepSurvivesInjectedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	clean, _ := testRunner(t)
	if err := clean.Run("fig4gap"); err != nil {
		t.Fatal(err)
	}
	faulty, out := faultyRunner(t)
	if err := faulty.Run("fig4gap"); err != nil {
		t.Fatalf("sweep did not survive injected faults: %v", err)
	}

	// The report annotates exactly the degraded cells.
	report := out.String()
	if !strings.Contains(report, "DEGRADED CELLS") {
		t.Error("report missing the degraded-cells footnote")
	}
	for _, cell := range []string{"gap/bfs/wpemul", "gap/cc/conv", "gap/pr/instrec"} {
		if !strings.Contains(report, cell) {
			t.Errorf("degraded cell %s not annotated in report", cell)
		}
	}

	// Faulted cells degraded as designed.
	type want struct {
		key       string
		requested wrongpath.Kind
		ranAs     wrongpath.Kind
	}
	for _, wnt := range []want{
		{"gap/bfs/wpemul", wrongpath.WPEmul, wrongpath.Conv},
		{"gap/cc/conv", wrongpath.Conv, wrongpath.InstRec},
		{"gap/pr/instrec", wrongpath.InstRec, wrongpath.InstRec}, // partial prefix, same rung
	} {
		res := faulty.cache[wnt.key]
		if res == nil {
			t.Fatalf("faulted cell %s missing from cache", wnt.key)
		}
		if !res.Degraded || res.WP != wnt.ranAs || res.RequestedWP != wnt.requested {
			t.Errorf("%s: degraded=%v WP=%v requested=%v, want degraded as %v",
				wnt.key, res.Degraded, res.WP, res.RequestedWP, wnt.ranAs)
		}
	}

	// Every fault-free cell bit-identical to the clean runner.
	faulted := map[string]bool{"gap/bfs/wpemul": true, "gap/cc/conv": true, "gap/pr/instrec": true}
	compared := 0
	for key, cres := range clean.cache {
		if faulted[key] {
			continue
		}
		fres := faulty.cache[key]
		if fres == nil {
			t.Errorf("fault-free cell %s missing from faulty runner", key)
			continue
		}
		if fres.Degraded || fres.Err != nil {
			t.Errorf("fault-free cell %s marked degraded (%v) or faulted (%v)", key, fres.Degraded, fres.Err)
		}
		if cres.Core != fres.Core || cres.Policy != fres.Policy {
			t.Errorf("fault-free cell %s differs with the fault layer armed", key)
		}
		compared++
	}
	if compared < 20 {
		t.Errorf("only %d fault-free cells compared — sweep did not fan out", compared)
	}
}

// TestCleanSweepByteIdenticalWithLayerArmed: arming watchdog + ladder
// without injecting anything must leave the report bytes untouched.
func TestCleanSweepByteIdenticalWithLayerArmed(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	plain, plainOut := testRunner(t)
	if err := plain.Run("fig1"); err != nil {
		t.Fatal(err)
	}
	var armedOut strings.Builder
	armed := NewRunner(Options{
		GAP:        gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec:       specproxy.Params{Scale: 0.01, Seed: 99},
		Out:        &armedOut,
		Watchdog:   time.Minute,
		MaxRetries: 2,
	})
	if err := armed.Run("fig1"); err != nil {
		t.Fatal(err)
	}
	if plainOut.String() != armedOut.String() {
		t.Errorf("armed-but-idle fault layer changed report bytes:\n--- plain ---\n%s\n--- armed ---\n%s",
			plainOut.String(), armedOut.String())
	}
}
