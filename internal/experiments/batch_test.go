package experiments

import (
	"strings"
	"testing"

	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

// TestBatchReportByteIdentical: the lane-size option threads down to
// every core the runner builds, and the rendered report — the
// paper-facing artifact — is byte-for-byte identical between the
// per-instruction and the batched pipeline.
func TestBatchReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature experiment sweep skipped in -short mode")
	}
	run := func(batch int) string {
		var out strings.Builder
		r := NewRunner(Options{
			GAP:   gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
			Spec:  specproxy.Params{Scale: 0.01, Seed: 99},
			Out:   &out,
			Batch: batch,
		})
		for _, exp := range []string{"fig1", "ablation"} {
			if err := r.Run(exp); err != nil {
				t.Fatalf("batch=%d %s: %v", batch, exp, err)
			}
		}
		return out.String()
	}
	perInst := run(1)
	batched := run(0)
	if perInst != batched {
		t.Errorf("report bytes differ between batch=1 and batched pipeline:\n--- per-instruction ---\n%s\n--- batched ---\n%s",
			perInst, batched)
	}
}
