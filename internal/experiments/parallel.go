package experiments

import (
	"repro/internal/sim"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// Parallel measures the functional-first decoupling speedup the paper
// describes in §II: "the decoupling of the functional and performance
// simulator enables them to run in parallel. An integrated simulator
// triggers instruction emulation one by one, leading to de facto
// sequential functional and performance simulation." The experiment
// runs the same simulations with the functional frontend synchronous
// (sequential, integrated-style pacing) and in its own goroutine, and
// reports the wall-clock speedup. Simulation results are bit-identical
// either way (asserted).
func (r *Runner) Parallel() error {
	r.printf("PARALLEL FRONTEND: decoupled functional/performance overlap speedup\n\n")
	r.printf("%-10s %-9s %12s %12s %9s\n", "bench", "model", "sync wall", "parallel", "speedup")
	for _, name := range []string{"bfs", "cc"} {
		w, _ := gap.ByName(name, r.opt.GAP)
		// Deliberate subset of wrongpath.Kinds(): one no-wrong-path
		// baseline, one cheap reconstruction technique, and the expensive
		// emulation reference are enough to show the overlap trend, and
		// every pair here is a timed serial run (Options.Jobs never
		// applies — wall clocks measured under contention are
		// meaningless), so each extra kind costs four timed simulations.
		for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv, wrongpath.WPEmul} {
			seq, err := r.runWith(w, sim.Config{Core: r.opt.Core, WP: k})
			if err != nil {
				return err
			}
			par, err := r.runWith(w, sim.Config{Core: r.opt.Core, WP: k, ParallelFrontend: true})
			if err != nil {
				return err
			}
			if seq.Core.Cycles != par.Core.Cycles {
				r.printf("WARNING: %s/%v parallel results diverge (%d vs %d cycles)\n",
					name, k, seq.Core.Cycles, par.Core.Cycles)
			}
			r.printf("%-10s %-9s %12v %12v %8.2fx\n", name, k,
				seq.Wall.Round(1_000_000), par.Wall.Round(1_000_000),
				float64(seq.Wall)/float64(par.Wall))
		}
	}
	r.printf("\nthe wpemul rows benefit most: the expensive functional wrong-path\n")
	r.printf("emulation overlaps with the performance simulation. when the\n")
	r.printf("functional side is cheap (nowp/conv), channel hand-off overhead can\n")
	r.printf("outweigh the overlap — the paper's speedup presumes a functional\n")
	r.printf("simulator (Pin on real binaries) far costlier than this interpreter.\n")
	return nil
}
