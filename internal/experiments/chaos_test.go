package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/simerr"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

// chaosOptions builds the miniature sweep configuration the chaos
// tests share. Every runner must use identical simulation parameters —
// the byte-identity claims below compare their reports directly.
func chaosOptions(out *strings.Builder, jobs int) Options {
	return Options{
		GAP:  gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec: specproxy.Params{Scale: 0.01, Seed: 99},
		Out:  out,
		Jobs: jobs,
	}
}

// TestChaosKillResumeReportByteIdentical is the sweep-level crash
// acceptance test: a sweep killed at a checkpoint boundary and re-run
// with -resume over the same checkpoint directory must produce a final
// report byte-identical to a sweep that was never interrupted — and
// enabling checkpointing at all must not change a byte either.
func TestChaosKillResumeReportByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature chaos sweep skipped in -short mode")
	}
	const exp = "fig1"

	// Uninterrupted reference, no checkpointing.
	var plainOut strings.Builder
	if err := NewRunner(chaosOptions(&plainOut, 1)).Run(exp); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted run with snapshots enabled: checkpointing must not
	// disturb the report.
	var ckptOut strings.Builder
	opt := chaosOptions(&ckptOut, 1)
	opt.CheckpointDir = t.TempDir()
	opt.CheckpointEvery = 10_000
	if err := NewRunner(opt).Run(exp); err != nil {
		t.Fatal(err)
	}
	if plainOut.String() != ckptOut.String() {
		t.Fatalf("enabling checkpointing changed the report:\n--- plain ---\n%s\n--- checkpointed ---\n%s",
			plainOut.String(), ckptOut.String())
	}

	// Killed run: cancel the sweep at the third snapshot write, from
	// inside the checkpoint hook — the same boundary a SIGINT or crash
	// lands on. Workers run concurrently so the hook must be atomic.
	dir := t.TempDir()
	var killedOut strings.Builder
	kopt := chaosOptions(&killedOut, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	kopt.Ctx = ctx
	kopt.CheckpointDir = dir
	kopt.CheckpointEvery = 10_000
	var writes atomic.Uint64
	kopt.OnCheckpoint = func(insts uint64, path string) {
		if writes.Add(1) == 3 {
			cancel()
		}
	}
	killer := NewRunner(kopt)
	err := killer.Run(exp)
	if !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("killed sweep returned %v, want ErrCanceled class", err)
	}
	if !killer.Faulted() {
		t.Fatal("killed sweep does not report Faulted")
	}
	if !strings.Contains(killedOut.String(), "INCOMPLETE CELLS") {
		t.Fatalf("killed sweep's flushed report lacks the INCOMPLETE footnote:\n%s", killedOut.String())
	}

	// Resumed run over the same directory: cells with snapshots restart
	// from them, cells without run from zero, and the report must be
	// byte-identical to the uninterrupted reference.
	var resumedOut strings.Builder
	ropt := chaosOptions(&resumedOut, 1)
	ropt.CheckpointDir = dir
	ropt.CheckpointEvery = 10_000
	ropt.Resume = true
	resumed := NewRunner(ropt)
	if err := resumed.Run(exp); err != nil {
		t.Fatal(err)
	}
	if resumed.Faulted() {
		t.Fatal("resumed sweep still reports Faulted")
	}
	if resumedOut.String() != plainOut.String() {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
			resumedOut.String(), plainOut.String())
	}
}

// TestChaosCancelBeforeStart: a context canceled before the sweep
// begins must skip every cell with a typed canceled fault, flush the
// footnote-bearing report, and leak nothing.
func TestChaosCancelBeforeStart(t *testing.T) {
	var out strings.Builder
	opt := chaosOptions(&out, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Ctx = ctx
	r := NewRunner(opt)
	err := r.Run("fig1")
	if !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("pre-canceled sweep returned %v, want ErrCanceled class", err)
	}
	if !r.Faulted() {
		t.Fatal("pre-canceled sweep does not report Faulted")
	}
	if !strings.Contains(out.String(), "INCOMPLETE CELLS") {
		t.Fatalf("pre-canceled sweep report lacks the INCOMPLETE footnote:\n%s", out.String())
	}
}
