// Package experiments regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the per-experiment index):
//
//	Fig. 1      error of no-wrong-path modeling for GAP
//	Table I     simulated core configuration
//	Fig. 4      error of nowp/instrec/conv for GAP and for the
//	            SPEC-proxy distribution
//	§V-B        simulation-speed comparison
//	Table II    wrong-path instructions executed, relative to correct path
//	Table III   convergence-technique low-level metrics
//
// plus the ablations DESIGN.md calls out (independence check off, ROB
// size sweep, memory-latency sweep).
//
// A Runner memoizes simulation results so experiments that share runs
// (Fig. 1 and Fig. 4 both need nowp and wpemul on GAP) pay for them
// once.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/specfp"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
	"repro/internal/wrongpath"
)

// Kinds lists the techniques in report order: the paper's four plus
// this reproduction's conv + wrong-path-branch-resolution extension.
// The canonical ordering lives in wrongpath.Kinds(), where wplint
// enforces completeness.
var Kinds = wrongpath.Kinds()

// approx lists the approximate techniques — every kind but the wpemul
// reference — for the per-benchmark error columns.
var approx = allBut(wrongpath.WPEmul)

// wpGen lists the techniques that generate wrong-path instructions —
// every kind but nowp — for Table II and the speed comparison.
var wpGen = allBut(wrongpath.NoWP)

func allBut(skip wrongpath.Kind) []wrongpath.Kind {
	var out []wrongpath.Kind
	for _, k := range wrongpath.Kinds() {
		if k != skip {
			out = append(out, k)
		}
	}
	return out
}

// Options configures a Runner.
type Options struct {
	// Core is the simulated core configuration (zero value: default).
	Core core.Config
	// GAP selects the GAP input scale (zero value: default).
	GAP gap.Params
	// Spec selects the SPEC-proxy scale (zero value: default).
	Spec specproxy.Params
	// Out receives the report text.
	Out io.Writer
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
	// Jobs is the batch-engine worker count for independent simulations
	// (0 = one per host core, 1 = serial). Report text is byte-identical
	// for any worker count; only wall-clock measurements vary, which is
	// why the speed and parallel experiments always run their
	// simulations serially regardless of Jobs.
	Jobs int
	// Watchdog arms the per-run stall watchdog with this progress
	// budget (see sim.Config.Watchdog). 0 disables.
	Watchdog time.Duration
	// MaxRetries arms the graceful-degradation ladder: a run that hits
	// a recoverable fault (unsupported capability, stall, recovered
	// panic) is retried up to this many technique rungs down
	// (wpemul→conv→instrec→nowp) and the report annotates the degraded
	// cell. 0 disables; faults then fail the cell with a typed error.
	MaxRetries int
	// WrapSource, when non-nil, wraps every standard-sweep source before
	// the run — the deterministic fault-injection hook (see
	// internal/faultinject). It receives the workload and the technique
	// of the current attempt, so an injector can target one cell and
	// stay silent on its degraded retries. Fault-free cells are
	// byte-identical whether or not a hook is installed.
	WrapSource func(src sim.Source, w workloads.Workload, k wrongpath.Kind) sim.Source
	// Metrics, when non-nil, receives every run's observability metrics
	// (labeled workload/technique, see internal/obs). Report text is
	// unaffected: metrics are written out of band by the caller.
	Metrics *obs.Registry
	// Trace, when non-nil, receives every run's cycle-event trace track.
	Trace *obs.TraceSink
	// Batch overrides the core's decoupling-queue lane size
	// (core.Config.Batch): 0 keeps the default, 1 forces
	// per-instruction consumption. Results are bit-identical at any
	// size; the knob exists for throughput comparisons.
	Batch int
	// Ctx cancels the sweep: once done, no new cell starts, in-flight
	// runs stop at their next lane boundary, the partial report stays
	// flushed, and canceled cells are annotated INCOMPLETE in the
	// footnote. nil means no cancellation.
	Ctx context.Context
	// CheckpointDir enables crash-safe sweeps: each cell snapshots its
	// complete simulation state into its own subdirectory
	// (dir/suite/workload/technique) every CheckpointEvery retired
	// instructions. A re-run over the same directory resumes every cell
	// from its latest snapshot and produces a report byte-identical to
	// an uninterrupted sweep. Empty disables.
	CheckpointDir string
	// CheckpointEvery is the snapshot interval in retired instructions
	// (0 with CheckpointDir set disables snapshots).
	CheckpointEvery uint64
	// Resume makes every cell restart from its latest snapshot under
	// CheckpointDir (cells with no snapshot run from zero) — the
	// crash-recovery path after a killed sweep. The resumed report is
	// byte-identical to an uninterrupted one. (The degradation ladder
	// resumes its own retries regardless of this flag.)
	Resume bool
	// OnCheckpoint, when non-nil, observes every snapshot write (the
	// chaos harness's kill hook). It runs on the simulating goroutine.
	OnCheckpoint func(insts uint64, path string)
	// Cache, when non-nil, memoizes cell results across runner
	// lifetimes (and, with a persistent tier, across processes):
	// repeated sweeps over the same cells skip re-simulation. Only
	// fault-free cells participate — results of degraded or injected
	// runs record host-timing events, not pure functions of the
	// configuration — and the cache is bypassed entirely while the
	// fault layer is armed. Report text is identical with or without
	// it; only Wall times (and thus the speed experiment's ratios)
	// reflect the original run instead of a fresh one.
	Cache *resultcache.Cache
}

func (o *Options) fill() {
	if o.Core.ROBSize == 0 {
		o.Core = core.DefaultConfig()
	}
	if o.Batch != 0 {
		o.Core.Batch = o.Batch
	}
	if o.GAP.N == 0 {
		o.GAP = gap.DefaultParams()
	}
	if o.Spec.Scale == 0 {
		o.Spec = specproxy.DefaultParams()
	}
}

// Runner runs and memoizes simulations.
type Runner struct {
	opt   Options
	cache map[string]*sim.Result
	// degraded accumulates one annotation line per degraded cell, in
	// record order; Run appends the ones produced during an experiment
	// as a footnote. Empty for fault-free sweeps, keeping their report
	// bytes identical to a runner without the fault-tolerance layer.
	degraded []string
	// incomplete accumulates one annotation line per cell the sweep's
	// cancellation cut short (never started, or stopped mid-run).
	incomplete []string
	// simulated counts actual simulation executions (cache hits and
	// memoized recalls excluded) — the cache-effectiveness probe.
	simulated atomic.Uint64
}

// Simulated reports how many simulations actually executed (as opposed
// to being recalled from the memo table or the persistent cell cache).
func (r *Runner) Simulated() uint64 { return r.simulated.Load() }

// NewRunner creates a Runner.
func NewRunner(opt Options) *Runner {
	opt.fill()
	return &Runner{opt: opt, cache: make(map[string]*sim.Result)}
}

func (r *Runner) printf(format string, args ...interface{}) {
	fmt.Fprintf(r.opt.Out, format, args...)
}

// workers is the batch worker count the table/figure drivers fan out
// with.
func (r *Runner) workers() int {
	if r.opt.Jobs > 0 {
		return r.opt.Jobs
	}
	return batch.DefaultWorkers()
}

func cacheKey(w workloads.Workload, k wrongpath.Kind) string {
	return w.Suite + "/" + w.Name + "/" + k.String()
}

// faultLayer reports whether any part of the fault-tolerance layer is
// armed; when it is not, simulate takes the exact pre-existing path, so
// reports stay byte-identical to a runner without the layer.
func (r *Runner) faultLayer() bool {
	return r.opt.Watchdog > 0 || r.opt.MaxRetries > 0 || r.opt.WrapSource != nil
}

// simulate runs one workload under one technique with the runner's
// core configuration. It is pure (no cache or progress access), so the
// batch engine may call it from any worker goroutine.
//
// With the fault-tolerance layer armed it runs through the degradation
// ladder: the first attempt consumes the prebuilt instance, retries
// build fresh ones, and the configured WrapSource hook may inject
// faults per (workload, technique) attempt.
func (r *Runner) simulate(w workloads.Workload, k wrongpath.Kind) (*sim.Result, error) {
	inst, err := w.Build()
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Core: r.opt.Core, WP: k, MaxInsts: inst.SuggestedMaxInsts,
		Watchdog: r.opt.Watchdog,
		Degrade:  sim.DegradePolicy{MaxRetries: r.opt.MaxRetries},
		Metrics:  r.opt.Metrics, Trace: r.opt.Trace,
		ObsLabel: w.Suite + "/" + w.Name,
		Ctx:      r.opt.Ctx}
	if r.opt.CheckpointDir != "" {
		// One snapshot lineage per cell: the fingerprint ties a snapshot
		// to its configuration, the path ties it to its cell.
		cfg.CheckpointDir = filepath.Join(r.opt.CheckpointDir, w.Suite, w.Name, k.String())
		cfg.CheckpointEvery = r.opt.CheckpointEvery
		cfg.OnCheckpoint = r.opt.OnCheckpoint
	}
	// The persistent cell cache sits outside the fault layer: an armed
	// watchdog, ladder, or injector means this cell's outcome depends on
	// more than its configuration, so neither probe nor store.
	useCache := r.opt.Cache != nil && !r.faultLayer()
	var fp string
	if useCache {
		fp = r.cellFingerprint(w, cfg)
		if data, hit, _ := r.opt.Cache.Get(fp); hit {
			var cached sim.Result
			if err := json.Unmarshal(data, &cached); err == nil {
				return &cached, nil
			}
			// Undecodable entry (format drift): fall through to a run.
		}
	}
	r.simulated.Add(1)
	var res *sim.Result
	if r.faultLayer() {
		first := inst
		res, err = sim.RunLadder(cfg, func(c sim.Config) (sim.Source, error) {
			attempt := first
			first = nil
			if attempt == nil {
				var berr error
				if attempt, berr = w.Build(); berr != nil {
					return nil, berr
				}
			}
			src := sim.NewFunctionalSource(c, attempt)
			if r.opt.WrapSource != nil {
				src = r.opt.WrapSource(src, w, c.WP)
			}
			return src, nil
		})
	} else if snap := r.latestSnapshot(cfg); snap != "" {
		res, err = sim.Resume(cfg, inst, snap)
	} else {
		res, err = sim.Run(cfg, inst)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cacheKey(w, k), err)
	}
	if res.Err != nil && !res.Degraded {
		return nil, fmt.Errorf("%s under %v: functional error: %w", cacheKey(w, k), k, res.Err)
	}
	if useCache && res.Err == nil && !res.Degraded {
		storeCell(r.opt.Cache, fp, res)
	}
	return res, nil
}

// cellFingerprint is a sweep cell's content address: workload identity,
// the runner's input-shape parameters (rendered with %+v — field order
// is fixed by the struct, so the rendering is canonical), and the sim
// configuration fingerprint (which carries the core configuration and
// instruction budgets, and excludes the knobs — lane size, checkpoint
// cadence — that provably cannot change results).
func (r *Runner) cellFingerprint(w workloads.Workload, cfg sim.Config) string {
	b := specfp.New("wpexp/cell/v1")
	b.String("suite", w.Suite)
	b.String("bench", w.Name)
	b.String("wp", cfg.WP.String())
	b.String("gap_params", fmt.Sprintf("%+v", r.opt.GAP))
	b.String("spec_params", fmt.Sprintf("%+v", r.opt.Spec))
	b.String("sim_config", cfg.Fingerprint())
	return b.Sum()
}

// storeCell persists one fault-free cell result. Unlike the serving
// layer's canonical documents, the stored encoding keeps Wall so a
// recalled speed ratio reflects the run that produced it. The round
// trip is verified before the write: an encoding that does not restore
// to a deeply equal Result (a future unexported field, say) is simply
// not cached — the cache may only ever skip work, never change values.
func storeCell(c *resultcache.Cache, fp string, res *sim.Result) {
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	var rt sim.Result
	if json.Unmarshal(data, &rt) != nil || !reflect.DeepEqual(*res, rt) {
		return
	}
	_ = c.Put(fp, data)
}

// latestSnapshot returns the cell's newest resumable snapshot, or "".
// (The ladder path finds its own snapshots inside sim.RunLadder.)
func (r *Runner) latestSnapshot(cfg sim.Config) string {
	if !r.opt.Resume || cfg.CheckpointDir == "" || cfg.CheckpointEvery == 0 {
		return ""
	}
	snap, err := checkpoint.Latest(cfg.CheckpointDir)
	if err != nil {
		return ""
	}
	return snap
}

// noteIncomplete records a canceled cell for the INCOMPLETE footnote.
func (r *Runner) noteIncomplete(key string, err error) {
	r.incomplete = append(r.incomplete, fmt.Sprintf("%s: %s", key, firstLine(err.Error())))
}

// record memoizes one finished run, emits its progress line, and notes
// a degraded cell for the experiment footnote.
func (r *Runner) record(key string, res *sim.Result) {
	if r.opt.Progress != nil {
		mark := ""
		if res.Degraded {
			mark = fmt.Sprintf("  DEGRADED(%v)", res.WP)
		}
		fmt.Fprintf(r.opt.Progress, "ran %-28s insts=%-9d cycles=%-10d IPC=%.3f wall=%v%s\n",
			key, res.Core.Instructions, res.Core.Cycles, res.IPC(), res.Wall.Round(1_000_000), mark)
	}
	if res.Degraded {
		note := fmt.Sprintf("%s: ran as %v (requested %v)", key, res.WP, res.RequestedWP)
		if res.DegradeFault != nil {
			note += ": " + firstLine(res.DegradeFault.Error())
		}
		r.degraded = append(r.degraded, note)
	}
	r.cache[key] = res
}

// firstLine truncates multi-line fault renderings (panic stacks) for
// the one-line report footnote.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// prefetch runs every uncached (workload, technique) pair through the
// batch engine and fills the memoization cache. Cache writes and
// progress lines happen on the calling goroutine in pair order, so the
// runner's behaviour is deterministic for any worker count.
func (r *Runner) prefetch(works []workloads.Workload, kinds []wrongpath.Kind) error {
	type unit struct {
		w   workloads.Workload
		k   wrongpath.Kind
		key string
	}
	var todo []unit
	for _, w := range works {
		for _, k := range kinds {
			key := cacheKey(w, k)
			if _, ok := r.cache[key]; !ok {
				todo = append(todo, unit{w, k, key})
			}
		}
	}
	jobs := make([]func() (*sim.Result, error), len(todo))
	for i := range jobs {
		u := todo[i]
		jobs[i] = func() (*sim.Result, error) { return r.simulate(u.w, u.k) }
	}
	// Cancellation sweeps through here: cells in flight stop at a lane
	// boundary with a canceled fault, cells not yet started are skipped
	// with one. Every canceled cell is annotated before the sweep's
	// error propagates, so the flushed partial report names them all.
	var canceled error
	for i, br := range batch.RunContext(r.opt.Ctx, jobs, r.workers()) {
		switch {
		case br.Err == nil:
			r.record(todo[i].key, br.Value)
		case errors.Is(br.Err, simerr.ErrCanceled):
			r.noteIncomplete(todo[i].key, br.Err)
			if canceled == nil {
				canceled = fmt.Errorf("%s: %w", todo[i].key, br.Err)
			}
		default:
			return fmt.Errorf("%s: %w", todo[i].key, br.Err)
		}
	}
	return canceled
}

// result runs (or recalls) one workload under one technique, serially.
// Drivers that need many runs prefetch them first; the speed experiment
// relies on this path staying serial for uncontended wall clocks.
func (r *Runner) result(w workloads.Workload, k wrongpath.Kind) (*sim.Result, error) {
	key := cacheKey(w, k)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	res, err := r.simulate(w, k)
	if err != nil {
		if errors.Is(err, simerr.ErrCanceled) {
			r.noteIncomplete(key, err)
		}
		return nil, err
	}
	r.record(key, res)
	return res, nil
}

// gapByNames resolves GAP workloads at the runner's input scale.
func (r *Runner) gapByNames(names ...string) []workloads.Workload {
	out := make([]workloads.Workload, len(names))
	for i, name := range names {
		out[i], _ = gap.ByName(name, r.opt.GAP)
	}
	return out
}

// all runs one workload under every technique.
func (r *Runner) all(w workloads.Workload) (map[wrongpath.Kind]*sim.Result, error) {
	out := make(map[wrongpath.Kind]*sim.Result, len(Kinds))
	for _, k := range Kinds {
		res, err := r.result(w, k)
		if err != nil {
			return nil, err
		}
		out[k] = res
	}
	return out, nil
}

func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

// Table1 prints the simulated core configuration (paper Table I).
func (r *Runner) Table1() error {
	r.printf("TABLE I: simulated core configuration (Golden Cove-like P-core)\n\n")
	r.printf("%s\n", sim.DescribeConfig(r.opt.Core))
	return nil
}

// Fig1 reproduces Figure 1: the performance-estimation error of not
// modeling the wrong path, per GAP benchmark, against wrong-path
// emulation.
func (r *Runner) Fig1() error {
	if err := r.prefetch(gap.Suite(r.opt.GAP), []wrongpath.Kind{wrongpath.NoWP, wrongpath.WPEmul}); err != nil {
		return err
	}
	r.printf("FIG 1: performance estimation error of no wrong-path modeling (GAP)\n")
	r.printf("       error = (IPC_nowp - IPC_wpemul) / IPC_wpemul\n\n")
	r.printf("%-8s %10s %10s %10s\n", "bench", "nowp IPC", "wpemul IPC", "error")
	var sum float64
	for _, w := range gap.Suite(r.opt.GAP) {
		nowp, err := r.result(w, wrongpath.NoWP)
		if err != nil {
			return err
		}
		ref, err := r.result(w, wrongpath.WPEmul)
		if err != nil {
			return err
		}
		e := sim.Error(nowp, ref)
		sum += e
		r.printf("%-8s %10.3f %10.3f %10s\n", w.Name, nowp.IPC(), ref.IPC(), pct(e))
	}
	r.printf("%-8s %21s %10s\n", "mean", "", pct(sum/float64(len(gap.Suite(r.opt.GAP)))))
	r.printf("\npaper: all errors zero or negative, average -9.6%%, up to -22%%;\n")
	r.printf("pr ~0 (no conditional branch in its inner loop), tc small (compute bound).\n")
	return nil
}

// Fig4GAP reproduces the left half of Figure 4: the error of every
// approximate technique per GAP benchmark.
func (r *Runner) Fig4GAP() error {
	if err := r.prefetch(gap.Suite(r.opt.GAP), Kinds); err != nil {
		return err
	}
	r.printf("FIG 4 (left): wrong-path modeling error per technique (GAP)\n\n")
	r.printf("%-8s %10s %10s %10s %10s\n", "bench", "nowp", "instrec", "conv", "convres*")
	sums := map[wrongpath.Kind]float64{}
	for _, w := range gap.Suite(r.opt.GAP) {
		res, err := r.all(w)
		if err != nil {
			return err
		}
		ref := res[wrongpath.WPEmul]
		r.printf("%-8s", w.Name)
		for _, k := range approx {
			e := sim.Error(res[k], ref)
			sums[k] += e
			r.printf(" %10s", pct(e))
		}
		r.printf("\n")
	}
	r.printf("%-8s", "mean")
	for _, k := range approx {
		r.printf(" %10s", pct(sums[k]/float64(len(gap.Suite(r.opt.GAP)))))
	}
	r.printf("\n\n(*) convres = conv + wrong-path branch resolution, this reproduction's\n")
	r.printf("extension beyond the paper (see DESIGN.md).\n")
	r.printf("\npaper: instrec barely helps GAP (tiny I-footprint); conv removes most\n")
	r.printf("of the negative error (9.6%% -> 3.8%% average |error|); bc may overshoot\n")
	r.printf("positive (only positive interference is modeled).\n")
	return nil
}

// Fig4SPEC reproduces the right half of Figure 4: the error
// distribution over the SPEC-proxy suite per technique.
func (r *Runner) Fig4SPEC() error {
	if err := r.prefetch(specproxy.Suite(r.opt.Spec), Kinds); err != nil {
		return err
	}
	r.printf("FIG 4 (right): error distribution over SPEC proxies per technique\n\n")
	type point struct {
		name string
		fp   bool
		err  map[wrongpath.Kind]float64
	}
	var points []point
	for _, w := range specproxy.Suite(r.opt.Spec) {
		res, err := r.all(w)
		if err != nil {
			return err
		}
		ref := res[wrongpath.WPEmul]
		pt := point{name: w.Name, fp: w.Suite == "specfp", err: map[wrongpath.Kind]float64{}}
		for _, k := range approx {
			pt.err[k] = sim.Error(res[k], ref)
		}
		points = append(points, pt)
	}

	r.printf("%-12s %5s %10s %10s %10s %10s\n", "bench", "class", "nowp", "instrec", "conv", "convres*")
	for _, pt := range points {
		class := "INT"
		if pt.fp {
			class = "FP"
		}
		r.printf("%-12s %5s %10s %10s %10s %10s\n", pt.name, class,
			pct(pt.err[wrongpath.NoWP]), pct(pt.err[wrongpath.InstRec]),
			pct(pt.err[wrongpath.Conv]), pct(pt.err[wrongpath.ConvResolve]))
	}

	for _, k := range approx {
		var intAbs, fpAbs float64
		var nInt, nFP int
		var near int
		for _, pt := range points {
			e := pt.err[k]
			if pt.fp {
				fpAbs += abs(e)
				nFP++
			} else {
				intAbs += abs(e)
				nInt++
			}
			if abs(e) < 0.005 {
				near++
			}
		}
		r.printf("\n%-8s mean |error|: INT %.2f%%  FP %.2f%%   within +/-0.5%%: %d/%d",
			k, 100*intAbs/float64(nInt), 100*fpAbs/float64(nFP), near, len(points))
	}

	// The paper's right plot is a distribution per technique; render it
	// as a bucketed histogram (each '#' is one benchmark).
	r.printf("\n\nerror distribution (each # = 1 benchmark):\n")
	buckets := []struct {
		label  string
		lo, hi float64
	}{
		{"  < -20% ", -1e9, -0.20},
		{"-20..-10%", -0.20, -0.10},
		{"-10..-5% ", -0.10, -0.05},
		{" -5..-2% ", -0.05, -0.02},
		{" -2..-.5%", -0.02, -0.005},
		{" +/-0.5% ", -0.005, 0.005},
		{" .5..+2% ", 0.005, 0.02},
		{"  > +2%  ", 0.02, 1e9},
	}
	r.printf("%-10s", "")
	for _, k := range approx {
		r.printf(" %-21s", k)
	}
	r.printf("\n")
	for _, b := range buckets {
		r.printf("%-10s", b.label)
		for _, k := range approx {
			n := 0
			for _, pt := range points {
				if e := pt.err[k]; e >= b.lo && e < b.hi {
					n++
				}
			}
			bar := strings.Repeat("#", n)
			r.printf(" %-21s", bar)
		}
		r.printf("\n")
	}
	r.printf("\npaper: SPEC FP ~0.2%% for all techniques; SPEC INT improves from 1.97%%\n")
	r.printf("(nowp) to 0.49%% (conv); error distribution tightens around 0.\n")
	return nil
}

// Table2 reproduces Table II: wrong-path instructions executed by each
// technique, relative to the correct-path instruction count.
func (r *Runner) Table2() error {
	if err := r.prefetch(gap.Suite(r.opt.GAP), wpGen); err != nil {
		return err
	}
	r.printf("TABLE II: wrong-path instructions executed / correct-path instructions (GAP)\n\n")
	r.printf("%-8s %10s %10s %10s %10s\n", "bench", "instrec", "conv", "convres*", "wpemul")
	for _, w := range gap.Suite(r.opt.GAP) {
		r.printf("%-8s", w.Name)
		for _, k := range wpGen {
			res, err := r.result(w, k)
			if err != nil {
				return err
			}
			r.printf(" %9.0f%%", 100*res.Core.WPFraction())
		}
		r.printf("\n")
	}
	r.printf("\npaper: high fractions (up to 240%%), pr the exception; per benchmark\n")
	r.printf("instrec >= conv >= wpemul, because modeling wrong-path miss latency\n")
	r.printf("slows the wrong path down, fitting fewer instructions in the window.\n")
	return nil
}

// Table3 reproduces Table III: low-level metrics of the convergence
// exploitation technique per GAP benchmark. "addr recover" is the
// fraction of wrong-path loads that executed within the resolution
// window carrying a recovered address — the recovered ops cluster at
// the front of the wrong path, exactly the ones the paper notes "have
// the most impact on cache hits".
func (r *Runner) Table3() error {
	if err := r.prefetch(gap.Suite(r.opt.GAP), []wrongpath.Kind{wrongpath.Conv, wrongpath.WPEmul}); err != nil {
		return err
	}
	r.printf("TABLE III: convergence exploitation metrics (GAP)\n\n")
	r.printf("%-8s %10s %10s %12s %12s\n", "bench", "conv frac", "conv dist", "addr recover", "WP L2 miss")
	for _, w := range gap.Suite(r.opt.GAP) {
		conv, err := r.result(w, wrongpath.Conv)
		if err != nil {
			return err
		}
		emul, err := r.result(w, wrongpath.WPEmul)
		if err != nil {
			return err
		}
		covered := 0.0
		if emul.L2.Wrong.Misses > 0 {
			covered = float64(conv.L2.Wrong.Misses) / float64(emul.L2.Wrong.Misses)
			if covered > 1 {
				covered = 1
			}
		}
		recover := 0.0
		if conv.Core.WPLoads > 0 {
			recover = float64(conv.Core.WPLoadsWithAddr) / float64(conv.Core.WPLoads)
		}
		r.printf("%-8s %9.0f%% %10.1f %11.0f%% %11.0f%%\n", w.Name,
			100*conv.Policy.ConvFrac(), conv.Policy.ConvDist(),
			100*recover, 100*covered)
	}
	r.printf("\npaper: conv frac 62-98%%; conv dist 7-30; addr recover 31-54%%\n")
	r.printf("(well below conv frac); WP L2 miss coverage highest where conv helps.\n")
	return nil
}

// Speed reproduces the §V-B simulation-speed comparison: wall-clock
// slowdown of each technique normalized to nowp, for both suites. It
// is the batch engine's workers=1 escape hatch: any simulation it
// still has to run goes through the serial result path, because wall
// clocks measured under core contention are meaningless. Runs already
// memoized by earlier experiments (a -exp all sweep with -jobs > 1)
// were concurrent, so for calibrated numbers run -exp speed alone.
func (r *Runner) Speed() error {
	r.printf("SIMULATION SPEED: slowdown vs no wrong-path modeling\n")
	r.printf("(wall clocks come from serial runs when this experiment runs alone;\n")
	r.printf("in a full sweep with -jobs > 1 they reflect concurrent execution)\n\n")
	suites := []struct {
		name  string
		works []workloads.Workload
	}{
		{"GAP", gap.Suite(r.opt.GAP)},
		{"SPEC", specproxy.Suite(r.opt.Spec)},
	}
	for _, s := range suites {
		r.printf("%s:\n%-10s %10s %10s\n", s.name, "technique", "avg", "max")
		for _, k := range wpGen {
			var sum, max float64
			for _, w := range s.works {
				base, err := r.result(w, wrongpath.NoWP)
				if err != nil {
					return err
				}
				res, err := r.result(w, k)
				if err != nil {
					return err
				}
				slow := float64(res.Wall) / float64(base.Wall)
				sum += slow
				if slow > max {
					max = slow
				}
			}
			r.printf("%-10s %9.2fx %9.2fx\n", k, sum/float64(len(s.works)), max)
		}
		r.printf("\n")
	}
	r.printf("paper: SPEC avg 1.12x/1.13x/2.1x (instrec/conv/wpemul);\n")
	r.printf("GAP avg 3.2x/4.0x/13.1x — wpemul clearly slowest, conv near instrec.\n")
	return nil
}

// Names lists the experiment identifiers accepted by Run.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var registry = map[string]func(*Runner) error{
	"table1":   (*Runner).Table1,
	"fig1":     (*Runner).Fig1,
	"fig4gap":  (*Runner).Fig4GAP,
	"fig4spec": (*Runner).Fig4SPEC,
	"table2":   (*Runner).Table2,
	"table3":   (*Runner).Table3,
	"speed":    (*Runner).Speed,
	"ablation": (*Runner).Ablations,
	"parallel": (*Runner).Parallel,
}

// Run executes one named experiment. Cells the degradation ladder ran
// below their requested technique during this experiment are listed in
// a footnote; a fault-free experiment prints no footnote, keeping its
// bytes identical to a run without the fault-tolerance layer. A
// canceled sweep still flushes the partial report plus an INCOMPLETE
// footnote naming every cell the cancellation cut short, then returns
// the canceled error.
func (r *Runner) Run(name string) error {
	fn, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	mark, imark := len(r.degraded), len(r.incomplete)
	err := fn(r)
	if len(r.degraded) > mark {
		r.printf("\nDEGRADED CELLS (fault-tolerance ladder, see DESIGN.md):\n")
		for _, note := range r.degraded[mark:] {
			r.printf("  %s\n", note)
		}
	}
	if len(r.incomplete) > imark {
		r.printf("\nINCOMPLETE CELLS (run canceled; resume with the same -checkpoint-dir):\n")
		for _, note := range r.incomplete[imark:] {
			r.printf("  %s\n", note)
		}
	}
	r.printf("\n")
	return err
}

// Faulted reports whether any cell of the sweep so far carried a fault
// annotation — a degraded-ladder descent or a cancellation cut. CLIs
// use it to exit nonzero after flushing an annotated report.
func (r *Runner) Faulted() bool {
	return len(r.degraded)+len(r.incomplete) > 0
}

// All executes every experiment in paper order.
func (r *Runner) All() error {
	for _, name := range []string{"table1", "fig1", "fig4gap", "fig4spec", "speed", "table2", "table3", "ablation", "parallel"} {
		if err := r.Run(name); err != nil {
			return err
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
