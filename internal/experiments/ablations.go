package experiments

import (
	"repro/internal/batch"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/wrongpath"
)

// runWith simulates a workload under an arbitrary configuration
// (bypassing the memoization cache, which is keyed on the default
// configuration).
func (r *Runner) runWith(w workloads.Workload, cfg sim.Config) (*sim.Result, error) {
	inst, err := w.Build()
	if err != nil {
		return nil, err
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = inst.SuggestedMaxInsts
	}
	if cfg.Watchdog == 0 {
		// Custom-config runs inherit the runner's stall budget; an idle
		// watchdog leaves their statistics bit-identical.
		cfg.Watchdog = r.opt.Watchdog
	}
	return sim.Run(cfg, inst)
}

// runBatch fans independent custom-configuration runs out over the
// batch engine, preserving job order. The ablation sweeps report
// simulation statistics only (no wall clocks), so concurrency cannot
// perturb their output.
func (r *Runner) runBatch(works []workloads.Workload, cfgs []sim.Config) ([]*sim.Result, error) {
	jobs := make([]func() (*sim.Result, error), len(works))
	for i := range jobs {
		w, cfg := works[i], cfgs[i]
		jobs[i] = func() (*sim.Result, error) { return r.runWith(w, cfg) }
	}
	results := batch.Run(jobs, r.workers())
	if err := batch.FirstErr(results); err != nil {
		return nil, err
	}
	return batch.Values(results), nil
}

// Ablations reports the design-choice studies DESIGN.md calls out.
func (r *Runner) Ablations() error {
	if err := r.ablationOptimism(); err != nil {
		return err
	}
	if err := r.ablationROB(); err != nil {
		return err
	}
	return r.ablationMemLatency()
}

// ablationOptimism disables conv's independence check — the paper's
// "optimism pitfall": copying addresses that depend on non-converged
// registers guarantees cache hits by construction and biases the
// projection optimistic.
func (r *Runner) ablationOptimism() error {
	works := r.gapByNames("bfs", "cc", "sssp")
	if err := r.prefetch(works, []wrongpath.Kind{wrongpath.Conv, wrongpath.WPEmul}); err != nil {
		return err
	}
	looseCfgs := make([]sim.Config, len(works))
	for i := range looseCfgs {
		looseCfgs[i] = sim.Config{Core: r.opt.Core, WP: wrongpath.Conv,
			PolicyFactory: func() wrongpath.Policy {
				p := wrongpath.NewConv()
				p.DisableIndependenceCheck = true
				return p
			}}
	}
	looseRes, err := r.runBatch(works, looseCfgs)
	if err != nil {
		return err
	}

	r.printf("ABLATION: conv independence check (the optimism pitfall, §III-C)\n\n")
	r.printf("%-8s %12s %12s %14s %14s\n", "bench", "conv err", "no-check err", "conv recover", "no-check recover")
	for i, w := range works {
		ref, err := r.result(w, wrongpath.WPEmul)
		if err != nil {
			return err
		}
		conv, err := r.result(w, wrongpath.Conv)
		if err != nil {
			return err
		}
		loose := looseRes[i]
		recovered := func(r *sim.Result) float64 {
			if r.Core.WPLoads == 0 {
				return 0
			}
			return float64(r.Core.WPLoadsWithAddr) / float64(r.Core.WPLoads)
		}
		r.printf("%-8s %12s %12s %13.0f%% %13.0f%%\n", w.Name,
			pct(sim.Error(conv, ref)), pct(sim.Error(loose, ref)),
			100*recovered(conv), 100*recovered(loose))
	}
	r.printf("\nwithout the check more addresses are \"recovered\", but some are wrong:\n")
	r.printf("they turn future correct-path accesses into by-construction hits,\n")
	r.printf("pushing the projection optimistic relative to wpemul.\n\n")
	return nil
}

// ablationROB sweeps the ROB size: deeper speculation means more
// wrong-path instructions and a larger no-wrong-path modeling error
// (the paper's "larger reorder buffers increase the amount of
// speculative instructions" trend argument).
func (r *Runner) ablationROB() error {
	robs := []int{128, 256, 512}
	works, cfgs := r.sweepPairs(len(robs), func(i int) sim.Config {
		cfg := r.opt.Core
		cfg.ROBSize = robs[i]
		return sim.Config{Core: cfg}
	})
	results, err := r.runBatch(works, cfgs)
	if err != nil {
		return err
	}

	r.printf("ABLATION: ROB size vs no-wrong-path error (bfs)\n\n")
	r.printf("%-8s %12s %12s\n", "ROB", "nowp err", "WP insts/CP")
	for i, rob := range robs {
		nowp, ref := results[2*i], results[2*i+1]
		r.printf("%-8d %12s %11.0f%%\n", rob,
			pct(sim.Error(nowp, ref)), 100*ref.Core.WPFraction())
	}
	r.printf("\n")
	return nil
}

// ablationMemLatency sweeps the memory latency — the Cain (70 cycles,
// "wrong path negligible") versus Mutlu (250+, "up to 10% error")
// disagreement the paper resolves: branch-resolution time, and thus
// time spent on the wrong path, scales with miss latency. The sweep
// disables the DRAM bandwidth cap: the latency effect is a
// latency-bound phenomenon, and under a bandwidth cap longer latencies
// instead saturate the channel and mask it (bandwidth-bound wrong-path
// prefetching has nowhere to put its prefetches).
func (r *Runner) ablationMemLatency() error {
	lats := []int{70, 230, 400}
	works, cfgs := r.sweepPairs(len(lats), func(i int) sim.Config {
		cfg := r.opt.Core
		cfg.Hierarchy.MemLatency = lats[i]
		cfg.Hierarchy.MemGapCycles = 0
		return sim.Config{Core: cfg}
	})
	results, err := r.runBatch(works, cfgs)
	if err != nil {
		return err
	}

	r.printf("ABLATION: memory latency vs no-wrong-path error (bfs, unlimited DRAM bandwidth)\n\n")
	r.printf("%-10s %12s %12s\n", "mem cycles", "nowp err", "WP insts/CP")
	for i, lat := range lats {
		nowp, ref := results[2*i], results[2*i+1]
		r.printf("%-10d %12s %11.0f%%\n", lat,
			pct(sim.Error(nowp, ref)), 100*ref.Core.WPFraction())
	}
	return nil
}

// sweepPairs lays out a bfs sweep of n configuration points as
// (nowp, wpemul) job pairs: index 2i is point i under NoWP, 2i+1 the
// wpemul reference.
func (r *Runner) sweepPairs(n int, point func(i int) sim.Config) ([]workloads.Workload, []sim.Config) {
	w := r.gapByNames("bfs")[0]
	works := make([]workloads.Workload, 0, 2*n)
	cfgs := make([]sim.Config, 0, 2*n)
	for i := 0; i < n; i++ {
		for _, k := range []wrongpath.Kind{wrongpath.NoWP, wrongpath.WPEmul} {
			cfg := point(i)
			cfg.WP = k
			works = append(works, w)
			cfgs = append(cfgs, cfg)
		}
	}
	return works, cfgs
}
