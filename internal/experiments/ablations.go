package experiments

import (
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

// runWith simulates a workload under an arbitrary configuration
// (bypassing the memoization cache, which is keyed on the default
// configuration).
func (r *Runner) runWith(w workloads.Workload, cfg sim.Config) (*sim.Result, error) {
	inst, err := w.Build()
	if err != nil {
		return nil, err
	}
	if cfg.MaxInsts == 0 {
		cfg.MaxInsts = inst.SuggestedMaxInsts
	}
	return sim.Run(cfg, inst)
}

// Ablations reports the design-choice studies DESIGN.md calls out.
func (r *Runner) Ablations() error {
	if err := r.ablationOptimism(); err != nil {
		return err
	}
	if err := r.ablationROB(); err != nil {
		return err
	}
	return r.ablationMemLatency()
}

// ablationOptimism disables conv's independence check — the paper's
// "optimism pitfall": copying addresses that depend on non-converged
// registers guarantees cache hits by construction and biases the
// projection optimistic.
func (r *Runner) ablationOptimism() error {
	r.printf("ABLATION: conv independence check (the optimism pitfall, §III-C)\n\n")
	r.printf("%-8s %12s %12s %14s %14s\n", "bench", "conv err", "no-check err", "conv recover", "no-check recover")
	for _, name := range []string{"bfs", "cc", "sssp"} {
		w, _ := gap.ByName(name, r.opt.GAP)
		ref, err := r.result(w, wrongpath.WPEmul)
		if err != nil {
			return err
		}
		conv, err := r.result(w, wrongpath.Conv)
		if err != nil {
			return err
		}
		cfg := sim.Config{Core: r.opt.Core, WP: wrongpath.Conv,
			PolicyFactory: func() wrongpath.Policy {
				p := wrongpath.NewConv()
				p.DisableIndependenceCheck = true
				return p
			}}
		loose, err := r.runWith(w, cfg)
		if err != nil {
			return err
		}
		recovered := func(r *sim.Result) float64 {
			if r.Core.WPLoads == 0 {
				return 0
			}
			return float64(r.Core.WPLoadsWithAddr) / float64(r.Core.WPLoads)
		}
		r.printf("%-8s %12s %12s %13.0f%% %13.0f%%\n", name,
			pct(sim.Error(conv, ref)), pct(sim.Error(loose, ref)),
			100*recovered(conv), 100*recovered(loose))
	}
	r.printf("\nwithout the check more addresses are \"recovered\", but some are wrong:\n")
	r.printf("they turn future correct-path accesses into by-construction hits,\n")
	r.printf("pushing the projection optimistic relative to wpemul.\n\n")
	return nil
}

// ablationROB sweeps the ROB size: deeper speculation means more
// wrong-path instructions and a larger no-wrong-path modeling error
// (the paper's "larger reorder buffers increase the amount of
// speculative instructions" trend argument).
func (r *Runner) ablationROB() error {
	r.printf("ABLATION: ROB size vs no-wrong-path error (bfs)\n\n")
	r.printf("%-8s %12s %12s\n", "ROB", "nowp err", "WP insts/CP")
	w, _ := gap.ByName("bfs", r.opt.GAP)
	for _, rob := range []int{128, 256, 512} {
		cfg := r.opt.Core
		cfg.ROBSize = rob
		nowp, err := r.runWith(w, sim.Config{Core: cfg, WP: wrongpath.NoWP})
		if err != nil {
			return err
		}
		ref, err := r.runWith(w, sim.Config{Core: cfg, WP: wrongpath.WPEmul})
		if err != nil {
			return err
		}
		r.printf("%-8d %12s %11.0f%%\n", rob,
			pct(sim.Error(nowp, ref)), 100*ref.Core.WPFraction())
	}
	r.printf("\n")
	return nil
}

// ablationMemLatency sweeps the memory latency — the Cain (70 cycles,
// "wrong path negligible") versus Mutlu (250+, "up to 10% error")
// disagreement the paper resolves: branch-resolution time, and thus
// time spent on the wrong path, scales with miss latency. The sweep
// disables the DRAM bandwidth cap: the latency effect is a
// latency-bound phenomenon, and under a bandwidth cap longer latencies
// instead saturate the channel and mask it (bandwidth-bound wrong-path
// prefetching has nowhere to put its prefetches).
func (r *Runner) ablationMemLatency() error {
	r.printf("ABLATION: memory latency vs no-wrong-path error (bfs, unlimited DRAM bandwidth)\n\n")
	r.printf("%-10s %12s %12s\n", "mem cycles", "nowp err", "WP insts/CP")
	w, _ := gap.ByName("bfs", r.opt.GAP)
	for _, lat := range []int{70, 230, 400} {
		cfg := r.opt.Core
		cfg.Hierarchy.MemLatency = lat
		cfg.Hierarchy.MemGapCycles = 0
		nowp, err := r.runWith(w, sim.Config{Core: cfg, WP: wrongpath.NoWP})
		if err != nil {
			return err
		}
		ref, err := r.runWith(w, sim.Config{Core: cfg, WP: wrongpath.WPEmul})
		if err != nil {
			return err
		}
		r.printf("%-10d %12s %11.0f%%\n", lat,
			pct(sim.Error(nowp, ref)), 100*ref.Core.WPFraction())
	}
	return nil
}
