package experiments

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/resultcache"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

func cachedOptions(t *testing.T, dir string, out *strings.Builder) Options {
	t.Helper()
	cache, err := resultcache.New(dir, 0)
	if err != nil {
		t.Fatalf("resultcache.New: %v", err)
	}
	return Options{
		GAP:   gap.Params{N: 256, Degree: 4, Seed: 7, MaxInsts: 60_000},
		Spec:  specproxy.Params{Scale: 0.01, Seed: 99},
		Out:   out,
		Cache: cache,
	}
}

// TestCellCacheSkipsResimulation: a repeated sweep over the same cell
// cache simulates nothing and prints a byte-identical report — the
// cache returns full serialized results, host wall time included, so
// no downstream formatting can tell the difference.
func TestCellCacheSkipsResimulation(t *testing.T) {
	dir := t.TempDir()
	var out1 strings.Builder
	r1 := NewRunner(cachedOptions(t, dir, &out1))
	if err := r1.Run("fig1"); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if r1.Simulated() == 0 {
		t.Fatal("first sweep simulated nothing; the test is vacuous")
	}

	// A fresh runner and a fresh cache handle: only the persistent tier
	// under dir carries over, as it would across process runs.
	var out2 strings.Builder
	r2 := NewRunner(cachedOptions(t, dir, &out2))
	if err := r2.Run("fig1"); err != nil {
		t.Fatalf("repeat sweep: %v", err)
	}
	if n := r2.Simulated(); n != 0 {
		t.Errorf("repeat sweep simulated %d cells, want 0 (all cache-served)", n)
	}
	if out1.String() != out2.String() {
		t.Errorf("cache-served report differs from the simulated one:\n--- simulated\n%s\n--- cached\n%s",
			out1.String(), out2.String())
	}
}

// TestCellCacheBypassedWithFaultLayer: an armed fault layer (here a
// watchdog that never fires) makes a cell's outcome depend on host
// timing, so the sweep must neither store nor serve cache entries.
func TestCellCacheBypassedWithFaultLayer(t *testing.T) {
	dir := t.TempDir()
	var out1 strings.Builder
	opt := cachedOptions(t, dir, &out1)
	opt.Watchdog = time.Minute
	r1 := NewRunner(opt)
	if err := r1.Run("fig1"); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.wpres")); len(entries) != 0 {
		t.Fatalf("fault-layer sweep stored %d cache entries, want 0", len(entries))
	}
	var out2 strings.Builder
	opt2 := cachedOptions(t, dir, &out2)
	opt2.Watchdog = time.Minute
	r2 := NewRunner(opt2)
	if err := r2.Run("fig1"); err != nil {
		t.Fatalf("repeat sweep: %v", err)
	}
	if r2.Simulated() == 0 {
		t.Error("fault-layer sweep served cells from the cache")
	}
}
