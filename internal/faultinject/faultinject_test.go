package faultinject

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// seqSource produces instructions with ascending sequence numbers.
type seqSource struct{ n uint64 }

func (s *seqSource) Next() (trace.DynInst, bool) {
	s.n++
	return trace.DynInst{Seq: s.n, PC: 0x1000 + 4*s.n}, true
}

func TestFlipByteDeterministic(t *testing.T) {
	data := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	a := FlipByte(data, 3, 0x80)
	b := FlipByte(data, 3, 0x80)
	if !bytes.Equal(a, b) {
		t.Fatal("FlipByte not deterministic")
	}
	if a[3] != 3^0x80 {
		t.Fatalf("byte 3 = %#x, want %#x", a[3], 3^0x80)
	}
	if data[3] != 3 {
		t.Fatal("FlipByte mutated its input")
	}
	// Default mask is a full flip.
	if c := FlipByte(data, 0, 0); c[0] != 0xFF {
		t.Fatalf("full flip of 0 = %#x, want 0xff", c[0])
	}
	// Out-of-range offset is a no-op copy.
	if d := FlipByte(data, 99, 0); !bytes.Equal(d, data) {
		t.Fatal("out-of-range flip changed data")
	}
}

func TestTruncate(t *testing.T) {
	data := []byte{0, 1, 2, 3}
	if got := Truncate(data, 2); !bytes.Equal(got, []byte{0, 1}) {
		t.Fatalf("Truncate(2) = %v", got)
	}
	if got := Truncate(data, 99); !bytes.Equal(got, data) {
		t.Fatalf("Truncate past end = %v", got)
	}
	if got := Truncate(data, -1); len(got) != 0 {
		t.Fatalf("Truncate(-1) = %v", got)
	}
}

func TestCorruptTailDeterministicAndInTail(t *testing.T) {
	data := make([]byte, 100)
	a := CorruptTail(data, 7)
	b := CorruptTail(data, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("CorruptTail not deterministic for equal seeds")
	}
	diff := -1
	for i := range a {
		if a[i] != data[i] {
			if diff != -1 {
				t.Fatal("more than one byte flipped")
			}
			diff = i
		}
	}
	if diff < 75 {
		t.Fatalf("flip at %d, want last quarter (>=75)", diff)
	}
}

func TestReader(t *testing.T) {
	data := []byte{1, 2, 3}
	r := Reader(data)
	buf := make([]byte, 2)
	n, err := r.Read(buf)
	if n != 2 || err != nil {
		t.Fatalf("Read = %d, %v", n, err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), []byte{3}) {
		t.Fatalf("remainder = %v", out.Bytes())
	}
}

func TestPanicAt(t *testing.T) {
	p := PanicAt(&seqSource{}, 3, "injected")
	for i := 0; i < 2; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatal("stream ended before injection point")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third Next did not panic")
		}
	}()
	p.Next()
}

func TestFreezerBlocksThenReleases(t *testing.T) {
	f := FreezeAt(&seqSource{}, 3)
	for i := 0; i < 2; i++ {
		if _, ok := f.Next(); !ok {
			t.Fatal("stream ended before freeze point")
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var ok bool
	go func() {
		defer wg.Done()
		_, ok = f.Next() // the frozen call
	}()

	select {
	case <-f.Frozen():
	case <-time.After(5 * time.Second):
		t.Fatal("freeze never engaged")
	}

	f.Interrupt()
	f.Interrupt() // idempotent
	wg.Wait()
	if ok {
		t.Fatal("frozen Next returned an instruction after Interrupt")
	}
	if _, ok := f.Next(); ok {
		t.Fatal("Next after Interrupt did not report end-of-stream")
	}
}

func TestLimit(t *testing.T) {
	l := Limit(&seqSource{}, 2)
	for i := 0; i < 2; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	if _, ok := l.Next(); ok {
		t.Fatal("stream did not end at the limit")
	}
}
