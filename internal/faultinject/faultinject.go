// Package faultinject deterministically injects the runtime faults the
// fault-tolerance layer must survive: corrupted or truncated trace
// bytes, a panic at a chosen instruction inside a producer, and a
// frozen (never-returning) producer. It is the test harness for
// internal/simerr, the sim.Session stall watchdog and the
// graceful-degradation ladder — every injector is a pure function of
// its arguments (seeded where randomness is wanted), so a faulted run
// reproduces bit-identically.
//
// Producer injectors wrap any instruction source (a
// frontend, a tracefile.Reader, another injector) behind the same
// Next() interface the decoupling queue consumes. The Freezer blocks
// until Interrupt is called, which is exactly the release path the
// session watchdog uses, so frozen-producer tests neither hang nor leak
// goroutines.
package faultinject

import (
	"io"
	"math/rand"
	"sync"

	"repro/internal/trace"
)

// Producer is the minimal instruction source interface (a structural
// copy of queue.Producer, avoiding a dependency on the queue package).
type Producer interface {
	Next() (trace.DynInst, bool)
}

// --- byte-level trace corruption ---

// FlipByte returns a copy of data with the byte at off XOR-flipped by
// mask (mask 0 selects 0xFF, a full flip). Offsets outside data are a
// no-op copy.
func FlipByte(data []byte, off int64, mask byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if mask == 0 {
		mask = 0xFF
	}
	if off >= 0 && off < int64(len(out)) {
		out[off] ^= mask
	}
	return out
}

// Truncate returns the first n bytes of data (all of it when n is past
// the end) — a mid-record cut when n lands inside a record.
func Truncate(data []byte, n int64) []byte {
	if n < 0 {
		n = 0
	}
	if n > int64(len(data)) {
		n = int64(len(data))
	}
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}

// CorruptTail flips one byte in the last quarter of data, at a position
// chosen deterministically from seed — the paper-sweep fault shape: a
// trace whose prefix is valid and whose tail is damaged.
func CorruptTail(data []byte, seed int64) []byte {
	if len(data) < 4 {
		return FlipByte(data, int64(len(data))-1, 0)
	}
	lo := 3 * len(data) / 4
	rng := rand.New(rand.NewSource(seed))
	return FlipByte(data, int64(lo+rng.Intn(len(data)-lo)), 0)
}

// Reader returns an io.Reader over data — the usual way to hand
// corrupted bytes back to tracefile.NewReader.
func Reader(data []byte) io.Reader { return &byteReader{data: data} }

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// --- producer-level faults ---

// PanicAt wraps src so that the n-th Next call (1-based) panics with
// msg instead of producing an instruction. Calls before n pass through
// untouched.
func PanicAt(src Producer, n uint64, msg string) Producer {
	return &panicker{src: src, at: n, msg: msg}
}

type panicker struct {
	src Producer
	at  uint64
	n   uint64
	msg string
}

func (p *panicker) Next() (trace.DynInst, bool) {
	p.n++
	if p.n == p.at {
		panic("faultinject: " + p.msg) //wplint:allow-panic -- the injected fault itself; the runtime under test must contain it
	}
	return p.src.Next()
}

// Freezer wraps a producer so that one chosen Next call blocks — the
// frozen-producer fault. The block is released by Interrupt (the
// session watchdog's abort path, also honored by frontend.Parallel's
// Close), after which Next reports end-of-stream forever; a Freezer
// therefore never leaks a goroutine in a watchdogged run.
type Freezer struct {
	src Producer
	at  uint64
	n   uint64

	frozen    chan struct{} // closed when the freeze engages
	release   chan struct{} // closed by Interrupt
	frozeOnce sync.Once
	relOnce   sync.Once
}

// FreezeAt wraps src so the n-th Next call (1-based) freezes.
func FreezeAt(src Producer, n uint64) *Freezer {
	return &Freezer{src: src, at: n, frozen: make(chan struct{}), release: make(chan struct{})}
}

// Next produces from the wrapped source until the freeze point, then
// blocks until Interrupt and reports end-of-stream.
func (f *Freezer) Next() (trace.DynInst, bool) {
	select {
	case <-f.release:
		return trace.DynInst{}, false
	default:
	}
	f.n++
	if f.n >= f.at {
		f.frozeOnce.Do(func() { close(f.frozen) })
		<-f.release
		return trace.DynInst{}, false
	}
	return f.src.Next()
}

// Frozen is closed once the freeze has engaged — deterministic watchdog
// tests key their fake clock's tick off it.
func (f *Freezer) Frozen() <-chan struct{} { return f.frozen }

// Interrupt releases the freeze; every blocked and future Next returns
// end-of-stream. It is idempotent and safe from any goroutine.
func (f *Freezer) Interrupt() {
	f.relOnce.Do(func() { close(f.release) })
}

// Limit wraps src to end the stream cleanly after n instructions — the
// shape of a truncated-but-valid trace, useful as a fault-free control.
func Limit(src Producer, n uint64) Producer { return &limiter{src: src, left: n} }

type limiter struct {
	src  Producer
	left uint64
}

func (l *limiter) Next() (trace.DynInst, bool) {
	if l.left == 0 {
		return trace.DynInst{}, false
	}
	l.left--
	return l.src.Next()
}
