package batch

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// squareJobs builds n jobs whose results encode their index, with
// enough work per job that the -race runs genuinely interleave.
func squareJobs(n int) []func() (int, error) {
	jobs := make([]func() (int, error), n)
	for i := range jobs {
		jobs[i] = func() (int, error) {
			acc := 0
			for j := 0; j < 1000; j++ {
				acc += i * i
			}
			return acc / 1000, nil
		}
	}
	return jobs
}

// TestOrderPreserved: results land at their job's index for every
// worker count, including counts above the job count.
func TestOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for i, r := range Run(squareJobs(33), workers) {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i {
				t.Errorf("workers=%d job %d: got %d, want %d", workers, i, r.Value, i*i)
			}
		}
	}
}

// TestParallelMatchesSerial: the whole result slice must be
// bit-identical between workers=1 and workers=N — the batch engine's
// core guarantee. The test body races under -race via CI's make check.
func TestParallelMatchesSerial(t *testing.T) {
	serial := Run(squareJobs(50), 1)
	parallel := Run(squareJobs(50), 8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("job %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestPerJobErrors: a failing job must not disturb its neighbours, and
// FirstErr must surface the lowest-indexed failure.
func TestPerJobErrors(t *testing.T) {
	sentinel := errors.New("job 3 broke")
	jobs := squareJobs(6)
	jobs[3] = func() (int, error) { return 0, sentinel }
	jobs[5] = func() (int, error) { return 0, fmt.Errorf("job 5 broke too") }
	results := Run(jobs, 4)
	for _, i := range []int{0, 1, 2, 4} {
		if results[i].Err != nil || results[i].Value != i*i {
			t.Errorf("job %d disturbed by neighbour failure: %+v", i, results[i])
		}
	}
	if !errors.Is(results[3].Err, sentinel) {
		t.Errorf("job 3 error = %v, want sentinel", results[3].Err)
	}
	if !errors.Is(FirstErr(results), sentinel) {
		t.Errorf("FirstErr = %v, want the lowest-indexed failure", FirstErr(results))
	}
}

func TestFirstErrNilOnSuccess(t *testing.T) {
	if err := FirstErr(Run(squareJobs(4), 2)); err != nil {
		t.Fatal(err)
	}
}

func TestValues(t *testing.T) {
	vals := Values(Run(squareJobs(5), 2))
	for i, v := range vals {
		if v != i*i {
			t.Errorf("Values[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestEveryJobRunsOnce: the index dispenser must hand each job to
// exactly one worker.
func TestEveryJobRunsOnce(t *testing.T) {
	var runs [100]atomic.Int32
	jobs := make([]func() (int, error), len(runs))
	for i := range jobs {
		jobs[i] = func() (int, error) {
			runs[i].Add(1)
			return 0, nil
		}
	}
	Run(jobs, 16)
	for i := range runs {
		if got := runs[i].Load(); got != 1 {
			t.Errorf("job %d ran %d times", i, got)
		}
	}
}

func TestEmptyAndNilJobs(t *testing.T) {
	if got := Run[int](nil, 8); len(got) != 0 {
		t.Errorf("nil jobs produced %d results", len(got))
	}
	results := Run([]func() (int, error){nil, func() (int, error) { return 7, nil }}, 2)
	if results[0].Value != 0 || results[0].Err != nil {
		t.Errorf("nil job result = %+v, want zero", results[0])
	}
	if results[1].Value != 7 {
		t.Errorf("job after nil = %+v", results[1])
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
	// workers <= 0 must select the default pool, not deadlock or panic.
	if err := FirstErr(Run(squareJobs(9), 0)); err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(Run(squareJobs(9), -3)); err != nil {
		t.Fatal(err)
	}
}
