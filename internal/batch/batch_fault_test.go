package batch

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/simerr"
)

// TestPanicContained: a panicking job must land a typed ErrWorkerPanic
// in exactly its own slot — neighbours complete, order is preserved —
// for the serial path, a mid-size pool, and an oversubscribed pool.
// Runs under -race via make check.
func TestPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		jobs := squareJobs(20)
		jobs[7] = func() (int, error) { panic("injected fault in job 7") }
		results := Run(jobs, workers)
		for i, r := range results {
			if i == 7 {
				continue
			}
			if r.Err != nil || r.Value != i*i {
				t.Errorf("workers=%d: job %d disturbed by the panic: %+v", workers, i, r)
			}
		}
		err := results[7].Err
		if !errors.Is(err, simerr.ErrWorkerPanic) {
			t.Fatalf("workers=%d: job 7 err = %v, want ErrWorkerPanic class", workers, err)
		}
		if !strings.Contains(err.Error(), "injected fault in job 7") {
			t.Errorf("workers=%d: panic value missing from error: %v", workers, err)
		}
		var f *simerr.Fault
		if !errors.As(err, &f) {
			t.Fatalf("workers=%d: err is not a *simerr.Fault", workers)
		}
		if len(f.Stack) == 0 {
			t.Errorf("workers=%d: panic fault carries no stack", workers)
		}
		if !strings.Contains(f.Op, "7") {
			t.Errorf("workers=%d: fault op %q does not name the job", workers, f.Op)
		}
	}
}

// TestMultiplePanicsAllContained: several panicking jobs each get their
// own fault; the worker that recovered one keeps draining the queue.
func TestMultiplePanicsAllContained(t *testing.T) {
	jobs := squareJobs(30)
	for _, i := range []int{0, 13, 29} {
		jobs[i] = func() (int, error) { panic(i) }
	}
	results := Run(jobs, 3) // fewer workers than panics: each worker survives at least one
	for _, i := range []int{0, 13, 29} {
		if !errors.Is(results[i].Err, simerr.ErrWorkerPanic) {
			t.Errorf("job %d err = %v, want ErrWorkerPanic class", i, results[i].Err)
		}
	}
	for i, r := range results {
		if i == 0 || i == 13 || i == 29 {
			continue
		}
		if r.Err != nil || r.Value != i*i {
			t.Errorf("job %d disturbed: %+v", i, r)
		}
	}
}

// TestPanicAndErrorCoexist: FirstErr surfaces the lowest-indexed
// failure whether it came from a returned error or a recovered panic.
func TestPanicAndErrorCoexist(t *testing.T) {
	sentinel := errors.New("plain failure")
	jobs := squareJobs(8)
	jobs[2] = func() (int, error) { panic("boom") }
	jobs[5] = func() (int, error) { return 0, sentinel }
	results := Run(jobs, 4)
	if !errors.Is(FirstErr(results), simerr.ErrWorkerPanic) {
		t.Errorf("FirstErr = %v, want the job-2 panic", FirstErr(results))
	}
	if !errors.Is(results[5].Err, sentinel) {
		t.Errorf("job 5 err = %v, want sentinel", results[5].Err)
	}
}

// TestPanicWithErrorValue: a panic whose value is itself an error keeps
// that error matchable through the fault chain.
func TestPanicWithErrorValue(t *testing.T) {
	jobs := squareJobs(3)
	jobs[1] = func() (int, error) { panic(simerr.ErrStall) }
	results := Run(jobs, 2)
	if !errors.Is(results[1].Err, simerr.ErrWorkerPanic) {
		t.Errorf("err = %v, want ErrWorkerPanic class", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), simerr.ErrStall.Error()) {
		t.Errorf("panic error value missing from rendering: %v", results[1].Err)
	}
}
