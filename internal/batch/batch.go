// Package batch is the worker-pool engine for running independent,
// deterministic simulations concurrently. Simulations in this
// repository are pure functions of their Config and workload instance
// (the determinism wplint analyzer enforces it), so a batch of them can
// be executed on any number of workers with bit-identical results; only
// host wall-clock time changes. The engine preserves job order in its
// result slice and captures each job's error individually, so one
// failed simulation does not discard the rest of a sweep.
//
// sim.RunKinds and the experiments.Runner fan out through this package;
// wall-clock-measuring experiments pass workers=1 (timing runs must not
// contend for cores).
package batch

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/simerr"
)

// Result pairs one job's value with its error, at the job's index.
type Result[T any] struct {
	Value T
	Err   error
}

// DefaultWorkers is the worker count selected by Run for workers <= 0:
// one per host core.
func DefaultWorkers() int { return runtime.NumCPU() }

// Run executes the jobs on a pool of worker goroutines and returns
// their results indexed exactly like jobs, regardless of completion
// order. workers <= 0 selects DefaultWorkers; workers == 1 runs every
// job serially on the calling goroutine (the escape hatch for
// wall-clock measurements); workers > len(jobs) is clamped. A nil job
// produces a zero Result.
//
// Fault containment: a panic inside a job is recovered — in the worker
// and in serial mode alike — and lands in that job's Result.Err as a
// typed simerr.ErrWorkerPanic fault with the captured stack. The other
// jobs run to completion and result order is preserved, so one
// crashing cell never takes down a sweep.
func Run[T any](jobs []func() (T, error), workers int) []Result[T] {
	return RunContext(context.Background(), jobs, workers)
}

// RunContext is Run with cancellation: once ctx is done, no new job is
// started. Jobs already in flight run to completion — each job is
// expected to observe the same context itself (sim.Config.Ctx) and
// return early with its own typed cancellation fault — and every job
// that never started gets a simerr.ErrCanceled Result.Err, so a
// canceled sweep reports exactly which cells ran and which were
// skipped. A nil ctx behaves like context.Background.
func RunContext[T any](ctx context.Context, jobs []func() (T, error), workers int) []Result[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Result[T], len(jobs))
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	run := func(i int) {
		defer func() {
			if rec := recover(); rec != nil {
				out[i].Err = simerr.WorkerPanic(fmt.Sprintf("batch job %d", i), rec, debug.Stack())
			}
		}()
		if err := ctx.Err(); err != nil {
			out[i].Err = simerr.Canceled(fmt.Sprintf("batch job %d", i), err)
			return
		}
		if jobs[i] != nil {
			out[i].Value, out[i].Err = jobs[i]()
		}
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// FirstErr returns the error of the lowest-indexed failed job, or nil.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Values unwraps the result values, in job order. Call FirstErr first:
// failed jobs contribute their zero value.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out
}
