package codecache

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/isa"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the seen-set and the lookup statistics. The
// seen-set IS simulation state: a Lookup miss ends a wrong-path
// reconstruction (§III-A), so which PCs the functional simulator has
// delivered by the checkpoint instant must survive a resume exactly —
// predecoding alone cannot recover it, and for trace sources there is
// no program to predecode at all. Entries are written as (pc, inst)
// pairs in ascending PC order (pages and the unaligned fallback map
// are both sorted) so the snapshot bytes are deterministic; Meta is
// recomputed on restore via MetaOf, and predecoded-only entries are
// rebuilt by the session's usual Predecode call.
func (c *Cache) SaveState(w *checkpoint.Writer) {
	w.Section("codecache/Cache", snapshotVersion)
	w.Uint64(c.lookups)
	w.Uint64(c.misses)

	type seenEntry struct {
		pc uint64
		in isa.Inst
	}
	ents := make([]seenEntry, 0, c.seen)
	pageIdxs := make([]uint64, 0, len(c.pages))
	for idx := range c.pages {
		pageIdxs = append(pageIdxs, idx)
	}
	sort.Slice(pageIdxs, func(i, j int) bool { return pageIdxs[i] < pageIdxs[j] })
	for _, idx := range pageIdxs {
		p := c.pages[idx]
		for slot := range p.ents {
			if p.ents[slot].state == entrySeen {
				pc := ((idx << pageShift) | uint64(slot)) << 2
				ents = append(ents, seenEntry{pc: pc, in: p.ents[slot].in})
			}
		}
	}
	for pc, e := range c.slow {
		if e.state == entrySeen {
			ents = append(ents, seenEntry{pc: pc, in: e.in})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].pc < ents[j].pc })

	w.Uint64(uint64(len(ents)))
	for i := range ents {
		e := &ents[i]
		w.Uint64(e.pc)
		w.Byte(byte(e.in.Op))
		w.Byte(byte(e.in.Rd))
		w.Byte(byte(e.in.Rs1))
		w.Byte(byte(e.in.Rs2))
		w.Byte(byte(e.in.Rs3))
		w.Int64(e.in.Imm)
		w.Uint64(e.in.Target)
	}
}

// RestoreState re-inserts the serialized seen-set into the cache and
// restores the lookup statistics. The receiver is typically fresh
// (New, optionally Predecoded); existing predecoded entries are
// upgraded in place.
func (c *Cache) RestoreState(r *checkpoint.Reader) error { //wplint:allow checkpoint -- pages/slow are rebuilt through entryFor, not referenced directly
	if err := r.Section("codecache/Cache", snapshotVersion); err != nil {
		return err
	}
	c.lookups = r.Uint64()
	c.misses = r.Uint64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		pc := r.Uint64()
		var in isa.Inst
		in.Op = isa.Op(r.Byte())
		in.Rd = isa.Reg(r.Byte())
		in.Rs1 = isa.Reg(r.Byte())
		in.Rs2 = isa.Reg(r.Byte())
		in.Rs3 = isa.Reg(r.Byte())
		in.Imm = r.Int64()
		in.Target = r.Uint64()
		if err := r.Err(); err != nil {
			return err
		}
		e := c.entryFor(pc, true)
		if e.state == entrySeen {
			return fmt.Errorf("codecache: snapshot pc %#x already seen (duplicate entry)", pc)
		}
		e.in = in
		e.meta = MetaOf(&in)
		e.state = entrySeen
		c.seen++
	}
	return r.Err()
}
