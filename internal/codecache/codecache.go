// Package codecache implements the code cache the paper introduces
// between the functional and performance simulator (§III-A): a table,
// indexed by instruction address, of the decode information of every
// instruction the functional simulator has delivered so far. When the
// performance model detects a branch misprediction it reconstructs the
// wrong path out of this cache; a lookup miss ends the reconstruction
// (the simulator then falls back to halting fetch until the branch
// resolves).
//
// Beyond the raw decode bits, every entry carries a Meta record — the
// source/destination register sets, memory base register and class
// flags derived exactly once per static instruction. The core and the
// wrong-path policies consult Meta instead of re-deriving register
// sets per dynamic instance, which keeps dependence tracking off the
// per-instruction hot path.
//
// Storage is paged: 4-byte-aligned PCs (every instruction the
// assembler or functional simulator emits) index a direct-mapped array
// page covering pageSize consecutive instruction slots, with a
// two-entry MRU page cache in front of the page map. Unaligned PCs —
// possible only in hand-crafted traces — fall back to a plain map with
// identical semantics.
package codecache

import "repro/internal/isa"

// Meta is the decode-once record of one static instruction: everything
// the timing model and the wrong-path walks need per dynamic instance,
// precomputed so the hot path never re-derives it from the Inst.
type Meta struct {
	// Srcs[:NSrcs] are the source registers, in isa.Inst.Sources order
	// (x0 included — architecturally a source, always ready).
	Srcs  [3]isa.Reg
	NSrcs uint8
	// Dst is the destination register; HasDst is false when the
	// instruction writes none (x0 writes are architecturally discarded,
	// mirroring isa.Inst.Dest).
	Dst    isa.Reg
	HasDst bool
	// Base is the memory-address base register, valid when IsMem().
	Base isa.Reg
	// MemBytes is the access width of memory operations (0 otherwise).
	MemBytes uint8
	// Class is the precomputed functional-unit class of the op.
	Class isa.Class

	flags metaFlags
}

type metaFlags uint16

const (
	flagLoad metaFlags = 1 << iota
	flagStore
	flagMem
	flagControl
	flagCondBranch
	flagEcall
	flagNop
)

// IsLoad reports whether the instruction is a load.
func (m *Meta) IsLoad() bool { return m.flags&flagLoad != 0 }

// IsStore reports whether the instruction is a store.
func (m *Meta) IsStore() bool { return m.flags&flagStore != 0 }

// IsMem reports whether the instruction accesses memory.
func (m *Meta) IsMem() bool { return m.flags&flagMem != 0 }

// IsControl reports whether the instruction redirects control flow.
func (m *Meta) IsControl() bool { return m.flags&flagControl != 0 }

// IsCondBranch reports whether the instruction is a conditional branch.
func (m *Meta) IsCondBranch() bool { return m.flags&flagCondBranch != 0 }

// IsEcall reports whether the instruction is an environment call.
func (m *Meta) IsEcall() bool { return m.flags&flagEcall != 0 }

// IsNop reports whether the instruction is a no-op.
func (m *Meta) IsNop() bool { return m.flags&flagNop != 0 }

// MetaOf derives the decode-once record for one instruction. It is the
// single place the per-static classification happens; everything else
// reads the stored result.
func MetaOf(in *isa.Inst) Meta {
	var m Meta
	n := uint8(0)
	if in.Rs1 != isa.RegNone {
		m.Srcs[n] = in.Rs1
		n++
	}
	if in.Rs2 != isa.RegNone {
		m.Srcs[n] = in.Rs2
		n++
	}
	if in.Rs3 != isa.RegNone {
		m.Srcs[n] = in.Rs3
		n++
	}
	m.NSrcs = n
	m.Dst, m.HasDst = in.Dest()
	if !m.HasDst {
		m.Dst = isa.RegNone
	}
	m.Base = isa.RegNone
	op := in.Op
	m.Class = op.Class()
	switch {
	case op.IsLoad():
		m.flags |= flagLoad | flagMem
	case op.IsStore():
		m.flags |= flagStore | flagMem
	}
	if m.IsMem() {
		m.Base = in.Rs1
		m.MemBytes = uint8(op.MemBytes())
	}
	if op.IsControl() {
		m.flags |= flagControl
	}
	if op.IsCondBranch() {
		m.flags |= flagCondBranch
	}
	if op == isa.OpEcall {
		m.flags |= flagEcall
	}
	if op == isa.OpNop {
		m.flags |= flagNop
	}
	return m
}

const (
	// pageShift sets the page granule: 1<<pageShift instruction slots
	// per page (4 KB of code), small enough that tiny kernels stay in
	// one or two pages and the MRU check almost always hits.
	pageShift = 10
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

const (
	entryEmpty uint8 = iota
	// entryPredecoded: inst+meta are valid but the functional simulator
	// has not delivered this PC yet — Lookup must still miss, because a
	// miss is what ends wrong-path reconstruction (§III-A).
	entryPredecoded
	entrySeen
)

type entry struct {
	in    isa.Inst
	meta  Meta
	state uint8
}

type page struct {
	ents [pageSize]entry
}

type mruSlot struct {
	p   *page
	idx uint64
}

// Cache maps instruction addresses to decode information.
type Cache struct {
	pages map[uint64]*page
	mru   [2]mruSlot

	// slow holds entries for PCs that are not 4-byte aligned (possible
	// only in hand-crafted traces); semantics match the paged store.
	slow map[uint64]*entry

	seen int // entries in state entrySeen (Len)

	// Statistics.
	lookups uint64
	misses  uint64
}

// New returns an empty code cache.
func New() *Cache {
	return &Cache{pages: make(map[uint64]*page)}
}

// pageFor returns the page holding page-index idx, consulting the MRU
// pair before the map. With create false, a missing page returns nil.
func (c *Cache) pageFor(idx uint64, create bool) *page {
	if m := &c.mru[0]; m.p != nil && m.idx == idx {
		return m.p
	}
	if m := &c.mru[1]; m.p != nil && m.idx == idx {
		c.mru[0], c.mru[1] = c.mru[1], c.mru[0]
		return c.mru[0].p
	}
	p := c.pages[idx]
	if p == nil {
		if !create {
			return nil
		}
		p = &page{}
		c.pages[idx] = p
	}
	c.mru[1] = c.mru[0]
	c.mru[0] = mruSlot{p: p, idx: idx}
	return p
}

// entryFor returns the entry slot for pc; nil when absent and create
// is false.
func (c *Cache) entryFor(pc uint64, create bool) *entry {
	if pc&3 != 0 {
		e := c.slow[pc]
		if e == nil && create {
			if c.slow == nil {
				c.slow = make(map[uint64]*entry)
			}
			e = &entry{}
			c.slow[pc] = e
		}
		return e
	}
	idx := pc >> 2
	p := c.pageFor(idx>>pageShift, create)
	if p == nil {
		return nil
	}
	return &p.ents[idx&pageMask]
}

// Insert records the decode information for the instruction at pc.
// Called for every correct-path instruction the performance simulator
// consumes.
func (c *Cache) Insert(pc uint64, in isa.Inst) {
	c.InsertGet(pc, &in)
}

// InsertGet records the decode information for pc and returns its Meta
// record — the batched consumer's combined insert-and-classify step.
// The classification is computed only when the slot is new or the
// stored instruction differs (self-modifying traces).
func (c *Cache) InsertGet(pc uint64, in *isa.Inst) *Meta {
	e := c.entryFor(pc, true)
	if e.state == entrySeen {
		if e.in == *in {
			return &e.meta
		}
		e.in = *in
		e.meta = MetaOf(in)
		return &e.meta
	}
	if e.state == entryEmpty || e.in != *in {
		e.in = *in
		e.meta = MetaOf(in)
	}
	e.state = entrySeen
	c.seen++
	return &e.meta
}

// Lookup returns the decode information for pc if the instruction has
// been seen before. Predecoded-but-undelivered PCs miss: wrong-path
// reconstruction may only replay what the functional simulator has
// actually produced.
func (c *Cache) Lookup(pc uint64) (isa.Inst, bool) {
	c.lookups++
	e := c.entryFor(pc, false)
	if e == nil || e.state != entrySeen {
		c.misses++
		return isa.Inst{}, false
	}
	return e.in, true
}

// LookupMeta is Lookup returning pointers into the cached entry (valid
// until the entry is overwritten): the reconstruction walk's accessor,
// with the same hit/miss accounting and semantics as Lookup.
func (c *Cache) LookupMeta(pc uint64) (*isa.Inst, *Meta, bool) {
	c.lookups++
	e := c.entryFor(pc, false)
	if e == nil || e.state != entrySeen {
		c.misses++
		return nil, nil, false
	}
	return &e.in, &e.meta, true
}

// MetaFor returns the Meta record for the instruction in at pc without
// touching the seen state or the lookup statistics — the accessor for
// records whose decode bits the caller already holds (queued
// correct-path peeks, emulated wrong-path streams). A new or
// mismatching slot is (re)classified in place.
func (c *Cache) MetaFor(pc uint64, in *isa.Inst) *Meta {
	e := c.entryFor(pc, true)
	if e.state == entryEmpty || e.in != *in {
		e.in = *in
		e.meta = MetaOf(in)
		if e.state == entryEmpty {
			e.state = entryPredecoded
		}
	}
	return &e.meta
}

// Predecode classifies every instruction of prog up front (state
// predecoded, not seen): first-delivery inserts and wrong-path MetaFor
// calls then find their records already computed. Lookup semantics are
// unchanged — predecoded entries still miss until delivered.
func (c *Cache) Predecode(prog *isa.Program) {
	if prog == nil {
		return
	}
	for i := range prog.Insts {
		pc := prog.Base + uint64(i)*isa.InstBytes
		in := prog.Insts[i]
		e := c.entryFor(pc, true)
		if e.state != entryEmpty {
			continue
		}
		e.in = in
		e.meta = MetaOf(&in)
		e.state = entryPredecoded
	}
}

// Len returns the number of distinct static instructions cached (seen;
// predecoded-only entries do not count).
func (c *Cache) Len() int { return c.seen }

// Stats returns lookup and miss counts of wrong-path reconstruction.
func (c *Cache) Stats() (lookups, misses uint64) { return c.lookups, c.misses }
