// Package codecache implements the code cache the paper introduces
// between the functional and performance simulator (§III-A): a table,
// indexed by instruction address, of the decode information of every
// instruction the functional simulator has delivered so far. When the
// performance model detects a branch misprediction it reconstructs the
// wrong path out of this cache; a lookup miss ends the reconstruction
// (the simulator then falls back to halting fetch until the branch
// resolves).
package codecache

import "repro/internal/isa"

// Cache maps instruction addresses to decode information.
type Cache struct {
	entries map[uint64]isa.Inst

	// Statistics.
	lookups uint64
	misses  uint64
}

// New returns an empty code cache.
func New() *Cache {
	return &Cache{entries: make(map[uint64]isa.Inst)}
}

// Insert records the decode information for the instruction at pc.
// Called for every correct-path instruction the performance simulator
// consumes.
func (c *Cache) Insert(pc uint64, in isa.Inst) {
	c.entries[pc] = in
}

// Lookup returns the decode information for pc if the instruction has
// been seen before.
func (c *Cache) Lookup(pc uint64) (isa.Inst, bool) {
	c.lookups++
	in, ok := c.entries[pc]
	if !ok {
		c.misses++
	}
	return in, ok
}

// Len returns the number of distinct static instructions cached.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns lookup and miss counts of wrong-path reconstruction.
func (c *Cache) Stats() (lookups, misses uint64) { return c.lookups, c.misses }
