package codecache

import (
	"testing"

	"repro/internal/isa"
)

func TestInsertLookup(t *testing.T) {
	c := New()
	in := isa.Inst{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	if _, ok := c.Lookup(0x1000); ok {
		t.Error("empty cache hit")
	}
	c.Insert(0x1000, in)
	got, ok := c.Lookup(0x1000)
	if !ok || got != in {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	// Re-insert overwrites (same PC seen again).
	in2 := isa.Inst{Op: isa.OpSub, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	c.Insert(0x1000, in2)
	if got, _ := c.Lookup(0x1000); got != in2 {
		t.Error("re-insert did not overwrite")
	}
	if c.Len() != 1 {
		t.Error("re-insert grew the cache")
	}
}

func TestMetaOf(t *testing.T) {
	ld := isa.Inst{Op: isa.OpLd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 8}
	m := MetaOf(&ld)
	if !m.IsLoad() || !m.IsMem() || m.IsStore() || m.IsControl() {
		t.Errorf("load flags wrong: %+v", m)
	}
	if m.NSrcs != 1 || m.Srcs[0] != isa.A1 {
		t.Errorf("load sources = %v[:%d]", m.Srcs, m.NSrcs)
	}
	if !m.HasDst || m.Dst != isa.A0 {
		t.Errorf("load dest = %v,%v", m.Dst, m.HasDst)
	}
	if m.Base != isa.A1 || m.MemBytes != 8 {
		t.Errorf("load base/bytes = %v/%d", m.Base, m.MemBytes)
	}
	if m.Class != isa.OpLd.Class() {
		t.Errorf("class = %v", m.Class)
	}

	// x0 destination is architecturally discarded.
	zr := isa.Inst{Op: isa.OpAdd, Rd: isa.X0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	if m := MetaOf(&zr); m.HasDst {
		t.Error("x0 write reported as a destination")
	}

	nop := isa.Nop
	if m := MetaOf(&nop); !m.IsNop() || m.NSrcs != 0 || m.HasDst {
		t.Errorf("nop meta wrong: %+v", m)
	}

	ec := isa.Inst{Op: isa.OpEcall, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone}
	if m := MetaOf(&ec); !m.IsEcall() {
		t.Error("ecall flag missing")
	}
}

// TestMetaMatchesInst cross-checks the precomputed record against the
// isa.Inst methods it replaces, over a representative instruction mix.
func TestMetaMatchesInst(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone},
		{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1},
		{Op: isa.OpLd, Rd: isa.A3, Rs1: isa.SP, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 16},
		{Op: isa.OpSd, Rd: isa.RegNone, Rs1: isa.SP, Rs2: isa.A3, Rs3: isa.RegNone, Imm: 16},
		{Op: isa.OpBeq, Rd: isa.RegNone, Rs1: isa.A0, Rs2: isa.A1, Rs3: isa.RegNone, Target: 0x40},
		{Op: isa.OpJal, Rd: isa.RA, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone, Target: 0x80},
		{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.RA, Rs2: isa.RegNone, Rs3: isa.RegNone},
		{Op: isa.OpFmadd, Rd: isa.F(0), Rs1: isa.F(1), Rs2: isa.F(2), Rs3: isa.F(3)},
		isa.Nop,
	}
	for _, in := range insts {
		in := in
		m := MetaOf(&in)
		var srcs [3]isa.Reg
		want := in.Sources(srcs[:0])
		if int(m.NSrcs) != len(want) {
			t.Errorf("%v: NSrcs = %d, want %d", in, m.NSrcs, len(want))
			continue
		}
		for i, r := range want {
			if m.Srcs[i] != r {
				t.Errorf("%v: Srcs[%d] = %v, want %v", in, i, m.Srcs[i], r)
			}
		}
		if d, ok := in.Dest(); ok != m.HasDst || (ok && d != m.Dst) {
			t.Errorf("%v: Dst = %v,%v, want %v,%v", in, m.Dst, m.HasDst, d, ok)
		}
		if b, ok := in.BaseReg(); ok != m.IsMem() || (ok && b != m.Base) {
			t.Errorf("%v: Base = %v, want %v,%v", in, m.Base, b, ok)
		}
		if in.Op.IsControl() != m.IsControl() || in.Op.IsCondBranch() != m.IsCondBranch() ||
			in.Op.IsLoad() != m.IsLoad() || in.Op.IsStore() != m.IsStore() {
			t.Errorf("%v: class flags diverge from Op predicates", in)
		}
	}
}

func TestInsertGetAndMetaFor(t *testing.T) {
	c := New()
	in := isa.Inst{Op: isa.OpLd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.RegNone, Rs3: isa.RegNone}
	m := c.InsertGet(0x2000, &in)
	if !m.IsLoad() {
		t.Fatal("InsertGet meta wrong")
	}
	if m2 := c.InsertGet(0x2000, &in); m2 != m {
		t.Error("re-insert of identical inst reclassified the entry")
	}
	// MetaFor on an unseen PC classifies without making Lookup hit.
	wp := isa.Inst{Op: isa.OpSub, Rd: isa.A2, Rs1: isa.A3, Rs2: isa.A4, Rs3: isa.RegNone}
	if m := c.MetaFor(0x3000, &wp); m.NSrcs != 2 {
		t.Errorf("MetaFor NSrcs = %d", m.NSrcs)
	}
	if _, ok := c.Lookup(0x3000); ok {
		t.Error("MetaFor made Lookup hit an undelivered PC")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (MetaFor must not count as seen)", c.Len())
	}
	// Re-inserting a different inst at the same PC overwrites the meta.
	in2 := isa.Inst{Op: isa.OpSd, Rd: isa.RegNone, Rs1: isa.A5, Rs2: isa.A0, Rs3: isa.RegNone}
	if m := c.InsertGet(0x2000, &in2); !m.IsStore() || m.Base != isa.A5 {
		t.Error("overwrite did not reclassify")
	}
}

func TestPredecode(t *testing.T) {
	prog := &isa.Program{
		Base: 0x1000,
		Insts: []isa.Inst{
			{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: 1},
			{Op: isa.OpBeq, Rd: isa.RegNone, Rs1: isa.A0, Rs2: isa.A1, Rs3: isa.RegNone, Target: 0x1000},
		},
	}
	c := New()
	c.Predecode(prog)
	// Predecoded entries must still miss: reconstruction may only replay
	// instructions the functional simulator has delivered.
	if _, ok := c.Lookup(0x1000); ok {
		t.Error("predecoded entry hit before delivery")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after predecode, want 0", c.Len())
	}
	in := prog.Insts[0]
	c.Insert(0x1000, in)
	if got, ok := c.Lookup(0x1000); !ok || got != in {
		t.Error("delivered entry missing after predecode")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	c.Predecode(nil) // must be a no-op
}

// TestUnalignedPCs exercises the slow-path map for trace-supplied PCs
// that are not instruction-aligned.
func TestUnalignedPCs(t *testing.T) {
	c := New()
	a := isa.Inst{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	b := isa.Inst{Op: isa.OpSub, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	c.Insert(0x1001, a)
	c.Insert(0x1002, b)
	if got, ok := c.Lookup(0x1001); !ok || got != a {
		t.Error("unaligned entry 0x1001 wrong")
	}
	if got, ok := c.Lookup(0x1002); !ok || got != b {
		t.Error("unaligned entry 0x1002 wrong")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// TestPageSpread inserts across many pages to exercise MRU eviction and
// the page map.
func TestPageSpread(t *testing.T) {
	c := New()
	in := isa.Inst{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.RegNone, Rs3: isa.RegNone}
	const stride = 4 * pageSize // one entry per page
	for i := uint64(0); i < 8; i++ {
		c.Insert(0x10000+i*stride, in)
	}
	for i := uint64(0); i < 8; i++ {
		if _, ok := c.Lookup(0x10000 + i*stride); !ok {
			t.Errorf("entry on page %d lost", i)
		}
	}
	if c.Len() != 8 {
		t.Errorf("Len = %d, want 8", c.Len())
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.Insert(0x100, isa.Nop)
	c.Lookup(0x100) // hit
	c.Lookup(0x200) // miss
	c.Lookup(0x300) // miss
	lookups, misses := c.Stats()
	if lookups != 3 || misses != 2 {
		t.Errorf("stats = %d/%d, want 3/2", lookups, misses)
	}
}
