package codecache

import (
	"testing"

	"repro/internal/isa"
)

func TestInsertLookup(t *testing.T) {
	c := New()
	in := isa.Inst{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	if _, ok := c.Lookup(0x1000); ok {
		t.Error("empty cache hit")
	}
	c.Insert(0x1000, in)
	got, ok := c.Lookup(0x1000)
	if !ok || got != in {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	// Re-insert overwrites (same PC seen again).
	in2 := isa.Inst{Op: isa.OpSub, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: isa.RegNone}
	c.Insert(0x1000, in2)
	if got, _ := c.Lookup(0x1000); got != in2 {
		t.Error("re-insert did not overwrite")
	}
	if c.Len() != 1 {
		t.Error("re-insert grew the cache")
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.Insert(0x100, isa.Nop)
	c.Lookup(0x100) // hit
	c.Lookup(0x200) // miss
	c.Lookup(0x300) // miss
	lookups, misses := c.Stats()
	if lookups != 3 || misses != 2 {
		t.Errorf("stats = %d/%d, want 3/2", lookups, misses)
	}
}
