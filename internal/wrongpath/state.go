package wrongpath

import "repro/internal/checkpoint"

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the policy statistics — the only persistent
// policy state. The reconstruction scratch (record buffer, RAS copy) is
// rebuilt from scratch inside every Begin call, so it never needs to
// survive a checkpoint.
func (s *Stats) SaveState(w *checkpoint.Writer) {
	w.Section("wrongpath/Stats", snapshotVersion)
	w.Uint64(s.Mispredicts)
	w.Uint64(s.WPGenerated)
	w.Uint64(s.ConvChecked)
	w.Uint64(s.ConvDetected)
	w.Uint64(s.ConvDistSum)
	w.Uint64(s.ConvMatchLenSum)
	w.Uint64(s.WPMemOps)
	w.Uint64(s.WPAddrRecovered)
}

// RestoreState overwrites the statistics with the snapshot.
func (s *Stats) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("wrongpath/Stats", snapshotVersion); err != nil {
		return err
	}
	s.Mispredicts = r.Uint64()
	s.WPGenerated = r.Uint64()
	s.ConvChecked = r.Uint64()
	s.ConvDetected = r.Uint64()
	s.ConvDistSum = r.Uint64()
	s.ConvMatchLenSum = r.Uint64()
	s.WPMemOps = r.Uint64()
	s.WPAddrRecovered = r.Uint64()
	return r.Err()
}
