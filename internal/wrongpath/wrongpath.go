// Package wrongpath implements the paper's four wrong-path modeling
// policies for functional-first simulation:
//
//   - NoWP: the functional-first default — no wrong-path modeling;
//     fetch halts on a mispredicted branch until it resolves.
//   - InstRec (§III-A): reconstruct wrong-path *instructions* from the
//     code cache and simulate their I-cache, predictor and
//     functional-unit effects; data addresses are unknown.
//   - Conv (§III-C, the paper's novel technique): InstRec plus
//     convergence detection between the wrong and correct path,
//     an independence check through register dependences, and memory
//     address recovery from the future correct-path instructions that
//     the run-ahead functional simulator has already queued.
//   - WPEmul (§III-B): full functional wrong-path emulation — the
//     wrong-path records were produced by the functional simulator
//     (checkpoint, execute-at redirect, stores suppressed) and attached
//     to the mispredicted branch.
//
// A policy is invoked by the core when it detects a misprediction and
// returns the sequence of wrong-path instruction records the core should
// push through the pipeline until the branch resolves.
package wrongpath

import (
	"repro/internal/branch"
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Kind enumerates the four policies.
type Kind int

// Policy kinds, ordered from cheapest to most accurate. The paper's
// four simulator variants are NoWP, InstRec, Conv and WPEmul;
// ConvResolve is this reproduction's extension of Conv (wrong-path
// branch resolution, see convPolicy.ResolveWPBranches).
const (
	NoWP Kind = iota
	InstRec
	Conv
	ConvResolve
	WPEmul
)

// kinds is the canonical ordering of every technique, cheapest first
// and the wpemul reference last. The //wplint:exhaustive directive
// makes the exhaustive analyzer verify the list names every declared
// Kind, so a newly added policy cannot be left out of Kinds() (and
// thereby out of RunAll, the experiment drivers and the CLI help).
var kinds = [...]Kind{ //wplint:exhaustive
	NoWP, InstRec, Conv, ConvResolve, WPEmul,
}

// Kinds returns all techniques in canonical report order: NoWP first,
// then the reconstruction-based techniques, WPEmul (the reference)
// last. The slice is a fresh copy; callers may filter or reorder it.
func Kinds() []Kind {
	out := make([]Kind, len(kinds))
	copy(out, kinds[:])
	return out
}

// Names returns the parseable short name of every technique, in
// Kinds() order (for CLI flag help and -wp parsing errors).
func Names() []string {
	out := make([]string, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, k.String())
	}
	return out
}

// String returns the paper's short name for the policy.
func (k Kind) String() string {
	switch k {
	case NoWP:
		return "nowp"
	case InstRec:
		return "instrec"
	case Conv:
		return "conv"
	case ConvResolve:
		return "convres"
	case WPEmul:
		return "wpemul"
	}
	return "unknown"
}

// Downgrade returns the next technique down the graceful-degradation
// ladder (wpemul→conv→instrec→nowp; convres, the conv variant, also
// drops to conv) and whether a lower rung exists. Each descent trades
// wrong-path fidelity for fewer runtime requirements: conv needs only
// queue run-ahead, instrec only past decode information, nowp nothing —
// so a fault that breaks one rung's requirement (a frontend capability,
// a wedged run-ahead) is survivable one rung below. NoWP is the floor.
func Downgrade(k Kind) (Kind, bool) {
	switch k {
	case WPEmul:
		return Conv, true
	case ConvResolve:
		return Conv, true
	case Conv:
		return InstRec, true
	case InstRec:
		return NoWP, true
	case NoWP:
		return NoWP, false
	}
	return NoWP, false
}

// ParseKind converts a policy name ("nowp", "instrec", "conv",
// "convres", "wpemul") to its Kind.
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "nowp":
		return NoWP, true
	case "instrec":
		return InstRec, true
	case "conv":
		return Conv, true
	case "convres":
		return ConvResolve, true
	case "wpemul":
		return WPEmul, true
	}
	return NoWP, false
}

// Context is what the core exposes to a policy at misprediction time.
type Context struct {
	// Code is the code cache of past decoded instructions.
	Code *codecache.Cache
	// Pred is the core's branch predictor; policies may read predictions
	// but must not update state (wrong-path execution does not train the
	// predictor in this model).
	Pred *branch.Unit
	// Peek returns the i-th future correct-path instruction (0 = the
	// instruction the core will consume next); ok is false past program
	// end or past the queue's lookahead.
	Peek func(i int) (trace.DynInst, bool)
	// Window, when non-nil, returns a read-only contiguous view of the
	// future correct-path instructions starting at i — at most max
	// records, possibly fewer (callers walk on by re-requesting at
	// i+len(window)); empty exactly where Peek(i) reports false. The
	// batched core provides it so convergence walks scan queued records
	// in place instead of copying one DynInst per probe.
	Window func(i, max int) []trace.DynInst
	// ROBSize bounds the convergence search (the paper: at most
	// 2 × ROB-size comparisons).
	ROBSize int
	// MaxLen caps the reconstructed wrong path: ROB size plus the
	// front-end buffers (§III-B).
	MaxLen int
}

// win returns a view of the future correct path starting at i, at most
// max records: the batched Window accessor when the core provides one,
// else a one-record window copied through Peek into *scratch. Either
// way the walk visits the same record sequence, so policy decisions —
// and therefore results — do not depend on which accessor is wired.
func (ctx *Context) win(i, max int, scratch *[1]trace.DynInst) []trace.DynInst {
	if ctx.Window != nil {
		return ctx.Window(i, max)
	}
	di, ok := ctx.Peek(i)
	if !ok {
		return nil
	}
	scratch[0] = di
	return scratch[:1]
}

// Stats aggregates policy-level counters; the conv fields feed the
// paper's Table III.
type Stats struct {
	// Mispredicts counts mispredictions presented to the policy.
	Mispredicts uint64
	// WPGenerated counts wrong-path instruction records returned.
	WPGenerated uint64

	// ConvChecked counts mispredictions where the convergence check ran
	// (one-sided conditional branches with a reconstructable wrong path).
	ConvChecked uint64
	// ConvDetected counts mispredictions where convergence was found.
	ConvDetected uint64
	// ConvDistSum accumulates the pre-convergence path length (the
	// paper's "conv dist" numerator).
	ConvDistSum uint64
	// ConvMatchLenSum accumulates the length of the matched
	// (PC-identical) region walked after each detected convergence.
	ConvMatchLenSum uint64
	// WPMemOps counts memory operations on generated wrong paths.
	WPMemOps uint64
	// WPAddrRecovered counts wrong-path memory operations whose address
	// was recovered (the paper's "addr recover" numerator).
	WPAddrRecovered uint64
}

// ConvFrac returns the fraction of checked branch misses with detected
// convergence.
func (s *Stats) ConvFrac() float64 {
	if s.ConvChecked == 0 {
		return 0
	}
	return float64(s.ConvDetected) / float64(s.ConvChecked)
}

// ConvDist returns the average instruction distance to the convergence
// point.
func (s *Stats) ConvDist() float64 {
	if s.ConvDetected == 0 {
		return 0
	}
	return float64(s.ConvDistSum) / float64(s.ConvDetected)
}

// AddrRecoverFrac returns the fraction of wrong-path memory operations
// with recovered addresses.
func (s *Stats) AddrRecoverFrac() float64 {
	if s.WPMemOps == 0 {
		return 0
	}
	return float64(s.WPAddrRecovered) / float64(s.WPMemOps)
}

// Policy produces the wrong-path instruction stream for a misprediction.
type Policy interface {
	Kind() Kind
	// Begin is called when the core detects that the control instruction
	// br was mispredicted and the front end would fetch from
	// predictedTarget. It returns the wrong-path records to simulate, in
	// fetch order. The returned slice is valid until the next Begin.
	Begin(ctx *Context, br *trace.DynInst, predictedTarget uint64) []trace.DynInst
	Stats() *Stats
}

// New returns a fresh policy of the given kind.
func New(k Kind) Policy {
	switch k {
	case NoWP:
		return &nowpPolicy{}
	case InstRec:
		return &instrecPolicy{}
	case Conv:
		return &convPolicy{}
	case ConvResolve:
		return &convPolicy{kind: ConvResolve, ResolveWPBranches: true}
	case WPEmul:
		return &wpemulPolicy{}
	}
	panic("wrongpath: unknown kind")
}

// --- nowp ---

type nowpPolicy struct{ stats Stats }

func (p *nowpPolicy) Kind() Kind    { return NoWP }
func (p *nowpPolicy) Stats() *Stats { return &p.stats }

func (p *nowpPolicy) Begin(_ *Context, _ *trace.DynInst, _ uint64) []trace.DynInst {
	p.stats.Mispredicts++
	return nil
}

// --- shared reconstruction walk (instrec and conv) ---

// reconstruct walks the code cache from startPC, steering wrong-path
// control flow with read-only predictions (conditional directions from
// the predictor tables, return targets from a scratch RAS copy,
// indirect targets from the indirect table). The walk stops at the
// instruction-count cap, on a code-cache miss, on an unpredictable
// indirect target, or at an environment call — the same conditions
// under which the paper's implementation falls back to halting fetch.
//
// The records are appended to buf (reused across calls) and have no
// memory addresses: HasAddr is false. ras is the caller's pooled
// scratch stack, re-seeded from the predictor on entry.
func reconstruct(ctx *Context, startPC uint64, buf []trace.DynInst, ras *branch.RAS) []trace.DynInst {
	ctx.Pred.SnapshotRASInto(ras)
	hist := ctx.Pred.SpecHistory()
	pc := startPC
	for len(buf) < ctx.MaxLen {
		in, m, ok := ctx.Code.LookupMeta(pc)
		if !ok || m.IsEcall() {
			break
		}
		di := trace.DynInst{PC: pc, In: *in, WrongPath: true}
		next := pc + isa.InstBytes
		switch {
		case m.IsCondBranch():
			di.Taken, hist = ctx.Pred.PredictCondSpec(pc, hist)
			if di.Taken {
				next = in.Target
			}
		case in.Op == isa.OpJal:
			di.Taken = true
			next = in.Target
			if branch.IsCall(*in) {
				ras.Push(pc + isa.InstBytes)
			}
		case in.Op == isa.OpJalr:
			di.Taken = true
			var t uint64
			if branch.IsReturn(*in) {
				t, ok = ras.Pop()
			} else {
				t, ok = ctx.Pred.PredictIndirect(pc)
				if branch.IsCall(*in) {
					ras.Push(pc + isa.InstBytes)
				}
			}
			if !ok {
				// No target prediction: the front end cannot continue.
				return append(buf, di)
			}
			next = t
		}
		di.NextPC = next
		buf = append(buf, di)
		pc = next
	}
	return buf
}

// --- instrec ---

type instrecPolicy struct {
	stats Stats
	buf   []trace.DynInst
	ras   branch.RAS // pooled reconstruction scratch
}

func (p *instrecPolicy) Kind() Kind    { return InstRec }
func (p *instrecPolicy) Stats() *Stats { return &p.stats }

func (p *instrecPolicy) Begin(ctx *Context, _ *trace.DynInst, predictedTarget uint64) []trace.DynInst {
	p.stats.Mispredicts++
	p.buf = reconstruct(ctx, predictedTarget, p.buf[:0], &p.ras)
	p.stats.WPGenerated += uint64(len(p.buf))
	for i := range p.buf {
		if p.buf[i].In.Op.IsMem() {
			p.stats.WPMemOps++
		}
	}
	return p.buf
}

// --- conv ---

// convPolicy implements convergence exploitation. Options outside the
// paper's defaults exist for the ablation and extension experiments.
type convPolicy struct {
	stats Stats
	buf   []trace.DynInst
	ras   branch.RAS // pooled reconstruction scratch
	// kind is Conv or ConvResolve (zero value: Conv).
	kind Kind

	// DisableIndependenceCheck turns off the dirty-register filter —
	// the paper's "optimism pitfall" ablation: every matched memory
	// operation copies its address, guaranteeing by-construction hits.
	DisableIndependenceCheck bool

	// ResolveWPBranches enables the wrong-path branch-resolution
	// extension (beyond the paper's technique): after the convergence
	// point, a wrong-path branch whose operands are data-independent of
	// the pre-convergence code computes the same condition the correct
	// path computes, so the (wrong-path) core resolves it and redirects
	// wrong-path fetch — meaning the real wrong path self-repairs
	// towards the correct path's control flow, as full wrong-path
	// emulation shows. With this flag the matched walk follows the
	// correct path across clean branches instead of stopping at the
	// first prediction mismatch, and only diverges at branches whose
	// condition genuinely depends on pre-convergence state.
	ResolveWPBranches bool
}

// NewConv returns a Conv policy with ablation switches accessible.
func NewConv() *convPolicy { return &convPolicy{} }

func (p *convPolicy) Kind() Kind {
	if p.kind == ConvResolve || p.ResolveWPBranches {
		return ConvResolve
	}
	return Conv
}
func (p *convPolicy) Stats() *Stats { return &p.stats }

func (p *convPolicy) Begin(ctx *Context, br *trace.DynInst, predictedTarget uint64) []trace.DynInst {
	p.stats.Mispredicts++
	p.buf = reconstruct(ctx, predictedTarget, p.buf[:0], &p.ras)
	wp := p.buf
	// Convergence is only checked for one-sided conditional branches
	// (paper §III-C1); indirect mispredictions keep the plain
	// reconstruction.
	if len(wp) > 0 && br.In.Op.IsCondBranch() {
		p.stats.ConvChecked++
		if p.ResolveWPBranches {
			wp = p.recoverResolving(ctx, wp)
			p.buf = wp
		} else {
			p.recoverAddresses(ctx, wp)
		}
	}
	for i := range wp {
		if wp[i].In.Op.IsMem() {
			p.stats.WPMemOps++
		}
	}
	p.stats.WPGenerated += uint64(len(wp))
	return wp
}

// detect finds the one-sided convergence point between the predicted
// wrong path wp and the queued correct path. It returns the case-A
// flag (the correct path's first instruction is found inside the wrong
// path), the pre-convergence distance, and whether convergence was
// found at all, updating the detection statistics.
func (p *convPolicy) detect(ctx *Context, wp []trace.DynInst) (caseA bool, dist int, ok bool) {
	var scratch [1]trace.DynInst
	w0 := ctx.win(0, 1, &scratch)
	if len(w0) == 0 {
		return false, 0, false // program end: skip the check
	}
	cp0PC := w0[0].PC
	distA := -1
	for k := 1; k < len(wp) && k <= ctx.ROBSize; k++ {
		if wp[k].PC == cp0PC {
			distA = k
			break
		}
	}
	distB := -1
	wp0PC := wp[0].PC
scanB:
	for k := 1; k <= ctx.ROBSize; {
		w := ctx.win(k, ctx.ROBSize+1-k, &scratch)
		if len(w) == 0 {
			break
		}
		for j := range w {
			if w[j].PC == wp0PC {
				distB = k + j
				break scanB
			}
		}
		k += len(w)
	}
	caseA = distA >= 0 && (distB < 0 || distA <= distB)
	switch {
	case caseA:
		dist = distA
	case distB >= 0:
		dist = distB
	default:
		return false, 0, false
	}
	p.stats.ConvDetected++
	p.stats.ConvDistSum += uint64(dist)
	return caseA, dist, true
}

// recoverAddresses performs convergence detection (§III-C1: at most
// 2 × ROB-size comparisons — case A: the correct path's first
// instruction appears inside the wrong path after k instructions, the
// paper's WXYZ prefix; case B: the wrong path's first instruction
// appears k instructions down the correct path) and address recovery on
// the reconstructed wrong path wp, in place.
func (p *convPolicy) recoverAddresses(ctx *Context, wp []trace.DynInst) {
	caseA, dist, ok := p.detect(ctx, wp)
	if !ok {
		return
	}
	dirty, wpIdx, cpIdx, ok := p.preConvergence(ctx, wp, caseA, dist)
	if !ok {
		return
	}

	// Matched-region walk: copy addresses of memory operations whose
	// base register is clean; propagate dirtiness through register
	// dependences. The walk stops at the first PC mismatch (the
	// reconstructed wrong path diverged — e.g. a differently-predicted
	// branch inside the window). Correct-path records are scanned
	// through ring windows; decode facts come from the precomputed Meta.
	var scratch [1]trace.DynInst
walk:
	for wpIdx < len(wp) {
		w := ctx.win(cpIdx, len(wp)-wpIdx, &scratch)
		if len(w) == 0 {
			break
		}
		for j := range w {
			ci := &w[j]
			if ci.PC != wp[wpIdx].PC {
				break walk
			}
			m := ctx.Code.MetaFor(wp[wpIdx].PC, &wp[wpIdx].In)
			srcDirty := false
			for s := uint8(0); s < m.NSrcs; s++ {
				if dirty.has(m.Srcs[s]) {
					srcDirty = true
					break
				}
			}
			if m.IsMem() && ci.HasAddr {
				if p.DisableIndependenceCheck || !dirty.has(m.Base) {
					wp[wpIdx].MemAddr = ci.MemAddr
					wp[wpIdx].HasAddr = true
					wp[wpIdx].Recovered = true
					p.stats.WPAddrRecovered++
				}
			}
			if m.HasDst {
				if srcDirty {
					dirty.add(m.Dst)
				} else {
					dirty.remove(m.Dst)
				}
			}
			wpIdx++
			cpIdx++
			p.stats.ConvMatchLenSum++
			if wpIdx >= len(wp) {
				break walk
			}
		}
	}
}

// preConvergence collects the dirty registers written on the
// non-converging prefix (§III-C2: values produced before the
// convergence point may differ between the two paths) and returns the
// walk start indices into the wrong path and the correct-path peek
// window.
func (p *convPolicy) preConvergence(ctx *Context, wp []trace.DynInst, caseA bool, dist int) (dirty regSet, wpIdx, cpIdx int, ok bool) {
	if caseA {
		for i := 0; i < dist; i++ {
			if rd, ok := wp[i].In.Dest(); ok {
				dirty.add(rd)
			}
		}
		return dirty, dist, 0, true
	}
	var scratch [1]trace.DynInst
	for i := 0; i < dist; {
		w := ctx.win(i, dist-i, &scratch)
		if len(w) == 0 {
			return 0, 0, 0, false
		}
		for j := range w {
			if rd, ok := w[j].In.Dest(); ok {
				dirty.add(rd)
			}
		}
		i += len(w)
	}
	return dirty, 0, dist, true
}

// recoverResolving is the wrong-path branch-resolution variant of the
// matched walk: it rebuilds the post-convergence wrong path, steering
// clean control instructions along the correct path (the direction the
// wrong-path core itself would resolve them to) and falling back to
// prediction-only reconstruction at the first genuinely data-dependent
// (dirty) divergence. It returns the rebuilt wrong path.
func (p *convPolicy) recoverResolving(ctx *Context, wp []trace.DynInst) []trace.DynInst {
	caseA, dist, ok := p.detect(ctx, wp)
	if !ok {
		return wp
	}
	dirty, wpIdx, cpIdx, ok := p.preConvergence(ctx, wp, caseA, dist)
	if !ok {
		return wp
	}
	// Keep the pre-convergence wrong-path prefix, rebuild the rest,
	// scanning the correct path through ring windows with decode facts
	// from the precomputed Meta.
	out := wp[:wpIdx]
	hist := ctx.Pred.SpecHistory()
	var scratch [1]trace.DynInst
outer:
	for len(out) < ctx.MaxLen {
		w := ctx.win(cpIdx, ctx.MaxLen-len(out), &scratch)
		if len(w) == 0 {
			break
		}
		for j := range w {
			ci := &w[j]
			m := ctx.Code.MetaFor(ci.PC, &ci.In)
			if m.IsEcall() {
				break outer
			}
			di := trace.DynInst{PC: ci.PC, In: ci.In, WrongPath: true}
			srcDirty := false
			for s := uint8(0); s < m.NSrcs; s++ {
				if dirty.has(m.Srcs[s]) {
					srcDirty = true
					break
				}
			}
			if m.IsMem() && ci.HasAddr {
				if p.DisableIndependenceCheck || !dirty.has(m.Base) {
					di.MemAddr = ci.MemAddr
					di.HasAddr = true
					di.Recovered = true
					p.stats.WPAddrRecovered++
				}
			}
			if m.HasDst {
				if srcDirty {
					dirty.add(m.Dst)
				} else {
					dirty.remove(m.Dst)
				}
			}
			p.stats.ConvMatchLenSum++
			if m.IsControl() && srcDirty {
				// A branch whose condition depends on pre-convergence state:
				// the wrong path genuinely decides on its own (different)
				// data. Follow the prediction; if it disagrees with the
				// correct path, the paths diverge for good and the walk
				// degrades to prediction-only reconstruction.
				var predTaken bool
				predTaken, hist = ctx.Pred.PredictCondSpec(di.PC, hist)
				if m.IsCondBranch() && predTaken != ci.Taken {
					di.Taken = predTaken
					di.NextPC = di.PC + isa.InstBytes
					if predTaken {
						di.NextPC = ci.In.Target
					}
					out = append(out, di)
					return p.continueReconstruct(ctx, di.NextPC, hist, out)
				}
				if !m.IsCondBranch() {
					// Dirty indirect target: cannot follow further.
					di.Taken = true
					di.NextPC = ci.NextPC
					out = append(out, di)
					return out
				}
			}
			// Clean control (or clean fall-through): the wrong-path core
			// resolves it to the same outcome as the correct path.
			if m.IsCondBranch() {
				_, hist = ctx.Pred.PredictCondSpec(di.PC, hist)
			}
			di.Taken = ci.Taken
			di.NextPC = ci.NextPC
			out = append(out, di)
			cpIdx++
			if len(out) >= ctx.MaxLen {
				break outer
			}
		}
	}
	return out
}

// continueReconstruct extends a partially rebuilt wrong path by plain
// predicted-path reconstruction (no addresses) from pc.
func (p *convPolicy) continueReconstruct(ctx *Context, pc uint64, hist uint64, out []trace.DynInst) []trace.DynInst {
	ras := &p.ras // free here: the initial reconstruct walk has finished
	ctx.Pred.SnapshotRASInto(ras)
	for len(out) < ctx.MaxLen {
		in, m, ok := ctx.Code.LookupMeta(pc)
		if !ok || m.IsEcall() {
			break
		}
		di := trace.DynInst{PC: pc, In: *in, WrongPath: true}
		next := pc + isa.InstBytes
		switch {
		case m.IsCondBranch():
			di.Taken, hist = ctx.Pred.PredictCondSpec(pc, hist)
			if di.Taken {
				next = in.Target
			}
		case in.Op == isa.OpJal:
			di.Taken = true
			next = in.Target
			if branch.IsCall(*in) {
				ras.Push(pc + isa.InstBytes)
			}
		case in.Op == isa.OpJalr:
			di.Taken = true
			var t uint64
			if branch.IsReturn(*in) {
				t, ok = ras.Pop()
			} else {
				t, ok = ctx.Pred.PredictIndirect(pc)
				if branch.IsCall(*in) {
					ras.Push(pc + isa.InstBytes)
				}
			}
			if !ok {
				return append(out, di)
			}
			next = t
		}
		di.NextPC = next
		out = append(out, di)
		pc = next
	}
	return out
}

// MatchLen returns the average matched-region length per detected
// convergence.
func (s *Stats) MatchLen() float64 {
	if s.ConvDetected == 0 {
		return 0
	}
	return float64(s.ConvMatchLenSum) / float64(s.ConvDetected)
}

// regSet is a bitmask over the unified 64-register space.
type regSet uint64

func (s *regSet) add(r isa.Reg)     { *s |= 1 << uint(r) }
func (s *regSet) remove(r isa.Reg)  { *s &^= 1 << uint(r) }
func (s regSet) has(r isa.Reg) bool { return r.Valid() && s&(1<<uint(r)) != 0 }

// --- wpemul ---

type wpemulPolicy struct{ stats Stats }

func (p *wpemulPolicy) Kind() Kind    { return WPEmul }
func (p *wpemulPolicy) Stats() *Stats { return &p.stats }

func (p *wpemulPolicy) Begin(_ *Context, br *trace.DynInst, _ uint64) []trace.DynInst {
	p.stats.Mispredicts++
	p.stats.WPGenerated += uint64(len(br.WP))
	for i := range br.WP {
		if br.WP[i].In.Op.IsMem() {
			p.stats.WPMemOps++
			if br.WP[i].HasAddr {
				p.stats.WPAddrRecovered++
			}
		}
	}
	return br.WP
}
