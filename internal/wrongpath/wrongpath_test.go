package wrongpath

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/trace"
)

const none = isa.RegNone

// The test program is the paper's Figure 2 one-sided branch:
//
//	0x100: beq  a0, zero, 0x120    the mispredicted branch
//	0x104: addi t0, t0, 1          W  (wrong-path-only prefix)
//	0x108: addi t1, t1, 1          X
//	0x10c: ld   a1, 0(s0)          Y
//	0x110: j    0x120              Z
//	0x120: ld   a2, 0(s1)          A  (convergence point; clean base s1)
//	0x124: addi a3, a2, 1          B
//	0x128: ld   a4, 0(t0)          C  (base t0 is dirty after W)
//	0x12c: j    0x100              D  (loop back)
var testProg = map[uint64]isa.Inst{
	0x100: {Op: isa.OpBeq, Rd: none, Rs1: isa.A0, Rs2: isa.X0, Rs3: none, Target: 0x120},
	0x104: {Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.T0, Rs2: none, Rs3: none, Imm: 1},
	0x108: {Op: isa.OpAddi, Rd: isa.T1, Rs1: isa.T1, Rs2: none, Rs3: none, Imm: 1},
	0x10c: {Op: isa.OpLd, Rd: isa.A1, Rs1: isa.S0, Rs2: none, Rs3: none},
	0x110: {Op: isa.OpJal, Rd: isa.X0, Rs1: none, Rs2: none, Rs3: none, Target: 0x120},
	0x120: {Op: isa.OpLd, Rd: isa.A2, Rs1: isa.S1, Rs2: none, Rs3: none},
	0x124: {Op: isa.OpAddi, Rd: isa.A3, Rs1: isa.A2, Rs2: none, Rs3: none, Imm: 1},
	0x128: {Op: isa.OpLd, Rd: isa.A4, Rs1: isa.T0, Rs2: none, Rs3: none},
	0x12c: {Op: isa.OpJal, Rd: isa.X0, Rs1: none, Rs2: none, Rs3: none, Target: 0x100},
}

func newCode() *codecache.Cache {
	c := codecache.New()
	for pc, in := range testProg {
		c.Insert(pc, in)
	}
	return c
}

// takenCP builds the correct path after the branch when it is taken:
// repeated loop iterations 0x120,0x124,0x128,0x12c,0x100(taken),…
// Every memory instruction gets a distinct address.
func takenCP(iters int) []trace.DynInst {
	var cp []trace.DynInst
	addr := uint64(0xa000)
	for i := 0; i < iters; i++ {
		cp = append(cp,
			trace.DynInst{PC: 0x120, In: testProg[0x120], MemAddr: addr, HasAddr: true, NextPC: 0x124},
			trace.DynInst{PC: 0x124, In: testProg[0x124], NextPC: 0x128},
			trace.DynInst{PC: 0x128, In: testProg[0x128], MemAddr: addr + 0x1000, HasAddr: true, NextPC: 0x12c},
			trace.DynInst{PC: 0x12c, In: testProg[0x12c], Taken: true, NextPC: 0x100},
			trace.DynInst{PC: 0x100, In: testProg[0x100], Taken: true, NextPC: 0x120},
		)
		addr += 8
	}
	return cp
}

func peekOf(cp []trace.DynInst) func(int) (trace.DynInst, bool) {
	return func(i int) (trace.DynInst, bool) {
		if i < 0 || i >= len(cp) {
			return trace.DynInst{}, false
		}
		return cp[i], true
	}
}

func newCtx(cp []trace.DynInst) *Context {
	return &Context{
		Code:    newCode(),
		Pred:    branch.New(branch.DefaultConfig()),
		Peek:    peekOf(cp),
		ROBSize: 64,
		MaxLen:  72,
	}
}

// theBranch is the mispredicted-branch record (actually taken).
func theBranch() *trace.DynInst {
	return &trace.DynInst{PC: 0x100, In: testProg[0x100], Taken: true, NextPC: 0x120}
}

func TestKindNames(t *testing.T) {
	for _, k := range []Kind{NoWP, InstRec, Conv, ConvResolve, WPEmul} {
		name := k.String()
		got, ok := ParseKind(name)
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, got, ok)
		}
		if New(k).Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, New(k).Kind())
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name")
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted junk")
	}
}

func TestNoWP(t *testing.T) {
	p := New(NoWP)
	wp := p.Begin(newCtx(takenCP(4)), theBranch(), 0x104)
	if wp != nil {
		t.Errorf("nowp returned %d instructions", len(wp))
	}
	if p.Stats().Mispredicts != 1 {
		t.Error("mispredict not counted")
	}
}

func TestInstRecReconstruction(t *testing.T) {
	p := New(InstRec)
	ctx := newCtx(takenCP(4))
	wp := p.Begin(ctx, theBranch(), 0x104)

	// The wrong path starts at the predicted (fall-through) target and
	// follows W X Y Z then the loop.
	wantPCs := []uint64{0x104, 0x108, 0x10c, 0x110, 0x120, 0x124, 0x128, 0x12c, 0x100}
	if len(wp) < len(wantPCs) {
		t.Fatalf("wrong path too short: %d", len(wp))
	}
	for i, want := range wantPCs {
		if wp[i].PC != want {
			t.Errorf("wp[%d].PC = %#x, want %#x", i, wp[i].PC, want)
		}
		if !wp[i].WrongPath {
			t.Errorf("wp[%d] not marked wrong path", i)
		}
		if wp[i].HasAddr {
			t.Errorf("wp[%d] has an address; instrec cannot know any", i)
		}
	}
	// The wrong-path conditional at 0x100 is predicted not-taken by the
	// cold predictor, so the walk falls through to 0x104 again.
	if wp[9].PC != 0x104 {
		t.Errorf("wp[9].PC = %#x, want 0x104 (predicted fall-through)", wp[9].PC)
	}
	// Length cap respected.
	if len(wp) > ctx.MaxLen {
		t.Errorf("wrong path length %d exceeds cap %d", len(wp), ctx.MaxLen)
	}
}

func TestInstRecStopsAtCodeCacheMiss(t *testing.T) {
	p := New(InstRec)
	ctx := newCtx(takenCP(2))
	// 0x130 was never delivered by the functional simulator.
	wp := p.Begin(ctx, theBranch(), 0x130)
	if len(wp) != 0 {
		t.Errorf("reconstruction from unseen PC produced %d instructions", len(wp))
	}
}

func TestInstRecStopsAtEcall(t *testing.T) {
	ctx := newCtx(nil)
	ctx.Code.Insert(0x200, isa.Inst{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.T0, Rs2: none, Rs3: none})
	ctx.Code.Insert(0x204, isa.Inst{Op: isa.OpEcall, Rd: none, Rs1: none, Rs2: none, Rs3: none})
	p := New(InstRec)
	wp := p.Begin(ctx, theBranch(), 0x200)
	if len(wp) != 1 {
		t.Errorf("wrong path through ecall: %d instructions, want 1", len(wp))
	}
}

func TestInstRecStopsAtColdIndirect(t *testing.T) {
	ctx := newCtx(nil)
	ctx.Code.Insert(0x200, isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.T0, Rs2: none, Rs3: none})
	p := New(InstRec)
	wp := p.Begin(ctx, theBranch(), 0x200)
	// The indirect jump itself is fetched, but the walk cannot continue.
	if len(wp) != 1 {
		t.Errorf("wrong path past unpredictable indirect: %d instructions", len(wp))
	}
}

func TestInstRecFollowsRAS(t *testing.T) {
	ctx := newCtx(nil)
	// call 0x300; at 0x300 a ret should come back to 0x204 via the
	// scratch RAS.
	ctx.Code.Insert(0x200, isa.Inst{Op: isa.OpJal, Rd: isa.RA, Rs1: none, Rs2: none, Rs3: none, Target: 0x300})
	ctx.Code.Insert(0x204, isa.Inst{Op: isa.OpAddi, Rd: isa.T0, Rs1: isa.T0, Rs2: none, Rs3: none})
	ctx.Code.Insert(0x300, isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.RA, Rs2: none, Rs3: none})
	p := New(InstRec)
	wp := p.Begin(ctx, theBranch(), 0x200)
	wantPCs := []uint64{0x200, 0x300, 0x204}
	if len(wp) != 3 {
		t.Fatalf("wrong path = %d instructions, want 3", len(wp))
	}
	for i, want := range wantPCs {
		if wp[i].PC != want {
			t.Errorf("wp[%d].PC = %#x, want %#x", i, wp[i].PC, want)
		}
	}
}

func TestConvCaseADetectionAndRecovery(t *testing.T) {
	cp := takenCP(8)
	ctx := newCtx(cp)
	p := NewConv()
	wp := p.Begin(ctx, theBranch(), 0x104)

	s := p.Stats()
	if s.ConvChecked != 1 || s.ConvDetected != 1 {
		t.Fatalf("conv checked/detected = %d/%d", s.ConvChecked, s.ConvDetected)
	}
	// Case A: the correct path's first instruction (0x120) appears at
	// wrong-path index 4 (after W X Y Z).
	if s.ConvDistSum != 4 {
		t.Errorf("conv dist = %d, want 4", s.ConvDistSum)
	}
	// wp[4] is the convergence point: ld a2, 0(s1); s1 was not written
	// on the prefix, so its address is copied from the correct path.
	if !wp[4].HasAddr || !wp[4].Recovered || wp[4].MemAddr != cp[0].MemAddr {
		t.Errorf("convergence-point load not recovered: %+v", wp[4])
	}
	// wp[6] is ld a4, 0(t0); t0 is dirty (written by W), so the
	// independence check must reject the copy.
	if wp[6].HasAddr {
		t.Errorf("dirty-base load recovered: %+v", wp[6])
	}
	// wp[3] (the pre-convergence Y load) has no correct-path
	// counterpart and stays address-less.
	if wp[3].HasAddr {
		t.Error("pre-convergence load recovered")
	}
	// The cold predictor predicts the loop branch (0x100) not-taken
	// while the correct path takes it, so the match stops after one
	// iteration: exactly one recovered address.
	if s.WPAddrRecovered != 1 {
		t.Errorf("recovered = %d, want 1", s.WPAddrRecovered)
	}
	if s.MatchLen() < 4 || s.MatchLen() > 6 {
		t.Errorf("match length = %f", s.MatchLen())
	}
}

func TestConvCaseBDetection(t *testing.T) {
	// The branch is actually NOT taken but was predicted taken: the
	// wrong path starts at 0x120 and the correct path goes W X Y Z
	// before converging at 0x120.
	cp := []trace.DynInst{
		{PC: 0x104, In: testProg[0x104], NextPC: 0x108},
		{PC: 0x108, In: testProg[0x108], NextPC: 0x10c},
		{PC: 0x10c, In: testProg[0x10c], MemAddr: 0x9000, HasAddr: true, NextPC: 0x110},
		{PC: 0x110, In: testProg[0x110], Taken: true, NextPC: 0x120},
	}
	cp = append(cp, takenCP(6)...)
	ctx := newCtx(cp)
	p := NewConv()
	br := &trace.DynInst{PC: 0x100, In: testProg[0x100], Taken: false, NextPC: 0x104}
	wp := p.Begin(ctx, br, 0x120)

	s := p.Stats()
	if s.ConvDetected != 1 {
		t.Fatal("no convergence detected")
	}
	// Case B distance: 0x120 appears after 4 correct-path instructions.
	if s.ConvDistSum != 4 {
		t.Errorf("conv dist = %d, want 4", s.ConvDistSum)
	}
	// wp[0] is the convergence point; s1 clean, so recovered from the
	// correct-path instruction at index 4.
	if !wp[0].HasAddr || wp[0].MemAddr != cp[4].MemAddr {
		t.Errorf("case-B convergence load not recovered: %+v", wp[0])
	}
	// t0 was written on the correct-path prefix (W), so the dirty set
	// must reject ld a4, 0(t0) at wp[2].
	if wp[2].HasAddr {
		t.Error("case-B dirty-base load recovered")
	}
}

func TestConvNoConvergence(t *testing.T) {
	// A correct path that never revisits the wrong path's PCs.
	other := isa.Inst{Op: isa.OpAddi, Rd: isa.T2, Rs1: isa.T2, Rs2: none, Rs3: none}
	var cp []trace.DynInst
	for i := 0; i < 100; i++ {
		cp = append(cp, trace.DynInst{PC: 0x8000 + uint64(4*i), In: other})
	}
	ctx := newCtx(cp)
	p := NewConv()
	wp := p.Begin(ctx, theBranch(), 0x104)
	if p.Stats().ConvDetected != 0 {
		t.Error("phantom convergence detected")
	}
	for i := range wp {
		if wp[i].HasAddr {
			t.Fatalf("wp[%d] recovered without convergence", i)
		}
	}
}

func TestConvIndirectMispredictSkipsCheck(t *testing.T) {
	ctx := newCtx(takenCP(4))
	p := NewConv()
	br := &trace.DynInst{
		PC: 0x100,
		In: isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.T0, Rs2: none, Rs3: none},
	}
	p.Begin(ctx, br, 0x104)
	if p.Stats().ConvChecked != 0 {
		t.Error("convergence checked for an indirect mispredict")
	}
}

func TestConvOptimismAblation(t *testing.T) {
	cp := takenCP(8)
	ctx := newCtx(cp)
	p := NewConv()
	p.DisableIndependenceCheck = true
	wp := p.Begin(ctx, theBranch(), 0x104)
	// Without the check the dirty-base load at wp[6] is (wrongly)
	// recovered too.
	if !wp[6].HasAddr {
		t.Error("optimism ablation did not recover the dirty-base load")
	}
	if p.Stats().WPAddrRecovered < 2 {
		t.Errorf("recovered = %d, want >= 2", p.Stats().WPAddrRecovered)
	}
}

func TestConvResolveFollowsCleanBranches(t *testing.T) {
	cp := takenCP(12)
	ctx := newCtx(cp)
	p := New(ConvResolve)
	wp := p.Begin(ctx, theBranch(), 0x104)

	// The loop branch at 0x100 has clean sources (a0 is never written),
	// so the rebuilt wrong path resolves it along the correct path and
	// keeps recovering addresses across iterations — one 0x120 load per
	// iteration, well beyond plain conv's single recovery.
	recovered := 0
	for i := range wp {
		if wp[i].PC == 0x120 && wp[i].HasAddr {
			recovered++
		}
	}
	if recovered < 5 {
		t.Errorf("convres recovered %d loop loads, want >= 5", recovered)
	}
	// The dirty chain through t0 still blocks 0x128 everywhere.
	for i := range wp {
		if wp[i].PC == 0x128 && wp[i].HasAddr {
			t.Fatalf("convres recovered dirty-base load at wp[%d]", i)
		}
	}
	// Wrong-path records must be in fetch order with contiguous control
	// flow: each NextPC equals the following record's PC.
	for i := 0; i+1 < len(wp); i++ {
		if wp[i].NextPC != wp[i+1].PC {
			t.Fatalf("wp[%d].NextPC = %#x but wp[%d].PC = %#x", i, wp[i].NextPC, i+1, wp[i+1].PC)
		}
	}
}

func TestConvResolveDirtyBranchDiverges(t *testing.T) {
	// Replace the loop-back branch with one that depends on t0 (dirty):
	// the rebuilt path must follow the prediction at that branch, not
	// the correct path.
	prog := map[uint64]isa.Inst{}
	for pc, in := range testProg {
		prog[pc] = in
	}
	prog[0x12c] = isa.Inst{Op: isa.OpBne, Rd: none, Rs1: isa.T0, Rs2: isa.X0, Rs3: none, Target: 0x100}

	code := codecache.New()
	for pc, in := range prog {
		code.Insert(pc, in)
	}
	// Correct path: one iteration, then the dirty branch is taken back
	// to 0x100 and loops.
	var cp []trace.DynInst
	addr := uint64(0xa000)
	for i := 0; i < 6; i++ {
		cp = append(cp,
			trace.DynInst{PC: 0x120, In: prog[0x120], MemAddr: addr, HasAddr: true, NextPC: 0x124},
			trace.DynInst{PC: 0x124, In: prog[0x124], NextPC: 0x128},
			trace.DynInst{PC: 0x128, In: prog[0x128], MemAddr: addr + 0x1000, HasAddr: true, NextPC: 0x12c},
			trace.DynInst{PC: 0x12c, In: prog[0x12c], Taken: true, NextPC: 0x100},
			trace.DynInst{PC: 0x100, In: prog[0x100], Taken: true, NextPC: 0x120},
		)
		addr += 8
	}
	ctx := &Context{
		Code:    code,
		Pred:    branch.New(branch.DefaultConfig()),
		Peek:    peekOf(cp),
		ROBSize: 64,
		MaxLen:  72,
	}
	p := New(ConvResolve)
	br := &trace.DynInst{PC: 0x100, In: prog[0x100], Taken: true, NextPC: 0x120}
	wp := p.Begin(ctx, br, 0x104)

	// Find the rebuilt 0x12c (the dirty bne): the cold predictor says
	// not-taken while the correct path takes it, so the wrong path must
	// fall through to 0x130 — where the code cache misses and the walk
	// ends.
	for i := range wp {
		if wp[i].PC == 0x12c {
			if wp[i].Taken {
				t.Fatal("dirty branch followed the correct path instead of the prediction")
			}
			if i != len(wp)-1 {
				t.Fatalf("walk continued past unreachable fall-through: %d > %d", len(wp)-1, i)
			}
			return
		}
	}
	t.Fatal("rebuilt wrong path never reached the dirty branch")
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{}
	if s.ConvFrac() != 0 || s.ConvDist() != 0 || s.AddrRecoverFrac() != 0 || s.MatchLen() != 0 {
		t.Error("zero stats not zero")
	}
	s.ConvChecked = 4
	s.ConvDetected = 3
	s.ConvDistSum = 30
	s.WPMemOps = 10
	s.WPAddrRecovered = 5
	s.ConvMatchLenSum = 60
	if s.ConvFrac() != 0.75 {
		t.Errorf("ConvFrac = %f", s.ConvFrac())
	}
	if s.ConvDist() != 10 {
		t.Errorf("ConvDist = %f", s.ConvDist())
	}
	if s.AddrRecoverFrac() != 0.5 {
		t.Errorf("AddrRecoverFrac = %f", s.AddrRecoverFrac())
	}
	if s.MatchLen() != 20 {
		t.Errorf("MatchLen = %f", s.MatchLen())
	}
}

func TestWPEmulPolicyPassesThrough(t *testing.T) {
	p := New(WPEmul)
	br := theBranch()
	br.WP = []trace.DynInst{
		{PC: 0x104, In: testProg[0x104], WrongPath: true},
		{PC: 0x108, In: testProg[0x10c], MemAddr: 0x77, HasAddr: true, WrongPath: true},
	}
	wp := p.Begin(newCtx(nil), br, 0x104)
	if len(wp) != 2 {
		t.Fatalf("wpemul returned %d records", len(wp))
	}
	s := p.Stats()
	if s.WPGenerated != 2 || s.WPMemOps != 1 || s.WPAddrRecovered != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRegSet(t *testing.T) {
	var s regSet
	s.add(isa.A0)
	s.add(isa.F(5))
	if !s.has(isa.A0) || !s.has(isa.F(5)) {
		t.Error("add/has failed")
	}
	if s.has(isa.A1) {
		t.Error("phantom membership")
	}
	if s.has(isa.RegNone) {
		t.Error("RegNone in set")
	}
	s.remove(isa.A0)
	if s.has(isa.A0) {
		t.Error("remove failed")
	}
}
