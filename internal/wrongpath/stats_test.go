package wrongpath

import "testing"

// TestStatsZeroDenominators audits every ratio helper against its
// zero-denominator case: a policy that never ran (or never converged)
// must report clean zeros, not NaN/Inf that would poison report means.
func TestStatsZeroDenominators(t *testing.T) {
	cases := []struct {
		name  string
		stats Stats
		fn    func(*Stats) float64
		want  float64
	}{
		{"ConvFrac/empty", Stats{}, (*Stats).ConvFrac, 0},
		{"ConvFrac/detected-without-checked", Stats{ConvDetected: 3}, (*Stats).ConvFrac, 0},
		{"ConvDist/empty", Stats{}, (*Stats).ConvDist, 0},
		{"ConvDist/sum-without-detected", Stats{ConvDistSum: 40}, (*Stats).ConvDist, 0},
		{"AddrRecoverFrac/empty", Stats{}, (*Stats).AddrRecoverFrac, 0},
		{"AddrRecoverFrac/recovered-without-memops", Stats{WPAddrRecovered: 7}, (*Stats).AddrRecoverFrac, 0},
		{"MatchLen/empty", Stats{}, (*Stats).MatchLen, 0},
		{"MatchLen/sum-without-detected", Stats{ConvMatchLenSum: 12}, (*Stats).MatchLen, 0},
		{"ConvFrac/normal", Stats{ConvChecked: 4, ConvDetected: 3}, (*Stats).ConvFrac, 0.75},
		{"ConvDist/normal", Stats{ConvDetected: 4, ConvDistSum: 10}, (*Stats).ConvDist, 2.5},
		{"AddrRecoverFrac/normal", Stats{WPMemOps: 8, WPAddrRecovered: 2}, (*Stats).AddrRecoverFrac, 0.25},
		{"MatchLen/normal", Stats{ConvDetected: 2, ConvMatchLenSum: 9}, (*Stats).MatchLen, 4.5},
	}
	for _, c := range cases {
		s := c.stats
		if got := c.fn(&s); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}
