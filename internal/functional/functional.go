// Package functional implements the architectural (functional)
// simulator: it executes instructions exactly, maintaining register and
// memory state, and emits the dynamic-instruction records consumed by
// the performance simulator. It plays the role Intel Pin plays in the
// paper's setup and exposes the specific capabilities the wrong-path
// emulation technique needs from it: machine-state checkpoints,
// execute-at redirection, store suppression, and termination of a
// speculative path on environment calls or faults.
package functional

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Syscall numbers (register a7).
const (
	SysExit       = 0 // a0 = exit code
	SysPrintInt   = 1 // a0 = value, printed in decimal with newline
	SysPrintChar  = 2 // a0 = byte
	SysPrintFloat = 3 // f10 = value, printed with newline
)

// Execution-terminating conditions. These are "faults" only in the
// simulator sense: on the wrong path they end speculation (as the paper
// requires: kernel code cannot be instrumented, unexpected weirdness
// must not crash the tool); on the correct path they are reported as
// errors.
var (
	// ErrBadPC is returned when the PC leaves the program image.
	ErrBadPC = errors.New("functional: PC outside program")
	// ErrInvalidInst is returned for an undecodable instruction.
	ErrInvalidInst = errors.New("functional: invalid instruction")
	// ErrBadSyscall is returned for an unknown environment-call number.
	ErrBadSyscall = errors.New("functional: unknown syscall")
	// ErrHalted is returned by Step after the program has exited.
	ErrHalted = errors.New("functional: program has exited")
)

// Checkpoint is a snapshot of the register state (the paper's Pin
// checkpoint). Memory is not included: wrong-path stores are suppressed,
// so memory never needs rollback.
type Checkpoint struct {
	regs  [isa.NumIntRegs]uint64
	fregs [isa.NumFPRegs]uint64
	pc    uint64
}

// CPU is the architectural state plus the program being run.
type CPU struct {
	Prog *isa.Program
	Mem  *mem.Memory

	regs  [isa.NumIntRegs]uint64
	fregs [isa.NumFPRegs]uint64 // IEEE-754 bit patterns
	pc    uint64

	halted   bool
	exitCode int64
	instret  uint64 // retired (correct-path) instruction count
	seq      uint64

	// suppressStores makes stores no-ops; set during wrong-path emulation.
	suppressStores bool

	// Output accumulates the program's printed output (print syscalls).
	Output []byte
}

// New creates a CPU at the program's entry point with the given memory
// image. The stack pointer is initialized to stackTop (pass 0 for no
// stack setup).
func New(prog *isa.Program, m *mem.Memory, stackTop uint64) *CPU {
	c := &CPU{Prog: prog, Mem: m, pc: prog.Entry}
	if stackTop != 0 {
		c.regs[isa.SP] = stackTop
	}
	return c
}

// PC returns the current program counter.
func (c *CPU) PC() uint64 { return c.pc }

// SetPC redirects execution (the paper's PIN_ExecuteAt).
func (c *CPU) SetPC(pc uint64) { c.pc = pc }

// Halted reports whether the program has exited.
func (c *CPU) Halted() bool { return c.halted }

// ExitCode returns the program's exit code (valid after Halted).
func (c *CPU) ExitCode() int64 { return c.exitCode }

// Retired returns the number of retired correct-path instructions.
func (c *CPU) Retired() uint64 { return c.instret }

// Reg returns the value of an integer register.
func (c *CPU) Reg(r isa.Reg) uint64 {
	if r.IsFP() || !r.Valid() {
		panic(fmt.Sprintf("functional: Reg(%v) is not an integer register", r))
	}
	return c.regs[r]
}

// SetReg sets an integer register (writes to x0 are discarded).
func (c *CPU) SetReg(r isa.Reg, v uint64) {
	if r.IsFP() || !r.Valid() {
		panic(fmt.Sprintf("functional: SetReg(%v) is not an integer register", r))
	}
	if r != isa.X0 {
		c.regs[r] = v
	}
}

// FReg returns the value of a floating-point register.
func (c *CPU) FReg(r isa.Reg) float64 {
	if !r.IsFP() {
		panic(fmt.Sprintf("functional: FReg(%v) is not an FP register", r))
	}
	return math.Float64frombits(c.fregs[r-isa.NumIntRegs])
}

// SetFReg sets a floating-point register.
func (c *CPU) SetFReg(r isa.Reg, v float64) {
	if !r.IsFP() {
		panic(fmt.Sprintf("functional: SetFReg(%v) is not an FP register", r))
	}
	c.fregs[r-isa.NumIntRegs] = math.Float64bits(v)
}

// Checkpoint snapshots the register state.
func (c *CPU) Checkpoint() Checkpoint {
	return Checkpoint{regs: c.regs, fregs: c.fregs, pc: c.pc}
}

// Restore rolls the register state back to a checkpoint.
func (c *CPU) Restore(cp Checkpoint) {
	c.regs, c.fregs, c.pc = cp.regs, cp.fregs, cp.pc
}

func (c *CPU) freg(r isa.Reg) float64 { return math.Float64frombits(c.fregs[r-isa.NumIntRegs]) }
func (c *CPU) fbits(r isa.Reg) uint64 { return c.fregs[r-isa.NumIntRegs] }
func (c *CPU) setf(r isa.Reg, v float64) {
	c.fregs[r-isa.NumIntRegs] = math.Float64bits(v)
}
func (c *CPU) setfb(r isa.Reg, b uint64) { c.fregs[r-isa.NumIntRegs] = b }
func (c *CPU) setx(r isa.Reg, v uint64) {
	if r != isa.X0 && r != isa.RegNone {
		c.regs[r] = v
	}
}

// Step executes the instruction at the current PC and returns its
// dynamic record. The returned error is non-nil when execution cannot
// proceed (bad PC, invalid instruction, unknown syscall, already
// halted); the CPU state is unchanged in that case except that no
// instruction retires.
func (c *CPU) Step() (trace.DynInst, error) {
	if c.halted {
		return trace.DynInst{}, ErrHalted
	}
	in, ok := c.Prog.At(c.pc)
	if !ok {
		return trace.DynInst{}, fmt.Errorf("%w: pc=0x%x", ErrBadPC, c.pc)
	}
	di := trace.DynInst{Seq: c.seq, PC: c.pc, In: in, NextPC: c.pc + isa.InstBytes}

	switch in.Op {
	case isa.OpNop:
		// nothing

	// --- integer ALU ---
	case isa.OpAdd:
		c.setx(in.Rd, c.regs[in.Rs1]+c.regs[in.Rs2])
	case isa.OpSub:
		c.setx(in.Rd, c.regs[in.Rs1]-c.regs[in.Rs2])
	case isa.OpAnd:
		c.setx(in.Rd, c.regs[in.Rs1]&c.regs[in.Rs2])
	case isa.OpOr:
		c.setx(in.Rd, c.regs[in.Rs1]|c.regs[in.Rs2])
	case isa.OpXor:
		c.setx(in.Rd, c.regs[in.Rs1]^c.regs[in.Rs2])
	case isa.OpSll:
		c.setx(in.Rd, c.regs[in.Rs1]<<(c.regs[in.Rs2]&63))
	case isa.OpSrl:
		c.setx(in.Rd, c.regs[in.Rs1]>>(c.regs[in.Rs2]&63))
	case isa.OpSra:
		c.setx(in.Rd, uint64(int64(c.regs[in.Rs1])>>(c.regs[in.Rs2]&63)))
	case isa.OpSlt:
		c.setx(in.Rd, b2u(int64(c.regs[in.Rs1]) < int64(c.regs[in.Rs2])))
	case isa.OpSltu:
		c.setx(in.Rd, b2u(c.regs[in.Rs1] < c.regs[in.Rs2]))
	case isa.OpAddi:
		c.setx(in.Rd, c.regs[in.Rs1]+uint64(in.Imm))
	case isa.OpAndi:
		c.setx(in.Rd, c.regs[in.Rs1]&uint64(in.Imm))
	case isa.OpOri:
		c.setx(in.Rd, c.regs[in.Rs1]|uint64(in.Imm))
	case isa.OpXori:
		c.setx(in.Rd, c.regs[in.Rs1]^uint64(in.Imm))
	case isa.OpSlli:
		c.setx(in.Rd, c.regs[in.Rs1]<<(uint64(in.Imm)&63))
	case isa.OpSrli:
		c.setx(in.Rd, c.regs[in.Rs1]>>(uint64(in.Imm)&63))
	case isa.OpSrai:
		c.setx(in.Rd, uint64(int64(c.regs[in.Rs1])>>(uint64(in.Imm)&63)))
	case isa.OpSlti:
		c.setx(in.Rd, b2u(int64(c.regs[in.Rs1]) < in.Imm))
	case isa.OpSltiu:
		c.setx(in.Rd, b2u(c.regs[in.Rs1] < uint64(in.Imm)))
	case isa.OpLui:
		c.setx(in.Rd, uint64(in.Imm))

	// --- integer multiply/divide (RISC-V semantics: no traps) ---
	case isa.OpMul:
		c.setx(in.Rd, c.regs[in.Rs1]*c.regs[in.Rs2])
	case isa.OpMulh:
		hi, _ := mul128(int64(c.regs[in.Rs1]), int64(c.regs[in.Rs2]))
		c.setx(in.Rd, uint64(hi))
	case isa.OpDiv:
		c.setx(in.Rd, uint64(sdiv(int64(c.regs[in.Rs1]), int64(c.regs[in.Rs2]))))
	case isa.OpDivu:
		c.setx(in.Rd, udiv(c.regs[in.Rs1], c.regs[in.Rs2]))
	case isa.OpRem:
		c.setx(in.Rd, uint64(srem(int64(c.regs[in.Rs1]), int64(c.regs[in.Rs2]))))
	case isa.OpRemu:
		c.setx(in.Rd, urem(c.regs[in.Rs1], c.regs[in.Rs2]))

	// --- loads ---
	case isa.OpLd, isa.OpLw, isa.OpLwu, isa.OpLh, isa.OpLhu, isa.OpLb, isa.OpLbu:
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		di.MemAddr, di.HasAddr = addr, true
		raw := c.Mem.Read(addr, in.Op.MemBytes())
		c.setx(in.Rd, extend(in.Op, raw))
	case isa.OpFld:
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		di.MemAddr, di.HasAddr = addr, true
		c.setfb(in.Rd, c.Mem.Read(addr, 8))

	// --- stores ---
	case isa.OpSd, isa.OpSw, isa.OpSh, isa.OpSb:
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		di.MemAddr, di.HasAddr = addr, true
		if !c.suppressStores {
			c.Mem.Write(addr, c.regs[in.Rs2], in.Op.MemBytes())
		}
	case isa.OpFsd:
		addr := c.regs[in.Rs1] + uint64(in.Imm)
		di.MemAddr, di.HasAddr = addr, true
		if !c.suppressStores {
			c.Mem.Write(addr, c.fbits(in.Rs2), 8)
		}

	// --- floating point ---
	case isa.OpFadd:
		c.setf(in.Rd, c.freg(in.Rs1)+c.freg(in.Rs2))
	case isa.OpFsub:
		c.setf(in.Rd, c.freg(in.Rs1)-c.freg(in.Rs2))
	case isa.OpFmul:
		c.setf(in.Rd, c.freg(in.Rs1)*c.freg(in.Rs2))
	case isa.OpFdiv:
		c.setf(in.Rd, c.freg(in.Rs1)/c.freg(in.Rs2))
	case isa.OpFsqrt:
		c.setf(in.Rd, math.Sqrt(c.freg(in.Rs1)))
	case isa.OpFmin:
		c.setf(in.Rd, math.Min(c.freg(in.Rs1), c.freg(in.Rs2)))
	case isa.OpFmax:
		c.setf(in.Rd, math.Max(c.freg(in.Rs1), c.freg(in.Rs2)))
	case isa.OpFneg:
		c.setf(in.Rd, -c.freg(in.Rs1))
	case isa.OpFabs:
		c.setf(in.Rd, math.Abs(c.freg(in.Rs1)))
	case isa.OpFmadd:
		// math.FMA guarantees a single rounding on every platform; a
		// plain a*b+c may or may not be fused depending on the target,
		// which would break cross-platform determinism.
		c.setf(in.Rd, math.FMA(c.freg(in.Rs1), c.freg(in.Rs2), c.freg(in.Rs3)))
	case isa.OpFcvtDL:
		c.setf(in.Rd, float64(int64(c.regs[in.Rs1])))
	case isa.OpFcvtLD:
		c.setx(in.Rd, uint64(int64(c.freg(in.Rs1))))
	case isa.OpFmvXD:
		c.setx(in.Rd, c.fbits(in.Rs1))
	case isa.OpFmvDX:
		c.setfb(in.Rd, c.regs[in.Rs1])
	case isa.OpFeq:
		c.setx(in.Rd, b2u(c.freg(in.Rs1) == c.freg(in.Rs2)))
	case isa.OpFlt:
		c.setx(in.Rd, b2u(c.freg(in.Rs1) < c.freg(in.Rs2)))
	case isa.OpFle:
		c.setx(in.Rd, b2u(c.freg(in.Rs1) <= c.freg(in.Rs2)))

	// --- control flow ---
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		di.Taken = evalBranch(in.Op, c.regs[in.Rs1], c.regs[in.Rs2])
		if di.Taken {
			di.NextPC = in.Target
		}
	case isa.OpJal:
		c.setx(in.Rd, c.pc+isa.InstBytes)
		di.NextPC = in.Target
		di.Taken = true
	case isa.OpJalr:
		target := (c.regs[in.Rs1] + uint64(in.Imm)) &^ 1
		c.setx(in.Rd, c.pc+isa.InstBytes)
		di.NextPC = target
		di.Taken = true

	// --- system ---
	case isa.OpEcall:
		if err := c.syscall(&di); err != nil {
			return di, err
		}

	default:
		return di, fmt.Errorf("%w: %v at pc=0x%x", ErrInvalidInst, in.Op, c.pc)
	}

	c.pc = di.NextPC
	c.seq++
	if !c.suppressStores {
		c.instret++
	}
	return di, nil
}

func (c *CPU) syscall(di *trace.DynInst) error {
	switch c.regs[isa.A7] {
	case SysExit:
		c.halted = true
		c.exitCode = int64(c.regs[isa.A0])
		di.Exit = true
	case SysPrintInt:
		c.Output = append(c.Output, []byte(fmt.Sprintf("%d\n", int64(c.regs[isa.A0])))...)
	case SysPrintChar:
		c.Output = append(c.Output, byte(c.regs[isa.A0]))
	case SysPrintFloat:
		c.Output = append(c.Output, []byte(fmt.Sprintf("%g\n", c.freg(isa.F(10))))...)
	default:
		return fmt.Errorf("%w: a7=%d at pc=0x%x", ErrBadSyscall, c.regs[isa.A7], c.pc)
	}
	return nil
}

// WrongPathEmulate implements the paper's functional wrong-path
// emulation: checkpoint the machine state, redirect execution to the
// predicted (wrong) target, execute with stores suppressed until
// maxInsts instructions have run or the path ends (environment call,
// invalid instruction, or PC leaving the program — the events that end
// a speculative path in the Pin-based implementation), then restore the
// checkpoint. The emulated records are returned with WrongPath set.
//
// The CPU's architectural state, retired-instruction count and program
// output are unchanged by the call.
func (c *CPU) WrongPathEmulate(target uint64, maxInsts int) []trace.DynInst {
	return c.AppendWrongPath(nil, target, maxInsts)
}

// AppendWrongPath is the allocation-aware form of WrongPathEmulate: the
// emulated records are appended to dst (typically a slice into a
// reusable arena with at least maxInsts free capacity, so steady-state
// emulation allocates nothing) and the extended slice is returned.
func (c *CPU) AppendWrongPath(dst []trace.DynInst, target uint64, maxInsts int) []trace.DynInst {
	if c.halted || maxInsts <= 0 {
		return dst
	}
	cp := c.Checkpoint()
	savedSeq := c.seq
	c.suppressStores = true
	c.pc = target

	n := 0
	for n < maxInsts {
		if in, ok := c.Prog.At(c.pc); !ok || in.Op == isa.OpEcall {
			break
		}
		di, err := c.Step()
		if err != nil {
			break
		}
		di.WrongPath = true
		di.Seq = savedSeq
		dst = append(dst, di)
		n++
	}

	c.suppressStores = false
	c.seq = savedSeq
	c.Restore(cp)
	return dst
}

// Run executes until the program halts or maxInsts instructions retire,
// discarding the dynamic records; useful for functional-only validation
// of workloads. It returns the number of instructions retired by the
// call and the first error encountered (nil on clean exit or cap).
func (c *CPU) Run(maxInsts uint64) (uint64, error) {
	var n uint64
	for n < maxInsts && !c.halted {
		if _, err := c.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func extend(op isa.Op, raw uint64) uint64 {
	switch op {
	case isa.OpLw:
		return uint64(int64(int32(raw)))
	case isa.OpLh:
		return uint64(int64(int16(raw)))
	case isa.OpLb:
		return uint64(int64(int8(raw)))
	default: // ld, lwu, lhu, lbu: zero-extended by mem.Read already
		return raw
	}
}

func evalBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.OpBeq:
		return a == b
	case isa.OpBne:
		return a != b
	case isa.OpBlt:
		return int64(a) < int64(b)
	case isa.OpBge:
		return int64(a) >= int64(b)
	case isa.OpBltu:
		return a < b
	case isa.OpBgeu:
		return a >= b
	default:
		// Callers guarantee op.IsCondBranch(); a non-branch here is a
		// decode bug, never wrong-path data.
		panic("functional: not a branch: " + op.String())
	}
}

// sdiv implements RISC-V signed division: divide-by-zero yields -1,
// overflow (MinInt64 / -1) yields MinInt64. No traps, so wrong-path
// divides can never crash the simulator — the property the paper needs.
func sdiv(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	default:
		return a / b
	}
}

func srem(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	default:
		return a % b
	}
}

func udiv(a, b uint64) uint64 {
	if b == 0 {
		return math.MaxUint64
	}
	return a / b
}

func urem(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

// mul128 returns the high and low 64 bits of the signed 128-bit product.
func mul128(a, b int64) (hi, lo int64) {
	au, bu := uint64(a), uint64(b)
	ahi, alo := au>>32, au&0xffffffff
	bhi, blo := bu>>32, bu&0xffffffff
	t := alo * blo
	w0 := t & 0xffffffff
	k := t >> 32
	t = ahi*blo + k
	w1 := t & 0xffffffff
	w2 := t >> 32
	t = alo*bhi + w1
	k = t >> 32
	hiU := ahi*bhi + w2 + k
	loU := (t << 32) | w0
	// Convert unsigned 128-bit product to signed.
	if a < 0 {
		hiU -= bu
	}
	if b < 0 {
		hiU -= au
	}
	return int64(hiU), int64(loU)
}
