package functional_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/mem"
)

// run assembles src, executes it to completion and returns the CPU.
func run(t *testing.T, src string, setup func(*mem.Memory)) *functional.CPU {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	if setup != nil {
		setup(m)
	}
	cpu := functional.New(prog, m, 0x10000)
	if _, err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	return cpu
}

// exitCode runs a snippet that leaves its result in a0 and exits.
func exitCode(t *testing.T, body string, setup func(*mem.Memory)) int64 {
	t.Helper()
	cpu := run(t, body+"\n    li a7, 0\n    ecall\n", setup)
	return cpu.ExitCode()
}

func TestIntegerArithmetic(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int64
	}{
		{"add", "li t0, 40\nli t1, 2\nadd a0, t0, t1", 42},
		{"sub", "li t0, 40\nli t1, 2\nsub a0, t0, t1", 38},
		{"sub-negative", "li t0, 2\nli t1, 40\nsub a0, t0, t1", -38},
		{"and", "li t0, 0xff\nli t1, 0x0f\nand a0, t0, t1", 0x0f},
		{"or", "li t0, 0xf0\nli t1, 0x0f\nor a0, t0, t1", 0xff},
		{"xor", "li t0, 0xff\nli t1, 0x0f\nxor a0, t0, t1", 0xf0},
		{"sll", "li t0, 1\nli t1, 10\nsll a0, t0, t1", 1024},
		{"srl", "li t0, -1\nli t1, 60\nsrl a0, t0, t1", 15},
		{"sra", "li t0, -64\nli t1, 4\nsra a0, t0, t1", -4},
		{"slt-true", "li t0, -1\nli t1, 1\nslt a0, t0, t1", 1},
		{"slt-false", "li t0, 1\nli t1, -1\nslt a0, t0, t1", 0},
		{"sltu", "li t0, -1\nli t1, 1\nsltu a0, t0, t1", 0}, // -1 unsigned is max
		{"addi", "li t0, 5\naddi a0, t0, -3", 2},
		{"andi", "li t0, 0xff\nandi a0, t0, 0x3c", 0x3c},
		{"slli", "li t0, 3\nslli a0, t0, 4", 48},
		{"srai", "li t0, -16\nsrai a0, t0, 2", -4},
		{"slti", "li t0, -5\nslti a0, t0, 0", 1},
		{"sltiu", "li t0, 3\nsltiu a0, t0, 9", 1},
		{"lui", "lui a0, 3", 3 << 12},
		{"mul", "li t0, -7\nli t1, 6\nmul a0, t0, t1", -42},
		{"div", "li t0, -42\nli t1, 5\ndiv a0, t0, t1", -8},
		{"rem", "li t0, -42\nli t1, 5\nrem a0, t0, t1", -2},
		{"divu", "li t0, 42\nli t1, 5\ndivu a0, t0, t1", 8},
		{"remu", "li t0, 42\nli t1, 5\nremu a0, t0, t1", 2},
		{"div-by-zero", "li t0, 42\nli t1, 0\ndiv a0, t0, t1", -1},
		{"rem-by-zero", "li t0, 42\nli t1, 0\nrem a0, t0, t1", 42},
		{"divu-by-zero", "li t0, 42\nli t1, 0\ndivu a0, t0, t1", -1}, // MaxUint64
		{"remu-by-zero", "li t0, 42\nli t1, 0\nremu a0, t0, t1", 42},
		{"x0-write-discarded", "li zero, 99\nmv a0, zero", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := exitCode(t, c.body, nil); got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestDivOverflow(t *testing.T) {
	body := `
    li t0, 1
    slli t0, t0, 63       # MinInt64
    li t1, -1
    div a0, t0, t1
`
	if got := exitCode(t, body, nil); got != math.MinInt64 {
		t.Errorf("MinInt64/-1 = %d", got)
	}
	body = `
    li t0, 1
    slli t0, t0, 63
    li t1, -1
    rem a0, t0, t1
`
	if got := exitCode(t, body, nil); got != 0 {
		t.Errorf("MinInt64 rem -1 = %d", got)
	}
}

func TestMulh(t *testing.T) {
	f := func(a, b int64) bool {
		prog := asm.MustAssemble(`
    ld t0, 0(zero)
    ld t1, 8(zero)
    mulh a0, t0, t1
    li a7, 0
    ecall`)
		m := mem.New()
		m.WriteUint64(0, uint64(a))
		m.WriteUint64(8, uint64(b))
		cpu := functional.New(prog, m, 0)
		if _, err := cpu.Run(100); err != nil {
			t.Fatal(err)
		}
		// Reference via big-int-free 128-bit multiply using math/bits
		// semantics: compute with four 32-bit limbs in Go directly.
		hi := mulhRef(a, b)
		return cpu.ExitCode() == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// mulhRef computes the high 64 bits of the signed product using
// unsigned decomposition.
func mulhRef(a, b int64) int64 {
	au, bu := uint64(a), uint64(b)
	ahi, alo := au>>32, au&0xffffffff
	bhi, blo := bu>>32, bu&0xffffffff
	t := alo * blo
	k := t >> 32
	t1 := ahi*blo + k
	w1, w2 := t1&0xffffffff, t1>>32
	t2 := alo*bhi + w1
	hi := ahi*bhi + w2 + t2>>32
	if a < 0 {
		hi -= bu
	}
	if b < 0 {
		hi -= au
	}
	return int64(hi)
}

func TestLoadsStores(t *testing.T) {
	setup := func(m *mem.Memory) {
		m.WriteUint64(0x100, 0xfedcba9876543210)
	}
	cases := []struct {
		name string
		body string
		want int64
	}{
		{"ld", "li t0, 0x100\nld a0, 0(t0)", -81985529216486896}, // 0xfedcba9876543210
		{"lw-sign", "li t0, 0x100\nlw a0, 4(t0)", -19088744},     // 0xfedcba98 sign-extended
		{"lwu", "li t0, 0x100\nlwu a0, 4(t0)", 0xfedcba98},
		{"lh-sign", "li t0, 0x100\nlh a0, 6(t0)", -292}, // 0xfedc sign-extended
		{"lhu", "li t0, 0x100\nlhu a0, 6(t0)", 0xfedc},
		{"lb-sign", "li t0, 0x100\nlb a0, 7(t0)", -2}, // 0xfe sign-extended
		{"lbu", "li t0, 0x100\nlbu a0, 7(t0)", 0xfe},
		{"store-load", "li t0, 0x200\nli t1, -7\nsd t1, 0(t0)\nld a0, 0(t0)", -7},
		{"sw-truncates", "li t0, 0x200\nli t1, -1\nsw t1, 0(t0)\nld a0, 0(t0)", 0xffffffff},
		{"sb", "li t0, 0x200\nli t1, 0x1ff\nsb t1, 0(t0)\nlbu a0, 0(t0)", 0xff},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := exitCode(t, c.body, setup); got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestFloatingPoint(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int64
	}{
		{"fadd", "li t0, 3\nfcvt.d.l f0, t0\nli t0, 4\nfcvt.d.l f1, t0\nfadd f2, f0, f1\nfcvt.l.d a0, f2", 7},
		{"fsub", "li t0, 3\nfcvt.d.l f0, t0\nli t0, 4\nfcvt.d.l f1, t0\nfsub f2, f0, f1\nfcvt.l.d a0, f2", -1},
		{"fmul", "li t0, 6\nfcvt.d.l f0, t0\nli t0, 7\nfcvt.d.l f1, t0\nfmul f2, f0, f1\nfcvt.l.d a0, f2", 42},
		{"fdiv", "li t0, 42\nfcvt.d.l f0, t0\nli t0, 6\nfcvt.d.l f1, t0\nfdiv f2, f0, f1\nfcvt.l.d a0, f2", 7},
		{"fsqrt", "li t0, 81\nfcvt.d.l f0, t0\nfsqrt f1, f0\nfcvt.l.d a0, f1", 9},
		{"fmin", "li t0, 3\nfcvt.d.l f0, t0\nli t0, -5\nfcvt.d.l f1, t0\nfmin f2, f0, f1\nfcvt.l.d a0, f2", -5},
		{"fmax", "li t0, 3\nfcvt.d.l f0, t0\nli t0, -5\nfcvt.d.l f1, t0\nfmax f2, f0, f1\nfcvt.l.d a0, f2", 3},
		{"fneg", "li t0, 9\nfcvt.d.l f0, t0\nfneg f1, f0\nfcvt.l.d a0, f1", -9},
		{"fabs", "li t0, -9\nfcvt.d.l f0, t0\nfabs f1, f0\nfcvt.l.d a0, f1", 9},
		{"fmadd", "li t0, 3\nfcvt.d.l f0, t0\nli t0, 4\nfcvt.d.l f1, t0\nli t0, 5\nfcvt.d.l f2, t0\nfmadd f3, f0, f1, f2\nfcvt.l.d a0, f3", 17},
		{"feq-true", "li t0, 2\nfcvt.d.l f0, t0\nfcvt.d.l f1, t0\nfeq a0, f0, f1", 1},
		{"flt", "li t0, 2\nfcvt.d.l f0, t0\nli t0, 3\nfcvt.d.l f1, t0\nflt a0, f0, f1", 1},
		{"fle", "li t0, 3\nfcvt.d.l f0, t0\nfcvt.d.l f1, t0\nfle a0, f0, f1", 1},
		{"fmv.d", "li t0, 12\nfcvt.d.l f0, t0\nfmv.d f1, f0\nfcvt.l.d a0, f1", 12},
		{"fcvt-trunc", "li t0, 7\nfcvt.d.l f0, t0\nli t0, 2\nfcvt.d.l f1, t0\nfdiv f2, f0, f1\nfcvt.l.d a0, f2", 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := exitCode(t, c.body, nil); got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestFPBitMoves(t *testing.T) {
	// fmv.d.x / fmv.x.d move raw bits.
	body := `
    li t0, 0x7ff8000000000001
    fmv.d.x f0, t0
    fmv.x.d a0, f0
`
	if got := exitCode(t, body, nil); got != 0x7ff8000000000001 {
		t.Errorf("bit move round trip = %#x", got)
	}
}

func TestFPMemory(t *testing.T) {
	body := `
    li t0, 3
    fcvt.d.l f0, t0
    li t1, 0x400
    fsd f0, 0(t1)
    fld f1, 0(t1)
    fcvt.l.d a0, f1
`
	if got := exitCode(t, body, nil); got != 3 {
		t.Errorf("fsd/fld round trip = %d", got)
	}
}

func TestBranches(t *testing.T) {
	cases := []struct {
		op       string
		a, b     int64
		expectTk bool
	}{
		{"beq", 1, 1, true}, {"beq", 1, 2, false},
		{"bne", 1, 2, true}, {"bne", 2, 2, false},
		{"blt", -1, 1, true}, {"blt", 1, -1, false},
		{"bge", 1, -1, true}, {"bge", -1, 1, false}, {"bge", 2, 2, true},
		{"bltu", 1, 2, true}, {"bltu", -1, 1, false}, // -1 is huge unsigned
		{"bgeu", -1, 1, true}, {"bgeu", 1, 2, false},
	}
	for _, c := range cases {
		body := `
    li t0, ` + itoa(c.a) + `
    li t1, ` + itoa(c.b) + `
    li a0, 0
    ` + c.op + ` t0, t1, taken
    j done
taken:
    li a0, 1
done:
`
		want := int64(0)
		if c.expectTk {
			want = 1
		}
		if got := exitCode(t, body, nil); got != want {
			t.Errorf("%s %d,%d: taken=%d, want %d", c.op, c.a, c.b, got, want)
		}
	}
}

func itoa(v int64) string {
	if v == -1 {
		return "-1"
	}
	digits := ""
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	if neg {
		return "-" + digits
	}
	return digits
}

func TestCallReturn(t *testing.T) {
	body := `
    li   a0, 5
    call double
    call double
    j    fin
double:
    add  a0, a0, a0
    ret
fin:
`
	if got := exitCode(t, body, nil); got != 20 {
		t.Errorf("nested call/ret = %d", got)
	}
}

func TestJalrIndirect(t *testing.T) {
	body := `
    la   t0, target
    jalr ra, t0, 0
    j    fin
target:
    li   a0, 99
    ret
fin:
`
	if got := exitCode(t, body, nil); got != 99 {
		t.Errorf("indirect call = %d", got)
	}
}

func TestSyscallOutput(t *testing.T) {
	cpu := run(t, `
    li a0, -42
    li a7, 1
    ecall
    li a0, 88          # 'X'
    li a7, 2
    ecall
    li t0, 5
    fcvt.d.l f10, t0
    li a7, 3
    ecall
    li a0, 7
    li a7, 0
    ecall
`, nil)
	want := "-42\nX5\n"
	if string(cpu.Output) != want {
		t.Errorf("output = %q, want %q", cpu.Output, want)
	}
	if cpu.ExitCode() != 7 {
		t.Errorf("exit = %d", cpu.ExitCode())
	}
}

func TestErrors(t *testing.T) {
	prog := asm.MustAssemble("nop")
	cpu := functional.New(prog, mem.New(), 0)
	if _, err := cpu.Step(); err != nil {
		t.Fatal(err)
	}
	// PC walked off the program.
	if _, err := cpu.Step(); !errors.Is(err, functional.ErrBadPC) {
		t.Errorf("err = %v, want ErrBadPC", err)
	}

	prog = asm.MustAssemble("li a7, 999\necall")
	cpu = functional.New(prog, mem.New(), 0)
	cpu.Step()
	if _, err := cpu.Step(); !errors.Is(err, functional.ErrBadSyscall) {
		t.Errorf("err = %v, want ErrBadSyscall", err)
	}

	prog = asm.MustAssemble("li a7, 0\necall")
	cpu = functional.New(prog, mem.New(), 0)
	cpu.Step()
	cpu.Step()
	if _, err := cpu.Step(); !errors.Is(err, functional.ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestDynInstRecords(t *testing.T) {
	prog := asm.MustAssemble(`
    li  t0, 0x80
    ld  t1, 8(t0)
    sd  t1, 16(t0)
    beq t1, zero, skip
    nop
skip:
    nop
`)
	cpu := functional.New(prog, mem.New(), 0)
	di, _ := cpu.Step() // li
	if di.PC != prog.Base || di.NextPC != prog.Base+4 || di.HasAddr {
		t.Errorf("li record wrong: %+v", di)
	}
	di, _ = cpu.Step() // ld
	if !di.HasAddr || di.MemAddr != 0x88 {
		t.Errorf("ld record wrong: %+v", di)
	}
	di, _ = cpu.Step() // sd
	if !di.HasAddr || di.MemAddr != 0x90 {
		t.Errorf("sd record wrong: %+v", di)
	}
	di, _ = cpu.Step() // beq (t1 == 0, taken)
	if !di.Taken || di.NextPC != prog.MustSymbol("skip") {
		t.Errorf("beq record wrong: %+v", di)
	}
	if cpu.PC() != prog.MustSymbol("skip") {
		t.Error("branch not followed")
	}
}

func TestCheckpointRestore(t *testing.T) {
	prog := asm.MustAssemble("li t0, 1\nli t0, 2\nnop")
	cpu := functional.New(prog, mem.New(), 0x9000)
	cpu.Step()
	cp := cpu.Checkpoint()
	pc := cpu.PC()
	cpu.Step()
	if cpu.Reg(isa.T0) != 2 {
		t.Fatal("setup failed")
	}
	cpu.Restore(cp)
	if cpu.Reg(isa.T0) != 1 || cpu.PC() != pc {
		t.Error("restore did not roll back registers/PC")
	}
	if cpu.Reg(isa.SP) != 0x9000 {
		t.Error("restore corrupted sp")
	}
}

func TestWrongPathEmulate(t *testing.T) {
	prog := asm.MustAssemble(`
main:
    li   t0, 0x500
    li   t1, 7
    beq  zero, zero, correct   # always taken
# wrong path (fall-through):
    sd   t1, 0(t0)             # store must be suppressed
    ld   t2, 0(t0)
    addi t2, t2, 1
    li   a7, 0
    ecall                      # must end the wrong path
correct:
    nop
`)
	cpu := functional.New(prog, mem.New(), 0)
	cpu.Step() // li
	cpu.Step() // li
	di, _ := cpu.Step()
	if !di.Taken {
		t.Fatal("branch should be taken")
	}
	before := cpu.Checkpoint()
	retired := cpu.Retired()

	wrongTarget := di.PC + isa.InstBytes // mispredicted not-taken
	wp := cpu.WrongPathEmulate(wrongTarget, 100)

	// The path must stop before the ecall: sd, ld, addi, li.
	if len(wp) != 4 {
		t.Fatalf("wrong path length = %d, want 4: %+v", len(wp), wp)
	}
	for i, d := range wp {
		if !d.WrongPath {
			t.Errorf("wp[%d] not marked wrong-path", i)
		}
	}
	if !wp[0].In.Op.IsStore() || !wp[0].HasAddr || wp[0].MemAddr != 0x500 {
		t.Errorf("wp store record wrong: %+v", wp[0])
	}
	// The suppressed store must not have touched memory: the wrong-path
	// load reads 0.
	if cpu.Mem.ReadUint64(0x500) != 0 {
		t.Error("wrong-path store leaked to memory")
	}
	// State fully restored.
	after := cpu.Checkpoint()
	if before != after {
		t.Error("architectural state not restored")
	}
	if cpu.Retired() != retired {
		t.Error("retired count changed")
	}
	if cpu.Halted() {
		t.Error("wrong-path ecall halted the CPU")
	}

	// Length cap respected.
	wp = cpu.WrongPathEmulate(wrongTarget, 2)
	if len(wp) != 2 {
		t.Errorf("capped wrong path length = %d", len(wp))
	}
	// Bad target produces an empty path.
	if wp := cpu.WrongPathEmulate(0xdead0000, 10); len(wp) != 0 {
		t.Errorf("bad-target wrong path length = %d", len(wp))
	}
}

func TestRegAccessors(t *testing.T) {
	prog := asm.MustAssemble("nop")
	cpu := functional.New(prog, mem.New(), 0)
	cpu.SetReg(isa.A0, 42)
	if cpu.Reg(isa.A0) != 42 {
		t.Error("SetReg/Reg failed")
	}
	cpu.SetReg(isa.X0, 99)
	if cpu.Reg(isa.X0) != 0 {
		t.Error("x0 write not discarded")
	}
	cpu.SetFReg(isa.F(3), 2.5)
	if cpu.FReg(isa.F(3)) != 2.5 {
		t.Error("SetFReg/FReg failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reg(fp) should panic")
		}
	}()
	cpu.Reg(isa.F(0))
}
