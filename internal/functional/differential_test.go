package functional_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/mem"
)

// This file differentially tests the functional simulator against an
// independent, minimal re-evaluation of the ISA semantics: random
// straight-line integer programs are executed by both and must agree on
// every register. Double-entry bookkeeping for the interpreter.

// miniState is the reference evaluator's state.
type miniState struct {
	regs [isa.NumIntRegs]uint64
}

func (s *miniState) set(r isa.Reg, v uint64) {
	if r != isa.X0 {
		s.regs[r] = v
	}
}

// eval executes one integer instruction on the reference state.
func (s *miniState) eval(in isa.Inst) {
	a, b := s.regs[in.Rs1], uint64(0)
	if in.Rs2 != isa.RegNone {
		b = s.regs[in.Rs2]
	}
	imm := uint64(in.Imm)
	switch in.Op {
	case isa.OpAdd:
		s.set(in.Rd, a+b)
	case isa.OpSub:
		s.set(in.Rd, a-b)
	case isa.OpAnd:
		s.set(in.Rd, a&b)
	case isa.OpOr:
		s.set(in.Rd, a|b)
	case isa.OpXor:
		s.set(in.Rd, a^b)
	case isa.OpSll:
		s.set(in.Rd, a<<(b&63))
	case isa.OpSrl:
		s.set(in.Rd, a>>(b&63))
	case isa.OpSra:
		s.set(in.Rd, uint64(int64(a)>>(b&63)))
	case isa.OpSlt:
		s.set(in.Rd, boolToU(int64(a) < int64(b)))
	case isa.OpSltu:
		s.set(in.Rd, boolToU(a < b))
	case isa.OpAddi:
		s.set(in.Rd, a+imm)
	case isa.OpAndi:
		s.set(in.Rd, a&imm)
	case isa.OpOri:
		s.set(in.Rd, a|imm)
	case isa.OpXori:
		s.set(in.Rd, a^imm)
	case isa.OpSlli:
		s.set(in.Rd, a<<(imm&63))
	case isa.OpSrli:
		s.set(in.Rd, a>>(imm&63))
	case isa.OpSrai:
		s.set(in.Rd, uint64(int64(a)>>(imm&63)))
	case isa.OpMul:
		s.set(in.Rd, a*b)
	case isa.OpDiv:
		switch {
		case b == 0:
			s.set(in.Rd, ^uint64(0))
		case int64(a) == math.MinInt64 && int64(b) == -1:
			s.set(in.Rd, a)
		default:
			s.set(in.Rd, uint64(int64(a)/int64(b)))
		}
	case isa.OpRem:
		switch {
		case b == 0:
			s.set(in.Rd, a)
		case int64(a) == math.MinInt64 && int64(b) == -1:
			s.set(in.Rd, 0)
		default:
			s.set(in.Rd, uint64(int64(a)%int64(b)))
		}
	default:
		panic("unexpected op in differential test: " + in.Op.String())
	}
}

func boolToU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var diffOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu,
	isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
	isa.OpSlli, isa.OpSrli, isa.OpSrai,
	isa.OpMul, isa.OpDiv, isa.OpRem,
}

// TestDifferentialRandomPrograms generates random straight-line
// programs, runs them on the functional simulator and the reference
// evaluator, and compares the full integer register file.
func TestDifferentialRandomPrograms(t *testing.T) {
	f := func(seed uint64, length uint8) bool {
		rng := graph.NewRNG(seed)
		n := int(length)%200 + 10

		// Random initial registers (x0 stays zero).
		var init [isa.NumIntRegs]uint64
		for i := 1; i < isa.NumIntRegs; i++ {
			init[i] = rng.Next()
			// Sprinkle edge values.
			switch rng.Intn(8) {
			case 0:
				init[i] = 0
			case 1:
				init[i] = ^uint64(0)
			case 2:
				init[i] = 1 << 63 // MinInt64
			}
		}

		insts := make([]isa.Inst, 0, n+1)
		for i := 0; i < n; i++ {
			op := diffOps[rng.Intn(uint64(len(diffOps)))]
			in := isa.Inst{
				Op:  op,
				Rd:  isa.Reg(rng.Intn(isa.NumIntRegs)),
				Rs1: isa.Reg(rng.Intn(isa.NumIntRegs)),
				Rs2: isa.RegNone,
				Rs3: isa.RegNone,
			}
			switch op {
			case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori:
				in.Imm = int64(rng.Next())
			case isa.OpSlli, isa.OpSrli, isa.OpSrai:
				in.Imm = int64(rng.Intn(64))
			default:
				in.Rs2 = isa.Reg(rng.Intn(isa.NumIntRegs))
			}
			insts = append(insts, in)
		}
		insts = append(insts, isa.Inst{Op: isa.OpEcall, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone})

		prog := &isa.Program{Base: 0x1000, Entry: 0x1000, Insts: insts}
		cpu := functional.New(prog, mem.New(), 0)
		ref := &miniState{regs: init}
		for i := 1; i < isa.NumIntRegs; i++ {
			cpu.SetReg(isa.Reg(i), init[i])
		}
		// a7 must be the exit syscall; force it at the end by evaluating
		// the same program on both sides, then overriding a7 just before
		// the ecall. Simpler: run the straight-line part only.
		for range insts[:n] {
			if _, err := cpu.Step(); err != nil {
				t.Logf("functional error: %v", err)
				return false
			}
		}
		for _, in := range insts[:n] {
			ref.eval(in)
		}
		for i := 0; i < isa.NumIntRegs; i++ {
			if cpu.Reg(isa.Reg(i)) != ref.regs[i] {
				t.Logf("seed=%d n=%d: register %v = %#x, reference %#x",
					seed, n, isa.Reg(i), cpu.Reg(isa.Reg(i)), ref.regs[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
