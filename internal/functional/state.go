package functional

import "repro/internal/checkpoint"

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the complete architectural state — registers,
// PC, halt/exit status, retirement counters, program output, and the
// full memory image. The program itself is not serialized: resume
// rebuilds the instance (workloads.Workload.Build is deterministic) and
// this state overwrites everything execution has changed since.
func (c *CPU) SaveState(w *checkpoint.Writer) {
	w.Section("functional/CPU", snapshotVersion)
	for i := range c.regs {
		w.Uint64(c.regs[i])
	}
	for i := range c.fregs {
		w.Uint64(c.fregs[i])
	}
	w.Uint64(c.pc)
	w.Bool(c.halted)
	w.Int64(c.exitCode)
	w.Uint64(c.instret)
	w.Uint64(c.seq)
	w.Bool(c.suppressStores)
	w.Bytes(c.Output)
	c.Mem.SaveState(w)
}

// RestoreState overwrites the architectural state with the snapshot.
func (c *CPU) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("functional/CPU", snapshotVersion); err != nil {
		return err
	}
	for i := range c.regs {
		c.regs[i] = r.Uint64()
	}
	for i := range c.fregs {
		c.fregs[i] = r.Uint64()
	}
	c.pc = r.Uint64()
	c.halted = r.Bool()
	c.exitCode = r.Int64()
	c.instret = r.Uint64()
	c.seq = r.Uint64()
	c.suppressStores = r.Bool()
	c.Output = append(c.Output[:0], r.Bytes()...)
	if err := r.Err(); err != nil {
		return err
	}
	return c.Mem.RestoreState(r)
}
