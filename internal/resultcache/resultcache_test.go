package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/specfp"
)

func fp(n int) string {
	return specfp.Of("resultcache-test", "n", fmt.Sprint(n))
}

func TestMemoryTier(t *testing.T) {
	c, err := New("", 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	key := fp(1)
	if _, hit, corrupt := c.Get(key); hit || corrupt {
		t.Fatalf("empty cache: hit=%v corrupt=%v", hit, corrupt)
	}
	if err := c.Put(key, []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	data, hit, _ := c.Get(key)
	if !hit || string(data) != "payload" {
		t.Fatalf("Get after Put: hit=%v data=%q", hit, data)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", st)
	}
}

func TestRejectsInvalidFingerprints(t *testing.T) {
	c, err := New(t.TempDir(), 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, bad := range []string{"", "short", "../escape", strings.Repeat("Z", 64)} {
		if err := c.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid fingerprint", bad)
		}
		if _, hit, _ := c.Get(bad); hit {
			t.Errorf("Get(%q) hit on an invalid fingerprint", bad)
		}
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	key := fp(2)
	want := []byte(`{"canonical":true}`)
	if err := c1.Put(key, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// No temp files may survive a completed Put.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".wpres-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}

	c2, err := New(dir, 4)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	data, hit, corrupt := c2.Get(key)
	if !hit || corrupt || !bytes.Equal(data, want) {
		t.Fatalf("reopened Get: hit=%v corrupt=%v data=%q", hit, corrupt, data)
	}
}

func TestCorruptEntryDiscardedAndMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	key := fp(3)
	if err := c.Put(key, []byte("the canonical bytes")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, key+".wpres")

	corruptions := map[string]func([]byte) []byte{
		"bit-flip in body":   func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"truncated":          func(b []byte) []byte { return b[:len(b)-3] },
		"header clobbered":   func(b []byte) []byte { b[0] = 'X'; return b },
		"checksum clobbered": func(b []byte) []byte { b[len(header)] ^= 0x01; return b },
	}
	// Deterministic order for the sub-runs.
	for _, name := range []string{"bit-flip in body", "truncated", "header clobbered", "checksum clobbered"} {
		mut := corruptions[name]
		t.Run(name, func(t *testing.T) {
			// Fresh cache each time so the memory tier cannot mask the
			// disk read; re-Put the entry the previous sub-test removed.
			if err := c.Put(key, []byte("the canonical bytes")); err != nil {
				t.Fatalf("Put: %v", err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if err := os.WriteFile(path, mut(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			fresh, err := New(dir, 4)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			data, hit, corrupt := fresh.Get(key)
			if hit || !corrupt || data != nil {
				t.Fatalf("corrupt entry: hit=%v corrupt=%v data=%q", hit, corrupt, data)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry was not removed from disk")
			}
			// The next lookup is a clean miss, not corruption again.
			if _, hit, corrupt := fresh.Get(key); hit || corrupt {
				t.Errorf("after discard: hit=%v corrupt=%v, want clean miss", hit, corrupt)
			}
		})
	}
}

func TestLRUEvictionKeepsDiskTier(t *testing.T) {
	dir := t.TempDir()
	c, err := New(dir, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(fp(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("memory tier holds %d entries, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted entry is gone from memory but reloads from disk.
	data, hit, corrupt := c.Get(fp(0))
	if !hit || corrupt || string(data) != "v0" {
		t.Fatalf("evicted entry not served from disk: hit=%v corrupt=%v data=%q", hit, corrupt, data)
	}
}

func TestMemoryOnlyEviction(t *testing.T) {
	c, err := New("", 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(fp(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if _, hit, _ := c.Get(fp(0)); hit {
		t.Error("memory-only cache served an evicted entry")
	}
	if _, hit, _ := c.Get(fp(2)); !hit {
		t.Error("memory-only cache lost a live entry")
	}
}

// TestConcurrentAccess exercises the lock discipline under -race.
func TestConcurrentAccess(t *testing.T) {
	c, err := New(t.TempDir(), 8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fp(i % 16)
				if err := c.Put(key, []byte(fmt.Sprintf("v%d", i%16))); err != nil {
					t.Errorf("Put: %v", err)
				}
				if data, hit, _ := c.Get(key); hit {
					if want := fmt.Sprintf("v%d", i%16); string(data) != want {
						t.Errorf("Get(%s) = %q, want %q", key, data, want)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if _, hit, corrupt := c.Get(fp(0)); hit || corrupt {
		t.Error("nil cache hit")
	}
	if err := c.Put(fp(0), []byte("x")); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache reports non-zero state")
	}
}
