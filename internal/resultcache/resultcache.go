// Package resultcache is a two-tier content-addressed cache for
// canonical result bytes: a bounded in-memory LRU in front of an
// optional persistent store. Keys are specfp fingerprints; values are
// opaque byte documents (the serving layer stores canonical result
// JSON, the experiment runner stores serialized cell results).
//
// The cache's correctness contract is asymmetric: it may always miss,
// it must never return wrong bytes. Three mechanisms enforce that:
//
//   - entries are content-addressed — the fingerprint covers every spec
//     field that can influence the canonical bytes, so a key can only
//     ever map to one value;
//   - disk writes are atomic (temp file + rename), so a crash mid-write
//     never leaves a torn entry under a readable name;
//   - disk reads are self-verifying — every entry embeds the SHA-256 of
//     its body, and a mismatch (bit rot, manual truncation, a torn
//     rename on a non-atomic filesystem) discards the entry and reports
//     a miss, falling through to a real run.
//
// The in-memory tier is bounded (LRU eviction); the persistent tier
// under dir/ grows with distinct specs and survives process restarts.
// All methods are safe for concurrent use.
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/specfp"
)

// DefaultMaxEntries bounds the in-memory tier when the caller passes
// max <= 0.
const DefaultMaxEntries = 256

// header opens every persistent entry; the version is part of the
// magic so a format change invalidates old files instead of
// misreading them.
const header = "wpcache/v1 "

// Cache is the two-tier store. The zero value is not usable; call New.
type Cache struct {
	dir string // "" = memory-only
	max int

	mu      sync.Mutex
	entries map[string]*list.Element // fingerprint → LRU node
	lru     *list.List               // front = most recently used

	hits, misses, corrupt, evictions uint64
}

// entry is one LRU node payload.
type entry struct {
	fp   string
	data []byte
}

// New opens a cache. dir is the persistent tier's directory (created
// if missing); "" keeps the cache memory-only. max bounds the
// in-memory entries (<= 0 selects DefaultMaxEntries).
func New(dir string, max int) (*Cache, error) {
	if max <= 0 {
		max = DefaultMaxEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{
		dir:     dir,
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}, nil
}

// Dir returns the persistent tier's directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// path maps a fingerprint to its entry file. Fingerprints are
// validated hex, so the name can never traverse out of dir.
func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp+".wpres")
}

// Get returns the bytes stored under fp. hit reports whether an entry
// was found (memory first, then disk — a disk hit is promoted into the
// memory tier). corrupt reports that a disk entry existed but failed
// self-verification and was discarded; the caller sees a miss and must
// fall through to a real run. Callers must not mutate the returned
// slice.
func (c *Cache) Get(fp string) (data []byte, hit, corrupt bool) {
	if c == nil || !specfp.Valid(fp) {
		return nil, false, false
	}
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		data := el.Value.(*entry).data
		c.mu.Unlock()
		return data, true, false
	}
	c.mu.Unlock()

	if c.dir == "" {
		c.note(&c.misses)
		return nil, false, false
	}
	data, err := c.readEntry(fp)
	if err != nil {
		if os.IsNotExist(err) {
			c.note(&c.misses)
			return nil, false, false
		}
		// A readable file that fails verification is evidence of
		// corruption; remove it so it cannot fail again, and miss.
		_ = os.Remove(c.path(fp))
		c.note(&c.corrupt)
		return nil, false, true
	}
	c.mu.Lock()
	c.insertLocked(fp, data)
	c.hits++
	c.mu.Unlock()
	return data, true, false
}

// Put stores data under fp in both tiers. The persistent write is
// atomic: a crash can lose the entry but never tear it. The caller
// must not mutate data afterwards.
func (c *Cache) Put(fp string, data []byte) error {
	if c == nil {
		return nil
	}
	if !specfp.Valid(fp) {
		return fmt.Errorf("resultcache: invalid fingerprint %q", fp)
	}
	c.mu.Lock()
	c.insertLocked(fp, data)
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.writeEntry(fp, data)
}

// insertLocked installs (or refreshes) the memory-tier entry and
// evicts past the bound. Caller holds c.mu.
func (c *Cache) insertLocked(fp string, data []byte) {
	if el, ok := c.entries[fp]; ok {
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
		return
	}
	c.entries[fp] = c.lru.PushFront(&entry{fp: fp, data: data})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).fp)
		c.evictions++
	}
}

// note bumps one statistics counter under the lock.
func (c *Cache) note(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// writeEntry persists one entry atomically: header + body checksum +
// body into a temp file, fsync-free rename onto the final name.
func (c *Cache) writeEntry(fp string, data []byte) error {
	sum := sha256.Sum256(data)
	var buf bytes.Buffer
	buf.Grow(len(header) + 65 + len(data))
	buf.WriteString(header)
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')
	buf.Write(data)

	tmp, err := os.CreateTemp(c.dir, ".wpres-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmpName, c.path(fp)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultcache: %w", err)
	}
	return nil
}

// readEntry loads and verifies one persistent entry. Any structural or
// checksum failure returns a non-IsNotExist error (the caller treats it
// as corruption).
func (c *Cache) readEntry(fp string) ([]byte, error) {
	raw, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, err
	}
	if len(raw) < len(header)+65 || string(raw[:len(header)]) != header {
		return nil, fmt.Errorf("resultcache: %s: bad header", fp)
	}
	rest := raw[len(header):]
	nl := bytes.IndexByte(rest, '\n')
	if nl != 64 {
		return nil, fmt.Errorf("resultcache: %s: bad checksum line", fp)
	}
	want := string(rest[:64])
	body := rest[nl+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("resultcache: %s: checksum mismatch", fp)
	}
	return body, nil
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats is a point-in-time snapshot of the cache's own counters. The
// serving layer mirrors dispositions into its obs registry; these
// counters exist for tests and debugging.
type Stats struct {
	Hits, Misses, Corrupt, Evictions uint64
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Corrupt: c.corrupt, Evictions: c.evictions}
}
