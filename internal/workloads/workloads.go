// Package workloads defines the workload abstraction shared by the GAP
// graph kernels and the SPEC-proxy kernels: a named factory that builds
// a fresh program + memory image for each simulation run (four
// simulator variants each need pristine architectural state).
package workloads

import (
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Instance is one ready-to-simulate program image.
type Instance struct {
	// Prog is the assembled program.
	Prog *isa.Program
	// Mem is the initial memory image (data segments laid out).
	Mem *mem.Memory
	// StackTop initializes the stack pointer (0 = no stack).
	StackTop uint64
	// SuggestedMaxInsts is the instruction budget the experiments use
	// for this workload (0 = run to completion).
	SuggestedMaxInsts uint64
	// Validate, when non-nil, checks the architectural result after a
	// functional run (used by the workload tests to prove the kernels
	// compute what they claim).
	Validate func(cpu *functional.CPU) error
}

// Workload builds fresh instances of one benchmark.
type Workload struct {
	// Name is the benchmark's short name ("bfs", "pr", …).
	Name string
	// Suite is the suite the benchmark belongs to ("gap", "specint",
	// "specfp").
	Suite string
	// Build constructs a fresh instance.
	Build func() (*Instance, error)
}

// MustBuild builds an instance, panicking on error (experiment drivers
// treat workload construction failure as fatal).
func (w Workload) MustBuild() *Instance {
	inst, err := w.Build()
	if err != nil {
		panic("workloads: building " + w.Suite + "/" + w.Name + ": " + err.Error())
	}
	return inst
}

// StandardStackTop is where workloads place the stack by convention.
const StandardStackTop = 0x7fff_f000

// StandardCodeBase is where workloads place code by convention.
const StandardCodeBase = 0x1000
