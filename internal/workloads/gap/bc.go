package gap

import (
	"fmt"
	"math"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// bcSource is single-source betweenness centrality (Brandes): a BFS
// phase counting shortest paths (sigma) followed by a reverse-order
// dependency-accumulation phase (delta). Both phases are dominated by
// data-dependent branches on sparse loads (depth comparisons).
const bcSource = `
# bc: betweenness centrality, one source (Brandes)
# AUX1 = depth (i64, -1 unvisited), AUX2 = sigma (u64), AUX3 = delta (f64)
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    la   s2, QUEUE
    la   s3, AUX1           # depth
    la   s4, AUX2           # sigma
    la   s8, AUX3           # delta
    li   s5, 0              # head
    li   t0, SRC
    sd   t0, 0(s2)
    li   s6, 1              # tail
    slli t1, t0, 3
    add  t2, t1, s3
    sd   zero, 0(t2)        # depth[src] = 0
    add  t2, t1, s4
    li   t3, 1
    sd   t3, 0(t2)          # sigma[src] = 1
bfsloop:
    bge  s5, s6, phase2
    slli t0, s5, 3
    add  t0, t0, s2
    ld   t1, 0(t0)          # u
    addi s5, s5, 1
    slli t0, t1, 3
    add  t2, t0, s3
    ld   a0, 0(t2)          # depth[u]
    add  t2, t0, s4
    ld   a1, 0(t2)          # sigma[u]
    add  t2, t0, s0
    ld   t3, 0(t2)          # e
    ld   t4, 8(t2)          # end
    addi a0, a0, 1          # du+1
bfsinner:
    bge  t3, t4, bfsloop
    slli t5, t3, 3
    add  t5, t5, s1
    ld   a4, 0(t5)          # v
    addi t3, t3, 1
    slli t6, a4, 3
    add  a2, t6, s3
    ld   a3, 0(a2)          # depth[v] (sparse load)
    bgez a3, chk            # already discovered?
    sd   a0, 0(a2)          # depth[v] = du+1
    slli a5, s6, 3
    add  a5, a5, s2
    sd   a4, 0(a5)          # queue[tail] = v
    addi s6, s6, 1
    mv   a3, a0
chk:
    bne  a3, a0, bfsinner   # not on a shortest path (data-dependent)
    add  a6, t6, s4
    ld   a7, 0(a6)
    add  a7, a7, a1         # sigma[v] += sigma[u]
    sd   a7, 0(a6)
    j    bfsinner
phase2:
    addi s5, s6, -1         # i = tail-1, reverse BFS order
ph2loop:
    bltz s5, done
    slli t0, s5, 3
    add  t0, t0, s2
    ld   t1, 0(t0)          # w
    addi s5, s5, -1
    slli t0, t1, 3
    add  t2, t0, s3
    ld   a0, 0(t2)          # depth[w]
    add  t2, t0, s4
    ld   a1, 0(t2)          # sigma[w]
    add  t2, t0, s8
    fld  f0, 0(t2)          # delta[w]
    fcvt.d.l f1, a1         # sigma[w] as double
    add  t2, t0, s0
    ld   t3, 0(t2)          # e
    ld   t4, 8(t2)          # end
    addi a0, a0, 1          # dw+1
    li   a6, 1
    fcvt.d.l f6, a6         # 1.0
ph2inner:
    bge  t3, t4, ph2store
    slli t5, t3, 3
    add  t5, t5, s1
    ld   a2, 0(t5)          # v
    addi t3, t3, 1
    slli a2, a2, 3
    add  a3, a2, s3
    ld   a4, 0(a3)          # depth[v] (sparse load)
    bne  a4, a0, ph2inner   # v is not a successor (data-dependent)
    add  a3, a2, s4
    ld   a5, 0(a3)          # sigma[v]
    add  a3, a2, s8
    fld  f2, 0(a3)          # delta[v]
    fcvt.d.l f3, a5
    fadd f2, f2, f6         # 1 + delta[v]
    fdiv f3, f1, f3         # sigma[w]/sigma[v]
    fmul f2, f2, f3
    fadd f0, f0, f2         # delta[w] += ...
    j    ph2inner
ph2store:
    slli t0, t1, 3
    add  t2, t0, s8
    fsd  f0, 0(t2)
    j    ph2loop
done:
    mv   a0, s6             # exit code = visited count
    li   a7, 0
    ecall
`

// BC returns the betweenness-centrality workload.
func BC(p Params) workloads.Workload {
	return kernel{
		name:     "bc",
		source:   bcSource,
		maxInsts: 8_000_000,
		init: func(g *graph.CSR, m *mem.Memory) {
			fillUint64(m, aux1Base, g.N, ^uint64(0)) // depth = -1
		},
		validate: validateBC,
	}.workload(p)
}

// bcReference replicates the kernel exactly: same BFS visit order, same
// sigma accumulation, same reverse-order float arithmetic.
func bcReference(g *graph.CSR, src int) (delta []float64, visited int64) {
	n := g.N
	depth := make([]int64, n)
	for i := range depth {
		depth[i] = -1
	}
	sigma := make([]uint64, n)
	delta = make([]float64, n)
	queue := make([]uint64, 0, n)
	queue = append(queue, uint64(src))
	depth[src] = 0
	sigma[src] = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du1 := depth[u] + 1
		for _, v := range g.Adj(int(u)) {
			if depth[v] < 0 {
				depth[v] = du1
				queue = append(queue, v)
			}
			if depth[v] == du1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for i := len(queue) - 1; i >= 0; i-- {
		w := queue[i]
		dw1 := depth[w] + 1
		dw := delta[w]
		sw := float64(int64(sigma[w]))
		for _, v := range g.Adj(int(w)) {
			if depth[v] != dw1 {
				continue
			}
			dw += (delta[v] + 1.0) * (sw / float64(int64(sigma[v])))
		}
		delta[w] = dw
	}
	return delta, int64(len(queue))
}

func validateBC(g *graph.CSR, cpu *functional.CPU) error {
	want, visited := bcReference(g, source(g))
	if got := cpu.ExitCode(); got != visited {
		return fmt.Errorf("bc: visited count = %d, want %d", got, visited)
	}
	for v := 0; v < g.N; v++ {
		got := cpu.Mem.ReadFloat64(aux3Base + uint64(v)*8)
		if math.Abs(got-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			return fmt.Errorf("bc: delta[%d] = %g, want %g", v, got, want[v])
		}
	}
	return nil
}
