package gap

import (
	"fmt"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/workloads"
)

// tcSource is triangle counting by sorted-adjacency intersection: for
// every edge (u,v) with u < v, count common neighbors w > v, so each
// triangle u < v < w is counted exactly once. The merge loop is
// branch-heavy but walks the adjacency arrays sequentially, making tc
// compute-bound — the paper notes tc is "mainly compute bound" and
// therefore barely affected by wrong-path modeling.
const tcSource = `
# tc: triangle counting, ordered merge intersection
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    li   s4, N
    li   s5, 0              # triangle count
    li   t0, 0              # u
outeru:
    bge  t0, s4, done
    slli t1, t0, 3
    add  t1, t1, s0
    ld   s6, 0(t1)          # ustart
    ld   s7, 8(t1)          # uend
    mv   t2, s6             # edge cursor
outerv:
    bge  t2, s7, nextu
    slli t3, t2, 3
    add  t3, t3, s1
    ld   t4, 0(t3)          # v
    addi t2, t2, 1
    ble  t4, t0, outerv     # require v > u
    slli t5, t4, 3
    add  t5, t5, s0
    ld   a0, 0(t5)          # i2 = off[v]
    ld   a1, 8(t5)          # end2 = off[v+1]
    mv   a2, s6             # i1 = off[u]
merge:
    bge  a2, s7, outerv
    bge  a0, a1, outerv
    slli a3, a2, 3
    add  a3, a3, s1
    ld   a4, 0(a3)          # a = adj[u][i1]
    slli a3, a0, 3
    add  a3, a3, s1
    ld   a5, 0(a3)          # b = adj[v][i2]
    blt  a4, a5, adva       # data-dependent merge steering
    blt  a5, a4, advb
    addi a2, a2, 1          # equal: common neighbor
    addi a0, a0, 1
    ble  a4, t4, merge      # only count w > v
    addi s5, s5, 1
    j    merge
adva:
    addi a2, a2, 1
    j    merge
advb:
    addi a0, a0, 1
    j    merge
nextu:
    addi t0, t0, 1
    j    outeru
done:
    mv   a0, s5             # exit code = triangle count
    li   a7, 0
    ecall
`

// TC returns the triangle-counting workload. Triangle counting runs on
// a smaller, cache-resident input: GAP's tc preprocesses and
// degree-orders the graph, and the resulting intersection scans are
// sequential and cache friendly — the paper characterizes tc as
// "mainly compute bound". Intersection work also grows with degree
// squared, so the smaller input keeps tc's instruction count in the
// same range as the other kernels.
func TC(p Params) workloads.Workload {
	if p.N > 8192 {
		p.N = 8192
	}
	return kernel{
		name:     "tc",
		source:   tcSource,
		maxInsts: 8_000_000,
		validate: validateTC,
	}.workload(p)
}

// tcReference counts triangles with the same u < v < w ordering.
func tcReference(g *graph.CSR) int64 {
	var count int64
	for u := 0; u < g.N; u++ {
		adjU := g.Adj(u)
		for _, v := range adjU {
			if v <= uint64(u) {
				continue
			}
			adjV := g.Adj(int(v))
			i, j := 0, 0
			for i < len(adjU) && j < len(adjV) {
				a, b := adjU[i], adjV[j]
				switch {
				case a < b:
					i++
				case b < a:
					j++
				default:
					if a > v {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

func validateTC(g *graph.CSR, cpu *functional.CPU) error {
	want := tcReference(g)
	if got := cpu.ExitCode(); got != want {
		return fmt.Errorf("tc: count = %d, want %d", got, want)
	}
	return nil
}
