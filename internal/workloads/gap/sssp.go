package gap

import (
	"fmt"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// ssspInf is the "unreachable" distance sentinel.
const ssspInf = uint64(1) << 40

// ssspMaxWeight bounds the generated edge weights.
const ssspMaxWeight = 32

// ssspSource is worklist-based single-source shortest paths (the
// structure of GAP's delta-stepping without the bucketing: active
// vertices are pulled from a queue and their edges relaxed; improved
// vertices are re-queued). The relaxation test "bge a5, a6" depends on
// two sparse loads (the weight and the current distance) — a
// hard-to-predict branch whose resolution waits on memory, exactly the
// long wrong-path windows the paper discusses.
const ssspSource = `
# sssp: worklist relaxation
# AUX1 = dist (u64, loader-initialized to INF except dist[src] = 0)
# QUEUE = worklist, loader-seeded with src
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    la   s2, AUX1           # dist
    la   s3, WGT
    la   s8, QUEUE
    li   s5, 0              # head
    li   s6, 1              # tail (src pre-queued)
loop:
    bge  s5, s6, done
    slli t0, s5, 3
    add  t0, t0, s8
    ld   t1, 0(t0)          # u = queue[head]
    addi s5, s5, 1
    slli t0, t1, 3
    add  t2, t0, s2
    ld   t3, 0(t2)          # du = dist[u]
    add  t4, t0, s0
    ld   t5, 0(t4)          # e = off[u]
    ld   t6, 8(t4)          # end = off[u+1]
inner:
    bge  t5, t6, loop
    slli a2, t5, 3
    add  a3, a2, s1
    ld   a4, 0(a3)          # v
    add  a3, a2, s3
    ld   a5, 0(a3)          # w (sparse load)
    addi t5, t5, 1
    add  a5, a5, t3         # nd = du + w
    slli a4, a4, 3
    add  a4, a4, s2
    ld   a6, 0(a4)          # dist[v] (sparse load)
    bge  a5, a6, inner      # no improvement (data-dependent)
    sd   a5, 0(a4)          # dist[v] = nd
    slli a7, s6, 3
    add  a7, a7, s8
    sub  a6, a4, s2
    srli a6, a6, 3          # recover v (a4 = AUX1 + v*8)
    sd   a6, 0(a7)          # queue[tail] = v
    addi s6, s6, 1
    j    inner
done:
    mv   a0, s5             # exit code = vertices processed
    li   a7, 0
    ecall
`

// SSSP returns the single-source-shortest-paths workload.
func SSSP(p Params) workloads.Workload {
	return kernel{
		name:     "sssp",
		source:   ssspSource,
		maxInsts: 8_000_000,
		init: func(g *graph.CSR, m *mem.Memory) {
			m.WriteUint64Slice(wgtBase, graph.Weights(g, 0xdead, ssspMaxWeight))
			fillUint64(m, aux1Base, g.N, ssspInf)
			src := uint64(source(g))
			m.WriteUint64(aux1Base+src*8, 0)
			m.WriteUint64(queueBase, src)
		},
		validate: validateSSSP,
	}.workload(p)
}

// ssspReference replicates the kernel's exact worklist order.
func ssspReference(g *graph.CSR, w []uint64, src int) (dist []uint64, processed int64) {
	dist = make([]uint64, g.N)
	for i := range dist {
		dist[i] = ssspInf
	}
	dist[src] = 0
	queue := make([]uint64, 1, g.N*4)
	queue[0] = uint64(src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		start, end := g.Offsets[u], g.Offsets[u+1]
		for e := start; e < end; e++ {
			v := g.Neighbors[e]
			nd := du + w[e]
			if nd < dist[v] {
				dist[v] = nd
				queue = append(queue, v)
			}
		}
		processed = int64(head + 1)
	}
	return dist, processed
}

func validateSSSP(g *graph.CSR, cpu *functional.CPU) error {
	w := graph.Weights(g, 0xdead, ssspMaxWeight)
	want, processed := ssspReference(g, w, source(g))
	if got := cpu.ExitCode(); got != processed {
		return fmt.Errorf("sssp: processed = %d, want %d", got, processed)
	}
	for v := 0; v < g.N; v++ {
		got := cpu.Mem.ReadUint64(aux1Base + uint64(v)*8)
		if got != want[v] {
			return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, got, want[v])
		}
	}
	return nil
}
