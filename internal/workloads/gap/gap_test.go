package gap

import (
	"testing"

	"repro/internal/functional"
)

// TestKernelsFunctional runs every GAP kernel to completion on the
// functional simulator and validates the architectural results against
// the Go reference implementations.
func TestKernelsFunctional(t *testing.T) {
	for _, w := range Suite(TestParams()) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst, err := w.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
			n, err := cpu.Run(500_000_000)
			if err != nil {
				t.Fatalf("functional run after %d insts: %v", n, err)
			}
			if !cpu.Halted() {
				t.Fatalf("kernel did not halt within %d instructions", n)
			}
			t.Logf("%s: %d instructions, exit=%d", w.Name, n, cpu.ExitCode())
			if err := inst.Validate(cpu); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

// TestKernelsOnAlternateInputs validates the kernels on the Kronecker
// and grid generators too — different degree distributions exercise
// different control-flow behaviour.
func TestKernelsOnAlternateInputs(t *testing.T) {
	variants := []struct {
		name string
		p    Params
	}{
		{"kron", Params{N: 256, Degree: 4, Seed: 11, Kron: true}},
		{"grid", Params{N: 256, Grid: true}},
	}
	for _, v := range variants {
		for _, w := range Suite(v.p) {
			w := w
			t.Run(v.name+"/"+w.Name, func(t *testing.T) {
				inst, err := w.Build()
				if err != nil {
					t.Fatal(err)
				}
				cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
				if _, err := cpu.Run(500_000_000); err != nil {
					t.Fatal(err)
				}
				if !cpu.Halted() {
					t.Fatal("did not halt")
				}
				if err := inst.Validate(cpu); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestKernelsDeterministic checks that two builds execute identically.
func TestKernelsDeterministic(t *testing.T) {
	w := BFS(TestParams())
	counts := make([]uint64, 2)
	for i := range counts {
		inst := w.MustBuild()
		cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
		n, err := cpu.Run(100_000_000)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		counts[i] = n
	}
	if counts[0] != counts[1] {
		t.Fatalf("nondeterministic instruction counts: %d vs %d", counts[0], counts[1])
	}
}
