package gap

import (
	"fmt"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// bfsSource is top-down breadth-first search with an explicit frontier
// queue. PARENT (AUX1) is initialized to -1; the inner loop's
// visited-check branch depends on a sparse load of parent[v] — the
// data-dependent, cache-missing branch that drives wrong-path activity.
const bfsSource = `
# bfs: top-down breadth-first search
# AUX1 = parent array (u64, -1 = unvisited), QUEUE = frontier
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    la   s2, QUEUE
    la   s5, AUX1
    li   s3, 0              # head
    li   t0, SRC
    sd   t0, 0(s2)          # queue[0] = src
    li   s4, 1              # tail
    slli t1, t0, 3
    add  t1, t1, s5
    sd   t0, 0(t1)          # parent[src] = src
loop:
    bge  s3, s4, done
    slli t0, s3, 3
    add  t0, t0, s2
    ld   t1, 0(t0)          # u = queue[head]
    addi s3, s3, 1
    slli t0, t1, 3
    add  t0, t0, s0
    ld   t2, 0(t0)          # e = off[u]
    ld   t3, 8(t0)          # end = off[u+1]
inner:
    bge  t2, t3, loop
    slli t4, t2, 3
    add  t4, t4, s1
    ld   t5, 0(t4)          # v = adj[e]
    addi t2, t2, 1
    slli t4, t5, 3
    add  t4, t4, s5
    ld   t6, 0(t4)          # parent[v]
    bgez t6, inner          # visited -> skip (data-dependent)
    sd   t1, 0(t4)          # parent[v] = u
    slli t4, s4, 3
    add  t4, t4, s2
    sd   t5, 0(t4)          # queue[tail] = v
    addi s4, s4, 1
    j    inner
done:
    mv   a0, s4             # exit code = visited count
    li   a7, 0
    ecall
`

// BFS returns the breadth-first-search workload.
func BFS(p Params) workloads.Workload {
	return kernel{
		name:     "bfs",
		source:   bfsSource,
		maxInsts: 8_000_000,
		init: func(g *graph.CSR, m *mem.Memory) {
			fillUint64(m, aux1Base, g.N, ^uint64(0)) // parent = -1
		},
		validate: validateBFS,
	}.workload(p)
}

// bfsReference computes the visited set and the BFS depth of every
// vertex (parent trees may differ in tie-breaking, depths may not).
func bfsReference(g *graph.CSR, src int) (depth []int64, visited int) {
	depth = make([]int64, g.N)
	for i := range depth {
		depth[i] = -1
	}
	queue := make([]uint64, 0, g.N)
	queue = append(queue, uint64(src))
	depth[src] = 0
	visited = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Adj(int(u)) {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				visited++
				queue = append(queue, v)
			}
		}
	}
	return depth, visited
}

func validateBFS(g *graph.CSR, cpu *functional.CPU) error {
	src := source(g)
	depth, visited := bfsReference(g, src)
	if got := cpu.ExitCode(); got != int64(visited) {
		return fmt.Errorf("bfs: visited count = %d, want %d", got, visited)
	}
	for v := 0; v < g.N; v++ {
		parent := cpu.Mem.ReadUint64(aux1Base + uint64(v)*8)
		if depth[v] < 0 {
			if parent != ^uint64(0) {
				return fmt.Errorf("bfs: vertex %d unreachable but parent=%d", v, parent)
			}
			continue
		}
		if parent == ^uint64(0) {
			return fmt.Errorf("bfs: vertex %d reachable but unvisited", v)
		}
		if v == src {
			if parent != uint64(src) {
				return fmt.Errorf("bfs: source parent = %d", parent)
			}
			continue
		}
		// The parent must be a real neighbor one level up.
		if depth[parent] != depth[v]-1 {
			return fmt.Errorf("bfs: vertex %d at depth %d has parent %d at depth %d",
				v, depth[v], parent, depth[parent])
		}
		found := false
		for _, w := range g.Adj(int(parent)) {
			if w == uint64(v) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("bfs: parent %d of %d is not a neighbor", parent, v)
		}
	}
	return nil
}
