package gap

import (
	"fmt"
	"math"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// prIters is the number of PageRank power iterations simulated.
const prIters = 2

// prSource is pull-style PageRank. The paper singles pr out: "it has no
// conditional branches in its inner loop", so wrong-path modeling has
// no impact on it — the inner accumulation loop below is branch-free
// except for the (well-predicted) loop-end test.
const prSource = `
# pr: pagerank, pull-style, ITERS power iterations
# AUX1 = rank (f64), AUX2 = contrib (f64)
.equ ITERS, 2
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    la   s2, AUX1           # rank
    la   s3, AUX2           # contrib
    li   s4, N
    li   s5, ITERS
    li   t0, 1
    fcvt.d.l f3, t0         # 1.0
    fcvt.d.l f4, s4         # n
    li   t0, 85
    fcvt.d.l f1, t0
    li   t0, 100
    fcvt.d.l f5, t0
    fdiv f1, f1, f5         # damping d = 0.85
    fsub f2, f3, f1
    fdiv f2, f2, f4         # base = (1-d)/n
    li   s6, 0              # iteration counter; rank[] loader-initialized to 1/n
iter:
    bge  s6, s5, done
    li   t0, 0              # phase 1: contrib[u] = rank[u]/deg[u]
ph1:
    bge  t0, s4, ph2start
    slli t1, t0, 3
    add  t2, t1, s0
    ld   t3, 0(t2)          # off[u]
    ld   t4, 8(t2)          # off[u+1]
    sub  t3, t4, t3         # deg
    add  t2, t1, s2
    fld  f3, 0(t2)          # rank[u]
    beqz t3, zdeg
    fcvt.d.l f4, t3
    fdiv f3, f3, f4
zdeg:
    add  t2, t1, s3
    fsd  f3, 0(t2)          # contrib[u]
    addi t0, t0, 1
    j    ph1
ph2start:
    li   t0, 0              # phase 2: rank[u] = base + d * sum(contrib[v])
ph2:
    bge  t0, s4, iterend
    slli t1, t0, 3
    add  t2, t1, s0
    ld   t3, 0(t2)          # e
    ld   t4, 8(t2)          # end
    li   t5, 0
    fcvt.d.l f5, t5         # sum = 0
ph2inner:
    bge  t3, t4, ph2store
    slli t5, t3, 3
    add  t5, t5, s1
    ld   t6, 0(t5)          # v
    addi t3, t3, 1
    slli t6, t6, 3
    add  t6, t6, s3
    fld  f4, 0(t6)          # contrib[v] (sparse load)
    fadd f5, f5, f4
    j    ph2inner
ph2store:
    fmul f5, f5, f1
    fadd f5, f5, f2
    add  t2, t1, s2
    fsd  f5, 0(t2)          # rank[u] updated in place
    addi t0, t0, 1
    j    ph2
iterend:
    addi s6, s6, 1
    j    iter
done:
    li   a0, 0
    li   a7, 0
    ecall
`

// PR returns the PageRank workload. PageRank runs on a quarter-size
// input so the 8M-instruction sample reaches its branch-free inner
// accumulation loop (both PageRank phases are linear in N, unlike the
// traversal kernels).
func PR(p Params) workloads.Workload {
	if p.N > 1<<18 {
		p.N = 1 << 18
	}
	return kernel{
		name:     "pr",
		source:   prSource,
		maxInsts: 8_000_000,
		init: func(g *graph.CSR, m *mem.Memory) {
			invN := 1.0 / float64(int64(g.N))
			for u := 0; u < g.N; u++ {
				m.WriteFloat64(aux1Base+uint64(u)*8, invN)
			}
		},
		validate: validatePR,
	}.workload(p)
}

// prReference replicates the kernel's exact arithmetic (same operation
// order, in-place rank update) so ranks match bit-for-bit up to Go/ISA
// rounding identity — both use IEEE-754 doubles, so exactly.
func prReference(g *graph.CSR) []float64 {
	n := g.N
	one := 1.0
	nf := float64(int64(n))
	d := 85.0 / 100.0
	base := (one - d) / nf
	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = one / nf
	}
	for it := 0; it < prIters; it++ {
		for u := 0; u < n; u++ {
			deg := g.Degree(u)
			c := rank[u]
			if deg != 0 {
				c = c / float64(int64(deg))
			}
			contrib[u] = c
		}
		for u := 0; u < n; u++ {
			sum := 0.0
			for _, v := range g.Adj(u) {
				sum += contrib[v]
			}
			rank[u] = sum*d + base
		}
	}
	return rank
}

func validatePR(g *graph.CSR, cpu *functional.CPU) error {
	want := prReference(g)
	var total float64
	for u := 0; u < g.N; u++ {
		got := cpu.Mem.ReadFloat64(aux1Base + uint64(u)*8)
		if math.Abs(got-want[u]) > 1e-12 {
			return fmt.Errorf("pr: rank[%d] = %g, want %g", u, got, want[u])
		}
		total += got
	}
	// Sanity: total rank stays near 1 (dangling mass aside).
	if total <= 0 || total > float64(g.N) {
		return fmt.Errorf("pr: implausible total rank %g", total)
	}
	return nil
}
