package gap

import (
	"fmt"

	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// ccIters caps the label-propagation rounds (each round is followed by
// one pointer-jumping pass, Shiloach–Vishkin style).
const ccIters = 3

// ccSource is connected components by label propagation. The inner
// "bge a3, t3" minimum-label test is data dependent: whether a
// neighbor's label improves the current one depends on sparse loads.
const ccSource = `
# cc: connected components, label propagation + pointer jumping
# AUX1 = component labels (u64)
.equ ITERS, 3
.entry main
main:
    la   s0, OFF
    la   s1, ADJ
    la   s2, AUX1           # comp, loader-initialized to comp[v] = v
    li   s4, N
    li   s5, ITERS
    li   s6, 0              # round counter
round:
    bge  s6, s5, done
    li   s7, 0              # changed flag
    li   t0, 0              # u
outer:
    bge  t0, s4, jump
    slli t1, t0, 3
    add  t2, t1, s2
    ld   t3, 0(t2)          # cu = comp[u]
    add  t4, t1, s0
    ld   t5, 0(t4)          # e
    ld   t6, 8(t4)          # end
inner:
    bge  t5, t6, store
    slli a1, t5, 3
    add  a1, a1, s1
    ld   a2, 0(a1)          # v
    addi t5, t5, 1
    slli a2, a2, 3
    add  a2, a2, s2
    ld   a3, 0(a2)          # cv = comp[v] (sparse load)
    bge  a3, t3, inner      # no improvement (data-dependent)
    mv   t3, a3             # cu = cv
    li   s7, 1
    j    inner
store:
    sd   t3, 0(t2)          # comp[u] = cu
    addi t0, t0, 1
    j    outer
jump:                       # comp[v] = comp[comp[v]]
    li   t0, 0
pj:
    bge  t0, s4, roundend
    slli t1, t0, 3
    add  t1, t1, s2
    ld   t2, 0(t1)
    slli t2, t2, 3
    add  t2, t2, s2
    ld   t3, 0(t2)
    sd   t3, 0(t1)
    addi t0, t0, 1
    j    pj
roundend:
    addi s6, s6, 1
    beqz s7, done           # converged early
    j    round
done:
    mv   a0, s6             # exit code = rounds executed
    li   a7, 0
    ecall
`

// CC returns the connected-components workload.
func CC(p Params) workloads.Workload {
	return kernel{
		name:     "cc",
		source:   ccSource,
		maxInsts: 8_000_000,
		init: func(g *graph.CSR, m *mem.Memory) {
			for v := 0; v < g.N; v++ {
				m.WriteUint64(aux1Base+uint64(v)*8, uint64(v))
			}
		},
		validate: validateCC,
	}.workload(p)
}

// ccReference replicates the kernel's exact rounds.
func ccReference(g *graph.CSR) (comp []uint64, rounds int64) {
	n := g.N
	comp = make([]uint64, n)
	for v := range comp {
		comp[v] = uint64(v)
	}
	for r := 0; r < ccIters; r++ {
		changed := false
		for u := 0; u < n; u++ {
			cu := comp[u]
			for _, v := range g.Adj(u) {
				if cv := comp[v]; cv < cu {
					cu = cv
					changed = true
				}
			}
			comp[u] = cu
		}
		for v := 0; v < n; v++ {
			comp[v] = comp[comp[v]]
		}
		rounds = int64(r + 1)
		if !changed {
			break
		}
	}
	return comp, rounds
}

func validateCC(g *graph.CSR, cpu *functional.CPU) error {
	want, rounds := ccReference(g)
	if got := cpu.ExitCode(); got != rounds {
		return fmt.Errorf("cc: rounds = %d, want %d", got, rounds)
	}
	for v := 0; v < g.N; v++ {
		got := cpu.Mem.ReadUint64(aux1Base + uint64(v)*8)
		if got != want[v] {
			return fmt.Errorf("cc: comp[%d] = %d, want %d", v, got, want[v])
		}
	}
	return nil
}
