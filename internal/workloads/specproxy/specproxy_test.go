package specproxy

import (
	"testing"

	"repro/internal/functional"
)

// TestKernelsFunctional runs all twenty proxy kernels to completion on
// the functional simulator and checks the exit codes against the Go
// mirrors.
func TestKernelsFunctional(t *testing.T) {
	for _, w := range Suite(TestParams()) {
		w := w
		t.Run(w.Suite+"/"+w.Name, func(t *testing.T) {
			inst, err := w.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
			n, err := cpu.Run(500_000_000)
			if err != nil {
				t.Fatalf("functional run after %d insts: %v", n, err)
			}
			if !cpu.Halted() {
				t.Fatalf("kernel did not halt within %d instructions", n)
			}
			t.Logf("%s: %d instructions, exit=%d", w.Name, n, cpu.ExitCode())
			if err := inst.Validate(cpu); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteShape checks the suite composition the experiments rely on.
func TestSuiteShape(t *testing.T) {
	p := TestParams()
	if got := len(IntSuite(p)); got != 10 {
		t.Errorf("IntSuite has %d kernels, want 10", got)
	}
	if got := len(FPSuite(p)); got != 10 {
		t.Errorf("FPSuite has %d kernels, want 10", got)
	}
	seen := map[string]bool{}
	for _, w := range Suite(p) {
		if seen[w.Name] {
			t.Errorf("duplicate kernel name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Suite != "specint" && w.Suite != "specfp" {
			t.Errorf("kernel %q has suite %q", w.Name, w.Suite)
		}
	}
}
