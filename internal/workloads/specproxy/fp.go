package specproxy

import (
	"repro/internal/graph"
	"repro/internal/mem"
)

// The FP-like kernels mirror the paper's SPEC FP population: "regular
// number-crunching code with no hard-to-predict branches". Their loop
// branches are trip-count tests the predictor learns perfectly, so
// wrong-path modeling should leave them at ≈0% error. raysphere is the
// deliberate exception — its hit-test branch depends on data, giving
// the FP distribution the small tail the paper's Figure 4 shows.

// --- streamTriad: cam4/roms-like streaming bandwidth -------------------

var streamTriad = proxy{
	name:     "streamtriad",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(200_000, 256)
		const passes = 2
		b := make([]float64, n)
		c := make([]float64, n)
		for i := range b {
			b[i] = float64(int64(rng.Intn(1000))) / 1000.0
			c[i] = float64(int64(rng.Intn(1000))) / 1000.0
		}
		m.WriteFloat64Slice(data2Base, b)
		m.WriteFloat64Slice(data3Base, c)

		s := 3.0
		a := make([]float64, n)
		sum := 0.0
		for pass := 0; pass < passes; pass++ {
			for i := 0; i < n; i++ {
				a[i] = b[i] + c[i]*s
				sum += a[i]
			}
		}
		src := `
.equ PASSES, 2
.entry main
main:
    la   s0, A
    la   s1, B
    la   s2, C
    li   s3, N
    li   s4, PASSES
    li   t0, 3
    fcvt.d.l f1, t0         # s = 3.0
    li   t0, 0
    fcvt.d.l f9, t0         # sum = 0
    li   s5, 0
pass:
    bge  s5, s4, done
    li   t0, 0
loop:
    bge  t0, s3, passend
    slli t1, t0, 3
    add  t2, t1, s1
    fld  f2, 0(t2)          # b[i]
    add  t2, t1, s2
    fld  f3, 0(t2)          # c[i]
    fmul f3, f3, f1
    fadd f2, f2, f3
    add  t2, t1, s0
    fsd  f2, 0(t2)          # a[i]
    fadd f9, f9, f2
    addi t0, t0, 1
    j    loop
passend:
    addi s5, s5, 1
    j    pass
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"A": data1Base, "B": data2Base, "C": data3Base, "N": uint64(n)}
		return src, syms, int64(sum)
	},
}

// --- stencil1d: lbm-like sweep ------------------------------------------

var stencil1d = proxy{
	name:     "stencil1d",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(150_000, 512)
		const passes = 2
		a := make([]float64, n)
		for i := range a {
			a[i] = float64(int64(i % 17))
		}
		m.WriteFloat64Slice(data1Base, a)

		third := 1.0 / 3.0
		b := make([]float64, n)
		src_, dst := a, b
		for pass := 0; pass < passes; pass++ {
			dst[0] = src_[0]
			dst[n-1] = src_[n-1]
			for i := 1; i < n-1; i++ {
				dst[i] = (src_[i-1] + src_[i] + src_[i+1]) * third
			}
			src_, dst = dst, src_
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += src_[i]
		}
		src := `
.equ PASSES, 2
.entry main
main:
    la   s0, A              # src
    la   s1, B              # dst
    li   s3, N
    li   s4, PASSES
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 3
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # 1/3
    li   s5, 0
pass:
    bge  s5, s4, sumphase
    fld  f3, 0(s0)
    fsd  f3, 0(s1)          # dst[0] = src[0]
    addi t2, s3, -1
    slli t2, t2, 3
    add  t3, t2, s0
    fld  f3, 0(t3)
    add  t3, t2, s1
    fsd  f3, 0(t3)          # dst[n-1] = src[n-1]
    li   t0, 1
    addi t6, s3, -1
loop:
    bge  t0, t6, passend
    slli t1, t0, 3
    add  t2, t1, s0
    fld  f3, -8(t2)
    fld  f4, 0(t2)
    fld  f5, 8(t2)
    fadd f3, f3, f4
    fadd f3, f3, f5
    fmul f3, f3, f1
    add  t2, t1, s1
    fsd  f3, 0(t2)
    addi t0, t0, 1
    j    loop
passend:
    mv   t0, s0             # swap src/dst
    mv   s0, s1
    mv   s1, t0
    addi s5, s5, 1
    j    pass
sumphase:
    li   t0, 0
    fcvt.d.l f9, t0
sumloop:
    bge  t0, s3, done
    slli t1, t0, 3
    add  t1, t1, s0
    fld  f3, 0(t1)
    fadd f9, f9, f3
    addi t0, t0, 1
    j    sumloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"A": data1Base, "B": data2Base, "N": uint64(n)}
		return src, syms, int64(sum)
	},
}

// --- matmul: bwaves-like dense linear algebra ----------------------------

var matmul = proxy{
	name:     "matmul",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		const dim = 64
		reps := p.scaled(2, 1)
		a := make([]float64, dim*dim)
		b := make([]float64, dim*dim)
		for i := range a {
			a[i] = float64(int64(rng.Intn(100))) / 100.0
			b[i] = float64(int64(rng.Intn(100))) / 100.0
		}
		m.WriteFloat64Slice(data1Base, a)
		m.WriteFloat64Slice(data2Base, b)

		c := make([]float64, dim*dim)
		for r := 0; r < reps; r++ {
			for i := 0; i < dim; i++ {
				for j := 0; j < dim; j++ {
					acc := 0.0
					for k := 0; k < dim; k++ {
						acc += a[i*dim+k] * b[k*dim+j]
					}
					c[i*dim+j] = acc
				}
			}
		}
		sum := 0.0
		for _, v := range c {
			sum += v
		}
		src := `
.equ DIM, 64
.entry main
main:
    la   s0, A
    la   s1, B
    la   s2, C
    li   s3, DIM
    li   s4, REPS
    li   s5, 0              # rep
rep:
    bge  s5, s4, sumphase
    li   t0, 0              # i
iloop:
    bge  t0, s3, repend
    li   t1, 0              # j
jloop:
    bge  t1, s3, iend
    li   t2, 0              # k
    li   t3, 0
    fcvt.d.l f0, t3         # acc = 0
    slli t4, t0, 9          # i*64*8
    add  t4, t4, s0         # &a[i*64]
    slli t5, t1, 3
    add  t5, t5, s1         # &b[0*64+j]
kloop:
    bge  t2, s3, kend
    fld  f1, 0(t4)          # a[i*64+k]
    fld  f2, 0(t5)          # b[k*64+j]
    fmul f1, f1, f2
    fadd f0, f0, f1
    addi t4, t4, 8
    addi t5, t5, 512        # next row of b
    addi t2, t2, 1
    j    kloop
kend:
    slli t6, t0, 9
    slli a0, t1, 3
    add  t6, t6, a0
    add  t6, t6, s2
    fsd  f0, 0(t6)          # c[i*64+j]
    addi t1, t1, 1
    j    jloop
iend:
    addi t0, t0, 1
    j    iloop
repend:
    addi s5, s5, 1
    j    rep
sumphase:
    li   t0, 0
    fcvt.d.l f9, t0
    li   t1, 4096           # 64*64
sumloop:
    bge  t0, t1, done
    slli t2, t0, 3
    add  t2, t2, s2
    fld  f1, 0(t2)
    fadd f9, f9, f1
    addi t0, t0, 1
    j    sumloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"A": data1Base, "B": data2Base, "C": data3Base, "REPS": uint64(reps)}
		return src, syms, int64(sum)
	},
}

// --- nbody: nab-like pairwise interactions -------------------------------

var nbody = proxy{
	name:     "nbody",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(384, 24)
		pos := make([]float64, n)
		mass := make([]float64, n)
		for i := range pos {
			pos[i] = float64(int64(rng.Intn(10_000))) / 100.0
			mass[i] = 1.0 + float64(int64(rng.Intn(100)))/100.0
		}
		m.WriteFloat64Slice(data1Base, pos)
		m.WriteFloat64Slice(data2Base, mass)

		eps := 1.0 / 16.0
		total := 0.0
		for i := 0; i < n; i++ {
			f := 0.0
			for j := 0; j < n; j++ {
				d := pos[i] - pos[j]
				f += mass[j] / (d*d + eps)
			}
			total += f
		}
		src := `
.entry main
main:
    la   s0, POS
    la   s1, MASS
    li   s3, N
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 16
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # eps = 1/16
    li   t0, 0
    fcvt.d.l f9, t0         # total = 0
    li   t0, 0              # i
iloop:
    bge  t0, s3, done
    slli t1, t0, 3
    add  t1, t1, s0
    fld  f3, 0(t1)          # pos[i]
    li   t2, 0
    fcvt.d.l f4, t2         # f = 0
    li   t2, 0              # j
jloop:
    bge  t2, s3, iend
    slli t3, t2, 3
    add  t4, t3, s0
    fld  f5, 0(t4)          # pos[j]
    add  t4, t3, s1
    fld  f6, 0(t4)          # mass[j]
    fsub f5, f3, f5         # d
    fmul f5, f5, f5
    fadd f5, f5, f1         # d*d + eps
    fdiv f6, f6, f5
    fadd f4, f4, f6
    addi t2, t2, 1
    j    jloop
iend:
    fadd f9, f9, f4
    addi t0, t0, 1
    j    iloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"POS": data1Base, "MASS": data2Base, "N": uint64(n)}
		return src, syms, int64(total)
	},
}

// --- conv2d: imagick-like convolution -------------------------------------

var conv2d = proxy{
	name:     "conv2d",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		dim := p.scaled(192, 16)
		img := make([]float64, dim*dim)
		for i := range img {
			img[i] = float64(int64(rng.Intn(256)))
		}
		m.WriteFloat64Slice(data1Base, img)

		ninth := 1.0 / 9.0
		out := make([]float64, dim*dim)
		sum := 0.0
		for y := 1; y < dim-1; y++ {
			for x := 1; x < dim-1; x++ {
				acc := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						acc += img[(y+dy)*dim+(x+dx)]
					}
				}
				out[y*dim+x] = acc * ninth
				sum += out[y*dim+x]
			}
		}
		src := `
.entry main
main:
    la   s0, IMG
    la   s1, OUT
    li   s3, DIM
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 9
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # 1/9
    li   t0, 0
    fcvt.d.l f9, t0         # sum
    slli s4, s3, 3          # row stride in bytes
    addi s5, s3, -1
    li   t0, 1              # y
yloop:
    bge  t0, s5, done
    li   t1, 1              # x
xloop:
    bge  t1, s5, yend
    # address of img[(y-1)*dim + (x-1)]
    addi t2, t0, -1
    mul  t3, t2, s3
    addi t4, t1, -1
    add  t3, t3, t4
    slli t3, t3, 3
    add  t3, t3, s0
    # top row
    fld  f3, 0(t3)
    fld  f4, 8(t3)
    fadd f3, f3, f4
    fld  f4, 16(t3)
    fadd f3, f3, f4
    add  t3, t3, s4         # middle row
    fld  f4, 0(t3)
    fadd f3, f3, f4
    fld  f4, 8(t3)
    fadd f3, f3, f4
    fld  f4, 16(t3)
    fadd f3, f3, f4
    add  t3, t3, s4         # bottom row
    fld  f4, 0(t3)
    fadd f3, f3, f4
    fld  f4, 8(t3)
    fadd f3, f3, f4
    fld  f4, 16(t3)
    fadd f3, f3, f4
    fmul f3, f3, f1
    mul  t5, t0, s3
    add  t5, t5, t1
    slli t5, t5, 3
    add  t5, t5, s1
    fsd  f3, 0(t5)
    fadd f9, f9, f3
    addi t1, t1, 1
    j    xloop
yend:
    addi t0, t0, 1
    j    yloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"IMG": data1Base, "OUT": data2Base, "DIM": uint64(dim)}
		return src, syms, int64(sum)
	},
}

// --- fdtd: fotonik3d-like field updates ------------------------------------

var fdtd = proxy{
	name:     "fdtd",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(100_000, 512)
		const passes = 2
		e := make([]float64, n)
		h := make([]float64, n)
		for i := range e {
			e[i] = float64(int64(rng.Intn(100))) / 100.0
		}
		m.WriteFloat64Slice(data1Base, e)
		// h starts zeroed (sparse memory default).

		c1 := 1.0 / 2.0
		c2 := 1.0 / 4.0
		for pass := 0; pass < passes; pass++ {
			for i := 0; i < n-1; i++ {
				h[i] += c1 * (e[i+1] - e[i])
			}
			for i := 1; i < n; i++ {
				e[i] += c2 * (h[i] - h[i-1])
			}
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += e[i]
		}
		src := `
.equ PASSES, 2
.entry main
main:
    la   s0, E
    la   s1, H
    li   s3, N
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 2
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # c1 = 1/2
    li   t0, 1
    fcvt.d.l f3, t0
    li   t0, 4
    fcvt.d.l f2, t0
    fdiv f3, f3, f2         # c2 = 1/4
    addi s6, s3, -1
    li   s5, 0
pass:
    li   t6, PASSES
    bge  s5, t6, sumphase
    li   t0, 0
hloop:
    bge  t0, s6, estart
    slli t1, t0, 3
    add  t2, t1, s0
    fld  f4, 0(t2)          # e[i]
    fld  f5, 8(t2)          # e[i+1]
    fsub f5, f5, f4
    fmul f5, f5, f1
    add  t2, t1, s1
    fld  f4, 0(t2)
    fadd f4, f4, f5
    fsd  f4, 0(t2)          # h[i] += c1*(e[i+1]-e[i])
    addi t0, t0, 1
    j    hloop
estart:
    li   t0, 1
eloop:
    bge  t0, s3, passend
    slli t1, t0, 3
    add  t2, t1, s1
    fld  f4, 0(t2)          # h[i]
    fld  f5, -8(t2)         # h[i-1]
    fsub f4, f4, f5
    fmul f4, f4, f3
    add  t2, t1, s0
    fld  f5, 0(t2)
    fadd f5, f5, f4
    fsd  f5, 0(t2)          # e[i] += c2*(h[i]-h[i-1])
    addi t0, t0, 1
    j    eloop
passend:
    addi s5, s5, 1
    j    pass
sumphase:
    li   t0, 0
    fcvt.d.l f9, t0
sumloop:
    bge  t0, s3, done
    slli t1, t0, 3
    add  t1, t1, s0
    fld  f4, 0(t1)
    fadd f9, f9, f4
    addi t0, t0, 1
    j    sumloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"E": data1Base, "H": data2Base, "N": uint64(n)}
		return src, syms, int64(sum)
	},
}

// --- dotprod: cactuBSSN-like reductions -------------------------------------

var dotprod = proxy{
	name:     "dotprod",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(120_000, 256)
		const passes = 3
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(int64(rng.Intn(1000))) / 500.0
			b[i] = float64(int64(rng.Intn(1000))) / 500.0
		}
		m.WriteFloat64Slice(data1Base, a)
		m.WriteFloat64Slice(data2Base, b)

		total := 0.0
		for pass := 0; pass < passes; pass++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += a[i] * b[i]
			}
			total += dot
		}
		src := `
.equ PASSES, 3
.entry main
main:
    la   s0, A
    la   s1, B
    li   s3, N
    li   t0, 0
    fcvt.d.l f9, t0         # total
    li   s5, 0
pass:
    li   t6, PASSES
    bge  s5, t6, done
    li   t0, 0
    fcvt.d.l f0, t0         # dot
loop:
    bge  t0, s3, passend
    slli t1, t0, 3
    add  t2, t1, s0
    fld  f1, 0(t2)
    add  t2, t1, s1
    fld  f2, 0(t2)
    fmul f1, f1, f2
    fadd f0, f0, f1
    addi t0, t0, 1
    j    loop
passend:
    fadd f9, f9, f0
    addi s5, s5, 1
    j    pass
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"A": data1Base, "B": data2Base, "N": uint64(n)}
		return src, syms, int64(total)
	},
}

// --- raysphere: povray-like intersection testing -----------------------------

// raysphere is the FP kernel with a genuinely data-dependent branch (the
// discriminant sign test), placing it between the regular FP kernels and
// the INT kernels in wrong-path sensitivity.
var raysphere = proxy{
	name:     "raysphere",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(120_000, 256)
		ox := make([]float64, n)
		dx := make([]float64, n)
		for i := range ox {
			ox[i] = float64(int64(rng.Intn(400)))/100.0 - 2.0 // [-2, 2)
			dx[i] = float64(int64(rng.Intn(200)))/100.0 - 1.0 // [-1, 1)
		}
		m.WriteFloat64Slice(data1Base, ox)
		m.WriteFloat64Slice(data2Base, dx)

		// 1D ray-sphere: (o + t*d)^2 = 1 → disc = (o*d)^2 - d*d*(o*o-1).
		var hits int64
		for i := 0; i < n; i++ {
			o, d := ox[i], dx[i]
			b := o * d
			disc := b*b - d*d*(o*o-1.0)
			if disc > 0 {
				hits++
			}
		}
		src := `
.entry main
main:
    la   s0, OX
    la   s1, DX
    li   s3, N
    li   s9, 0              # hits
    li   t0, 1
    fcvt.d.l f1, t0         # 1.0
    li   t0, 0
    fcvt.d.l f8, t0         # 0.0
    li   t0, 0
loop:
    bge  t0, s3, done
    slli t1, t0, 3
    add  t2, t1, s0
    fld  f2, 0(t2)          # o
    add  t2, t1, s1
    fld  f3, 0(t2)          # d
    addi t0, t0, 1
    fmul f4, f2, f3         # b = o*d
    fmul f4, f4, f4         # b*b
    fmul f5, f3, f3         # d*d
    fmul f6, f2, f2         # o*o
    fsub f6, f6, f1         # o*o - 1
    fmul f5, f5, f6
    fsub f4, f4, f5         # disc
    flt  t3, f8, f4         # 0 < disc (data-dependent FP branch)
    beqz t3, loop
    addi s9, s9, 1
    j    loop
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"OX": data1Base, "DX": data2Base, "N": uint64(n)}
		return src, syms, hits
	},
}

// --- stencil3d: wrf-like 3D sweep ----------------------------------------------

var stencil3d = proxy{
	name:     "stencil3d",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		dim := p.scaled(40, 8)
		const passes = 2
		sz := dim * dim * dim
		g := make([]float64, sz)
		for i := range g {
			g[i] = float64(int64(rng.Intn(100))) / 10.0
		}
		m.WriteFloat64Slice(data1Base, g)

		seventh := 1.0 / 7.0
		out := make([]float64, sz)
		srcG, dst := g, out
		idx := func(x, y, z int) int { return (z*dim+y)*dim + x }
		for pass := 0; pass < passes; pass++ {
			for z := 1; z < dim-1; z++ {
				for y := 1; y < dim-1; y++ {
					for x := 1; x < dim-1; x++ {
						acc := srcG[idx(x, y, z)] +
							srcG[idx(x-1, y, z)] + srcG[idx(x+1, y, z)] +
							srcG[idx(x, y-1, z)] + srcG[idx(x, y+1, z)] +
							srcG[idx(x, y, z-1)] + srcG[idx(x, y, z+1)]
						dst[idx(x, y, z)] = acc * seventh
					}
				}
			}
			srcG, dst = dst, srcG
		}
		sum := 0.0
		for i := 0; i < sz; i++ {
			sum += srcG[i]
		}
		src := `
.equ PASSES, 2
.entry main
main:
    la   s0, G              # src
    la   s1, OUT            # dst
    li   s3, DIM
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 7
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # 1/7
    mul  s4, s3, s3         # dim*dim (plane stride in elements)
    slli s4, s4, 3          # plane stride in bytes
    slli s7, s3, 3          # row stride in bytes
    addi s6, s3, -1
    li   s5, 0
pass:
    li   t6, PASSES
    bge  s5, t6, sumphase
    li   t0, 1              # z
zloop:
    bge  t0, s6, passend
    li   t1, 1              # y
yloop:
    bge  t1, s6, zend
    li   t2, 1              # x
xloop:
    bge  t2, s6, yend
    # element offset = ((z*dim + y)*dim + x) * 8
    mul  t3, t0, s3
    add  t3, t3, t1
    mul  t3, t3, s3
    add  t3, t3, t2
    slli t3, t3, 3
    add  t4, t3, s0         # &src[center]
    fld  f3, 0(t4)
    fld  f4, -8(t4)
    fadd f3, f3, f4
    fld  f4, 8(t4)
    fadd f3, f3, f4
    sub  t5, t4, s7
    fld  f4, 0(t5)
    fadd f3, f3, f4
    add  t5, t4, s7
    fld  f4, 0(t5)
    fadd f3, f3, f4
    sub  t5, t4, s4
    fld  f4, 0(t5)
    fadd f3, f3, f4
    add  t5, t4, s4
    fld  f4, 0(t5)
    fadd f3, f3, f4
    fmul f3, f3, f1
    add  t4, t3, s1
    fsd  f3, 0(t4)
    addi t2, t2, 1
    j    xloop
yend:
    addi t1, t1, 1
    j    yloop
zend:
    addi t0, t0, 1
    j    zloop
passend:
    mv   t0, s0             # swap src/dst
    mv   s0, s1
    mv   s1, t0
    addi s5, s5, 1
    j    pass
sumphase:
    mul  t1, s3, s3
    mul  t1, t1, s3         # dim^3
    li   t0, 0
    fcvt.d.l f9, t0
sumloop:
    bge  t0, t1, done
    slli t2, t0, 3
    add  t2, t2, s0
    fld  f3, 0(t2)
    fadd f9, f9, f3
    addi t0, t0, 1
    j    sumloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"G": data1Base, "OUT": data2Base, "DIM": uint64(dim)}
		return src, syms, int64(sum)
	},
}

// --- wave1d: specfem-like wave propagation ---------------------------------------

var wave1d = proxy{
	name:     "wave1d",
	fp:       true,
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(80_000, 512)
		const passes = 3
		u := make([]float64, n)
		for i := range u {
			u[i] = float64(int64(rng.Intn(200))) / 100.0
		}
		prev := append([]float64(nil), u...)
		m.WriteFloat64Slice(data1Base, u)
		m.WriteFloat64Slice(data2Base, prev)
		// next (data3) starts zeroed.

		c := 1.0 / 4.0
		next := make([]float64, n)
		for pass := 0; pass < passes; pass++ {
			for i := 1; i < n-1; i++ {
				lap := u[i+1] - 2.0*u[i] + u[i-1]
				next[i] = 2.0*u[i] - prev[i] + c*lap
			}
			prev, u, next = u, next, prev
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += u[i]
		}
		src := `
.equ PASSES, 3
.entry main
main:
    la   s0, U
    la   s1, PREV
    la   s2, NEXT
    li   s3, N
    li   t0, 1
    fcvt.d.l f1, t0
    li   t0, 4
    fcvt.d.l f2, t0
    fdiv f1, f1, f2         # c = 1/4
    li   t0, 2
    fcvt.d.l f2, t0         # 2.0
    addi s6, s3, -1
    li   s5, 0
pass:
    li   t6, PASSES
    bge  s5, t6, sumphase
    li   t0, 1
loop:
    bge  t0, s6, passend
    slli t1, t0, 3
    add  t2, t1, s0
    fld  f3, 0(t2)          # u[i]
    fld  f4, 8(t2)          # u[i+1]
    fld  f5, -8(t2)         # u[i-1]
    fmul f6, f2, f3         # 2u[i]
    fsub f4, f4, f6
    fadd f4, f4, f5         # lap
    add  t2, t1, s1
    fld  f5, 0(t2)          # prev[i]
    fsub f6, f6, f5         # 2u[i] - prev[i]
    fmul f4, f4, f1
    fadd f6, f6, f4
    add  t2, t1, s2
    fsd  f6, 0(t2)          # next[i]
    addi t0, t0, 1
    j    loop
passend:
    mv   t0, s1             # rotate prev, u, next
    mv   s1, s0
    mv   s0, s2
    mv   s2, t0
    addi s5, s5, 1
    j    pass
sumphase:
    li   t0, 0
    fcvt.d.l f9, t0
sumloop:
    bge  t0, s3, done
    slli t1, t0, 3
    add  t1, t1, s0
    fld  f3, 0(t1)
    fadd f9, f9, f3
    addi t0, t0, 1
    j    sumloop
done:
    fcvt.l.d a0, f9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"U": data1Base, "PREV": data2Base, "NEXT": data3Base, "N": uint64(n)}
		return src, syms, int64(sum)
	},
}
