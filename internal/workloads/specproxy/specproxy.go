// Package specproxy provides twenty synthetic kernels standing in for
// the SPEC CPU 2017 rate suite the paper evaluates (SimPoint traces of
// the real suite are not reproducible here — see DESIGN.md). The
// kernels are split like the paper splits its results: ten "INT-like"
// kernels with data-dependent branches and irregular accesses (the
// population whose error distribution is negatively skewed without
// wrong-path modeling) and ten "FP-like" kernels dominated by regular,
// predictable number-crunching loops (the population that sits at ≈0%
// error regardless of technique).
//
// Each kernel carries a Go mirror of its computation; the workload's
// Validate hook compares the program's exit code against the mirror,
// proving the assembly computes what it claims.
package specproxy

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/functional"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// Data-segment bases shared by the kernels.
const (
	data1Base = 0x1000_0000
	data2Base = 0x2000_0000
	data3Base = 0x3000_0000
	data4Base = 0x4000_0000
)

// Params scales the proxy suite.
type Params struct {
	// Scale multiplies the kernels' default working-set and iteration
	// sizes; 1.0 is the experiment scale. Values below 1 shrink the
	// kernels for unit tests.
	Scale float64
	// Seed drives the deterministic data generators.
	Seed uint64
}

// DefaultParams returns the experiment-scale configuration.
func DefaultParams() Params { return Params{Scale: 1.0, Seed: 1234} }

// TestParams returns a shrunken configuration for unit tests.
func TestParams() Params { return Params{Scale: 0.02, Seed: 99} }

// scaled applies the scale factor with a floor.
func (p Params) scaled(n, min int) int {
	v := int(float64(n) * p.Scale)
	if v < min {
		return min
	}
	return v
}

// proxy describes one kernel.
type proxy struct {
	name string
	fp   bool
	// build generates data into memory, returns the assembly source,
	// the symbols it needs, and the expected exit code computed by the
	// Go mirror over the same data.
	build func(p Params, m *mem.Memory, rng *graph.RNG) (source string, syms map[string]uint64, expect int64)
	// maxInsts caps the timing simulation.
	maxInsts uint64
}

func (k proxy) workload(p Params) workloads.Workload {
	suite := "specint"
	if k.fp {
		suite = "specfp"
	}
	return workloads.Workload{
		Name:  k.name,
		Suite: suite,
		Build: func() (*workloads.Instance, error) {
			m := mem.New()
			rng := graph.NewRNG(p.Seed)
			source, syms, expect := k.build(p, m, rng)
			prog, err := asm.Assemble(source,
				asm.WithBase(workloads.StandardCodeBase),
				asm.WithSymbols(syms))
			if err != nil {
				return nil, fmt.Errorf("specproxy/%s: %w", k.name, err)
			}
			return &workloads.Instance{
				Prog:              prog,
				Mem:               m,
				StackTop:          workloads.StandardStackTop,
				SuggestedMaxInsts: k.maxInsts,
				Validate: func(cpu *functional.CPU) error {
					if got := cpu.ExitCode(); got != expect {
						return fmt.Errorf("specproxy/%s: exit code %d, want %d", k.name, got, expect)
					}
					return nil
				},
			}, nil
		},
	}
}

var intKernels = []proxy{
	hashloop, treewalk, chase, rlescan, blocksort,
	heapsim, hashtab, sadscan, bitboard, randwalk,
}

var fpKernels = []proxy{
	streamTriad, stencil1d, matmul, nbody, conv2d,
	fdtd, dotprod, raysphere, stencil3d, wave1d,
}

// IntSuite returns the ten INT-like workloads.
func IntSuite(p Params) []workloads.Workload {
	out := make([]workloads.Workload, len(intKernels))
	for i, k := range intKernels {
		out[i] = k.workload(p)
	}
	return out
}

// FPSuite returns the ten FP-like workloads.
func FPSuite(p Params) []workloads.Workload {
	out := make([]workloads.Workload, len(fpKernels))
	for i, k := range fpKernels {
		out[i] = k.workload(p)
	}
	return out
}

// Suite returns all twenty workloads, INT first.
func Suite(p Params) []workloads.Workload {
	return append(IntSuite(p), FPSuite(p)...)
}
