package specproxy

import (
	"repro/internal/graph"
	"repro/internal/mem"
)

// --- hashloop: perlbench-like string/hash processing -----------------

// hashloop folds an array through a multiply-xor hash with a
// data-dependent branch taken for one value in eight.
var hashloop = proxy{
	name:     "hashloop",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(262_144, 256)
		data := make([]uint64, n)
		for i := range data {
			data[i] = rng.Next()
		}
		m.WriteUint64Slice(data1Base, data)

		var h uint64
		for _, v := range data {
			h = h*31 + v
			if v&7 == 0 {
				h ^= v >> 3
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1
    li   s1, N
    li   s2, 0              # h
    li   t0, 0
loop:
    bge  t0, s1, done
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)          # v
    addi t0, t0, 1
    slli t3, s2, 5
    sub  t3, t3, s2         # h*31
    add  s2, t3, t2
    andi t4, t2, 7
    bnez t4, loop           # data-dependent (taken 7/8)
    srli t4, t2, 3
    xor  s2, s2, t4
    j    loop
done:
    mv   a0, s2
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "N": uint64(n)}, int64(h)
	},
}

// --- treewalk: gcc-like pointer-heavy tree search --------------------

// treewalk searches an unbalanced binary search tree (arrays of key /
// left / right indices) for a stream of probe keys, half of which are
// present. Every step is a dependent load followed by a data-dependent
// three-way branch.
var treewalk = proxy{
	name:     "treewalk",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		nodes := p.scaled(32_768, 64)
		probes := p.scaled(16_384, 64)

		key := make([]uint64, 0, nodes)
		left := make([]uint64, 0, nodes)
		right := make([]uint64, 0, nodes)
		none := ^uint64(0)
		insert := func(k uint64) {
			if len(key) == 0 {
				key = append(key, k)
				left = append(left, none)
				right = append(right, none)
				return
			}
			cur := 0
			for {
				if k == key[cur] {
					return
				}
				next := &right[cur]
				if k < key[cur] {
					next = &left[cur]
				}
				if *next == none {
					*next = uint64(len(key))
					key = append(key, k)
					left = append(left, none)
					right = append(right, none)
					return
				}
				cur = int(*next)
			}
		}
		for len(key) < nodes {
			insert(rng.Next() >> 1) // keep keys non-negative as int64
		}

		lookup := make([]uint64, probes)
		for i := range lookup {
			if rng.Next()&1 == 0 {
				lookup[i] = key[rng.Intn(uint64(len(key)))]
			} else {
				lookup[i] = rng.Next() >> 1
			}
		}
		m.WriteUint64Slice(data1Base, lookup)
		m.WriteUint64Slice(data2Base, key)
		m.WriteUint64Slice(data3Base, left)
		m.WriteUint64Slice(data4Base, right)

		var found int64
		for _, k := range lookup {
			cur := int64(0)
			for cur >= 0 {
				nk := key[cur]
				if k == nk {
					found++
					break
				}
				if k < nk {
					cur = int64(left[cur])
				} else {
					cur = int64(right[cur])
				}
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1          # probe keys
    la   s1, DATA2          # node keys
    la   s2, DATA3          # left
    la   s3, DATA4          # right
    li   s4, M
    li   s5, 0              # found
    li   t0, 0
outer:
    bge  t0, s4, done
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)          # probe key
    addi t0, t0, 1
    li   t3, 0              # cur = root
walk:
    bltz t3, outer          # fell off: not found
    slli t4, t3, 3
    add  t5, t4, s1
    ld   t6, 0(t5)          # node key (dependent load)
    beq  t2, t6, found
    blt  t2, t6, goleft     # data-dependent
    add  t5, t4, s3
    ld   t3, 0(t5)          # cur = right
    j    walk
goleft:
    add  t5, t4, s2
    ld   t3, 0(t5)          # cur = left
    j    walk
found:
    addi s5, s5, 1
    j    outer
done:
    mv   a0, s5
    li   a7, 0
    ecall
`
		syms := map[string]uint64{
			"DATA1": data1Base, "DATA2": data2Base,
			"DATA3": data3Base, "DATA4": data4Base,
			"M": uint64(probes),
		}
		return src, syms, found
	},
}

// --- chase: mcf-like dependent pointer chasing -----------------------

// chase follows a random permutation through an 8 MB array — a serial
// dependence chain of cache misses — branching on the parity of every
// visited index. Branch resolution waits on memory: the longest
// wrong-path windows of the suite.
var chase = proxy{
	name:     "chase",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(1<<20, 256)
		steps := p.scaled(400_000, 512)
		// Sattolo's algorithm: one full cycle, so the chase never traps
		// in a short loop.
		next := make([]uint64, n)
		for i := range next {
			next[i] = uint64(i)
		}
		for i := n - 1; i > 0; i-- {
			j := int(rng.Intn(uint64(i)))
			next[i], next[j] = next[j], next[i]
		}
		m.WriteUint64Slice(data1Base, next)

		var odd int64
		idx := uint64(0)
		for s := 0; s < steps; s++ {
			idx = next[idx]
			if idx&1 == 1 {
				odd++
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1
    li   s1, K
    li   t0, 0              # idx
    li   s2, 0              # odd count
    li   t1, 0              # step
loop:
    bge  t1, s1, done
    addi t1, t1, 1
    slli t2, t0, 3
    add  t2, t2, s0
    ld   t0, 0(t2)          # idx = next[idx] (serial miss chain)
    andi t3, t0, 1
    beqz t3, loop           # 50/50 data-dependent branch
    addi s2, s2, 1
    j    loop
done:
    mv   a0, s2
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "K": uint64(steps)}, odd
	},
}

// --- rlescan: xz-like run scanning -----------------------------------

// rlescan walks a byte buffer of variable-length runs counting adjacent
// equal pairs; whether the match branch is taken depends entirely on
// the data.
var rlescan = proxy{
	name:     "rlescan",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(600_000, 512)
		data := make([]byte, n)
		for i := 0; i < n; {
			v := byte(rng.Next())
			run := 1 + int(rng.Intn(8))
			for j := 0; j < run && i < n; j++ {
				data[i] = v
				i++
			}
		}
		m.WriteBytes(data1Base, data)

		var pairs int64
		for i := 0; i < n-1; i++ {
			if data[i] == data[i+1] {
				pairs++
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1
    li   s1, NM1
    li   t0, 0
    li   s2, 0              # pair count
loop:
    bge  t0, s1, done
    add  t1, t0, s0
    lbu  t2, 0(t1)
    lbu  t3, 1(t1)
    addi t0, t0, 1
    bne  t2, t3, loop       # data-dependent match test
    addi s2, s2, 1
    j    loop
done:
    mv   a0, s2
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "NM1": uint64(n - 1)}, pairs
	},
}

// --- blocksort: exchange2-like in-place block sorting -----------------

// blocksort insertion-sorts independent 64-element blocks; the shift
// loop's exit depends on comparisons of random data.
var blocksort = proxy{
	name:     "blocksort",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		blocks := p.scaled(512, 4)
		data := make([]uint64, blocks*64)
		for i := range data {
			data[i] = rng.Next() >> 1
		}
		m.WriteUint64Slice(data1Base, data)

		var checksum uint64
		mirror := append([]uint64(nil), data...)
		for b := 0; b < blocks; b++ {
			blk := mirror[b*64 : (b+1)*64]
			for i := 1; i < 64; i++ {
				k := blk[i]
				j := i
				for j > 0 && blk[j-1] > k {
					blk[j] = blk[j-1]
					j--
				}
				blk[j] = k
			}
			checksum += blk[32]
		}
		src := `
.entry main
main:
    la   s0, DATA1
    li   s1, B
    li   s2, 0              # block index
    li   s9, 0              # checksum
blkloop:
    bge  s2, s1, done
    slli t0, s2, 9          # block * 64 * 8
    add  s3, t0, s0         # block base
    li   t1, 1              # i
isort:
    li   t6, 64
    bge  t1, t6, blkdone
    slli t2, t1, 3
    add  t2, t2, s3
    ld   t3, 0(t2)          # key
    mv   t4, t1             # j
shift:
    beqz t4, insert
    addi t5, t4, -1
    slli a0, t5, 3
    add  a0, a0, s3
    ld   a1, 0(a0)          # a[j-1]
    ble  a1, t3, insert     # data-dependent comparison
    slli a2, t4, 3
    add  a2, a2, s3
    sd   a1, 0(a2)          # a[j] = a[j-1]
    mv   t4, t5
    j    shift
insert:
    slli a2, t4, 3
    add  a2, a2, s3
    sd   t3, 0(a2)
    addi t1, t1, 1
    j    isort
blkdone:
    ld   a3, 256(s3)        # sorted block's median (index 32)
    add  s9, s9, a3
    addi s2, s2, 1
    j    blkloop
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "B": uint64(blocks)}, int64(checksum)
	},
}

// --- heapsim: omnetpp-like priority-queue churn -----------------------

// heapsim pushes random priorities into a binary min-heap then drains
// it; sift-up/sift-down comparisons are data dependent and the heap
// array is walked irregularly.
var heapsim = proxy{
	name:     "heapsim",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(32_768, 64)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Next() >> 1
		}
		m.WriteUint64Slice(data1Base, vals)

		// Go mirror with the kernel's exact comparison choices.
		heap := make([]uint64, n+1) // 1-indexed
		size := 0
		for _, v := range vals {
			size++
			heap[size] = v
			i := size
			for i > 1 {
				parent := i / 2
				if heap[parent] <= v {
					break
				}
				heap[i] = heap[parent]
				heap[parent] = v
				i = parent
			}
		}
		var checksum uint64
		for size > 0 {
			checksum = checksum*3 + heap[1]
			last := heap[size]
			size--
			if size == 0 {
				break
			}
			heap[1] = last
			i := 1
			for {
				c := 2 * i
				if c > size {
					break
				}
				cv := heap[c]
				if r := c + 1; r <= size && cv >= heap[r] {
					c = r
					cv = heap[r]
				}
				if cv >= last {
					break
				}
				heap[i] = cv
				heap[c] = last
				i = c
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1          # values to push
    la   s1, HEAP           # heap array, 1-indexed
    li   s2, N
    li   s4, 0              # heap size
    li   s9, 0              # checksum
    li   t0, 0
push:
    bge  t0, s2, popphase
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)          # v
    addi t0, t0, 1
    addi s4, s4, 1
    mv   t3, s4             # i
    slli t4, t3, 3
    add  t4, t4, s1
    sd   t2, 0(t4)
siftup:
    li   t5, 1
    ble  t3, t5, push
    srli t5, t3, 1          # parent
    slli t4, t5, 3
    add  t4, t4, s1
    ld   t6, 0(t4)          # parent value
    ble  t6, t2, push       # heap property holds (data-dependent)
    sd   t2, 0(t4)          # swap
    slli a0, t3, 3
    add  a0, a0, s1
    sd   t6, 0(a0)
    mv   t3, t5
    j    siftup
popphase:
    li   t0, 0
pop:
    beqz s4, done
    ld   t2, 8(s1)          # min
    slli t3, s9, 1
    add  s9, s9, t3         # checksum *= 3
    add  s9, s9, t2
    slli t4, s4, 3
    add  t4, t4, s1
    ld   t5, 0(t4)          # last value
    addi s4, s4, -1
    beqz s4, pop
    sd   t5, 8(s1)
    li   t3, 1              # i
siftdown:
    slli t6, t3, 1          # left child
    bgt  t6, s4, pop
    slli a0, t6, 3
    add  a0, a0, s1
    ld   a1, 0(a0)          # child value
    addi a2, t6, 1          # right child
    bgt  a2, s4, pick
    slli a3, a2, 3
    add  a3, a3, s1
    ld   a4, 0(a3)
    blt  a1, a4, pick       # keep left when strictly smaller
    mv   t6, a2
    mv   a1, a4
pick:
    bge  a1, t5, pop        # heap property holds (data-dependent)
    slli a5, t3, 3
    add  a5, a5, s1
    sd   a1, 0(a5)
    slli a5, t6, 3
    add  a5, a5, s1
    sd   t5, 0(a5)
    mv   t3, t6
    j    siftdown
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"DATA1": data1Base, "HEAP": data2Base, "N": uint64(n)}
		return src, syms, int64(checksum)
	},
}

// --- hashtab: xalancbmk-like hash table churn --------------------------

// hashtab inserts keys into a 2 MB open-addressing table then probes it;
// probe-loop length and the found/empty branch depend on the data.
var hashtab = proxy{
	name:     "hashtab",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		const tableBits = 18
		tableSize := 1 << tableBits
		mask := uint64(tableSize - 1)
		inserts := p.scaled(65_536, 64)
		lookups := p.scaled(65_536, 64)

		keys := make([]uint64, inserts)
		for i := range keys {
			keys[i] = rng.Next()>>1 | 1 // non-zero
		}
		probes := make([]uint64, lookups)
		for i := range probes {
			if rng.Next()&1 == 0 {
				probes[i] = keys[rng.Intn(uint64(inserts))]
			} else {
				probes[i] = rng.Next()>>1 | 1
			}
		}
		m.WriteUint64Slice(data1Base, keys)
		m.WriteUint64Slice(data3Base, probes)
		// Table at data2Base starts zeroed (sparse memory reads 0).

		hash := func(k uint64) uint64 { return (k * 2654435761) >> 16 & mask }
		table := make([]uint64, tableSize)
		for _, k := range keys {
			h := hash(k)
			for table[h] != 0 && table[h] != k {
				h = (h + 1) & mask
			}
			table[h] = k
		}
		var found int64
		for _, k := range probes {
			h := hash(k)
			for {
				v := table[h]
				if v == 0 {
					break
				}
				if v == k {
					found++
					break
				}
				h = (h + 1) & mask
			}
		}
		src := `
.entry main
main:
    la   s0, TABLE
    la   s1, DATA1
    li   s2, M
    li   s3, MASK
    li   s8, 2654435761
    li   t0, 0
insert:
    bge  t0, s2, lookupphase
    slli t1, t0, 3
    add  t1, t1, s1
    ld   t2, 0(t1)          # key
    addi t0, t0, 1
    mul  t4, t2, s8
    srli t4, t4, 16
    and  t4, t4, s3         # slot
probe:
    slli t5, t4, 3
    add  t5, t5, s0
    ld   t6, 0(t5)
    beqz t6, place          # empty slot (data-dependent)
    beq  t6, t2, insert     # duplicate
    addi t4, t4, 1
    and  t4, t4, s3
    j    probe
place:
    sd   t2, 0(t5)
    j    insert
lookupphase:
    la   s1, DATA3
    li   s2, L
    li   t0, 0
    li   s9, 0              # found
lookup:
    bge  t0, s2, done
    slli t1, t0, 3
    add  t1, t1, s1
    ld   t2, 0(t1)
    addi t0, t0, 1
    mul  t4, t2, s8
    srli t4, t4, 16
    and  t4, t4, s3
lprobe:
    slli t5, t4, 3
    add  t5, t5, s0
    ld   t6, 0(t5)
    beqz t6, lookup         # miss
    beq  t6, t2, lfound     # hit (data-dependent)
    addi t4, t4, 1
    and  t4, t4, s3
    j    lprobe
lfound:
    addi s9, s9, 1
    j    lookup
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		syms := map[string]uint64{
			"TABLE": data2Base, "DATA1": data1Base, "DATA3": data3Base,
			"M": uint64(inserts), "L": uint64(lookups), "MASK": mask,
		}
		return src, syms, found
	},
}

// --- sadscan: x264-like sum-of-absolute-differences -------------------

// sadscan computes SAD between pairs of 64-byte blocks with an early
// exit once the accumulated difference crosses a threshold; the
// absolute-value and early-exit branches are data dependent.
var sadscan = proxy{
	name:     "sadscan",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		blocks := p.scaled(8_192, 16)
		const blockLen = 64
		const threshold = 1024
		a := make([]byte, blocks*blockLen)
		b := make([]byte, blocks*blockLen)
		for i := range a {
			a[i] = byte(rng.Next())
			if rng.Next()&3 == 0 {
				b[i] = a[i] + byte(rng.Intn(8)) // similar block region
			} else {
				b[i] = byte(rng.Next())
			}
		}
		m.WriteBytes(data1Base, a)
		m.WriteBytes(data2Base, b)

		var matches int64
		for blk := 0; blk < blocks; blk++ {
			sad := uint64(0)
			for i := 0; i < blockLen; i++ {
				x, y := int64(a[blk*blockLen+i]), int64(b[blk*blockLen+i])
				d := x - y
				if d < 0 {
					d = -d
				}
				sad += uint64(d)
				if sad >= threshold {
					break
				}
			}
			if sad < threshold {
				matches++
			}
		}
		src := `
.equ THRESH, 1024
.entry main
main:
    la   s0, DATA1
    la   s1, DATA2
    li   s2, B
    li   s9, 0              # matches
    li   s3, 0              # block
blkloop:
    bge  s3, s2, done
    slli t0, s3, 6          # block * 64
    add  t1, t0, s0         # a cursor
    add  t2, t0, s1         # b cursor
    li   t3, 0              # i
    li   t4, 0              # sad
    li   t6, 64
inner:
    bge  t3, t6, blkend
    lbu  a0, 0(t1)
    lbu  a1, 0(t2)
    addi t1, t1, 1
    addi t2, t2, 1
    addi t3, t3, 1
    sub  a2, a0, a1
    bgez a2, acc            # |a-b| (data-dependent)
    neg  a2, a2
acc:
    add  t4, t4, a2
    li   a3, THRESH
    blt  t4, a3, inner      # early exit (data-dependent)
blkend:
    li   a3, THRESH
    bge  t4, a3, nextblk
    addi s9, s9, 1
nextblk:
    addi s3, s3, 1
    j    blkloop
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "DATA2": data2Base, "B": uint64(blocks)}, matches
	},
}

// --- bitboard: deepsjeng-like bit manipulation -------------------------

// bitboard popcounts sparse 64-bit boards with the b &= b-1 loop, whose
// trip count is data dependent, and mixes a threshold branch.
var bitboard = proxy{
	name:     "bitboard",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		n := p.scaled(65_536, 128)
		boards := make([]uint64, n)
		for i := range boards {
			boards[i] = rng.Next() & rng.Next() & rng.Next()
		}
		m.WriteUint64Slice(data1Base, boards)

		var checksum uint64
		for _, b := range boards {
			c := uint64(0)
			for x := b; x != 0; x &= x - 1 {
				c++
			}
			checksum += c
			if c > 8 {
				checksum ^= b
			}
		}
		src := `
.entry main
main:
    la   s0, DATA1
    li   s1, N
    li   s9, 0              # checksum
    li   t0, 0
loop:
    bge  t0, s1, done
    slli t1, t0, 3
    add  t1, t1, s0
    ld   t2, 0(t1)          # board
    addi t0, t0, 1
    li   t3, 0              # popcount
pc:
    beqz t2, pcdone         # trip count data-dependent
    addi t4, t2, -1
    and  t2, t2, t4         # clear lowest set bit
    addi t3, t3, 1
    j    pc
pcdone:
    add  s9, s9, t3
    li   t5, 8
    ble  t3, t5, loop       # density branch (data-dependent)
    slli t6, t0, 3
    addi t6, t6, -8
    add  t6, t6, s0
    ld   t2, 0(t6)          # reload board (t2 was consumed)
    xor  s9, s9, t2
    j    loop
done:
    mv   a0, s9
    li   a7, 0
    ecall
`
		return src, map[string]uint64{"DATA1": data1Base, "N": uint64(n)}, int64(checksum)
	},
}

// --- randwalk: leela-like randomized control flow ----------------------

// randwalk runs an xorshift RNG and walks a 64×64 grid with
// boundary-clamp branches; direction branches are essentially random.
var randwalk = proxy{
	name:     "randwalk",
	maxInsts: 4_000_000,
	build: func(p Params, m *mem.Memory, rng *graph.RNG) (string, map[string]uint64, int64) {
		steps := p.scaled(250_000, 512)
		const grid = 64
		seed := rng.Next() | 1

		state := seed
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		x, y := int64(grid/2), int64(grid/2)
		var parity int64
		for s := 0; s < steps; s++ {
			switch next() & 3 {
			case 0:
				if x > 0 {
					x--
				}
			case 1:
				if x < grid-1 {
					x++
				}
			case 2:
				if y > 0 {
					y--
				}
			default:
				if y < grid-1 {
					y++
				}
			}
			parity += (x ^ y) & 1
		}
		src := `
.equ GRIDM1, 63
.entry main
main:
    li   s9, SEED           # rng state
    li   s1, K
    li   s2, 32             # x
    li   s3, 32             # y
    li   s4, 0              # parity accumulator
    li   t0, 0
step:
    bge  t0, s1, done
    addi t0, t0, 1
    slli t1, s9, 13         # xorshift64
    xor  s9, s9, t1
    srli t1, s9, 7
    xor  s9, s9, t1
    slli t1, s9, 17
    xor  s9, s9, t1
    andi t2, s9, 3          # direction
    li   t3, 1
    beq  t2, t3, right
    li   t3, 2
    beq  t2, t3, down
    li   t3, 3
    beq  t2, t3, up
    beqz s2, tally          # left, clamp at 0
    addi s2, s2, -1
    j    tally
right:
    li   t4, GRIDM1
    bge  s2, t4, tally
    addi s2, s2, 1
    j    tally
down:
    beqz s3, tally
    addi s3, s3, -1
    j    tally
up:
    li   t4, GRIDM1
    bge  s3, t4, tally
    addi s3, s3, 1
tally:
    xor  t5, s2, s3
    andi t5, t5, 1
    add  s4, s4, t5
    j    step
done:
    mv   a0, s4
    li   a7, 0
    ecall
`
		syms := map[string]uint64{"SEED": seed, "K": uint64(steps)}
		return src, syms, parity
	},
}
