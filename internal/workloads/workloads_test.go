package workloads

import (
	"errors"
	"testing"
)

func TestMustBuildPanicsOnError(t *testing.T) {
	w := Workload{
		Name:  "broken",
		Suite: "test",
		Build: func() (*Instance, error) { return nil, errors.New("boom") },
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	w.MustBuild()
}

func TestMustBuildReturnsInstance(t *testing.T) {
	want := &Instance{}
	w := Workload{
		Name:  "fine",
		Suite: "test",
		Build: func() (*Instance, error) { return want, nil },
	}
	if got := w.MustBuild(); got != want {
		t.Error("MustBuild returned a different instance")
	}
}

func TestConventions(t *testing.T) {
	if StandardCodeBase == 0 || StandardStackTop <= StandardCodeBase {
		t.Error("implausible layout conventions")
	}
}
