package catalog

import (
	"strings"
	"testing"
)

func TestFindResolvesEverySuite(t *testing.T) {
	for _, suite := range Suites() {
		names := Names(suite)
		if len(names) == 0 {
			t.Fatalf("suite %s lists no benchmarks", suite)
		}
		for _, bench := range names {
			w, err := Find(suite, bench, Params{})
			if err != nil {
				t.Fatalf("Find(%s, %s): %v", suite, bench, err)
			}
			if w.Suite != suite || w.Name != bench {
				t.Fatalf("Find(%s, %s) returned %s/%s", suite, bench, w.Suite, w.Name)
			}
		}
	}
}

func TestFindAppliesOverrides(t *testing.T) {
	// A shrunken GAP input must build a usable instance (the override
	// path is what wpserved job specs exercise).
	w, err := Find("gap", "bfs", Params{N: 64, Degree: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := w.Build()
	if err != nil {
		t.Fatalf("building overridden bfs: %v", err)
	}
	if inst.Prog == nil || inst.SuggestedMaxInsts == 0 {
		t.Fatalf("overridden instance looks empty: %+v", inst)
	}
	if _, err := Find("specint", Names("specint")[0], Params{Scale: 0.02, Seed: 9}); err != nil {
		t.Fatalf("specint overrides: %v", err)
	}
}

func TestFindErrors(t *testing.T) {
	if _, err := Find("nope", "bfs", Params{}); err == nil || !strings.Contains(err.Error(), "unknown suite") {
		t.Fatalf("unknown suite error = %v", err)
	}
	if _, err := Find("gap", "nope", Params{}); err == nil || !strings.Contains(err.Error(), "unknown gap benchmark") {
		t.Fatalf("unknown bench error = %v", err)
	}
	if _, err := Find("specfp", "nope", Params{}); err == nil || !strings.Contains(err.Error(), "unknown specfp benchmark") {
		t.Fatalf("unknown specfp bench error = %v", err)
	}
	if Names("nope") != nil {
		t.Fatal("Names(unknown) should be nil")
	}
}
