// Package catalog is the single place a benchmark name resolves to a
// workloads.Workload. The CLIs (wpsim, wptrace) and the serving daemon
// (wpserved) all accept "suite/bench plus input-shape overrides" and
// must resolve them identically — a job submitted to the daemon has to
// build the exact instance a direct CLI run of the same parameters
// builds, or the byte-identity guarantee between the two is vacuous.
package catalog

import (
	"fmt"
	"strings"

	"repro/internal/workloads"
	"repro/internal/workloads/gap"
	"repro/internal/workloads/specproxy"
)

// Params are the input-shape overrides shared by every entry point.
// The zero value selects each suite's defaults; fields that do not
// apply to a suite (Scale on gap, N on specproxy) are ignored.
type Params struct {
	// N overrides the GAP graph vertex count (0 = default).
	N int
	// Degree overrides the GAP average out-degree (0 = default).
	Degree int
	// Kron selects the Kronecker (RMAT) generator for GAP inputs.
	Kron bool
	// Grid selects the 2D-grid (road-network-like) GAP input; takes
	// precedence over Kron, matching gap.Params.
	Grid bool
	// Seed overrides the deterministic input seed (0 = default).
	Seed uint64
	// Scale overrides the SPEC-proxy scale factor (0 = default).
	Scale float64
}

// Suites lists the known suite names in presentation order.
func Suites() []string { return []string{"gap", "specint", "specfp"} }

// Names lists the benchmark names of one suite (nil for an unknown
// suite), in each suite's canonical order.
func Names(suite string) []string {
	switch suite {
	case "gap":
		return gap.Names()
	case "specint", "specfp":
		var names []string
		for _, w := range pool(suite, specproxy.DefaultParams()) {
			names = append(names, w.Name)
		}
		return names
	default:
		return nil
	}
}

// Find resolves suite/bench with the given overrides applied on top of
// the suite's default parameters. Unknown suites and benchmarks return
// a descriptive error listing what exists.
func Find(suite, bench string, p Params) (workloads.Workload, error) {
	switch suite {
	case "gap":
		gp := gap.DefaultParams()
		if p.N > 0 {
			gp.N = p.N
		}
		if p.Degree > 0 {
			gp.Degree = p.Degree
		}
		if p.Seed != 0 {
			gp.Seed = p.Seed
		}
		gp.Kron = p.Kron
		gp.Grid = p.Grid
		w, ok := gap.ByName(bench, gp)
		if !ok {
			return workloads.Workload{}, fmt.Errorf("unknown gap benchmark %q (have %v)", bench, gap.Names())
		}
		return w, nil
	case "specint", "specfp":
		sp := specproxy.DefaultParams()
		if p.Seed != 0 {
			sp.Seed = p.Seed
		}
		if p.Scale > 0 {
			sp.Scale = p.Scale
		}
		for _, w := range pool(suite, sp) {
			if w.Name == bench {
				return w, nil
			}
		}
		return workloads.Workload{}, fmt.Errorf("unknown %s benchmark %q (have %v)", suite, bench, Names(suite))
	default:
		return workloads.Workload{}, fmt.Errorf("unknown suite %q (have %s)", suite, strings.Join(Suites(), ", "))
	}
}

// pool returns the specproxy workload slice for a suite.
func pool(suite string, p specproxy.Params) []workloads.Workload {
	if suite == "specfp" {
		return specproxy.FPSuite(p)
	}
	return specproxy.IntSuite(p)
}
