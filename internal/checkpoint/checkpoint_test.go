package checkpoint_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/simerr"
)

func TestRoundTrip(t *testing.T) {
	w := checkpoint.NewWriter()
	w.Section("test/Thing", 3)
	w.Uint64(0xDEADBEEF_00C0FFEE)
	w.Uint32(42)
	w.Int64(-7)
	w.Int(-1 << 40)
	w.Byte(0xA5)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3})
	w.String("wrong path")
	w.Uint64s([]uint64{9, 8, 7})
	w.Uint64s(nil)

	r, err := checkpoint.Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("test/Thing", 3); err != nil {
		t.Fatal(err)
	}
	if got := r.Uint64(); got != 0xDEADBEEF_00C0FFEE {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Uint32(); got != 42 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := r.Int64(); got != -7 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Int(); got != -1<<40 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Byte(); got != 0xA5 {
		t.Errorf("Byte = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "wrong path" {
		t.Errorf("String = %q", got)
	}
	if got := r.Uint64s(); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Errorf("Uint64s = %v", got)
	}
	if got := r.Uint64s(); len(got) != 0 {
		t.Errorf("empty Uint64s = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestSectionMismatchIsTyped(t *testing.T) {
	w := checkpoint.NewWriter()
	w.Section("pkg/A", 1)
	data := w.Finish()

	r, err := checkpoint.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("pkg/B", 1); !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("wrong section name: err = %v, want ErrTraceCorrupt class", err)
	}

	r, err = checkpoint.Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Section("pkg/A", 2); !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("wrong section version: err = %v, want ErrTraceCorrupt class", err)
	}
}

func TestErrorLatches(t *testing.T) {
	w := checkpoint.NewWriter()
	w.Uint32(7)
	r, err := checkpoint.Open(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	// Reading a Uint64 from a 4-byte payload fails; every later read
	// must return zero without advancing or re-reporting.
	if got := r.Uint64(); got != 0 {
		t.Errorf("short Uint64 = %d, want 0", got)
	}
	first := r.Err()
	if !errors.Is(first, simerr.ErrTraceCorrupt) {
		t.Fatalf("Err() = %v, want ErrTraceCorrupt class", first)
	}
	if got := r.Uint64(); got != 0 {
		t.Errorf("post-latch Uint64 = %d, want 0", got)
	}
	if r.Err() != first {
		t.Error("latched error changed identity")
	}
}

func TestOpenRejectsDamage(t *testing.T) {
	w := checkpoint.NewWriter()
	w.Section("pkg/A", 1)
	w.Uint64s([]uint64{1, 2, 3})
	data := w.Finish()

	cases := map[string][]byte{
		"short":    data[:4],
		"magic":    append(append([]byte{}, "XPSNAP\x00\n"...), data[8:]...),
		"version":  flip(data, 8),
		"payload":  flip(data, len(data)/2),
		"checksum": flip(data, len(data)-1),
	}
	for name, bad := range cases {
		if _, err := checkpoint.Open(bad); !errors.Is(err, simerr.ErrTraceCorrupt) {
			t.Errorf("%s: err = %v, want ErrTraceCorrupt class", name, err)
		}
	}
}

func flip(data []byte, at int) []byte {
	out := append([]byte{}, data...)
	out[at] ^= 0x40
	return out
}

func TestUint64sInto(t *testing.T) {
	w := checkpoint.NewWriter()
	w.Uint64s([]uint64{4, 5})
	data := w.Finish()

	r, _ := checkpoint.Open(data)
	dst := make([]uint64, 2)
	r.Uint64sInto(dst)
	if r.Err() != nil || dst[0] != 4 || dst[1] != 5 {
		t.Errorf("Uint64sInto = %v, err %v", dst, r.Err())
	}

	r, _ = checkpoint.Open(data)
	r.Uint64sInto(make([]uint64, 3))
	if !errors.Is(r.Err(), simerr.ErrTraceCorrupt) {
		t.Errorf("length mismatch: err = %v, want ErrTraceCorrupt class", r.Err())
	}
}

func TestWriteFileAndLatest(t *testing.T) {
	dir := t.TempDir()

	// Empty and missing directories mean "nothing to resume", not an
	// error: the first run of a crash-safe loop starts from zero.
	for _, d := range []string{dir, filepath.Join(dir, "missing")} {
		if snap, err := checkpoint.Latest(d); err != nil || snap != "" {
			t.Fatalf("Latest(%q) = %q, %v", d, snap, err)
		}
	}

	w := checkpoint.NewWriter()
	w.Section("pkg/A", 1)
	data := w.Finish()
	for _, insts := range []uint64{2_000_000, 10_000_000, 9_000_000} {
		if err := checkpoint.WriteFile(filepath.Join(dir, checkpoint.FileName(insts)), data); err != nil {
			t.Fatal(err)
		}
	}
	// Decoys Latest must skip: a torn temp file and a foreign name.
	for _, name := range []string{checkpoint.FileName(99_000_000) + ".tmp", "README"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := checkpoint.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, checkpoint.FileName(10_000_000)); snap != want {
		t.Errorf("Latest = %q, want %q", snap, want)
	}
	if _, err := checkpoint.ReadFile(snap); err != nil {
		t.Errorf("ReadFile(Latest): %v", err)
	}
}

// FuzzRoundTrip drives the codec with a fuzzer-chosen script of typed
// writes, then replays the identical script through a Reader opened on
// the framed bytes. The invariant is exact: every value decodes back
// equal and Err() stays nil — the property the whole checkpoint/resume
// subsystem's bit-identity guarantee bottoms out on. The script bytes
// double as the value stream, so the fuzzer mutates both structure and
// content.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 0xFF, 0, 0, 6, 3, 'a', 'b', 'c'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, script []byte) {
		w := checkpoint.NewWriter()
		run := func(r *checkpoint.Reader) {
			in := script
			next := func() byte {
				if len(in) == 0 {
					return 0
				}
				b := in[0]
				in = in[1:]
				return b
			}
			for len(in) > 0 {
				op := next()
				switch op % 8 {
				case 0:
					v := uint64(next()) | uint64(next())<<8 | uint64(next())<<56
					if r == nil {
						w.Uint64(v)
					} else if got := r.Uint64(); got != v {
						t.Fatalf("Uint64 = %#x, want %#x", got, v)
					}
				case 1:
					v := uint32(next()) | uint32(next())<<24
					if r == nil {
						w.Uint32(v)
					} else if got := r.Uint32(); got != v {
						t.Fatalf("Uint32 = %#x, want %#x", got, v)
					}
				case 2:
					v := int64(int8(next()))
					if r == nil {
						w.Int64(v)
					} else if got := r.Int64(); got != v {
						t.Fatalf("Int64 = %d, want %d", got, v)
					}
				case 3:
					v := next()
					if r == nil {
						w.Byte(v)
					} else if got := r.Byte(); got != v {
						t.Fatalf("Byte = %#x, want %#x", got, v)
					}
				case 4:
					v := next()%2 == 1
					if r == nil {
						w.Bool(v)
					} else if got := r.Bool(); got != v {
						t.Fatalf("Bool = %v, want %v", got, v)
					}
				case 5:
					n := int(next()) % (len(in) + 1)
					v := in[:n]
					in = in[n:]
					if r == nil {
						w.Bytes(v)
					} else if got := r.Bytes(); !bytes.Equal(got, v) {
						t.Fatalf("Bytes = %v, want %v", got, v)
					}
				case 6:
					n := int(next()) % (len(in) + 1)
					v := string(in[:n])
					in = in[n:]
					if r == nil {
						w.Section(v, uint32(n))
					} else if err := r.Section(v, uint32(n)); err != nil {
						t.Fatalf("Section(%q): %v", v, err)
					}
				case 7:
					n := int(next()) % 4
					v := make([]uint64, n)
					for i := range v {
						v[i] = uint64(next()) << 32
					}
					if r == nil {
						w.Uint64s(v)
					} else {
						got := r.Uint64s()
						if len(got) != n {
							t.Fatalf("Uint64s len = %d, want %d", len(got), n)
						}
						for i := range v {
							if got[i] != v[i] {
								t.Fatalf("Uint64s[%d] = %#x, want %#x", i, got[i], v[i])
							}
						}
					}
				}
			}
		}
		run(nil) // write pass
		r, err := checkpoint.Open(w.Finish())
		if err != nil {
			t.Fatalf("Open after Finish: %v", err)
		}
		run(r) // read pass
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	})
}

// FuzzOpen throws raw bytes at the container framing: Open must never
// panic and must reject everything non-conforming with the typed
// corruption class a resume path dispatches on.
func FuzzOpen(f *testing.F) {
	w := checkpoint.NewWriter()
	w.Section("pkg/A", 1)
	w.Uint64s([]uint64{1, 2, 3})
	valid := w.Finish()
	f.Add(valid)
	f.Add(flip(valid, len(valid)/2))
	f.Add([]byte("WPSNAP\x00\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := checkpoint.Open(data)
		if err != nil {
			if !errors.Is(err, simerr.ErrTraceCorrupt) {
				t.Fatalf("Open: untyped error %v", err)
			}
			return
		}
		// A structurally valid container: walking it must latch a typed
		// error or run clean, never panic.
		for r.Err() == nil {
			if len(r.Bytes()) == 0 && r.Err() == nil {
				r.Uint64()
			}
		}
		if err := r.Err(); !errors.Is(err, simerr.ErrTraceCorrupt) {
			t.Fatalf("walk: untyped error %v", err)
		}
	})
}
