// Package checkpoint implements the snapshot codec for crash-safe
// checkpoint/resume: a versioned, checksummed binary container that the
// stateful simulator packages (functional, queue, core, cache, branch,
// frontend, wrongpath) serialize themselves into via SaveState and
// restore themselves from via RestoreState.
//
// Layout of a finished snapshot:
//
//	magic "WPSNAP\x00\n" | format version u32 | payload | CRC-32 (IEEE) of payload
//
// The payload is a flat little-endian stream of fixed-width values and
// length-prefixed byte strings. Every package opens its region with a
// named, versioned section marker (Writer.Section / Reader.Section), so
// a reader that drifts out of alignment — or a snapshot written by an
// older field layout — fails loudly with a typed fault instead of
// silently misinterpreting bytes. The wplint `checkpoint` analyzer
// enforces the convention: a SaveState/RestoreState pair must reference
// the same receiver fields and stamp the package's snapshotVersion
// constant into its section, so adding a serialized field forces a
// visible version bump.
//
// Decode errors are sticky: the first failure latches into the Reader
// and every subsequent read returns zero values, so restore code can
// decode a whole section and check Err once.
//
// Files are written atomically (temp file + rename) so a crash mid-write
// never leaves a truncated snapshot under the name a resume would pick
// up; a torn rename is caught by the checksum.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/simerr"
)

// FormatVersion is the container format version. Section versions (per
// package) evolve independently; this one only changes when the header
// or framing itself does.
const FormatVersion = 1

// magic identifies a snapshot file.
const magic = "WPSNAP\x00\n"

// sectionMark precedes every section header in the payload.
const sectionMark byte = 0xA5

// Writer accumulates a snapshot payload.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer {
	return &Writer{buf: make([]byte, 0, 1<<16)}
}

// Section opens a named, versioned region. Every SaveState method calls
// it first with its package's snapshotVersion constant.
func (w *Writer) Section(name string, version uint32) {
	w.Byte(sectionMark)
	w.String(name)
	w.Uint32(version)
}

// Uint64 appends a fixed-width little-endian value.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uint32 appends a fixed-width little-endian value.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Int64 appends a signed value (two's-complement in a Uint64 slot).
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Int appends a host int (serialized as Int64).
func (w *Writer) Int(v int) { w.Int64(int64(v)) }

// Byte appends one byte.
func (w *Writer) Byte(v byte) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.Uint64(uint64(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Uint64s appends a length-prefixed slice of fixed-width values.
func (w *Writer) Uint64s(v []uint64) {
	w.Uint64(uint64(len(v)))
	for _, x := range v {
		w.Uint64(x)
	}
}

// Len returns the current payload size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Finish frames the payload with the magic, format version and checksum
// and returns the complete snapshot bytes. The writer remains usable
// (further appends extend the payload for a later Finish).
func (w *Writer) Finish() []byte {
	out := make([]byte, 0, len(magic)+4+len(w.buf)+4)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, FormatVersion)
	out = append(out, w.buf...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(w.buf))
	return out
}

// Reader decodes a snapshot payload. The first decode failure latches
// (subsequent reads return zero values); check Err after a section.
type Reader struct {
	data []byte
	off  int
	err  error
}

// corrupt builds the package's typed decode fault: a snapshot that
// fails structural validation is the same fault class as a corrupt
// trace — bytes that cannot mean what they claim to mean.
func corrupt(op string, at uint64, cause error) error {
	return simerr.Corrupt(op, at, cause)
}

// Open validates the container framing (magic, format version,
// checksum) and returns a Reader positioned at the start of the
// payload. Every failure is a typed simerr.ErrTraceCorrupt fault.
func Open(data []byte) (*Reader, error) {
	min := len(magic) + 4 + 4
	if len(data) < min {
		return nil, corrupt("opening snapshot", uint64(len(data)),
			fmt.Errorf("checkpoint: %d bytes is shorter than the %d-byte frame", len(data), min))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corrupt("opening snapshot", 0,
			fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)]))
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != FormatVersion {
		return nil, corrupt("opening snapshot", uint64(len(magic)),
			fmt.Errorf("checkpoint: format version %d, want %d", ver, FormatVersion))
	}
	payload := data[len(magic)+4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, corrupt("opening snapshot", uint64(len(data)-4),
			fmt.Errorf("checkpoint: checksum %#x, want %#x", got, want))
	}
	return &Reader{data: payload}, nil
}

// fail latches the first decode error.
func (r *Reader) fail(cause error) {
	if r.err == nil {
		r.err = corrupt("decoding snapshot", uint64(r.off), cause)
	}
}

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.err }

// Section validates a section header written by Writer.Section. A name
// or version mismatch latches and returns the typed fault, so restore
// paths abort before misreading another package's bytes.
func (r *Reader) Section(name string, version uint32) error {
	if b := r.Byte(); r.err == nil && b != sectionMark {
		r.fail(fmt.Errorf("checkpoint: expected section %q, found stray byte %#x", name, b))
	}
	got := r.String()
	if r.err == nil && got != name {
		r.fail(fmt.Errorf("checkpoint: section %q, want %q", got, name))
	}
	ver := r.Uint32()
	if r.err == nil && ver != version {
		r.fail(fmt.Errorf("checkpoint: section %q version %d, want %d", name, ver, version))
	}
	return r.err
}

// Uint64 decodes a fixed-width value.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// Uint32 decodes a fixed-width value.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

// Int64 decodes a signed value.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Int decodes a host int.
func (r *Reader) Int() int { return int(r.Int64()) }

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail(io.ErrUnexpectedEOF)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool {
	switch b := r.Byte(); {
	case r.err != nil:
		return false
	case b > 1:
		r.fail(fmt.Errorf("checkpoint: bool byte %#x", b))
		return false
	default:
		return b == 1
	}
}

// Bytes decodes a length-prefixed byte string. The returned slice
// aliases the snapshot buffer; copy it to retain it.
func (r *Reader) Bytes() []byte {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail(fmt.Errorf("checkpoint: byte string of %d with %d bytes left", n, len(r.data)-r.off))
		return nil
	}
	v := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Uint64s decodes a slice written by Writer.Uint64s.
func (r *Reader) Uint64s() []uint64 {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off)/8 {
		r.fail(fmt.Errorf("checkpoint: uint64 slice of %d with %d bytes left", n, len(r.data)-r.off))
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// Uint64sInto decodes a slice written by Writer.Uint64s into dst,
// failing when the stored length differs — the validator for
// configuration-sized state (predictor tables, pipeline rings) whose
// dimensions must match the resuming configuration.
func (r *Reader) Uint64sInto(dst []uint64) {
	n := r.Uint64()
	if r.err != nil {
		return
	}
	if n != uint64(len(dst)) {
		r.fail(fmt.Errorf("checkpoint: uint64 slice of %d, want %d (configuration mismatch?)", n, len(dst)))
		return
	}
	for i := range dst {
		dst[i] = r.Uint64()
	}
}

// --- snapshot files ---

const (
	filePrefix = "ckpt-"
	fileSuffix = ".wpsnap"
	tmpSuffix  = ".tmp"
)

// FileName returns the canonical snapshot file name for an instruction
// count. Zero-padding makes lexical order equal numeric order, which is
// what Latest relies on.
func FileName(insts uint64) string {
	return fmt.Sprintf("%s%020d%s", filePrefix, insts, fileSuffix)
}

// WriteFile atomically writes a finished snapshot: the bytes land in a
// temp file first and are renamed into place, so a crash mid-write
// leaves no partially-written file under a name Latest would return.
func WriteFile(path string, data []byte) error {
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile opens a snapshot file and validates its framing.
func ReadFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Open(data)
}

// Latest returns the path of the newest (highest instruction count)
// snapshot in dir, or "" when the directory holds none (including when
// it does not exist — a fresh run's state).
func Latest(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", nil
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
