// Package mem provides the sparse byte-addressable memory used by the
// functional simulator. Memory is organized in fixed-size pages
// allocated on first touch, so multi-gigabyte address spaces (graph
// workloads place arrays at widely separated bases) cost only what is
// actually touched.
//
// All accesses are little-endian. Reads of never-written memory return
// zeroes, matching the zero-initialized BSS behaviour workloads rely on.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageBits is log2 of the page size.
const PageBits = 12

// PageSize is the allocation granularity in bytes.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// Memory is a sparse paged memory. The zero value is not usable; call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

// PagesAllocated returns the number of resident pages (for stats/tests).
func (m *Memory) PagesAllocated() int { return len(m.pages) }

// Footprint returns the number of resident bytes.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

func (m *Memory) page(addr uint64, alloc bool) *[PageSize]byte {
	key := addr >> PageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt reads one byte.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte writes one byte.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read reads n ≤ 8 bytes starting at addr as a little-endian unsigned
// integer. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, n int) uint64 {
	if n <= 0 || n > 8 {
		panic(fmt.Sprintf("mem: bad read size %d", n))
	}
	off := addr & pageMask
	if int(off)+n <= PageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		var buf [8]byte
		copy(buf[:n], p[off:int(off)+n])
		return binary.LittleEndian.Uint64(buf[:])
	}
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write writes the low n ≤ 8 bytes of v little-endian starting at addr.
func (m *Memory) Write(addr uint64, v uint64, n int) {
	if n <= 0 || n > 8 {
		panic(fmt.Sprintf("mem: bad write size %d", n))
	}
	off := addr & pageMask
	if int(off)+n <= PageSize {
		p := m.page(addr, true)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		copy(p[off:int(off)+n], buf[:n])
		return
	}
	for i := 0; i < n; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// ReadUint64 reads an 8-byte little-endian value.
func (m *Memory) ReadUint64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteUint64 writes an 8-byte little-endian value.
func (m *Memory) WriteUint64(addr uint64, v uint64) { m.Write(addr, v, 8) }

// ReadUint32 reads a 4-byte little-endian value.
func (m *Memory) ReadUint32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// WriteUint32 writes a 4-byte little-endian value.
func (m *Memory) WriteUint32(addr uint64, v uint32) { m.Write(addr, uint64(v), 4) }

// ReadFloat64 reads an 8-byte IEEE-754 double.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.Read(addr, 8))
}

// WriteFloat64 writes an 8-byte IEEE-754 double.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.Write(addr, math.Float64bits(v), 8)
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		n := PageSize - int(off)
		if n > len(b) {
			n = len(b)
		}
		copy(m.page(addr, true)[off:int(off)+n], b[:n])
		addr += uint64(n)
		b = b[n:]
	}
}

// ReadBytes copies len(b) bytes starting at addr into b.
func (m *Memory) ReadBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		n := PageSize - int(off)
		if n > len(b) {
			n = len(b)
		}
		p := m.page(addr, false)
		if p == nil {
			for i := 0; i < n; i++ {
				b[i] = 0
			}
		} else {
			copy(b[:n], p[off:int(off)+n])
		}
		addr += uint64(n)
		b = b[n:]
	}
}

// WriteUint64Slice lays out vals as consecutive 8-byte values at addr;
// the workload loaders use it to place graph arrays.
func (m *Memory) WriteUint64Slice(addr uint64, vals []uint64) {
	for i, v := range vals {
		m.WriteUint64(addr+uint64(i)*8, v)
	}
}

// WriteUint32Slice lays out vals as consecutive 4-byte values at addr.
func (m *Memory) WriteUint32Slice(addr uint64, vals []uint32) {
	for i, v := range vals {
		m.WriteUint32(addr+uint64(i)*4, v)
	}
}

// WriteFloat64Slice lays out vals as consecutive doubles at addr.
func (m *Memory) WriteFloat64Slice(addr uint64, vals []float64) {
	for i, v := range vals {
		m.WriteFloat64(addr+uint64(i)*8, v)
	}
}
