package mem

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the resident pages. Pages are emitted in sorted
// key order so the snapshot bytes are a deterministic function of the
// memory contents (map iteration order never leaks into the output).
func (m *Memory) SaveState(w *checkpoint.Writer) {
	w.Section("mem/Memory", snapshotVersion)
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uint64(uint64(len(keys)))
	for _, k := range keys {
		w.Uint64(k)
		w.Bytes(m.pages[k][:])
	}
}

// RestoreState replaces the memory contents with the serialized pages.
func (m *Memory) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("mem/Memory", snapshotVersion); err != nil {
		return err
	}
	n := r.Uint64()
	m.pages = make(map[uint64]*[PageSize]byte, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := r.Uint64()
		b := r.Bytes()
		if r.Err() != nil {
			break
		}
		if len(b) != PageSize {
			return fmt.Errorf("mem: snapshot page %#x holds %d bytes, want %d", k, len(b), PageSize)
		}
		p := new([PageSize]byte)
		copy(p[:], b)
		m.pages[k] = p
	}
	return r.Err()
}
