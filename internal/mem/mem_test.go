package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroFill(t *testing.T) {
	m := New()
	if m.ReadUint64(0x1234) != 0 {
		t.Error("untouched memory not zero")
	}
	if m.ByteAt(0xdeadbeef) != 0 {
		t.Error("untouched byte not zero")
	}
	if m.PagesAllocated() != 0 {
		t.Error("reads allocated pages")
	}
}

func TestByteAccess(t *testing.T) {
	m := New()
	m.SetByte(10, 0xab)
	if got := m.ByteAt(10); got != 0xab {
		t.Errorf("ByteAt = %#x", got)
	}
	if m.ByteAt(11) != 0 {
		t.Error("neighbor byte modified")
	}
}

func TestWidths(t *testing.T) {
	m := New()
	m.Write(100, 0x1122334455667788, 8)
	if got := m.Read(100, 8); got != 0x1122334455667788 {
		t.Errorf("Read8 = %#x", got)
	}
	if got := m.Read(100, 4); got != 0x55667788 {
		t.Errorf("Read4 = %#x", got)
	}
	if got := m.Read(100, 2); got != 0x7788 {
		t.Errorf("Read2 = %#x", got)
	}
	if got := m.Read(100, 1); got != 0x88 {
		t.Errorf("Read1 = %#x", got)
	}
	// Little endian: byte at addr is the low byte.
	if got := m.ByteAt(100); got != 0x88 {
		t.Errorf("low byte = %#x", got)
	}
	if got := m.ByteAt(107); got != 0x11 {
		t.Errorf("high byte = %#x", got)
	}
	// Partial write leaves upper bytes intact.
	m.Write(100, 0xff, 1)
	if got := m.Read(100, 8); got != 0x11223344556677ff {
		t.Errorf("after partial write = %#x", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.Write(addr, 0xaabbccddeeff1122, 8)
	if got := m.Read(addr, 8); got != 0xaabbccddeeff1122 {
		t.Errorf("straddling read = %#x", got)
	}
	if m.PagesAllocated() != 2 {
		t.Errorf("pages = %d, want 2", m.PagesAllocated())
	}
	// Byte-level check across the boundary.
	if m.ByteAt(PageSize-1) != 0xff || m.ByteAt(PageSize) != 0xee {
		t.Error("bytes across page boundary wrong")
	}
}

func TestBadSizesPanic(t *testing.T) {
	m := New()
	for _, fn := range []func(){
		func() { m.Read(0, 0) },
		func() { m.Read(0, 9) },
		func() { m.Write(0, 0, 0) },
		func() { m.Write(0, 0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFloat64(t *testing.T) {
	m := New()
	for _, v := range []float64{0, 1.5, -3.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.WriteFloat64(64, v)
		if got := m.ReadFloat64(64); got != v {
			t.Errorf("ReadFloat64 = %v, want %v", got, v)
		}
	}
	m.WriteFloat64(64, math.NaN())
	if !math.IsNaN(m.ReadFloat64(64)) {
		t.Error("NaN round-trip failed")
	}
}

func TestBulkBytes(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint64(PageSize - 100)
	m.WriteBytes(base, data)
	got := make([]byte, len(data))
	m.ReadBytes(base, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
	// Reading an untouched region yields zeros even mid-buffer.
	zeros := make([]byte, 64)
	m.ReadBytes(1<<40, zeros)
	for _, b := range zeros {
		if b != 0 {
			t.Fatal("untouched ReadBytes not zero")
		}
	}
}

func TestSlices(t *testing.T) {
	m := New()
	u64s := []uint64{1, 1 << 40, ^uint64(0)}
	m.WriteUint64Slice(0x100, u64s)
	for i, v := range u64s {
		if got := m.ReadUint64(0x100 + uint64(i)*8); got != v {
			t.Errorf("u64[%d] = %d", i, got)
		}
	}
	u32s := []uint32{7, 0xffffffff}
	m.WriteUint32Slice(0x200, u32s)
	for i, v := range u32s {
		if got := m.ReadUint32(0x200 + uint64(i)*4); got != v {
			t.Errorf("u32[%d] = %d", i, got)
		}
	}
	f64s := []float64{1.25, -2.5}
	m.WriteFloat64Slice(0x300, f64s)
	for i, v := range f64s {
		if got := m.ReadFloat64(0x300 + uint64(i)*8); got != v {
			t.Errorf("f64[%d] = %g", i, got)
		}
	}
}

func TestFootprint(t *testing.T) {
	m := New()
	m.SetByte(0, 1)
	m.SetByte(PageSize*10, 1)
	if m.PagesAllocated() != 2 {
		t.Errorf("pages = %d", m.PagesAllocated())
	}
	if m.Footprint() != 2*PageSize {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

// TestQuickReadWrite is a property test: any write of any supported
// width at any address reads back identically (masked to the width).
func TestQuickReadWrite(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64, szSeed uint8) bool {
		addr %= 1 << 30 // keep the page map bounded
		sizes := []int{1, 2, 4, 8}
		n := sizes[int(szSeed)%len(sizes)]
		m.Write(addr, v, n)
		mask := ^uint64(0)
		if n < 8 {
			mask = (1 << uint(8*n)) - 1
		}
		return m.Read(addr, n) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDisjointWrites: writes to disjoint 8-byte cells never
// interfere.
func TestQuickDisjointWrites(t *testing.T) {
	m := New()
	shadow := map[uint64]uint64{}
	f := func(cell uint32, v uint64) bool {
		addr := uint64(cell%100_000) * 8
		m.WriteUint64(addr, v)
		shadow[addr] = v
		// Verify a few previously written cells.
		count := 0
		for a, want := range shadow {
			if m.ReadUint64(a) != want {
				return false
			}
			count++
			if count > 8 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
