package branch

// tage is a simplified TAGE conditional predictor: a bimodal base
// predictor plus NumTageTables partially-tagged tables indexed by
// progressively longer folded global histories. The longest-history
// tag match provides the prediction; allocation on mispredict picks a
// not-useful entry in a longer table. It is deterministic and
// deep-copyable, like everything in this package, so the wpemul
// frontend's predictor copy stays exact.
//
// The paper's Golden Cove configuration implies a modern TAGE-class
// predictor; selecting Config.Predictor = PredictorTAGE gets closer to
// that behaviour than the default tournament predictor, at some
// simulation-speed cost.

// NumTageTables is the number of tagged tables.
const NumTageTables = 4

// tageHistLens are the history lengths of the tagged tables.
var tageHistLens = [NumTageTables]uint{4, 8, 16, 32}

type tageEntry struct {
	tag    uint16
	ctr    int8  // -4..3, taken when >= 0
	useful uint8 // 0..3
	valid  bool
}

type tage struct {
	base       []uint8 // 2-bit bimodal
	baseMask   uint64
	tables     [NumTageTables][]tageEntry
	tableMask  uint64
	allocClock uint64 // deterministic allocation tie-breaking
}

func newTAGE(baseBits, tableBits int) *tage {
	t := &tage{
		base:      make([]uint8, 1<<uint(baseBits)),
		baseMask:  1<<uint(baseBits) - 1,
		tableMask: 1<<uint(tableBits) - 1,
	}
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken
	}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<uint(tableBits))
	}
	return t
}

func (t *tage) clone() *tage {
	c := &tage{
		base:       append([]uint8(nil), t.base...),
		baseMask:   t.baseMask,
		tableMask:  t.tableMask,
		allocClock: t.allocClock,
	}
	for i := range t.tables {
		c.tables[i] = append([]tageEntry(nil), t.tables[i]...)
	}
	return c
}

// fold compresses the low lenBits of hist down to the width of mask by
// xor-folding.
func fold(hist uint64, lenBits uint, mask uint64) uint64 {
	width := bitsOf(mask)
	if width == 0 {
		return 0
	}
	h := hist & (1<<lenBits - 1)
	var f uint64
	for h != 0 {
		f ^= h & mask
		h >>= width
	}
	return f
}

func bitsOf(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

func (t *tage) index(pc uint64, hist uint64, table int) uint64 {
	return ((pc >> 2) ^ fold(hist, tageHistLens[table], t.tableMask) ^ uint64(table)*0x9e37) & t.tableMask
}

func (t *tage) tagOf(pc uint64, hist uint64, table int) uint16 {
	return uint16(((pc >> 2) ^ fold(hist>>1, tageHistLens[table], 0xffff) ^ uint64(table)) & 0xffff)
}

// predict returns the direction and which table provided it (-1 for
// the bimodal base).
func (t *tage) predict(pc uint64, hist uint64) (taken bool, provider int) {
	for table := NumTageTables - 1; table >= 0; table-- {
		e := &t.tables[table][t.index(pc, hist, table)]
		if e.valid && e.tag == t.tagOf(pc, hist, table) {
			return e.ctr >= 0, table
		}
	}
	return t.base[(pc>>2)&t.baseMask] >= 2, -1
}

// update trains the predictor with the actual outcome under the given
// (pre-branch) history.
func (t *tage) update(pc uint64, hist uint64, taken bool) {
	predTaken, provider := t.predict(pc, hist)
	correct := predTaken == taken

	if provider >= 0 {
		e := &t.tables[provider][t.index(pc, hist, provider)]
		if taken && e.ctr < 3 {
			e.ctr++
		}
		if !taken && e.ctr > -4 {
			e.ctr--
		}
		if correct && e.useful < 3 {
			e.useful++
		}
		if !correct && e.useful > 0 {
			e.useful--
		}
	} else {
		idx := (pc >> 2) & t.baseMask
		if taken {
			t.base[idx] = satInc(t.base[idx])
		} else {
			t.base[idx] = satDec(t.base[idx])
		}
	}

	// Allocate in a longer-history table on misprediction.
	if !correct && provider < NumTageTables-1 {
		t.allocClock++
		start := provider + 1
		for table := start; table < NumTageTables; table++ {
			e := &t.tables[table][t.index(pc, hist, table)]
			if !e.valid || e.useful == 0 {
				*e = tageEntry{tag: t.tagOf(pc, hist, table), ctr: ctrInit(taken), valid: true}
				return
			}
		}
		// All candidates useful: age one deterministically.
		victim := start + int(t.allocClock)%(NumTageTables-start)
		e := &t.tables[victim][t.index(pc, hist, victim)]
		if e.useful > 0 {
			e.useful--
		}
	}
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}
