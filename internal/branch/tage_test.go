package branch

import (
	"testing"

	"repro/internal/isa"
)

func tageCfg() Config {
	c := small()
	c.Predictor = PredictorTAGE
	return c
}

func TestTAGELearnsBias(t *testing.T) {
	u := New(tageCfg())
	pc := uint64(0x1000)
	for i := 0; i < 20; i++ {
		u.UpdateCond(pc, true)
	}
	if !u.PredictCond(pc) {
		t.Error("always-taken branch predicted not-taken")
	}
}

func TestTAGELearnsAlternation(t *testing.T) {
	u := New(tageCfg())
	pc := uint64(0x2000)
	taken := false
	for i := 0; i < 500; i++ {
		u.UpdateCond(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if u.PredictCond(pc) == taken {
			correct++
		}
		u.UpdateCond(pc, taken)
		taken = !taken
	}
	if correct < 90 {
		t.Errorf("alternating pattern: %d/100 correct", correct)
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	// Period-7 pattern: invisible to a bimodal, hard for short-history
	// gshare, learnable by TAGE's longer tables.
	pattern := []bool{true, true, false, true, false, false, true}
	u := New(tageCfg())
	pc := uint64(0x3000)
	for i := 0; i < 3000; i++ {
		u.UpdateCond(pc, pattern[i%len(pattern)])
	}
	correct := 0
	for i := 3000; i < 3200; i++ {
		want := pattern[i%len(pattern)]
		if u.PredictCond(pc) == want {
			correct++
		}
		u.UpdateCond(pc, want)
	}
	if correct < 170 {
		t.Errorf("period-7 pattern: %d/200 correct", correct)
	}
}

func TestTAGEBeatsTournamentOnLongPatterns(t *testing.T) {
	pattern := []bool{true, true, true, false, true, false, true, true, false, false, true}
	score := func(cfg Config) int {
		u := New(cfg)
		pcs := []uint64{0x100, 0x204, 0x308}
		for i := 0; i < 4000; i++ {
			for _, pc := range pcs {
				u.UpdateCond(pc, pattern[i%len(pattern)])
			}
		}
		correct := 0
		for i := 4000; i < 4500; i++ {
			want := pattern[i%len(pattern)]
			for _, pc := range pcs {
				if u.PredictCond(pc) == want {
					correct++
				}
				u.UpdateCond(pc, want)
			}
		}
		return correct
	}
	tage := score(tageCfg())
	tour := score(small())
	if tage < tour {
		t.Errorf("TAGE (%d) did not beat tournament (%d) on a period-11 pattern", tage, tour)
	}
}

func TestTAGECloneIndependence(t *testing.T) {
	u := New(tageCfg())
	for i := 0; i < 200; i++ {
		u.UpdateCond(uint64(0x1000+(i%13)*4), i%3 == 0)
	}
	c := u.Clone()
	for i := 0; i < 100; i++ {
		pc := uint64(0x1000 + (i%13)*4)
		if u.PredictCond(pc) != c.PredictCond(pc) {
			t.Fatal("clone diverges")
		}
	}
	for i := 0; i < 100; i++ {
		c.UpdateCond(0x1000, true)
	}
	// Original must be unaffected by heavy clone training. Compare a
	// fresh clone of the original against the original on all PCs.
	f := u.Clone()
	for i := 0; i < 13; i++ {
		pc := uint64(0x1000 + i*4)
		if u.PredictCond(pc) != f.PredictCond(pc) {
			t.Fatal("original perturbed by clone updates")
		}
	}
}

func TestTAGESpecHistoryConsistent(t *testing.T) {
	u := New(tageCfg())
	for i := 0; i < 100; i++ {
		u.UpdateCond(0x400, i%2 == 0)
	}
	for pc := uint64(0x400); pc < 0x440; pc += 4 {
		spec, _ := u.PredictCondSpec(pc, u.SpecHistory())
		if u.PredictCond(pc) != spec {
			t.Fatalf("PredictCond and PredictCondSpec disagree at %#x", pc)
		}
	}
}

func TestPerfectPredictor(t *testing.T) {
	cfg := small()
	cfg.Predictor = PredictorPerfect
	u := New(cfg)
	none := isa.RegNone
	br := isa.Inst{Op: isa.OpBeq, Rd: none, Rs1: isa.A0, Rs2: isa.X0, Rs3: none, Target: 0x2000}
	// Even the very first, coldest prediction is correct, both ways.
	if p := u.PredictAndUpdate(0x1000, br, true, 0x2000); p.Mispredicted || !p.Taken {
		t.Errorf("perfect taken prediction = %+v", p)
	}
	if p := u.PredictAndUpdate(0x1000, br, false, 0x1004); p.Mispredicted || p.Taken {
		t.Errorf("perfect not-taken prediction = %+v", p)
	}
	ind := isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.T0, Rs2: none, Rs3: none}
	if p := u.PredictAndUpdate(0x1000, ind, true, 0xabc0); p.Mispredicted || p.Target != 0xabc0 {
		t.Errorf("perfect indirect prediction = %+v", p)
	}
}

func TestPredictorKindNames(t *testing.T) {
	if PredictorTournament.String() != "tournament" ||
		PredictorTAGE.String() != "tage" ||
		PredictorPerfect.String() != "perfect" {
		t.Error("predictor names wrong")
	}
	if PredictorKind(9).String() != "unknown" {
		t.Error("unknown kind name")
	}
}

func TestFold(t *testing.T) {
	if fold(0, 16, 0xff) != 0 {
		t.Error("fold(0) != 0")
	}
	if fold(0xabcd, 16, 0) != 0 {
		t.Error("fold with zero mask != 0")
	}
	// Folding 16 bits into 8: the two bytes xor together.
	if got := fold(0xabcd, 16, 0xff); got != (0xab ^ 0xcd) {
		t.Errorf("fold = %#x", got)
	}
	// Length mask applies before folding.
	if got := fold(0xffff_abcd, 16, 0xff); got != (0xab ^ 0xcd) {
		t.Errorf("fold with long history = %#x", got)
	}
}
