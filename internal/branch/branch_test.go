package branch

import (
	"testing"

	"repro/internal/isa"
)

func small() Config {
	return Config{
		BimodalBits: 8, GShareBits: 10, ChoiceBits: 8,
		HistoryLen: 8, RASSize: 4, IndirectBits: 6,
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	u := New(small())
	pc := uint64(0x1000)
	for i := 0; i < 10; i++ {
		u.UpdateCond(pc, true)
	}
	if !u.PredictCond(pc) {
		t.Error("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 20; i++ {
		u.UpdateCond(pc, false)
	}
	if u.PredictCond(pc) {
		t.Error("retrained branch still predicted taken")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	u := New(small())
	pc := uint64(0x2000)
	// Strict alternation is invisible to bimodal but trivial for a
	// history-based predictor after warmup.
	taken := false
	for i := 0; i < 400; i++ {
		u.UpdateCond(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if u.PredictCond(pc) == taken {
			correct++
		}
		u.UpdateCond(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("alternating pattern: %d/100 correct", correct)
	}
}

func TestRAS(t *testing.T) {
	u := New(small())
	u.PushRAS(0x100)
	u.PushRAS(0x200)
	if tgt, ok := u.PopRAS(); !ok || tgt != 0x200 {
		t.Errorf("pop = %#x,%v", tgt, ok)
	}
	if tgt, ok := u.PopRAS(); !ok || tgt != 0x100 {
		t.Errorf("pop = %#x,%v", tgt, ok)
	}
	if _, ok := u.PopRAS(); ok {
		t.Error("empty RAS pop reported ok")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	u := New(small()) // depth 4
	for i := 1; i <= 6; i++ {
		u.PushRAS(uint64(i * 0x10))
	}
	// The two oldest entries were overwritten; pops yield 6,5,4,3.
	for _, want := range []uint64{0x60, 0x50, 0x40, 0x30} {
		got, ok := u.PopRAS()
		if !ok || got != want {
			t.Errorf("pop = %#x,%v, want %#x", got, ok, want)
		}
	}
}

func TestIndirectPredictor(t *testing.T) {
	u := New(small())
	pc := uint64(0x3000)
	if _, ok := u.PredictIndirect(pc); ok {
		t.Error("cold indirect predictor returned a target")
	}
	u.UpdateIndirect(pc, 0x5000)
	if tgt, ok := u.PredictIndirect(pc); !ok || tgt != 0x5000 {
		t.Errorf("indirect = %#x,%v", tgt, ok)
	}
	u.UpdateIndirect(pc, 0x6000)
	if tgt, _ := u.PredictIndirect(pc); tgt != 0x6000 {
		t.Error("indirect predictor did not update to last target")
	}
}

func TestCloneIsIndependentAndIdentical(t *testing.T) {
	u := New(small())
	for i := 0; i < 50; i++ {
		u.UpdateCond(uint64(0x1000+4*i), i%3 == 0)
	}
	u.PushRAS(0x42)
	u.UpdateIndirect(0x2000, 0x9000)

	c := u.Clone()
	// Identical predictions on a sample of PCs.
	for i := 0; i < 50; i++ {
		pc := uint64(0x1000 + 4*i)
		if u.PredictCond(pc) != c.PredictCond(pc) {
			t.Fatalf("clone diverges at %#x", pc)
		}
	}
	// Mutating the clone must not affect the original.
	for i := 0; i < 20; i++ {
		c.UpdateCond(0x1000, true)
	}
	c.PushRAS(0xdead)
	if got, _ := u.PopRAS(); got != 0x42 {
		t.Error("clone mutation leaked into original RAS")
	}
}

func TestIsCallIsReturn(t *testing.T) {
	none := isa.RegNone
	call := isa.Inst{Op: isa.OpJal, Rd: isa.RA, Rs1: none, Rs2: none, Rs3: none}
	if !IsCall(call) {
		t.Error("jal ra not a call")
	}
	jump := isa.Inst{Op: isa.OpJal, Rd: isa.X0, Rs1: none, Rs2: none, Rs3: none}
	if IsCall(jump) {
		t.Error("j classified as call")
	}
	ret := isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.RA, Rs2: none, Rs3: none}
	if !IsReturn(ret) {
		t.Error("ret not a return")
	}
	indcall := isa.Inst{Op: isa.OpJalr, Rd: isa.RA, Rs1: isa.T0, Rs2: none, Rs3: none}
	if IsReturn(indcall) || !IsCall(indcall) {
		t.Error("jalr ra, t0 misclassified")
	}
}

func TestPredictAndUpdateConditional(t *testing.T) {
	u := New(small())
	none := isa.RegNone
	br := isa.Inst{Op: isa.OpBeq, Rd: none, Rs1: isa.A0, Rs2: isa.X0, Rs3: none, Target: 0x2000}
	pc := uint64(0x1000)

	// Weakly-not-taken reset state: first prediction is not-taken.
	p := u.PredictAndUpdate(pc, br, true, 0x2000)
	if p.Taken {
		t.Error("cold predictor predicted taken")
	}
	if !p.Mispredicted {
		t.Error("actual-taken vs predicted-not-taken not flagged")
	}
	if p.Target != pc+isa.InstBytes {
		t.Errorf("predicted target = %#x", p.Target)
	}
	// After training, taken predictions hit the decode target.
	for i := 0; i < 4; i++ {
		u.PredictAndUpdate(pc, br, true, 0x2000)
	}
	p = u.PredictAndUpdate(pc, br, true, 0x2000)
	if !p.Taken || p.Mispredicted || p.Target != 0x2000 {
		t.Errorf("trained prediction = %+v", p)
	}
}

func TestPredictAndUpdateCallReturn(t *testing.T) {
	u := New(small())
	none := isa.RegNone
	call := isa.Inst{Op: isa.OpJal, Rd: isa.RA, Rs1: none, Rs2: none, Rs3: none, Target: 0x4000}
	ret := isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.RA, Rs2: none, Rs3: none}

	p := u.PredictAndUpdate(0x1000, call, true, 0x4000)
	if p.Mispredicted {
		t.Error("direct call mispredicted")
	}
	// Return predicted via RAS: the call pushed 0x1004.
	p = u.PredictAndUpdate(0x4000, ret, true, 0x1004)
	if p.Mispredicted || p.Target != 0x1004 {
		t.Errorf("return prediction = %+v", p)
	}
	// A return to an address the RAS does not hold is a mispredict.
	u.PredictAndUpdate(0x1000, call, true, 0x4000)
	p = u.PredictAndUpdate(0x4000, ret, true, 0x9999)
	if !p.Mispredicted {
		t.Error("bogus return not flagged")
	}
}

func TestPredictAndUpdateIndirect(t *testing.T) {
	u := New(small())
	none := isa.RegNone
	ind := isa.Inst{Op: isa.OpJalr, Rd: isa.X0, Rs1: isa.T0, Rs2: none, Rs3: none}
	pc := uint64(0x1000)

	p := u.PredictAndUpdate(pc, ind, true, 0x7000)
	if !p.Mispredicted {
		t.Error("cold indirect jump not mispredicted")
	}
	p = u.PredictAndUpdate(pc, ind, true, 0x7000)
	if p.Mispredicted || p.Target != 0x7000 {
		t.Errorf("trained indirect = %+v", p)
	}
}

func TestPredictAndUpdateNonControl(t *testing.T) {
	u := New(small())
	none := isa.RegNone
	add := isa.Inst{Op: isa.OpAdd, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Rs3: none}
	p := u.PredictAndUpdate(0x1000, add, false, 0x1004)
	if p.Mispredicted || p.Target != 0x1004 {
		t.Errorf("non-control prediction = %+v", p)
	}
}

func TestSpecHistoryConsistency(t *testing.T) {
	u := New(small())
	// Train something into the history.
	for i := 0; i < 30; i++ {
		u.UpdateCond(0x100, i%2 == 0)
	}
	// PredictCond must agree with PredictCondSpec at the current history.
	for pc := uint64(0x100); pc < 0x200; pc += 4 {
		spec, _ := u.PredictCondSpec(pc, u.SpecHistory())
		if u.PredictCond(pc) != spec {
			t.Fatalf("PredictCond and PredictCondSpec disagree at %#x", pc)
		}
	}
	// Speculative history evolves with predictions but does not touch
	// the unit.
	before := u.SpecHistory()
	_, h := u.PredictCondSpec(0x100, before)
	_, h = u.PredictCondSpec(0x104, h)
	if u.SpecHistory() != before {
		t.Error("PredictCondSpec mutated the unit")
	}
	_ = h
}

func TestRASSnapshotIsolation(t *testing.T) {
	u := New(small())
	u.PushRAS(0x111)
	snap := u.RASSnapshot()
	if tgt, ok := snap.Pop(); !ok || tgt != 0x111 {
		t.Errorf("snapshot pop = %#x,%v", tgt, ok)
	}
	snap.Push(0x222)
	// Original unaffected.
	if tgt, ok := u.PopRAS(); !ok || tgt != 0x111 {
		t.Errorf("original pop = %#x,%v", tgt, ok)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []bool {
		u := New(DefaultConfig())
		out := make([]bool, 0, 1000)
		for i := 0; i < 1000; i++ {
			pc := uint64(0x1000 + (i%37)*4)
			out = append(out, u.PredictCond(pc))
			u.UpdateCond(pc, (i*7)%3 == 0)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
