// Package branch implements the branch prediction unit simulated by the
// performance model: a tournament (bimodal + gshare) conditional
// predictor, a return-address stack, and an indirect-target predictor.
//
// Everything is deterministic and cheaply clonable. Clonability matters
// twice in this reproduction: the wpemul frontend keeps an
// exactly-synchronized copy of the core's predictor (the paper: "the
// functional simulator contains a copy of the branch predictor model"),
// and wrong-path reconstruction walks use a scratch copy of the RAS so
// speculative calls/returns steer the reconstructed path without
// corrupting committed predictor state.
//
// Update discipline (shared by every simulator variant so that predictor
// state is identical across them at every correct-path branch): state is
// updated in program order at prediction time by correct-path control
// instructions only; wrong-path control instructions read the predictor
// but never update it.
package branch

import "repro/internal/isa"

// PredictorKind selects the conditional-predictor organization.
type PredictorKind int

// Conditional predictor organizations.
const (
	// PredictorTournament is the default bimodal+gshare tournament.
	PredictorTournament PredictorKind = iota
	// PredictorTAGE is a simplified TAGE (tagged geometric-history).
	PredictorTAGE
	// PredictorPerfect is an oracle: every control instruction is
	// predicted correctly, so no wrong path ever exists. Integrated
	// execute-at-execute simulators cannot offer this mode (the paper's
	// §I flexibility argument for functional-first simulation); this
	// simulator can, because the functional frontend knows every actual
	// outcome ahead of time.
	PredictorPerfect
)

// String names the predictor organization.
func (k PredictorKind) String() string {
	switch k {
	case PredictorTournament:
		return "tournament"
	case PredictorTAGE:
		return "tage"
	case PredictorPerfect:
		return "perfect"
	}
	return "unknown"
}

// Config sizes the prediction structures.
type Config struct {
	// Predictor selects the conditional-predictor organization.
	Predictor PredictorKind
	// BimodalBits is log2 of the bimodal table size.
	BimodalBits int
	// GShareBits is log2 of the gshare table size.
	GShareBits int
	// ChoiceBits is log2 of the tournament chooser table size.
	ChoiceBits int
	// HistoryLen is the global-history length in branches.
	HistoryLen int
	// RASSize is the return-address-stack depth.
	RASSize int
	// IndirectBits is log2 of the indirect-target table size.
	IndirectBits int
}

// DefaultConfig returns a configuration in line with a modern
// high-performance core front end.
func DefaultConfig() Config {
	return Config{
		BimodalBits:  14,
		GShareBits:   16,
		ChoiceBits:   14,
		HistoryLen:   16,
		RASSize:      32,
		IndirectBits: 12,
	}
}

// Unit is the branch prediction unit.
type Unit struct {
	cfg      Config
	bimodal  []uint8 // 2-bit saturating counters
	gshare   []uint8
	choice   []uint8 // 2-bit: ≥2 selects gshare
	tage     *tage   // non-nil for PredictorTAGE
	history  uint64
	histMask uint64

	ras    []uint64
	rasTop int // index of next push slot; stack is circular

	indirect []uint64 // last-target table; 0 = empty
}

// New creates a predictor with all structures in their reset state
// (weakly not-taken, empty RAS, empty indirect table).
func New(cfg Config) *Unit {
	u := &Unit{
		cfg:      cfg,
		bimodal:  make([]uint8, 1<<cfg.BimodalBits),
		gshare:   make([]uint8, 1<<cfg.GShareBits),
		choice:   make([]uint8, 1<<cfg.ChoiceBits),
		histMask: (1 << uint(cfg.HistoryLen)) - 1,
		ras:      make([]uint64, cfg.RASSize),
		indirect: make([]uint64, 1<<cfg.IndirectBits),
	}
	for i := range u.bimodal {
		u.bimodal[i] = 1 // weakly not-taken
	}
	for i := range u.gshare {
		u.gshare[i] = 1
	}
	for i := range u.choice {
		u.choice[i] = 1 // weakly bimodal
	}
	if cfg.Predictor == PredictorTAGE {
		u.tage = newTAGE(cfg.BimodalBits, cfg.GShareBits-2)
		// TAGE's longest table history exceeds typical tournament
		// history lengths; keep enough global history for it.
		if cfg.HistoryLen < 64 {
			u.histMask = (1 << 63) - 1
		}
	}
	return u
}

// Clone returns an independent copy with identical state.
func (u *Unit) Clone() *Unit {
	c := &Unit{cfg: u.cfg, history: u.history, histMask: u.histMask, rasTop: u.rasTop}
	if u.tage != nil {
		c.tage = u.tage.clone()
	}
	c.bimodal = append([]uint8(nil), u.bimodal...)
	c.gshare = append([]uint8(nil), u.gshare...)
	c.choice = append([]uint8(nil), u.choice...)
	c.ras = append([]uint64(nil), u.ras...)
	c.indirect = append([]uint64(nil), u.indirect...)
	return c
}

func pcIndex(pc uint64, bits int) uint64 {
	return (pc >> 2) & ((1 << uint(bits)) - 1)
}

func (u *Unit) gshareIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ (u.history & u.histMask)) & ((1 << uint(u.cfg.GShareBits)) - 1)
}

// PredictCond returns the predicted direction of the conditional branch
// at pc without updating any state.
func (u *Unit) PredictCond(pc uint64) bool {
	taken, _ := u.PredictCondSpec(pc, u.history)
	return taken
}

// SpecHistory returns the current global history, the starting point
// for a speculative (wrong-path) walk.
func (u *Unit) SpecHistory() uint64 { return u.history }

// PredictCondSpec predicts the conditional branch at pc under the given
// speculative global history and returns the history extended with the
// prediction, without updating any table. Wrong-path reconstruction
// threads the speculative history through its walk, exactly as a real
// front end speculatively updates (and later repairs) the history
// register.
func (u *Unit) PredictCondSpec(pc uint64, hist uint64) (taken bool, newHist uint64) {
	if u.tage != nil {
		t, _ := u.tage.predict(pc, hist)
		return t, ((hist << 1) | b2u(t)) & u.histMask
	}
	gsIdx := ((pc >> 2) ^ (hist & u.histMask)) & ((1 << uint(u.cfg.GShareBits)) - 1)
	bi := u.bimodal[pcIndex(pc, u.cfg.BimodalBits)] >= 2
	gs := u.gshare[gsIdx] >= 2
	t := bi
	if u.choice[pcIndex(pc, u.cfg.ChoiceBits)] >= 2 {
		t = gs
	}
	return t, ((hist << 1) | b2u(t)) & u.histMask
}

// UpdateCond trains the conditional predictor with the actual outcome.
// Call it immediately after PredictCond for correct-path branches.
func (u *Unit) UpdateCond(pc uint64, taken bool) {
	if u.tage != nil {
		u.tage.update(pc, u.history, taken)
		u.history = ((u.history << 1) | b2u(taken)) & u.histMask
		return
	}
	biIdx := pcIndex(pc, u.cfg.BimodalBits)
	gsIdx := u.gshareIndex(pc)
	chIdx := pcIndex(pc, u.cfg.ChoiceBits)
	biCorrect := (u.bimodal[biIdx] >= 2) == taken
	gsCorrect := (u.gshare[gsIdx] >= 2) == taken
	if biCorrect != gsCorrect {
		if gsCorrect {
			u.choice[chIdx] = satInc(u.choice[chIdx])
		} else {
			u.choice[chIdx] = satDec(u.choice[chIdx])
		}
	}
	if taken {
		u.bimodal[biIdx] = satInc(u.bimodal[biIdx])
		u.gshare[gsIdx] = satInc(u.gshare[gsIdx])
	} else {
		u.bimodal[biIdx] = satDec(u.bimodal[biIdx])
		u.gshare[gsIdx] = satDec(u.gshare[gsIdx])
	}
	u.history = ((u.history << 1) | b2u(taken)) & u.histMask
}

// PredictIndirect returns the predicted target of an indirect jump at
// pc; ok is false when the table has no entry (the front end then has
// no target — modeled as a guaranteed misprediction).
func (u *Unit) PredictIndirect(pc uint64) (target uint64, ok bool) {
	t := u.indirect[pcIndex(pc, u.cfg.IndirectBits)]
	return t, t != 0
}

// UpdateIndirect records the actual target of an indirect jump.
func (u *Unit) UpdateIndirect(pc uint64, target uint64) {
	u.indirect[pcIndex(pc, u.cfg.IndirectBits)] = target
}

// PushRAS records a return address (on calls).
func (u *Unit) PushRAS(retAddr uint64) {
	u.ras[u.rasTop] = retAddr
	u.rasTop = (u.rasTop + 1) % len(u.ras)
}

// PopRAS predicts a return target (on returns). ok is false only when
// the stack slot is empty (cold start).
func (u *Unit) PopRAS() (target uint64, ok bool) {
	u.rasTop = (u.rasTop - 1 + len(u.ras)) % len(u.ras)
	t := u.ras[u.rasTop]
	return t, t != 0
}

// RASSnapshot copies the RAS state for speculative wrong-path walks.
func (u *Unit) RASSnapshot() RAS {
	var r RAS
	u.SnapshotRASInto(&r)
	return r
}

// SnapshotRASInto copies the RAS state into r, reusing r's backing
// array when it is large enough — the allocation-free form callers on
// the per-mispredict path use with a pooled scratch RAS.
func (u *Unit) SnapshotRASInto(r *RAS) {
	r.stack = append(r.stack[:0], u.ras...)
	r.top = u.rasTop
}

// RAS is a standalone return-address stack used as scratch state during
// wrong-path reconstruction.
type RAS struct {
	stack []uint64
	top   int
}

// Push records a return address.
func (r *RAS) Push(retAddr uint64) {
	r.stack[r.top] = retAddr
	r.top = (r.top + 1) % len(r.stack)
}

// Pop predicts a return target.
func (r *RAS) Pop() (target uint64, ok bool) {
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	t := r.stack[r.top]
	return t, t != 0
}

func satInc(v uint8) uint8 {
	if v < 3 {
		return v + 1
	}
	return 3
}

func satDec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// IsReturn reports whether the instruction is treated as a return by
// the front end: jalr with no link register and ra as base.
func IsReturn(in isa.Inst) bool {
	return in.Op == isa.OpJalr && in.Rd == isa.X0 && in.Rs1 == isa.RA
}

// IsCall reports whether the instruction is treated as a call: a jump
// that links into ra.
func IsCall(in isa.Inst) bool {
	return (in.Op == isa.OpJal || in.Op == isa.OpJalr) && in.Rd == isa.RA
}

// Prediction is the front end's verdict for one control instruction.
type Prediction struct {
	// Taken is the predicted direction (conditional branches only;
	// always true for jumps).
	Taken bool
	// Target is the predicted next PC.
	Target uint64
	// Mispredicted is set when Target differs from the actual next PC.
	Mispredicted bool
}

// PredictAndUpdate runs the full front-end prediction policy for a
// correct-path control instruction at pc with actual outcome
// (actualTaken, actualNext), updating predictor state in program order.
// Both the performance model and the wpemul functional frontend call
// this same function, which is what keeps their predictor copies
// bit-identical.
func (u *Unit) PredictAndUpdate(pc uint64, in isa.Inst, actualTaken bool, actualNext uint64) Prediction {
	fallthrough_ := pc + isa.InstBytes
	if u.cfg.Predictor == PredictorPerfect {
		// Oracle: perfect directions and targets, no state, no wrong path.
		return Prediction{Taken: actualTaken, Target: actualNext}
	}
	var p Prediction
	switch {
	case in.Op.IsCondBranch():
		p.Taken = u.PredictCond(pc)
		if p.Taken {
			p.Target = in.Target
		} else {
			p.Target = fallthrough_
		}
		u.UpdateCond(pc, actualTaken)
	case in.Op == isa.OpJal:
		p.Taken = true
		p.Target = in.Target
		if IsCall(in) {
			u.PushRAS(fallthrough_)
		}
	case in.Op == isa.OpJalr:
		p.Taken = true
		if IsReturn(in) {
			t, ok := u.PopRAS()
			if !ok {
				t = fallthrough_ // no prediction: modeled as mispredict
			}
			p.Target = t
		} else {
			t, ok := u.PredictIndirect(pc)
			if !ok {
				t = fallthrough_
			}
			p.Target = t
			u.UpdateIndirect(pc, actualNext)
			if IsCall(in) {
				u.PushRAS(fallthrough_)
			}
		}
	default:
		// Not a control instruction: predicted fall-through, never wrong.
		p.Target = fallthrough_
	}
	p.Mispredicted = p.Target != actualNext
	return p
}
