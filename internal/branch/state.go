package branch

import (
	"fmt"

	"repro/internal/checkpoint"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the complete predictor state: conditional
// tables, global history, RAS, indirect table, and TAGE (when
// configured). Config-derived masks are rebuilt by New on resume, so
// only the mutable state is written; table lengths are validated on
// restore so a snapshot from a differently-sized predictor fails loudly
// instead of aliasing entries.
func (u *Unit) SaveState(w *checkpoint.Writer) {
	w.Section("branch/Unit", snapshotVersion)
	w.Bytes(u.bimodal)
	w.Bytes(u.gshare)
	w.Bytes(u.choice)
	w.Uint64(u.history)
	w.Uint64s(u.ras)
	w.Int(u.rasTop)
	w.Uint64s(u.indirect)
	w.Bool(u.tage != nil)
	if u.tage != nil {
		u.tage.saveState(w)
	}
}

// RestoreState overwrites the predictor state with the snapshot. The
// receiver must be built (New) with the same Config the snapshot was
// taken under; size mismatches surface as typed decode faults.
func (u *Unit) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("branch/Unit", snapshotVersion); err != nil {
		return err
	}
	if err := bytesInto(r, u.bimodal, "bimodal"); err != nil {
		return err
	}
	if err := bytesInto(r, u.gshare, "gshare"); err != nil {
		return err
	}
	if err := bytesInto(r, u.choice, "choice"); err != nil {
		return err
	}
	u.history = r.Uint64()
	r.Uint64sInto(u.ras)
	u.rasTop = r.Int()
	r.Uint64sInto(u.indirect)
	hasTAGE := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasTAGE != (u.tage != nil) {
		return fmt.Errorf("branch: snapshot tage=%v, configuration tage=%v", hasTAGE, u.tage != nil)
	}
	if u.tage != nil {
		return u.tage.restoreState(r)
	}
	return nil
}

// bytesInto decodes a length-prefixed byte string into dst, requiring
// an exact length match (these tables are sized by Config).
func bytesInto(r *checkpoint.Reader, dst []uint8, name string) error {
	b := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if len(b) != len(dst) {
		return fmt.Errorf("branch: snapshot %s table holds %d entries, want %d", name, len(b), len(dst))
	}
	copy(dst, b)
	return nil
}

func (t *tage) saveState(w *checkpoint.Writer) {
	w.Section("branch/tage", snapshotVersion)
	w.Bytes(t.base)
	w.Uint64(t.allocClock)
	for i := range t.tables {
		w.Uint64(uint64(len(t.tables[i])))
		for j := range t.tables[i] {
			e := &t.tables[i][j]
			w.Uint32(uint32(e.tag))
			w.Byte(byte(e.ctr))
			w.Byte(e.useful)
			w.Bool(e.valid)
		}
	}
}

func (t *tage) restoreState(r *checkpoint.Reader) error {
	if err := r.Section("branch/tage", snapshotVersion); err != nil {
		return err
	}
	if err := bytesInto(r, t.base, "tage base"); err != nil {
		return err
	}
	t.allocClock = r.Uint64()
	for i := range t.tables {
		n := r.Uint64()
		if r.Err() != nil {
			return r.Err()
		}
		if n != uint64(len(t.tables[i])) {
			return fmt.Errorf("branch: snapshot tage table %d holds %d entries, want %d", i, n, len(t.tables[i]))
		}
		for j := range t.tables[i] {
			e := &t.tables[i][j]
			e.tag = uint16(r.Uint32())
			e.ctr = int8(r.Byte())
			e.useful = r.Byte()
			e.valid = r.Bool()
		}
	}
	return r.Err()
}
