package cache

import (
	"fmt"

	"repro/internal/checkpoint"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// saveStats serializes one level's counter block.
func saveStats(w *checkpoint.Writer, s *LevelStats) {
	w.Uint64(s.Correct.Accesses)
	w.Uint64(s.Correct.Misses)
	w.Uint64(s.Wrong.Accesses)
	w.Uint64(s.Wrong.Misses)
	w.Uint64(s.Writebacks)
}

func restoreStats(r *checkpoint.Reader, s *LevelStats) {
	s.Correct.Accesses = r.Uint64()
	s.Correct.Misses = r.Uint64()
	s.Wrong.Accesses = r.Uint64()
	s.Wrong.Misses = r.Uint64()
	s.Writebacks = r.Uint64()
}

// SaveState serializes one level's content (tags, valid/dirty bits, LRU
// stamps) and statistics. Geometry is configuration-derived and not
// written; the line count is, so a resume under a different geometry
// fails loudly.
func (l *Level) SaveState(w *checkpoint.Writer) { //wplint:allow checkpoint -- cfg is geometry, read by RestoreState only for its mismatch message
	w.Section("cache/Level", snapshotVersion)
	w.Uint64(l.useClock)
	saveStats(w, &l.Stats)
	w.Uint64(uint64(len(l.lines)))
	for i := range l.lines {
		ln := &l.lines[i]
		w.Uint64(ln.tag)
		w.Bool(ln.valid)
		w.Bool(ln.dirty)
		w.Uint64(ln.lastUse)
	}
}

// RestoreState overwrites the level's content with the snapshot.
func (l *Level) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("cache/Level", snapshotVersion); err != nil {
		return err
	}
	l.useClock = r.Uint64()
	restoreStats(r, &l.Stats)
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(l.lines)) {
		return fmt.Errorf("cache: snapshot level %s holds %d lines, want %d", l.cfg.Name, n, len(l.lines))
	}
	for i := range l.lines {
		ln := &l.lines[i]
		ln.tag = r.Uint64()
		ln.valid = r.Bool()
		ln.dirty = r.Bool()
		ln.lastUse = r.Uint64()
	}
	return r.Err()
}

// SaveState serializes the TLB content and statistics.
func (t *TLB) SaveState(w *checkpoint.Writer) { //wplint:allow checkpoint -- cfg is geometry, read by RestoreState only for its mismatch message
	w.Section("cache/TLB", snapshotVersion)
	w.Uint64(t.useClock)
	saveStats(w, &t.Stats)
	w.Uint64(uint64(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		w.Uint64(e.vpn)
		w.Bool(e.valid)
		w.Uint64(e.lastUse)
	}
}

// RestoreState overwrites the TLB content with the snapshot.
func (t *TLB) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("cache/TLB", snapshotVersion); err != nil {
		return err
	}
	t.useClock = r.Uint64()
	restoreStats(r, &t.Stats)
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(t.entries)) {
		return fmt.Errorf("cache: snapshot tlb %s holds %d entries, want %d", t.cfg.Name, n, len(t.entries))
	}
	for i := range t.entries {
		e := &t.entries[i]
		e.vpn = r.Uint64()
		e.valid = r.Bool()
		e.lastUse = r.Uint64()
	}
	return r.Err()
}

// SaveState serializes the whole hierarchy: all four levels, both TLBs
// (presence-flagged — nil means disabled by configuration), and the
// DRAM-side counters including the channel clock.
func (h *Hierarchy) SaveState(w *checkpoint.Writer) {
	w.Section("cache/Hierarchy", snapshotVersion)
	h.l1i.SaveState(w)
	h.l1d.SaveState(w)
	h.l2.SaveState(w)
	h.llc.SaveState(w)
	w.Bool(h.itlb != nil)
	if h.itlb != nil {
		h.itlb.SaveState(w)
	}
	w.Bool(h.dtlb != nil)
	if h.dtlb != nil {
		h.dtlb.SaveState(w)
	}
	w.Uint64(h.MemAccesses)
	w.Uint64(h.WrongMemAccesses)
	w.Uint64(h.Prefetches)
	w.Uint64(h.MemQueueCycles)
	w.Uint64(h.memNextFree)
}

// RestoreState overwrites the hierarchy state with the snapshot. The
// receiver must be built (NewHierarchy) under the same configuration.
func (h *Hierarchy) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("cache/Hierarchy", snapshotVersion); err != nil {
		return err
	}
	if err := h.l1i.RestoreState(r); err != nil {
		return err
	}
	if err := h.l1d.RestoreState(r); err != nil {
		return err
	}
	if err := h.l2.RestoreState(r); err != nil {
		return err
	}
	if err := h.llc.RestoreState(r); err != nil {
		return err
	}
	for _, tlb := range []struct {
		name string
		t    *TLB
	}{{"itlb", h.itlb}, {"dtlb", h.dtlb}} {
		has := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		if has != (tlb.t != nil) {
			return fmt.Errorf("cache: snapshot %s=%v, configuration %s=%v", tlb.name, has, tlb.name, tlb.t != nil)
		}
		if tlb.t != nil {
			if err := tlb.t.RestoreState(r); err != nil {
				return err
			}
		}
	}
	h.MemAccesses = r.Uint64()
	h.WrongMemAccesses = r.Uint64()
	h.Prefetches = r.Uint64()
	h.MemQueueCycles = r.Uint64()
	h.memNextFree = r.Uint64()
	return r.Err()
}
