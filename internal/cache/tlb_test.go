package cache

import "testing"

func tlbCfg() TLBConfig {
	return TLBConfig{Name: "T", Entries: 8, Ways: 2, PageBits: 12, WalkLatency: 25}
}

func TestTLBConfigValidate(t *testing.T) {
	if err := tlbCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (TLBConfig{}).Validate(); err != nil {
		t.Errorf("disabled config invalid: %v", err)
	}
	bad := []TLBConfig{
		{Name: "a", Entries: 8, Ways: 3, PageBits: 12, WalkLatency: 1},  // not divisible
		{Name: "b", Entries: 8, Ways: 2, PageBits: 0, WalkLatency: 1},   // no page size
		{Name: "c", Entries: 24, Ways: 2, PageBits: 12, WalkLatency: 1}, // 12 sets
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %s validated", c.Name)
		}
	}
}

func TestTLBDisabled(t *testing.T) {
	if NewTLB(TLBConfig{}) != nil {
		t.Error("disabled TLB not nil")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(tlbCfg())
	if got := tlb.Access(0x1000, false); got != 25 {
		t.Errorf("cold access = %d, want walk 25", got)
	}
	if got := tlb.Access(0x1abc, false); got != 0 {
		t.Errorf("same-page access = %d, want 0", got)
	}
	if got := tlb.Access(0x2000, false); got != 25 {
		t.Errorf("next page = %d, want walk", got)
	}
	if !tlb.Contains(0x1000) || tlb.Contains(0x9000) {
		t.Error("Contains wrong")
	}
	if tlb.Stats.Correct.Accesses != 3 || tlb.Stats.Correct.Misses != 2 {
		t.Errorf("stats = %+v", tlb.Stats.Correct)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(tlbCfg()) // 4 sets × 2 ways; pages mapping to set 0 differ by 4 pages
	stride := uint64(4 << 12)
	a, b, c := uint64(0), stride, 2*stride
	tlb.Access(a, false)
	tlb.Access(b, false)
	tlb.Access(a, false) // refresh a
	tlb.Access(c, false) // evicts b
	if !tlb.Contains(a) || !tlb.Contains(c) || tlb.Contains(b) {
		t.Error("LRU eviction wrong")
	}
}

func TestTLBWrongPathStats(t *testing.T) {
	tlb := NewTLB(tlbCfg())
	tlb.Access(0x5000, true)
	if tlb.Stats.Wrong.Misses != 1 || tlb.Stats.Correct.Accesses != 0 {
		t.Errorf("wrong-path stats = %+v", tlb.Stats)
	}
	// The wrong-path walk warmed the TLB for the correct path — the
	// interference effect under study.
	if got := tlb.Access(0x5000, false); got != 0 {
		t.Error("correct path missed after wrong-path warm")
	}
}

func TestHierarchyTLBIntegration(t *testing.T) {
	cfg := hier()
	cfg.DTLB = TLBConfig{Name: "DTLB", Entries: 16, Ways: 4, PageBits: 12, WalkLatency: 30}
	cfg.ITLB = TLBConfig{Name: "ITLB", Entries: 16, Ways: 4, PageBits: 12, WalkLatency: 20}
	h := NewHierarchy(cfg)

	base := 4 + 40 + 200
	if got := h.Load(0x100000, 0, false); got != 30+base {
		t.Errorf("cold load with TLB walk = %d, want %d", got, 30+base)
	}
	// Same page, next line: TLB hit, cache miss.
	if got := h.Load(0x100040, 0, false); got != base {
		t.Errorf("TLB-warm load = %d, want %d", got, base)
	}
	// Fetch: ITLB walk (20) + L1I miss (1) + unified-L2 hit (12) — the
	// line is in L2 from the earlier data load.
	if got := h.AccessI(0x100000, 0, false); got != 20+1+12 {
		t.Errorf("fetch with ITLB walk = %d, want 33", got)
	}
	if h.DTLB().Stats.Correct.Misses != 1 {
		t.Errorf("DTLB misses = %d", h.DTLB().Stats.Correct.Misses)
	}
	// Stores walk too.
	if got := h.Store(0x900000, 0, false); got < 30 {
		t.Errorf("store with TLB walk = %d", got)
	}
}
