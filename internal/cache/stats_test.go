package cache

import "testing"

// TestMissRateZeroDenominator: an idle level (zero accesses) must
// report a zero miss rate, not NaN, including through the Total
// aggregation.
func TestMissRateZeroDenominator(t *testing.T) {
	cases := []struct {
		name  string
		stats PathStats
		want  float64
	}{
		{"idle", PathStats{}, 0},
		{"misses-without-accesses", PathStats{Misses: 3}, 0},
		{"normal", PathStats{Accesses: 8, Misses: 2}, 0.25},
	}
	for _, c := range cases {
		if got := c.stats.MissRate(); got != c.want {
			t.Errorf("%s: MissRate = %v, want %v", c.name, got, c.want)
		}
	}
	var lv LevelStats
	if got := lv.Total().MissRate(); got != 0 {
		t.Errorf("idle LevelStats.Total().MissRate() = %v, want 0", got)
	}
}
