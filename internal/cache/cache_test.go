package cache

import (
	"testing"
	"testing/quick"
)

func tiny() Config {
	return Config{Name: "T", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 3}
	// 8 sets × 2 ways × 64 B.
}

func TestConfigValidate(t *testing.T) {
	good := tiny()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "a", SizeBytes: 0, Ways: 1, LineBytes: 64},
		{Name: "b", SizeBytes: 1024, Ways: 2, LineBytes: 48},     // not power of two
		{Name: "c", SizeBytes: 1000, Ways: 2, LineBytes: 64},     // not divisible
		{Name: "d", SizeBytes: 1024 * 3, Ways: 2, LineBytes: 64}, // sets not power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s validated", c.Name)
		}
	}
}

func TestLevelHitMiss(t *testing.T) {
	l := NewLevel(tiny())
	if l.lookup(0x1000, false) {
		t.Error("cold lookup hit")
	}
	l.fill(0x1000, false)
	if !l.lookup(0x1000, false) {
		t.Error("filled line missed")
	}
	if !l.lookup(0x103f, false) {
		t.Error("same line, different offset missed")
	}
	if l.lookup(0x1040, false) {
		t.Error("next line hit")
	}
}

func TestLevelLRUEviction(t *testing.T) {
	l := NewLevel(tiny()) // 2 ways
	// Three lines mapping to the same set (stride = sets*line = 512).
	a, b, c := uint64(0), uint64(512), uint64(1024)
	l.fill(a, false)
	l.fill(b, false)
	l.lookup(a, false) // refresh a: b becomes LRU
	l.fill(c, false)   // evicts b
	if !l.Contains(a) || !l.Contains(c) {
		t.Error("wrong line evicted")
	}
	if l.Contains(b) {
		t.Error("LRU line survived")
	}
}

func TestLevelWritebackCounting(t *testing.T) {
	l := NewLevel(tiny())
	l.fill(0, true) // dirty
	l.fill(512, false)
	if evicted, dirty, had := l.fill(1024, false); !had || !dirty || evicted != 0 {
		t.Errorf("evict = %#x dirty=%v had=%v, want dirty eviction of 0", evicted, dirty, had)
	}
}

func TestLevelFlush(t *testing.T) {
	l := NewLevel(tiny())
	l.fill(0x40, false)
	l.Flush()
	if l.Contains(0x40) {
		t.Error("flush left lines valid")
	}
}

func hier() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{Name: "L1I", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 1},
		L1D:        Config{Name: "L1D", SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 4},
		L2:         Config{Name: "L2", SizeBytes: 4096, Ways: 4, LineBytes: 64, HitLatency: 12},
		LLC:        Config{Name: "LLC", SizeBytes: 16384, Ways: 4, LineBytes: 64, HitLatency: 40},
		MemLatency: 200,
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(hier())
	addr := uint64(0x10000)
	// Cold: full miss. Each level's HitLatency is measured from the
	// start of the access, so a full miss costs L1-hit + LLC-hit +
	// memory (the L2 lookup time is subsumed by the LLC figure).
	want := 4 + 40 + 200
	if got := h.Load(addr, 0, false); got != want {
		t.Errorf("cold load latency = %d, want %d", got, want)
	}
	// Hot: L1 hit.
	if got := h.Load(addr, 0, false); got != 4 {
		t.Errorf("hot load latency = %d", got)
	}
	// Evict from L1 (same set) but keep in L2: L1 miss, L2 hit.
	h.Load(addr+512, 0, false)
	h.Load(addr+1024, 0, false)
	if got := h.Load(addr, 0, false); got != 4+12 {
		t.Errorf("L2-hit latency = %d, want %d", got, 4+12)
	}
}

func TestHierarchyStatsSplit(t *testing.T) {
	h := NewHierarchy(hier())
	h.Load(0x1000, 0, false)
	h.Load(0x2000, 0, true)
	if h.L1D().Stats.Correct.Accesses != 1 || h.L1D().Stats.Correct.Misses != 1 {
		t.Errorf("correct stats = %+v", h.L1D().Stats.Correct)
	}
	if h.L1D().Stats.Wrong.Accesses != 1 || h.L1D().Stats.Wrong.Misses != 1 {
		t.Errorf("wrong stats = %+v", h.L1D().Stats.Wrong)
	}
	if h.MemAccesses != 2 || h.WrongMemAccesses != 1 {
		t.Errorf("mem accesses = %d/%d", h.MemAccesses, h.WrongMemAccesses)
	}
	tot := h.L1D().Stats.Total()
	if tot.Accesses != 2 || tot.Misses != 2 {
		t.Errorf("total = %+v", tot)
	}
	if tot.MissRate() != 1 {
		t.Errorf("miss rate = %f", tot.MissRate())
	}
}

func TestWrongPathPrefetchEffect(t *testing.T) {
	h := NewHierarchy(hier())
	addr := uint64(0x40000)
	// A wrong-path access brings the line in...
	h.Load(addr, 0, true)
	// ...and the later correct-path access hits: the central positive
	// interference phenomenon.
	if got := h.Load(addr, 0, false); got != 4 {
		t.Errorf("correct-path latency after WP prefetch = %d", got)
	}
	if h.L1D().Stats.Correct.Misses != 0 {
		t.Error("correct path missed despite WP prefetch")
	}
}

func TestInstructionPath(t *testing.T) {
	h := NewHierarchy(hier())
	pc := uint64(0x1000)
	if got := h.AccessI(pc, 0, false); got != 1+40+200 {
		t.Errorf("cold fetch latency = %d", got)
	}
	if got := h.AccessI(pc, 0, false); got != 1 {
		t.Errorf("hot fetch latency = %d", got)
	}
	if h.L1D().Stats.Total().Accesses != 0 {
		t.Error("instruction fetch touched L1D")
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	h := NewHierarchy(hier())
	addr := uint64(0x5000)
	h.Store(addr, 0, false)
	// The store allocated the line; a load now hits.
	if got := h.Load(addr, 0, false); got != 4 {
		t.Errorf("load after store latency = %d", got)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := hier()
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg)
	h.Load(0x8000, 0, false)
	if h.Prefetches == 0 {
		t.Fatal("no prefetch issued")
	}
	// The next line is now in L2: an L1-missing access pays only L2 hit.
	if got := h.Load(0x8040, 0, false); got != 4+12 {
		t.Errorf("prefetched-line latency = %d, want %d", got, 4+12)
	}
}

func TestMemBandwidthQueue(t *testing.T) {
	cfg := hier()
	cfg.MemGapCycles = 10
	h := NewHierarchy(cfg)
	base := 4 + 40 + 200
	// First miss at cycle 0: no queueing.
	if got := h.Load(0x100000, 0, false); got != base {
		t.Errorf("first miss = %d", got)
	}
	// Second miss issued at the same cycle queues behind the first.
	if got := h.Load(0x200000, 0, false); got != base+10 {
		t.Errorf("second concurrent miss = %d, want %d", got, base+10)
	}
	if h.MemQueueCycles == 0 {
		t.Error("no queue cycles recorded")
	}
	// A miss far in the future sees an idle channel.
	if got := h.Load(0x300000, 1_000_000, false); got != base {
		t.Errorf("late miss = %d", got)
	}
}

func TestInclusionOnFill(t *testing.T) {
	h := NewHierarchy(hier())
	addr := uint64(0x9000)
	h.Load(addr, 0, false)
	if !h.L1D().Contains(addr) || !h.L2().Contains(addr) || !h.LLC().Contains(addr) {
		t.Error("fill did not populate all levels")
	}
}

// TestQuickLookupAfterFill: any filled address is Contained until
// enough conflicting fills evict it; immediately after fill it must hit.
func TestQuickLookupAfterFill(t *testing.T) {
	l := NewLevel(Config{Name: "q", SizeBytes: 8192, Ways: 4, LineBytes: 64, HitLatency: 1})
	f := func(addr uint64) bool {
		addr %= 1 << 32
		l.fill(addr, false)
		return l.Contains(addr) && l.lookup(addr, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetBounded: the number of distinct resident lines mapping to
// one set never exceeds the way count.
func TestQuickSetBounded(t *testing.T) {
	cfg := Config{Name: "q", SizeBytes: 2048, Ways: 2, LineBytes: 64, HitLatency: 1}
	l := NewLevel(cfg)
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	stride := uint64(sets * cfg.LineBytes)
	f := func(ks []uint8) bool {
		for _, k := range ks {
			l.fill(uint64(k)*stride, false) // all map to set 0
		}
		resident := 0
		for k := 0; k < 256; k++ {
			if l.Contains(uint64(k) * stride) {
				resident++
			}
		}
		return resident <= cfg.Ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
