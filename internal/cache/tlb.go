package cache

import "fmt"

// TLBConfig sizes one translation lookaside buffer. A zero Entries
// disables the TLB (translation is then free).
type TLBConfig struct {
	Name    string
	Entries int
	Ways    int
	// PageBits is log2 of the page size (12 = 4 KB).
	PageBits int
	// WalkLatency is the page-walk penalty in cycles charged on a miss.
	WalkLatency int
}

// Validate reports configuration errors (a zero config is valid:
// disabled).
func (c TLBConfig) Validate() error {
	if c.Entries == 0 {
		return nil
	}
	switch {
	case c.Entries < 0 || c.Ways <= 0 || c.Entries%c.Ways != 0:
		return fmt.Errorf("tlb %s: bad geometry %d/%d", c.Name, c.Entries, c.Ways)
	case c.PageBits <= 0 || c.WalkLatency < 0:
		return fmt.Errorf("tlb %s: bad page/walk parameters", c.Name)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

type tlbEntry struct {
	vpn     uint64
	valid   bool
	lastUse uint64
}

// TLB is a set-associative translation buffer. The paper lists TLB
// accesses alongside data-cache accesses as the wrong-path effects that
// cannot be modeled without addresses: wrong-path memory operations
// with known addresses warm (or pollute) the TLB for the correct path
// exactly like they do the caches.
type TLB struct {
	cfg      TLBConfig
	setMask  uint64
	entries  []tlbEntry
	useClock uint64

	Stats LevelStats
}

// NewTLB builds a TLB; nil is returned for a disabled config.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries == 0 {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{
		cfg:     cfg,
		setMask: uint64(cfg.Entries/cfg.Ways - 1),
		entries: make([]tlbEntry, cfg.Entries),
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates addr, returning the extra latency (0 on hit, the
// walk latency on a miss, which also fills the entry).
func (t *TLB) Access(addr uint64, wrongPath bool) int {
	vpn := addr >> uint(t.cfg.PageBits)
	idx := int(vpn&t.setMask) * t.cfg.Ways
	set := t.entries[idx : idx+t.cfg.Ways]
	s := &t.Stats.Correct
	if wrongPath {
		s = &t.Stats.Wrong
	}
	s.Accesses++
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.useClock++
			set[i].lastUse = t.useClock
			return 0
		}
	}
	s.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	t.useClock++
	set[victim] = tlbEntry{vpn: vpn, valid: true, lastUse: t.useClock}
	return t.cfg.WalkLatency
}

// Contains probes without touching state or statistics.
func (t *TLB) Contains(addr uint64) bool {
	vpn := addr >> uint(t.cfg.PageBits)
	idx := int(vpn&t.setMask) * t.cfg.Ways
	for _, e := range t.entries[idx : idx+t.cfg.Ways] {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}
