// Package cache implements the memory hierarchy of the performance
// simulator: set-associative, LRU, write-back/write-allocate caches in
// a three-level inclusive hierarchy (split L1I/L1D, unified private L2,
// LLC slice) backed by a fixed-latency DRAM model.
//
// Every access is tagged correct-path or wrong-path. Wrong-path
// accesses update cache state exactly like correct-path ones — that is
// the whole phenomenon under study: wrong-path loads can prefetch data
// for the converging correct path (positive interference) or evict
// lines the correct path still needs (negative interference). Hit/miss
// statistics are kept separately per path so the experiments can report
// the paper's Table III metrics (wrong-path L2 misses).
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// HitLatency is the load-to-use latency of a hit in this level,
	// in cycles, measured from the start of the access.
	HitLatency int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// PathStats counts accesses and misses for one path kind.
type PathStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s PathStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// LevelStats aggregates one level's counters.
type LevelStats struct {
	Correct    PathStats
	Wrong      PathStats
	Writebacks uint64
}

// Total returns combined correct+wrong path counters.
func (s LevelStats) Total() PathStats {
	return PathStats{
		Accesses: s.Correct.Accesses + s.Wrong.Accesses,
		Misses:   s.Correct.Misses + s.Wrong.Misses,
	}
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Level is one set-associative cache.
type Level struct {
	cfg       Config
	sets      int
	setMask   uint64
	lineShift uint
	lines     []line // sets*ways, set-major
	useClock  uint64 // global LRU counter (deterministic)

	Stats LevelStats
}

// NewLevel builds one cache level; the configuration must be valid.
func NewLevel(cfg Config) *Level {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Level{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(sets - 1),
		lineShift: shift,
		lines:     make([]line, sets*cfg.Ways),
	}
}

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

func (l *Level) set(addr uint64) []line {
	idx := int((addr >> l.lineShift) & l.setMask)
	return l.lines[idx*l.cfg.Ways : (idx+1)*l.cfg.Ways]
}

func (l *Level) tag(addr uint64) uint64 { return addr >> l.lineShift }

// lookup probes for addr; on hit it refreshes LRU (and dirtiness for
// writes) and returns true.
func (l *Level) lookup(addr uint64, write bool) bool {
	tag := l.tag(addr)
	set := l.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			l.useClock++
			set[i].lastUse = l.useClock
			if write {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// fill inserts the line containing addr, evicting LRU if needed.
// It returns whether a dirty line was evicted (for writeback counting).
func (l *Level) fill(addr uint64, write bool) (evicted uint64, wasDirty, hadVictim bool) {
	tag := l.tag(addr)
	set := l.set(addr)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	hadVictim = true
	evicted = set[victim].tag << l.lineShift
	wasDirty = set[victim].dirty
place:
	l.useClock++
	set[victim] = line{tag: tag, valid: true, dirty: write, lastUse: l.useClock}
	return evicted, wasDirty, hadVictim
}

// Contains probes without touching LRU state or statistics; used by
// tests and by the experiments' cache-content assertions.
func (l *Level) Contains(addr uint64) bool {
	tag := l.tag(addr)
	for _, ln := range l.set(addr) {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and resets LRU state (not statistics).
func (l *Level) Flush() {
	for i := range l.lines {
		l.lines[i] = line{}
	}
}

// HierarchyConfig configures the full memory hierarchy.
type HierarchyConfig struct {
	L1I Config
	L1D Config
	L2  Config
	LLC Config
	// ITLB/DTLB configure address translation; zero Entries disables
	// the respective TLB.
	ITLB TLBConfig
	DTLB TLBConfig
	// MemLatency is the DRAM access latency in cycles added after an
	// LLC miss.
	MemLatency int
	// MemGapCycles models the downscaled per-core DRAM bandwidth the
	// paper configures: each line transfer occupies the channel for
	// this many cycles, so bursts of misses (including wrong-path
	// prefetch bursts) queue behind each other. 0 disables the limit.
	MemGapCycles int
	// NextLinePrefetch enables a simple next-line prefetcher that, on
	// every L2 demand miss, fills the following line into L2 (and LLC).
	NextLinePrefetch bool
}

// DefaultHierarchyConfig returns the Golden-Cove-like hierarchy used by
// the experiments: 32 KB L1I, 48 KB L1D, 1.25 MB L2, a 3 MB LLC slice
// (per-core share, as the paper downscales), and ~230-cycle memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:              Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 1},
		L1D:              Config{Name: "L1D", SizeBytes: 48 << 10, Ways: 12, LineBytes: 64, HitLatency: 5},
		L2:               Config{Name: "L2", SizeBytes: 1280 << 10, Ways: 10, LineBytes: 64, HitLatency: 15},
		LLC:              Config{Name: "LLC", SizeBytes: 3 << 20, Ways: 12, LineBytes: 64, HitLatency: 45},
		ITLB:             TLBConfig{Name: "ITLB", Entries: 128, Ways: 8, PageBits: 12, WalkLatency: 20},
		DTLB:             TLBConfig{Name: "DTLB", Entries: 96, Ways: 6, PageBits: 12, WalkLatency: 30},
		MemLatency:       230,
		MemGapCycles:     4, // ~16 B/cycle per core share of DRAM bandwidth
		NextLinePrefetch: true,
	}
}

// Hierarchy is the three-level memory hierarchy.
type Hierarchy struct {
	cfg  HierarchyConfig
	l1i  *Level
	l1d  *Level
	l2   *Level
	llc  *Level
	itlb *TLB // nil when disabled
	dtlb *TLB // nil when disabled

	// MemAccesses counts DRAM accesses (LLC misses).
	MemAccesses uint64
	// WrongMemAccesses counts DRAM accesses made by wrong-path requests.
	WrongMemAccesses uint64
	// Prefetches counts next-line prefetch fills issued.
	Prefetches uint64
	// MemQueueCycles accumulates cycles spent waiting for the DRAM
	// channel (bandwidth contention).
	MemQueueCycles uint64

	memNextFree uint64
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		l1i:  NewLevel(cfg.L1I),
		l1d:  NewLevel(cfg.L1D),
		l2:   NewLevel(cfg.L2),
		llc:  NewLevel(cfg.LLC),
		itlb: NewTLB(cfg.ITLB),
		dtlb: NewTLB(cfg.DTLB),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// ResetStats clears every statistic counter and the DRAM channel clock
// while keeping all cache/TLB *content* — used at the end of a
// functional-warming phase so measured statistics cover only the
// detailed-simulation window.
func (h *Hierarchy) ResetStats() {
	for _, l := range []*Level{h.l1i, h.l1d, h.l2, h.llc} {
		l.Stats = LevelStats{}
	}
	if h.itlb != nil {
		h.itlb.Stats = LevelStats{}
	}
	if h.dtlb != nil {
		h.dtlb.Stats = LevelStats{}
	}
	h.MemAccesses = 0
	h.WrongMemAccesses = 0
	h.Prefetches = 0
	h.MemQueueCycles = 0
	h.memNextFree = 0
}

// L1I returns the instruction cache level (for stats and tests).
func (h *Hierarchy) L1I() *Level { return h.l1i }

// L1D returns the data cache level.
func (h *Hierarchy) L1D() *Level { return h.l1d }

// L2 returns the unified second level.
func (h *Hierarchy) L2() *Level { return h.l2 }

// LLC returns the last-level cache slice.
func (h *Hierarchy) LLC() *Level { return h.llc }

// ITLB returns the instruction TLB (nil when disabled).
func (h *Hierarchy) ITLB() *TLB { return h.itlb }

// DTLB returns the data TLB (nil when disabled).
func (h *Hierarchy) DTLB() *TLB { return h.dtlb }

func record(l *Level, wrongPath, miss bool) {
	s := &l.Stats.Correct
	if wrongPath {
		s = &l.Stats.Wrong
	}
	s.Accesses++
	if miss {
		s.Misses++
	}
}

// memAccess charges one DRAM line transfer starting no earlier than
// cycle at, honoring the channel bandwidth limit, and returns the
// total DRAM latency including any queueing delay.
func (h *Hierarchy) memAccess(at uint64, wrongPath bool) int {
	h.MemAccesses++
	if wrongPath {
		h.WrongMemAccesses++
	}
	lat := h.cfg.MemLatency
	if h.cfg.MemGapCycles > 0 {
		start := at
		if h.memNextFree > start {
			start = h.memNextFree
			queued := start - at
			h.MemQueueCycles += queued
			lat += int(queued)
		}
		h.memNextFree = start + uint64(h.cfg.MemGapCycles)
	}
	return lat
}

// accessL2Down looks up L2 then LLC then memory, filling on the way
// back. It returns the additional latency beyond the L1 miss itself.
// at is the cycle the L2 request is issued (for bandwidth accounting).
func (h *Hierarchy) accessL2Down(addr uint64, at uint64, write, wrongPath bool) int {
	l2Hit := h.l2.lookup(addr, write)
	record(h.l2, wrongPath, !l2Hit)
	if l2Hit {
		return h.l2.cfg.HitLatency
	}
	llcHit := h.llc.lookup(addr, write)
	record(h.llc, wrongPath, !llcHit)
	lat := h.llc.cfg.HitLatency
	if !llcHit {
		lat += h.memAccess(at+uint64(lat), wrongPath)
		if _, dirty, had := h.llc.fill(addr, false); had && dirty {
			h.llc.Stats.Writebacks++
		}
	}
	if _, dirty, had := h.l2.fill(addr, write); had && dirty {
		h.l2.Stats.Writebacks++
	}
	if h.cfg.NextLinePrefetch {
		next := addr + uint64(h.l2.cfg.LineBytes)
		if !h.l2.Contains(next) {
			h.Prefetches++
			if !h.llc.Contains(next) {
				// Prefetches that miss the LLC consume DRAM bandwidth
				// but add no latency to the triggering demand miss.
				h.memAccess(at+uint64(lat), wrongPath)
				h.llc.fill(next, false)
			}
			h.l2.fill(next, false)
		}
	}
	return lat
}

// AccessI performs an instruction-fetch access for pc at the given
// cycle and returns the total fetch latency in cycles.
func (h *Hierarchy) AccessI(pc uint64, at uint64, wrongPath bool) int {
	var walk int
	if h.itlb != nil {
		walk = h.itlb.Access(pc, wrongPath)
	}
	if walk > 0 {
		return walk + h.AccessIPostTranslate(pc, at+uint64(walk), wrongPath)
	}
	return h.AccessIPostTranslate(pc, at, wrongPath)
}

// AccessIPostTranslate is the fetch access after address translation.
func (h *Hierarchy) AccessIPostTranslate(pc uint64, at uint64, wrongPath bool) int {
	hit := h.l1i.lookup(pc, false)
	record(h.l1i, wrongPath, !hit)
	if hit {
		return h.l1i.cfg.HitLatency
	}
	lat := h.l1i.cfg.HitLatency + h.accessL2Down(pc, at, false, wrongPath)
	if _, dirty, had := h.l1i.fill(pc, false); had && dirty {
		h.l1i.Stats.Writebacks++
	}
	return lat
}

// Load performs a data load for addr issued at the given cycle and
// returns the load-to-use latency in cycles.
func (h *Hierarchy) Load(addr uint64, at uint64, wrongPath bool) int {
	var walk int
	if h.dtlb != nil {
		walk = h.dtlb.Access(addr, wrongPath)
	}
	if walk > 0 {
		return walk + h.loadPostTranslate(addr, at+uint64(walk), wrongPath)
	}
	return h.loadPostTranslate(addr, at, wrongPath)
}

func (h *Hierarchy) loadPostTranslate(addr uint64, at uint64, wrongPath bool) int {
	hit := h.l1d.lookup(addr, false)
	record(h.l1d, wrongPath, !hit)
	if hit {
		return h.l1d.cfg.HitLatency
	}
	lat := h.l1d.cfg.HitLatency + h.accessL2Down(addr, at, false, wrongPath)
	if _, dirty, had := h.l1d.fill(addr, false); had && dirty {
		h.l1d.Stats.Writebacks++
	}
	return lat
}

// Store performs a committed data store for addr (write-allocate,
// write-back) at the given cycle. The returned latency is
// informational; committed stores drain from the store buffer off the
// critical path.
func (h *Hierarchy) Store(addr uint64, at uint64, wrongPath bool) int {
	var walk int
	if h.dtlb != nil {
		walk = h.dtlb.Access(addr, wrongPath)
	}
	hit := h.l1d.lookup(addr, true)
	record(h.l1d, wrongPath, !hit)
	if hit {
		return walk + h.l1d.cfg.HitLatency
	}
	lat := walk + h.l1d.cfg.HitLatency + h.accessL2Down(addr, at, true, wrongPath)
	if _, dirty, had := h.l1d.fill(addr, true); had && dirty {
		h.l1d.Stats.Writebacks++
	}
	return lat
}

// L1DHitLatency returns the L1D hit latency; the instruction
// reconstruction technique charges this for wrong-path memory
// operations whose addresses are unknown (the paper: "each memory
// operation is modeled as a cache hit").
func (h *Hierarchy) L1DHitLatency() int { return h.cfg.L1D.HitLatency }
