package frontend_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/frontend"
	"repro/internal/simerr"
)

// drainParallel consumes the stream to end-of-stream and returns the
// instruction count.
func drainParallel(p *frontend.Parallel) int {
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			return n
		}
		n++
	}
}

// TestParallelProducerPanicContained: a panic inside the producer
// goroutine must not crash the process; the consumer sees a clean
// end-of-stream and Err reports a typed ErrWorkerPanic carrying the
// stack.
func TestParallelProducerPanicContained(t *testing.T) {
	p := frontend.NewParallel(faultinject.PanicAt(&countProducer{max: 1000}, 500, "boom"), 64, 4)
	n := drainParallel(p)
	if n >= 500 {
		t.Errorf("delivered %d instructions past the panic point", n)
	}
	err := p.Err()
	if !errors.Is(err, simerr.ErrWorkerPanic) {
		t.Fatalf("Err() = %v, want ErrWorkerPanic class", err)
	}
	var f *simerr.Fault
	if !errors.As(err, &f) || len(f.Stack) == 0 {
		t.Error("recovered panic fault carries no stack")
	}
	// Close after the panic must not hang or panic.
	p.Close()
	p.Close()
}

// TestParallelCloseAfterPanicNoLeak: Close after a producer panic
// leaves no goroutine behind, and double-Close is safe.
func TestParallelCloseAfterPanicNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		p := frontend.NewParallel(faultinject.PanicAt(&countProducer{max: 100}, 1, "early"), 8, 2)
		p.Close()
		p.Close()
	}
	waitForGoroutines(t, before)
}

// TestParallelInterruptUnblocksFrozenProducer: the watchdog's abort
// path. A producer frozen inside the goroutine would normally wedge
// both the consumer (empty channel) and Close (wg.Wait); Interrupt
// releases the freeze and unblocks everything.
func TestParallelInterruptUnblocksFrozenProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	// batch=4, depth=1 bounds the producer's run-ahead to 8 Next calls
	// (one sent batch + one full buffer), so a freeze at call 6 engages
	// before the producer blocks on the channel.
	fz := faultinject.FreezeAt(&countProducer{max: 1000}, 6)
	p := frontend.NewParallel(fz, 4, 1)

	select {
	case <-fz.Frozen():
	case <-time.After(5 * time.Second):
		t.Fatal("freeze never engaged")
	}

	done := make(chan int)
	go func() { done <- drainParallel(p) }()

	p.Interrupt() // forwards to the Freezer and wakes the consumer
	select {
	case n := <-done:
		if n > 6 {
			t.Errorf("consumer got %d instructions, want <= 6", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer still blocked after Interrupt")
	}
	p.Close()
	waitForGoroutines(t, before)
}

// TestParallelCloseNoLeak: the plain lifecycle leaves no goroutines —
// both a fully drained stream and an early Close.
func TestParallelCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := frontend.NewParallel(&countProducer{max: 10_000}, 64, 2)
		if i%2 == 0 {
			drainParallel(p)
		} else {
			p.Next()
		}
		p.Close()
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (exiting goroutines unwind asynchronously after wg.Wait).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
