// Package frontend adapts the functional simulator to the decoupling
// queue: it executes the program instruction by instruction, emitting
// the dynamic records the performance simulator consumes.
//
// In wrong-path-emulation mode the frontend additionally keeps its own
// copy of the branch predictor — "the functional simulator contains a
// copy of the branch predictor model and initiates a list of wrong-path
// instructions when a misprediction is modeled" (§III-B). Because both
// predictor copies are updated by the same correct-path control
// instructions in program order using the same policy
// (branch.PredictAndUpdate), the frontend detects exactly the
// mispredictions the performance model will detect, checkpoints the
// functional state, emulates the predicted (wrong) path with stores
// suppressed, attaches the emulated records to the branch, and restores
// the checkpoint.
package frontend

import (
	"repro/internal/branch"
	"repro/internal/functional"
	"repro/internal/trace"
)

// Frontend drives a functional CPU and implements queue.Producer.
type Frontend struct {
	cpu *functional.CPU

	// pred is the wpemul-mode predictor copy; nil in the other modes.
	pred *branch.Unit
	// wpMaxLen caps emulated wrong paths (ROB + front-end buffers).
	wpMaxLen int

	// maxInsts stops production after that many correct-path
	// instructions (0 = unlimited).
	maxInsts uint64
	produced uint64

	// wpArena is the reusable backing store for emulated wrong paths:
	// each mispredict slices its records out of the current block, so
	// steady-state emulation allocates one block per ~wpArenaBlock
	// records instead of one slice per mispredict. Blocks are retired
	// (left to the GC) once full; the WP slices handed out keep their
	// block alive exactly as long as the queue holds them.
	wpArena []trace.DynInst
	wpOff   int

	err error

	// Statistics.
	wpEmulations uint64
	wpEmulated   uint64
}

// Option configures a Frontend.
type Option func(*Frontend)

// WithWrongPathEmulation enables functional wrong-path emulation using
// a predictor initialized from cfg (it must equal the core's predictor
// configuration) and the given wrong-path length cap.
func WithWrongPathEmulation(cfg branch.Config, wpMaxLen int) Option {
	return func(f *Frontend) {
		f.pred = branch.New(cfg)
		f.wpMaxLen = wpMaxLen
	}
}

// WithMaxInstructions caps the number of correct-path instructions
// produced.
func WithMaxInstructions(n uint64) Option {
	return func(f *Frontend) { f.maxInsts = n }
}

// New creates a frontend over the CPU.
func New(cpu *functional.CPU, opts ...Option) *Frontend {
	f := &Frontend{cpu: cpu}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

// Next produces the next correct-path dynamic instruction; ok is false
// at program end, the instruction cap, or on a functional error
// (retrievable via Err).
func (f *Frontend) Next() (trace.DynInst, bool) {
	var di trace.DynInst
	if !f.step(&di) {
		return trace.DynInst{}, false
	}
	return di, true
}

// NextBatch fills dst with successive correct-path records and returns
// how many were written; fewer than len(dst) — including 0 — means the
// stream ended. The record sequence is identical to repeated Next
// calls (queue.BatchProducer's contract).
func (f *Frontend) NextBatch(dst []trace.DynInst) int {
	n := 0
	for n < len(dst) && f.step(&dst[n]) {
		n++
	}
	return n
}

// step writes the next correct-path record into *di; false at program
// end, the instruction cap, or on a functional error.
func (f *Frontend) step(di *trace.DynInst) bool {
	if f.err != nil || f.cpu.Halted() {
		return false
	}
	if f.maxInsts > 0 && f.produced >= f.maxInsts {
		return false
	}
	d, err := f.cpu.Step()
	if err != nil {
		f.err = err
		return false
	}
	*di = d
	f.produced++

	if f.pred != nil && di.IsControl() {
		pred := f.pred.PredictAndUpdate(di.PC, di.In, di.Taken, di.NextPC)
		if pred.Mispredicted {
			f.wpEmulations++
			di.WP = f.emulateWP(pred.Target)
			f.wpEmulated += uint64(len(di.WP))
		}
	}
	return true
}

// wpArenaBlock is the arena growth granule in records; blocks are
// sized up to wpMaxLen when a single path could outgrow it.
const wpArenaBlock = 1 << 14

// emulateWP functionally emulates the wrong path from target into the
// arena and returns the records (nil when the path is empty). The
// emulated stream itself is unchanged from the per-mispredict
// allocation it replaces; only the backing store differs.
func (f *Frontend) emulateWP(target uint64) []trace.DynInst {
	if len(f.wpArena)-f.wpOff < f.wpMaxLen {
		sz := wpArenaBlock
		if sz < f.wpMaxLen {
			sz = f.wpMaxLen
		}
		f.wpArena = make([]trace.DynInst, sz)
		f.wpOff = 0
	}
	base := f.wpArena[f.wpOff:f.wpOff:len(f.wpArena)]
	wp := f.cpu.AppendWrongPath(base, target, f.wpMaxLen)
	if len(wp) == 0 {
		return nil
	}
	f.wpOff += len(wp)
	return wp
}

// Err returns the functional error that stopped production, if any.
func (f *Frontend) Err() error { return f.err }

// Produced returns the number of correct-path instructions emitted.
func (f *Frontend) Produced() uint64 { return f.produced }

// WPEmulations returns how many wrong paths were functionally emulated
// and how many wrong-path instructions that produced.
func (f *Frontend) WPEmulations() (paths, insts uint64) {
	return f.wpEmulations, f.wpEmulated
}

// CPU returns the underlying functional CPU.
func (f *Frontend) CPU() *functional.CPU { return f.cpu }
