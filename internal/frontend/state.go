package frontend

import (
	"fmt"

	"repro/internal/checkpoint"
)

// snapshotVersion stamps this package's snapshot section; bump it when
// the serialized field set changes (enforced by wplint's checkpoint
// analyzer).
const snapshotVersion = 1

// SaveState serializes the production cursor, the emulation statistics,
// the wpemul predictor copy (presence-flagged), and the functional CPU
// underneath. The arena (wpArena/wpOff) is an allocation detail, not
// state — emulated paths already handed to the queue were serialized
// with their records, and a fresh arena block produces identical bytes
// for the next one. A latched err is terminal (the run faulted), so a
// checkpointed frontend never carries one.
func (f *Frontend) SaveState(w *checkpoint.Writer) {
	w.Section("frontend/Frontend", snapshotVersion)
	w.Uint64(f.produced)
	w.Uint64(f.wpEmulations)
	w.Uint64(f.wpEmulated)
	w.Bool(f.pred != nil)
	if f.pred != nil {
		f.pred.SaveState(w)
	}
	f.cpu.SaveState(w)
}

// RestoreState overwrites the frontend state with the snapshot. The
// receiver must be built (New) with the same options: a wpemul/non-
// wpemul mismatch is a configuration error, surfaced as a typed decode
// failure so resume falls back to a fresh run instead of diverging.
func (f *Frontend) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("frontend/Frontend", snapshotVersion); err != nil {
		return err
	}
	f.produced = r.Uint64()
	f.wpEmulations = r.Uint64()
	f.wpEmulated = r.Uint64()
	hasPred := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if hasPred != (f.pred != nil) {
		return fmt.Errorf("frontend: snapshot wpemul=%v, configuration wpemul=%v", hasPred, f.pred != nil)
	}
	if f.pred != nil {
		if err := f.pred.RestoreState(r); err != nil {
			return err
		}
	}
	return f.cpu.RestoreState(r)
}
