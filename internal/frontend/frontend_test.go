package frontend_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/branch"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/mem"
)

const loopSrc = `
    li   t0, 100
    li   s0, 0x10000
loop:
    ld   t1, 0(s0)
    beq  t1, zero, even
    addi t2, t2, 1
even:
    addi s0, s0, 8
    addi t0, t0, -1
    bnez t0, loop
    li   a7, 0
    li   a0, 0
    ecall
`

func newCPU(t *testing.T) *functional.CPU {
	t.Helper()
	prog, err := asm.Assemble(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	for i := 0; i < 128; i++ {
		m.WriteUint64(0x10000+uint64(i)*8, uint64(i%3)) // mixed zero/non-zero
	}
	return functional.New(prog, m, 0)
}

func TestProducesAllInstructions(t *testing.T) {
	fe := frontend.New(newCPU(t))
	n := 0
	var sawExit bool
	for {
		di, ok := fe.Next()
		if !ok {
			break
		}
		n++
		if di.Exit {
			sawExit = true
		}
	}
	if !sawExit {
		t.Error("exit instruction not produced")
	}
	if uint64(n) != fe.Produced() {
		t.Errorf("count mismatch: %d vs %d", n, fe.Produced())
	}
	if fe.Err() != nil {
		t.Errorf("unexpected error: %v", fe.Err())
	}
	// Idempotent after end.
	if _, ok := fe.Next(); ok {
		t.Error("Next after end succeeded")
	}
}

func TestMaxInstructionsCap(t *testing.T) {
	fe := frontend.New(newCPU(t), frontend.WithMaxInstructions(10))
	n := 0
	for {
		if _, ok := fe.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("produced %d, want 10", n)
	}
}

func TestWrongPathEmulationAttachesStreams(t *testing.T) {
	cfg := branch.DefaultConfig()
	fe := frontend.New(newCPU(t), frontend.WithWrongPathEmulation(cfg, 64))

	// Mirror predictor: must detect the same mispredictions.
	mirror := branch.New(cfg)
	var mirrorMisses, attached int
	for {
		di, ok := fe.Next()
		if !ok {
			break
		}
		if di.IsControl() {
			p := mirror.PredictAndUpdate(di.PC, di.In, di.Taken, di.NextPC)
			if p.Mispredicted {
				mirrorMisses++
			}
			if di.WP != nil {
				attached++
				if !p.Mispredicted {
					t.Fatalf("WP attached to correctly-predicted branch at %#x", di.PC)
				}
				for i := range di.WP {
					if !di.WP[i].WrongPath {
						t.Fatal("attached stream not marked wrong-path")
					}
					if len(di.WP) > 64 {
						t.Fatal("attached stream exceeds cap")
					}
				}
				// The wrong path starts at the predicted target.
				if di.WP[0].PC != p.Target {
					t.Fatalf("WP starts at %#x, predicted target %#x", di.WP[0].PC, p.Target)
				}
			}
		} else if di.WP != nil {
			t.Fatal("WP attached to non-control instruction")
		}
	}
	paths, insts := fe.WPEmulations()
	if paths == 0 || insts == 0 {
		t.Fatal("no wrong paths emulated")
	}
	if int(paths) != mirrorMisses {
		t.Errorf("frontend emulated %d paths, mirror predictor saw %d mispredicts", paths, mirrorMisses)
	}
	if attached > mirrorMisses {
		t.Errorf("attached %d streams for %d mispredicts", attached, mirrorMisses)
	}
}

func TestNoEmulationWithoutOption(t *testing.T) {
	fe := frontend.New(newCPU(t))
	for {
		di, ok := fe.Next()
		if !ok {
			break
		}
		if di.WP != nil {
			t.Fatal("wrong path attached without emulation option")
		}
	}
	if paths, _ := fe.WPEmulations(); paths != 0 {
		t.Error("emulation counted without option")
	}
}

func TestFrontendSurfacesFunctionalErrors(t *testing.T) {
	// A program that runs off its end.
	prog := asm.MustAssemble("nop")
	fe := frontend.New(functional.New(prog, mem.New(), 0))
	if _, ok := fe.Next(); !ok {
		t.Fatal("first instruction failed")
	}
	if _, ok := fe.Next(); ok {
		t.Fatal("instruction past program end produced")
	}
	if fe.Err() == nil {
		t.Error("functional error not surfaced")
	}
}
