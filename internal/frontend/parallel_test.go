package frontend_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/frontend"
	"repro/internal/trace"
)

type countProducer struct {
	n   int
	max int
}

func (p *countProducer) Next() (trace.DynInst, bool) {
	if p.n >= p.max {
		return trace.DynInst{}, false
	}
	d := trace.DynInst{Seq: uint64(p.n)}
	p.n++
	return d, true
}

func TestParallelDeliversEverythingInOrder(t *testing.T) {
	for _, total := range []int{0, 1, 255, 256, 257, 5000} {
		p := frontend.NewParallel(&countProducer{max: total}, 64, 4)
		for i := 0; i < total; i++ {
			d, ok := p.Next()
			if !ok {
				t.Fatalf("total=%d: stream ended at %d", total, i)
			}
			if d.Seq != uint64(i) {
				t.Fatalf("total=%d: out of order at %d: got %d", total, i, d.Seq)
			}
		}
		if _, ok := p.Next(); ok {
			t.Fatalf("total=%d: extra instruction", total)
		}
		// Next after EOF stays false.
		if _, ok := p.Next(); ok {
			t.Fatal("Next after EOF succeeded")
		}
		p.Close()
	}
}

func TestParallelCloseEarly(t *testing.T) {
	// A producer far larger than the channel capacity: Close must
	// unblock and stop the goroutine even though the consumer quit
	// early.
	p := frontend.NewParallel(&countProducer{max: 1_000_000}, 64, 2)
	for i := 0; i < 10; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatal("early end")
		}
	}
	p.Close()
	if _, ok := p.Next(); ok {
		t.Error("Next after Close succeeded")
	}
	// Close is idempotent.
	p.Close()
}

// TestParallelCancelNoLeak is the goroutine-leak regression test for
// the consumer-stops-without-Close hazard: the producer goroutine sits
// blocked on a full channel, the consumer abandons it (no Close — the
// unwinding path a cancelled sweep cell takes), and the run context is
// the only stop signal. The goroutine must exit.
func TestParallelCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	p := frontend.NewParallelContext(ctx, &countProducer{max: 1_000_000}, 64, 2)
	for i := 0; i < 10; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatal("early end")
		}
	}
	// Abandon the consumer side entirely; cancellation alone must
	// unblock the producer.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("producer goroutine leaked after cancellation: %d goroutines, started with %d",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
	// The consumer side also observes cancellation instead of blocking.
	drained := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		if drained++; drained > 64*2+64 {
			t.Fatal("consumer kept receiving after cancellation beyond buffered batches")
		}
	}
}

func TestParallelDefaults(t *testing.T) {
	p := frontend.NewParallel(&countProducer{max: 10}, 0, 0)
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("delivered %d, want 10", n)
	}
	p.Close()
}

func TestParallelMatchesSequential(t *testing.T) {
	// The parallel wrapper must deliver exactly the frontend's stream.
	seqFE := frontend.New(newCPU(t))
	var want []trace.DynInst
	for {
		d, ok := seqFE.Next()
		if !ok {
			break
		}
		want = append(want, d)
	}

	par := frontend.NewParallel(frontend.New(newCPU(t)), 32, 4)
	defer par.Close()
	for i := range want {
		got, ok := par.Next()
		if !ok {
			t.Fatalf("parallel stream ended at %d/%d", i, len(want))
		}
		if got.Seq != want[i].Seq || got.PC != want[i].PC || got.NextPC != want[i].NextPC {
			t.Fatalf("parallel diverges at %d: %+v vs %+v", i, got, want[i])
		}
	}
	if _, ok := par.Next(); ok {
		t.Error("parallel stream longer than sequential")
	}
}
