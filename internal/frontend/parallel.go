package frontend

import (
	"sync"

	"repro/internal/trace"
)

// Parallel runs a producer (typically a *Frontend) in its own
// goroutine, handing instruction batches to the consumer through a
// buffered channel. This realizes the decoupling benefit the paper
// attributes to functional-first simulation: "the decoupling of the
// functional and performance simulator enables them to run in
// parallel", unlike integrated simulation's de-facto sequential
// emulate-then-time loop.
//
// The produced instruction sequence — and therefore every simulation
// statistic — is bit-identical to the synchronous mode; only host
// wall-clock time changes.
type Parallel struct {
	ch   chan []trace.DynInst
	stop chan struct{}
	wg   sync.WaitGroup

	cur []trace.DynInst
	idx int
	eof bool
}

// DefaultBatch is the default producer batch size: large enough to
// amortize channel synchronization, small enough to keep the
// performance simulator from stalling at start-up.
const DefaultBatch = 256

// DefaultDepth is the default channel depth in batches. Depth × batch
// bounds the functional simulator's run-ahead, playing the role of the
// paper's "tens up to thousands" of queued instructions.
const DefaultDepth = 16

// NewParallel starts the producer goroutine. Close must be called when
// the consumer is done (sim.Run does this), otherwise the goroutine
// leaks blocked on a full channel.
func NewParallel(src interface {
	Next() (trace.DynInst, bool)
}, batch, depth int) *Parallel {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	p := &Parallel{
		ch:   make(chan []trace.DynInst, depth),
		stop: make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.ch)
		buf := make([]trace.DynInst, 0, batch)
		for {
			di, ok := src.Next()
			if ok {
				buf = append(buf, di)
			}
			if len(buf) == batch || (!ok && len(buf) > 0) {
				select {
				case p.ch <- buf:
					buf = make([]trace.DynInst, 0, batch)
				case <-p.stop:
					return
				}
			}
			if !ok {
				return
			}
		}
	}()
	return p
}

// Next implements queue.Producer from the consumer side.
func (p *Parallel) Next() (trace.DynInst, bool) {
	for p.idx >= len(p.cur) {
		if p.eof {
			return trace.DynInst{}, false
		}
		batch, ok := <-p.ch
		if !ok {
			p.eof = true
			return trace.DynInst{}, false
		}
		p.cur, p.idx = batch, 0
	}
	di := p.cur[p.idx]
	p.idx++
	return di, true
}

// Close stops the producer goroutine and waits for it to exit. It is
// safe to call after the producer has already finished.
func (p *Parallel) Close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	// Drain so a producer blocked on send can observe stop/finish.
	for range p.ch {
	}
	p.wg.Wait()
	p.cur, p.idx = nil, 0
	p.eof = true
}
