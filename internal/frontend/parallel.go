package frontend

import (
	"context"
	"runtime/debug"
	"sync"

	"repro/internal/simerr"
	"repro/internal/trace"
)

// Parallel runs a producer (typically a *Frontend) in its own
// goroutine, handing instruction batches to the consumer through a
// buffered channel. This realizes the decoupling benefit the paper
// attributes to functional-first simulation: "the decoupling of the
// functional and performance simulator enables them to run in
// parallel", unlike integrated simulation's de-facto sequential
// emulate-then-time loop.
//
// The produced instruction sequence — and therefore every simulation
// statistic — is bit-identical to the synchronous mode; only host
// wall-clock time changes.
//
// Fault containment: a panic inside the wrapped producer is recovered
// in the goroutine, surfaced as a typed simerr.ErrWorkerPanic fault via
// Err, and the stream ends cleanly — the consumer's process never
// crashes. Interrupt unblocks both sides without waiting for the
// producer (the stall watchdog's abort path); Close is idempotent and
// safe after a producer panic.
type Parallel struct {
	src      interface{ Next() (trace.DynInst, bool) }
	ch       chan []trace.DynInst
	stop     chan struct{}
	done     <-chan struct{} // run context's Done; nil = never fires
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu  sync.Mutex
	err error

	cur []trace.DynInst
	idx int
	eof bool
}

// DefaultBatch is the default producer batch size: large enough to
// amortize channel synchronization, small enough to keep the
// performance simulator from stalling at start-up.
const DefaultBatch = 256

// DefaultDepth is the default channel depth in batches. Depth × batch
// bounds the functional simulator's run-ahead, playing the role of the
// paper's "tens up to thousands" of queued instructions.
const DefaultDepth = 16

// NewParallel starts the producer goroutine. Close must be called when
// the consumer is done (sim.Run does this), otherwise the goroutine
// leaks blocked on a full channel. NewParallelContext removes that
// footgun for cancellable runs.
func NewParallel(src interface {
	Next() (trace.DynInst, bool)
}, batch, depth int) *Parallel {
	return NewParallelContext(context.Background(), src, batch, depth)
}

// NewParallelContext is NewParallel bound to a run context: every
// channel wait — producer sends and consumer receives alike — also
// selects on ctx.Done, so a consumer that stops without calling Close
// (a panic unwinding past the simulation loop, a canceled sweep cell)
// cannot strand the producer goroutine blocked on a full channel.
// Close is still required for a prompt, waited teardown; the context is
// the backstop that turns a missed Close from a permanent goroutine
// leak into an eventual exit. A nil ctx behaves like
// context.Background (no backstop).
func NewParallelContext(ctx context.Context, src interface {
	Next() (trace.DynInst, bool)
}, batch, depth int) *Parallel {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	p := &Parallel{
		src:  src,
		ch:   make(chan []trace.DynInst, depth),
		stop: make(chan struct{}),
	}
	if ctx != nil {
		p.done = ctx.Done()
	}
	p.wg.Add(1)
	go func() {
		// Deferred in reverse order: the recover runs first (capturing a
		// producer panic and recording the fault), then the channel close
		// publishes end-of-stream — the close happens-after the fault is
		// stored, so a consumer that saw EOF reads a settled Err.
		defer p.wg.Done()
		defer close(p.ch)
		defer func() {
			if rec := recover(); rec != nil {
				p.setErr(simerr.WorkerPanic("parallel frontend producer", rec, debug.Stack()))
			}
		}()
		if bs, ok := src.(interface {
			NextBatch([]trace.DynInst) int
		}); ok {
			// Batched fill: one producer call per channel batch instead of
			// one per record. 0 written means end of stream.
			for {
				buf := make([]trace.DynInst, batch)
				n := bs.NextBatch(buf)
				if n == 0 {
					return
				}
				select {
				case p.ch <- buf[:n]:
				case <-p.stop:
					return
				case <-p.done:
					return
				}
			}
		}
		buf := make([]trace.DynInst, 0, batch)
		for {
			di, ok := src.Next()
			if ok {
				buf = append(buf, di)
			}
			if len(buf) == batch || (!ok && len(buf) > 0) {
				select {
				case p.ch <- buf:
					buf = make([]trace.DynInst, 0, batch)
				case <-p.stop:
					return
				case <-p.done:
					return
				}
			}
			if !ok {
				return
			}
		}
	}()
	return p
}

func (p *Parallel) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Err reports a fault that ended the stream early — currently only a
// recovered producer panic (errors.Is(err, simerr.ErrWorkerPanic)).
// It is meaningful once Next has reported end-of-stream or Close has
// returned.
func (p *Parallel) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Next implements queue.Producer from the consumer side. It also
// returns end-of-stream when Interrupt has fired, so a consumer never
// stays blocked on a producer that has stopped making progress.
func (p *Parallel) Next() (trace.DynInst, bool) {
	for p.idx >= len(p.cur) {
		if p.eof {
			return trace.DynInst{}, false
		}
		select {
		case batch, ok := <-p.ch:
			if !ok {
				p.eof = true
				return trace.DynInst{}, false
			}
			p.cur, p.idx = batch, 0
		case <-p.stop:
			p.eof = true
			return trace.DynInst{}, false
		case <-p.done:
			p.eof = true
			return trace.DynInst{}, false
		}
	}
	di := p.cur[p.idx]
	p.idx++
	return di, true
}

// NextBatch implements queue.BatchProducer from the consumer side: it
// fills dst from the current channel batch, blocking for the next one
// while dst has room, and returns short only at end-of-stream — the
// same record sequence (and blocking behavior) as a Next loop.
func (p *Parallel) NextBatch(dst []trace.DynInst) int {
	n := 0
	for n < len(dst) {
		for p.idx >= len(p.cur) {
			if p.eof {
				return n
			}
			select {
			case batch, ok := <-p.ch:
				if !ok {
					p.eof = true
					return n
				}
				p.cur, p.idx = batch, 0
			case <-p.stop:
				p.eof = true
				return n
			case <-p.done:
				p.eof = true
				return n
			}
		}
		k := copy(dst[n:], p.cur[p.idx:])
		p.idx += k
		n += k
	}
	return n
}

// Interrupt asks both sides of the channel to stop: the producer's next
// send aborts, a consumer blocked in Next unblocks with end-of-stream,
// and a wrapped producer that itself supports Interrupt (a blocked
// source) is released. It is idempotent, safe from any goroutine, and
// does not wait — the stall watchdog calls it from outside the
// simulation goroutine.
func (p *Parallel) Interrupt() {
	p.stopOnce.Do(func() { close(p.stop) })
	if i, ok := p.src.(interface{ Interrupt() }); ok {
		i.Interrupt()
	}
}

// Close stops the producer goroutine and waits for it to exit. It is
// idempotent and safe to call after the producer has already finished
// or panicked (the recovered panic is reported by Err, and the drain
// below cannot hang because the producer's goroutine has exited).
// A producer goroutine blocked *inside* an uninterruptible src.Next
// would make the wg.Wait below hang; blocked sources must implement
// Interrupt (faultinject.Freezer does) to be releasable.
func (p *Parallel) Close() {
	p.Interrupt()
	// Drain so a producer blocked on send can observe stop/finish. After
	// the goroutine exits the channel is closed, so ranging terminates —
	// including on a second Close.
	for range p.ch {
	}
	p.wg.Wait()
	p.cur, p.idx = nil, 0
	p.eof = true
}
