package tracefile_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/simerr"
	"repro/internal/tracefile"
)

// FuzzReader feeds arbitrary bytes to the trace decoder. The invariant
// is the fault-tolerance contract the replay pipeline relies on: the
// reader never panics and never hangs, NewReader fails only with
// ErrBadMagic or an I/O wrap, and every mid-stream decode failure is a
// typed simerr.ErrTraceCorrupt — the class the degradation ladder and
// the sweep annotations dispatch on. A silently wrong replay (untyped
// error, or records past the corruption point) is the bug this hunts.
func FuzzReader(f *testing.F) {
	// Seed with real shapes: a synthetic trace covering every record
	// kind, its mutations from the deterministic corrupters, and a few
	// framing-edge cases.
	valid := writeSyntheticTrace(f)
	f.Add(valid)
	f.Add(faultinject.Truncate(valid, int64(len(valid)/2)))
	f.Add(faultinject.FlipByte(valid, 8, 0x80))
	f.Add(faultinject.FlipByte(valid, 9, 0))
	f.Add(faultinject.CorruptTail(valid, 1))
	f.Add([]byte("WPTRACE1"))
	f.Add([]byte("WPTRACE0"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := tracefile.NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, tracefile.ErrBadMagic) &&
				!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("NewReader: untyped error %v", err)
			}
			return
		}
		// Each record consumes at least one byte, so len(data) bounds the
		// stream; the cap turns a decoder hang into a test failure.
		for n := 0; ; n++ {
			if _, ok := r.Next(); !ok {
				break
			}
			if n > len(data) {
				t.Fatal("reader produced more records than input bytes")
			}
		}
		if err := r.Err(); err != nil && !errors.Is(err, simerr.ErrTraceCorrupt) {
			t.Fatalf("Err() = %v, want nil or ErrTraceCorrupt class", err)
		}
	})
}
