package tracefile_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/tracefile"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

func recordBFS(t *testing.T) *bytes.Buffer {
	t.Helper()
	inst := gap.BFS(gap.TestParams()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	fe := frontend.New(cpu)
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tracefile.Record(fe, w)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	return &buf
}

func TestRoundTripMatchesLiveStream(t *testing.T) {
	buf := recordBFS(t)

	// Re-generate the live stream and compare record by record.
	inst := gap.BFS(gap.TestParams()).MustBuild()
	fe := frontend.New(functional.New(inst.Prog, inst.Mem, inst.StackTop))
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		want, okW := fe.Next()
		got, okG := r.Next()
		if okW != okG {
			t.Fatalf("record %d: live ok=%v, trace ok=%v", i, okW, okG)
		}
		if !okW {
			break
		}
		if got.PC != want.PC || got.In != want.In || got.MemAddr != want.MemAddr ||
			got.HasAddr != want.HasAddr || got.Taken != want.Taken ||
			got.NextPC != want.NextPC || got.Exit != want.Exit {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestTraceSimulationMatchesLive: the trace frontend must be
// performance-transparent — every technique it supports (everything but
// wpemul, which the capability check filters out) must project the
// exact cycles, instruction count, IPC and wrong-path activity of the
// live functional frontend.
func TestTraceSimulationMatchesLive(t *testing.T) {
	buf := recordBFS(t)
	tested := 0
	for _, k := range wrongpath.Kinds() {
		if k == wrongpath.WPEmul { // not replayable: see TestTraceRejectsWPEmul
			continue
		}
		tested++
		live, err := sim.Run(sim.Default(k), gap.BFS(gap.TestParams()).MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		replay, err := sim.RunTrace(sim.Default(k), r)
		if err != nil {
			t.Fatal(err)
		}
		if live.Core.Cycles != replay.Core.Cycles || live.Core.Instructions != replay.Core.Instructions {
			t.Errorf("%v: trace replay (%d cycles) != live (%d cycles)",
				k, replay.Core.Cycles, live.Core.Cycles)
		}
		if live.IPC() != replay.IPC() {
			t.Errorf("%v: trace replay IPC %.6f != live IPC %.6f", k, replay.IPC(), live.IPC())
		}
		if live.Core.WPFetched != replay.Core.WPFetched {
			t.Errorf("%v: wrong-path divergence: %d vs %d", k, replay.Core.WPFetched, live.Core.WPFetched)
		}
	}
	if want := len(wrongpath.Kinds()) - 1; tested != want {
		t.Fatalf("covered %d kinds, want %d", tested, want)
	}
}

func TestTraceRejectsWPEmul(t *testing.T) {
	buf := recordBFS(t)
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunTrace(sim.Default(wrongpath.WPEmul), r); err == nil {
		t.Fatal("trace replay accepted wpemul — the paper says it cannot work")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := tracefile.NewReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, tracefile.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

// drain replays every record it can and returns the count and Err().
func drain(t *testing.T, data []byte) (int, error) {
	t.Helper()
	r, err := tracefile.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	return n, r.Err()
}

func TestTruncatedTrace(t *testing.T) {
	buf := recordBFS(t)
	cut := buf.Bytes()[:buf.Len()/2]
	n, err := drain(t, cut)
	if n == 0 {
		t.Error("no records before truncation point")
	}
	if err == nil {
		t.Error("truncation not reported")
	}
	if !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("truncation err = %v, want ErrTraceCorrupt class", err)
	}
}

// writeSyntheticTrace writes a small trace exercising every record
// shape: plain ALU, memory with address, taken branch with target and
// redirected next PC, and the exit record. (testing.TB so the fuzz
// targets can seed their corpus with it.)
func writeSyntheticTrace(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x1000)
	for i := 0; i < 8; i++ {
		recs := []trace.DynInst{
			{PC: pc, In: isa.Inst{Op: isa.OpAddi, Rd: 5, Rs1: 6, Rs2: isa.RegNone, Rs3: isa.RegNone, Imm: int64(i) - 3}, NextPC: pc + 4},
			{PC: pc + 4, In: isa.Inst{Op: isa.OpLd, Rd: 7, Rs1: 5, Rs2: isa.RegNone, Rs3: isa.RegNone}, HasAddr: true, MemAddr: 0x8000 + uint64(i)*8, NextPC: pc + 8},
			{PC: pc + 8, In: isa.Inst{Op: isa.OpBeq, Rd: isa.RegNone, Rs1: 7, Rs2: 0, Rs3: isa.RegNone, Target: pc + 64}, Taken: true, NextPC: pc + 64},
		}
		for j := range recs {
			if err := w.Append(&recs[j]); err != nil {
				t.Fatal(err)
			}
		}
		pc += 64
	}
	exit := trace.DynInst{PC: pc, In: isa.Inst{Op: isa.OpEcall, Rd: isa.RegNone, Rs1: isa.RegNone, Rs2: isa.RegNone, Rs3: isa.RegNone}, Exit: true, NextPC: pc + 4}
	if err := w.Append(&exit); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncationEverywhereIsTypedOrClean cuts a trace at every prefix
// length: each cut must either end cleanly on a record boundary (Err()
// nil) or surface a typed ErrTraceCorrupt — never an untyped error, and
// never a hang or panic.
func TestTruncationEverywhereIsTypedOrClean(t *testing.T) {
	data := writeSyntheticTrace(t)
	full, err := drain(t, data)
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for cut := 8; cut < len(data); cut++ { // 8 = len(magic)
		n, err := drain(t, faultinject.Truncate(data, int64(cut)))
		if err == nil {
			clean++
			continue
		}
		if !errors.Is(err, simerr.ErrTraceCorrupt) {
			t.Fatalf("cut at %d: err = %v, want ErrTraceCorrupt class", cut, err)
		}
		if n > full {
			t.Fatalf("cut at %d: produced %d records from a %d-record trace", cut, n, full)
		}
	}
	if clean == 0 {
		t.Error("no cut landed on a record boundary — suspicious sampling")
	}
}

// TestBitFlippedTrace flips single bytes in record headers: undefined
// flag bits and unknown opcodes must both decode to a typed
// ErrTraceCorrupt rather than a silently wrong replay.
func TestBitFlippedTrace(t *testing.T) {
	buf := recordBFS(t)
	data := buf.Bytes()

	// Byte 8 is the first record's flags byte: set an undefined bit.
	flags := faultinject.FlipByte(data, 8, 0x80)
	if _, err := drain(t, flags); !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("undefined flag bit: err = %v, want ErrTraceCorrupt class", err)
	}

	// Byte 9 is the first record's opcode: 0xFF is not an opcode.
	op := faultinject.FlipByte(data, 9, 0)
	if n, err := drain(t, op); !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("bad opcode: err = %v, want ErrTraceCorrupt class", err)
	} else if n != 0 {
		t.Errorf("bad opcode in record 0 still produced %d records", n)
	}
}

// TestCorruptTailKeepsPrefix: the sweep-level fault shape — a trace
// with a damaged tail must replay a non-empty valid prefix and then
// report typed corruption (or, if the flip happens to decode legally,
// at least not crash).
func TestCorruptTailKeepsPrefix(t *testing.T) {
	buf := recordBFS(t)
	data := buf.Bytes()
	full, err := drain(t, data)
	if err != nil {
		t.Fatal(err)
	}
	n, err := drain(t, faultinject.CorruptTail(data, 1))
	if n == 0 {
		t.Error("corrupt tail destroyed the valid prefix")
	}
	if err != nil && !errors.Is(err, simerr.ErrTraceCorrupt) {
		t.Errorf("corrupt tail err = %v, want ErrTraceCorrupt class", err)
	}
	if err == nil && n > full {
		t.Errorf("corrupt tail produced %d records from a %d-record trace", n, full)
	}
}

func TestWriterStripsWPStreams(t *testing.T) {
	// Record through a wpemul frontend (records carry WP streams) and
	// check replay still works and carries none.
	inst := gap.BFS(gap.TestParams()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	cfg := sim.Default(wrongpath.WPEmul)
	fe := frontend.New(cpu, frontend.WithWrongPathEmulation(cfg.Core.BranchPred, cfg.Core.WPMaxLen()))
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.Record(fe, w); err != nil {
		t.Fatal(err)
	}
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		di, ok := r.Next()
		if !ok {
			break
		}
		if di.WP != nil {
			t.Fatal("trace replay produced an attached wrong-path stream")
		}
	}
}
