package tracefile_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/frontend"
	"repro/internal/functional"
	"repro/internal/sim"
	"repro/internal/tracefile"
	"repro/internal/workloads/gap"
	"repro/internal/wrongpath"
)

func recordBFS(t *testing.T) *bytes.Buffer {
	t.Helper()
	inst := gap.BFS(gap.TestParams()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	fe := frontend.New(cpu)
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tracefile.Record(fe, w)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}
	return &buf
}

func TestRoundTripMatchesLiveStream(t *testing.T) {
	buf := recordBFS(t)

	// Re-generate the live stream and compare record by record.
	inst := gap.BFS(gap.TestParams()).MustBuild()
	fe := frontend.New(functional.New(inst.Prog, inst.Mem, inst.StackTop))
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		want, okW := fe.Next()
		got, okG := r.Next()
		if okW != okG {
			t.Fatalf("record %d: live ok=%v, trace ok=%v", i, okW, okG)
		}
		if !okW {
			break
		}
		if got.PC != want.PC || got.In != want.In || got.MemAddr != want.MemAddr ||
			got.HasAddr != want.HasAddr || got.Taken != want.Taken ||
			got.NextPC != want.NextPC || got.Exit != want.Exit {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// TestTraceSimulationMatchesLive: the trace frontend must be
// performance-transparent — every technique it supports (everything but
// wpemul, which the capability check filters out) must project the
// exact cycles, instruction count, IPC and wrong-path activity of the
// live functional frontend.
func TestTraceSimulationMatchesLive(t *testing.T) {
	buf := recordBFS(t)
	tested := 0
	for _, k := range wrongpath.Kinds() {
		if k == wrongpath.WPEmul { // not replayable: see TestTraceRejectsWPEmul
			continue
		}
		tested++
		live, err := sim.Run(sim.Default(k), gap.BFS(gap.TestParams()).MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		replay, err := sim.RunTrace(sim.Default(k), r)
		if err != nil {
			t.Fatal(err)
		}
		if live.Core.Cycles != replay.Core.Cycles || live.Core.Instructions != replay.Core.Instructions {
			t.Errorf("%v: trace replay (%d cycles) != live (%d cycles)",
				k, replay.Core.Cycles, live.Core.Cycles)
		}
		if live.IPC() != replay.IPC() {
			t.Errorf("%v: trace replay IPC %.6f != live IPC %.6f", k, replay.IPC(), live.IPC())
		}
		if live.Core.WPFetched != replay.Core.WPFetched {
			t.Errorf("%v: wrong-path divergence: %d vs %d", k, replay.Core.WPFetched, live.Core.WPFetched)
		}
	}
	if want := len(wrongpath.Kinds()) - 1; tested != want {
		t.Fatalf("covered %d kinds, want %d", tested, want)
	}
}

func TestTraceRejectsWPEmul(t *testing.T) {
	buf := recordBFS(t)
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunTrace(sim.Default(wrongpath.WPEmul), r); err == nil {
		t.Fatal("trace replay accepted wpemul — the paper says it cannot work")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := tracefile.NewReader(bytes.NewReader([]byte("NOTATRACE"))); !errors.Is(err, tracefile.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedTrace(t *testing.T) {
	buf := recordBFS(t)
	cut := buf.Bytes()[:buf.Len()/2]
	r, err := tracefile.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("no records before truncation point")
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestWriterStripsWPStreams(t *testing.T) {
	// Record through a wpemul frontend (records carry WP streams) and
	// check replay still works and carries none.
	inst := gap.BFS(gap.TestParams()).MustBuild()
	cpu := functional.New(inst.Prog, inst.Mem, inst.StackTop)
	cfg := sim.Default(wrongpath.WPEmul)
	fe := frontend.New(cpu, frontend.WithWrongPathEmulation(cfg.Core.BranchPred, cfg.Core.WPMaxLen()))
	var buf bytes.Buffer
	w, err := tracefile.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.Record(fe, w); err != nil {
		t.Fatal(err)
	}
	r, err := tracefile.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		di, ok := r.Next()
		if !ok {
			break
		}
		if di.WP != nil {
			t.Fatal("trace replay produced an attached wrong-path stream")
		}
	}
}
