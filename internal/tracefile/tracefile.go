// Package tracefile records and replays dynamic instruction streams —
// the third kind of functional frontend the paper lists ("a trace
// interpreter (for pre-recorded instruction traces)"). A recorded trace
// replays bit-identically through the performance simulator under the
// nowp, instrec, conv and convres techniques.
//
// The paper's §III-B limitation is enforced here: "a trace frontend
// cannot implement [functional wrong-path emulation], because the trace
// only contains correct-path instructions" — sim.RunTrace rejects
// wrongpath.WPEmul, and the writer strips any attached wrong-path
// streams.
//
// Format (little-endian, varint-based):
//
//	magic "WPTRACE1"
//	per record:
//	  flags byte (bit0 hasAddr, bit1 taken, bit2 exit, bit3 nextPC!=pc+4)
//	  op, rd, rs1, rs2, rs3 bytes
//	  pc delta (zigzag varint from previous record's pc)
//	  imm (zigzag varint), target (uvarint, control ops only)
//	  memAddr (uvarint, hasAddr only), nextPC (uvarint, flag bit3 only)
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/simerr"
	"repro/internal/trace"
)

var magic = []byte("WPTRACE1")

// ErrBadMagic is returned for streams that are not traces.
var ErrBadMagic = errors.New("tracefile: bad magic")

const (
	flagHasAddr = 1 << iota
	flagTaken
	flagExit
	flagNextPC
)

// Writer serializes dynamic instruction records.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	buf    []byte
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

func (w *Writer) varint(v int64) error {
	n := binary.PutVarint(w.buf, v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *Writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf, v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Append writes one record. Attached wrong-path streams (wpemul mode)
// are deliberately not representable in a trace and are dropped.
func (w *Writer) Append(di *trace.DynInst) error {
	var flags byte
	if di.HasAddr {
		flags |= flagHasAddr
	}
	if di.Taken {
		flags |= flagTaken
	}
	if di.Exit {
		flags |= flagExit
	}
	if di.NextPC != di.PC+isa.InstBytes {
		flags |= flagNextPC
	}
	hdr := []byte{flags, byte(di.In.Op), byte(di.In.Rd), byte(di.In.Rs1), byte(di.In.Rs2), byte(di.In.Rs3)}
	if _, err := w.w.Write(hdr); err != nil {
		return err
	}
	if err := w.varint(int64(di.PC - w.lastPC)); err != nil {
		return err
	}
	w.lastPC = di.PC
	if err := w.varint(di.In.Imm); err != nil {
		return err
	}
	if di.In.Op.IsControl() {
		if err := w.uvarint(di.In.Target); err != nil {
			return err
		}
	}
	if di.HasAddr {
		if err := w.uvarint(di.MemAddr); err != nil {
			return err
		}
	}
	if flags&flagNextPC != 0 {
		if err := w.uvarint(di.NextPC); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader replays a trace; it implements queue.Producer.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	seq    uint64
	err    error
	done   bool
}

// NewReader opens a trace stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("tracefile: reading magic: %w", err)
	}
	for i := range magic {
		if got[i] != magic[i] {
			return nil, ErrBadMagic
		}
	}
	return &Reader{r: br}, nil
}

// flagMask covers every flag bit the format defines; set bits above it
// can only come from corruption.
const flagMask = flagHasAddr | flagTaken | flagExit | flagNextPC

// validReg accepts architectural registers and the RegNone sentinel.
func validReg(r isa.Reg) bool { return r.Valid() || r == isa.RegNone }

// Next returns the next record; ok is false at end of trace or on a
// corrupt stream (check Err). Only a stream ending exactly on a record
// boundary is a clean end: a partial header, a mid-record EOF, a varint
// overflow, or a decoded field no writer could have produced (unknown
// opcode, out-of-range register, undefined flag bit) all surface an
// ErrTraceCorrupt fault via Err.
func (r *Reader) Next() (trace.DynInst, bool) {
	if r.done {
		return trace.DynInst{}, false
	}
	fail := func(err error) (trace.DynInst, bool) {
		r.done = true
		r.err = simerr.Corrupt("decoding trace record", r.seq, err)
		return trace.DynInst{}, false
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			// Clean end of trace: the stream stopped on a record boundary.
			r.done = true
			return trace.DynInst{}, false
		}
		return fail(err)
	}
	flags := hdr[0]
	di := trace.DynInst{
		Seq: r.seq,
		In: isa.Inst{
			Op: isa.Op(hdr[1]), Rd: isa.Reg(hdr[2]),
			Rs1: isa.Reg(hdr[3]), Rs2: isa.Reg(hdr[4]), Rs3: isa.Reg(hdr[5]),
		},
		HasAddr: flags&flagHasAddr != 0,
		Taken:   flags&flagTaken != 0,
		Exit:    flags&flagExit != 0,
	}
	if flags&^flagMask != 0 {
		return fail(fmt.Errorf("undefined flag bits %#02x", flags&^flagMask))
	}
	if !di.In.Op.Valid() {
		return fail(fmt.Errorf("unknown opcode %#02x", hdr[1]))
	}
	if !validReg(di.In.Rd) || !validReg(di.In.Rs1) || !validReg(di.In.Rs2) || !validReg(di.In.Rs3) {
		return fail(fmt.Errorf("out-of-range register in %v", hdr[2:6]))
	}
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		return fail(err)
	}
	di.PC = r.lastPC + uint64(delta)
	r.lastPC = di.PC
	if di.In.Imm, err = binary.ReadVarint(r.r); err != nil {
		return fail(err)
	}
	if di.In.Op.IsControl() {
		if di.In.Target, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
	}
	if di.HasAddr {
		if di.MemAddr, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
	}
	di.NextPC = di.PC + isa.InstBytes
	if flags&flagNextPC != 0 {
		if di.NextPC, err = binary.ReadUvarint(r.r); err != nil {
			return fail(err)
		}
	}
	r.seq++
	return di, true
}

// Err reports a stream corruption that ended replay early; it is nil
// after a clean end of trace. Corruption is typed: errors.Is(err,
// simerr.ErrTraceCorrupt) holds and the fault records the index of the
// record that failed to decode.
func (r *Reader) Err() error { return r.err }

// Pos returns the number of records decoded so far — the cursor a
// checkpoint serializes so a resume can Skip a fresh reader forward to
// the same position.
func (r *Reader) Pos() uint64 { return r.seq }

// Skip decodes and discards n records. It is the resume path's cursor
// restore: re-opening the trace and skipping to the snapshot's Pos
// leaves the reader bit-identical to the one that was checkpointed
// (decoding is stateful only through lastPC/seq, which Skip replays).
// A trace that ends — cleanly or corruptly — before n records is an
// error: the file does not match the snapshot.
func (r *Reader) Skip(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if _, ok := r.Next(); !ok {
			if r.err != nil {
				return r.err
			}
			return simerr.Corrupt("skipping to snapshot cursor", r.seq,
				fmt.Errorf("tracefile: trace ended at record %d, snapshot cursor is %d", r.seq, n))
		}
	}
	return nil
}

// Producer is the minimal instruction source interface (a structural
// copy of queue.Producer, avoiding the import cycle).
type Producer interface {
	Next() (trace.DynInst, bool)
}

// Record drains a producer into the writer and returns the record
// count. It flushes the writer.
func Record(src Producer, w *Writer) (uint64, error) {
	for {
		di, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Append(&di); err != nil {
			return w.Count(), err
		}
	}
	return w.Count(), w.Flush()
}
