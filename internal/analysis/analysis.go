// Package analysis is a stdlib-only static-analysis framework for this
// repository's simulator-specific invariants. It loads and type-checks
// the module's packages from source (go/parser + go/types, no external
// tooling) and runs a suite of analyzers that enforce the properties
// the reproduction's results depend on:
//
//   - determinism: simulation code must not depend on wall time,
//     global randomness, the environment, or map iteration order;
//   - exhaustive: switches over the ISA and policy enums must cover
//     every constant or declare an explicit default;
//   - checkpoint: functional checkpoints must be restored on every
//     return path;
//   - statpath: wrong-path-split statistic counters may only be
//     incremented by their approved accessor functions;
//   - panicfree: the fault-contained packages (sim, core, queue,
//     frontend, batch) must surface faults as typed simerr values, not
//     bare panics (escape hatch: same-line //wplint:allow-panic).
//
// The driver CLI is cmd/wplint. Analyzers report file:line:col
// diagnostics; a finding can be suppressed only with an explicit
// same-line directive
//
//	//wplint:allow <analyzer> -- <reason>
//
// which exists for the handful of allowlisted shims (e.g. the wall
// clock in internal/sim) — not for waving real violations through.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //wplint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	allow map[string]map[int]map[string]bool // file → line → analyzer set
	out   *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless the source line carries a
// matching //wplint:allow directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if lines, ok := p.allow[position.Filename]; ok {
		if names, ok := lines[position.Line]; ok && names[p.Analyzer.Name] {
			return
		}
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirectives scans a package's comments for //wplint:allow lines.
// A directive suppresses the named analyzer on the line it appears on
// and must carry a reason after " -- ".
func allowDirectives(pkg *Package) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//wplint:allow ")
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(rest, " -- ")
				name = strings.TrimSpace(name)
				pos := pkg.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					out[pos.Filename] = byLine
				}
				names := byLine[pos.Line]
				if names == nil {
					names = make(map[string]bool)
					byLine[pos.Line] = names
				}
				names[name] = true
			}
		}
	}
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Exhaustive, Checkpoint, StatPath, PanicFree}
}

// Run applies the analyzers to every package and returns the combined
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := allowDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, allow: allow, out: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// enclosingFunc returns the innermost function declaration of the file
// containing pos, or nil for package-level positions.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
