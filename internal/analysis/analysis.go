// Package analysis is a stdlib-only static-analysis framework for this
// repository's simulator-specific invariants. It loads and type-checks
// the module's packages from source (go/parser + go/types, no external
// tooling) and runs a suite of analyzers that enforce the properties
// the reproduction's results depend on:
//
//   - determinism: simulation code must not depend on wall time,
//     global randomness, the environment, or map iteration order;
//   - exhaustive: switches over the ISA and policy enums must cover
//     every constant or declare an explicit default;
//   - checkpoint: functional checkpoints must be restored on every
//     return path;
//   - statpath: wrong-path-split statistic counters may only be
//     incremented by their approved accessor functions;
//   - panicfree: the fault-contained packages (sim, core, queue,
//     frontend, batch) must surface faults as typed simerr values, not
//     bare panics (escape hatch: same-line //wplint:allow-panic);
//   - wpflow: interprocedural taint analysis proving that wrong-path
//     state, host wall-clock reads and recovered panic values never
//     reach committed architectural state or correct-path statistics
//     except through the approved accessor / Restore APIs (escape
//     hatch: same-line //wplint:flow -- <reason>).
//
// The driver CLI is cmd/wplint. Analyzers report file:line:col
// diagnostics; a finding can be suppressed only with an explicit
// same-line directive
//
//	//wplint:allow <analyzer> -- <reason>
//
// which exists for the handful of allowlisted shims (e.g. the wall
// clock in internal/sim) — not for waving real violations through.
// Several directives may share one comment; each must carry its own
// " -- " reason.
//
// Diagnostics carry a Severity and may attach machine-applicable
// SuggestedFixes; cmd/wplint applies them with -fix, renders SARIF
// 2.1.0 with -sarif, and ratchets pre-existing findings with
// -baseline.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Severity classifies how a finding is reported: an Error violates a
// correctness invariant outright, a Warning flags a flow that biases
// reported (host-side) numbers without corrupting simulated state, and
// Info is advisory. The zero value is SeverityError so existing
// analyzers that never set it keep failing the build.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarning
	SeverityInfo
)

// String returns the SARIF-compatible level name.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityInfo:
		return "note"
	default:
		return "error"
	}
}

// TextEdit is one splice of a suggested fix. Offsets are byte offsets
// into the named file's current content ([Offset, End) replaced by
// NewText), so edits apply without a FileSet.
type TextEdit struct {
	Filename string
	Offset   int
	End      int
	NewText  string
}

// SuggestedFix is a machine-applicable repair for a finding. Applying
// every edit of the fix must eliminate the finding without changing
// program behavior (wplint -fix refuses nothing: analyzers only attach
// fixes that hold that contract, e.g. inserting an explicitly-empty
// case clause for a missing enum constant).
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //wplint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	allow map[string]map[int]map[string]bool // file → line → analyzer set
	out   *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Severity defaults to SeverityError.
	Severity Severity
	// Fixes holds machine-applicable repairs, best first; wplint -fix
	// applies the first one.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	sev := ""
	if d.Severity != SeverityError {
		sev = " [" + d.Severity.String() + "]"
	}
	return fmt.Sprintf("%s:%d:%d: %s:%s %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, sev, d.Message)
}

// Reportf records a SeverityError diagnostic at pos unless the source
// line carries a matching //wplint:allow directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, Diagnostic{Message: fmt.Sprintf(format, args...)})
}

// Report records a diagnostic at pos, honoring same-line //wplint:allow
// directives. The diagnostic's Pos and Analyzer fields are filled in.
func (p *Pass) Report(pos token.Pos, d Diagnostic) {
	position := p.Pkg.Fset.Position(pos)
	if lines, ok := p.allow[position.Filename]; ok {
		if names, ok := lines[position.Line]; ok && names[p.Analyzer.Name] {
			return
		}
	}
	d.Pos = position
	d.Analyzer = p.Analyzer.Name
	*p.out = append(*p.out, d)
}

// Edit builds a TextEdit replacing [pos, end) with newText, converting
// the token positions to file offsets.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	start := p.Pkg.Fset.Position(pos)
	stop := p.Pkg.Fset.Position(end)
	return TextEdit{Filename: start.Filename, Offset: start.Offset, End: stop.Offset, NewText: newText}
}

// allowDirectives scans a package's comments for //wplint:allow lines.
// A directive suppresses the named analyzer on the line it appears on
// and must carry a reason after " -- ". One comment may stack several
// directives ("//wplint:allow a -- r //wplint:allow b -- r"); each
// applies independently. The dedicated //wplint:flow form is shorthand
// for "//wplint:allow wpflow" (mirroring //wplint:allow-panic for the
// panicfree analyzer).
func allowDirectives(pkg *Package) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	record := func(pos token.Pos, name string) {
		position := pkg.Fset.Position(pos)
		byLine := out[position.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			out[position.Filename] = byLine
		}
		names := byLine[position.Line]
		if names == nil {
			names = make(map[string]bool)
			byLine[position.Line] = names
		}
		names[name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "//wplint:flow") {
					record(c.Pos(), "wpflow")
				}
				rest := c.Text
				for {
					i := strings.Index(rest, "//wplint:allow ")
					if i < 0 {
						break
					}
					rest = rest[i+len("//wplint:allow "):]
					name, _, _ := strings.Cut(rest, " -- ")
					// A stacked directive ends where the next one begins.
					if j := strings.Index(name, "//wplint:"); j >= 0 {
						name = name[:j]
					}
					record(c.Pos(), strings.TrimSpace(name))
				}
			}
		}
	}
	return out
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Exhaustive, Checkpoint, StatPath, PanicFree, WPFlow}
}

// Run applies the analyzers to every package and returns the combined
// diagnostics, deduplicated and stably sorted by (file, line, column,
// analyzer, message). Two analyzers (or one analyzer visiting a node
// twice) reporting the identical finding collapse to one diagnostic,
// and equal-position findings always render in the same order, so
// golden files and baselines never flap with traversal order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := allowDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, allow: allow, out: &diags}
			a.Run(pass)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := out[len(out)-1]
			if p.Pos == d.Pos && p.Analyzer == d.Analyzer && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// enclosingFunc returns the innermost function declaration of the file
// containing pos, or nil for package-level positions.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
