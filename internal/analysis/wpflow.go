package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WPFlow is the interprocedural taint pass proving the paper's
// load-bearing invariant: wrong-path execution is purely speculative.
// State produced between a mispredicted branch and its resolution —
// functional wrong-path emulation results, policy-reconstructed WP
// streams, post-Checkpoint register/memory state — plus host wall-clock
// readings and recovered worker-panic values must never reach committed
// architectural state, correct-path statistics, reported aggregates, or
// correct-path observability publishes, except through the approved
// accessor / Restore APIs.
//
// The pass builds the package call graph (callgraph.go), computes
// per-function taint summaries to fixpoint (summary.go), then reports
// every flow from a source to a sink. Wall-clock-only flows are
// warnings (they bias host-side numbers, not simulated state);
// wrong-path and panic-value flows are errors. Escape hatch: a
// same-line "//wplint:flow -- <reason>" directive.
var WPFlow = &Analyzer{
	Name: "wpflow",
	Doc:  "forbid wrong-path state, wall-clock reads and recovered panic values from reaching committed state or correct-path statistics",
	Run:  runWPFlow,
}

// wpflow carries one package's analysis state.
type wpflow struct {
	pass      *Pass
	graph     *CallGraph
	summaries map[*types.Func]*Summary
}

func runWPFlow(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return // CLIs may aggregate wall time and host state freely
	}
	w := &wpflow{pass: pass, graph: BuildCallGraph(pass.Pkg), summaries: make(map[*types.Func]*Summary)}
	// Summaries to fixpoint: the graph is walked bottom-up, so one round
	// resolves acyclic call chains; further rounds absorb recursion.
	for round := 0; round < 10; round++ {
		changed := false
		for _, n := range w.graph.Order() {
			s := w.computeSummary(n)
			if !s.equal(w.summaries[n.Fn]) {
				w.summaries[n.Fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range w.graph.Order() {
		e := newEvaluator(w, n, nil, true)
		e.run()
		w.report(e.hits)
	}
}

// computeSummary evaluates one function body under each summary mode:
// once with sources active for result taint, then once per parameter
// with only that parameter seeded (sources off, for clean attribution)
// for param→result flows and param→sink reaches.
func (w *wpflow) computeSummary(n *CallNode) *Summary {
	params := paramObjects(w.pass.Pkg, n.Decl)
	s := &Summary{ParamFlows: make([]bool, len(params)), ParamSinks: make([]*paramSink, len(params))}
	er := newEvaluator(w, n, nil, true)
	er.run()
	s.Results = er.results
	for i, obj := range params {
		if obj == nil {
			continue
		}
		e := newEvaluator(w, n, map[types.Object]taintMask{obj: taintAll}, false)
		e.run()
		s.ParamFlows[i] = e.results != 0
		if len(e.hits) == 0 {
			continue
		}
		first := e.hits[0]
		var kinds taintMask
		for _, h := range e.hits {
			if h.pos < first.pos {
				first = h
			}
			kinds |= h.kinds
		}
		s.ParamSinks[i] = &paramSink{kinds: kinds, desc: first.desc, chain: first.chain, cpu: first.cpu}
	}
	return s
}

// report emits the collected sink hits, deduplicated and in position
// order. Wall-clock-only contamination is a warning; wrong-path or
// panic contamination is an error.
func (w *wpflow) report(hits []sinkHit) {
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].pos != hits[j].pos {
			return hits[i].pos < hits[j].pos
		}
		return hits[i].desc < hits[j].desc
	})
	var lastMsg string
	lastPos := token.NoPos
	for _, h := range hits {
		msg := fmt.Sprintf("%s value flows into %s", h.mask.describe(), h.desc)
		if len(h.chain) > 0 {
			msg += " (via " + strings.Join(h.chain, " -> ") + ")"
		}
		msg += "; only the approved accessor/Restore APIs may cross this boundary (//wplint:flow -- <reason> to accept)"
		if h.pos == lastPos && msg == lastMsg {
			continue
		}
		lastPos, lastMsg = h.pos, msg
		sev := SeverityError
		if h.mask&(taintWP|taintPanic) == 0 {
			sev = SeverityWarning // wall-clock bias, not state corruption
		}
		w.pass.Report(h.pos, Diagnostic{Message: msg, Severity: sev})
	}
}

// --- configuration tables ---------------------------------------------
//
// All entries match by package-path suffix so the tables are stable
// regardless of the module name (the fixture packages reuse them).

// pathIs reports whether pkgPath denotes the package named by suffix
// ("time" matches "time" but not "runtime").
func pathIs(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// wpflowSources are the calls that introduce taint.
var wpflowSources = []struct {
	pkgSuffix, name string
	kind            taintMask
}{
	// Functional wrong-path emulation: the instruction stream beyond a
	// mispredicted branch (paper §III, wpemul).
	{"internal/functional", "WrongPathEmulate", taintWP},
	// Policy-reconstructed wrong-path streams (nowp/instrec/conv).
	{"internal/wrongpath", "Begin", taintWP},
	// Host wall-clock reads.
	{"time", "Now", taintWall},
	{"time", "Since", taintWall},
	{"time", "Until", taintWall},
	{"internal/sim", "Now", taintWall}, // the Clock interface shim
	{"internal/obs", "WPGenStart", taintWall},
}

// wpflowApproved are the sanitioned crossing points: calling one of
// these launders its arguments (and its results carry no taint).
// The simerr constructors wrap any value — including recovered panics
// and wrong-path context — into an inert typed fault; the note*
// accessors are the only legal write path for WP-split counters; the
// tagged obs publishes carry an explicit wrong-path/host label; Restore
// is the rollback that ends a speculative window.
var wpflowApproved = []struct {
	pkgSuffix, name string // name "*" approves the whole package
}{
	{"internal/simerr", "*"},
	{"internal/core", "noteWPFetched"},
	{"internal/core", "noteWPExecuted"},
	{"internal/cache", "Access"},
	{"internal/cache", "AccessData"},
	{"internal/cache", "record"},
	{"internal/functional", "Restore"},
	{"internal/functional", "Checkpoint"},
	{"internal/obs", "FetchStall"}, // carries an explicit wrongPath tag
	{"internal/obs", "Mispredict"},
	{"internal/obs", "Convergence"},
	{"internal/obs", "WPGenDone"},
	{"internal/obs", "WatchdogSample"},
	{"internal/obs", "WatchdogStall"},
}

// wpflowSinkMethods are calls whose arguments must be untainted: writes
// to committed memory/registers and untagged (correct-path)
// observability publishes.
type sinkMethod struct {
	pkgSuffix, name string
	kinds           taintMask
	cpu             bool // checkpoint-window exemption applies
	desc            string
}

var wpflowSinkMethods = []sinkMethod{
	{"internal/functional", "SetPC", taintAll, true, "committed architectural state functional.CPU.pc (SetPC)"},
	{"internal/functional", "SetReg", taintAll, true, "committed architectural state functional.CPU.regs (SetReg)"},
	{"internal/functional", "SetFReg", taintAll, true, "committed architectural state functional.CPU.fregs (SetFReg)"},
	{"internal/mem", "Write", taintAll, true, "committed memory (mem.Memory.Write)"},
	{"internal/mem", "WriteUint64", taintAll, true, "committed memory (mem.Memory.WriteUint64)"},
	{"internal/mem", "WriteUint32", taintAll, true, "committed memory (mem.Memory.WriteUint32)"},
	{"internal/obs", "Serialize", taintAll, false, "correct-path observability publish (obs.View.Serialize)"},
	{"internal/obs", "QueueDepth", taintAll, false, "correct-path observability publish (obs.View.QueueDepth)"},
}

// wpflowSinkOwners are the structs whose fields must stay untainted.
type sinkOwner struct {
	pkgSuffix, typeName string
	// fields lists the guarded fields with the taint kinds each rejects;
	// when wildcard is set, every field not listed in exempt is guarded
	// with taintAll (fields maps then override per-field kinds).
	fields   map[string]taintMask
	wildcard bool
	exempt   map[string]bool
	cpu      bool
	descFmt  string
}

var wpflowSinkOwners = []sinkOwner{
	{
		pkgSuffix: "internal/core", typeName: "Stats",
		fields: map[string]taintMask{
			"Instructions": taintAll, "Cycles": taintAll,
			"CondBranches": taintAll, "CondMispredicted": taintAll,
			"IndirectJumps": taintAll, "IndirectMispredicted": taintAll,
			"Returns": taintAll, "ReturnMispredicted": taintAll,
			"Mispredicts": taintAll, "LoadForwards": taintAll,
			"Serializations": taintAll,
			// The WP-split counters (WPFetched &c.) are statpath's
			// domain: direct stores are banned outright there.
		},
		descFmt: "correct-path statistic core.Stats.%s",
	},
	{
		pkgSuffix: "internal/sim", typeName: "Result",
		wildcard: true,
		exempt:   map[string]bool{"Err": true, "RequestedWP": true, "Degraded": true, "DegradeFault": true},
		fields: map[string]taintMask{
			// Wall is the one aggregate that *is* a wall-clock reading.
			"Wall": taintWP | taintPanic,
		},
		descFmt: "reported aggregate sim.Result.%s",
	},
	{
		pkgSuffix: "internal/functional", typeName: "CPU",
		fields: map[string]taintMask{
			"regs": taintAll, "fregs": taintAll, "pc": taintAll,
			"instret": taintAll, "halted": taintAll, "exitCode": taintAll,
			"seq": taintAll, "Output": taintAll,
		},
		cpu:     true,
		descFmt: "committed architectural state functional.CPU.%s",
	},
}

// sourceOf reports the taint kind a call to fn introduces.
func (w *wpflow) sourceOf(fn *types.Func) (taintMask, bool) {
	if fn.Pkg() == nil {
		return 0, false
	}
	for _, s := range wpflowSources {
		if fn.Name() == s.name && pathIs(fn.Pkg().Path(), s.pkgSuffix) {
			return s.kind, true
		}
	}
	return 0, false
}

// approved reports whether fn is a sanctioned crossing point.
func (w *wpflow) approved(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	for _, a := range wpflowApproved {
		if (a.name == "*" || a.name == fn.Name()) && pathIs(fn.Pkg().Path(), a.pkgSuffix) {
			return true
		}
	}
	return false
}

// sinkMethodOf looks fn up in the sink-method table.
func (w *wpflow) sinkMethodOf(fn *types.Func) (sinkMethod, bool) {
	if fn.Pkg() == nil {
		return sinkMethod{}, false
	}
	for _, s := range wpflowSinkMethods {
		if fn.Name() == s.name && pathIs(fn.Pkg().Path(), s.pkgSuffix) {
			return s, true
		}
	}
	return sinkMethod{}, false
}

// sinkFieldOf looks up a guarded struct field. owner is the full
// "pkgpath.TypeName" key selectedField produces.
func (w *wpflow) sinkFieldOf(owner, field string) (kinds taintMask, cpu bool, desc string, ok bool) {
	dot := strings.LastIndex(owner, ".")
	if dot < 0 {
		return 0, false, "", false
	}
	pkgPath, typeName := owner[:dot], owner[dot+1:]
	for _, o := range wpflowSinkOwners {
		if o.typeName != typeName || !pathIs(pkgPath, o.pkgSuffix) {
			continue
		}
		if k, listed := o.fields[field]; listed {
			return k, o.cpu, fmt.Sprintf(o.descFmt, field), true
		}
		if o.wildcard && !o.exempt[field] {
			return taintAll, o.cpu, fmt.Sprintf(o.descFmt, field), true
		}
		return 0, false, "", false
	}
	return 0, false, "", false
}

// --- evaluator sink checks --------------------------------------------

// cpuExempt reports whether a committed-CPU-state sink at pos is
// sanctioned: inside a checkpoint/restore window, or in the rollback
// machinery itself.
func (e *evaluator) cpuExempt(pos token.Pos) bool {
	switch e.node.Fn.Name() {
	case "Restore", "Checkpoint":
		return true
	}
	return e.inWindow(pos)
}

// checkFieldStore reports a tainted store into a guarded struct field.
func (e *evaluator) checkFieldStore(sel *ast.SelectorExpr, m taintMask, pos token.Pos) {
	owner, field, ok := selectedField(e.w.pass, sel)
	if !ok {
		return
	}
	kinds, cpu, desc, ok := e.w.sinkFieldOf(owner, field)
	if !ok {
		return
	}
	if cpu && e.cpuExempt(pos) {
		return
	}
	if v := m & kinds; v != 0 {
		e.hits = append(e.hits, sinkHit{pos: pos, kinds: kinds, mask: v, desc: desc, cpu: cpu})
	}
}

// checkCompositeLit reports tainted initializers of guarded fields in a
// struct literal (e.g. building a sim.Result).
func (e *evaluator) checkCompositeLit(lit *ast.CompositeLit) {
	info := e.w.pass.Pkg.Info
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var field string
		value := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			id, isID := kv.Key.(*ast.Ident)
			if !isID {
				continue
			}
			field, value = id.Name, kv.Value
		} else if i < st.NumFields() {
			field = st.Field(i).Name()
		} else {
			continue
		}
		kinds, cpu, desc, ok := e.w.sinkFieldOf(owner, field)
		if !ok || (cpu && e.cpuExempt(value.Pos())) {
			continue
		}
		if v := e.exprTaint(value) & kinds; v != 0 {
			e.hits = append(e.hits, sinkHit{pos: value.Pos(), kinds: kinds, mask: v, desc: desc, cpu: cpu})
		}
	}
}

// checkCallArgs reports tainted arguments reaching a sink: directly
// (sink-method table) or transitively (a same-package callee whose
// summary says the parameter reaches a sink).
func (e *evaluator) checkCallArgs(call *ast.CallExpr) {
	info := e.w.pass.Pkg.Info
	callee := StaticCallee(info, call)
	if callee == nil || e.w.approved(callee) {
		return
	}
	if sm, ok := e.w.sinkMethodOf(callee); ok {
		if sm.cpu && e.cpuExempt(call.Pos()) {
			return
		}
		for _, a := range call.Args {
			if v := e.exprTaint(a) & sm.kinds; v != 0 {
				e.hits = append(e.hits, sinkHit{pos: a.Pos(), kinds: sm.kinds, mask: v, desc: sm.desc, cpu: sm.cpu})
				return
			}
		}
		return
	}
	s, ok := e.w.summaries[callee]
	if !ok {
		return
	}
	args := e.callArgExprs(call, callee)
	for i, a := range args {
		pi := paramIndexOf(callee, i, len(args))
		if pi >= len(s.ParamSinks) || s.ParamSinks[pi] == nil {
			continue
		}
		ps := s.ParamSinks[pi]
		if ps.cpu && e.cpuExempt(call.Pos()) {
			continue
		}
		if v := e.exprTaint(a) & ps.kinds; v != 0 {
			chain := append([]string{callee.Name()}, ps.chain...)
			e.hits = append(e.hits, sinkHit{pos: a.Pos(), kinds: ps.kinds, mask: v, desc: ps.desc, chain: chain, cpu: ps.cpu})
		}
	}
}
