package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 rendering for GitHub code scanning. Only the small slice
// of the schema code scanning consumes is emitted: one run, the
// analyzer suite as the rule set, one result per diagnostic with a
// physical location. Paths are rendered relative to root with forward
// slashes, and rules are sorted by id, so output is deterministic.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the diagnostics as a SARIF 2.1.0 log. root anchors the
// artifact URIs: file names are made root-relative where possible.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   d.Severity.String(),
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relSlash(root, d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "wplint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// relSlash renders path relative to root with forward slashes, falling
// back to the input when it is not under root.
func relSlash(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
