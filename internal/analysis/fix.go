package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies the first SuggestedFix of every diagnostic that
// carries one, editing the files in place. Edits are grouped per file
// and applied back-to-front so earlier offsets stay valid; a fix whose
// edits overlap an already-accepted fix is skipped (the next wplint
// -fix run picks it up), which makes repeated application converge: a
// tree with no remaining fixable findings is returned byte-identical.
//
// It returns the number of fixes applied and the files rewritten.
func ApplyFixes(diags []Diagnostic) (applied int, files []string, err error) {
	type span struct{ off, end int }
	edits := make(map[string][]TextEdit)
	taken := make(map[string][]span)
	overlaps := func(file string, e TextEdit) bool {
		for _, s := range taken[file] {
			if e.Offset < s.end && s.off < e.End {
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		fix := d.Fixes[0]
		ok := true
		for _, e := range fix.Edits {
			if e.Offset < 0 || e.End < e.Offset || overlaps(e.Filename, e) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, e := range fix.Edits {
			edits[e.Filename] = append(edits[e.Filename], e)
			taken[e.Filename] = append(taken[e.Filename], span{e.Offset, e.End})
		}
		applied++
	}
	files = make([]string, 0, len(edits))
	for f := range edits {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		content, rerr := os.ReadFile(f)
		if rerr != nil {
			return applied, nil, rerr
		}
		es := edits[f]
		sort.Slice(es, func(i, j int) bool { return es[i].Offset > es[j].Offset })
		for _, e := range es {
			if e.End > len(content) {
				return applied, nil, fmt.Errorf("fix edit out of range in %s: [%d,%d) of %d bytes", f, e.Offset, e.End, len(content))
			}
			content = append(content[:e.Offset], append([]byte(e.NewText), content[e.End:]...)...)
		}
		if werr := os.WriteFile(f, content, 0o644); werr != nil {
			return applied, nil, werr
		}
	}
	return applied, files, nil
}
