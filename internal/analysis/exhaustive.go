package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces that switch statements over the simulator's
// extension-point enums cover every declared constant or carry an
// explicit default clause. Adding an opcode, instruction class or
// wrong-path policy then fails the lint at every dispatch site that
// silently ignores the new case, instead of silently compiling.
// Beyond switches, a composite literal over an enforced enum (e.g. the
// canonical wrongpath.Kinds() ordering) can opt into the same coverage
// check with a same-line //wplint:exhaustive directive; the literal
// must then name every declared constant.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over ISA/policy enums must cover every constant or declare a default",
	Run:  runExhaustive,
}

// ExhaustiveEnums lists the enforced enum types as "pkgpath.TypeName".
// These are the extension points new instructions and policies flow
// through; extend the list when a new enum-like dispatch type appears.
var ExhaustiveEnums = map[string]bool{
	"repro/internal/isa.Class":            true,
	"repro/internal/isa.Op":               true,
	"repro/internal/wrongpath.Kind":       true,
	"repro/internal/branch.PredictorKind": true,
}

func runExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		marked := exhaustiveDirectiveLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				named, _, ok := enforcedEnum(pass, info.TypeOf(n.Tag))
				if !ok {
					return true
				}
				checkSwitch(pass, n, named)
			case *ast.CompositeLit:
				checkMarkedLiteral(pass, n, marked)
			}
			return true
		})
	}
}

// enforcedEnum resolves t to an enum in ExhaustiveEnums.
func enforcedEnum(pass *Pass, t types.Type) (*types.Named, string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !ExhaustiveEnums[qual] {
		return nil, "", false
	}
	return named, qual, true
}

// exhaustiveDirectiveLines collects the lines of f carrying a
// //wplint:exhaustive directive.
func exhaustiveDirectiveLines(pass *Pass, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == "//wplint:exhaustive" || strings.HasPrefix(c.Text, "//wplint:exhaustive ") {
				out[pass.Pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// checkMarkedLiteral verifies a //wplint:exhaustive-marked slice or
// array literal over an enforced enum names every declared constant.
func checkMarkedLiteral(pass *Pass, lit *ast.CompositeLit, marked map[int]bool) {
	if len(marked) == 0 || !marked[pass.Pkg.Fset.Position(lit.Lbrace).Line] {
		return
	}
	t := pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return
	}
	named, _, ok := enforcedEnum(pass, elem)
	if !ok {
		return
	}
	covered := make(map[int64]bool)
	for _, e := range lit.Elts {
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}
	reportMissing(pass, lit.Pos(), named, covered,
		"composite literal marked //wplint:exhaustive over %s is missing %s")
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, named *types.Named) {
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the author handled "everything else"
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					covered[v] = true
				}
			}
		}
	}
	reportMissing(pass, sw.Pos(), named, covered,
		"switch over %s is not exhaustive and has no default: missing %s")
}

// reportMissing diagnoses at pos the declared constants of named not
// present in covered, using format with (enum, missing-list) verbs.
func reportMissing(pass *Pass, pos token.Pos, named *types.Named, covered map[int64]bool, format string) {
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	var missing []string
	for _, c := range enumConstants(named) {
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if exact && !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	shown := missing
	if len(shown) > 6 {
		shown = append(shown[:6:6], fmt.Sprintf("… (%d more)", len(missing)-6))
	}
	pass.Reportf(pos, format, qual, strings.Join(shown, ", "))
}

// enumConstants returns the package-level constants of the named type.
// Unexported sentinels (names ending in "Max", e.g. opMax) bound the
// constant space rather than belonging to it and are skipped.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && strings.HasSuffix(strings.ToLower(name), "max") {
			continue
		}
		out = append(out, c)
	}
	return out
}
