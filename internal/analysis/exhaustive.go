package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces that switch statements over the simulator's
// extension-point enums cover every declared constant or carry an
// explicit default clause. Adding an opcode, instruction class or
// wrong-path policy then fails the lint at every dispatch site that
// silently ignores the new case, instead of silently compiling.
// Beyond switches, a composite literal over an enforced enum (e.g. the
// canonical wrongpath.Kinds() ordering) can opt into the same coverage
// check with a same-line //wplint:exhaustive directive; the literal
// must then name every declared constant.
//
// The check sees through type aliases and same-package defined types
// over an enforced enum ("type mine = isa.Class" / "type mine
// isa.Class"), so renaming an extension-point type cannot shed its
// coverage obligation. Two fault-taxonomy forms are enforced too: a
// value switch over the simerr.Err* sentinels must cover every sentinel
// or declare a default (the degradation ladder dispatches on exactly
// this classification), and a type switch naming a simerr fault type
// must declare a default, because the error type space is open.
//
// Missing-case findings on switches carry a machine-applicable
// suggested fix that inserts an explicitly-empty case (or default)
// clause — a no-op, so wplint -fix is always behavior-preserving.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over ISA/policy enums and simerr sentinels must cover every constant or declare a default",
	Run:  runExhaustive,
}

// ExhaustiveEnums lists the enforced enum types as "pkgpath.TypeName".
// These are the extension points new instructions and policies flow
// through; extend the list when a new enum-like dispatch type appears.
var ExhaustiveEnums = map[string]bool{
	"repro/internal/isa.Class":            true,
	"repro/internal/isa.Op":               true,
	"repro/internal/wrongpath.Kind":       true,
	"repro/internal/branch.PredictorKind": true,
}

func runExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		marked := exhaustiveDirectiveLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tagType := info.TypeOf(n.Tag)
				if named, _, ok := enforcedEnum(pass, tagType); ok {
					checkSwitch(pass, f, n, named, tagType)
				} else {
					checkSentinelSwitch(pass, f, n)
				}
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			case *ast.CompositeLit:
				checkMarkedLiteral(pass, n, marked)
			}
			return true
		})
	}
}

// enforcedEnum resolves t to an enum in ExhaustiveEnums, seeing through
// type aliases and — for same-package defined types — one level of
// renaming ("type mine isa.Class" is checked against isa.Class's
// constants; values are compared numerically, so local re-declarations
// of the constants still count as covered).
func enforcedEnum(pass *Pass, t types.Type) (*types.Named, string, bool) {
	if t == nil {
		return nil, "", false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if ExhaustiveEnums[qual] {
		return named, qual, true
	}
	return renamedBase(pass, named)
}

// renamedBase resolves a type declared in the analyzed package whose
// declaration names an enforced enum.
func renamedBase(pass *Pass, named *types.Named) (*types.Named, string, bool) {
	if named.Obj().Pkg() != pass.Pkg.Types {
		return nil, "", false
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || pass.Pkg.Info.Defs[ts.Name] != named.Obj() {
					continue
				}
				base, ok := types.Unalias(pass.Pkg.Info.TypeOf(ts.Type)).(*types.Named)
				if !ok || base.Obj().Pkg() == nil {
					return nil, "", false
				}
				qual := base.Obj().Pkg().Path() + "." + base.Obj().Name()
				if ExhaustiveEnums[qual] {
					return base, qual, true
				}
				return nil, "", false
			}
		}
	}
	return nil, "", false
}

// exhaustiveDirectiveLines collects the lines of f carrying a
// //wplint:exhaustive directive.
func exhaustiveDirectiveLines(pass *Pass, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == "//wplint:exhaustive" || strings.HasPrefix(c.Text, "//wplint:exhaustive ") {
				out[pass.Pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// checkMarkedLiteral verifies a //wplint:exhaustive-marked slice or
// array literal over an enforced enum names every declared constant.
func checkMarkedLiteral(pass *Pass, lit *ast.CompositeLit, marked map[int]bool) {
	if len(marked) == 0 || !marked[pass.Pkg.Fset.Position(lit.Lbrace).Line] {
		return
	}
	t := pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return
	}
	named, _, ok := enforcedEnum(pass, elem)
	if !ok {
		return
	}
	covered := make(map[int64]bool)
	for _, e := range lit.Elts {
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				covered[v] = true
			}
		}
	}
	reportMissing(pass, lit.Pos(), named, covered,
		"composite literal marked //wplint:exhaustive over %s is missing %s")
}

func checkSwitch(pass *Pass, f *ast.File, sw *ast.SwitchStmt, named *types.Named, tagType types.Type) {
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the author handled "everything else"
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					covered[v] = true
				}
			}
		}
	}
	missing := missingConstants(named, covered)
	if len(missing) == 0 {
		return
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	d := Diagnostic{Message: fmt.Sprintf(
		"switch over %s is not exhaustive and has no default: missing %s", qual, shortList(missing))}
	if fix, ok := emptyCaseFix(pass, f, sw.Body.Rbrace, sw.Pos(), named, tagType, missing); ok {
		d.Fixes = []SuggestedFix{fix}
	}
	pass.Report(sw.Pos(), d)
}

// emptyCaseFix builds the behavior-preserving repair for a
// non-exhaustive switch: an explicitly-empty case clause naming the
// missing constants, inserted before the closing brace. An empty case
// is a no-op — the unmatched values did nothing before and still do —
// so applying the fix never changes program behavior. No fix is offered
// when the tag type is a local rename (the constants would need
// conversions) or when an unexported constant would have to be named
// from another package.
func emptyCaseFix(pass *Pass, f *ast.File, rbrace, swPos token.Pos, named *types.Named, tagType types.Type, missing []string) (SuggestedFix, bool) {
	if !types.Identical(types.Unalias(tagType), named) {
		return SuggestedFix{}, false
	}
	qual := enumQualifier(pass, f, named)
	refs := make([]string, len(missing))
	for i, m := range missing {
		if qual != "" && !token.IsExported(m) {
			return SuggestedFix{}, false
		}
		refs[i] = qual + m
	}
	indent := indentAt(pass, swPos)
	text := "case " + strings.Join(refs, ", ") + ":\n" +
		indent + "\t// explicitly unhandled (inserted by wplint -fix)\n" + indent
	return SuggestedFix{
		Message: "insert an explicitly-empty case for the missing constants",
		Edits:   []TextEdit{pass.Edit(rbrace, rbrace, text)},
	}, true
}

// checkSentinelSwitch enforces coverage of the simerr.Err* sentinel
// classification: a value switch comparing an error against any fault
// sentinel must name every sentinel or declare a default — this is the
// dispatch the degradation ladder rides on, and a new fault class must
// fail the lint at every ladder site that ignores it.
func checkSentinelSwitch(pass *Pass, f *ast.File, sw *ast.SwitchStmt) {
	covered := make(map[string]bool)
	var simerrPkg *types.Package
	qual := ""
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default
		}
		for _, e := range cc.List {
			v := sentinelVar(pass, e)
			if v == nil {
				continue
			}
			covered[v.Name()] = true
			simerrPkg = v.Pkg()
			if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					qual = id.Name + "."
				}
			}
		}
	}
	if simerrPkg == nil {
		return // not a sentinel switch
	}
	var missing []string
	for _, name := range simerrPkg.Scope().Names() {
		if !strings.HasPrefix(name, "Err") || covered[name] {
			continue
		}
		if v, ok := simerrPkg.Scope().Lookup(name).(*types.Var); ok && isErrorType(v.Type()) {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	indent := indentAt(pass, sw.Pos())
	refs := make([]string, len(missing))
	for i, m := range missing {
		refs[i] = qual + m
	}
	text := "case " + strings.Join(refs, ", ") + ":\n" +
		indent + "\t// explicitly unhandled (inserted by wplint -fix)\n" + indent
	pass.Report(sw.Pos(), Diagnostic{
		Message: fmt.Sprintf("switch over the simerr fault sentinels has no default and is missing %s", shortList(missing)),
		Fixes: []SuggestedFix{{
			Message: "insert an explicitly-empty case for the missing sentinels",
			Edits:   []TextEdit{pass.Edit(sw.Body.Rbrace, sw.Body.Rbrace, text)},
		}},
	})
}

// sentinelVar resolves e to a simerr Err* sentinel variable.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if !strings.HasSuffix(v.Pkg().Path(), "internal/simerr") || !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// checkTypeSwitch requires a default clause on any type switch that
// dispatches on a simerr fault type: the error type space is open
// (wrapped faults, future fault classes), so a type switch without a
// default silently drops unknown faults.
func checkTypeSwitch(pass *Pass, ts *ast.TypeSwitchStmt) {
	mentionsFault := false
	for _, stmt := range ts.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default
		}
		for _, e := range cc.List {
			t := pass.Pkg.Info.TypeOf(e)
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := types.Unalias(t).(*types.Named); ok && n.Obj().Pkg() != nil &&
				strings.HasSuffix(n.Obj().Pkg().Path(), "internal/simerr") {
				mentionsFault = true
			}
		}
	}
	if !mentionsFault {
		return
	}
	indent := indentAt(pass, ts.Pos())
	text := "default:\n" +
		indent + "\t// unknown fault type: explicitly unhandled (inserted by wplint -fix)\n" + indent
	pass.Report(ts.Pos(), Diagnostic{
		Message: "type switch over simerr fault types has no default: the fault taxonomy is open, unknown faults would be silently dropped",
		Fixes: []SuggestedFix{{
			Message: "insert an explicitly-empty default clause",
			Edits:   []TextEdit{pass.Edit(ts.Body.Rbrace, ts.Body.Rbrace, text)},
		}},
	})
}

// missingConstants lists (sorted) the declared constants of named whose
// values are absent from covered.
func missingConstants(named *types.Named, covered map[int64]bool) []string {
	var missing []string
	for _, c := range enumConstants(named) {
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if exact && !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	return missing
}

// shortList renders a missing-constant list, truncated past 6 entries.
func shortList(missing []string) string {
	shown := missing
	if len(shown) > 6 {
		shown = append(shown[:6:6], fmt.Sprintf("… (%d more)", len(missing)-6))
	}
	return strings.Join(shown, ", ")
}

// enumQualifier returns the selector prefix ("isa.") that references
// named's package from file f — empty when f is in the same package.
func enumQualifier(pass *Pass, f *ast.File, named *types.Named) string {
	pkg := named.Obj().Pkg()
	if pkg == pass.Pkg.Types {
		return ""
	}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != pkg.Path() {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name + "."
		}
	}
	return pkg.Name() + "."
}

// indentAt reproduces the leading-tab indentation of pos's line
// (assuming gofmt'd source, which the repo enforces).
func indentAt(pass *Pass, pos token.Pos) string {
	col := pass.Pkg.Fset.Position(pos).Column
	if col < 1 {
		col = 1
	}
	return strings.Repeat("\t", col-1)
}

// reportMissing diagnoses at pos the declared constants of named not
// present in covered, using format with (enum, missing-list) verbs.
func reportMissing(pass *Pass, pos token.Pos, named *types.Named, covered map[int64]bool, format string) {
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	missing := missingConstants(named, covered)
	if len(missing) == 0 {
		return
	}
	pass.Reportf(pos, format, qual, shortList(missing))
}

// enumConstants returns the package-level constants of the named type.
// Unexported sentinels (names ending in "Max", e.g. opMax) bound the
// constant space rather than belonging to it and are skipped.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && strings.HasSuffix(strings.ToLower(name), "max") {
			continue
		}
		out = append(out, c)
	}
	return out
}
