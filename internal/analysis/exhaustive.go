package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces that switch statements over the simulator's
// extension-point enums cover every declared constant or carry an
// explicit default clause. Adding an opcode, instruction class or
// wrong-path policy then fails the lint at every dispatch site that
// silently ignores the new case, instead of silently compiling.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over ISA/policy enums must cover every constant or declare a default",
	Run:  runExhaustive,
}

// ExhaustiveEnums lists the enforced enum types as "pkgpath.TypeName".
// These are the extension points new instructions and policies flow
// through; extend the list when a new enum-like dispatch type appears.
var ExhaustiveEnums = map[string]bool{
	"repro/internal/isa.Class":            true,
	"repro/internal/isa.Op":               true,
	"repro/internal/wrongpath.Kind":       true,
	"repro/internal/branch.PredictorKind": true,
}

func runExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := info.TypeOf(sw.Tag)
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if !ExhaustiveEnums[qual] {
				return true
			}
			checkSwitch(pass, sw, named, qual)
			return true
		})
	}
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, named *types.Named, qual string) {
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the author handled "everything else"
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					covered[v] = true
				}
			}
		}
	}
	var missing []string
	for _, c := range enumConstants(named) {
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if exact && !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	shown := missing
	if len(shown) > 6 {
		shown = append(shown[:6:6], fmt.Sprintf("… (%d more)", len(missing)-6))
	}
	pass.Reportf(sw.Pos(), "switch over %s is not exhaustive and has no default: missing %s", qual, strings.Join(shown, ", "))
}

// enumConstants returns the package-level constants of the named type.
// Unexported sentinels (names ending in "Max", e.g. opMax) bound the
// constant space rather than belonging to it and are skipped.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && strings.HasSuffix(strings.ToLower(name), "max") {
			continue
		}
		out = append(out, c)
	}
	return out
}
