package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatPath enforces that the wrong-path-split statistic counters — the
// numbers behind the paper's tables — are only incremented through
// their approved accessor functions. Centralizing the increments keeps
// the correct/wrong attribution in one audited place; a stray `++` on
// a split counter elsewhere silently corrupts the split.
var StatPath = &Analyzer{
	Name: "statpath",
	Doc:  "wrong-path-split counters may only be incremented by approved accessors",
	Run:  runStatPath,
}

// protectedCounters maps "pkgpath.StructName" to the guarded fields.
var protectedCounters = map[string]map[string]bool{
	"repro/internal/cache.PathStats": {"Accesses": true, "Misses": true},
	"repro/internal/cache.Hierarchy": {"WrongMemAccesses": true},
	"repro/internal/core.Stats": {
		"WPFetched": true, "WPExecuted": true, "WPLoads": true, "WPLoadsWithAddr": true,
	},
}

// approvedAccessors lists the functions allowed to touch protected
// counters, as "pkgpath-suffix:FuncName" (methods use their bare name).
var approvedAccessors = map[string]bool{
	"internal/cache:record":        true,
	"internal/cache:Access":        true, // (*TLB).Access
	"internal/cache:memAccess":     true, // (*Hierarchy).memAccess
	"internal/core:noteWPFetched":  true, // (*Stats).noteWPFetched
	"internal/core:noteWPExecuted": true, // (*Stats).noteWPExecuted
}

func runStatPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var lhs ast.Expr
			switch n := n.(type) {
			case *ast.IncDecStmt:
				lhs = n.X
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
					token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
					if len(n.Lhs) == 1 {
						lhs = n.Lhs[0]
					}
				}
			default:
				return true
			}
			if lhs == nil {
				return true
			}
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner, field, ok := selectedField(pass, sel)
			if !ok {
				return true
			}
			fields, protected := protectedCounters[owner]
			if !protected || !fields[field] {
				return true
			}
			if file := fileOf(pass, sel.Pos()); file != nil {
				if fd := enclosingFunc(file, sel.Pos()); fd != nil &&
					approvedAccessors[pkgSuffixKey(pass.Pkg.Path, fd.Name.Name)] {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "direct increment of wrong-path-split counter %s.%s outside its approved accessor; route it through the accessor so the correct/wrong split stays audited", owner, field)
			return true
		})
	}
}

// selectedField resolves a selector to (owning struct "pkg.Type",
// field name) when it denotes a struct field.
func selectedField(pass *Pass, sel *ast.SelectorExpr) (owner, field string, ok bool) {
	s, found := pass.Pkg.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), s.Obj().Name(), true
}

func pkgSuffixKey(pkgPath, fn string) string {
	// Keep the last two path elements ("internal/cache") so the lookup
	// is stable regardless of the module name.
	parts := strings.Split(pkgPath, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/") + ":" + fn
}

func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}
