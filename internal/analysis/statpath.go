package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatPath enforces that the wrong-path-split statistic counters — the
// numbers behind the paper's tables — are only incremented through
// their approved accessor functions. Centralizing the increments keeps
// the correct/wrong attribution in one audited place; a stray `++` on
// a split counter elsewhere silently corrupts the split.
//
// It also guards the observability layer's publication discipline:
// outside internal/obs, metric handles (obs.Counter/Gauge/Histogram)
// may not be constructed directly — a hand-rolled handle never appears
// in a registry snapshot, so samples recorded through it silently
// vanish from -metrics-out. Handles must come from Registry.Counter /
// Gauge / Histogram (or a View built over a registry).
var StatPath = &Analyzer{
	Name: "statpath",
	Doc:  "wrong-path-split counters may only be incremented by approved accessors; obs metric handles may only come from a registry",
	Run:  runStatPath,
}

// protectedCounters maps "pkgpath.StructName" to the guarded fields.
var protectedCounters = map[string]map[string]bool{
	"repro/internal/cache.PathStats": {"Accesses": true, "Misses": true},
	"repro/internal/cache.Hierarchy": {"WrongMemAccesses": true},
	"repro/internal/core.Stats": {
		"WPFetched": true, "WPExecuted": true, "WPLoads": true, "WPLoadsWithAddr": true,
	},
}

// approvedAccessors lists the functions allowed to touch protected
// counters, as "pkgpath-suffix:FuncName" (methods use their bare name).
var approvedAccessors = map[string]bool{
	"internal/cache:record":        true,
	"internal/cache:Access":        true, // (*TLB).Access
	"internal/cache:memAccess":     true, // (*Hierarchy).memAccess
	"internal/core:noteWPFetched":  true, // (*Stats).noteWPFetched
	"internal/core:noteWPExecuted": true, // (*Stats).noteWPExecuted
}

// obsHandleTypes are the registry-owned metric handle types: their
// only approved constructors are the Registry accessor methods.
var obsHandleTypes = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runStatPath(pass *Pass) {
	runSplitCounters(pass)
	runObsHandles(pass)
}

// runObsHandles flags direct construction of obs metric handles
// (composite literals, new(), and value-typed var declarations)
// anywhere outside internal/obs itself.
func runObsHandles(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "internal/obs") {
		return // the registry implementation constructs its own handles
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := obsHandleType(pass, n.Type); ok {
					pass.Reportf(n.Pos(), "direct construction of obs.%s; metric handles must come from a Registry (Registry.%s or an obs.View) or they never reach the snapshot", name, name)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if name, ok := obsHandleType(pass, n.Args[0]); ok {
						pass.Reportf(n.Pos(), "direct construction of obs.%s via new(); metric handles must come from a Registry (Registry.%s or an obs.View) or they never reach the snapshot", name, name)
					}
				}
			case *ast.ValueSpec:
				// A value-typed declaration (var c obs.Counter) mints a zero
				// handle; pointer declarations are fine — they hold registry
				// handles.
				if n.Type != nil {
					if name, ok := obsHandleType(pass, n.Type); ok {
						pass.Reportf(n.Pos(), "value declaration of obs.%s mints an unregistered handle; declare a *obs.%s and fill it from a Registry", name, name)
					}
				}
			}
			return true
		})
	}
}

// obsHandleType reports whether the type expression denotes one of the
// obs metric handle value types (not a pointer to one).
func obsHandleType(pass *Pass, expr ast.Expr) (string, bool) {
	if expr == nil {
		return "", false
	}
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return "", false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return "", false
	}
	if !obsHandleTypes[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}

// runSplitCounters is the original wrong-path-split increment check.
func runSplitCounters(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var lhs ast.Expr
			switch n := n.(type) {
			case *ast.IncDecStmt:
				lhs = n.X
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
					token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
					if len(n.Lhs) == 1 {
						lhs = n.Lhs[0]
					}
				}
			default:
				return true
			}
			if lhs == nil {
				return true
			}
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			owner, field, ok := selectedField(pass, sel)
			if !ok {
				return true
			}
			fields, protected := protectedCounters[owner]
			if !protected || !fields[field] {
				return true
			}
			if file := fileOf(pass, sel.Pos()); file != nil {
				if fd := enclosingFunc(file, sel.Pos()); fd != nil &&
					approvedAccessors[pkgSuffixKey(pass.Pkg.Path, fd.Name.Name)] {
					return true
				}
			}
			pass.Reportf(sel.Pos(), "direct increment of wrong-path-split counter %s.%s outside its approved accessor; route it through the accessor so the correct/wrong split stays audited", owner, field)
			return true
		})
	}
}

// selectedField resolves a selector to (owning struct "pkg.Type",
// field name) when it denotes a struct field.
func selectedField(pass *Pass, sel *ast.SelectorExpr) (owner, field string, ok bool) {
	s, found := pass.Pkg.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name(), s.Obj().Name(), true
}

func pkgSuffixKey(pkgPath, fn string) string {
	// Keep the last two path elements ("internal/cache") so the lookup
	// is stable regardless of the module name.
	parts := strings.Split(pkgPath, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/") + ":" + fn
}

func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Pkg.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}
