package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/sim").
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing module from
// source. In-module imports are resolved recursively from their
// directories; standard-library imports go through the compiler's
// source importer, so no pre-built export data and no external modules
// are required.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path ("repro").
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader locates the module containing dir (walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// Load resolves patterns — directories, "./..." for the whole module,
// or "dir/..." for a subtree — and returns the matched packages,
// type-checked, sorted by import path. Directories named "testdata",
// hidden directories and test files are excluded from "..." expansion
// (a testdata directory can still be loaded by naming it explicitly,
// which is how the analyzer fixtures are loaded).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walk(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if !filepath.IsAbs(base) {
				base = filepath.Join(l.ModuleRoot, base)
			}
			walked, err := l.walk(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(l.ModuleRoot, d)
			}
			add(filepath.Clean(d))
		}
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walk collects every package directory under base.
func (l *Loader) walk(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// LoadDir loads and type-checks the package in one directory,
// memoized by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter routes in-module import paths to the loader and
// everything else to the standard library's source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
