package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree forbids bare panic(...) calls in the simulator's
// fault-contained packages (internal/sim, core, queue, frontend,
// batch). Those packages sit inside the fault-tolerance boundary: the
// batch engine and the parallel frontend recover panics into typed
// simerr.ErrWorkerPanic faults, and the degradation ladder decides what
// survives — but a recovery path is a last resort, not an error
// channel. Code inside the boundary must surface faults as typed simerr
// values (or plain errors) so callers can match them with errors.Is; a
// panic erases the simulation context the fault taxonomy carries.
//
// A deliberate can't-happen invariant may be kept with a same-line
//
//	//wplint:allow-panic -- <reason>
//
// directive (the generic `//wplint:allow panicfree -- <reason>` form
// also works).
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid bare panic(...) in fault-contained simulator packages; faults must flow as typed simerr values",
	Run:  runPanicFree,
}

// panicFreePkgs are the import-path suffixes inside the
// fault-tolerance boundary (plus the analyzer's own fixture).
var panicFreePkgs = []string{
	"/internal/sim",
	"/internal/core",
	"/internal/queue",
	"/internal/frontend",
	"/internal/batch",
	"/testdata/src/panicfree",
}

func runPanicFree(pass *Pass) {
	covered := false
	for _, suffix := range panicFreePkgs {
		if strings.HasSuffix(pass.Pkg.Path, suffix) {
			covered = true
			break
		}
	}
	if !covered {
		return
	}
	for _, f := range pass.Pkg.Files {
		allowed := panicAllowLines(pass.Pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the builtin
			}
			if allowed[pass.Pkg.Fset.Position(call.Pos()).Line] {
				return true
			}
			pass.Reportf(call.Pos(), "bare panic in a fault-contained package; return a typed simerr fault instead, or mark a deliberate invariant with //wplint:allow-panic")
			return true
		})
	}
}

// panicAllowLines collects the lines of a file carrying the dedicated
// //wplint:allow-panic directive.
func panicAllowLines(pkg *Package, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//wplint:allow-panic") {
				out[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
