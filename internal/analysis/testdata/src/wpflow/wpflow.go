// Package wpflow is a wplint fixture for the interprocedural taint
// pass: wrong-path emulation results, wall-clock reads and recovered
// panic values must not reach committed state, correct-path statistics
// or reported aggregates — except through checkpoint windows, the
// typed-fault constructors, and the other approved APIs.
package wpflow

import (
	"time"

	"repro/internal/core"
	"repro/internal/functional"
	"repro/internal/sim"
	"repro/internal/simerr"
)

// Clean updates correct-path statistics from untainted inputs: passes.
func Clean(s *core.Stats, n uint64) {
	s.Instructions += n
	s.Cycles = n + 1
}

// DirectLeak stores a value derived from the wrong-path stream into a
// correct-path statistic: flagged.
func DirectLeak(cpu *functional.CPU, s *core.Stats) {
	wp := cpu.WrongPathEmulate(0x40, 8)
	s.Instructions += uint64(len(wp)) // want: wrong-path-tainted value flows into correct-path statistic core.Stats.Instructions
}

// addCycles is the helper Interproc leaks through: its parameter n
// reaches the core.Stats.Cycles sink.
func addCycles(s *core.Stats, n uint64) {
	s.Cycles += n
}

// Interproc leaks the wrong-path path length through one call hop:
// flagged at the call site, attributing the flow via addCycles.
func Interproc(cpu *functional.CPU, s *core.Stats) {
	wp := cpu.WrongPathEmulate(0x40, 8)
	addCycles(s, uint64(len(wp))) // want: via addCycles
}

// CommitLeak drives committed architectural state from a wrong-path
// target with no checkpoint open: flagged.
func CommitLeak(cpu *functional.CPU) {
	wp := cpu.WrongPathEmulate(0x40, 4)
	cpu.SetPC(wp[0].PC) // want: committed architectural state functional.CPU.pc
}

// SanitizedByRestore touches committed state inside a checkpoint window
// that is rolled back: passes — that is the paper's speculative-window
// discipline, not a leak.
func SanitizedByRestore(cpu *functional.CPU) {
	wp := cpu.WrongPathEmulate(0x40, 4)
	cp := cpu.Checkpoint()
	cpu.SetPC(wp[0].PC)
	cpu.Restore(cp)
}

// PanicLeak copies a recovered panic value into a reported aggregate:
// flagged. Wrapping it as a typed fault in the exempt Err field is the
// sanctioned route.
func PanicLeak(res *sim.Result) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if v, ok := r.(uint64); ok {
			res.MemAccesses = v // want: recovered-panic-tainted value flows into reported aggregate sim.Result.MemAccesses
		}
		res.Err = simerr.WorkerPanic("fixture", r, nil)
	}()
}

// WallBias stores a wall-clock reading in a simulated-time aggregate:
// flagged as a warning (it biases reported numbers, not simulated
// state). Result.Wall is the one aggregate that is a wall-clock value.
func WallBias(res *sim.Result, start time.Time) {
	res.Wall = time.Since(start)
	res.FunctionalInsts = uint64(time.Since(start)) // want: host-wall-clock-tainted value flows into reported aggregate sim.Result.FunctionalInsts
}

// ResultLit builds a reported aggregate directly from wrong-path data
// in a composite literal: flagged on the field value.
func ResultLit(cpu *functional.CPU) sim.Result {
	wp := cpu.WrongPathEmulate(0x40, 2)
	return sim.Result{
		MemAccesses: uint64(len(wp)), // want: reported aggregate sim.Result.MemAccesses
	}
}

// Waived carries an explicit flow directive: suppressed.
func Waived(cpu *functional.CPU, s *core.Stats) {
	wp := cpu.WrongPathEmulate(0x40, 2)
	s.Cycles = uint64(len(wp)) //wplint:flow -- fixture: deliberate waiver to exercise the escape hatch
}
