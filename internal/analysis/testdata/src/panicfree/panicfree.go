// Package panicfree is the fixture for the panicfree analyzer: bare
// panics in a fault-contained package are findings; same-line
// //wplint:allow-panic (or the generic allow form) suppresses them.
package panicfree

import "errors"

var errBad = errors.New("bad input")

// Plain returns a typed error — the approved idiom.
func Plain(n int) error {
	if n < 0 {
		return errBad
	}
	return nil
}

// Bare panics without a directive.
func Bare(n int) {
	if n < 0 {
		panic("negative") // want: bare panic in a fault-contained package
	}
}

// Formatted panics with a non-literal argument.
func Formatted(err error) {
	panic(err) // want: bare panic in a fault-contained package
}

// Allowed carries the dedicated escape hatch.
func Allowed() {
	panic("unreachable: checked by construction") //wplint:allow-panic -- deliberate can't-happen invariant
}

// AllowedGeneric uses the generic wplint allow form.
func AllowedGeneric() {
	panic("unreachable") //wplint:allow panicfree -- deliberate can't-happen invariant
}

// shadowed is a local function named panic-free; calling it is fine.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
