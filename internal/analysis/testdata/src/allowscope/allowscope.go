// Package allowscope is a wplint fixture for //wplint:allow directive
// scoping: stacked directives on one line, directives on package-level
// declarations, and the loader's blanket exclusion of _test.go files
// (see allowscope_test.go next to this file, whose violations must
// never surface).
package allowscope

import (
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// PkgCounter carries a package-level directive: suppressed.
var PkgCounter obs.Counter //wplint:allow statpath -- fixture: package-level suppression

// PkgCounterBare is the same declaration without a directive: flagged.
var PkgCounterBare obs.Counter

// StackedDirectives violates determinism (wall-clock read) and wpflow
// (wall taint into a reported aggregate) on one line; the two stacked
// directives suppress both.
func StackedDirectives(res *sim.Result) {
	res.FunctionalInsts = uint64(time.Since(time.Time{})) //wplint:allow determinism -- fixture: stacked //wplint:flow -- fixture: stacked
}

// HalfSuppressed allows only determinism; the wpflow finding on the
// same line must survive.
func HalfSuppressed(res *sim.Result) {
	res.FunctionalInsts = uint64(time.Since(time.Time{})) //wplint:allow determinism -- fixture: deliberate half-suppression
}
