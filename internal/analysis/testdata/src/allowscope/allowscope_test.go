// This _test.go file contains deliberate violations of several
// analyzers. The source loader excludes test files from analysis
// entirely, so none of these may ever appear in a diagnostic — the
// allowscope fixture test asserts exactly that.
package allowscope

import (
	"time"

	"repro/internal/obs"
)

// TestFileCounter would be a statpath finding in a non-test file.
var TestFileCounter obs.Counter

// TestFileWall would be a determinism finding in a non-test file.
func TestFileWall() time.Time {
	return time.Now()
}
