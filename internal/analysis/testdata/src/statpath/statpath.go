// Package statpath is a wplint fixture: raw increments of the
// wrong-path-split statistic counters outside their approved accessors
// must be flagged; reading them and zero-resets must pass.
package statpath

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
)

// RawCacheIncrement bumps a split counter directly: flagged.
func RawCacheIncrement(l *cache.Level) {
	l.Stats.Wrong.Accesses++  // want: direct increment
	l.Stats.Correct.Misses++  // want: direct increment
	l.Stats.Wrong.Misses += 2 // want: direct increment
}

// RawHierarchyIncrement bumps the DRAM split counter directly: flagged.
func RawHierarchyIncrement(h *cache.Hierarchy) {
	h.WrongMemAccesses++ // want: direct increment
}

// RawCoreIncrement bumps the core's wrong-path counters directly:
// flagged.
func RawCoreIncrement(s *core.Stats) {
	s.WPExecuted++ // want: direct increment
	s.WPFetched++  // want: direct increment
}

// ReadsAndResets only reads counters and zero-resets whole blocks:
// passes (plain assignment is a reset, not an increment).
func ReadsAndResets(l *cache.Level, s *core.Stats) uint64 {
	total := l.Stats.Wrong.Accesses + s.WPExecuted
	l.Stats.Wrong.Accesses = 0
	l.Stats = cache.LevelStats{}
	// Non-protected counters may be incremented anywhere.
	l.Stats.Writebacks++
	return total
}

// HandMintedHandles constructs obs metric handles without a registry:
// every form is flagged — these handles never appear in a snapshot.
func HandMintedHandles() {
	c := obs.Counter{} // want: direct construction of obs.Counter
	c.Inc()
	g := &obs.Gauge{} // want: direct construction of obs.Gauge
	g.Set(1)
	h := new(obs.Histogram) // want: direct construction of obs.Histogram via new()
	h.Observe(2)
	var v obs.Counter // want: value declaration of obs.Counter
	v.Inc()
}

// RegistryHandles obtains every handle from a registry: passes.
// Pointer-typed declarations are fine — they hold registry handles.
func RegistryHandles(r *obs.Registry) uint64 {
	var c *obs.Counter
	c = r.Counter(obs.Key("x_total", "wl", "tech"))
	c.Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(4)
	return c.Value()
}

// BatchBoundaryPublish models the batched hot loop's publication
// discipline introduced with queue lanes: the obs handle check is
// hoisted to the lane boundary and the handle comes from a registry —
// the hoisted pattern passes. Split counters inside the drain loop
// must still go through their accessors; a raw bump per lane record is
// flagged exactly like its per-instruction ancestor.
func BatchBoundaryPublish(r *obs.Registry, s *core.Stats, lane []uint64) {
	occ := r.Histogram("queue_occupancy")
	if obsOn := occ != nil; obsOn {
		occ.Observe(uint64(len(lane))) // boundary publish: passes
	}
	for range lane {
		s.WPExecuted++ // want: direct increment
	}
}

// BatchScratchHandle mints a per-batch scratch histogram instead of
// drawing it from the registry: flagged even at a batch boundary — a
// hand-made handle never reaches the snapshot no matter how rarely it
// is touched.
func BatchScratchHandle(lane []uint64) {
	depth := obs.Histogram{} // want: direct construction of obs.Histogram
	for i := range lane {
		depth.Observe(uint64(i))
	}
}

// NilHandleBundleDetach models the disabled-obs fix: examining handles
// for nil and detaching the bundle reads, never mints or increments —
// passes.
func NilHandleBundleDetach(qo *obs.QueueObs) bool {
	return qo != nil && (qo.Occupancy != nil || qo.PeekDepth != nil)
}
