// Package statpath is a wplint fixture: raw increments of the
// wrong-path-split statistic counters outside their approved accessors
// must be flagged; reading them and zero-resets must pass.
package statpath

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
)

// RawCacheIncrement bumps a split counter directly: flagged.
func RawCacheIncrement(l *cache.Level) {
	l.Stats.Wrong.Accesses++  // want: direct increment
	l.Stats.Correct.Misses++  // want: direct increment
	l.Stats.Wrong.Misses += 2 // want: direct increment
}

// RawHierarchyIncrement bumps the DRAM split counter directly: flagged.
func RawHierarchyIncrement(h *cache.Hierarchy) {
	h.WrongMemAccesses++ // want: direct increment
}

// RawCoreIncrement bumps the core's wrong-path counters directly:
// flagged.
func RawCoreIncrement(s *core.Stats) {
	s.WPExecuted++ // want: direct increment
	s.WPFetched++  // want: direct increment
}

// ReadsAndResets only reads counters and zero-resets whole blocks:
// passes (plain assignment is a reset, not an increment).
func ReadsAndResets(l *cache.Level, s *core.Stats) uint64 {
	total := l.Stats.Wrong.Accesses + s.WPExecuted
	l.Stats.Wrong.Accesses = 0
	l.Stats = cache.LevelStats{}
	// Non-protected counters may be incremented anywhere.
	l.Stats.Writebacks++
	return total
}

// HandMintedHandles constructs obs metric handles without a registry:
// every form is flagged — these handles never appear in a snapshot.
func HandMintedHandles() {
	c := obs.Counter{} // want: direct construction of obs.Counter
	c.Inc()
	g := &obs.Gauge{} // want: direct construction of obs.Gauge
	g.Set(1)
	h := new(obs.Histogram) // want: direct construction of obs.Histogram via new()
	h.Observe(2)
	var v obs.Counter // want: value declaration of obs.Counter
	v.Inc()
}

// RegistryHandles obtains every handle from a registry: passes.
// Pointer-typed declarations are fine — they hold registry handles.
func RegistryHandles(r *obs.Registry) uint64 {
	var c *obs.Counter
	c = r.Counter(obs.Key("x_total", "wl", "tech"))
	c.Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(4)
	return c.Value()
}
