// Package statpath is a wplint fixture: raw increments of the
// wrong-path-split statistic counters outside their approved accessors
// must be flagged; reading them and zero-resets must pass.
package statpath

import (
	"repro/internal/cache"
	"repro/internal/core"
)

// RawCacheIncrement bumps a split counter directly: flagged.
func RawCacheIncrement(l *cache.Level) {
	l.Stats.Wrong.Accesses++  // want: direct increment
	l.Stats.Correct.Misses++  // want: direct increment
	l.Stats.Wrong.Misses += 2 // want: direct increment
}

// RawHierarchyIncrement bumps the DRAM split counter directly: flagged.
func RawHierarchyIncrement(h *cache.Hierarchy) {
	h.WrongMemAccesses++ // want: direct increment
}

// RawCoreIncrement bumps the core's wrong-path counters directly:
// flagged.
func RawCoreIncrement(s *core.Stats) {
	s.WPExecuted++ // want: direct increment
	s.WPFetched++  // want: direct increment
}

// ReadsAndResets only reads counters and zero-resets whole blocks:
// passes (plain assignment is a reset, not an increment).
func ReadsAndResets(l *cache.Level, s *core.Stats) uint64 {
	total := l.Stats.Wrong.Accesses + s.WPExecuted
	l.Stats.Wrong.Accesses = 0
	l.Stats = cache.LevelStats{}
	// Non-protected counters may be incremented anywhere.
	l.Stats.Writebacks++
	return total
}
