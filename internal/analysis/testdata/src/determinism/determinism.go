// Package determinism is a wplint fixture: each marked line seeds a
// violation of the determinism analyzer; the unmarked idioms must stay
// clean. The expected diagnostics live in testdata/determinism.golden.
package determinism

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stats mimics a simulator statistics block.
type Stats struct{ Events uint64 }

// WallTime seeds the banned time.Now / time.Since calls.
func WallTime() time.Duration {
	start := time.Now()      // want: nondeterministic call time.Now
	return time.Since(start) // want: nondeterministic call time.Since
}

// AllowedWallTime is the shim pattern: the directive suppresses it.
func AllowedWallTime() time.Time {
	return time.Now() //wplint:allow determinism -- fixture: approved shim pattern
}

// GlobalRand seeds the math/rand global-state ban; the explicitly
// seeded generator stays legal.
func GlobalRand() (int, int) {
	bad := rand.Intn(10) // want: nondeterministic call math/rand.Intn
	r := rand.New(rand.NewSource(42))
	return bad, r.Intn(10)
}

// Env seeds the environment-read ban.
func Env() string {
	return os.Getenv("SEED") // want: nondeterministic call os.Getenv
}

// MapOrderCall seeds the call-inside-map-range rule.
func MapOrderCall(m map[string]int, s *Stats) {
	for name := range m {
		fmt.Println(name) // want: function call inside map iteration
	}
	for range m {
		s.Events++ // want: writes field Events in map-iteration order
	}
}

// UnsortedCollect appends in map order and never sorts.
func UnsortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want: appends to out in map-iteration order
	}
	return out
}

// LastWriterWins assigns a loop-dependent value to an outer variable.
func LastWriterWins(m map[string]int) string {
	winner := ""
	for k := range m {
		winner = k // want: assigns a loop-dependent value
	}
	return winner
}

// FloatAccum accumulates floats in map order (rounding depends on it).
func FloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want: accumulation is order-dependent
	}
	return sum
}

// OrderDependentReturn returns a map-order-dependent pick.
func OrderDependentReturn(m map[string]int) string {
	for k := range m {
		return k // want: returns a value chosen by map-iteration order
	}
	return ""
}

// CleanIdioms must produce no diagnostics: key-indexed writes, integer
// aggregation, constant flags, found/return-constant patterns, and the
// collect-then-sort idiom.
func CleanIdioms(m map[string]int) ([]string, int, bool) {
	inverse := make(map[string]bool, len(m))
	total := 0
	found := false
	for k, v := range m {
		inverse[k] = true
		total += v
		if v > 100 {
			found = true
		}
		local := v * 2
		_ = local
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, total, found
}
