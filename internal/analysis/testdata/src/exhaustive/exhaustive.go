// Package exhaustive is a wplint fixture: switches over the simulator
// enums that miss declared constants without a default must be
// flagged; exhaustive switches and defaulted switches must pass.
package exhaustive

import (
	"repro/internal/isa"
	"repro/internal/simerr"
	"repro/internal/wrongpath"
)

// MissingClassCases lacks most isa.Class cases and has no default.
func MissingClassCases(c isa.Class) int {
	switch c { // want: not exhaustive
	case isa.ClassALU:
		return 1
	case isa.ClassLoad:
		return 2
	}
	return 0
}

// MissingKindCases drops the reproduction's ConvResolve extension —
// exactly the "new policy added, dispatch not updated" hazard.
func MissingKindCases(k wrongpath.Kind) string {
	switch k { // want: not exhaustive
	case wrongpath.NoWP:
		return "nowp"
	case wrongpath.InstRec:
		return "instrec"
	case wrongpath.Conv:
		return "conv"
	case wrongpath.WPEmul:
		return "wpemul"
	}
	return ""
}

// Defaulted handles the remainder explicitly: passes.
func Defaulted(c isa.Class) bool {
	switch c {
	case isa.ClassLoad, isa.ClassStore:
		return true
	default:
		return false
	}
}

// Exhaustive covers every declared wrongpath.Kind: passes without a
// default.
func Exhaustive(k wrongpath.Kind) bool {
	switch k {
	case wrongpath.NoWP:
		return false
	case wrongpath.InstRec, wrongpath.Conv, wrongpath.ConvResolve:
		return true
	case wrongpath.WPEmul:
		return true
	}
	return false
}

// NonEnumSwitch is outside the enforced enum set: passes.
func NonEnumSwitch(s string) int {
	switch s {
	case "a":
		return 1
	}
	return 0
}

// CompleteKindList opts into the coverage check and names every Kind:
// passes. This is the wrongpath.Kinds() idiom.
var CompleteKindList = [...]wrongpath.Kind{ //wplint:exhaustive
	wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.ConvResolve, wrongpath.WPEmul,
}

// IncompleteKindList is marked exhaustive but drops ConvResolve — the
// "new Kind added, canonical list not updated" hazard.
var IncompleteKindList = []wrongpath.Kind{ //wplint:exhaustive // want: missing ConvResolve
	wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.WPEmul,
}

// UnmarkedPartialList carries no directive: deliberately partial lists
// (e.g. the approximate-techniques subset) stay legal.
var UnmarkedPartialList = []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv}

// MarkedNonEnumList is marked but its element type is outside the
// enforced enum set: passes.
var MarkedNonEnumList = []int{ //wplint:exhaustive
	1, 2, 3,
}

// KindAlias is a transparent alias: switches over it are checked
// against the underlying enforced enum.
type KindAlias = wrongpath.Kind

// AliasedSwitch misses ConvResolve through the alias: flagged.
func AliasedSwitch(k KindAlias) bool {
	switch k { // want: not exhaustive
	case wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.WPEmul:
		return true
	}
	return false
}

// localKind renames the enforced enum; coverage still applies and is
// compared by value, so converted constants count.
type localKind wrongpath.Kind

// RenamedSwitch misses every case but NoWP: flagged.
func RenamedSwitch(k localKind) bool {
	switch k { // want: not exhaustive
	case localKind(wrongpath.NoWP):
		return true
	}
	return false
}

// RenamedExhaustive covers all constants through conversions: passes.
func RenamedExhaustive(k localKind) bool {
	switch k {
	case localKind(wrongpath.NoWP), localKind(wrongpath.InstRec), localKind(wrongpath.Conv),
		localKind(wrongpath.ConvResolve), localKind(wrongpath.WPEmul):
		return true
	}
	return false
}

// SentinelSwitch dispatches on the fault classification but ignores
// half the taxonomy: flagged.
func SentinelSwitch(err error) string {
	switch err { // want: missing ErrCanceled, ErrConfig, ErrDegraded, ErrTraceCorrupt
	case simerr.ErrStall:
		return "stall"
	case simerr.ErrWorkerPanic:
		return "panic"
	case simerr.ErrUnsupported:
		return "unsupported"
	}
	return ""
}

// SentinelSwitchDefaulted handles the remainder explicitly: passes.
func SentinelSwitchDefaulted(err error) string {
	switch err {
	case simerr.ErrStall:
		return "stall"
	default:
		return "other"
	}
}

// SentinelSwitchComplete names every sentinel: passes.
func SentinelSwitchComplete(err error) bool {
	switch err {
	case simerr.ErrTraceCorrupt, simerr.ErrStall, simerr.ErrWorkerPanic:
		return true
	case simerr.ErrUnsupported, simerr.ErrDegraded, simerr.ErrConfig, simerr.ErrCanceled:
		return false
	}
	return false
}

// NonSentinelErrorSwitch compares against a local error only: passes
// (the sentinel rule keys on the simerr taxonomy, not every error).
func NonSentinelErrorSwitch(err, sentinel error) bool {
	switch err {
	case sentinel:
		return true
	}
	return false
}

// FaultTypeSwitch names a fault type with no default: unknown fault
// classes would be silently dropped. Flagged.
func FaultTypeSwitch(err error) uint64 {
	switch f := err.(type) { // want: type switch over simerr fault types has no default
	case *simerr.Fault:
		return f.PC
	}
	return 0
}

// FaultTypeSwitchDefaulted declares the open-world arm: passes.
func FaultTypeSwitchDefaulted(err error) bool {
	switch err.(type) {
	case *simerr.Fault:
		return true
	default:
		return false
	}
}

// PlainTypeSwitch never names a fault type: passes.
func PlainTypeSwitch(x any) bool {
	switch x.(type) {
	case int:
		return true
	}
	return false
}
