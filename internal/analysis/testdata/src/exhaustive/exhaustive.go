// Package exhaustive is a wplint fixture: switches over the simulator
// enums that miss declared constants without a default must be
// flagged; exhaustive switches and defaulted switches must pass.
package exhaustive

import (
	"repro/internal/isa"
	"repro/internal/wrongpath"
)

// MissingClassCases lacks most isa.Class cases and has no default.
func MissingClassCases(c isa.Class) int {
	switch c { // want: not exhaustive
	case isa.ClassALU:
		return 1
	case isa.ClassLoad:
		return 2
	}
	return 0
}

// MissingKindCases drops the reproduction's ConvResolve extension —
// exactly the "new policy added, dispatch not updated" hazard.
func MissingKindCases(k wrongpath.Kind) string {
	switch k { // want: not exhaustive
	case wrongpath.NoWP:
		return "nowp"
	case wrongpath.InstRec:
		return "instrec"
	case wrongpath.Conv:
		return "conv"
	case wrongpath.WPEmul:
		return "wpemul"
	}
	return ""
}

// Defaulted handles the remainder explicitly: passes.
func Defaulted(c isa.Class) bool {
	switch c {
	case isa.ClassLoad, isa.ClassStore:
		return true
	default:
		return false
	}
}

// Exhaustive covers every declared wrongpath.Kind: passes without a
// default.
func Exhaustive(k wrongpath.Kind) bool {
	switch k {
	case wrongpath.NoWP:
		return false
	case wrongpath.InstRec, wrongpath.Conv, wrongpath.ConvResolve:
		return true
	case wrongpath.WPEmul:
		return true
	}
	return false
}

// NonEnumSwitch is outside the enforced enum set: passes.
func NonEnumSwitch(s string) int {
	switch s {
	case "a":
		return 1
	}
	return 0
}

// CompleteKindList opts into the coverage check and names every Kind:
// passes. This is the wrongpath.Kinds() idiom.
var CompleteKindList = [...]wrongpath.Kind{ //wplint:exhaustive
	wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.ConvResolve, wrongpath.WPEmul,
}

// IncompleteKindList is marked exhaustive but drops ConvResolve — the
// "new Kind added, canonical list not updated" hazard.
var IncompleteKindList = []wrongpath.Kind{ //wplint:exhaustive // want: missing ConvResolve
	wrongpath.NoWP, wrongpath.InstRec, wrongpath.Conv, wrongpath.WPEmul,
}

// UnmarkedPartialList carries no directive: deliberately partial lists
// (e.g. the approximate-techniques subset) stay legal.
var UnmarkedPartialList = []wrongpath.Kind{wrongpath.NoWP, wrongpath.Conv}

// MarkedNonEnumList is marked but its element type is outside the
// enforced enum set: passes.
var MarkedNonEnumList = []int{ //wplint:exhaustive
	1, 2, 3,
}
