// Package checkpoint is a wplint fixture: functional checkpoints that
// are not restored on every return path must be flagged.
package checkpoint

import (
	"repro/internal/functional"
	"repro/internal/isa"
)

func cpu() *functional.CPU {
	prog := &isa.Program{}
	return functional.New(prog, nil, 0)
}

// LeakyEarlyReturn takes a checkpoint but the early return path skips
// the restore: flagged.
func LeakyEarlyReturn(c *functional.CPU, bail bool) int {
	cp := c.Checkpoint() // want: return path
	if bail {
		return -1
	}
	c.Restore(cp)
	return 0
}

// NeverRestored falls off the end without restoring: flagged.
func NeverRestored(c *functional.CPU) {
	cp := c.Checkpoint() // want: return path
	_ = cp
}

// Paired restores before its only return: passes.
func Paired(c *functional.CPU) int {
	cp := c.Checkpoint()
	c.Restore(cp)
	return 0
}

// DeferredRestore releases through a defer covering all paths: passes.
func DeferredRestore(c *functional.CPU, bail bool) int {
	cp := c.Checkpoint()
	defer c.Restore(cp)
	if bail {
		return -1
	}
	return 0
}

// DeferredClosureRestore releases inside a deferred closure: passes.
func DeferredClosureRestore(c *functional.CPU) int {
	cp := c.Checkpoint()
	defer func() { c.Restore(cp) }()
	return 1
}
