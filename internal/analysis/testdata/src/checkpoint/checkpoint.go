// Package checkpoint is a wplint fixture: functional checkpoints that
// are not restored on every return path must be flagged.
package checkpoint

import (
	"repro/internal/checkpoint"
	"repro/internal/functional"
	"repro/internal/isa"
)

func cpu() *functional.CPU {
	prog := &isa.Program{}
	return functional.New(prog, nil, 0)
}

// LeakyEarlyReturn takes a checkpoint but the early return path skips
// the restore: flagged.
func LeakyEarlyReturn(c *functional.CPU, bail bool) int {
	cp := c.Checkpoint() // want: return path
	if bail {
		return -1
	}
	c.Restore(cp)
	return 0
}

// NeverRestored falls off the end without restoring: flagged.
func NeverRestored(c *functional.CPU) {
	cp := c.Checkpoint() // want: return path
	_ = cp
}

// Paired restores before its only return: passes.
func Paired(c *functional.CPU) int {
	cp := c.Checkpoint()
	c.Restore(cp)
	return 0
}

// DeferredRestore releases through a defer covering all paths: passes.
func DeferredRestore(c *functional.CPU, bail bool) int {
	cp := c.Checkpoint()
	defer c.Restore(cp)
	if bail {
		return -1
	}
	return 0
}

// DeferredClosureRestore releases inside a deferred closure: passes.
func DeferredClosureRestore(c *functional.CPU) int {
	cp := c.Checkpoint()
	defer func() { c.Restore(cp) }()
	return 1
}

// --- snapshot codec convention (SaveState/RestoreState symmetry) ---

// snapshotVersion stamps the fixture sections.
const snapshotVersion = 1

// symmetric saves and restores the same field set: passes.
type symmetric struct {
	a, b uint64
}

func (s *symmetric) SaveState(w *checkpoint.Writer) {
	w.Section("fixture/symmetric", snapshotVersion)
	w.Uint64(s.a)
	w.Uint64(s.b)
}

func (s *symmetric) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("fixture/symmetric", snapshotVersion); err != nil {
		return err
	}
	s.a = r.Uint64()
	s.b = r.Uint64()
	return r.Err()
}

// delegating references fields only as receivers of nested state
// calls — still symmetric: passes.
type delegating struct {
	inner symmetric
	n     uint64
}

func (d *delegating) SaveState(w *checkpoint.Writer) {
	w.Section("fixture/delegating", snapshotVersion)
	w.Uint64(d.n)
	d.inner.SaveState(w)
}

func (d *delegating) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("fixture/delegating", snapshotVersion); err != nil {
		return err
	}
	d.n = r.Uint64()
	return d.inner.RestoreState(r)
}

// lopsided serializes b but never restores it, so every resumed run
// decodes the rest of the snapshot misaligned: flagged on RestoreState.
type lopsided struct {
	a, b uint64
}

func (s *lopsided) SaveState(w *checkpoint.Writer) {
	w.Section("fixture/lopsided", snapshotVersion)
	w.Uint64(s.a)
	w.Uint64(s.b)
}

func (s *lopsided) RestoreState(r *checkpoint.Reader) error { // want: lopsided.b is serialized by SaveState but never referenced by RestoreState
	if err := r.Section("fixture/lopsided", snapshotVersion); err != nil {
		return err
	}
	s.a = r.Uint64()
	return r.Err()
}

// phantom restores a field SaveState never wrote: flagged on SaveState.
type phantom struct {
	a, b uint64
}

func (s *phantom) SaveState(w *checkpoint.Writer) { // want: phantom.b is referenced by RestoreState but never serialized by SaveState
	w.Section("fixture/phantom", snapshotVersion)
	w.Uint64(s.a)
}

func (s *phantom) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("fixture/phantom", snapshotVersion); err != nil {
		return err
	}
	s.a = r.Uint64()
	s.b = r.Uint64()
	return r.Err()
}

// oneSided has no RestoreState at all: flagged.
type oneSided struct {
	a uint64
}

func (s *oneSided) SaveState(w *checkpoint.Writer) { // want: oneSided has SaveState but no RestoreState
	w.Section("fixture/oneSided", snapshotVersion)
	w.Uint64(s.a)
}

// literalStamp hardcodes its section version, so a field change cannot
// force a visible bump: flagged at the literal.
type literalStamp struct {
	a uint64
}

func (s *literalStamp) SaveState(w *checkpoint.Writer) {
	w.Section("fixture/literalStamp", 1) // want: literal version
	w.Uint64(s.a)
}

func (s *literalStamp) RestoreState(r *checkpoint.Reader) error {
	if err := r.Section("fixture/literalStamp", 1); err != nil { // want: literal version
		return err
	}
	s.a = r.Uint64()
	return r.Err()
}
