package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the wpflow analyzer: the taint
// domain, per-function summaries, and the flow-insensitive
// intraprocedural evaluator the interprocedural fixpoint is built from.
// The source/sink/sanitizer tables and the reporting live in wpflow.go.

// taintMask is a bit set of taint kinds a value may carry.
type taintMask uint8

const (
	// taintWP marks wrong-path speculative state: the results of
	// functional wrong-path emulation and of wrong-path stream
	// reconstruction, and anything derived from them.
	taintWP taintMask = 1 << iota
	// taintWall marks host wall-clock readings.
	taintWall
	// taintPanic marks values recovered from worker panics.
	taintPanic

	taintAll = taintWP | taintWall | taintPanic
)

// describe names the dominant kind of a mask for diagnostics
// (wrong-path contamination outranks panic values outranks host time).
func (m taintMask) describe() string {
	switch {
	case m&taintWP != 0:
		return "wrong-path-tainted"
	case m&taintPanic != 0:
		return "recovered-panic-tainted"
	case m&taintWall != 0:
		return "host-wall-clock-tainted"
	default:
		return "untainted"
	}
}

// Summary captures one function's externally visible taint behavior,
// the unit of wpflow's interprocedural reasoning. Summaries are
// computed bottom-up over the package call graph and iterated to
// fixpoint (recursion starts from the optimistic zero summary and only
// grows, so the iteration is monotone).
type Summary struct {
	// Results is the taint its return values may carry when every
	// argument is untainted — non-zero iff the body reaches a taint
	// source.
	Results taintMask
	// ParamFlows[i] reports that parameter i (receiver first for
	// methods) may flow into a return value, so a tainted argument
	// taints the call's results.
	ParamFlows []bool
	// ParamSinks[i] is non-nil when parameter i may reach a taint sink
	// inside the function (or transitively through its callees): a call
	// passing a tainted argument there is a leak, reported at the call
	// site.
	ParamSinks []*paramSink
}

// paramSink describes the sink a parameter can reach.
type paramSink struct {
	// kinds is the set of taint kinds the sink rejects.
	kinds taintMask
	// desc names the sink ("correct-path statistic core.Stats.Cycles").
	desc string
	// chain is the callee chain from this function down to the sink,
	// empty for a sink in the function's own body.
	chain []string
	// cpu marks a committed-CPU-state sink, exempt inside the caller's
	// checkpoint/restore window.
	cpu bool
}

func (p *paramSink) equal(q *paramSink) bool {
	if (p == nil) != (q == nil) {
		return false
	}
	if p == nil {
		return true
	}
	if p.kinds != q.kinds || p.desc != q.desc || p.cpu != q.cpu || len(p.chain) != len(q.chain) {
		return false
	}
	for i := range p.chain {
		if p.chain[i] != q.chain[i] {
			return false
		}
	}
	return true
}

func (s *Summary) equal(t *Summary) bool {
	if (s == nil) != (t == nil) {
		return false
	}
	if s == nil {
		return true
	}
	if s.Results != t.Results || len(s.ParamFlows) != len(t.ParamFlows) || len(s.ParamSinks) != len(t.ParamSinks) {
		return false
	}
	for i := range s.ParamFlows {
		if s.ParamFlows[i] != t.ParamFlows[i] {
			return false
		}
	}
	for i := range s.ParamSinks {
		if !s.ParamSinks[i].equal(t.ParamSinks[i]) {
			return false
		}
	}
	return true
}

// sinkHit is one observed taint-to-sink flow.
type sinkHit struct {
	pos token.Pos
	// kinds is the sink's rejected-kind set; mask is the taint actually
	// involved (their intersection is non-empty).
	kinds taintMask
	mask  taintMask
	desc  string
	chain []string
	cpu   bool
}

// evaluator runs the flow-insensitive taint propagation over one
// function body: local variables and parameters carry taint masks,
// stores into struct fields weakly taint the base variable, and call
// results are resolved through the source/sanitizer tables and the
// package summaries. Heap round-trips (writing a field, reading it
// back through another reference) are deliberately out of scope — the
// decoupling queue is the sanctioned channel for wrong-path records and
// would otherwise taint every consumer.
type evaluator struct {
	w    *wpflow
	node *CallNode
	// seeds pre-taints parameters (summary mode); sources enables taint
	// introduction at source calls (result-summary and report modes).
	taint   map[types.Object]taintMask
	sources bool

	results taintMask
	hits    []sinkHit
	changed bool

	checkpoints []token.Pos // Checkpoint() call positions
	restores    []token.Pos // Restore() call positions
	deferredRes bool
}

// newEvaluator prepares an evaluation of node's body.
func newEvaluator(w *wpflow, node *CallNode, seeds map[types.Object]taintMask, sources bool) *evaluator {
	e := &evaluator{w: w, node: node, taint: make(map[types.Object]taintMask), sources: sources}
	for obj, m := range seeds {
		e.taint[obj] = m
	}
	e.scanWindows()
	return e
}

// scanWindows records the function's Checkpoint/Restore call positions;
// committed-CPU-state sinks between a checkpoint and a later (or
// deferred) restore are sanctioned — that is exactly the rollback
// discipline the checkpoint analyzer enforces.
func (e *evaluator) scanWindows() {
	pass := e.w.pass
	ast.Inspect(e.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if containsMethodCall(pass, n.Call, "internal/functional", "Restore") {
				e.deferredRes = true
				return false
			}
		case *ast.CallExpr:
			if isMethodCall(pass, n, "internal/functional", "Checkpoint") {
				e.checkpoints = append(e.checkpoints, n.Pos())
			}
			if isMethodCall(pass, n, "internal/functional", "Restore") {
				e.restores = append(e.restores, n.Pos())
			}
		}
		return true
	})
}

// inWindow reports whether pos falls inside a checkpoint/restore
// window.
func (e *evaluator) inWindow(pos token.Pos) bool {
	for _, cp := range e.checkpoints {
		if cp >= pos {
			continue
		}
		if e.deferredRes {
			return true
		}
		for _, r := range e.restores {
			if r > pos {
				return true
			}
		}
	}
	return false
}

// run iterates propagation to fixpoint, then collects sink hits and
// result taint with the stable variable masks.
func (e *evaluator) run() {
	for i := 0; i < 32; i++ {
		e.changed = false
		e.propagate()
		if !e.changed {
			break
		}
	}
	e.collect()
}

// mark taints a variable.
func (e *evaluator) mark(obj types.Object, m taintMask) {
	if obj == nil || m == 0 {
		return
	}
	if e.taint[obj]&m != m {
		e.taint[obj] |= m
		e.changed = true
	}
}

// propagate applies every assignment-like transfer once.
func (e *evaluator) propagate() {
	info := e.w.pass.Pkg.Info
	ast.Inspect(e.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			e.applyAssign(n, false)
		case *ast.RangeStmt:
			m := e.exprTaint(n.X)
			if id, ok := n.Key.(*ast.Ident); ok {
				e.mark(info.ObjectOf(id), m)
			}
			if id, ok := n.Value.(*ast.Ident); ok {
				e.mark(info.ObjectOf(id), m)
			}
		case *ast.TypeSwitchStmt:
			// switch v := x.(type): each clause's implicit v inherits x.
			var x ast.Expr
			switch a := n.Assign.(type) {
			case *ast.AssignStmt:
				if len(a.Rhs) == 1 {
					if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
						x = ta.X
					}
				}
			case *ast.ExprStmt:
				if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
					x = ta.X
				}
			}
			if x != nil {
				m := e.exprTaint(x)
				for _, cc := range n.Body.List {
					e.mark(info.Implicits[cc.(*ast.CaseClause)], m)
				}
			}
		}
		return true
	})
}

// applyAssign propagates one assignment; in collect mode it also
// checks field stores against the sink tables.
func (e *evaluator) applyAssign(as *ast.AssignStmt, check bool) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		m := e.exprTaint(as.Rhs[0])
		for _, l := range as.Lhs {
			e.assignTo(l, m, as.Pos(), check)
		}
		return
	}
	for i, l := range as.Lhs {
		var m taintMask
		if i < len(as.Rhs) {
			m = e.exprTaint(as.Rhs[i])
		}
		e.assignTo(l, m, as.Pos(), check)
	}
}

// assignTo records taint flowing into one lvalue. A store into a
// struct field or element weakly taints the base variable; in check
// mode, stores into configured sink fields are reported.
func (e *evaluator) assignTo(lhs ast.Expr, m taintMask, pos token.Pos, check bool) {
	info := e.w.pass.Pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		e.mark(info.ObjectOf(l), m)
	case *ast.SelectorExpr:
		if check && m != 0 {
			e.checkFieldStore(l, m, pos)
		}
		e.taintBase(l.X, m)
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok && check && m != 0 {
			e.checkFieldStore(sel, m, pos)
		}
		e.taintBase(l.X, m)
	case *ast.StarExpr:
		e.taintBase(l.X, m)
	}
}

// taintBase walks to the root identifier of an lvalue chain and taints
// it (weak update: the variable may now carry the stored taint).
func (e *evaluator) taintBase(x ast.Expr, m taintMask) {
	if m == 0 {
		return
	}
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			e.mark(e.w.pass.Pkg.Info.ObjectOf(v), m)
			return
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			return
		}
	}
}

// collect re-walks the body with the converged taint map, recording
// sink hits (field stores, composite literals, call arguments) and the
// taint of returned values.
func (e *evaluator) collect() {
	ast.Inspect(e.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			e.applyAssign(n, true)
		case *ast.CompositeLit:
			e.checkCompositeLit(n)
		case *ast.CallExpr:
			e.checkCallArgs(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				e.results |= e.exprTaint(r)
			}
		}
		return true
	})
}

// exprTaint computes the taint mask of one expression.
func (e *evaluator) exprTaint(x ast.Expr) taintMask {
	info := e.w.pass.Pkg.Info
	switch x := x.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			return e.taint[obj]
		}
		return 0
	case *ast.ParenExpr:
		return e.exprTaint(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return 0 // qualified identifier: package-level object
			}
		}
		return e.exprTaint(x.X)
	case *ast.IndexExpr:
		return e.exprTaint(x.X)
	case *ast.SliceExpr:
		return e.exprTaint(x.X)
	case *ast.StarExpr:
		return e.exprTaint(x.X)
	case *ast.UnaryExpr:
		return e.exprTaint(x.X)
	case *ast.BinaryExpr:
		return e.exprTaint(x.X) | e.exprTaint(x.Y)
	case *ast.TypeAssertExpr:
		return e.exprTaint(x.X)
	case *ast.CompositeLit:
		var m taintMask
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				m |= e.exprTaint(kv.Value)
			} else {
				m |= e.exprTaint(elt)
			}
		}
		return m
	case *ast.CallExpr:
		return e.callTaint(x)
	}
	return 0
}

// callTaint resolves the taint of a call's results: conversions and
// builtins propagate their operands, sources introduce their kind,
// sanitizers launder, same-package callees answer from their summary,
// and everything else conservatively propagates the union of its
// arguments (string formatting, arithmetic helpers and method chains
// keep taint; constructors of fresh state drop it only via the
// sanitizer table).
func (e *evaluator) callTaint(call *ast.CallExpr) taintMask {
	info := e.w.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.exprTaint(call.Args[0]) // conversion
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "recover":
				if e.sources {
					return taintPanic
				}
				return 0
			case "append", "copy", "len", "cap", "min", "max":
				var m taintMask
				for _, a := range call.Args {
					m |= e.exprTaint(a)
				}
				return m
			default: // make, new, delete, clear, panic, print, ...
				return 0
			}
		}
	}
	argUnion := func() taintMask {
		var m taintMask
		for _, a := range e.callArgExprs(call, StaticCallee(info, call)) {
			m |= e.exprTaint(a)
		}
		return m
	}
	callee := StaticCallee(info, call)
	if callee == nil {
		return argUnion()
	}
	if e.w.approved(callee) {
		return 0
	}
	if kind, ok := e.w.sourceOf(callee); ok {
		m := argUnion()
		if e.sources {
			m |= kind
		}
		return m
	}
	if s, ok := e.w.summaries[callee]; ok {
		var m taintMask
		if e.sources {
			// A callee that reads a source taints our value too; in
			// param-seed mode only seeded flows count, for clean
			// attribution.
			m = s.Results
		}
		args := e.callArgExprs(call, callee)
		for i, a := range args {
			pi := paramIndexOf(callee, i, len(args))
			if pi < len(s.ParamFlows) && s.ParamFlows[pi] {
				m |= e.exprTaint(a)
			}
		}
		return m
	}
	return argUnion()
}

// callArgExprs returns the call's effective argument expressions, with
// a method call's receiver prepended so indexes align with
// paramObjects.
func (e *evaluator) callArgExprs(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	if callee != nil && callee.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, found := e.w.pass.Pkg.Info.Selections[sel]; found && s.Kind() == types.MethodVal {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
	}
	return call.Args
}

// paramIndexOf maps argument index i (of n total) onto the callee's
// parameter index, folding extra variadic arguments onto the last
// parameter.
func paramIndexOf(callee *types.Func, i, n int) int {
	sig := callee.Type().(*types.Signature)
	params := sig.Params().Len()
	if sig.Recv() != nil {
		params++
	}
	if params == 0 {
		return 0
	}
	if i >= params {
		return params - 1
	}
	return i
}

// paramObjects lists a declaration's receiver and parameter objects in
// signature order; unnamed and blank parameters hold nil placeholders
// to keep indexes aligned.
func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, nm := range f.Names {
				if nm.Name == "_" {
					out = append(out, nil)
					continue
				}
				out = append(out, pkg.Info.Defs[nm])
			}
		}
	}
	addList(fd.Recv)
	addList(fd.Type.Params)
	return out
}
