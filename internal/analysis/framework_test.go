package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureDir loads one testdata fixture directory with a fresh
// loader (no package memoization across calls, so tests that rewrite
// files re-read them).
func loadFixtureDir(t *testing.T, dir string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return pkg
}

// TestFixIdempotent is the -fix acceptance gate: applying suggested
// fixes once eliminates every fixable finding, and applying them a
// second time changes not a single byte.
func TestFixIdempotent(t *testing.T) {
	// The work tree must live inside the module (the loader resolves
	// repro/... imports against the module root); an underscore prefix
	// keeps it out of ./... expansion and go tooling alike.
	work, err := os.MkdirTemp(testdataDir(t), "_fixwork")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(work) })
	src, err := os.ReadFile(filepath.Join(testdataDir(t), "src", "exhaustive", "exhaustive.go"))
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(work, "exhaustive.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	diags := Run([]*Package{loadFixtureDir(t, work)}, []*Analyzer{Exhaustive})
	fixable := 0
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixable++
		}
	}
	if fixable == 0 {
		t.Fatal("exhaustive fixture produced no fixable findings")
	}
	applied, files, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != fixable || len(files) != 1 {
		t.Fatalf("applied %d fixes to %d files, want %d fixes to 1 file", applied, len(files), fixable)
	}
	afterFirst, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(afterFirst) == string(src) {
		t.Fatal("ApplyFixes reported success but the file is unchanged")
	}

	// Round two: every fixable finding must be gone, and the tree must
	// not move.
	diags2 := Run([]*Package{loadFixtureDir(t, work)}, []*Analyzer{Exhaustive})
	for _, d := range diags2 {
		if len(d.Fixes) > 0 {
			t.Errorf("finding still fixable after -fix: %s", d)
		}
	}
	applied2, _, err := ApplyFixes(diags2)
	if err != nil {
		t.Fatal(err)
	}
	if applied2 != 0 {
		t.Fatalf("second ApplyFixes applied %d fixes, want 0", applied2)
	}
	afterSecond, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(afterSecond) != string(afterFirst) {
		t.Fatal("second fix round changed bytes: -fix is not idempotent")
	}
}

// TestRunOrderAndDedupe is the regression test for nondeterministic
// diagnostic ordering: findings reported out of order, at equal
// positions by different analyzers, and as exact duplicates must come
// out of Run stably sorted by (file, line, col, analyzer, message) with
// duplicates collapsed.
func TestRunOrderAndDedupe(t *testing.T) {
	pkg := loadFixtureDir(t, filepath.Join(testdataDir(t), "src", "allowscope"))
	pos := pkg.Files[0].Name.Pos()
	report := func(pass *Pass) {
		pass.Reportf(pos, "zz later message")
		pass.Reportf(pos, "aa earlier message")
		pass.Reportf(pos, "aa earlier message") // exact duplicate
	}
	b := &Analyzer{Name: "bbb", Doc: "fake", Run: report}
	a := &Analyzer{Name: "aaa", Doc: "fake", Run: report}
	diags := Run([]*Package{pkg}, []*Analyzer{b, a}) // registered out of order
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+" "+d.Message)
	}
	want := []string{
		"aaa aa earlier message",
		"aaa zz later message",
		"bbb aa earlier message",
		"bbb zz later message",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("diagnostic order/dedupe mismatch\n got %q\nwant %q", got, want)
	}
}

// TestAllowScoping covers the directive edge cases: stacked directives
// on one line, a directive on a package-level declaration, and the
// loader's exclusion of _test.go files.
func TestAllowScoping(t *testing.T) {
	dir := filepath.Join(testdataDir(t), "src", "allowscope")
	pkg := loadFixtureDir(t, dir)
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism, StatPath, WPFlow})

	lineOf := func(d Diagnostic) int { return d.Pos.Line }
	byAnalyzer := map[string][]int{}
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("diagnostic in a _test.go file, which the loader must exclude: %s", d)
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], lineOf(d))
	}

	// The bare package-level declaration is statpath's only finding;
	// the directive-carrying twin right above it is suppressed.
	if got := byAnalyzer["statpath"]; len(got) != 1 {
		t.Errorf("statpath findings at lines %v, want exactly one (the bare package-level decl)", got)
	}
	// StackedDirectives suppresses both analyzers; HalfSuppressed only
	// determinism, so wpflow survives there and determinism reports
	// nothing at all.
	if got := byAnalyzer["determinism"]; len(got) != 0 {
		t.Errorf("determinism findings at lines %v, want none (both sites carry allow directives)", got)
	}
	if got := byAnalyzer["wpflow"]; len(got) != 1 {
		t.Errorf("wpflow findings at lines %v, want exactly one (the half-suppressed line)", got)
	}
}

// TestSARIFGolden locks the SARIF 2.1.0 rendering of the wpflow
// fixture's findings.
func TestSARIFGolden(t *testing.T) {
	pkg := loadFixtureDir(t, filepath.Join(testdataDir(t), "src", "wpflow"))
	diags := Run([]*Package{pkg}, []*Analyzer{WPFlow})
	data, err := SARIF(diags, []*Analyzer{WPFlow}, testdataDir(t))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "wpflow.sarif", string(data))
}

// TestBaselineRatchet covers the accept-then-ratchet lifecycle: accept
// current findings, pass while nothing new appears, fail on the first
// finding beyond the recorded counts — including one more duplicate of
// an already-baselined message.
func TestBaselineRatchet(t *testing.T) {
	mk := func(file, analyzer, msg string, line int) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: 1}, Analyzer: analyzer, Message: msg}
	}
	existing := []Diagnostic{
		mk("a.go", "wpflow", "leak one", 10),
		mk("a.go", "wpflow", "leak one", 20), // same key twice: count 2
		mk("b.go", "exhaustive", "missing X", 5),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, existing); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Identical findings (even at shifted lines) are fully accepted.
	shifted := []Diagnostic{
		mk("a.go", "wpflow", "leak one", 11),
		mk("a.go", "wpflow", "leak one", 22),
		mk("b.go", "exhaustive", "missing X", 7),
	}
	accepted, fresh := base.Filter(shifted)
	if len(accepted) != 3 || len(fresh) != 0 {
		t.Fatalf("baseline run: accepted %d fresh %d, want 3/0", len(accepted), len(fresh))
	}

	// A third duplicate of a key recorded twice must ratchet.
	grown := append(shifted, mk("a.go", "wpflow", "leak one", 30))
	if _, fresh = base.Filter(grown); len(fresh) != 1 {
		t.Fatalf("duplicate beyond recorded count: %d fresh findings, want 1", len(fresh))
	}
	// So must a new message.
	novel := append(shifted, mk("c.go", "wpflow", "leak two", 3))
	if _, fresh = base.Filter(novel); len(fresh) != 1 || fresh[0].Pos.Filename != "c.go" {
		t.Fatalf("novel finding not ratcheted: fresh = %v", fresh)
	}

	// A missing baseline file is an empty baseline.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, fresh = empty.Filter(shifted); len(fresh) != 3 {
		t.Fatalf("empty baseline accepted findings: %d fresh, want 3", len(fresh))
	}
}
