package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Checkpoint enforces speculative-state hygiene: a function that takes
// a functional checkpoint (the paper's Pin-style register snapshot used
// for wrong-path emulation) must restore it on every return path that
// follows the snapshot. An unpaired checkpoint means architectural
// state silently leaks wrong-path execution into the correct path.
//
// The check is lexical, not a full CFG dominator analysis: for every
// return point after a Checkpoint call (including falling off the end
// of the function) there must be a Restore call between the checkpoint
// and that return, or a defer that performs the Restore.
//
// The analyzer's second rule guards the snapshot codec convention
// (package checkpoint): a type with a SaveState(*checkpoint.Writer) /
// RestoreState(*checkpoint.Reader) pair must keep the two methods
// symmetric. Both must exist, both must reference the same receiver
// fields (a field serialized on one side but absent on the other is the
// classic resume-corruption bug: the byte streams silently misalign),
// and every Section stamp must cite a named version constant — never a
// literal — so adding a serialized field forces a visible snapshot
// version bump in review.
var Checkpoint = &Analyzer{
	Name: "checkpoint",
	Doc:  "functional checkpoints must be restored on every return path; SaveState/RestoreState pairs must stay symmetric and version-stamped",
	Run:  runCheckpoint,
}

// checkpointPairs lists the guarded create/release method pairs by the
// defining package's import-path suffix.
var checkpointPairs = []struct {
	pkgSuffix string
	create    string
	release   string
}{
	{"internal/functional", "Checkpoint", "Restore"},
}

func runCheckpoint(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCheckpoints(pass, fd)
		}
	}
	checkSnapshotPairs(pass)
}

// snapshotCodecPkg is the import-path suffix of the snapshot codec
// package whose Writer/Reader parameters identify state methods.
const snapshotCodecPkg = "internal/checkpoint"

// stateMethods collects the SaveState/RestoreState declarations of one
// receiver type.
type stateMethods struct {
	save, restore *ast.FuncDecl
}

// checkSnapshotPairs enforces the serialization convention on every
// SaveState/RestoreState pair in the package.
func checkSnapshotPairs(pass *Pass) {
	pairs := map[types.Object]*stateMethods{}
	var order []types.Object
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			var wantParam string
			switch fd.Name.Name {
			case "SaveState":
				wantParam = "Writer"
			case "RestoreState":
				wantParam = "Reader"
			default:
				continue
			}
			recv, okRecv := receiverTypeObj(pass, fd)
			if !okRecv || !hasCodecParam(pass, fd, wantParam) {
				continue
			}
			pm := pairs[recv]
			if pm == nil {
				pm = &stateMethods{}
				pairs[recv] = pm
				order = append(order, recv)
			}
			if fd.Name.Name == "SaveState" {
				pm.save = fd
			} else {
				pm.restore = fd
			}
		}
	}
	for _, recv := range order {
		pm := pairs[recv]
		switch {
		case pm.save == nil:
			pass.Reportf(pm.restore.Pos(), "%s has RestoreState but no SaveState; a one-sided codec cannot round-trip a snapshot", recv.Name())
			continue
		case pm.restore == nil:
			pass.Reportf(pm.save.Pos(), "%s has SaveState but no RestoreState; a one-sided codec cannot round-trip a snapshot", recv.Name())
			continue
		}
		saved := receiverFields(pass, pm.save)
		restored := receiverFields(pass, pm.restore)
		for _, name := range sortedDiff(saved, restored) {
			pass.Reportf(pm.restore.Pos(), "%s.%s is serialized by SaveState but never referenced by RestoreState; restore it (and bump snapshotVersion) or stop saving it",
				recv.Name(), name)
		}
		for _, name := range sortedDiff(restored, saved) {
			pass.Reportf(pm.save.Pos(), "%s.%s is referenced by RestoreState but never serialized by SaveState; save it (and bump snapshotVersion) or stop restoring it",
				recv.Name(), name)
		}
		checkSectionVersions(pass, pm.save)
		checkSectionVersions(pass, pm.restore)
	}
}

// receiverTypeObj resolves a method's receiver to the named type it is
// declared on.
func receiverTypeObj(pass *Pass, fd *ast.FuncDecl) (types.Object, bool) {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	return named.Obj(), true
}

// hasCodecParam reports whether the method's single parameter is a
// pointer to the snapshot codec's Writer or Reader.
func hasCodecParam(pass *Pass, fd *ast.FuncDecl, typeName string) bool {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := fn.Type().(*types.Signature).Params()
	if params.Len() != 1 {
		return false
	}
	p, ok := params.At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Name() != typeName || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), snapshotCodecPkg)
}

// receiverFields returns the set of receiver struct fields the method
// body references (directly or as the base of a deeper selection).
func receiverFields(pass *Pass, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return out // anonymous receiver: nothing to reference
	}
	recvObj := pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[base] != recvObj {
			return true
		}
		if s := pass.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// sortedDiff returns the names in a but not in b, sorted.
func sortedDiff(a, b map[string]bool) []string {
	var out []string
	for name := range a {
		if !b[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// checkSectionVersions requires every codec Section stamp in the method
// to cite a named constant: a literal version cannot be bumped without
// touching every call site, which is exactly how stale stamps happen.
func checkSectionVersions(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodCall(pass, call, snapshotCodecPkg, "Section") || len(call.Args) != 2 {
			return true
		}
		ver := call.Args[1]
		tv, ok := pass.Pkg.Info.Types[ver]
		if !ok || tv.Value == nil {
			pass.Reportf(ver.Pos(), "%s stamps its section with a non-constant version; use the package's snapshotVersion constant", fd.Name.Name)
			return true
		}
		if _, lit := ver.(*ast.BasicLit); lit {
			pass.Reportf(ver.Pos(), "%s stamps its section with a literal version; name it (const snapshotVersion) so serialized-field changes force a visible bump", fd.Name.Name)
		}
		return true
	})
}

func checkFuncCheckpoints(pass *Pass, fd *ast.FuncDecl) {
	for _, pair := range checkpointPairs {
		var creates, releases []token.Pos
		var deferredRelease []token.Pos

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if containsMethodCall(pass, n.Call, pair.pkgSuffix, pair.release) {
					deferredRelease = append(deferredRelease, n.Pos())
					return false
				}
			case *ast.CallExpr:
				if isMethodCall(pass, n, pair.pkgSuffix, pair.create) {
					creates = append(creates, n.Pos())
				}
				if isMethodCall(pass, n, pair.pkgSuffix, pair.release) {
					releases = append(releases, n.Pos())
				}
			}
			return true
		})
		if len(creates) == 0 {
			continue
		}
		// The release method itself (and the create method) trivially
		// touch the pair; don't demand Restore inside Restore.
		if fd.Name.Name == pair.create || fd.Name.Name == pair.release {
			continue
		}
		returnPoints := collectReturnPoints(fd)
		for _, cp := range creates {
			for _, ret := range returnPoints {
				if ret <= cp {
					continue
				}
				ok := false
				for _, rel := range releases {
					if cp < rel && rel < ret {
						ok = true
						break
					}
				}
				if !ok {
					for _, def := range deferredRelease {
						if def < ret {
							ok = true
							break
						}
					}
				}
				if !ok {
					pass.Reportf(cp, "%s has a return path at line %d without a %s for this %s; restore or discard the checkpoint on every path",
						fd.Name.Name, pass.Pkg.Fset.Position(ret).Line, pair.release, pair.create)
					break
				}
			}
		}
	}
}

// collectReturnPoints returns every return statement of the function
// (ignoring nested function literals) plus the end of the body as the
// implicit fall-off return.
func collectReturnPoints(fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n.Pos())
		}
		return true
	})
	out = append(out, fd.Body.End())
	return out
}

// isMethodCall reports whether call invokes a method named name whose
// receiver type is declared in a package with the given path suffix.
func isMethodCall(pass *Pass, call *ast.CallExpr, pkgSuffix, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// containsMethodCall reports whether the expression tree under call
// (including a deferred closure body) contains a matching method call.
func containsMethodCall(pass *Pass, call *ast.CallExpr, pkgSuffix, name string) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isMethodCall(pass, c, pkgSuffix, name) {
			found = true
		}
		return !found
	})
	return found
}
