package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Checkpoint enforces speculative-state hygiene: a function that takes
// a functional checkpoint (the paper's Pin-style register snapshot used
// for wrong-path emulation) must restore it on every return path that
// follows the snapshot. An unpaired checkpoint means architectural
// state silently leaks wrong-path execution into the correct path.
//
// The check is lexical, not a full CFG dominator analysis: for every
// return point after a Checkpoint call (including falling off the end
// of the function) there must be a Restore call between the checkpoint
// and that return, or a defer that performs the Restore.
var Checkpoint = &Analyzer{
	Name: "checkpoint",
	Doc:  "functional checkpoints must be restored on every return path",
	Run:  runCheckpoint,
}

// checkpointPairs lists the guarded create/release method pairs by the
// defining package's import-path suffix.
var checkpointPairs = []struct {
	pkgSuffix string
	create    string
	release   string
}{
	{"internal/functional", "Checkpoint", "Restore"},
}

func runCheckpoint(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCheckpoints(pass, fd)
		}
	}
}

func checkFuncCheckpoints(pass *Pass, fd *ast.FuncDecl) {
	for _, pair := range checkpointPairs {
		var creates, releases []token.Pos
		var deferredRelease []token.Pos

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				if containsMethodCall(pass, n.Call, pair.pkgSuffix, pair.release) {
					deferredRelease = append(deferredRelease, n.Pos())
					return false
				}
			case *ast.CallExpr:
				if isMethodCall(pass, n, pair.pkgSuffix, pair.create) {
					creates = append(creates, n.Pos())
				}
				if isMethodCall(pass, n, pair.pkgSuffix, pair.release) {
					releases = append(releases, n.Pos())
				}
			}
			return true
		})
		if len(creates) == 0 {
			continue
		}
		// The release method itself (and the create method) trivially
		// touch the pair; don't demand Restore inside Restore.
		if fd.Name.Name == pair.create || fd.Name.Name == pair.release {
			continue
		}
		returnPoints := collectReturnPoints(fd)
		for _, cp := range creates {
			for _, ret := range returnPoints {
				if ret <= cp {
					continue
				}
				ok := false
				for _, rel := range releases {
					if cp < rel && rel < ret {
						ok = true
						break
					}
				}
				if !ok {
					for _, def := range deferredRelease {
						if def < ret {
							ok = true
							break
						}
					}
				}
				if !ok {
					pass.Reportf(cp, "%s has a return path at line %d without a %s for this %s; restore or discard the checkpoint on every path",
						fd.Name.Name, pass.Pkg.Fset.Position(ret).Line, pair.release, pair.create)
					break
				}
			}
		}
	}
}

// collectReturnPoints returns every return statement of the function
// (ignoring nested function literals) plus the end of the body as the
// implicit fall-off return.
func collectReturnPoints(fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n.Pos())
		}
		return true
	})
	out = append(out, fd.Body.End())
	return out
}

// isMethodCall reports whether call invokes a method named name whose
// receiver type is declared in a package with the given path suffix.
func isMethodCall(pass *Pass, call *ast.CallExpr, pkgSuffix, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), pkgSuffix)
}

// containsMethodCall reports whether the expression tree under call
// (including a deferred closure body) contains a matching method call.
func containsMethodCall(pass *Pass, call *ast.CallExpr, pkgSuffix, name string) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isMethodCall(pass, c, pkgSuffix, name) {
			found = true
		}
		return !found
	})
	return found
}
