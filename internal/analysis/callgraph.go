package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the package-level static call graph the wpflow taint
// pass walks: one node per function or method declared in the package,
// with edges to the same-package functions it (or any function literal
// inside it) statically calls. Cross-package and dynamic callees are
// not edges — the taint pass models them through its source / sink /
// sanitizer tables instead — so the graph stays exact and cheap.
type CallGraph struct {
	// Nodes maps every declared function object to its node.
	Nodes map[*types.Func]*CallNode
	order []*CallNode
}

// CallNode is one declared function with its body and outgoing
// same-package edges.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	File *ast.File
	// Callees are the same-package functions statically called from the
	// body, deduplicated, in first-call order.
	Callees []*types.Func
}

// BuildCallGraph constructs the call graph of one loaded package.
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd, File: f}
			seen := make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := StaticCallee(pkg.Info, call)
				if callee == nil || callee.Pkg() != pkg.Types || seen[callee] {
					return true
				}
				seen[callee] = true
				node.Callees = append(node.Callees, callee)
				return true
			})
			g.Nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	g.sortBottomUp()
	return g
}

// StaticCallee resolves the function or method a call expression
// invokes, or nil for builtins, conversions, and calls through
// function-typed values. Interface method calls resolve to the
// interface's method object.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// Order returns the nodes in bottom-up (callee-before-caller) order, so
// a single forward sweep resolves most summaries; recursion and mutual
// recursion are handled by the caller iterating to fixpoint.
func (g *CallGraph) Order() []*CallNode { return g.order }

// sortBottomUp orders nodes by a DFS postorder over same-package edges
// (back edges from recursion are simply skipped; the summary fixpoint
// absorbs the imprecision). The traversal starts from nodes in
// declaration order, so the result is deterministic.
func (g *CallGraph) sortBottomUp() {
	var (
		out     []*CallNode
		visited = make(map[*types.Func]bool)
		visit   func(n *CallNode)
	)
	visit = func(n *CallNode) {
		if visited[n.Fn] {
			return
		}
		visited[n.Fn] = true
		callees := append([]*types.Func(nil), n.Callees...)
		sort.Slice(callees, func(i, j int) bool { return callees[i].Pos() < callees[j].Pos() })
		for _, c := range callees {
			if cn, ok := g.Nodes[c]; ok {
				visit(cn)
			}
		}
		out = append(out, n)
	}
	roots := append([]*CallNode(nil), g.order...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })
	for _, n := range roots {
		visit(n)
	}
	g.order = out
}
