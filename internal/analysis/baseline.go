package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is wplint's accept-then-ratchet store: a count of known
// findings keyed by (file, analyzer, message), deliberately ignoring
// line numbers so unrelated edits that shift a finding up or down the
// file do not break the build. A run filtered through a baseline fails
// only on findings beyond the recorded counts — and -update-baseline
// rewrites the file from the current findings, so the recorded debt can
// only be paid down, never silently grown.
type Baseline struct {
	// Counts maps "file|analyzer|message" to the accepted number of
	// identical findings.
	Counts map[string]int `json:"counts"`
}

// baselineKey builds the ratchet key for one diagnostic; file names
// must already be module-relative so baselines travel across checkouts.
func baselineKey(d Diagnostic) string {
	return d.Pos.Filename + "|" + d.Analyzer + "|" + d.Message
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so -baseline can be introduced before the file exists.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Counts: map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Counts == nil {
		b.Counts = map[string]int{}
	}
	return &b, nil
}

// WriteBaseline records the diagnostics as the accepted debt.
func WriteBaseline(path string, diags []Diagnostic) error {
	b := Baseline{Counts: map[string]int{}}
	for _, d := range diags {
		b.Counts[baselineKey(d)]++
	}
	// encoding/json sorts map keys, so the file is diff-stable.
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits the diagnostics into the ones the baseline accepts and
// the ones that must fail the run. Within one key, the first recorded
// count of findings (in the already-sorted input order) is accepted and
// any excess is new.
func (b *Baseline) Filter(diags []Diagnostic) (accepted, fresh []Diagnostic) {
	used := make(map[string]int)
	for _, d := range diags {
		k := baselineKey(d)
		if used[k] < b.Counts[k] {
			used[k]++
			accepted = append(accepted, d)
			continue
		}
		fresh = append(fresh, d)
	}
	return accepted, fresh
}
