package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// testdataDir returns the absolute testdata path.
func testdataDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// runFixture loads testdata/src/<name> and runs one analyzer over it,
// returning the diagnostics rendered with testdata-relative paths.
func runFixture(t *testing.T, a *Analyzer, name string) string {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(testdataDir(t), "src", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a})
	var b strings.Builder
	for _, d := range diags {
		if rel, err := filepath.Rel(testdataDir(t), d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join(testdataDir(t), name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// checkWantMarkers cross-checks the golden against the fixture's
// inline "// want:" markers: every marked line must be diagnosed and
// every diagnostic must land on a marked line.
func checkWantMarkers(t *testing.T, name, got string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(testdataDir(t), "src", name, name+".go"))
	if err != nil {
		t.Fatal(err)
	}
	wantLines := make(map[int]string)
	for i, line := range strings.Split(string(src), "\n") {
		if _, frag, ok := strings.Cut(line, "// want: "); ok {
			wantLines[i+1] = strings.TrimSpace(frag)
		}
	}
	gotLines := make(map[int]string)
	for _, d := range strings.Split(strings.TrimSpace(got), "\n") {
		if d == "" {
			continue
		}
		parts := strings.SplitN(d, ":", 4)
		if len(parts) < 4 {
			t.Fatalf("malformed diagnostic %q", d)
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatalf("bad line in %q: %v", d, err)
		}
		gotLines[lineNo] = strings.TrimSpace(parts[3])
	}
	for line, frag := range wantLines {
		msg, ok := gotLines[line]
		if !ok {
			t.Errorf("%s.go:%d: expected a diagnostic containing %q, got none", name, line, frag)
			continue
		}
		if !strings.Contains(msg, frag) {
			t.Errorf("%s.go:%d: diagnostic %q does not contain %q", name, line, msg, frag)
		}
	}
	for line, msg := range gotLines {
		if _, ok := wantLines[line]; !ok {
			t.Errorf("%s.go:%d: unexpected diagnostic %q", name, line, msg)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	got := runFixture(t, Determinism, "determinism")
	checkGolden(t, "determinism", got)
	checkWantMarkers(t, "determinism", got)
}

func TestExhaustiveFixture(t *testing.T) {
	got := runFixture(t, Exhaustive, "exhaustive")
	checkGolden(t, "exhaustive", got)
	checkWantMarkers(t, "exhaustive", got)
}

func TestCheckpointFixture(t *testing.T) {
	got := runFixture(t, Checkpoint, "checkpoint")
	checkGolden(t, "checkpoint", got)
	checkWantMarkers(t, "checkpoint", got)
}

func TestStatPathFixture(t *testing.T) {
	got := runFixture(t, StatPath, "statpath")
	checkGolden(t, "statpath", got)
	checkWantMarkers(t, "statpath", got)
}

func TestPanicFreeFixture(t *testing.T) {
	got := runFixture(t, PanicFree, "panicfree")
	checkGolden(t, "panicfree", got)
	checkWantMarkers(t, "panicfree", got)
}

func TestWPFlowFixture(t *testing.T) {
	got := runFixture(t, WPFlow, "wpflow")
	checkGolden(t, "wpflow", got)
	checkWantMarkers(t, "wpflow", got)
}

// TestRepoClean is the acceptance gate: the whole module must pass
// every analyzer. A regression here means a simulator invariant was
// violated by a source change.
func TestRepoClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("%s", d)
	}
}

// TestLoaderResolvesModuleImports exercises the source loader: the sim
// package pulls in most of the module transitively.
func TestLoaderResolvesModuleImports(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleRoot, "internal", "sim"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != loader.ModulePath+"/internal/sim" {
		t.Fatalf("unexpected import path %q", pkg.Path)
	}
	if pkg.Types.Scope().Lookup("Run") == nil {
		t.Fatal("sim.Run not found in type-checked scope")
	}
}
